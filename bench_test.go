package parcfl

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, over a scaled synthetic benchmark (see EXPERIMENTS.md
// for the full-suite regeneration via cmd/experiments; these benches are the
// `go test -bench` entry points).
//
// Custom metrics reported beside ns/op:
//
//	queries/op     — batch size
//	jumps/op       — jmp edges recorded (Table I #Jumps)
//	saved-steps/op — traversal steps satisfied by shortcuts
//	ETs/op         — early terminations
//	speedup-model  — modeled speedup vs the sequential walked steps

import (
	"sync"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/engine"
	"parcfl/internal/experiments"
	"parcfl/internal/intraquery"
	"parcfl/internal/javagen"
)

const benchScale = 0.005

var (
	benchOnce sync.Once
	benchData map[string]*experiments.Bench
	seqWalked map[string]int64
)

// benchFor prepares (once) the named preset and its sequential baseline.
func benchFor(b *testing.B, name string) (*experiments.Bench, int64) {
	b.Helper()
	benchOnce.Do(func() {
		benchData = map[string]*experiments.Bench{}
		seqWalked = map[string]int64{}
	})
	if bench, ok := benchData[name]; ok {
		return bench, seqWalked[name]
	}
	pr, err := javagen.PresetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	bench, err := experiments.PrepareBench(pr, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	_, st := engine.Run(bench.Lowered.Graph, bench.Queries, engine.Config{Mode: engine.Seq, Budget: 75000})
	benchData[name] = bench
	seqWalked[name] = st.StepsWalked()
	return bench, seqWalked[name]
}

func runBatch(b *testing.B, bench *experiments.Bench, base int64, mode engine.Mode, threads int, tauF, tauU int) {
	b.Helper()
	var last engine.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, last = engine.Run(bench.Lowered.Graph, bench.Queries, engine.Config{
			Mode: mode, Threads: threads, Budget: 75000,
			TauF: tauF, TauU: tauU,
			TypeLevels: bench.Lowered.TypeLevels,
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Queries), "queries/op")
	b.ReportMetric(float64(last.Share.FinishedAdded+last.Share.UnfinishedAdded), "jumps/op")
	b.ReportMetric(float64(last.StepsSaved), "saved-steps/op")
	b.ReportMetric(float64(last.EarlyTerminations), "ETs/op")
	if base > 0 {
		b.ReportMetric(last.ModeledSpeedup(base), "speedup-model")
	}
}

// BenchmarkTable1Stats regenerates the Table I statistics row for a
// representative benchmark (sequential run: Tseq and #S).
func BenchmarkTable1Stats(b *testing.B) {
	bench, base := benchFor(b, "_202_jess")
	runBatch(b, bench, base, engine.Seq, 1, 0, 0)
}

// BenchmarkFig6 regenerates one Fig. 6 column per sub-benchmark: the four
// strategies the paper compares, on a mid-size benchmark.
func BenchmarkFig6(b *testing.B) {
	bench, base := benchFor(b, "_213_javac")
	b.Run("SeqCFL", func(b *testing.B) { runBatch(b, bench, base, engine.Seq, 1, 0, 0) })
	b.Run("ParCFL-naive-16", func(b *testing.B) { runBatch(b, bench, base, engine.Naive, 16, 0, 0) })
	b.Run("ParCFL-D-16", func(b *testing.B) { runBatch(b, bench, base, engine.D, 16, 0, 0) })
	b.Run("ParCFL-DQ-16", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, 0, 0) })
}

// BenchmarkFig7 regenerates the Fig. 7 contrast: jmp insertion with the
// paper's selective thresholds vs inserting everything.
func BenchmarkFig7(b *testing.B) {
	bench, base := benchFor(b, "h2")
	b.Run("selective-tau", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, 0, 0) })
	b.Run("insert-all", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, -1, -1) })
}

// BenchmarkFig8 regenerates the Fig. 8 thread-scaling series for PARCFL_DQ.
func BenchmarkFig8(b *testing.B) {
	bench, base := benchFor(b, "h2")
	for _, t := range []int{1, 2, 4, 8, 16} {
		b.Run(map[int]string{1: "DQ-1", 2: "DQ-2", 4: "DQ-4", 8: "DQ-8", 16: "DQ-16"}[t], func(b *testing.B) {
			runBatch(b, bench, base, engine.DQ, t, 0, 0)
		})
	}
}

// BenchmarkTable2 regenerates the Table II empirical contrast: the
// whole-program Andersen baseline vs the demand-driven batch.
func BenchmarkTable2(b *testing.B) {
	bench, base := benchFor(b, "_209_db")
	b.Run("Andersen-whole-program", func(b *testing.B) {
		a, err := NewAnalyzer(bench.Program)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Andersen()
		}
	})
	b.Run("CFL-demand-DQ16", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, 0, 0) })
}

// BenchmarkAblationTau regenerates the Section IV-A/IV-D2 threshold
// ablation.
func BenchmarkAblationTau(b *testing.B) {
	bench, base := benchFor(b, "_213_javac")
	b.Run("paper-tauF100-tauU10000", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, 0, 0) })
	b.Run("no-thresholds", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, -1, -1) })
	b.Run("aggressive", func(b *testing.B) { runBatch(b, bench, base, engine.DQ, 16, 2000, 200000) })
}

// BenchmarkSingleQuery measures one demand query (warm graph, cold solver),
// the latency a client like a debugger would observe.
func BenchmarkSingleQuery(b *testing.B) {
	bench, _ := benchFor(b, "_209_db")
	a, err := NewAnalyzer(bench.Program)
	if err != nil {
		b.Fatal(err)
	}
	qs := a.ApplicationQueryVars()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.PointsTo(qs[i%len(qs)], EmptyContext, QueryOptions{Budget: 75000})
	}
}

// BenchmarkSingleQueryShared is the same with a warm shared jmp store — the
// steady state of a long-running analysis session.
func BenchmarkSingleQueryShared(b *testing.B) {
	bench, _ := benchFor(b, "_209_db")
	a, err := NewAnalyzer(bench.Program)
	if err != nil {
		b.Fatal(err)
	}
	qs := a.ApplicationQueryVars()
	sh := NewSharedState()
	for _, q := range qs { // warm the store
		a.PointsTo(q, EmptyContext, QueryOptions{Budget: 75000, Shared: sh})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.PointsTo(qs[i%len(qs)], EmptyContext, QueryOptions{Budget: 75000, Shared: sh})
	}
}

// BenchmarkIntraQueryAblation reproduces the Section III design argument:
// intra-query parallel fan-out vs the sequential solver the inter-query
// modes build on.
func BenchmarkIntraQueryAblation(b *testing.B) {
	bench, _ := benchFor(b, "_209_db")
	queries := bench.Queries
	if len(queries) > 25 {
		queries = queries[:25]
	}
	b.Run("sequential-solver", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := cfl.New(bench.Lowered.Graph, cfl.Config{Budget: 75000})
			for _, v := range queries {
				s.PointsTo(v, EmptyContext)
			}
		}
	})
	b.Run("intra-query-x4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range queries {
				intraquery.PointsTo(bench.Lowered.Graph, v, EmptyContext, intraquery.Config{Threads: 4, Budget: 75000})
			}
		}
	})
}

// BenchmarkRefinement compares the refinement-based configuration against
// the general-purpose one for a weak client (set size check), the scenario
// where refinement wins.
func BenchmarkRefinement(b *testing.B) {
	bench, _ := benchFor(b, "_209_db")
	a, err := NewAnalyzer(bench.Program)
	if err != nil {
		b.Fatal(err)
	}
	qs := a.ApplicationQueryVars()
	if len(qs) > 40 {
		qs = qs[:40]
	}
	b.Run("general-purpose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range qs {
				a.PointsTo(v, EmptyContext, QueryOptions{Budget: 75000})
			}
		}
	})
	b.Run("refinement-weak-client", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range qs {
				a.PointsToRefined(v, EmptyContext, RefineOptions{
					BudgetPerPass: 75000,
					Satisfied:     func(r Result) bool { return len(r.Objects()) <= 8 },
				})
			}
		}
	})
}
