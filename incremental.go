package parcfl

import (
	"parcfl/internal/frontend"
	"parcfl/internal/incremental"
	"parcfl/internal/pag"
	"parcfl/internal/share"
)

// IncrementalAnalyzer answers queries across program edits, keeping the
// jmp-edge cache alive where soundness permits (a simplified reproduction
// of the incremental CFL-reachability techniques the paper cites, [6][16]):
// edits that only remove statements retain the cache (results stay sound,
// possibly over-approximate); edits that add program elements lazily
// invalidate it via an epoch bump, and re-queries rebuild entries on
// demand.
//
// Editing happens at the PAG level: AddObjectNode/AddLocalNode create nodes,
// Apply installs and removes edges. Node IDs remain stable across edits.
type IncrementalAnalyzer struct {
	*Analyzer
	ia *incremental.Analyzer
}

// GraphEdit is a batch of PAG changes applied atomically.
type GraphEdit struct {
	// AddEdges/RemoveEdges use the same edge model as the lowered PAG:
	// for an assignment dst = src use EdgeAssignLocal, for a load
	// dst = base.f use EdgeLoad with the field as label, and so on.
	AddEdges    []GraphEdge
	RemoveEdges []GraphEdge
}

// GraphEdge names one PAG edge.
type GraphEdge = pag.Edge

// Edge kind constants for GraphEdit.
const (
	EdgeNew          = pag.EdgeNew
	EdgeAssignLocal  = pag.EdgeAssignLocal
	EdgeAssignGlobal = pag.EdgeAssignGlobal
	EdgeLoad         = pag.EdgeLoad
	EdgeStore        = pag.EdgeStore
	EdgeParam        = pag.EdgeParam
	EdgeRet          = pag.EdgeRet
)

// NewIncrementalAnalyzer lowers p and wraps it for incremental use. budget
// is the per-query step budget (0 = unbounded).
func NewIncrementalAnalyzer(p *Program, budget int) (*IncrementalAnalyzer, error) {
	lo, err := frontend.Lower(p)
	if err != nil {
		return nil, err
	}
	return &IncrementalAnalyzer{
		Analyzer: &Analyzer{prog: p, lo: lo},
		ia: incremental.New(lo.Graph, incremental.Config{
			Budget: budget,
			Store:  share.NewStore(share.DefaultConfig()),
		}),
	}, nil
}

// AddObjectNode creates a fresh allocation-site node (for growing edits).
func (a *IncrementalAnalyzer) AddObjectNode(name string, t TypeID) NodeID {
	ids := a.ia.Apply(incremental.Edit{AddNodes: []pag.Node{{Name: name, Kind: pag.KindObject, Type: t, Method: pag.NoMethod}}})
	return ids[0]
}

// AddLocalNode creates a fresh local-variable node.
func (a *IncrementalAnalyzer) AddLocalNode(name string, t TypeID) NodeID {
	ids := a.ia.Apply(incremental.Edit{AddNodes: []pag.Node{{Name: name, Kind: pag.KindLocal, Type: t, Method: pag.NoMethod}}})
	return ids[0]
}

// Apply performs the edit. Edits with additions invalidate the shortcut
// cache (lazily); pure removals keep it.
func (a *IncrementalAnalyzer) Apply(e GraphEdit) {
	a.ia.Apply(incremental.Edit{AddEdges: e.AddEdges, RemoveEdges: e.RemoveEdges})
}

// QueryPointsTo answers a points-to query against the current program state,
// using (and extending) the persistent shortcut cache.
func (a *IncrementalAnalyzer) QueryPointsTo(v NodeID, ctx Context) Result {
	return a.ia.PointsTo(v, ctx)
}

// CachedJumps returns the number of shortcut entries currently recorded.
func (a *IncrementalAnalyzer) CachedJumps() int64 { return a.ia.Store().NumJumps() }
