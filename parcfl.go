// Package parcfl is a parallel, demand-driven pointer analysis library based
// on CFL-reachability, reproducing "Parallel Pointer Analysis with
// CFL-Reachability" (Su, Ye, Xue; ICPP 2014).
//
// The library answers points-to, flows-to and alias queries over Java-like
// programs with full context- and field-sensitivity. Queries are budgeted
// graph traversals over a Pointer Assignment Graph (PAG); batches of queries
// run in parallel across goroutines, accelerated by the paper's two
// techniques:
//
//   - data sharing: alias expansions discovered by one query are recorded
//     as jmp shortcut edges that other queries (in any worker) reuse;
//   - query scheduling: batches are grouped by the direct-assignment
//     relation and ordered by connection distance and dependence depth so
//     shortcuts exist by the time dependent queries run.
//
// # Building a program
//
// Programs are written in a miniature Java-like IR: declare types with
// reference fields, globals, and methods whose bodies contain allocation,
// assignment, field load/store and (pre-resolved) call statements. See
// examples/quickstart for a complete walkthrough of the paper's running
// example.
//
// # Querying
//
// NewAnalyzer validates and lowers a Program to its PAG. Single queries run
// via PointsTo/FlowsTo/Alias; batch workloads run via RunBatch, which
// selects one of the paper's four configurations (Sequential, Naive,
// Sharing, SharingScheduling) and a worker count.
package parcfl

import (
	"parcfl/internal/andersen"
	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// IR surface: these aliases make the program-construction types part of the
// public API without duplicating them.
type (
	// Program is a whole mini-Java program: types, globals, methods.
	Program = frontend.Program
	// Type declares a (reference or primitive) type with its fields.
	Type = frontend.Type
	// Field is one instance field of a reference type.
	Field = frontend.Field
	// Method is one method: locals, params, return slot, body.
	Method = frontend.Method
	// Stmt is one statement of a method body.
	Stmt = frontend.Stmt
	// StmtKind discriminates Stmt.
	StmtKind = frontend.StmtKind
	// LocalVar is a local variable slot.
	LocalVar = frontend.LocalVar
	// GlobalVar is a static variable.
	GlobalVar = frontend.GlobalVar
	// VarRef names a local slot or a global.
	VarRef = frontend.VarRef

	// NodeID identifies a PAG node (variable or object).
	NodeID = pag.NodeID
	// Context is a calling-context string (stack of call sites).
	Context = pag.Context
	// NodeCtx is a (node, context) pair, the element type of
	// context-sensitive result sets.
	NodeCtx = pag.NodeCtx
	// FieldID identifies a field program-wide.
	FieldID = pag.FieldID
	// TypeID identifies a declared type.
	TypeID = pag.TypeID
	// CallSiteID identifies a call site.
	CallSiteID = pag.CallSiteID
	// Label is an edge label: a FieldID on ld/st edges, a CallSiteID on
	// param/ret edges.
	Label = pag.Label
)

// Statement kinds.
const (
	StAlloc  = frontend.StAlloc
	StAssign = frontend.StAssign
	StLoad   = frontend.StLoad
	StStore  = frontend.StStore
	StCall   = frontend.StCall
)

// ArrField is the collapsed pseudo-field for array elements.
const ArrField = pag.ArrField

// UntypedType marks nodes without a meaningful static type.
const UntypedType = pag.UntypedType

// NoVar marks an absent statement operand.
var NoVar = frontend.NoVar

// EmptyContext is the empty calling context.
var EmptyContext = pag.EmptyContext

// Local references local slot i of the enclosing method.
func Local(i int) VarRef { return frontend.Local(i) }

// Global references global variable i.
func Global(i int) VarRef { return frontend.Global(i) }

// Result is the outcome of a single demand query. PointsTo holds (object,
// context) pairs for points-to queries and (variable, context) pairs for
// flows-to queries; Objects() projects to allocation sites.
type Result = cfl.Result

// Analyzer owns a lowered program and answers queries over it. It is
// immutable after construction and safe for concurrent use, except that a
// single SharedState must not be reused across different Analyzers.
type Analyzer struct {
	prog *Program
	lo   *frontend.Lowered
}

// NewAnalyzer validates p and lowers it to a PAG (collapsing recursion
// cycles of the call graph, as the paper does).
func NewAnalyzer(p *Program) (*Analyzer, error) {
	lo, err := frontend.Lower(p)
	if err != nil {
		return nil, err
	}
	return &Analyzer{prog: p, lo: lo}, nil
}

// Program returns the analysed program.
func (a *Analyzer) Program() *Program { return a.prog }

// NumNodes returns the PAG node count.
func (a *Analyzer) NumNodes() int { return a.lo.Graph.NumNodes() }

// NumEdges returns the PAG edge count.
func (a *Analyzer) NumEdges() int { return a.lo.Graph.NumEdges() }

// LocalNode returns the PAG node of local slot `slot` of method `method`
// (indexes into Program.Methods and Method.Locals).
func (a *Analyzer) LocalNode(method, slot int) NodeID { return a.lo.LocalNode[method][slot] }

// GlobalNode returns the PAG node of global i.
func (a *Analyzer) GlobalNode(i int) NodeID { return a.lo.GlobalNode[i] }

// ObjectNodes returns the allocation-site nodes of method m in statement
// order.
func (a *Analyzer) ObjectNodes(method int) []NodeID {
	return append([]NodeID(nil), a.lo.ObjectNode[method]...)
}

// ApplicationQueryVars returns the PAG nodes of all locals declared in
// methods marked Application — the paper's standard query batch.
func (a *Analyzer) ApplicationQueryVars() []NodeID {
	return append([]NodeID(nil), a.lo.AppQueryVars...)
}

// NodeName returns a node's diagnostic name (e.g. "main.v1" or "o@main:0").
func (a *Analyzer) NodeName(v NodeID) string { return a.lo.Graph.Node(v).Name }

// TypeLevels returns L(t) per TypeID (Section III-C2), as used by the
// scheduler's dependence-depth heuristic.
func (a *Analyzer) TypeLevels() []int { return append([]int(nil), a.lo.TypeLevels...) }

// SharedState is a jmp-edge store shared across queries and workers — the
// data-sharing scheme of Section III-B. Create one per analysis session and
// pass it to successive queries (or let RunBatch manage one internally).
type SharedState struct {
	store *share.Store
}

// NewSharedState creates a store with the paper's selective-insertion
// thresholds (tauF=100, tauU=10000).
func NewSharedState() *SharedState {
	return &SharedState{store: share.NewStore(share.DefaultConfig())}
}

// NewSharedStateWithThresholds creates a store with explicit thresholds.
// tauF/tauU of 0 insert every jmp edge.
func NewSharedStateWithThresholds(tauF, tauU int) *SharedState {
	return &SharedState{store: share.NewStore(share.Config{TauF: tauF, TauU: tauU, Shards: 64})}
}

// NumJumps returns the number of jmp edges recorded so far.
func (s *SharedState) NumJumps() int64 { return s.store.NumJumps() }

// ResultCache shares whole memoised traversal results across queries — the
// "ad-hoc caching" optimisation of the sequential implementations the paper
// builds on. Safe for concurrent use by many queries and workers.
type ResultCache struct {
	c *ptcache.Cache
}

// NewResultCache creates an empty cache.
func NewResultCache() *ResultCache { return &ResultCache{c: ptcache.New(64)} }

// QueryOptions configures a single demand query.
type QueryOptions struct {
	// Budget bounds the traversal in steps; 0 means unbounded.
	Budget int
	// Shared enables data sharing against the given state; nil disables.
	Shared *SharedState
	// Cache enables cross-query result caching; nil disables.
	Cache *ResultCache
	// ContextK k-limits call strings to the newest K call sites (a sound
	// over-approximation that can trade precision for speed); 0 keeps
	// full call strings, the paper's configuration.
	ContextK int
}

func (a *Analyzer) solver(o QueryOptions) *cfl.Solver {
	cfg := cfl.Config{Budget: o.Budget, ContextK: o.ContextK}
	if o.Shared != nil {
		cfg.Share = o.Shared.store
	}
	if o.Cache != nil {
		cfg.Cache = o.Cache.c
	}
	return cfl.New(a.lo.Graph, cfg)
}

// PointsTo computes the (object, context) pairs variable v may point to
// under context ctx.
func (a *Analyzer) PointsTo(v NodeID, ctx Context, o QueryOptions) Result {
	return a.solver(o).PointsTo(v, ctx)
}

// FlowsTo computes the (variable, context) pairs object obj flows to.
func (a *Analyzer) FlowsTo(obj NodeID, ctx Context, o QueryOptions) Result {
	return a.solver(o).FlowsTo(obj, ctx)
}

// Alias reports whether x and y may alias (their points-to sets intersect on
// an allocation site). ok is false if either sub-query ran out of budget, in
// which case the answer is a may-alias over-approximation of the partial
// sets.
func (a *Analyzer) Alias(x, y NodeID, ctx Context, o QueryOptions) (alias, ok bool) {
	return a.solver(o).Alias(x, y, ctx)
}

// Andersen runs the whole-program, context-insensitive Andersen baseline,
// returning its points-to sets (always a superset of the demand-driven
// answers).
func (a *Analyzer) Andersen() *WholeProgram {
	return andersen.Analyze(a.lo.Graph)
}

// WholeProgram is the result of Andersen's whole-program analysis.
type WholeProgram = andersen.Result

// WitnessStep is one hop of a points-to explanation (see Explain).
type WitnessStep = cfl.WitnessStep

// Explain answers "why does v (under ctx) point to obj?" with the chain of
// PAG hops the analysis derived the fact from: the query variable, the
// assignments/param/ret edges traversed (with call sites), summarised heap
// hops, and the allocation site. Returns ok=false if the fact does not
// hold. Budgets apply as in PointsTo.
func (a *Analyzer) Explain(v NodeID, ctx Context, obj NodeID, o QueryOptions) ([]WitnessStep, bool) {
	return a.solver(o).Explain(v, ctx, obj)
}

// ExplainFlows is the forward mirror of Explain: "why does obj (under ctx)
// flow to v?" as the chain of hops from the allocation site to the
// variable. Returns ok=false if the fact does not hold.
func (a *Analyzer) ExplainFlows(obj NodeID, ctx Context, v NodeID, o QueryOptions) ([]WitnessStep, bool) {
	return a.solver(o).ExplainFlows(obj, ctx, v)
}
