package parcfl

import (
	"parcfl/internal/engine"
)

// Mode selects the batch execution strategy (the four configurations of the
// paper's evaluation).
type Mode = engine.Mode

const (
	// Sequential is the SEQCFL baseline: one worker, no sharing.
	Sequential = engine.Seq
	// Naive is inter-query parallelism over a shared work list only
	// (Section III-A).
	Naive = engine.Naive
	// Sharing adds the data-sharing scheme (Section III-B) — the paper's
	// PARCFL_D.
	Sharing = engine.D
	// SharingScheduling adds query scheduling (Section III-C) — the
	// paper's PARCFL_DQ and the recommended default.
	SharingScheduling = engine.DQ
)

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Mode selects the strategy; SharingScheduling is the recommended
	// default (the zero value is Sequential).
	Mode Mode
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// Budget is the per-query step budget; 0 disables (the paper uses
	// 75,000).
	Budget int
	// TauF/TauU override the selective jmp-insertion thresholds; zero
	// values pick the paper defaults (100 / 10,000), negative values
	// disable suppression entirely.
	TauF, TauU int
	// ResultCache additionally shares whole memoised traversal results
	// across queries and workers (the "ad-hoc caching" extension on top
	// of the paper's jmp sharing). Works with any mode.
	ResultCache bool
	// ContextK k-limits call strings (0 = unlimited).
	ContextK int
}

// BatchResult is the outcome of one query within a batch.
type BatchResult = engine.QueryResult

// BatchStats aggregates a batch run (wall time, steps walked and saved, jmp
// and early-termination counts, schedule shape).
type BatchStats = engine.Stats

// RunBatch answers every query in the batch using the selected strategy and
// returns per-query results in processing order plus aggregate statistics.
// Queries are (variable, empty-context) points-to requests, matching the
// paper's batch clients.
func (a *Analyzer) RunBatch(queries []NodeID, o BatchOptions) ([]BatchResult, BatchStats) {
	return engine.Run(a.lo.Graph, queries, engine.Config{
		Mode:        o.Mode,
		Threads:     o.Threads,
		Budget:      o.Budget,
		TauF:        o.TauF,
		TauU:        o.TauU,
		TypeLevels:  a.lo.TypeLevels,
		ResultCache: o.ResultCache,
		ContextK:    o.ContextK,
	})
}
