package parcfl_test

import (
	"fmt"

	"parcfl"
)

// Example demonstrates the paper's running example end-to-end: parse the
// Fig. 2 Vector program from source, analyse it, and observe that
// context-sensitivity separates the two vectors' contents.
func Example() {
	src := `
type Object {}
type String {}
type Integer {}
type Vector { elems: Object[]; }

func init(this: Vector) application {
    var t: Object[] = new Object[];
    this.elems = t;
}
func add(this: Vector, e: Object) application {
    var t: Object[] = this.elems;
    t.arr = e;
}
func get(this: Vector): Object application {
    var t: Object[] = this.elems;
    var r: Object = t.arr;
    return r;
}
func main() application {
    var v1: Vector = new Vector;
    init(v1);
    var n1: String = new String;
    add(v1, n1);
    var s1: Object = get(v1);
    var v2: Vector = new Vector;
    init(v2);
    var n2: Integer = new Integer;
    add(v2, n2);
    var s2: Object = get(v2);
}
`
	prog, err := parcfl.ParseProgram(src)
	if err != nil {
		panic(err)
	}
	a, err := parcfl.NewAnalyzer(prog)
	if err != nil {
		panic(err)
	}

	mainIdx := len(prog.Methods) - 1
	slot := func(name string) parcfl.NodeID {
		for i, lv := range prog.Methods[mainIdx].Locals {
			if lv.Name == name {
				return a.LocalNode(mainIdx, i)
			}
		}
		panic("no local " + name)
	}

	for _, name := range []string{"s1", "s2"} {
		r := a.PointsTo(slot(name), parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
		fmt.Printf("|pts(%s)| = %d\n", name, len(r.Objects()))
	}
	al, _ := a.Alias(slot("s1"), slot("s2"), parcfl.EmptyContext, parcfl.QueryOptions{})
	fmt.Printf("alias(s1, s2) = %v\n", al)
	// Output:
	// |pts(s1)| = 1
	// |pts(s2)| = 1
	// alias(s1, s2) = false
}

// ExampleAnalyzer_RunBatch runs a parallel batch in the paper's PARCFL_DQ
// configuration (data sharing + query scheduling).
func ExampleAnalyzer_RunBatch() {
	prog, err := parcfl.ParseProgram(`
type Object {}
func id(x: Object): Object { return x; }
func main() application {
    var a: Object = new Object;
    var b: Object = id(a);
    var c: Object = id(b);
}
`)
	if err != nil {
		panic(err)
	}
	a, err := parcfl.NewAnalyzer(prog)
	if err != nil {
		panic(err)
	}
	results, stats := a.RunBatch(a.ApplicationQueryVars(), parcfl.BatchOptions{
		Mode:    parcfl.SharingScheduling,
		Threads: 4,
		Budget:  75000,
	})
	fmt.Printf("queries: %d, aborted: %d\n", stats.Queries, stats.Aborted)
	nonEmpty := 0
	for _, r := range results {
		if len(r.Objects) > 0 {
			nonEmpty++
		}
	}
	fmt.Printf("non-empty answers: %d\n", nonEmpty)
	// Output:
	// queries: 3, aborted: 0
	// non-empty answers: 3
}
