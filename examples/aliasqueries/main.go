// Batch alias disambiguation: the compiler-style client the paper's
// introduction motivates ("alias disambiguation" [21]) — issue points-to
// queries for every local in the application in batch mode, and compare the
// paper's four execution strategies on the same batch.
//
// The program is generated: many "handler" methods funnel values through a
// shared event-queue library (the redundancy data sharing exploits), so the
// example also prints the jmp-edge and early-termination statistics that
// explain the speedups.
//
// Run with: go run ./examples/aliasqueries
package main

import (
	"fmt"
	"log"

	"parcfl"
)

const (
	tObject = parcfl.TypeID(iota)
	tArr
	tEvent
	tQueue
)

const fElems = parcfl.FieldID(1)

// buildProgram generates nHandlers handler methods that all enqueue and
// dequeue events through one shared queue class.
func buildProgram(nHandlers int) *parcfl.Program {
	p := &parcfl.Program{
		Types: []parcfl.Type{
			{Name: "Object", Ref: true},
			{Name: "Object[]", Ref: true, Fields: []parcfl.Field{{Name: "arr", ID: parcfl.ArrField, Type: tObject}}},
			{Name: "Event", Ref: true},
			{Name: "Queue", Ref: true, Fields: []parcfl.Field{{Name: "elems", ID: fElems, Type: tArr}}},
		},
		Globals: []parcfl.GlobalVar{{Name: "theQueue", Type: tQueue}},
	}

	// 0: Queue.init(this) { t = new Object[]; this.elems = t }
	p.Methods = append(p.Methods, parcfl.Method{
		Name: "Queue.init",
		Locals: []parcfl.LocalVar{
			{Name: "this", Type: tQueue}, {Name: "t", Type: tArr},
		},
		Params: []int{0}, Ret: -1,
		Body: []parcfl.Stmt{
			{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: tArr},
			{Kind: parcfl.StStore, Base: parcfl.Local(0), Field: fElems, Src: parcfl.Local(1)},
		},
	})
	// 1: Queue.enqueue(this, e) { t = this.elems; t.arr = e }
	p.Methods = append(p.Methods, parcfl.Method{
		Name: "Queue.enqueue",
		Locals: []parcfl.LocalVar{
			{Name: "this", Type: tQueue}, {Name: "e", Type: tObject}, {Name: "t", Type: tArr},
		},
		Params: []int{0, 1}, Ret: -1,
		Body: []parcfl.Stmt{
			{Kind: parcfl.StLoad, Dst: parcfl.Local(2), Base: parcfl.Local(0), Field: fElems},
			{Kind: parcfl.StStore, Base: parcfl.Local(2), Field: parcfl.ArrField, Src: parcfl.Local(1)},
		},
	})
	// 2: Object Queue.dequeue(this) { t = this.elems; return t.arr }
	p.Methods = append(p.Methods, parcfl.Method{
		Name: "Queue.dequeue",
		Locals: []parcfl.LocalVar{
			{Name: "this", Type: tQueue}, {Name: "t", Type: tArr}, {Name: "r", Type: tObject},
		},
		Params: []int{0}, Ret: 2,
		Body: []parcfl.Stmt{
			{Kind: parcfl.StLoad, Dst: parcfl.Local(1), Base: parcfl.Local(0), Field: fElems},
			{Kind: parcfl.StLoad, Dst: parcfl.Local(2), Base: parcfl.Local(1), Field: parcfl.ArrField},
		},
	})
	// 3: setup() { q = new Queue; init(q); theQueue = q }
	p.Methods = append(p.Methods, parcfl.Method{
		Name:   "setup",
		Locals: []parcfl.LocalVar{{Name: "q", Type: tQueue}},
		Ret:    -1, Application: true,
		Body: []parcfl.Stmt{
			{Kind: parcfl.StAlloc, Dst: parcfl.Local(0), Type: tQueue},
			{Kind: parcfl.StCall, Callee: 0, Args: []parcfl.VarRef{parcfl.Local(0)}, Dst: parcfl.NoVar},
			{Kind: parcfl.StAssign, Dst: parcfl.Global(0), Src: parcfl.Local(0)},
		},
	})
	// Handlers: q = theQueue; ev = new Event; enqueue(q, ev);
	// got = dequeue(q); h1 = got; h2 = h1.
	for h := 0; h < nHandlers; h++ {
		p.Methods = append(p.Methods, parcfl.Method{
			Name: fmt.Sprintf("handler%d", h),
			Locals: []parcfl.LocalVar{
				{Name: "q", Type: tQueue},
				{Name: "ev", Type: tEvent},
				{Name: "got", Type: tObject},
				{Name: "h1", Type: tObject},
				{Name: "h2", Type: tObject},
			},
			Ret: -1, Application: true,
			Body: []parcfl.Stmt{
				{Kind: parcfl.StAssign, Dst: parcfl.Local(0), Src: parcfl.Global(0)},
				{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: tEvent},
				{Kind: parcfl.StCall, Callee: 1, Args: []parcfl.VarRef{parcfl.Local(0), parcfl.Local(1)}, Dst: parcfl.NoVar},
				{Kind: parcfl.StCall, Callee: 2, Args: []parcfl.VarRef{parcfl.Local(0)}, Dst: parcfl.Local(2)},
				{Kind: parcfl.StAssign, Dst: parcfl.Local(3), Src: parcfl.Local(2)},
				{Kind: parcfl.StAssign, Dst: parcfl.Local(4), Src: parcfl.Local(3)},
			},
		})
	}
	return p
}

func main() {
	const handlers = 60
	a, err := parcfl.NewAnalyzer(buildProgram(handlers))
	if err != nil {
		log.Fatal(err)
	}
	queries := a.ApplicationQueryVars()
	fmt.Printf("PAG: %d nodes, %d edges; %d batch queries\n\n", a.NumNodes(), a.NumEdges(), len(queries))

	fmt.Printf("%-22s %10s %10s %12s %9s %8s %6s\n",
		"strategy", "wall", "steps", "steps saved", "jumps", "aborted", "ETs")
	for _, cfg := range []struct {
		name string
		opts parcfl.BatchOptions
	}{
		{"Sequential", parcfl.BatchOptions{Mode: parcfl.Sequential, Budget: 75000}},
		{"Naive x4", parcfl.BatchOptions{Mode: parcfl.Naive, Threads: 4, Budget: 75000}},
		{"Sharing x4", parcfl.BatchOptions{Mode: parcfl.Sharing, Threads: 4, Budget: 75000}},
		{"Sharing+Sched x4", parcfl.BatchOptions{Mode: parcfl.SharingScheduling, Threads: 4, Budget: 75000}},
	} {
		_, st := a.RunBatch(queries, cfg.opts)
		fmt.Printf("%-22s %10s %10d %12d %9d %8d %6d\n",
			cfg.name, st.Wall.Round(10_000), st.TotalSteps, st.StepsSaved,
			st.JumpsTaken, st.Aborted, st.EarlyTerminations)
	}

	// A few alias answers a compiler would ask for: do two handlers' event
	// payloads interfere through the shared queue?
	h0got := a.LocalNode(4, 2) // handler0.got
	h1got := a.LocalNode(5, 2) // handler1.got
	h0ev := a.LocalNode(4, 1)  // handler0.ev
	h1ev := a.LocalNode(5, 1)  // handler1.ev
	al1, _ := a.Alias(h0got, h1got, parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
	al2, _ := a.Alias(h0ev, h1ev, parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
	fmt.Printf("\nalias(handler0.got, handler1.got) = %v  (shared queue: results interfere)\n", al1)
	fmt.Printf("alias(handler0.ev,  handler1.ev)  = %v  (distinct allocations never alias)\n", al2)
}
