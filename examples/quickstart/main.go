// Quickstart: the paper's running example (Fig. 2) through the public API.
//
// It builds the Vector program, asks the points-to questions the paper
// answers in Section II, and prints the results:
//
//	s1 = v1.get(0) points only to the String put into v1 (o16), and
//	s2 = v2.get(0) points only to the Integer put into v2 (o20),
//
// even though both vectors share the same backing-array allocation site —
// the precision that context-sensitive CFL-reachability buys.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parcfl"
)

// Type and field IDs for the example.
const (
	tInt = parcfl.TypeID(iota)
	tObject
	tObjArr
	tString
	tInteger
	tVector
)
const fElems = parcfl.FieldID(1)

func vectorProgram() *parcfl.Program {
	return &parcfl.Program{
		Types: []parcfl.Type{
			{Name: "int"},
			{Name: "Object", Ref: true},
			{Name: "Object[]", Ref: true, Fields: []parcfl.Field{{Name: "arr", ID: parcfl.ArrField, Type: tObject}}},
			{Name: "String", Ref: true},
			{Name: "Integer", Ref: true},
			{Name: "Vector", Ref: true, Fields: []parcfl.Field{
				{Name: "elems", ID: fElems, Type: tObjArr},
				{Name: "count", ID: 2, Type: tInt},
			}},
		},
		Methods: []parcfl.Method{
			{ // 0: Vector.<init>(this) { t = new Object[MAX]; this.elems = t }
				Name: "Vector.<init>",
				Locals: []parcfl.LocalVar{
					{Name: "this", Type: tVector},
					{Name: "t", Type: tObjArr},
				},
				Params: []int{0}, Ret: -1, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: tObjArr}, // o6
					{Kind: parcfl.StStore, Base: parcfl.Local(0), Field: fElems, Src: parcfl.Local(1)},
				},
			},
			{ // 1: Vector.add(this, e) { t = this.elems; t[count++] = e }
				Name: "Vector.add",
				Locals: []parcfl.LocalVar{
					{Name: "this", Type: tVector},
					{Name: "e", Type: tObject},
					{Name: "t", Type: tObjArr},
				},
				Params: []int{0, 1}, Ret: -1, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StLoad, Dst: parcfl.Local(2), Base: parcfl.Local(0), Field: fElems},
					{Kind: parcfl.StStore, Base: parcfl.Local(2), Field: parcfl.ArrField, Src: parcfl.Local(1)},
				},
			},
			{ // 2: Object Vector.get(this) { t = this.elems; return t[i] }
				Name: "Vector.get",
				Locals: []parcfl.LocalVar{
					{Name: "this", Type: tVector},
					{Name: "t", Type: tObjArr},
					{Name: "ret", Type: tObject},
				},
				Params: []int{0}, Ret: 2, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StLoad, Dst: parcfl.Local(1), Base: parcfl.Local(0), Field: fElems},
					{Kind: parcfl.StLoad, Dst: parcfl.Local(2), Base: parcfl.Local(1), Field: parcfl.ArrField},
				},
			},
			{ // 3: main — lines 14-22 of Fig. 2(a).
				Name: "main",
				Locals: []parcfl.LocalVar{
					{Name: "v1", Type: tVector}, {Name: "n1", Type: tString}, {Name: "s1", Type: tObject},
					{Name: "v2", Type: tVector}, {Name: "n2", Type: tInteger}, {Name: "s2", Type: tObject},
				},
				Ret: -1, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(0), Type: tVector}, // o15
					{Kind: parcfl.StCall, Callee: 0, Args: []parcfl.VarRef{parcfl.Local(0)}, Dst: parcfl.NoVar},
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: tString}, // o16
					{Kind: parcfl.StCall, Callee: 1, Args: []parcfl.VarRef{parcfl.Local(0), parcfl.Local(1)}, Dst: parcfl.NoVar},
					{Kind: parcfl.StCall, Callee: 2, Args: []parcfl.VarRef{parcfl.Local(0)}, Dst: parcfl.Local(2)},
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(3), Type: tVector}, // o19
					{Kind: parcfl.StCall, Callee: 0, Args: []parcfl.VarRef{parcfl.Local(3)}, Dst: parcfl.NoVar},
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(4), Type: tInteger}, // o20
					{Kind: parcfl.StCall, Callee: 1, Args: []parcfl.VarRef{parcfl.Local(3), parcfl.Local(4)}, Dst: parcfl.NoVar},
					{Kind: parcfl.StCall, Callee: 2, Args: []parcfl.VarRef{parcfl.Local(3)}, Dst: parcfl.Local(5)},
				},
			},
		},
	}
}

func main() {
	a, err := parcfl.NewAnalyzer(vectorProgram())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAG: %d nodes, %d edges\n\n", a.NumNodes(), a.NumEdges())

	// Demand queries for the interesting locals of main.
	for _, q := range []struct {
		name         string
		method, slot int
	}{
		{"v1", 3, 0}, {"s1", 3, 2}, {"v2", 3, 3}, {"s2", 3, 5},
	} {
		v := a.LocalNode(q.method, q.slot)
		r := a.PointsTo(v, parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
		fmt.Printf("pts(%s) = {", q.name)
		for i, o := range r.Objects() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a.NodeName(o))
		}
		fmt.Printf("}   (%d steps)\n", r.Steps)
	}

	// The alias fact the paper walks through: the constructor receiver and
	// get's receiver may alias (both reach o15/o19); n1 and n2 never do.
	thisVector := a.LocalNode(0, 0)
	thisGet := a.LocalNode(2, 0)
	n1, n2 := a.LocalNode(3, 1), a.LocalNode(3, 4)
	al1, _ := a.Alias(thisVector, thisGet, parcfl.EmptyContext, parcfl.QueryOptions{})
	al2, _ := a.Alias(n1, n2, parcfl.EmptyContext, parcfl.QueryOptions{})
	fmt.Printf("\nalias(thisVector, thisGet) = %v\n", al1)
	fmt.Printf("alias(n1, n2)              = %v\n", al2)

	// Forward direction: where does the String object flow?
	o16 := a.ObjectNodes(3)[1]
	fl := a.FlowsTo(o16, parcfl.EmptyContext, parcfl.QueryOptions{})
	fmt.Printf("\nflowsTo(o16) = {")
	for i, nc := range fl.PointsTo {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(a.NodeName(nc.Node))
	}
	fmt.Println("}")
}
