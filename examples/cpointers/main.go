// C pointer analysis: the paper's Section V note that the parallel solution
// "is expected to generalise to C programs as well" (via the demand-driven C
// alias analysis of Zheng & Rugina), demonstrated end-to-end.
//
// The program is classic C: a helper writes through a pointer parameter,
// called twice with different targets. The context-sensitive analysis keeps
// the two targets separate — *p writes at call site 1 do not leak into call
// site 2's variable.
//
//	void setp(void **p, void *v) { *p = v; }
//	int main() {
//	    void *a, *b;
//	    void *o1 = malloc(..), *o2 = malloc(..);
//	    setp(&a, o1);
//	    setp(&b, o2);
//	    void *ra = a;   // -> { o1 } only
//	    void *rb = b;   // -> { o2 } only
//	}
//
// Run with: go run ./examples/cpointers
package main

import (
	"fmt"
	"log"

	"parcfl"
)

func main() {
	prog := &parcfl.CProgram{
		Funcs: []parcfl.CFunc{
			{ // 0: setp(p, v) { *p = v }
				Name: "setp",
				Locals: []parcfl.CLocal{
					{Name: "p", Struct: -1},
					{Name: "v", Struct: -1},
				},
				Params: []int{0, 1}, Ret: -1,
				Body: []parcfl.CStmt{
					{Kind: parcfl.CStore, Base: 0, Src: 1}, // *p = v
				},
			},
			{ // 1: main
				Name: "main", Application: true, Ret: -1,
				Locals: []parcfl.CLocal{
					{Name: "a", Struct: -1},  // 0
					{Name: "b", Struct: -1},  // 1
					{Name: "pa", Struct: -1}, // 2
					{Name: "pb", Struct: -1}, // 3
					{Name: "o1", Struct: -1}, // 4
					{Name: "o2", Struct: -1}, // 5
					{Name: "ra", Struct: -1}, // 6
					{Name: "rb", Struct: -1}, // 7
				},
				Body: []parcfl.CStmt{
					{Kind: parcfl.CAddr, Dst: 2, Src: 0},                        // pa = &a
					{Kind: parcfl.CAddr, Dst: 3, Src: 1},                        // pb = &b
					{Kind: parcfl.CMalloc, Dst: 4},                              // o1 = malloc
					{Kind: parcfl.CMalloc, Dst: 5},                              // o2 = malloc
					{Kind: parcfl.CCall, Callee: 0, Args: []int{2, 4}, Dst: -1}, // setp(pa, o1)
					{Kind: parcfl.CCall, Callee: 0, Args: []int{3, 5}, Dst: -1}, // setp(pb, o2)
					{Kind: parcfl.CAssign, Dst: 6, Src: 0},                      // ra = a
					{Kind: parcfl.CAssign, Dst: 7, Src: 1},                      // rb = b
				},
			},
		},
	}

	a, err := parcfl.NewCAnalyzer(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAG: %d nodes, %d edges\n\n", a.NumNodes(), a.NumEdges())

	show := func(label string, f, l int) {
		v := a.CLocalNode(f, l)
		r := a.PointsTo(v, parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
		fmt.Printf("pts(%s) = {", label)
		for i, o := range r.Objects() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a.NodeName(o))
		}
		fmt.Printf("}\n")
	}
	show("ra", 1, 6)
	show("rb", 1, 7)

	// Alias checks a C compiler would make.
	ra := a.CLocalNode(1, 6)
	rb := a.CLocalNode(1, 7)
	pa := a.CLocalNode(1, 2)
	pb := a.CLocalNode(1, 3)
	al1, _ := a.Alias(ra, rb, parcfl.EmptyContext, parcfl.QueryOptions{})
	al2, _ := a.Alias(pa, pb, parcfl.EmptyContext, parcfl.QueryOptions{})
	fmt.Printf("\nalias(ra, rb) = %v   (distinct mallocs through distinct targets)\n", al1)
	fmt.Printf("alias(pa, pb) = %v   (&a vs &b never alias)\n", al2)
}
