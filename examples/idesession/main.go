// IDE session: incremental analysis across program edits, the scenario of
// the incremental CFL-reachability work the paper builds on ([6][16]) —
// "tailored for scenarios where code changes are small, [they] take
// advantage of previously computed CFL-reachable paths".
//
// The session: a developer analyses a program, deletes a statement
// (shortcut cache retained — answers stay sound), then adds a new flow
// (cache lazily invalidated — answers pick up the new fact), with the
// analysis re-queried after each edit.
//
// Run with: go run ./examples/idesession
package main

import (
	"fmt"
	"log"

	"parcfl"
)

const (
	tObject = parcfl.TypeID(iota)
	tArr
	tBox
)

const fVal = parcfl.FieldID(1)

func program() *parcfl.Program {
	return &parcfl.Program{
		Types: []parcfl.Type{
			{Name: "Object", Ref: true},
			{Name: "Object[]", Ref: true, Fields: []parcfl.Field{{Name: "arr", ID: parcfl.ArrField, Type: tObject}}},
			{Name: "Box", Ref: true, Fields: []parcfl.Field{{Name: "val", ID: fVal, Type: tObject}}},
		},
		Methods: []parcfl.Method{
			{ // 0: main { b = new Box; x = new Object; b.val = x; y = b.val }
				Name: "main",
				Locals: []parcfl.LocalVar{
					{Name: "b", Type: tBox},
					{Name: "x", Type: tObject},
					{Name: "y", Type: tObject},
				},
				Ret: -1, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(0), Type: tBox},
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: tObject},
					{Kind: parcfl.StStore, Base: parcfl.Local(0), Field: fVal, Src: parcfl.Local(1)},
					{Kind: parcfl.StLoad, Dst: parcfl.Local(2), Base: parcfl.Local(0), Field: fVal},
				},
			},
		},
	}
}

func main() {
	a, err := parcfl.NewIncrementalAnalyzer(program(), 75000)
	if err != nil {
		log.Fatal(err)
	}
	y := a.LocalNode(0, 2)
	b := a.LocalNode(0, 0)
	x := a.LocalNode(0, 1)
	oX := a.ObjectNodes(0)[1]

	show := func(when string) {
		r := a.QueryPointsTo(y, parcfl.EmptyContext)
		fmt.Printf("%-28s pts(y) = {", when)
		for i, o := range r.Objects() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a.NodeName(o))
		}
		fmt.Printf("}   (cached jumps: %d)\n", a.CachedJumps())
	}

	show("initial")

	// Edit 1 (shrinking): delete "b.val = x". The cached shortcut is
	// retained; the stale answer is a sound over-approximation.
	a.Apply(parcfl.GraphEdit{RemoveEdges: []parcfl.GraphEdge{
		{Dst: b, Src: x, Kind: parcfl.EdgeStore, Label: parcfl.Label(fVal)},
	}})
	show("after deleting b.val = x")

	// Edit 2 (growing): add "z = new Widget; b.val = z". The epoch bump
	// invalidates stale shortcuts; re-querying finds the new object.
	oNew := a.AddObjectNode("oWidget", tObject)
	z := a.AddLocalNode("z", tObject)
	a.Apply(parcfl.GraphEdit{AddEdges: []parcfl.GraphEdge{
		{Dst: z, Src: oNew, Kind: parcfl.EdgeNew},
		{Dst: b, Src: z, Kind: parcfl.EdgeStore, Label: parcfl.Label(fVal)},
	}})
	show("after adding b.val = z")

	_ = oX
}
