// Quickstart (source form): parse the paper's Fig. 2 example from mini-Java
// text and answer its points-to queries — the textual twin of
// examples/quickstart.
//
// Run with: go run ./examples/quickstart-src
package main

import (
	_ "embed"
	"fmt"
	"log"

	"parcfl"
)

//go:embed vector.mj
var vectorSrc string

func main() {
	prog, err := parcfl.ParseProgram(vectorSrc)
	if err != nil {
		log.Fatal(err)
	}
	a, err := parcfl.NewAnalyzer(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Locate main's locals by name.
	mainIdx := -1
	for i := range prog.Methods {
		if prog.Methods[i].Name == "main" {
			mainIdx = i
		}
	}
	slot := func(name string) parcfl.NodeID {
		for i, lv := range prog.Methods[mainIdx].Locals {
			if lv.Name == name {
				return a.LocalNode(mainIdx, i)
			}
		}
		log.Fatalf("no local %q", name)
		return 0
	}

	for _, name := range []string{"v1", "s1", "v2", "s2"} {
		r := a.PointsTo(slot(name), parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
		fmt.Printf("pts(%s) = {", name)
		for i, o := range r.Objects() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a.NodeName(o))
		}
		fmt.Println("}")
	}
}
