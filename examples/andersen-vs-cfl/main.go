// Whole-program vs demand-driven: the contrast behind the paper's Table II.
//
// Andersen's analysis computes points-to sets for every variable at once,
// context-insensitively; the CFL-reachability analysis answers only the
// queries a client asks, context-sensitively. This example runs both on a
// program with many polymorphic "cell" wrappers and reports (a) the
// precision gap — how many queried variables get strictly smaller points-to
// sets from the CFL analysis — and (b) the cost profile — one up-front
// whole-program fixpoint vs per-query times.
//
// Run with: go run ./examples/andersen-vs-cfl
package main

import (
	"fmt"
	"log"
	"time"

	"parcfl"
)

const (
	tObject = parcfl.TypeID(iota)
	tA
	tB
	tCell
)

const fVal = parcfl.FieldID(1)

// buildProgram creates nPairs code fragments, each storing a distinct A or B
// object into its own Cell via a shared setter/getter pair — the classic
// pattern where context-insensitive analysis conflates everything passed
// through the shared accessors, while context-sensitive CFL-reachability
// keeps each cell's contents separate.
func buildProgram(nPairs int) *parcfl.Program {
	p := &parcfl.Program{
		Types: []parcfl.Type{
			{Name: "Object", Ref: true},
			{Name: "A", Ref: true},
			{Name: "B", Ref: true},
			{Name: "Cell", Ref: true, Fields: []parcfl.Field{{Name: "val", ID: fVal, Type: tObject}}},
		},
	}
	// 0: Cell.set(this, v) { this.val = v }
	p.Methods = append(p.Methods, parcfl.Method{
		Name: "Cell.set",
		Locals: []parcfl.LocalVar{
			{Name: "this", Type: tCell}, {Name: "v", Type: tObject},
		},
		Params: []int{0, 1}, Ret: -1,
		Body: []parcfl.Stmt{
			{Kind: parcfl.StStore, Base: parcfl.Local(0), Field: fVal, Src: parcfl.Local(1)},
		},
	})
	// 1: Object Cell.get(this) { return this.val }
	p.Methods = append(p.Methods, parcfl.Method{
		Name: "Cell.get",
		Locals: []parcfl.LocalVar{
			{Name: "this", Type: tCell}, {Name: "r", Type: tObject},
		},
		Params: []int{0}, Ret: 1,
		Body: []parcfl.Stmt{
			{Kind: parcfl.StLoad, Dst: parcfl.Local(1), Base: parcfl.Local(0), Field: fVal},
		},
	})
	// Fragments: c = new Cell; x = new A|B; set(c, x); y = get(c).
	for i := 0; i < nPairs; i++ {
		payload := tA
		if i%2 == 1 {
			payload = tB
		}
		p.Methods = append(p.Methods, parcfl.Method{
			Name: fmt.Sprintf("frag%d", i),
			Locals: []parcfl.LocalVar{
				{Name: "c", Type: tCell},
				{Name: "x", Type: payload},
				{Name: "y", Type: tObject},
			},
			Ret: -1, Application: true,
			Body: []parcfl.Stmt{
				{Kind: parcfl.StAlloc, Dst: parcfl.Local(0), Type: tCell},
				{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: payload},
				{Kind: parcfl.StCall, Callee: 0, Args: []parcfl.VarRef{parcfl.Local(0), parcfl.Local(1)}, Dst: parcfl.NoVar},
				{Kind: parcfl.StCall, Callee: 1, Args: []parcfl.VarRef{parcfl.Local(0)}, Dst: parcfl.Local(2)},
			},
		})
	}
	return p
}

func main() {
	const pairs = 120
	a, err := parcfl.NewAnalyzer(buildProgram(pairs))
	if err != nil {
		log.Fatal(err)
	}
	queries := a.ApplicationQueryVars()
	fmt.Printf("PAG: %d nodes, %d edges; %d queried variables\n\n", a.NumNodes(), a.NumEdges(), len(queries))

	t0 := time.Now()
	whole := a.Andersen()
	andersenTime := time.Since(t0)

	t0 = time.Now()
	res, stats := a.RunBatch(queries, parcfl.BatchOptions{
		Mode: parcfl.SharingScheduling, Threads: 4, Budget: 75000,
	})
	demandTime := time.Since(t0)

	strictlySmaller, equal, total := 0, 0, 0
	var andSizes, cflSizes int
	for _, r := range res {
		if r.Aborted {
			continue
		}
		total++
		as := len(whole.PointsTo(r.Var))
		cs := len(r.Objects)
		andSizes += as
		cflSizes += cs
		switch {
		case cs < as:
			strictlySmaller++
		case cs == as:
			equal++
		default:
			log.Fatalf("unsound: CFL set larger than Andersen for %s", a.NodeName(r.Var))
		}
	}

	fmt.Printf("Andersen (whole-program, context-insensitive): %v total\n", andersenTime.Round(time.Microsecond))
	fmt.Printf("CFL (demand, context-sensitive, 4 workers):    %v total, %v per query\n\n",
		demandTime.Round(time.Microsecond), (stats.Wall / time.Duration(stats.Queries)).Round(time.Microsecond))

	fmt.Printf("precision over %d queried variables:\n", total)
	fmt.Printf("  strictly smaller points-to set: %d\n", strictlySmaller)
	fmt.Printf("  equal:                          %d\n", equal)
	fmt.Printf("  avg |pts|: Andersen=%.2f, CFL=%.2f\n",
		float64(andSizes)/float64(total), float64(cflSizes)/float64(total))

	// Show one conflation concretely: frag0.y through the shared Cell
	// accessors.
	y0 := a.LocalNode(2, 2)
	fmt.Printf("\nexample: %s\n", a.NodeName(y0))
	fmt.Printf("  Andersen: %d objects (every payload ever stored through Cell.set)\n", len(whole.PointsTo(y0)))
	r := a.PointsTo(y0, parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
	fmt.Printf("  CFL:      %d object(s): ", len(r.Objects()))
	for i, o := range r.Objects() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(a.NodeName(o))
	}
	fmt.Println()
}
