// Null-dereference screening: a demand-driven client of the pointer
// analysis, the kind of client the paper says CFL-reachability serves well
// (Section IV-A mentions null-pointer detection specifically).
//
// Java analyses commonly model `null` as a special allocation site. Here a
// registry's lookup method returns either a cached object or NULL; call
// sites that dereference the result without a check are screened by asking,
// on demand, whether the dereferenced variable may point to the NULL
// sentinel. Only the handful of variables at dereference sites are queried
// — the whole-program points-to solution is never computed, which is the
// point of demand-driven analysis.
//
// Run with: go run ./examples/nullderef
package main

import (
	"fmt"
	"log"

	"parcfl"
)

const (
	tObject = parcfl.TypeID(iota)
	tNull
	tWidget
	tRegistry
)

const (
	fSlot = parcfl.FieldID(1) // Registry.slot
	fNext = parcfl.FieldID(2) // Widget.next
)

// buildProgram models:
//
//	class Registry { Object slot; Object lookup() { return this.slot; } }
//	Registry r = new Registry();
//	r.slot = NULL;                       // initially empty
//	if (...) r.slot = new Widget();      // sometimes populated
//	w1 = r.lookup(); w1.next ...         // unchecked dereference  <- flagged
//	w2 = new Widget(); w2.next ...       // always fresh           <- clean
func buildProgram() *parcfl.Program {
	return &parcfl.Program{
		Types: []parcfl.Type{
			{Name: "Object", Ref: true},
			{Name: "Null", Ref: true}, // the null sentinel "class"
			{Name: "Widget", Ref: true, Fields: []parcfl.Field{{Name: "next", ID: fNext, Type: tObject}}},
			{Name: "Registry", Ref: true, Fields: []parcfl.Field{{Name: "slot", ID: fSlot, Type: tObject}}},
		},
		Methods: []parcfl.Method{
			{ // 0: Registry.lookup(this) { return this.slot; }
				Name: "Registry.lookup",
				Locals: []parcfl.LocalVar{
					{Name: "this", Type: tRegistry},
					{Name: "r", Type: tObject},
				},
				Params: []int{0}, Ret: 1, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StLoad, Dst: parcfl.Local(1), Base: parcfl.Local(0), Field: fSlot},
				},
			},
			{ // 1: main
				Name: "main",
				Locals: []parcfl.LocalVar{
					{Name: "reg", Type: tRegistry}, // 0
					{Name: "nul", Type: tNull},     // 1
					{Name: "fresh", Type: tWidget}, // 2
					{Name: "w1", Type: tObject},    // 3: unchecked lookup result
					{Name: "w2", Type: tWidget},    // 4: always fresh
					{Name: "tmp", Type: tObject},   // 5
				},
				Ret: -1, Application: true,
				Body: []parcfl.Stmt{
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(0), Type: tRegistry},                                  // oReg
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(1), Type: tNull},                                      // oNULL
					{Kind: parcfl.StStore, Base: parcfl.Local(0), Field: fSlot, Src: parcfl.Local(1)},              // r.slot = NULL
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(2), Type: tWidget},                                    // oWidget
					{Kind: parcfl.StStore, Base: parcfl.Local(0), Field: fSlot, Src: parcfl.Local(2)},              // r.slot = fresh (one branch)
					{Kind: parcfl.StCall, Callee: 0, Args: []parcfl.VarRef{parcfl.Local(0)}, Dst: parcfl.Local(3)}, // w1 = reg.lookup()
					{Kind: parcfl.StAlloc, Dst: parcfl.Local(4), Type: tWidget},                                    // w2 = new Widget
					{Kind: parcfl.StLoad, Dst: parcfl.Local(5), Base: parcfl.Local(3), Field: fNext},               // w1.next  <- deref
					{Kind: parcfl.StLoad, Dst: parcfl.Local(5), Base: parcfl.Local(4), Field: fNext},               // w2.next  <- deref
				},
			},
		},
	}
}

func main() {
	a, err := parcfl.NewAnalyzer(buildProgram())
	if err != nil {
		log.Fatal(err)
	}

	// The null sentinel is the Null-typed allocation in main (index 1).
	nullObj := a.ObjectNodes(1)[1]

	// Dereference sites to screen: (base variable, description).
	derefs := []struct {
		v    parcfl.NodeID
		site string
	}{
		{a.LocalNode(1, 3), "w1.next (lookup result, unchecked)"},
		{a.LocalNode(1, 4), "w2.next (freshly allocated)"},
	}

	sh := parcfl.NewSharedState() // share discoveries between the queries
	fmt.Println("null-dereference screening (demand-driven):")
	for _, d := range derefs {
		r := a.PointsTo(d.v, parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000, Shared: sh})
		mayBeNull := false
		for _, o := range r.Objects() {
			if o == nullObj {
				mayBeNull = true
			}
		}
		verdict := "OK    "
		if mayBeNull {
			verdict = "UNSAFE"
		}
		fmt.Printf("  %s  %-40s pts={", verdict, d.site)
		for i, o := range r.Objects() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a.NodeName(o))
		}
		fmt.Printf("}  (%d steps)\n", r.Steps)
	}
}
