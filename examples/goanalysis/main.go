// Go code analysis: the same CFL-reachability engine pointed at Go source.
// The program below is the paper's Fig. 2 scenario translated to Go — two
// vectors sharing one implementation, different payloads — and the analysis
// proves pop(v1) and pop(v2) never alias.
//
// Run with: go run ./examples/goanalysis
package main

import (
	"fmt"
	"log"

	"parcfl"
)

const src = `
package main

type Item struct{ tag int }
type Vector struct{ elems []*Item }

func push(v *Vector, e *Item) {
	v.elems = append(v.elems, e)
}
func pop(v *Vector) *Item {
	return v.elems[0]
}
func main() {
	v1 := &Vector{elems: []*Item{}}
	n1 := &Item{}
	push(v1, n1)
	s1 := pop(v1)

	v2 := &Vector{elems: []*Item{}}
	n2 := &Item{}
	push(v2, n2)
	s2 := pop(v2)
	_ = s1
	_ = s2
}
`

func main() {
	prog, err := parcfl.ParseGoProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	a, err := parcfl.NewAnalyzer(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAG from Go source: %d nodes, %d edges\n\n", a.NumNodes(), a.NumEdges())

	mainIdx := -1
	for i := range prog.Methods {
		if prog.Methods[i].Name == "main" {
			mainIdx = i
		}
	}
	slot := func(name string) parcfl.NodeID {
		for i, lv := range prog.Methods[mainIdx].Locals {
			if lv.Name == name {
				return a.LocalNode(mainIdx, i)
			}
		}
		log.Fatalf("no local %q", name)
		return 0
	}

	for _, name := range []string{"s1", "s2"} {
		r := a.PointsTo(slot(name), parcfl.EmptyContext, parcfl.QueryOptions{Budget: 75000})
		fmt.Printf("pts(%s) = {", name)
		for i, o := range r.Objects() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a.NodeName(o))
		}
		fmt.Println("}")
	}
	al, _ := a.Alias(slot("s1"), slot("s2"), parcfl.EmptyContext, parcfl.QueryOptions{})
	fmt.Printf("\nalias(s1, s2) = %v  (context-sensitivity separates the two vectors)\n", al)
}
