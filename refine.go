package parcfl

import (
	"parcfl/internal/cfl"
	"parcfl/internal/refine"
)

// RefineOptions configures refinement-based queries (the Sridharan-Bodik
// configuration the paper contrasts with its general-purpose one).
type RefineOptions struct {
	// BudgetPerPass is the traversal budget for each pass (0 = unbounded).
	BudgetPerPass int
	// MaxPasses bounds refinement iterations; 0 iterates to convergence.
	MaxPasses int
	// Satisfied, if non-nil, stops refinement as soon as a pass's answer
	// satisfies the client (e.g. proves a cast safe).
	Satisfied func(Result) bool
}

// RefineResult is the outcome of a refinement query.
type RefineResult = refine.Result

// PointsToRefined answers a points-to query by iterative refinement: the
// first pass matches all fields regularly (cheap, over-approximate), and
// subsequent passes make the fields the answer depended on precise, until
// the client is satisfied or the answer is fully precise. Clients with weak
// needs (cast checking, "does this ever point to X") often finish on the
// cheap early passes.
func (a *Analyzer) PointsToRefined(v NodeID, ctx Context, o RefineOptions) RefineResult {
	cfg := refine.Config{
		BudgetPerPass: o.BudgetPerPass,
		MaxPasses:     o.MaxPasses,
	}
	if o.Satisfied != nil {
		cfg.Satisfied = func(r cfl.Result) bool { return o.Satisfied(r) }
	}
	return refine.New(a.lo.Graph, cfg).PointsTo(v, ctx)
}
