package frontend

import (
	"testing"

	"parcfl/internal/pag"
	"parcfl/internal/scc"
)

func TestFig2Builds(t *testing.T) {
	f, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	g := f.Lowered.Graph
	if !g.Frozen() {
		t.Fatal("graph not frozen")
	}
	// 14 locals + 5 objects + O.
	if g.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", g.NumNodes())
	}
	// Edges: 5 new, 2 store, 3 load, param edges: init(1)x2 + add(2)x2 + get(1)x2 = 8, ret: 2.
	if g.NumEdges() != 20 {
		t.Fatalf("NumEdges = %d, want 20", g.NumEdges())
	}
	if f.Lowered.CollapsedCalls != 0 {
		t.Fatalf("CollapsedCalls = %d, want 0", f.Lowered.CollapsedCalls)
	}
	if f.Lowered.NumCallSites != 6 {
		t.Fatalf("NumCallSites = %d, want 6", f.Lowered.NumCallSites)
	}
	// All 14 locals are application query variables.
	if len(f.Lowered.AppQueryVars) != 14 {
		t.Fatalf("AppQueryVars = %d, want 14", len(f.Lowered.AppQueryVars))
	}
}

func TestFig2Shape(t *testing.T) {
	f, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	g := f.Lowered.Graph

	// v1 <-new- o15.
	found := false
	for _, he := range g.In(f.V1) {
		if he.Kind == pag.EdgeNew && he.Other == f.O15 {
			found = true
		}
	}
	if !found {
		t.Error("missing v1 <-new- o15")
	}

	// thisVector <-st(elems)- tVector.
	st := g.StoresOf(Fig2FieldElems)
	if len(st) != 1 || st[0].Base != f.ThisVector || st[0].Val != f.TVector {
		t.Errorf("StoresOf(elems) = %v", st)
	}
	// tadd <-st(arr)- eadd.
	starr := g.StoresOf(pag.ArrField)
	if len(starr) != 1 || starr[0].Base != f.TAdd || starr[0].Val != f.EAdd {
		t.Errorf("StoresOf(arr) = %v", starr)
	}
	// Loads of elems: tadd = thisadd.elems, tget = thisget.elems.
	ld := g.LoadsOf(Fig2FieldElems)
	if len(ld) != 2 {
		t.Fatalf("LoadsOf(elems) = %v", ld)
	}

	// eadd has two incoming param edges with distinct call sites.
	var sites []pag.CallSiteID
	for _, he := range g.In(f.EAdd) {
		if he.Kind == pag.EdgeParam {
			sites = append(sites, pag.CallSiteID(he.Label))
		}
	}
	if len(sites) != 2 || sites[0] == sites[1] {
		t.Errorf("eadd param sites = %v", sites)
	}

	// s1 and s2 have one ret edge each, from retget, with distinct sites.
	retSite := func(n pag.NodeID) (pag.CallSiteID, bool) {
		for _, he := range g.In(n) {
			if he.Kind == pag.EdgeRet {
				if he.Other != f.RetGet {
					t.Errorf("ret source = %d, want retget", he.Other)
				}
				return pag.CallSiteID(he.Label), true
			}
		}
		return 0, false
	}
	r1, ok1 := retSite(f.S1)
	r2, ok2 := retSite(f.S2)
	if !ok1 || !ok2 || r1 == r2 {
		t.Errorf("ret sites: %v(%v) %v(%v)", r1, ok1, r2, ok2)
	}
}

func TestTypeLevelsFig2(t *testing.T) {
	f, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	lv := f.Lowered.TypeLevels
	want := map[pag.TypeID]int{
		Fig2TypeInt:     0,
		Fig2TypeObject:  1,
		Fig2TypeObjArr:  2,
		Fig2TypeString:  1,
		Fig2TypeInteger: 1,
		Fig2TypeVector:  3,
	}
	for ty, w := range want {
		if lv[ty] != w {
			t.Errorf("L(%s) = %d, want %d", f.Program.Types[ty].Name, lv[ty], w)
		}
	}
}

func TestTypeLevelsRecursion(t *testing.T) {
	// A linked list: Node { Node next; Object val } — recursive cycle must
	// be collapsed, giving L(Node) = L(Object)+1 = 2.
	types := []Type{
		{Name: "Object", Ref: true},
		{Name: "Node", Ref: true, Fields: []Field{
			{Name: "next", ID: 1, Type: 1},
			{Name: "val", ID: 2, Type: 0},
		}},
	}
	lv := TypeLevels(types)
	if lv[0] != 1 || lv[1] != 2 {
		t.Fatalf("levels = %v, want [1 2]", lv)
	}
}

func TestTypeLevelsMutualRecursion(t *testing.T) {
	// A <-> B mutual recursion plus a chain below.
	types := []Type{
		{Name: "leaf", Ref: true}, // 0: L=1
		{Name: "mid", Ref: true, Fields: []Field{{Name: "l", ID: 1, Type: 0}}},                            // 1: L=2
		{Name: "A", Ref: true, Fields: []Field{{Name: "b", ID: 2, Type: 3}, {Name: "m", ID: 3, Type: 1}}}, // 2
		{Name: "B", Ref: true, Fields: []Field{{Name: "a", ID: 4, Type: 2}}},                              // 3
	}
	lv := TypeLevels(types)
	if lv[0] != 1 || lv[1] != 2 {
		t.Fatalf("chain levels = %v", lv)
	}
	// A and B share an SCC: both get max(outside)+1 = L(mid)+1 = 3.
	if lv[2] != 3 || lv[3] != 3 {
		t.Fatalf("SCC levels = %v, want A=B=3", lv)
	}
}

func TestTypeLevelsPrimitivesZero(t *testing.T) {
	types := []Type{
		{Name: "int", Ref: false},
		{Name: "C", Ref: true, Fields: []Field{{Name: "x", ID: 1, Type: 0}}},
	}
	lv := TypeLevels(types)
	if lv[0] != 0 {
		t.Fatalf("L(int) = %d, want 0", lv[0])
	}
	if lv[1] != 1 {
		t.Fatalf("L(C) = %d, want 1 (primitive fields do not raise the level)", lv[1])
	}
}

func TestRecursionCollapsing(t *testing.T) {
	// f calls g, g calls f (mutual recursion), and main calls f.
	obj := pag.TypeID(0)
	p := &Program{
		Types: []Type{{Name: "Object", Ref: true}},
		Methods: []Method{
			{
				Name:   "f",
				Locals: []LocalVar{{Name: "pf", Type: obj}, {Name: "rf", Type: obj}},
				Params: []int{0}, Ret: 1,
				Body: []Stmt{
					{Kind: StCall, Callee: 1, Args: []VarRef{Local(0)}, Dst: Local(1)},
				},
			},
			{
				Name:   "g",
				Locals: []LocalVar{{Name: "pg", Type: obj}, {Name: "rg", Type: obj}},
				Params: []int{0}, Ret: 1,
				Body: []Stmt{
					{Kind: StCall, Callee: 0, Args: []VarRef{Local(0)}, Dst: Local(1)},
					{Kind: StAssign, Dst: Local(1), Src: Local(0)},
				},
			},
			{
				Name:   "main",
				Locals: []LocalVar{{Name: "a", Type: obj}, {Name: "r", Type: obj}},
				Params: nil, Ret: -1,
				Body: []Stmt{
					{Kind: StAlloc, Dst: Local(0), Type: obj},
					{Kind: StCall, Callee: 0, Args: []VarRef{Local(0)}, Dst: Local(1)},
				},
			},
		},
	}
	lo, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	// f<->g collapse: 2 call sites collapsed; main->f stays sensitive.
	if lo.CollapsedCalls != 2 {
		t.Fatalf("CollapsedCalls = %d, want 2", lo.CollapsedCalls)
	}
	if lo.NumCallSites != 1 {
		t.Fatalf("NumCallSites = %d, want 1", lo.NumCallSites)
	}
	if lo.MethodSCC[0] != lo.MethodSCC[1] {
		t.Fatal("f and g not in the same SCC")
	}
	if lo.MethodSCC[0] == lo.MethodSCC[2] {
		t.Fatal("main must not join f/g's SCC")
	}
	// The collapsed calls become assignl edges: pg <- pf, pf <- pg etc.
	g := lo.Graph
	hasAssign := func(dst, src pag.NodeID) bool {
		for _, he := range g.In(dst) {
			if he.Kind == pag.EdgeAssignLocal && he.Other == src {
				return true
			}
		}
		return false
	}
	pf, rf := lo.LocalNode[0][0], lo.LocalNode[0][1]
	pg, rg := lo.LocalNode[1][0], lo.LocalNode[1][1]
	if !hasAssign(pg, pf) {
		t.Error("missing collapsed param edge pg <- pf")
	}
	if !hasAssign(pf, pg) {
		t.Error("missing collapsed param edge pf <- pg")
	}
	if !hasAssign(rf, rg) {
		t.Error("missing collapsed ret edge rf <- rg")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	obj := pag.TypeID(0)
	base := func() *Program {
		return &Program{
			Types: []Type{{Name: "Object", Ref: true}},
			Methods: []Method{{
				Name:   "m",
				Locals: []LocalVar{{Name: "a", Type: obj}},
				Ret:    -1,
				Body:   []Stmt{{Kind: StAlloc, Dst: Local(0), Type: obj}},
			}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base program invalid: %v", err)
	}

	cases := []struct {
		name string
		mod  func(*Program)
	}{
		{"unknown local", func(p *Program) { p.Methods[0].Body[0].Dst = Local(9) }},
		{"unknown global", func(p *Program) { p.Methods[0].Body[0].Dst = Global(0) }},
		{"unknown type", func(p *Program) { p.Methods[0].Body[0].Type = 42 }},
		{"bad ret slot", func(p *Program) { p.Methods[0].Ret = 7 }},
		{"bad param slot", func(p *Program) { p.Methods[0].Params = []int{5} }},
		{"unknown callee", func(p *Program) {
			p.Methods[0].Body = append(p.Methods[0].Body, Stmt{Kind: StCall, Callee: 3, Dst: NoVar})
		}},
		{"arity mismatch", func(p *Program) {
			p.Methods[0].Body = append(p.Methods[0].Body,
				Stmt{Kind: StCall, Callee: 0, Args: []VarRef{Local(0)}, Dst: NoVar})
		}},
		{"result from void callee", func(p *Program) {
			p.Methods[0].Body = append(p.Methods[0].Body,
				Stmt{Kind: StCall, Callee: 0, Dst: Local(0)})
		}},
		{"alloc without dst", func(p *Program) { p.Methods[0].Body[0].Dst = NoVar }},
		{"global arg", func(p *Program) {
			p.Globals = append(p.Globals, GlobalVar{Name: "G", Type: obj})
			p.Methods[0].Params = []int{0}
			p.Methods[0].Body = append(p.Methods[0].Body,
				Stmt{Kind: StCall, Callee: 0, Args: []VarRef{Global(0)}, Dst: NoVar})
		}},
	}
	for _, c := range cases {
		p := base()
		c.mod(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", c.name)
		}
	}
}

func TestTarjanSCC(t *testing.T) {
	// 0->1->2->0 (cycle), 2->3, 3->4, 4->3 (cycle), 5 isolated.
	succ := map[int][]int{0: {1}, 1: {2}, 2: {0, 3}, 3: {4}, 4: {3}}
	comp, n := scc.Compute(6, func(v int) []int { return succ[v] })
	if n != 3 {
		t.Fatalf("numComp = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("3,4 should share a component")
	}
	if comp[0] == comp[3] || comp[3] == comp[5] || comp[0] == comp[5] {
		t.Error("components improperly merged")
	}
	// Reverse topological order: successors have smaller component ids.
	if !(comp[3] < comp[0]) {
		t.Errorf("want comp[3] < comp[0]: %v", comp)
	}
}

func TestTarjanSCCDeepChain(t *testing.T) {
	// A 100000-node chain must not overflow (iterative DFS).
	n := 100000
	comp, nc := scc.Compute(n, func(v int) []int {
		if v+1 < n {
			return []int{v + 1}
		}
		return nil
	})
	if nc != n {
		t.Fatalf("numComp = %d, want %d", nc, n)
	}
	if comp[n-1] != 0 {
		t.Fatalf("sink component = %d, want 0 (reverse topo)", comp[n-1])
	}
}

func TestNumStatements(t *testing.T) {
	f, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Program.NumStatements(); got != 16 {
		t.Fatalf("NumStatements = %d, want 16", got)
	}
}
