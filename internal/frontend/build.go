package frontend

import (
	"fmt"

	"parcfl/internal/pag"
	"parcfl/internal/scc"
)

// Lowered is the result of lowering a Program to a PAG, along with the side
// tables the analysis layers need.
type Lowered struct {
	// Graph is the frozen PAG.
	Graph *pag.Graph
	// LocalNode[m][i] is the PAG node of local slot i of method m.
	LocalNode [][]pag.NodeID
	// GlobalNode[g] is the PAG node of global g.
	GlobalNode []pag.NodeID
	// ObjectNode[m] lists, in statement order, the object nodes of the
	// allocation sites in method m.
	ObjectNode [][]pag.NodeID
	// TypeLevels[t] is L(t) per Section III-C2, consumed by the query
	// scheduler's dependence-depth heuristic.
	TypeLevels []int
	// AppQueryVars lists the PAG nodes of all local variables declared in
	// application methods — the batch of queries the paper issues for
	// each benchmark ("all the local variables in its application code").
	AppQueryVars []pag.NodeID
	// MethodSCC[m] is the call-graph SCC index of method m.
	MethodSCC []int
	// CollapsedCalls counts call sites whose param/ret edges were demoted
	// to plain assignments because caller and callee share a call-graph
	// SCC (the paper's "recursion cycles of the call graph are
	// collapsed").
	CollapsedCalls int
	// NumCallSites is the number of context-sensitive call sites emitted.
	NumCallSites int
}

// Lower validates and lowers a program to its PAG per the statement
// semantics of Fig. 2, collapsing recursive call cycles.
func Lower(p *Program) (*Lowered, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}

	g := pag.NewGraph()
	lo := &Lowered{
		Graph:      g,
		LocalNode:  make([][]pag.NodeID, len(p.Methods)),
		GlobalNode: make([]pag.NodeID, len(p.Globals)),
		ObjectNode: make([][]pag.NodeID, len(p.Methods)),
		TypeLevels: TypeLevels(p.Types),
	}

	for gi, gv := range p.Globals {
		lo.GlobalNode[gi] = g.AddGlobal(gv.Name, gv.Type)
	}
	for mi := range p.Methods {
		m := &p.Methods[mi]
		lo.LocalNode[mi] = make([]pag.NodeID, len(m.Locals))
		for li, lv := range m.Locals {
			n := g.AddLocal(fmt.Sprintf("%s.%s", m.Name, lv.Name), lv.Type, pag.MethodID(mi))
			lo.LocalNode[mi][li] = n
			if m.Application {
				lo.AppQueryVars = append(lo.AppQueryVars, n)
			}
		}
	}

	// Call graph and its SCCs (for recursion collapsing).
	callees := make([][]int, len(p.Methods))
	for mi := range p.Methods {
		for _, s := range p.Methods[mi].Body {
			if s.Kind == StCall {
				callees[mi] = append(callees[mi], s.Callee)
			}
		}
	}
	lo.MethodSCC, _ = scc.Compute(len(p.Methods), func(v int) []int { return callees[v] })

	node := func(mi int, v VarRef) pag.NodeID {
		if v.Global {
			return lo.GlobalNode[v.Index]
		}
		return lo.LocalNode[mi][v.Index]
	}
	isGlobal := func(v VarRef) bool { return v.Global }

	addAssign := func(dst, src pag.NodeID, anyGlobal bool) {
		k := pag.EdgeAssignLocal
		if anyGlobal {
			k = pag.EdgeAssignGlobal
		}
		g.AddEdge(pag.Edge{Dst: dst, Src: src, Kind: k})
	}

	nextSite := pag.CallSiteID(1) // 0 is reserved so contexts stay non-trivial to misread
	for mi := range p.Methods {
		m := &p.Methods[mi]
		for si, s := range m.Body {
			switch s.Kind {
			case StAlloc:
				o := g.AddObject(fmt.Sprintf("o@%s:%d", m.Name, si), s.Type)
				lo.ObjectNode[mi] = append(lo.ObjectNode[mi], o)
				g.AddEdge(pag.Edge{Dst: node(mi, s.Dst), Src: o, Kind: pag.EdgeNew})
			case StAssign:
				addAssign(node(mi, s.Dst), node(mi, s.Src), isGlobal(s.Dst) || isGlobal(s.Src))
			case StLoad:
				g.AddEdge(pag.Edge{Dst: node(mi, s.Dst), Src: node(mi, s.Base), Kind: pag.EdgeLoad, Label: pag.Label(s.Field)})
			case StStore:
				g.AddEdge(pag.Edge{Dst: node(mi, s.Base), Src: node(mi, s.Src), Kind: pag.EdgeStore, Label: pag.Label(s.Field)})
			case StCall:
				callee := &p.Methods[s.Callee]
				recursive := lo.MethodSCC[mi] == lo.MethodSCC[s.Callee]
				var site pag.CallSiteID
				if recursive {
					lo.CollapsedCalls++
				} else {
					site = nextSite
					nextSite++
					lo.NumCallSites++
				}
				for ai, a := range s.Args {
					formal := lo.LocalNode[s.Callee][callee.Params[ai]]
					actual := node(mi, a)
					if recursive {
						addAssign(formal, actual, isGlobal(a))
					} else {
						g.AddEdge(pag.Edge{Dst: formal, Src: actual, Kind: pag.EdgeParam, Label: pag.Label(site)})
					}
				}
				if !s.Dst.IsNoVar() {
					retNode := lo.LocalNode[s.Callee][callee.Ret]
					dst := node(mi, s.Dst)
					if recursive {
						addAssign(dst, retNode, isGlobal(s.Dst))
					} else {
						g.AddEdge(pag.Edge{Dst: dst, Src: retNode, Kind: pag.EdgeRet, Label: pag.Label(site)})
					}
				}
			}
		}
	}

	g.Freeze()
	return lo, nil
}
