// Package frontend defines a miniature Java-like intermediate representation
// (classes with reference-typed fields, methods with parameters and returns,
// allocation/assignment/load/store/call statements) and lowers it to the
// Pointer Assignment Graph of package pag.
//
// It stands in for the Soot 2.5.0 frontend the paper used: the analysis
// itself consumes only the PAG, so any frontend producing PAGs with the
// statement semantics of Fig. 2 exercises identical solver code paths. The
// lowering also performs the two preprocessing steps the paper applies
// (Section IV-A): recursion cycles of the call graph are collapsed (call
// edges inside a call-graph SCC are emitted as plain assignments, keeping
// context strings finite), and the type table is analysed to produce the
// type levels L(t) that drive query scheduling (Section III-C2).
package frontend

import (
	"fmt"

	"parcfl/internal/pag"
)

// Field is one instance field of a reference type.
type Field struct {
	Name string
	// ID is the program-wide field identifier used on ld/st edge labels.
	// Distinct fields with the same name in different classes may share
	// an ID only if the generator wants field-based smashing; normally
	// IDs are unique per (class, name).
	ID pag.FieldID
	// Type is the field's declared type.
	Type pag.TypeID
}

// Type is a declared type. Index in Program.Types is its pag.TypeID.
type Type struct {
	Name string
	// Ref reports whether this is a reference type (class or array).
	// Primitive types have Ref false and never contribute to levels.
	Ref bool
	// Fields lists the instance fields (reference- or primitive-typed).
	Fields []Field
}

// VarRef names a variable: either a global (static) variable or a local slot
// of a specific method.
type VarRef struct {
	// Global selects Program.Globals[Index] when true, otherwise local
	// slot Index of the enclosing method.
	Global bool
	Index  int
}

// Local returns a reference to local slot i of the enclosing method.
func Local(i int) VarRef { return VarRef{Index: i} }

// Global returns a reference to global variable i.
func Global(i int) VarRef { return VarRef{Global: true, Index: i} }

// GlobalVar is a static variable.
type GlobalVar struct {
	Name string
	Type pag.TypeID
}

// LocalVar is a local variable slot of a method.
type LocalVar struct {
	Name string
	Type pag.TypeID
}

// StmtKind discriminates Stmt.
type StmtKind uint8

const (
	// StAlloc is dst = new T (an allocation site).
	StAlloc StmtKind = iota
	// StAssign is dst = src.
	StAssign
	// StLoad is dst = base.f.
	StLoad
	// StStore is base.f = src.
	StStore
	// StCall is dst = callee(args...) at a fresh call site. Dispatch is
	// already resolved (the paper's PAG likewise embeds a precomputed
	// call graph).
	StCall
)

// Stmt is one statement. Which fields are meaningful depends on Kind.
type Stmt struct {
	Kind   StmtKind
	Dst    VarRef      // Alloc, Assign, Load, Call (receiver of return value; may be NoVar)
	Src    VarRef      // Assign, Store
	Base   VarRef      // Load, Store
	Field  pag.FieldID // Load, Store
	Type   pag.TypeID  // Alloc
	Callee int         // Call: index into Program.Methods
	Args   []VarRef    // Call: actuals, matched positionally to callee params
}

// NoVar marks an absent variable operand (e.g. a call whose result is
// discarded, or a method with no return value).
var NoVar = VarRef{Index: -1}

// IsNoVar reports whether v is the absent-operand marker.
func (v VarRef) IsNoVar() bool { return !v.Global && v.Index == -1 }

// Method is one method. Index in Program.Methods is its pag.MethodID.
type Method struct {
	Name string
	// Locals are the method's variable slots. Params and Ret refer into
	// this slice.
	Locals []LocalVar
	// Params lists the local slots that receive arguments, in order.
	Params []int
	// Ret is the local slot whose value the method returns, or -1.
	Ret int
	// Body is the statement list. Order is irrelevant to the (flow-
	// insensitive) analysis but kept for readability of dumps.
	Body []Stmt
	// Application marks methods belonging to the application (as opposed
	// to library) code; queries are issued for application locals only,
	// matching the paper's query census.
	Application bool
}

// Program is a whole mini-Java program.
type Program struct {
	Types   []Type
	Globals []GlobalVar
	Methods []Method
}

// Validate checks referential integrity of the program: every type, field,
// variable, method and call-site reference must be in range. It returns the
// first problem found.
func (p *Program) Validate() error {
	checkType := func(t pag.TypeID, what string) error {
		if t == pag.UntypedType {
			return nil
		}
		if int(t) >= len(p.Types) {
			return fmt.Errorf("frontend: %s references unknown type %d", what, t)
		}
		return nil
	}
	for gi, g := range p.Globals {
		if err := checkType(g.Type, fmt.Sprintf("global %d (%s)", gi, g.Name)); err != nil {
			return err
		}
	}
	for ti, t := range p.Types {
		for _, f := range t.Fields {
			if err := checkType(f.Type, fmt.Sprintf("field %s.%s", t.Name, f.Name)); err != nil {
				return err
			}
			_ = ti
		}
	}
	for mi := range p.Methods {
		m := &p.Methods[mi]
		checkVar := func(v VarRef, what string) error {
			if v.IsNoVar() {
				return nil
			}
			if v.Global {
				if v.Index < 0 || v.Index >= len(p.Globals) {
					return fmt.Errorf("frontend: method %s: %s references unknown global %d", m.Name, what, v.Index)
				}
				return nil
			}
			if v.Index < 0 || v.Index >= len(m.Locals) {
				return fmt.Errorf("frontend: method %s: %s references unknown local %d", m.Name, what, v.Index)
			}
			return nil
		}
		for _, pi := range m.Params {
			if pi < 0 || pi >= len(m.Locals) {
				return fmt.Errorf("frontend: method %s: param slot %d out of range", m.Name, pi)
			}
		}
		if m.Ret != -1 && (m.Ret < 0 || m.Ret >= len(m.Locals)) {
			return fmt.Errorf("frontend: method %s: ret slot %d out of range", m.Name, m.Ret)
		}
		for si, s := range m.Body {
			what := fmt.Sprintf("stmt %d", si)
			switch s.Kind {
			case StAlloc:
				if s.Dst.IsNoVar() {
					return fmt.Errorf("frontend: method %s: %s: alloc without destination", m.Name, what)
				}
				if err := checkVar(s.Dst, what); err != nil {
					return err
				}
				if err := checkType(s.Type, what); err != nil {
					return err
				}
			case StAssign:
				if err := firstErr(checkVar(s.Dst, what), checkVar(s.Src, what)); err != nil {
					return err
				}
				if s.Dst.IsNoVar() || s.Src.IsNoVar() {
					return fmt.Errorf("frontend: method %s: %s: assign with missing operand", m.Name, what)
				}
			case StLoad:
				if err := firstErr(checkVar(s.Dst, what), checkVar(s.Base, what)); err != nil {
					return err
				}
				if s.Dst.IsNoVar() || s.Base.IsNoVar() {
					return fmt.Errorf("frontend: method %s: %s: load with missing operand", m.Name, what)
				}
			case StStore:
				if err := firstErr(checkVar(s.Base, what), checkVar(s.Src, what)); err != nil {
					return err
				}
				if s.Base.IsNoVar() || s.Src.IsNoVar() {
					return fmt.Errorf("frontend: method %s: %s: store with missing operand", m.Name, what)
				}
			case StCall:
				if s.Callee < 0 || s.Callee >= len(p.Methods) {
					return fmt.Errorf("frontend: method %s: %s: unknown callee %d", m.Name, what, s.Callee)
				}
				callee := &p.Methods[s.Callee]
				if len(s.Args) != len(callee.Params) {
					return fmt.Errorf("frontend: method %s: %s: %d args for %d params of %s",
						m.Name, what, len(s.Args), len(callee.Params), callee.Name)
				}
				for ai, a := range s.Args {
					if err := checkVar(a, fmt.Sprintf("%s arg %d", what, ai)); err != nil {
						return err
					}
					if a.IsNoVar() {
						return fmt.Errorf("frontend: method %s: %s: missing arg %d", m.Name, what, ai)
					}
					// param edges connect locals only (Fig. 1); route
					// globals through a temporary local instead.
					if a.Global {
						return fmt.Errorf("frontend: method %s: %s: global passed directly as arg %d; use a local temp", m.Name, what, ai)
					}
				}
				if err := checkVar(s.Dst, what); err != nil {
					return err
				}
				if !s.Dst.IsNoVar() && s.Dst.Global {
					return fmt.Errorf("frontend: method %s: %s: call result assigned directly to a global; use a local temp", m.Name, what)
				}
				if !s.Dst.IsNoVar() && callee.Ret == -1 {
					return fmt.Errorf("frontend: method %s: %s: callee %s returns nothing", m.Name, what, callee.Name)
				}
			default:
				return fmt.Errorf("frontend: method %s: %s: unknown statement kind %d", m.Name, what, s.Kind)
			}
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// NumStatements returns the total statement count, a rough program-size
// metric used by the benchmark census.
func (p *Program) NumStatements() int {
	n := 0
	for i := range p.Methods {
		n += len(p.Methods[i].Body)
	}
	return n
}
