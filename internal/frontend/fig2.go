package frontend

import "parcfl/internal/pag"

// Fig2 exposes the PAG nodes of the paper's running example (Fig. 2), named
// as in the paper, so tests and examples can assert the exact facts the
// paper derives (e.g. s1main points to o16 but not o20).
type Fig2 struct {
	Program *Program
	Lowered *Lowered

	// main's locals.
	V1, N1, S1, V2, N2, S2 pag.NodeID
	// Vector.<init>'s locals.
	ThisVector, TVector pag.NodeID
	// Vector.add's locals.
	ThisAdd, EAdd, TAdd pag.NodeID
	// Vector.get's locals.
	ThisGet, TGet, RetGet pag.NodeID
	// Allocation sites, named by the paper's line numbers.
	O6, O15, O16, O19, O20 pag.NodeID
}

// Field IDs of the example. ArrField (0) is the collapsed array-element
// pseudo-field; Elems is Vector.elems.
const (
	Fig2FieldElems = pag.FieldID(1)
)

// Type IDs of the example.
const (
	Fig2TypeInt     = pag.TypeID(0)
	Fig2TypeObject  = pag.TypeID(1)
	Fig2TypeObjArr  = pag.TypeID(2)
	Fig2TypeString  = pag.TypeID(3)
	Fig2TypeInteger = pag.TypeID(4)
	Fig2TypeVector  = pag.TypeID(5)
)

// BuildFig2 constructs and lowers the Vector example of Fig. 2.
func BuildFig2() (*Fig2, error) {
	p := &Program{
		Types: []Type{
			{Name: "int", Ref: false},
			{Name: "java.lang.Object", Ref: true},
			{Name: "java.lang.Object[]", Ref: true, Fields: []Field{{Name: "arr", ID: pag.ArrField, Type: Fig2TypeObject}}},
			{Name: "java.lang.String", Ref: true},
			{Name: "java.lang.Integer", Ref: true},
			{Name: "Vector", Ref: true, Fields: []Field{
				{Name: "elems", ID: Fig2FieldElems, Type: Fig2TypeObjArr},
				{Name: "count", ID: 2, Type: Fig2TypeInt},
			}},
		},
	}

	// Method 0: Vector.<init>(this) — t = new Object[MAXSIZE]; this.elems = t.
	p.Methods = append(p.Methods, Method{
		Name: "Vector.<init>",
		Locals: []LocalVar{
			{Name: "this", Type: Fig2TypeVector},
			{Name: "t", Type: Fig2TypeObjArr},
		},
		Params:      []int{0},
		Ret:         -1,
		Application: true,
		Body: []Stmt{
			{Kind: StAlloc, Dst: Local(1), Type: Fig2TypeObjArr},                  // o6
			{Kind: StStore, Base: Local(0), Field: Fig2FieldElems, Src: Local(1)}, // this.elems = t
		},
	})
	// Method 1: Vector.add(this, e) — t = this.elems; t[count++] = e.
	p.Methods = append(p.Methods, Method{
		Name: "Vector.add",
		Locals: []LocalVar{
			{Name: "this", Type: Fig2TypeVector},
			{Name: "e", Type: Fig2TypeObject},
			{Name: "t", Type: Fig2TypeObjArr},
		},
		Params:      []int{0, 1},
		Ret:         -1,
		Application: true,
		Body: []Stmt{
			{Kind: StLoad, Dst: Local(2), Base: Local(0), Field: Fig2FieldElems}, // t = this.elems
			{Kind: StStore, Base: Local(2), Field: pag.ArrField, Src: Local(1)},  // t[..] = e
		},
	})
	// Method 2: Vector.get(this) — t = this.elems; return t[i].
	p.Methods = append(p.Methods, Method{
		Name: "Vector.get",
		Locals: []LocalVar{
			{Name: "this", Type: Fig2TypeVector},
			{Name: "t", Type: Fig2TypeObjArr},
			{Name: "ret", Type: Fig2TypeObject},
		},
		Params:      []int{0},
		Ret:         2,
		Application: true,
		Body: []Stmt{
			{Kind: StLoad, Dst: Local(1), Base: Local(0), Field: Fig2FieldElems}, // t = this.elems
			{Kind: StLoad, Dst: Local(2), Base: Local(1), Field: pag.ArrField},   // ret = t[i]
		},
	})
	// Method 3: main.
	p.Methods = append(p.Methods, Method{
		Name: "main",
		Locals: []LocalVar{
			{Name: "v1", Type: Fig2TypeVector},
			{Name: "n1", Type: Fig2TypeString},
			{Name: "s1", Type: Fig2TypeObject},
			{Name: "v2", Type: Fig2TypeVector},
			{Name: "n2", Type: Fig2TypeInteger},
			{Name: "s2", Type: Fig2TypeObject},
		},
		Params:      nil,
		Ret:         -1,
		Application: true,
		Body: []Stmt{
			{Kind: StAlloc, Dst: Local(0), Type: Fig2TypeVector},                      // o15: v1 = new Vector
			{Kind: StCall, Callee: 0, Args: []VarRef{Local(0)}, Dst: NoVar},           // Vector.<init>(v1), "site 15"
			{Kind: StAlloc, Dst: Local(1), Type: Fig2TypeString},                      // o16: n1 = new String
			{Kind: StCall, Callee: 1, Args: []VarRef{Local(0), Local(1)}, Dst: NoVar}, // v1.add(n1), "site 17"
			{Kind: StCall, Callee: 2, Args: []VarRef{Local(0)}, Dst: Local(2)},        // s1 = v1.get(0), "site 18"
			{Kind: StAlloc, Dst: Local(3), Type: Fig2TypeVector},                      // o19: v2 = new Vector
			{Kind: StCall, Callee: 0, Args: []VarRef{Local(3)}, Dst: NoVar},           // Vector.<init>(v2), "site 19"
			{Kind: StAlloc, Dst: Local(4), Type: Fig2TypeInteger},                     // o20: n2 = new Integer
			{Kind: StCall, Callee: 1, Args: []VarRef{Local(3), Local(4)}, Dst: NoVar}, // v2.add(n2), "site 21"
			{Kind: StCall, Callee: 2, Args: []VarRef{Local(3)}, Dst: Local(5)},        // s2 = v2.get(0), "site 22"
		},
	})

	lo, err := Lower(p)
	if err != nil {
		return nil, err
	}
	f := &Fig2{
		Program: p,
		Lowered: lo,

		ThisVector: lo.LocalNode[0][0],
		TVector:    lo.LocalNode[0][1],
		ThisAdd:    lo.LocalNode[1][0],
		EAdd:       lo.LocalNode[1][1],
		TAdd:       lo.LocalNode[1][2],
		ThisGet:    lo.LocalNode[2][0],
		TGet:       lo.LocalNode[2][1],
		RetGet:     lo.LocalNode[2][2],
		V1:         lo.LocalNode[3][0],
		N1:         lo.LocalNode[3][1],
		S1:         lo.LocalNode[3][2],
		V2:         lo.LocalNode[3][3],
		N2:         lo.LocalNode[3][4],
		S2:         lo.LocalNode[3][5],

		O6:  lo.ObjectNode[0][0],
		O15: lo.ObjectNode[3][0],
		O16: lo.ObjectNode[3][1],
		O19: lo.ObjectNode[3][2],
		O20: lo.ObjectNode[3][3],
	}
	return f, nil
}
