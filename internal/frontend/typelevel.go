package frontend

import (
	"parcfl/internal/pag"
	"parcfl/internal/scc"
)

// TypeLevels computes the level L(t) of every type, per Section III-C2:
//
//	L(t) = max_{ti in FT(t)} L(ti) + 1   if isRef(t)
//	L(t) = 0                             otherwise
//
// where FT(t) enumerates the types of all instance fields of t, modulo
// recursion. Recursive field cycles are handled by collapsing the
// type-containment graph into SCCs (every type in a cycle receives the same
// level, computed from field types outside the cycle), which is the natural
// reading of "modulo recursion".
//
// The returned slice is indexed by pag.TypeID. A reference type with no
// reference-typed fields has level 1; primitives have level 0.
func TypeLevels(types []Type) []int {
	n := len(types)
	succs := make([][]int, n)
	for i := range types {
		if !types[i].Ref {
			continue
		}
		for _, f := range types[i].Fields {
			if f.Type == pag.UntypedType {
				continue
			}
			succs[i] = append(succs[i], int(f.Type))
		}
	}
	comp, numComp := scc.Compute(n, func(v int) []int { return succs[v] })

	// Components are numbered in reverse topological order: all of a
	// component's successors have smaller component numbers, so a single
	// ascending pass computes levels bottom-up.
	compLevel := make([]int, numComp)
	compHasRef := make([]bool, numComp)
	members := make([][]int, numComp)
	for t := 0; t < n; t++ {
		c := comp[t]
		members[c] = append(members[c], t)
		if types[t].Ref {
			compHasRef[c] = true
		}
	}
	for c := 0; c < numComp; c++ {
		maxChild := 0
		for _, t := range members[c] {
			for _, s := range succs[t] {
				sc := comp[s]
				if sc == c {
					continue // recursion: ignored
				}
				if compLevel[sc] > maxChild {
					maxChild = compLevel[sc]
				}
			}
		}
		if compHasRef[c] {
			compLevel[c] = maxChild + 1
		} else {
			compLevel[c] = 0
		}
	}

	levels := make([]int, n)
	for t := 0; t < n; t++ {
		if types[t].Ref {
			levels[t] = compLevel[comp[t]]
		} else {
			levels[t] = 0
		}
	}
	return levels
}
