package pag

import "fmt"

// Incremental update support. A frozen graph can be edited between analysis
// sessions via BeginUpdate / (AddNode | AddEdge | RemoveEdge)* /
// CommitUpdate. Node IDs are stable across updates (nodes are only ever
// appended), which is what lets cached jmp edges survive edits that permit
// it (see package incremental). The graph must not be queried concurrently
// with an update.

// BeginUpdate reopens a frozen graph for mutation.
func (g *Graph) BeginUpdate() {
	if !g.frozen {
		panic("pag: BeginUpdate on unfrozen graph")
	}
	g.frozen = false
}

// CommitUpdate re-freezes the graph after an update.
func (g *Graph) CommitUpdate() {
	if g.frozen {
		panic("pag: CommitUpdate without BeginUpdate")
	}
	g.Freeze()
}

// RemoveEdge deletes one occurrence of the edge from the graph. It reports
// whether the edge was present. The graph must be open for update.
func (g *Graph) RemoveEdge(e Edge) bool {
	if g.frozen {
		panic("pag: RemoveEdge on frozen graph")
	}
	if int(e.Dst) >= len(g.nodes) || int(e.Src) >= len(g.nodes) {
		return false
	}
	removedIn := removeHalf(&g.in[e.Dst], HalfEdge{Other: e.Src, Kind: e.Kind, Label: e.Label})
	removedOut := removeHalf(&g.out[e.Src], HalfEdge{Other: e.Dst, Kind: e.Kind, Label: e.Label})
	if removedIn != removedOut {
		panic(fmt.Sprintf("pag: inconsistent adjacency for %v", e))
	}
	if !removedIn {
		return false
	}
	switch e.Kind {
	case EdgeStore:
		removeStore(g.storesByField, FieldID(e.Label), StoreSite{Base: e.Dst, Val: e.Src})
	case EdgeLoad:
		removeLoad(g.loadsByField, FieldID(e.Label), LoadSite{Base: e.Src, Dst: e.Dst})
	}
	g.numEdges--
	return true
}

func removeHalf(list *[]HalfEdge, he HalfEdge) bool {
	s := *list
	for i := range s {
		if s[i] == he {
			*list = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

func removeStore(m map[FieldID][]StoreSite, f FieldID, site StoreSite) {
	s := m[f]
	for i := range s {
		if s[i] == site {
			m[f] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

func removeLoad(m map[FieldID][]LoadSite, f FieldID, site LoadSite) {
	s := m[f]
	for i := range s {
		if s[i] == site {
			m[f] = append(s[:i], s[i+1:]...)
			return
		}
	}
}
