package pag

import (
	"bufio"
	"fmt"
	"io"
)

// DOTJmpEdge is one jmp shortcut edge to overlay on the rendering (the
// store rewrite of Fig. 4 made visible). A finished edge points at the
// expansion's target; an unfinished edge points at the special O node
// (To is ignored). S is the recorded step cost, shown in the label.
type DOTJmpEdge struct {
	From       NodeID
	To         NodeID
	S          int
	Unfinished bool
}

// DOTOptions controls WriteDOTOpts. The zero value reproduces WriteDOT's
// classic output byte for byte.
type DOTOptions struct {
	// ShowUnfinished draws the special O node (dashed octagon) even when
	// no unfinished jmp edge forces it.
	ShowUnfinished bool
	// JmpEdges overlays jmp shortcut edges: finished ones dashed blue to
	// their target, unfinished ones dashed red into the O node (which is
	// then drawn regardless of ShowUnfinished), each labelled jmp(s).
	JmpEdges []DOTJmpEdge
	// Heat shades nodes by step count relative to the hottest node
	// (white through red) and appends the count to the label — the
	// heat-overlay mode used by the autopsy layer. Nodes absent from the
	// map keep the plain rendering.
	Heat map[NodeID]int64
}

// WriteDOT renders the graph in Graphviz DOT format for inspection:
// variables as ellipses, globals as double ellipses, objects as boxes,
// edges labelled with their kind (and field/call-site where applicable).
// Intended for small graphs (examples, paper figures); large benchmarks are
// better explored with the query tools.
func (g *Graph) WriteDOT(w io.Writer) error {
	return g.WriteDOTOpts(w, DOTOptions{})
}

// WriteDOTOpts is WriteDOT with rendering options: unfinished-node
// markers, jmp-edge overlays and heat shading. A zero DOTOptions matches
// WriteDOT exactly.
func (g *Graph) WriteDOTOpts(w io.Writer, opt DOTOptions) error {
	showO := opt.ShowUnfinished
	for _, je := range opt.JmpEdges {
		if je.Unfinished {
			showO = true
			break
		}
	}
	var maxHeat int64
	for _, s := range opt.Heat {
		if s > maxHeat {
			maxHeat = s
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph pag {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [fontsize=10]; edge [fontsize=9];")
	for i := 0; i < len(g.nodes); i++ {
		n := g.nodes[i]
		shape := "ellipse"
		switch n.Kind {
		case KindObject:
			shape = "box"
		case KindGlobal:
			shape = "doublecircle"
		case KindUnfinished:
			if !showO {
				continue // the O node has no drawn edges
			}
			fmt.Fprintf(bw, "  n%d [label=%q shape=octagon style=dashed];\n", i, n.Name)
			continue
		}
		if steps := opt.Heat[NodeID(i)]; steps > 0 && maxHeat > 0 {
			// Linear white-to-red ramp on the green/blue channels; the
			// hottest node is full red, a one-step node near white.
			ch := 255 - int(float64(steps)/float64(maxHeat)*200)
			fmt.Fprintf(bw, "  n%d [label=%q shape=%s style=filled fillcolor=\"#ff%02x%02x\"];\n",
				i, fmt.Sprintf("%s\n%d steps", n.Name, steps), shape, ch, ch)
			continue
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", i, n.Name, shape)
	}
	for dst := 0; dst < len(g.in); dst++ {
		for _, he := range g.in[dst] {
			label := he.Kind.String()
			switch he.Kind {
			case EdgeLoad, EdgeStore:
				label = fmt.Sprintf("%s(f%d)", he.Kind, he.Label)
			case EdgeParam, EdgeRet:
				label = fmt.Sprintf("%s%d", he.Kind, he.Label)
			}
			style := ""
			if he.Kind == EdgeNew {
				style = " style=bold"
			}
			fmt.Fprintf(bw, "  n%d -> n%d [label=%q%s];\n", he.Other, dst, label, style)
		}
	}
	for _, je := range opt.JmpEdges {
		to, color := je.To, "blue"
		if je.Unfinished {
			to, color = g.Unfinished(), "red"
		}
		fmt.Fprintf(bw, "  n%d -> n%d [label=%q style=dashed color=%s];\n",
			je.From, to, fmt.Sprintf("jmp(%d)", je.S), color)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
