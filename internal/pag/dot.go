package pag

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection:
// variables as ellipses, globals as double ellipses, objects as boxes,
// edges labelled with their kind (and field/call-site where applicable).
// Intended for small graphs (examples, paper figures); large benchmarks are
// better explored with the query tools.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph pag {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [fontsize=10]; edge [fontsize=9];")
	for i := 0; i < len(g.nodes); i++ {
		n := g.nodes[i]
		shape := "ellipse"
		switch n.Kind {
		case KindObject:
			shape = "box"
		case KindGlobal:
			shape = "doublecircle"
		case KindUnfinished:
			continue // the O node has no drawn edges
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", i, n.Name, shape)
	}
	for dst := 0; dst < len(g.in); dst++ {
		for _, he := range g.in[dst] {
			label := he.Kind.String()
			switch he.Kind {
			case EdgeLoad, EdgeStore:
				label = fmt.Sprintf("%s(f%d)", he.Kind, he.Label)
			case EdgeParam, EdgeRet:
				label = fmt.Sprintf("%s%d", he.Kind, he.Label)
			}
			style := ""
			if he.Kind == EdgeNew {
				style = " style=bold"
			}
			fmt.Fprintf(bw, "  n%d -> n%d [label=%q%s];\n", he.Other, dst, label, style)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
