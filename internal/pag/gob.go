package pag

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// Binary (gob) graph codec, used by internal/snapshot to persist a resident
// service's PAG. Unlike the JSON form (WriteJSON/ReadJSON, which flattens to
// an edge list and so only fixes per-destination adjacency order), the gob
// form serialises both adjacency lists verbatim: a decoded graph traverses
// its edges in exactly the order the original did. That is what makes a
// warm-started server's answers byte-identical to the resident run's — the
// solver's first-seen result ordering depends on adjacency order.

// gobGraph is the wire form. The unfinished node O is serialised in place at
// its real index (it may not be the last node on graphs that saw incremental
// edits), so no index shifting is needed on either side.
type gobGraph struct {
	Nodes      []Node
	In         [][]HalfEdge
	Out        [][]HalfEdge
	Unfinished NodeID
}

// WriteGob serialises the frozen graph in binary form.
func (g *Graph) WriteGob(w io.Writer) error {
	if !g.frozen {
		return fmt.Errorf("pag: WriteGob on unfrozen graph")
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(gobGraph{Nodes: g.nodes, In: g.in, Out: g.out, Unfinished: g.unfinished}); err != nil {
		return fmt.Errorf("pag: encoding graph: %w", err)
	}
	return bw.Flush()
}

// ReadGob deserialises a graph written by WriteGob and returns it frozen.
// The decoded graph is observationally identical to the one serialised:
// same nodes, same adjacency orders, same per-field indexes.
func ReadGob(r io.Reader) (*Graph, error) {
	var jg gobGraph
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&jg); err != nil {
		return nil, fmt.Errorf("pag: decoding graph: %w", err)
	}
	n := len(jg.Nodes)
	if len(jg.In) != n || len(jg.Out) != n {
		return nil, fmt.Errorf("pag: adjacency size mismatch (%d nodes, %d in, %d out)", n, len(jg.In), len(jg.Out))
	}
	if int(jg.Unfinished) >= n || jg.Nodes[jg.Unfinished].Kind != KindUnfinished {
		return nil, fmt.Errorf("pag: serialised graph has no unfinished node at %d", jg.Unfinished)
	}
	g := NewGraph()
	g.nodes = jg.Nodes
	g.in = jg.In
	g.out = jg.Out
	g.unfinished = jg.Unfinished
	// Rebuild the derived indexes from the in lists (destination-major, the
	// same per-destination order AddEdge would have produced); Freeze sorts
	// the per-field indexes with the same comparators the original graph
	// used, so they come out identical.
	inEdges, outEdges := 0, 0
	for dst := range g.in {
		for _, he := range g.in[dst] {
			if int(he.Other) >= n {
				return nil, fmt.Errorf("pag: edge references unknown node (%d <- %d)", dst, he.Other)
			}
			switch he.Kind {
			case EdgeStore:
				f := FieldID(he.Label)
				g.storesByField[f] = append(g.storesByField[f], StoreSite{Base: NodeID(dst), Val: he.Other})
				if f > g.fieldMax {
					g.fieldMax = f
				}
			case EdgeLoad:
				f := FieldID(he.Label)
				g.loadsByField[f] = append(g.loadsByField[f], LoadSite{Base: he.Other, Dst: NodeID(dst)})
				if f > g.fieldMax {
					g.fieldMax = f
				}
			case EdgeParam, EdgeRet:
				g.callSites[CallSiteID(he.Label)] = struct{}{}
			}
			inEdges++
		}
	}
	for src := range g.out {
		for _, he := range g.out[src] {
			if int(he.Other) >= n {
				return nil, fmt.Errorf("pag: edge references unknown node (%d -> %d)", src, he.Other)
			}
			outEdges++
		}
	}
	if inEdges != outEdges {
		return nil, fmt.Errorf("pag: adjacency lists disagree (%d in, %d out edges)", inEdges, outEdges)
	}
	g.numEdges = inEdges
	g.Freeze()
	return g, nil
}
