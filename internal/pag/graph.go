package pag

import (
	"fmt"
	"sort"
)

// Graph is a Pointer Assignment Graph. It is built once (via Builder
// methods) and then frozen with Freeze; a frozen graph is immutable and safe
// for concurrent readers, which is how the parallel analysis shares it
// between query-processing goroutines.
//
// Adjacency is stored both ways: In(x) lists edges x <-e- y (needed by
// PointsTo, which traverses against value flow), Out(x) lists edges
// z <-e- x (needed by FlowsTo, which traverses with value flow). Store and
// load statements are additionally indexed per field, because matching a
// load x = p.f requires enumerating every store q.f = y in the whole
// program, not just stores adjacent to x.
type Graph struct {
	nodes []Node

	in  [][]HalfEdge
	out [][]HalfEdge

	storesByField map[FieldID][]StoreSite
	loadsByField  map[FieldID][]LoadSite

	unfinished NodeID // the single O node, created lazily by Freeze

	numEdges  int
	fieldMax  FieldID
	frozen    bool
	callSites map[CallSiteID]struct{}
}

// NewGraph returns an empty, unfrozen graph.
func NewGraph() *Graph {
	return &Graph{
		storesByField: make(map[FieldID][]StoreSite),
		loadsByField:  make(map[FieldID][]LoadSite),
		unfinished:    InvalidNode,
		callSites:     make(map[CallSiteID]struct{}),
	}
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(n Node) NodeID {
	if g.frozen {
		panic("pag: AddNode on frozen graph")
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.in = append(g.in, nil)
	g.out = append(g.out, nil)
	return id
}

// AddLocal is a convenience wrapper adding a local variable node.
func (g *Graph) AddLocal(name string, typ TypeID, m MethodID) NodeID {
	return g.AddNode(Node{Name: name, Kind: KindLocal, Type: typ, Method: m})
}

// AddGlobal is a convenience wrapper adding a global variable node.
func (g *Graph) AddGlobal(name string, typ TypeID) NodeID {
	return g.AddNode(Node{Name: name, Kind: KindGlobal, Type: typ, Method: NoMethod})
}

// AddObject is a convenience wrapper adding an abstract heap object node.
func (g *Graph) AddObject(name string, typ TypeID) NodeID {
	return g.AddNode(Node{Name: name, Kind: KindObject, Type: typ, Method: NoMethod})
}

// AddEdge inserts the edge dst <-kind(label)- src. Both endpoints must
// already exist. Statement well-formedness (e.g. that the source of a new
// edge is an object) is the caller's responsibility; ValidateEdge can check.
func (g *Graph) AddEdge(e Edge) {
	if g.frozen {
		panic("pag: AddEdge on frozen graph")
	}
	if int(e.Dst) >= len(g.nodes) || int(e.Src) >= len(g.nodes) {
		panic(fmt.Sprintf("pag: AddEdge with unknown node (dst=%d src=%d n=%d)", e.Dst, e.Src, len(g.nodes)))
	}
	g.in[e.Dst] = append(g.in[e.Dst], HalfEdge{Other: e.Src, Kind: e.Kind, Label: e.Label})
	g.out[e.Src] = append(g.out[e.Src], HalfEdge{Other: e.Dst, Kind: e.Kind, Label: e.Label})
	switch e.Kind {
	case EdgeStore:
		f := FieldID(e.Label)
		g.storesByField[f] = append(g.storesByField[f], StoreSite{Base: e.Dst, Val: e.Src})
		if f > g.fieldMax {
			g.fieldMax = f
		}
	case EdgeLoad:
		f := FieldID(e.Label)
		g.loadsByField[f] = append(g.loadsByField[f], LoadSite{Base: e.Src, Dst: e.Dst})
		if f > g.fieldMax {
			g.fieldMax = f
		}
	case EdgeParam, EdgeRet:
		g.callSites[CallSiteID(e.Label)] = struct{}{}
	}
	g.numEdges++
}

// ValidateEdge reports whether edge e is well-formed with respect to the
// node kinds of its endpoints, per the syntax of Fig. 1.
func (g *Graph) ValidateEdge(e Edge) error {
	dk, sk := g.nodes[e.Dst].Kind, g.nodes[e.Src].Kind
	bad := func(msg string) error {
		return fmt.Errorf("pag: invalid %s edge %s(%d) <- %s(%d): %s",
			e.Kind, g.nodes[e.Dst].Name, e.Dst, g.nodes[e.Src].Name, e.Src, msg)
	}
	switch e.Kind {
	case EdgeNew:
		if sk != KindObject {
			return bad("source must be an object")
		}
		if !dk.IsVariable() {
			return bad("destination must be a variable")
		}
	case EdgeAssignLocal:
		if dk != KindLocal || sk != KindLocal {
			return bad("both sides must be locals")
		}
	case EdgeAssignGlobal:
		if !dk.IsVariable() || !sk.IsVariable() {
			return bad("both sides must be variables")
		}
		if dk != KindGlobal && sk != KindGlobal {
			return bad("at least one side must be global")
		}
	case EdgeLoad, EdgeStore:
		if !dk.IsVariable() || !sk.IsVariable() {
			return bad("both sides must be variables")
		}
	case EdgeParam, EdgeRet:
		if dk != KindLocal || sk != KindLocal {
			return bad("both sides must be locals")
		}
	default:
		return bad("unknown edge kind")
	}
	return nil
}

// Freeze finalises the graph: it creates the unfinished node O (once), sorts
// the per-field indexes for determinism, and marks the graph immutable.
// Freeze is idempotent and is also used by CommitUpdate to re-freeze after
// an incremental edit.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	if g.unfinished == InvalidNode {
		g.unfinished = g.AddNode(Node{Name: "O", Kind: KindUnfinished, Type: UntypedType, Method: NoMethod})
	}
	for f := range g.storesByField {
		s := g.storesByField[f]
		sort.Slice(s, func(i, j int) bool {
			if s[i].Base != s[j].Base {
				return s[i].Base < s[j].Base
			}
			return s[i].Val < s[j].Val
		})
	}
	for f := range g.loadsByField {
		l := g.loadsByField[f]
		sort.Slice(l, func(i, j int) bool {
			if l[i].Base != l[j].Base {
				return l[i].Base < l[j].Base
			}
			return l[i].Dst < l[j].Dst
		})
	}
	g.frozen = true
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// NumNodes returns the node count (including O once frozen).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumCallSites returns the number of distinct call sites seen on param/ret
// edges.
func (g *Graph) NumCallSites() int { return len(g.callSites) }

// Node returns the metadata of node id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Unfinished returns the special O node. The graph must be frozen.
func (g *Graph) Unfinished() NodeID {
	if !g.frozen {
		panic("pag: Unfinished before Freeze")
	}
	return g.unfinished
}

// In returns the incoming half-edges of x: entries {y, e, l} such that the
// graph contains x <-e(l)- y. The slice must not be modified.
func (g *Graph) In(x NodeID) []HalfEdge { return g.in[x] }

// Out returns the outgoing half-edges of x: entries {z, e, l} such that the
// graph contains z <-e(l)- x. The slice must not be modified.
func (g *Graph) Out(x NodeID) []HalfEdge { return g.out[x] }

// StoresOf returns every store site q.f = y for field f, program-wide.
func (g *Graph) StoresOf(f FieldID) []StoreSite { return g.storesByField[f] }

// LoadsOf returns every load site x = p.f for field f, program-wide.
func (g *Graph) LoadsOf(f FieldID) []LoadSite { return g.loadsByField[f] }

// Fields returns the IDs of all fields that appear on a load or store edge,
// in ascending order.
func (g *Graph) Fields() []FieldID {
	seen := make(map[FieldID]struct{}, len(g.storesByField)+len(g.loadsByField))
	for f := range g.storesByField {
		seen[f] = struct{}{}
	}
	for f := range g.loadsByField {
		seen[f] = struct{}{}
	}
	out := make([]FieldID, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Variables returns the IDs of all variable nodes (locals and globals), in
// ascending order.
func (g *Graph) Variables() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if g.nodes[id].Kind.IsVariable() {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Objects returns the IDs of all object nodes, in ascending order.
func (g *Graph) Objects() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if g.nodes[id].Kind == KindObject {
			out = append(out, NodeID(id))
		}
	}
	return out
}
