package pag

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	o := g.AddObject("o1", 0)
	a := g.AddLocal("a", 0, 0)
	b := g.AddGlobal("G", 0)
	g.AddEdge(Edge{Dst: a, Src: o, Kind: EdgeNew})
	g.AddEdge(Edge{Dst: b, Src: a, Kind: EdgeAssignGlobal})
	g.AddEdge(Edge{Dst: a, Src: a, Kind: EdgeLoad, Label: 3})
	g.Freeze()

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph pag", `label="o1" shape=box`, `label="G" shape=doublecircle`,
		`label="new"`, `label="assigng"`, `label="ld(f3)"`, "}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// The O node is not drawn.
	if strings.Contains(out, `label="O"`) {
		t.Fatal("O node drawn")
	}
}
