package pag

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	o := g.AddObject("o1", 0)
	a := g.AddLocal("a", 0, 0)
	b := g.AddGlobal("G", 0)
	g.AddEdge(Edge{Dst: a, Src: o, Kind: EdgeNew})
	g.AddEdge(Edge{Dst: b, Src: a, Kind: EdgeAssignGlobal})
	g.AddEdge(Edge{Dst: a, Src: a, Kind: EdgeLoad, Label: 3})
	g.Freeze()

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph pag", `label="o1" shape=box`, `label="G" shape=doublecircle`,
		`label="new"`, `label="assigng"`, `label="ld(f3)"`, "}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// The O node is not drawn.
	if strings.Contains(out, `label="O"`) {
		t.Fatal("O node drawn")
	}
}

// TestWriteDOTOptsDefaultIdentical: a zero DOTOptions must reproduce the
// classic WriteDOT output byte for byte.
func TestWriteDOTOptsDefaultIdentical(t *testing.T) {
	g := NewGraph()
	o := g.AddObject("o1", 0)
	a := g.AddLocal("a", 0, 0)
	g.AddEdge(Edge{Dst: a, Src: o, Kind: EdgeNew})
	g.AddEdge(Edge{Dst: a, Src: a, Kind: EdgeLoad, Label: 3})
	g.Freeze()

	var classic, opts bytes.Buffer
	if err := g.WriteDOT(&classic); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOTOpts(&opts, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if classic.String() != opts.String() {
		t.Fatalf("zero options diverge from WriteDOT:\n%s\n----\n%s", classic.String(), opts.String())
	}
}

func TestWriteDOTOptsOverlays(t *testing.T) {
	g := NewGraph()
	o := g.AddObject("o1", 0)
	a := g.AddLocal("a", 0, 0)
	b := g.AddLocal("b", 0, 0)
	g.AddEdge(Edge{Dst: a, Src: o, Kind: EdgeNew})
	g.AddEdge(Edge{Dst: b, Src: a, Kind: EdgeAssignLocal})
	g.Freeze()

	var buf bytes.Buffer
	err := g.WriteDOTOpts(&buf, DOTOptions{
		JmpEdges: []DOTJmpEdge{
			{From: a, To: b, S: 120},
			{From: b, S: 75, Unfinished: true},
		},
		Heat: map[NodeID]int64{a: 40, b: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`label="jmp(120)" style=dashed color=blue`,
		`label="jmp(75)" style=dashed color=red`,
		`label="O" shape=octagon style=dashed`, // forced by the unfinished edge
		`style=filled fillcolor="#ff3737"`,     // hottest node: full ramp
		"40 steps",
		"10 steps",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("overlay output missing %q:\n%s", want, out)
		}
	}
	// The unfinished jmp edge targets the O node.
	var jmpTo NodeID = g.Unfinished()
	if !strings.Contains(out, fmt.Sprintf("n%d -> n%d [label=\"jmp(75)\"", b, jmpTo)) {
		t.Fatalf("unfinished jmp edge does not target O:\n%s", out)
	}
}

// TestWriteDOTOptsShowUnfinished: ShowUnfinished draws the O node even with
// no jmp edges.
func TestWriteDOTOptsShowUnfinished(t *testing.T) {
	g := NewGraph()
	g.AddLocal("a", 0, 0)
	g.Freeze()
	var buf bytes.Buffer
	if err := g.WriteDOTOpts(&buf, DOTOptions{ShowUnfinished: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="O" shape=octagon`) {
		t.Fatalf("O node not drawn with ShowUnfinished:\n%s", buf.String())
	}
}
