// Package pag defines the Pointer Assignment Graph (PAG), the program
// representation over which CFL-reachability-based pointer analysis runs.
//
// The model follows Fig. 1 of "Parallel Pointer Analysis with
// CFL-Reachability" (Su, Ye, Xue; ICPP 2014): nodes are variables (local or
// global) and abstract heap objects; edges represent pointer-manipulating
// statements oriented in the direction of value flow. The extended syntax of
// Fig. 4 (jmp shortcut edges and the special "unfinished" node O) is also
// modelled here, although jmp edges themselves are stored in a concurrent
// side table (package share) so that the graph proper stays immutable and
// safely shareable between query-processing goroutines.
package pag

import "fmt"

// NodeID identifies a node in a Graph. IDs are dense, starting at 0, so they
// can index per-node slices directly.
type NodeID uint32

// InvalidNode is a sentinel that is never a valid node of any graph.
const InvalidNode = NodeID(^uint32(0))

// NodeKind classifies PAG nodes.
type NodeKind uint8

const (
	// KindLocal is a local variable (l in Fig. 1).
	KindLocal NodeKind = iota
	// KindGlobal is a global (static) variable (g in Fig. 1). Globals are
	// analysed context-insensitively: traversing through one clears the
	// context string.
	KindGlobal
	// KindObject is an abstract heap object named by its allocation site
	// (o in Fig. 1).
	KindObject
	// KindUnfinished is the special O node of Fig. 4, the target of
	// "unfinished" jmp edges recording out-of-budget traversals. Each
	// graph has exactly one such node.
	KindUnfinished
)

// String returns a short human-readable name for the kind.
func (k NodeKind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindGlobal:
		return "global"
	case KindObject:
		return "object"
	case KindUnfinished:
		return "unfinished"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// IsVariable reports whether the kind is a variable (local or global), i.e.
// a legal source of a points-to query.
func (k NodeKind) IsVariable() bool {
	return k == KindLocal || k == KindGlobal
}

// TypeID identifies a static (declared) type in the program's type table.
// Types matter only to the query scheduler, which derives dependence depths
// from the field-containment hierarchy; the solver itself never inspects
// them.
type TypeID uint32

// UntypedType is used for nodes with no meaningful static type (objects of
// primitive-array element type, the unfinished node, and so on).
const UntypedType = TypeID(^uint32(0))

// MethodID identifies the method a local variable belongs to. Globals and
// objects carry NoMethod.
type MethodID uint32

// NoMethod marks nodes that do not belong to any method.
const NoMethod = MethodID(^uint32(0))

// Node carries the metadata of one PAG node. The topology (edges) lives in
// the Graph adjacency structures, not here.
type Node struct {
	// Name is a human-readable label, e.g. "v1main" or "o15". Names are
	// for diagnostics only and need not be unique.
	Name string
	// Kind classifies the node.
	Kind NodeKind
	// Type is the node's declared static type, or UntypedType.
	Type TypeID
	// Method is the enclosing method for locals, or NoMethod.
	Method MethodID
}
