package pag

import "fmt"

// EdgeKind classifies PAG edges, following the edge syntax of Fig. 1.
type EdgeKind uint8

const (
	// EdgeNew is an allocation l1 <-new- o: object o flows to l1.
	EdgeNew EdgeKind = iota
	// EdgeAssignLocal is a local assignment l1 = l2.
	EdgeAssignLocal
	// EdgeAssignGlobal is an assignment with a global on at least one
	// side. Globals are context-insensitive, so traversing such an edge
	// clears the context.
	EdgeAssignGlobal
	// EdgeLoad is a field load l1 = l2.f; Label is the FieldID of f.
	EdgeLoad
	// EdgeStore is a field store l1.f = l2; Label is the FieldID of f.
	EdgeStore
	// EdgeParam models parameter passing at a call site: l1 is the formal,
	// l2 the actual; Label is the CallSiteID.
	EdgeParam
	// EdgeRet models returning a value at a call site: l1 receives the
	// value of l2 returned from the callee; Label is the CallSiteID.
	EdgeRet
)

// String returns the paper's name for the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeNew:
		return "new"
	case EdgeAssignLocal:
		return "assignl"
	case EdgeAssignGlobal:
		return "assigng"
	case EdgeLoad:
		return "ld"
	case EdgeStore:
		return "st"
	case EdgeParam:
		return "param"
	case EdgeRet:
		return "ret"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// IsDirect reports whether the edge kind participates in the "direct"
// relation of Eq. (5) in the paper, used to group queries:
//
//	direct -> (assignl | assigng | param_i | ret_i)*
//
// Load and store edges are excluded because there is no variable-to-variable
// reachability between their endpoints.
func (k EdgeKind) IsDirect() bool {
	switch k {
	case EdgeAssignLocal, EdgeAssignGlobal, EdgeParam, EdgeRet:
		return true
	}
	return false
}

// FieldID identifies a field name. Array elements are collapsed into the
// special ArrField, as in the paper ("arr").
type FieldID uint32

// ArrField is the collapsed pseudo-field for all array element accesses.
const ArrField = FieldID(0)

// CallSiteID identifies a call site; param/ret edge labels and context
// strings are built from these.
type CallSiteID uint32

// Label is the extra datum on an edge: a FieldID for ld/st edges, a
// CallSiteID for param/ret edges, zero otherwise.
type Label uint32

// Edge is a full PAG edge dst <-kind(label)- src, meaning the statement's
// value flows from Src to Dst (e.g. for l1 = l2, Src is l2 and Dst is l1;
// for l1 <-new- o, Src is the object o and Dst is l1).
type Edge struct {
	Dst   NodeID
	Src   NodeID
	Kind  EdgeKind
	Label Label
}

// HalfEdge is an adjacency-list entry: the edge kind and label plus the node
// at the far end. Whether Other is the source or destination depends on
// which adjacency list (In or Out) the entry appears in.
type HalfEdge struct {
	Other NodeID
	Kind  EdgeKind
	Label Label
}

// StoreSite is one store statement base.f = val, indexed globally per field
// so that ReachableNodes can enumerate all stores matching a load of f.
type StoreSite struct {
	Base NodeID // the variable whose field is written (q in q.f = y)
	Val  NodeID // the stored value (y)
}

// LoadSite is one load statement dst = base.f, indexed globally per field
// for the inverse (flowsTo) direction of ReachableNodes.
type LoadSite struct {
	Base NodeID // the variable whose field is read (p in x = p.f)
	Dst  NodeID // the loaded-into variable (x)
}
