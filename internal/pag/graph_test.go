package pag

import (
	"bytes"
	"testing"
)

// buildTinyGraph constructs: o -new-> a -assignl-> b, b -st(f)-> base,
// x <-ld(f)- base (i.e. x = base.f, base.f = b).
func buildTinyGraph(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := NewGraph()
	ids := map[string]NodeID{}
	ids["o"] = g.AddObject("o", 1)
	ids["a"] = g.AddLocal("a", 1, 0)
	ids["b"] = g.AddLocal("b", 1, 0)
	ids["base"] = g.AddLocal("base", 2, 0)
	ids["x"] = g.AddLocal("x", 1, 0)
	ids["gv"] = g.AddGlobal("gv", 1)
	f := Label(5)
	edges := []Edge{
		{Dst: ids["a"], Src: ids["o"], Kind: EdgeNew},
		{Dst: ids["b"], Src: ids["a"], Kind: EdgeAssignLocal},
		{Dst: ids["base"], Src: ids["b"], Kind: EdgeStore, Label: f},
		{Dst: ids["x"], Src: ids["base"], Kind: EdgeLoad, Label: f},
		{Dst: ids["gv"], Src: ids["a"], Kind: EdgeAssignGlobal},
	}
	for _, e := range edges {
		if err := g.ValidateEdge(e); err != nil {
			t.Fatalf("ValidateEdge(%v): %v", e, err)
		}
		g.AddEdge(e)
	}
	return g, ids
}

func TestGraphBuildAndCounts(t *testing.T) {
	g, _ := buildTinyGraph(t)
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	g.Freeze()
	if g.NumNodes() != 7 { // +O
		t.Fatalf("NumNodes after Freeze = %d, want 7", g.NumNodes())
	}
	if g.Node(g.Unfinished()).Kind != KindUnfinished {
		t.Fatal("Unfinished node has wrong kind")
	}
}

func TestGraphAdjacency(t *testing.T) {
	g, ids := buildTinyGraph(t)
	g.Freeze()
	in := g.In(ids["b"])
	if len(in) != 1 || in[0].Other != ids["a"] || in[0].Kind != EdgeAssignLocal {
		t.Fatalf("In(b) = %v", in)
	}
	out := g.Out(ids["a"])
	if len(out) != 2 {
		t.Fatalf("Out(a) = %v, want 2 edges", out)
	}
	// new edge appears in In of a and Out of o.
	if len(g.In(ids["a"])) != 1 || g.In(ids["a"])[0].Kind != EdgeNew {
		t.Fatalf("In(a) = %v", g.In(ids["a"]))
	}
	if len(g.Out(ids["o"])) != 1 || g.Out(ids["o"])[0].Other != ids["a"] {
		t.Fatalf("Out(o) = %v", g.Out(ids["o"]))
	}
}

func TestGraphFieldIndexes(t *testing.T) {
	g, ids := buildTinyGraph(t)
	g.Freeze()
	st := g.StoresOf(5)
	if len(st) != 1 || st[0].Base != ids["base"] || st[0].Val != ids["b"] {
		t.Fatalf("StoresOf(5) = %v", st)
	}
	ld := g.LoadsOf(5)
	if len(ld) != 1 || ld[0].Base != ids["base"] || ld[0].Dst != ids["x"] {
		t.Fatalf("LoadsOf(5) = %v", ld)
	}
	if got := g.Fields(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Fields = %v", got)
	}
	if got := g.StoresOf(99); got != nil {
		t.Fatalf("StoresOf(unknown) = %v, want nil", got)
	}
}

func TestGraphVariablesAndObjects(t *testing.T) {
	g, ids := buildTinyGraph(t)
	g.Freeze()
	vars := g.Variables()
	if len(vars) != 5 {
		t.Fatalf("Variables = %v, want 5", vars)
	}
	objs := g.Objects()
	if len(objs) != 1 || objs[0] != ids["o"] {
		t.Fatalf("Objects = %v", objs)
	}
}

func TestGraphFrozenPanics(t *testing.T) {
	g, _ := buildTinyGraph(t)
	g.Freeze()
	g.Freeze() // idempotent, no panic
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on frozen graph did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddNode", func() { g.AddLocal("z", 0, 0) })
	mustPanic("AddEdge", func() { g.AddEdge(Edge{Dst: 0, Src: 1, Kind: EdgeAssignLocal}) })
}

func TestUnfinishedBeforeFreezePanics(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("Unfinished before Freeze did not panic")
		}
	}()
	g.Unfinished()
}

func TestValidateEdgeRejections(t *testing.T) {
	g := NewGraph()
	o := g.AddObject("o", 0)
	l := g.AddLocal("l", 0, 0)
	gl := g.AddGlobal("g", 0)
	cases := []struct {
		name string
		e    Edge
	}{
		{"new from local", Edge{Dst: l, Src: l, Kind: EdgeNew}},
		{"new into object", Edge{Dst: o, Src: o, Kind: EdgeNew}},
		{"assignl with global", Edge{Dst: gl, Src: l, Kind: EdgeAssignLocal}},
		{"assigng without global", Edge{Dst: l, Src: l, Kind: EdgeAssignGlobal}},
		{"load from object", Edge{Dst: l, Src: o, Kind: EdgeLoad}},
		{"store into object", Edge{Dst: o, Src: l, Kind: EdgeStore}},
		{"param with global", Edge{Dst: gl, Src: l, Kind: EdgeParam}},
		{"ret with object", Edge{Dst: l, Src: o, Kind: EdgeRet}},
	}
	for _, c := range cases {
		if err := g.ValidateEdge(c.e); err == nil {
			t.Errorf("%s: ValidateEdge accepted invalid edge", c.name)
		}
	}
}

func TestEdgeKindStrings(t *testing.T) {
	want := map[EdgeKind]string{
		EdgeNew: "new", EdgeAssignLocal: "assignl", EdgeAssignGlobal: "assigng",
		EdgeLoad: "ld", EdgeStore: "st", EdgeParam: "param", EdgeRet: "ret",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestIsDirect(t *testing.T) {
	direct := []EdgeKind{EdgeAssignLocal, EdgeAssignGlobal, EdgeParam, EdgeRet}
	indirect := []EdgeKind{EdgeNew, EdgeLoad, EdgeStore}
	for _, k := range direct {
		if !k.IsDirect() {
			t.Errorf("%v should be direct", k)
		}
	}
	for _, k := range indirect {
		if k.IsDirect() {
			t.Errorf("%v should not be direct", k)
		}
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	g, ids := buildTinyGraph(t)
	g.Freeze()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip counts: nodes %d vs %d, edges %d vs %d",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		a, b := g.Node(NodeID(i)), g2.Node(NodeID(i))
		if a != b {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	st := g2.StoresOf(5)
	if len(st) != 1 || st[0].Base != ids["base"] {
		t.Fatalf("roundtrip StoresOf = %v", st)
	}
	if !g2.Frozen() {
		t.Fatal("ReadJSON graph not frozen")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("ReadJSON accepted malformed JSON")
	}
	// Edge referencing unknown node.
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":[{"kind":0,"type":0,"method":0}],"edges":[{"d":0,"s":9,"k":1}]}`)); err == nil {
		t.Fatal("ReadJSON accepted dangling edge")
	}
	// Invalid edge shape (assignl into object-less pair is fine; use new from local).
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":[{"kind":0,"type":0,"method":0},{"kind":0,"type":0,"method":0}],"edges":[{"d":0,"s":1,"k":0}]}`)); err == nil {
		t.Fatal("ReadJSON accepted invalid new edge")
	}
}

func TestNumCallSitesAndKindString(t *testing.T) {
	g := NewGraph()
	a := g.AddLocal("a", 0, 0)
	b := g.AddLocal("b", 0, 1)
	g.AddEdge(Edge{Dst: a, Src: b, Kind: EdgeParam, Label: 7})
	g.AddEdge(Edge{Dst: b, Src: a, Kind: EdgeRet, Label: 7})
	g.AddEdge(Edge{Dst: a, Src: b, Kind: EdgeParam, Label: 8})
	g.Freeze()
	if got := g.NumCallSites(); got != 2 {
		t.Fatalf("NumCallSites = %d, want 2", got)
	}
	for k, want := range map[NodeKind]string{
		KindLocal: "local", KindGlobal: "global", KindObject: "object", KindUnfinished: "unfinished",
	} {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", k, k.String())
		}
	}
}

func TestRemoveEdgeUpdatesIndexes(t *testing.T) {
	g, ids := buildTinyGraph(t)
	g.Freeze()
	g.BeginUpdate()
	if !g.RemoveEdge(Edge{Dst: ids["base"], Src: ids["b"], Kind: EdgeStore, Label: 5}) {
		t.Fatal("store edge not removed")
	}
	if !g.RemoveEdge(Edge{Dst: ids["x"], Src: ids["base"], Kind: EdgeLoad, Label: 5}) {
		t.Fatal("load edge not removed")
	}
	g.CommitUpdate()
	if len(g.StoresOf(5)) != 0 || len(g.LoadsOf(5)) != 0 {
		t.Fatal("field indexes not updated on removal")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}
