package pag

import (
	"testing"
	"testing/quick"
)

func TestEmptyContext(t *testing.T) {
	c := EmptyContext
	if !c.Empty() {
		t.Fatal("EmptyContext.Empty() = false")
	}
	if c.Depth() != 0 {
		t.Fatalf("EmptyContext.Depth() = %d, want 0", c.Depth())
	}
	if c.Key() != "" {
		t.Fatalf("EmptyContext.Key() = %q, want empty", c.Key())
	}
	if got := c.String(); got != "[]" {
		t.Fatalf("EmptyContext.String() = %q, want []", got)
	}
}

func TestContextPushPopTop(t *testing.T) {
	c := EmptyContext.Push(17)
	if c.Empty() {
		t.Fatal("pushed context is empty")
	}
	if c.Top() != 17 {
		t.Fatalf("Top = %d, want 17", c.Top())
	}
	c2 := c.Push(42)
	if c2.Top() != 42 || c2.Depth() != 2 {
		t.Fatalf("after second push: top=%d depth=%d", c2.Top(), c2.Depth())
	}
	// Push must not mutate the original.
	if c.Top() != 17 || c.Depth() != 1 {
		t.Fatalf("original mutated by Push: top=%d depth=%d", c.Top(), c.Depth())
	}
	if p := c2.Pop(); p != c {
		t.Fatalf("Pop did not return original: %v vs %v", p, c)
	}
	if p := c2.Pop().Pop(); !p.Empty() {
		t.Fatalf("double Pop not empty: %v", p)
	}
}

func TestContextPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on empty context did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Top", func() { EmptyContext.Top() })
	mustPanic("Pop", func() { EmptyContext.Pop() })
}

func TestContextLargeSiteIDs(t *testing.T) {
	for _, id := range []CallSiteID{0, 1, 255, 256, 1 << 16, 1<<31 - 1, ^CallSiteID(0)} {
		c := EmptyContext.Push(id)
		if c.Top() != id {
			t.Errorf("Push(%d).Top() = %d", id, c.Top())
		}
	}
}

func TestContextSitesOrder(t *testing.T) {
	c := EmptyContext.Push(1).Push(2).Push(3)
	sites := c.Sites()
	want := []CallSiteID{1, 2, 3}
	if len(sites) != len(want) {
		t.Fatalf("Sites len = %d, want %d", len(sites), len(want))
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Fatalf("Sites[%d] = %d, want %d", i, sites[i], want[i])
		}
	}
	if got := c.String(); got != "[1 2 3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestContextKeyRoundtrip(t *testing.T) {
	c := EmptyContext.Push(7).Push(1 << 20).Push(3)
	back := ContextFromKey(c.Key())
	if back != c {
		t.Fatalf("roundtrip mismatch: %v vs %v", back, c)
	}
}

func TestContextFromMalformedKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ContextFromKey on odd-length key did not panic")
		}
	}()
	ContextFromKey("abc")
}

// Property: pushing a sequence of sites and reading Sites() yields the same
// sequence, and popping them all yields the empty context.
func TestContextPushSequenceProperty(t *testing.T) {
	prop := func(sites []uint32) bool {
		if len(sites) > 64 {
			sites = sites[:64]
		}
		c := EmptyContext
		for _, s := range sites {
			c = c.Push(CallSiteID(s))
		}
		got := c.Sites()
		if len(got) != len(sites) {
			return false
		}
		for i := range sites {
			if got[i] != CallSiteID(sites[i]) {
				return false
			}
		}
		for range sites {
			c = c.Pop()
		}
		return c.Empty()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: contexts are value-comparable — two contexts built from the same
// site sequence are equal, and differing sequences are unequal.
func TestContextEqualityProperty(t *testing.T) {
	build := func(sites []uint32) Context {
		c := EmptyContext
		for _, s := range sites {
			c = c.Push(CallSiteID(s))
		}
		return c
	}
	prop := func(a []uint32) bool {
		if build(a) != build(a) {
			return false
		}
		b := append(append([]uint32{}, a...), 99)
		return build(a) != build(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCtxAsMapKey(t *testing.T) {
	m := map[NodeCtx]int{}
	k1 := NodeCtx{Node: 3, Ctx: EmptyContext.Push(9)}
	k2 := NodeCtx{Node: 3, Ctx: EmptyContext.Push(9)}
	k3 := NodeCtx{Node: 3, Ctx: EmptyContext.Push(10)}
	m[k1] = 1
	if m[k2] != 1 {
		t.Fatal("equal NodeCtx keys do not collide in map")
	}
	if _, ok := m[k3]; ok {
		t.Fatal("distinct NodeCtx keys collide in map")
	}
}

func TestPushKInPag(t *testing.T) {
	c := EmptyContext
	for i := 1; i <= 4; i++ {
		c = c.PushK(CallSiteID(i), 2)
	}
	if got := c.Sites(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("PushK sites = %v", got)
	}
	if got := EmptyContext.PushK(9, 0).Depth(); got != 1 {
		t.Fatalf("PushK unlimited depth = %d", got)
	}
}
