package pag

import (
	"fmt"
	"strings"
)

// Context is a calling-context string: a stack of call-site IDs, as used by
// the context-sensitive CFL R_CS of Eq. (3). The zero value is the empty
// context.
//
// Representation: each call site occupies four big-endian bytes of an
// immutable Go string, the top of the stack being the final four bytes.
// This makes Context a comparable value type, usable directly as a map key —
// essential because jmp-edge keys (node, context) are shared between
// query-processing goroutines — while Push and Pop remain O(depth) copies at
// worst (Pop is a zero-copy reslice).
type Context struct {
	s string
}

// EmptyContext is the empty calling context (the zero value, spelled out).
var EmptyContext = Context{}

// Empty reports whether the context stack is empty.
func (c Context) Empty() bool { return len(c.s) == 0 }

// Depth returns the number of call sites on the stack.
func (c Context) Depth() int { return len(c.s) / 4 }

// Top returns the call site on top of the stack. It panics on an empty
// context; callers must check Empty first, mirroring the c = ∅ test in
// Algorithm 1.
func (c Context) Top() CallSiteID {
	if c.Empty() {
		panic("pag: Top of empty context")
	}
	n := len(c.s)
	return CallSiteID(uint32(c.s[n-4])<<24 | uint32(c.s[n-3])<<16 | uint32(c.s[n-2])<<8 | uint32(c.s[n-1]))
}

// Push returns a new context with call site i pushed on top.
func (c Context) Push(i CallSiteID) Context {
	var b strings.Builder
	b.Grow(len(c.s) + 4)
	b.WriteString(c.s)
	b.WriteByte(byte(i >> 24))
	b.WriteByte(byte(i >> 16))
	b.WriteByte(byte(i >> 8))
	b.WriteByte(byte(i))
	return Context{b.String()}
}

// Pop returns the context with its top call site removed. It panics on an
// empty context.
func (c Context) Pop() Context {
	if c.Empty() {
		panic("pag: Pop of empty context")
	}
	return Context{c.s[:len(c.s)-4]}
}

// PushK pushes call site i, keeping at most k sites by discarding the
// oldest entry on overflow (k-limited call strings, the standard k-CFA
// truncation). Discarding the bottom of the stack is a sound
// over-approximation: the visible suffix still matches pops exactly, and
// once the stack empties the analysis already permits partially balanced
// continuations. k <= 0 means unlimited.
func (c Context) PushK(i CallSiteID, k int) Context {
	if k <= 0 || c.Depth() < k {
		return c.Push(i)
	}
	drop := (c.Depth() - k + 1) * 4
	return Context{c.s[drop:]}.Push(i)
}

// Key returns the raw representation, suitable for building composite map
// keys. The returned string uniquely determines the context.
func (c Context) Key() string { return c.s }

// ContextFromKey rebuilds a Context from a Key() value. The key must have
// been produced by Key; no validation beyond length is performed.
func ContextFromKey(k string) Context {
	if len(k)%4 != 0 {
		panic("pag: malformed context key")
	}
	return Context{k}
}

// Sites returns the call sites bottom-up (oldest first). Intended for
// diagnostics and tests.
func (c Context) Sites() []CallSiteID {
	out := make([]CallSiteID, 0, c.Depth())
	for i := 0; i+4 <= len(c.s); i += 4 {
		out = append(out, CallSiteID(uint32(c.s[i])<<24|uint32(c.s[i+1])<<16|uint32(c.s[i+2])<<8|uint32(c.s[i+3])))
	}
	return out
}

// String renders the context like "[3 17]" (bottom-up) for diagnostics.
func (c Context) String() string {
	if c.Empty() {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range c.Sites() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteByte(']')
	return b.String()
}

// NodeCtx is a (node, context) pair — the unit of traversal work in
// Algorithm 1 and the key of the jmp-edge table in Algorithm 2. It is a
// comparable value type.
type NodeCtx struct {
	Node NodeID
	Ctx  Context
}

// ObjCtx is a (object, context) pair, an element of a context-sensitive
// points-to set.
type ObjCtx struct {
	Obj NodeID
	Ctx Context
}
