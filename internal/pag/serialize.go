package pag

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk form of a Graph, as written by cmd/benchgen and
// read back by cmd/pointsto and cmd/experiments. The format is deliberately
// plain JSON so generated benchmarks can be inspected and diffed.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name   string `json:"name,omitempty"`
	Kind   uint8  `json:"kind"`
	Type   uint32 `json:"type"`
	Method uint32 `json:"method"`
}

type jsonEdge struct {
	Dst   uint32 `json:"d"`
	Src   uint32 `json:"s"`
	Kind  uint8  `json:"k"`
	Label uint32 `json:"l,omitempty"`
}

// WriteJSON serialises the graph. The graph may be frozen or not; the
// unfinished node is never serialised (Freeze on load recreates it).
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{
		Nodes: make([]jsonNode, 0, len(g.nodes)),
		Edges: make([]jsonEdge, 0, g.numEdges),
	}
	for _, n := range g.nodes {
		if n.Kind == KindUnfinished {
			continue
		}
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, Kind: uint8(n.Kind), Type: uint32(n.Type), Method: uint32(n.Method)})
	}
	for dst, hes := range g.in {
		for _, he := range hes {
			jg.Edges = append(jg.Edges, jsonEdge{Dst: uint32(dst), Src: uint32(he.Other), Kind: uint8(he.Kind), Label: uint32(he.Label)})
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&jg); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSON deserialises a graph written by WriteJSON and returns it frozen.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("pag: decoding graph: %w", err)
	}
	g := NewGraph()
	for _, n := range jg.Nodes {
		k := NodeKind(n.Kind)
		if k == KindUnfinished {
			return nil, fmt.Errorf("pag: serialised graph contains an unfinished node")
		}
		g.AddNode(Node{Name: n.Name, Kind: k, Type: TypeID(n.Type), Method: MethodID(n.Method)})
	}
	for _, e := range jg.Edges {
		if int(e.Dst) >= len(g.nodes) || int(e.Src) >= len(g.nodes) {
			return nil, fmt.Errorf("pag: edge references unknown node (%d <- %d)", e.Dst, e.Src)
		}
		edge := Edge{Dst: NodeID(e.Dst), Src: NodeID(e.Src), Kind: EdgeKind(e.Kind), Label: Label(e.Label)}
		if err := g.ValidateEdge(edge); err != nil {
			return nil, err
		}
		g.AddEdge(edge)
	}
	g.Freeze()
	return g, nil
}
