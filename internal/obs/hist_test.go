package obs

import "testing"

// TestHistBucketBoundaries pins the inclusive power-of-two bucket mapping:
// bucket i is the smallest with v <= 2^i, matching the Prometheus `le`
// labels WriteProm emits.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, // le="1"
		{2, 1},         // le="2"
		{3, 2}, {4, 2}, // le="4"
		{5, 3}, {8, 3}, // le="8"
		{9, 4}, {16, 4}, // le="16"
		{1 << 20, 20},   // exact bound lands in its own bucket
		{1<<20 + 1, 21}, // one past the bound spills to the next
		{1 << (NumHistBuckets - 1), NumHistBuckets - 1}, // last finite bucket
		{1<<(NumHistBuckets-1) + 1, NumHistBuckets},     // +Inf
		{int64(1) << 62, NumHistBuckets},                // way past the top
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Fatalf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 0; i < NumHistBuckets; i++ {
		bound := HistBucketBound(i)
		if got := histBucket(bound); got != i {
			t.Fatalf("bound %d (2^%d) lands in bucket %d, want %d", bound, i, got, i)
		}
		if i > 0 {
			if got := histBucket(bound/2 + 1); got != i {
				t.Fatalf("first value of bucket %d lands in %d", i, got)
			}
		}
	}
}

// TestObserveAndSnapshot: observations land in the right buckets, negatives
// clamp to zero, and overflow values count toward Count/Sum only.
func TestObserveAndSnapshot(t *testing.T) {
	s := New(Config{})
	s.Observe(HistQueryNS, 1)
	s.Observe(HistQueryNS, 3)
	s.Observe(HistQueryNS, 4)
	s.Observe(HistQueryNS, -7) // clamped to 0 -> bucket 0
	huge := int64(1) << 50     // beyond the last finite bound
	s.Observe(HistQueryNS, huge)

	hs := s.Hist(HistQueryNS)
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if want := int64(1+3+4) + huge; hs.Sum != want {
		t.Fatalf("sum = %d, want %d", hs.Sum, want)
	}
	if hs.Buckets[0] != 2 || hs.Buckets[2] != 2 {
		t.Fatalf("buckets = %v", hs.Buckets[:4])
	}
	var inBuckets int64
	for _, b := range hs.Buckets {
		inBuckets += b
	}
	if inBuckets != 4 {
		t.Fatalf("finite buckets hold %d, want 4 (one observation is +Inf)", inBuckets)
	}

	// The untouched histogram stays zero and is omitted from snapshots.
	if z := s.Hist(HistQuerySteps); z.Count != 0 || z.Sum != 0 {
		t.Fatalf("untouched hist = %+v", z)
	}
	snap := s.Snapshot()
	if _, ok := snap.Hists[HistQuerySteps.String()]; ok {
		t.Fatal("empty histogram exported in snapshot")
	}
	if got := snap.Hists[HistQueryNS.String()]; got.Count != 5 {
		t.Fatalf("snapshot hist = %+v", got)
	}
}

// TestHistMerge: Merge is element-wise addition.
func TestHistMerge(t *testing.T) {
	a := HistSnapshot{Count: 3, Sum: 10}
	a.Buckets[0] = 2
	a.Buckets[5] = 1
	b := HistSnapshot{Count: 2, Sum: 7}
	b.Buckets[5] = 2
	m := a.Merge(b)
	if m.Count != 5 || m.Sum != 17 || m.Buckets[0] != 2 || m.Buckets[5] != 3 {
		t.Fatalf("merge = %+v", m)
	}
}
