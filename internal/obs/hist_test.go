package obs

import "testing"

// TestHistBucketBoundaries pins the bucket mapping: exact powers of two up
// to 2^histSubOctaveStart, then histSubBuckets equal-width sub-buckets per
// octave up to 2^histTopPow, inclusive upper bounds matching the
// Prometheus `le` labels WriteProm emits.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, // le="1"
		{2, 1},         // le="2"
		{3, 2}, {4, 2}, // le="4"
		{5, 3}, {8, 3}, // le="8"
		{9, 4}, {16, 4}, // le="16"
		{1024, 10},             // last pure power-of-two bucket
		{1025, 11}, {1280, 11}, // first sub-bucket: le="1280"
		{1281, 12}, {1536, 12}, // le="1536"
		{2047, 14}, {2048, 14}, // octave top: le="2048"
		{2049, 15}, {2560, 15}, // next octave's first sub-bucket
		{1 << histTopPow, NumHistBuckets - 1}, // last finite bucket
		{1<<histTopPow + 1, NumHistBuckets},   // +Inf
		{int64(1) << 62, NumHistBuckets},      // way past the top
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Fatalf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	prev := int64(0)
	for i := 0; i < NumHistBuckets; i++ {
		bound := HistBucketBound(i)
		if bound <= prev {
			t.Fatalf("bounds not strictly increasing: bound(%d)=%d after %d", i, bound, prev)
		}
		if got := histBucket(bound); got != i {
			t.Fatalf("bound %d lands in bucket %d, want %d", bound, got, i)
		}
		if got := histBucket(prev + 1); got != i {
			t.Fatalf("first value of bucket %d (%d) lands in %d", i, prev+1, got)
		}
		prev = bound
	}
	if top := HistBucketBound(NumHistBuckets - 1); top != 1<<histTopPow {
		t.Fatalf("top finite bound = %d, want 2^%d", top, histTopPow)
	}
}

// TestHistQuantileOrdering is the serve-latency floor regression test: a
// latency population spread inside a single power-of-two octave (here
// 2–3.9ms, all within (2^21, 2^22]) must still resolve p50 < p99. Under
// the old one-bucket-per-octave layout every observation collapsed into
// one bucket and the daemon reported p50 == p99 on warm snapshots.
func TestHistQuantileOrdering(t *testing.T) {
	s := New(Config{})
	const ms = int64(1e6)
	for i := int64(0); i < 1000; i++ {
		// 90% between 2.0 and 2.6ms, a 10% tail up to 3.9ms.
		v := 2*ms + (i%10)*60_000
		if i%10 == 9 {
			v = 3*ms + (i%100)*9_000
		}
		s.Observe(HistServerLatencyNS, v)
	}
	hs := s.Hist(HistServerLatencyNS)
	p50 := hs.Quantile(0.50)
	p99 := hs.Quantile(0.99)
	if !(p50 < p99) {
		t.Fatalf("p50 = %d, p99 = %d: want p50 < p99", p50, p99)
	}
	if p50 < 2*ms || p50 > 3*ms {
		t.Fatalf("p50 = %d out of plausible range", p50)
	}
	if p99 < 3*ms || p99 > 4500*1000 {
		t.Fatalf("p99 = %d out of plausible range", p99)
	}
	// Quantiles are monotone in q.
	last := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		v := hs.Quantile(q)
		if v < last {
			t.Fatalf("Quantile(%g) = %d < previous %d", q, v, last)
		}
		last = v
	}
}

// TestObserveAndSnapshot: observations land in the right buckets, negatives
// clamp to zero, and overflow values count toward Count/Sum only.
func TestObserveAndSnapshot(t *testing.T) {
	s := New(Config{})
	s.Observe(HistQueryNS, 1)
	s.Observe(HistQueryNS, 3)
	s.Observe(HistQueryNS, 4)
	s.Observe(HistQueryNS, -7) // clamped to 0 -> bucket 0
	huge := int64(1) << 50     // beyond the last finite bound
	s.Observe(HistQueryNS, huge)

	hs := s.Hist(HistQueryNS)
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if want := int64(1+3+4) + huge; hs.Sum != want {
		t.Fatalf("sum = %d, want %d", hs.Sum, want)
	}
	if hs.Buckets[0] != 2 || hs.Buckets[2] != 2 {
		t.Fatalf("buckets = %v", hs.Buckets[:4])
	}
	var inBuckets int64
	for _, b := range hs.Buckets {
		inBuckets += b
	}
	if inBuckets != 4 {
		t.Fatalf("finite buckets hold %d, want 4 (one observation is +Inf)", inBuckets)
	}

	// The untouched histogram stays zero and is omitted from snapshots.
	if z := s.Hist(HistQuerySteps); z.Count != 0 || z.Sum != 0 {
		t.Fatalf("untouched hist = %+v", z)
	}
	snap := s.Snapshot()
	if _, ok := snap.Hists[HistQuerySteps.String()]; ok {
		t.Fatal("empty histogram exported in snapshot")
	}
	if got := snap.Hists[HistQueryNS.String()]; got.Count != 5 {
		t.Fatalf("snapshot hist = %+v", got)
	}
}

// TestHistMerge: Merge is element-wise addition.
func TestHistMerge(t *testing.T) {
	a := HistSnapshot{Count: 3, Sum: 10}
	a.Buckets[0] = 2
	a.Buckets[5] = 1
	b := HistSnapshot{Count: 2, Sum: 7}
	b.Buckets[5] = 2
	m := a.Merge(b)
	if m.Count != 5 || m.Sum != 17 || m.Buckets[0] != 2 || m.Buckets[5] != 3 {
		t.Fatalf("merge = %+v", m)
	}
}

// TestHistSub: Sub is the windowed-view primitive (watchdog p99-over-window,
// trace-store threshold deltas). Normal deltas subtract element-wise; a
// counter reset — the later snapshot smaller than the earlier one, e.g.
// after a sink swap on warm restart — must clamp to zero everywhere rather
// than go negative, because a negative count poisons every quantile
// computed from the window.
func TestHistSub(t *testing.T) {
	var early, late HistSnapshot
	early.Count, early.Sum = 10, 100
	early.Buckets[1], early.Buckets[3] = 6, 4
	late.Count, late.Sum = 15, 180
	late.Buckets[1], late.Buckets[3], late.Buckets[4] = 8, 4, 3

	d := late.Sub(early)
	if d.Count != 5 || d.Sum != 80 {
		t.Fatalf("delta count/sum = %d/%d, want 5/80", d.Count, d.Sum)
	}
	if d.Buckets[1] != 2 || d.Buckets[3] != 0 || d.Buckets[4] != 3 {
		t.Fatalf("delta buckets = %v", d.Buckets[:6])
	}

	// Reset: subtracting a larger earlier snapshot clamps to zero.
	r := early.Sub(late)
	if r.Count != 0 || r.Sum != 0 {
		t.Fatalf("reset delta count/sum = %d/%d, want 0/0", r.Count, r.Sum)
	}
	for i, b := range r.Buckets {
		if b < 0 {
			t.Fatalf("bucket %d went negative: %d", i, b)
		}
	}
	// Mixed: some buckets grew while others reset; only the shrunk ones
	// clamp, the grown ones keep their true delta.
	var mixed HistSnapshot
	mixed.Count, mixed.Sum = 12, 90
	mixed.Buckets[1], mixed.Buckets[3] = 2, 10
	md := mixed.Sub(early)
	if md.Buckets[1] != 0 || md.Buckets[3] != 6 {
		t.Fatalf("mixed delta buckets = %v", md.Buckets[:6])
	}
	if md.Count != 2 || md.Sum != 0 {
		t.Fatalf("mixed delta count/sum = %d/%d, want 2/0", md.Count, md.Sum)
	}
	if q := md.Quantile(0.5); q < 0 {
		t.Fatalf("quantile on clamped delta = %d", q)
	}
}
