package obs

// Heat-profile attachment. The PAG heat profile itself is built by
// internal/autopsy (which depends on the analysis packages and therefore
// cannot be imported from here); the sink only holds a handle to it so the
// debug endpoint and the Prometheus exposition can surface whatever
// collector the run attached. The contract mirrors the flight recorder:
// attach once, discover through the sink, every path nil-safe.

// HeatSample is one top-k datum exported to /metrics: a labelled value in a
// named series (e.g. series "node_steps", label "main.s1", value 4821).
type HeatSample struct {
	// Series names the metric family suffix; it is emitted as
	// parcfl_heat_<series>.
	Series string
	// LabelKey/Label form the sample's identifying label pair (e.g.
	// node="main.s1" or field="f3").
	LabelKey string
	Label    string
	Value    int64
}

// HeatSource is implemented by heat-profile collectors (see
// internal/autopsy). HeatSnapshot returns the full profile as a
// JSON-encodable value for /debug/heat; HeatTop returns the k
// highest-valued samples per series for the parcfl_heat_* gauges.
type HeatSource interface {
	HeatSnapshot() any
	HeatTop(k int) []HeatSample
}

// heatBox wraps the interface value so it can live in an atomic.Pointer
// (storing interfaces with differing concrete types directly in an
// atomic.Value panics).
type heatBox struct{ src HeatSource }

// AttachHeat attaches h as the sink's heat source, replacing any previous
// one. Consumers (the debug endpoint, the Prometheus exposition) discover
// it through HeatSource. Nil-safe on both receiver and argument.
func (s *Sink) AttachHeat(h HeatSource) {
	if s == nil {
		return
	}
	s.heat.Store(&heatBox{src: h})
}

// Heat returns the attached heat source, or nil.
func (s *Sink) Heat() HeatSource {
	if s == nil {
		return nil
	}
	if b := s.heat.Load(); b != nil {
		return b.src
	}
	return nil
}
