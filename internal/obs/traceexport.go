package obs

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
)

// Chrome trace-event JSON export of the recorded spans, loadable in
// Perfetto (https://ui.perfetto.dev) and chrome://tracing. Each worker
// goroutine maps to one trace "thread": tid 1 is the shared "engine" track
// (batch/schedule phases, store insertions), tid 2+w is worker w. Spans
// become "complete" (ph=X) events — the viewers nest them by time
// containment, reproducing the query → traversal call structure — and
// instants become thread-scoped ph=i markers.

// TraceEvent is one exported trace-event record. Timestamps and durations
// are microseconds, per the trace-event spec.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the root object of the exported JSON ("JSON Object Format"
// of the trace-event spec).
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	// SpansDropped reports spans lost to full buffers (extra keys are
	// allowed and preserved by the viewers).
	SpansDropped int64 `json:"parcflSpansDropped"`
}

// Lanes. Engine-side spans keep the original single process (pid 1, one
// thread per worker); server request-lifecycle spans get their own
// "parcfl-requests" process where every request sequence number is a
// thread, so a request's admit → queue_wait → serve phases stack into one
// Perfetto lane; the dispatcher's batch-anatomy spans get a third
// "parcfl-batcher" process.
const (
	tracePid         = 1
	traceRequestsPid = 2
	traceBatcherPid  = 3
)

// spanArgNames maps each span kind's A/B/C payloads to argument names; an
// empty name omits the argument.
var spanArgNames = [NumSpanKinds][3]string{
	SpRun:           {"queries", "units", "batch"},
	SpWorker:        {"units", "queries", "steps_walked"},
	SpUnit:          {"unit", "size", ""},
	SpQuery:         {"var", "steps", "jumps_taken"},
	SpCompPts:       {"node", "steps", "ctx_depth"},
	SpCompFls:       {"node", "steps", "ctx_depth"},
	SpSchedule:      {"groups", "", ""},
	SpSchedGroup:    {"components", "", ""},
	SpSchedOrder:    {"groups", "", ""},
	SpSchedBalance:  {"groups", "", ""},
	SpRefinePass:    {"var", "pass", "approx_fields"},
	SpIncUpdate:     {"edges_added", "edges_removed", ""},
	SpanAdmit:       {"req", "queue_depth", "admit_class"},
	SpanQueueWait:   {"req", "batch", ""},
	SpanBatchWindow: {"batch", "vars", "pending_left"},
	SpanServe:       {"req", "primary", "outcome"},
	SpanFanout:      {"req", "shard", "outcome"},
	SpJmpTake:       {"node", "steps_saved", ""},
	SpEarlyTerm:     {"node", "required_budget", ""},
	SpJmpInsert:     {"node", "cost", ""},
}

func spanTid(worker int32) int64 {
	if worker < 0 {
		return 1 // shared "engine" track
	}
	return 2 + int64(worker)
}

// spanLane places a span on its (process, thread) lane and names the
// thread. Request-lifecycle spans lane by request sequence (their A
// payload); batch-anatomy spans share one batcher lane; everything else
// keeps the engine/worker layout.
func spanLane(sp Span) (pid, tid int64, thread string) {
	switch sp.Kind {
	case SpanAdmit, SpanQueueWait, SpanServe, SpanFanout:
		return traceRequestsPid, sp.A, "req " + strconv.FormatInt(sp.A, 10)
	case SpanBatchWindow:
		return traceBatcherPid, 1, "batcher"
	}
	if sp.Worker < 0 {
		return tracePid, 1, "engine"
	}
	return tracePid, spanTid(sp.Worker), "worker " + strconv.Itoa(int(sp.Worker))
}

var tracePidNames = map[int64]string{
	tracePid:         "parcfl",
	traceRequestsPid: "parcfl-requests",
	traceBatcherPid:  "parcfl-batcher",
}

// TraceEvents converts the sink's recorded spans (see Spans) into
// trace-event records, metadata included, and merges the attached flight
// recorder's history as counter tracks (ph=C) on the same clock — spans and
// time-series render on one Perfetto timeline. Call it quiesced, like Spans.
func TraceEvents(s *Sink) TraceFile {
	spans, dropped := s.Spans()
	tf := TraceFile{DisplayTimeUnit: "ms", SpansDropped: dropped}
	// Name each process and thread lazily, at its first event.
	tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: 1,
		Args: map[string]any{"name": tracePidNames[tracePid]},
	})
	namedPids := map[int64]bool{tracePid: true}
	namedTids := map[[2]int64]bool{}
	for _, sp := range spans {
		pid, tid, thread := spanLane(sp)
		if !namedPids[pid] {
			namedPids[pid] = true
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 1,
				Args: map[string]any{"name": tracePidNames[pid]},
			})
		}
		if lane := [2]int64{pid, tid}; !namedTids[lane] {
			namedTids[lane] = true
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": thread},
			})
		}
		tf.TraceEvents = append(tf.TraceEvents, spanEvent(sp, pid, tid))
	}
	if rec := s.FlightRecorder(); rec != nil {
		ts := rec.Snapshot()
		for _, p := range ts.Points {
			for i, name := range ts.Series {
				tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
					Name: name, Cat: "parcfl-fr", Ph: "C",
					Pid:  tracePid,
					Ts:   float64(p.TNS) / 1e3,
					Args: map[string]any{"value": p.V[i]},
				})
			}
		}
	}
	if tf.TraceEvents == nil {
		tf.TraceEvents = []TraceEvent{}
	}
	return tf
}

// spanEvent converts one span into its trace-event record on lane
// (pid, tid), mapping the A/B/C payloads to named arguments.
func spanEvent(sp Span, pid, tid int64) TraceEvent {
	ev := TraceEvent{
		Name: sp.Kind.String(),
		Cat:  "parcfl",
		Pid:  pid,
		Tid:  tid,
		Ts:   float64(sp.T) / 1e3,
	}
	if sp.Kind.Instant() {
		ev.Ph = "i"
		ev.S = "t"
	} else {
		ev.Ph = "X"
		if sp.Dur > 0 {
			ev.Dur = float64(sp.Dur) / 1e3
		}
	}
	names := spanArgNames[sp.Kind]
	vals := [3]int64{sp.A, sp.B, sp.C}
	for i, n := range names {
		if n == "" {
			continue
		}
		if ev.Args == nil {
			ev.Args = make(map[string]any, 3)
		}
		ev.Args[n] = vals[i]
	}
	return ev
}

// RequestTraceEvents converts one retained request trace into a standalone
// Perfetto trace file: the request's phase spans on its "req N" lane in the
// parcfl-requests process, with identity (rid, W3C trace/span ids, queried
// variables, retention policy) attached as arguments on the serve span so
// the viewer shows who the trace belongs to. The serve span's duration is
// the reply's total_ns by construction — the trace and the reply the client
// saw can never disagree.
func RequestTraceEvents(t ReqTrace) TraceFile {
	tf := TraceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", Pid: traceRequestsPid, Tid: 1,
		Args: map[string]any{"name": tracePidNames[traceRequestsPid]},
	})
	namedTids := map[[2]int64]bool{}
	for _, sp := range t.Spans {
		pid, tid, thread := spanLane(sp)
		if lane := [2]int64{pid, tid}; !namedTids[lane] {
			namedTids[lane] = true
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": thread},
			})
		}
		ev := spanEvent(sp, pid, tid)
		if sp.Kind == SpanServe {
			if ev.Args == nil {
				ev.Args = make(map[string]any, 8)
			}
			ev.Args["rid"] = t.RID
			ev.Args["trace_id"] = t.TraceID
			ev.Args["span_id"] = t.SpanID
			ev.Args["outcome_name"] = OutcomeName(t.Outcome)
			ev.Args["policy"] = t.Policy
			if len(t.Vars) > 0 {
				ev.Args["vars"] = t.Vars
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	return tf
}

// WriteTraceEvents writes the sink's spans as Chrome trace-event JSON.
func WriteTraceEvents(w io.Writer, s *Sink) error {
	enc := json.NewEncoder(w)
	return enc.Encode(TraceEvents(s))
}

// WriteTraceFile writes the sink's spans as Chrome trace-event JSON to
// path, creating or truncating it.
func WriteTraceFile(path string, s *Sink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTraceEvents(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
