package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSinkIsSafeAndFree(t *testing.T) {
	var s *Sink
	if s.Enabled() || s.Tracing() {
		t.Fatal("nil sink reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(CtrQueries, 1)
		s.SetGauge(GaugeWorkers, 4)
		s.Time(TmRun, time.Millisecond)
		s.Trace(EvQueryDone, 0, 1, 2)
		s.WorkerStarted(0)
		s.WorkerStopped(0, WorkerStats{Queries: 1})
		_ = s.Counter(CtrQueries)
		_ = s.Gauge(GaugeWorkers)
		_ = s.Timer(TmRun)
		_ = s.Now()
		// Span and histogram hooks share the same contract.
		if s.SpanTracing() {
			t.Fatal("nil sink span-tracing")
		}
		t0 := s.SpanStart()
		s.Span(SpQuery, 0, t0, 1, 2, 3)
		s.SpanInstant(SpJmpTake, 0, 1, 2)
		s.Observe(HistQueryNS, 12345)
	})
	if allocs != 0 {
		t.Fatalf("nil sink allocated %.1f per run, want 0", allocs)
	}
	snap := s.Snapshot()
	if snap.Counters != nil || snap.Trace != nil {
		t.Fatalf("nil snapshot not zero: %+v", snap)
	}
	if spans, dropped := s.Spans(); spans != nil || dropped != 0 {
		t.Fatalf("nil sink has spans: %v %d", spans, dropped)
	}
}

// TestLiveSinkSpansOffNoAllocs: a live sink whose span region is disabled
// (no SpanCap, no EnableSpans) must also keep the span hooks allocation-free
// — the common production configuration.
func TestLiveSinkSpansOffNoAllocs(t *testing.T) {
	s := New(Config{})
	allocs := testing.AllocsPerRun(1000, func() {
		if s.SpanTracing() {
			t.Fatal("spans on without SpanCap")
		}
		t0 := s.SpanStart()
		s.Span(SpQuery, 0, t0, 1, 2, 3)
		s.SpanInstant(SpEarlyTerm, 0, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("spans-off sink allocated %.1f per run, want 0", allocs)
	}
}

func TestCountersGaugesTimers(t *testing.T) {
	s := New(Config{})
	s.Add(CtrQueries, 3)
	s.Add(CtrQueries, 2)
	s.Add(CtrStepsWalked, 100)
	if got := s.Counter(CtrQueries); got != 5 {
		t.Fatalf("CtrQueries = %d, want 5", got)
	}
	s.SetGauge(GaugeUnits, 7)
	if got := s.Gauge(GaugeUnits); got != 7 {
		t.Fatalf("GaugeUnits = %d, want 7", got)
	}
	s.Time(TmSchedule, 2*time.Millisecond)
	s.Time(TmSchedule, 3*time.Millisecond)
	ts := s.Timer(TmSchedule)
	if ts.Count != 2 || ts.TotalNS != int64(5*time.Millisecond) {
		t.Fatalf("TmSchedule = %+v", ts)
	}
}

func TestTraceRingBoundsAndOrder(t *testing.T) {
	s := New(Config{TraceCap: 4})
	if !s.Tracing() {
		t.Fatal("tracing not enabled")
	}
	for i := 0; i < 10; i++ {
		s.Trace(EvUnitClaim, 0, int64(i), 0)
	}
	snap := s.Snapshot()
	if len(snap.Trace) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(snap.Trace))
	}
	if snap.TraceDropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.TraceDropped)
	}
	for i, e := range snap.Trace {
		if e.A != int64(6+i) {
			t.Fatalf("event %d: A = %d, want %d (oldest-first)", i, e.A, 6+i)
		}
	}
}

func TestWorkerTimelines(t *testing.T) {
	s := New(Config{Workers: 2, TraceCap: 16})
	s.WorkerStarted(0)
	s.WorkerStarted(1)
	s.WorkerStopped(1, WorkerStats{Units: 2, Queries: 9, Steps: 100, Walked: 80})
	ws := s.Workers()
	if len(ws) != 2 {
		t.Fatalf("workers = %d, want 2", len(ws))
	}
	if ws[1].Queries != 9 || ws[1].Walked != 80 {
		t.Fatalf("worker 1 = %+v", ws[1])
	}
	if ws[1].StopNS < ws[1].StartNS {
		t.Fatalf("worker 1 stopped before it started: %+v", ws[1])
	}
	// Out-of-range ids must not panic.
	s.WorkerStarted(5)
	s.WorkerStopped(-1, WorkerStats{})
}

func TestSinkConcurrent(t *testing.T) {
	s := New(Config{Workers: 8, TraceCap: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.WorkerStarted(w)
			for i := 0; i < 500; i++ {
				s.Add(CtrQueries, 1)
				s.Trace(EvQueryDone, int32(w), int64(i), 1)
			}
			s.WorkerStopped(w, WorkerStats{Queries: 500})
		}(w)
	}
	wg.Wait()
	if got := s.Counter(CtrQueries); got != 4000 {
		t.Fatalf("CtrQueries = %d, want 4000", got)
	}
	snap := s.Snapshot()
	if len(snap.Trace) != 64 {
		t.Fatalf("trace kept %d, want 64", len(snap.Trace))
	}
}

func TestNamesCoverAllIDs(t *testing.T) {
	seen := map[string]bool{}
	for c := CounterID(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || n == "counter_unknown" || seen[n] {
			t.Fatalf("bad counter name %q for %d", n, c)
		}
		seen[n] = true
	}
	for k := EventKind(0); k < NumEventKinds; k++ {
		if k.String() == "event_unknown" {
			t.Fatalf("unnamed event kind %d", k)
		}
	}
	for g := GaugeID(0); g < NumGauges; g++ {
		if g.String() == "gauge_unknown" {
			t.Fatalf("unnamed gauge %d", g)
		}
	}
	for tm := TimerID(0); tm < NumTimers; tm++ {
		if tm.String() == "timer_unknown" {
			t.Fatalf("unnamed timer %d", tm)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := New(Config{Workers: 1, TraceCap: 8})
	s.Add(CtrCacheHits, 2)
	s.Trace(EvCacheHit, NoWorker, 42, 0)
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["cache_hits"] != 2 || len(back.Trace) != 1 || back.Trace[0].A != 42 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestServeDebug(t *testing.T) {
	s := New(Config{TraceCap: 8})
	s.Add(CtrQueries, 11)
	srv, addr, err := ServeDebug("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s.Observe(HistQueryNS, 500)

	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/debug/obs", "/metrics", "/"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/obs", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["queries"] != 11 {
		t.Fatalf("debug endpoint counters = %v", snap.Counters)
	}

	// /metrics serves Prometheus text with the histogram series present.
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"parcfl_queries_total 11",
		"# TYPE parcfl_query_latency_ns histogram",
		`parcfl_query_latency_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
