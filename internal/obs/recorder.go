package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// The flight recorder is the sink's time dimension: where counters and
// spans answer "how much" and "what happened", the recorder answers "when
// did it change shape". A background goroutine samples, at a fixed interval,
// (a) Go runtime state via runtime/metrics — heap bytes, GC pauses,
// goroutine count, scheduler latency — and (b) the engine gauges and
// counters producers maintain in the sink — worklist depth, in-flight
// queries, jmp store sizes and hit ratio, cache entries, cumulative
// early-termination and abort counts — into a bounded ring of timestamped
// points. That is exactly the view the paper's Figs. 6–8 need but a single
// end-of-run snapshot cannot give: worklist drain rate, jmp-store growth
// versus hit rate (the τF/τU trade-off of Fig. 7), and early-termination
// bursts all evolve during a run.
//
// The recorder is off by default and pull-based: producers never know it
// exists (they keep writing the same nil-checked atomic gauges), so the
// engine's hot paths stay zero-alloc whether or not a recorder is attached.
// Consumers read it three ways: the /debug/timeseries JSON endpoint, the
// latest point as Prometheus gauges on /metrics, and Perfetto counter
// tracks merged into the trace-event export so time-series and spans render
// on one timeline.

// DefaultSampleInterval is the sampling period used when RecorderConfig
// leaves Interval zero.
const DefaultSampleInterval = 50 * time.Millisecond

// DefaultRecorderCap is the point-ring capacity used when RecorderConfig
// leaves Cap zero. At the default interval it holds ~3.4 minutes of
// history; older points are overwritten (and counted as dropped).
const DefaultRecorderCap = 4096

// RecorderConfig sizes a Recorder.
type RecorderConfig struct {
	// Interval is the sampling period (0 = DefaultSampleInterval).
	Interval time.Duration
	// Cap bounds the point ring (0 = DefaultRecorderCap).
	Cap int
}

// runtimeSeries maps recorder series to runtime/metrics samples. Histogram
// metrics are reduced to one number per tick (an approximate total or
// quantile); a metric missing from the running toolchain reads as 0.
var runtimeSeries = []struct {
	series string
	metric string
}{
	{"heap_bytes", "/memory/classes/heap/objects:bytes"},
	{"goroutines", "/sched/goroutines:goroutines"},
	{"gc_cycles", "/gc/cycles/total:gc-cycles"},
	{"gc_pause_ns_total", "/sched/pauses/total/gc:seconds"},
	{"sched_latency_p99_ns", "/sched/latencies:seconds"},
}

// recordedCounters are the sink counters sampled as cumulative series.
var recordedCounters = []CounterID{
	CtrQueries, CtrQueriesAborted, CtrEarlyTerms,
	CtrStepsWalked, CtrStepsSaved, CtrJumpsTaken,
	CtrJmpFinishedIns, CtrJmpUnfinishedIns,
	CtrCacheHits, CtrCacheMisses,
	CtrShareLookups, CtrShareHits,
}

// source is one custom registered series.
type source struct {
	name string
	fn   func() float64
}

// Recorder is the continuous flight recorder. Create with NewRecorder,
// attach to a sink with Sink.AttachRecorder, start the sampler goroutine
// with Start and stop it with Stop. All methods are safe on a nil
// *Recorder, matching the rest of the package.
type Recorder struct {
	sink     *Sink
	interval time.Duration
	capacity int
	start0   time.Time

	// mu guards everything below: the series layout (frozen on first
	// sample), the ring, and the lifecycle flags. Sampling takes it too,
	// so Snapshot sees whole points.
	mu      sync.Mutex
	custom  []source
	frozen  bool
	running bool
	stopped bool

	names     []string
	rtSamples []metrics.Sample
	scratch   []float64
	ring      *tsRing

	stop chan struct{}
	done chan struct{}
}

// NewRecorder creates a flight recorder sampling sink (which may be nil:
// only the runtime and custom series are recorded then).
func NewRecorder(sink *Sink, cfg RecorderConfig) *Recorder {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSampleInterval
	}
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultRecorderCap
	}
	return &Recorder{
		sink:     sink,
		interval: cfg.Interval,
		capacity: cfg.Cap,
		start0:   time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling period (0 on nil).
func (r *Recorder) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// Register adds a custom series sampled by calling fn once per tick. It
// must be called before the first sample; later calls are ignored (the
// series layout is frozen so ring points stay fixed-width).
func (r *Recorder) Register(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return
	}
	r.custom = append(r.custom, source{name: name, fn: fn})
}

// freeze builds the series layout and preallocates the ring and scratch
// space; from here on, steady-state sampling does not allocate. Callers
// hold mu.
func (r *Recorder) freeze() {
	if r.frozen {
		return
	}
	r.frozen = true
	n := len(runtimeSeries) + len(r.custom)
	if r.sink != nil {
		n += int(NumGauges) + len(recordedCounters) + 2
	}
	names := make([]string, 0, n)
	r.rtSamples = make([]metrics.Sample, len(runtimeSeries))
	for i, rs := range runtimeSeries {
		r.rtSamples[i].Name = rs.metric
		names = append(names, rs.series)
	}
	if r.sink != nil {
		for g := GaugeID(0); g < NumGauges; g++ {
			names = append(names, g.String())
		}
		for _, c := range recordedCounters {
			names = append(names, c.String())
		}
		names = append(names, "share_hit_ratio", "cache_hit_ratio")
	}
	for _, src := range r.custom {
		names = append(names, src.name)
	}
	r.names = names
	r.scratch = make([]float64, len(names))
	r.ring = newTSRing(r.capacity, len(names))
	// Warm the runtime/metrics buffers so the first locked sample reuses
	// them instead of allocating histograms.
	metrics.Read(r.rtSamples)
}

// Start freezes the series layout, takes an immediate first sample, and
// launches the background sampler goroutine. Starting twice, or after Stop,
// is a no-op.
func (r *Recorder) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.running || r.stopped {
		r.mu.Unlock()
		return
	}
	r.running = true
	r.freeze()
	r.sampleLocked()
	r.mu.Unlock()
	go r.loop()
}

// Running reports whether the sampler goroutine is live.
func (r *Recorder) Running() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Stop takes one final sample, stops the sampler goroutine and waits for it
// to exit. The recorded history stays readable (Snapshot, exports); a
// stopped recorder cannot be restarted — create a fresh one instead.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.running {
		if !r.stopped {
			r.stopped = true
		}
		r.mu.Unlock()
		return
	}
	r.running = false
	r.stopped = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
}

func (r *Recorder) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			r.SampleOnce() // final point, so even sub-interval runs record their end state
			return
		case <-t.C:
			r.SampleOnce()
		}
	}
}

// SampleOnce takes one sample immediately. It is what the background loop
// calls each tick, exported so tests and callers driving their own cadence
// can sample without the goroutine. The first call freezes the series
// layout; steady-state calls are allocation-free.
func (r *Recorder) SampleOnce() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.freeze()
	r.sampleLocked()
	r.mu.Unlock()
}

// sampleLocked appends one point. Callers hold mu.
func (r *Recorder) sampleLocked() {
	vals := r.scratch
	i := 0
	metrics.Read(r.rtSamples)
	for j, rs := range runtimeSeries {
		vals[i] = runtimeValue(rs.series, r.rtSamples[j].Value)
		i++
	}
	if s := r.sink; s != nil {
		for g := GaugeID(0); g < NumGauges; g++ {
			vals[i] = float64(s.Gauge(g))
			i++
		}
		for _, c := range recordedCounters {
			vals[i] = float64(s.Counter(c))
			i++
		}
		vals[i] = ratio(s.Counter(CtrShareHits), s.Counter(CtrShareLookups))
		i++
		vals[i] = ratio(s.Counter(CtrCacheHits), s.Counter(CtrCacheHits)+s.Counter(CtrCacheMisses))
		i++
	}
	for _, src := range r.custom {
		vals[i] = src.fn()
		i++
	}
	for k, v := range vals {
		// JSON cannot carry NaN/Inf; a broken series samples as 0.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			vals[k] = 0
		}
	}
	r.ring.put(r.now(), vals)
}

// now returns the sample timestamp: sink-relative when a sink is attached,
// so points share the clock of trace events and spans (one Perfetto
// timeline); recorder-relative otherwise.
func (r *Recorder) now() int64 {
	if r.sink != nil {
		return r.sink.Now()
	}
	return int64(time.Since(r.start0))
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// runtimeValue reduces one runtime/metrics value to a float64 series point.
func runtimeValue(series string, v metrics.Value) float64 {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	case metrics.KindFloat64Histogram:
		h := v.Float64Histogram()
		if series == "sched_latency_p99_ns" {
			return 1e9 * histQuantile(h, 0.99)
		}
		return 1e9 * histApproxSum(h)
	default:
		// KindBad: the metric does not exist in this toolchain.
		return 0
	}
}

// histApproxSum estimates a Float64Histogram's total as Σ count × bucket
// midpoint (runtime/metrics histograms expose no exact sum). Infinite edge
// buckets collapse to their finite boundary.
func histApproxSum(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		sum += float64(c) * (lo + hi) / 2
	}
	return sum
}

// histQuantile returns the upper bound of the bucket holding the q-quantile
// observation (0 on an empty histogram).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, -1) {
				return 0
			}
			return hi
		}
	}
	return 0
}

// TimePoint is one recorded sample: a timestamp plus one value per series,
// aligned with TimeSeries.Series.
type TimePoint struct {
	TNS int64     `json:"t_ns"`
	V   []float64 `json:"v"`
}

// TimeSeries is the recorder's history: the series layout plus the retained
// points oldest-first. Dropped counts points overwritten by the bounded
// ring. This is the /debug/timeseries schema.
type TimeSeries struct {
	IntervalNS int64       `json:"interval_ns"`
	Series     []string    `json:"series"`
	Points     []TimePoint `json:"points"`
	Dropped    uint64      `json:"dropped"`
}

// Len returns the number of retained points.
func (ts TimeSeries) Len() int { return len(ts.Points) }

// Index returns the position of the named series, or -1.
func (ts TimeSeries) Index(name string) int {
	for i, n := range ts.Series {
		if n == name {
			return i
		}
	}
	return -1
}

// Snapshot copies the recorded history (zero value on nil or before the
// first sample). Safe to call while the sampler is running.
func (r *Recorder) Snapshot() TimeSeries {
	if r == nil {
		return TimeSeries{Series: []string{}, Points: []TimePoint{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := TimeSeries{
		IntervalNS: int64(r.interval),
		Series:     append([]string{}, r.names...),
		Points:     []TimePoint{},
	}
	if r.ring != nil {
		ts.Points, ts.Dropped = r.ring.snapshot()
	}
	return ts
}

// Last returns the most recent sample's values aligned with the series
// names, or ok=false when nothing has been recorded yet.
func (r *Recorder) Last() (names []string, vals []float64, ok bool) {
	if r == nil {
		return nil, nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring == nil || r.ring.next == 0 {
		return nil, nil, false
	}
	p := r.ring.points[(r.ring.next-1)%uint64(len(r.ring.points))]
	return r.names, append([]float64{}, p.V...), true
}

// tsRing is the bounded point ring. Points reuse one preallocated backing
// array of values, so steady-state sampling writes in place; external
// synchronisation (Recorder.mu) keeps it race-free.
type tsRing struct {
	nser   int
	points []TimePoint
	next   uint64 // total points ever put
}

func newTSRing(capacity, nser int) *tsRing {
	r := &tsRing{nser: nser, points: make([]TimePoint, capacity)}
	backing := make([]float64, capacity*nser)
	for i := range r.points {
		r.points[i].V = backing[i*nser : (i+1)*nser : (i+1)*nser]
	}
	return r
}

// put overwrites the oldest slot with a copy of vals.
func (r *tsRing) put(tns int64, vals []float64) {
	p := &r.points[r.next%uint64(len(r.points))]
	p.TNS = tns
	copy(p.V, vals)
	r.next++
}

// snapshot deep-copies the retained points oldest-first and reports how
// many older points have been overwritten.
func (r *tsRing) snapshot() ([]TimePoint, uint64) {
	size := uint64(len(r.points))
	n := r.next
	var dropped uint64
	start, count := uint64(0), n
	if n > size {
		dropped = n - size
		start = n % size
		count = size
	}
	out := make([]TimePoint, 0, count)
	backing := make([]float64, int(count)*r.nser)
	for i := uint64(0); i < count; i++ {
		p := r.points[(start+i)%size]
		v := backing[int(i)*r.nser : (int(i)+1)*r.nser : (int(i)+1)*r.nser]
		copy(v, p.V)
		out = append(out, TimePoint{TNS: p.TNS, V: v})
	}
	return out, dropped
}
