package obs

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestExemplarRoundTrip: an exemplar lands in exactly the bucket its value
// observes into, carries its identity, and "most recent wins" within a
// bucket.
func TestExemplarRoundTrip(t *testing.T) {
	s := New(Config{})
	if s.ExemplarsEnabled() {
		t.Fatal("exemplars on by default")
	}
	s.EnableExemplars()
	if !s.ExemplarsEnabled() {
		t.Fatal("EnableExemplars did not enable")
	}

	s.Observe(HistServerLatencyNS, 1500)
	s.Exemplar(HistServerLatencyNS, 1500, "req-a", 7)
	s.Observe(HistServerLatencyNS, 1500) // same bucket: most recent exemplar wins
	s.Exemplar(HistServerLatencyNS, 1500, "req-b", 9)

	exs := s.HistExemplars(HistServerLatencyNS)
	if len(exs) != 1 {
		t.Fatalf("got %d exemplars, want 1: %+v", len(exs), exs)
	}
	e := exs[0]
	if e.RID != "req-b" || e.Seq != 9 || e.Value != 1500 {
		t.Fatalf("exemplar = %+v, want most recent req-b", e)
	}
	if e.Bucket != histBucket(1500) || e.LE != HistBucketBound(e.Bucket) {
		t.Fatalf("bucket coordinates wrong: %+v (histBucket=%d)", e, histBucket(1500))
	}
	if e.UnixNano == 0 {
		t.Fatal("exemplar has no timestamp")
	}

	// Overflow values exemplify the +Inf bucket (LE -1).
	huge := int64(1) << 45
	s.Observe(HistServerLatencyNS, huge)
	s.Exemplar(HistServerLatencyNS, huge, "req-inf", 11)
	exs = s.HistExemplars(HistServerLatencyNS)
	if len(exs) != 2 || exs[1].LE != -1 || exs[1].RID != "req-inf" {
		t.Fatalf("+Inf exemplar missing: %+v", exs)
	}
}

// TestExemplarDisabledZeroAlloc is the allocation pin for the acceptance
// criterion "with diag disabled the hot path stays zero-alloc": the reply
// path's Observe+Exemplar pair must not allocate when exemplar storage is
// detached, nor on a nil sink.
func TestExemplarDisabledZeroAlloc(t *testing.T) {
	s := New(Config{})
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(HistServerLatencyNS, 4096)
		s.Exemplar(HistServerLatencyNS, 4096, "req-x", 3)
	})
	if allocs != 0 {
		t.Fatalf("detached exemplars allocate: %v allocs/op", allocs)
	}
	var nilSink *Sink
	allocs = testing.AllocsPerRun(1000, func() {
		nilSink.Observe(HistServerLatencyNS, 4096)
		nilSink.Exemplar(HistServerLatencyNS, 4096, "req-x", 3)
		nilSink.HistExemplars(HistServerLatencyNS)
	})
	if allocs != 0 {
		t.Fatalf("nil sink allocates: %v allocs/op", allocs)
	}
}

// openMetricsExemplarRe matches a bucket line carrying an exemplar:
//
//	name_bucket{le="2048"} 3 # {request_id="load-1-9",seq="42"} 1500 1712345678.123
var openMetricsExemplarRe = regexp.MustCompile(
	`_bucket\{le="[^"]+"\} \d+ # \{request_id="([^"]+)",seq="(\d+)"\} (\d+) (\d+\.\d{3})$`)

// TestWritePromExemplars: /metrics carries OpenMetrics exemplar syntax on
// exactly the buckets that hold one, and non-exemplar lines stay in plain
// text-format shape.
func TestWritePromExemplars(t *testing.T) {
	s := New(Config{})
	s.EnableExemplars()
	s.Observe(HistServerLatencyNS, 1500)
	s.Exemplar(HistServerLatencyNS, 1500, "load-1-9", 42)

	var buf bytes.Buffer
	if err := WriteProm(&buf, s); err != nil {
		t.Fatal(err)
	}
	var matched int
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, " # {") {
			continue
		}
		m := openMetricsExemplarRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exemplar line: %q", line)
		}
		if m[1] != "load-1-9" || m[2] != "42" || m[3] != "1500" {
			t.Fatalf("exemplar identity wrong: %q", line)
		}
		if !strings.HasPrefix(line, "parcfl_server_latency_ns_bucket{") {
			t.Fatalf("exemplar on unexpected series: %q", line)
		}
		matched++
	}
	if matched != 1 {
		t.Fatalf("%d exemplar lines, want exactly 1", matched)
	}
}

// TestHistSnapshotSub: the windowed delta underpinning the watchdog's
// rolling p99 rule subtracts element-wise and clamps at zero.
func TestHistSnapshotSub(t *testing.T) {
	s := New(Config{})
	s.Observe(HistServerLatencyNS, 100)
	s.Observe(HistServerLatencyNS, 100)
	before := s.Hist(HistServerLatencyNS)
	s.Observe(HistServerLatencyNS, 1<<20)
	delta := s.Hist(HistServerLatencyNS).Sub(before)
	if delta.Count != 1 || delta.Sum != 1<<20 {
		t.Fatalf("delta = %+v", delta)
	}
	if q := delta.Quantile(0.99); q < 1<<19 {
		t.Fatalf("windowed p99 %d ignores the new slow observation", q)
	}
	// Reversed operands clamp rather than going negative.
	neg := before.Sub(s.Hist(HistServerLatencyNS))
	if neg.Count != 0 || neg.Sum != 0 {
		t.Fatalf("reversed delta not clamped: %+v", neg)
	}
}

// TestBuildIdentityAndStatusz: the build identity is populated and stable,
// and /debug/statusz serves a parseable document with it.
func TestBuildIdentityAndStatusz(t *testing.T) {
	bi := ReadBuildIdentity()
	if bi.GoVersion == "" {
		t.Fatal("no Go version in build identity")
	}
	if again := ReadBuildIdentity(); again != bi {
		t.Fatalf("build identity not stable: %+v vs %+v", bi, again)
	}
	s := New(Config{})
	st := Status(s)
	if st.Schema != StatusZSchema || st.GOMAXPROCS <= 0 || st.PID <= 0 || st.NumGoroutine <= 0 {
		t.Fatalf("statusz = %+v", st)
	}

	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status %d: %s", resp.StatusCode, body.String())
	}
	for _, want := range []string{StatusZSchema, `"go_version"`, `"gomaxprocs"`, `"uptime_ns"`} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("statusz body missing %q:\n%s", want, body.String())
		}
	}

	// parcfl_build_info rides /metrics with the identity as labels.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), "parcfl_build_info{go_version=\"") {
		t.Fatalf("/metrics missing parcfl_build_info:\n%.500s", metrics.String())
	}
}

// TestSpanBufferKeepsRecent: a full span buffer overwrites the oldest spans,
// so a long-lived process retains the most recent activity window (what a
// mid-incident diagnostic bundle needs).
func TestSpanBufferKeepsRecent(t *testing.T) {
	s := New(Config{})
	s.EnableSpans(0, 4)
	for i := 0; i < 10; i++ {
		s.SpanInstant(SpJmpTake, NoWorker, int64(i), 0)
	}
	spans, dropped := s.Spans()
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("got %d spans, %d dropped; want 4 kept, 6 dropped", len(spans), dropped)
	}
	for _, sp := range spans {
		if sp.A < 6 {
			t.Fatalf("old span %d survived; kept set %+v", sp.A, spans)
		}
	}
}

// TestShutdownDebugReturnsError: a hung handler surfaces as a returned
// error instead of being swallowed.
func TestShutdownDebugReturnsError(t *testing.T) {
	srv, addr, err := ServeDebug("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ShutdownDebug(srv, time.Second); err != nil {
		t.Fatalf("clean shutdown errored: %v", err)
	}

	// A handler that outlives the shutdown timeout must produce an error.
	block := make(chan struct{})
	started := make(chan struct{})
	hung := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-block
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = hung.Serve(ln) }()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	if err := ShutdownDebug(hung, 50*time.Millisecond); err == nil {
		t.Fatal("hung listener shutdown reported no error")
	}
	close(block)
	_ = addr
}
