package obs

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestExemplarRoundTrip: an exemplar lands in exactly the bucket its value
// observes into, carries its identity, and "most recent wins" within a
// bucket.
func TestExemplarRoundTrip(t *testing.T) {
	s := New(Config{})
	if s.ExemplarsEnabled() {
		t.Fatal("exemplars on by default")
	}
	s.EnableExemplars()
	if !s.ExemplarsEnabled() {
		t.Fatal("EnableExemplars did not enable")
	}

	s.Observe(HistServerLatencyNS, 1500)
	s.Exemplar(HistServerLatencyNS, 1500, "req-a", 7)
	s.Observe(HistServerLatencyNS, 1500) // same bucket: most recent exemplar wins
	s.Exemplar(HistServerLatencyNS, 1500, "req-b", 9)

	exs := s.HistExemplars(HistServerLatencyNS)
	if len(exs) != 1 {
		t.Fatalf("got %d exemplars, want 1: %+v", len(exs), exs)
	}
	e := exs[0]
	if e.RID != "req-b" || e.Seq != 9 || e.Value != 1500 {
		t.Fatalf("exemplar = %+v, want most recent req-b", e)
	}
	if e.Bucket != histBucket(1500) || e.LE != HistBucketBound(e.Bucket) {
		t.Fatalf("bucket coordinates wrong: %+v (histBucket=%d)", e, histBucket(1500))
	}
	if e.UnixNano == 0 {
		t.Fatal("exemplar has no timestamp")
	}

	// Overflow values exemplify the +Inf bucket (LE -1).
	huge := int64(1) << 45
	s.Observe(HistServerLatencyNS, huge)
	s.Exemplar(HistServerLatencyNS, huge, "req-inf", 11)
	exs = s.HistExemplars(HistServerLatencyNS)
	if len(exs) != 2 || exs[1].LE != -1 || exs[1].RID != "req-inf" {
		t.Fatalf("+Inf exemplar missing: %+v", exs)
	}
}

// TestExemplarDisabledZeroAlloc is the allocation pin for the acceptance
// criterion "with diag disabled the hot path stays zero-alloc": the reply
// path's Observe+Exemplar pair must not allocate when exemplar storage is
// detached, nor on a nil sink.
func TestExemplarDisabledZeroAlloc(t *testing.T) {
	s := New(Config{})
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(HistServerLatencyNS, 4096)
		s.Exemplar(HistServerLatencyNS, 4096, "req-x", 3)
	})
	if allocs != 0 {
		t.Fatalf("detached exemplars allocate: %v allocs/op", allocs)
	}
	var nilSink *Sink
	allocs = testing.AllocsPerRun(1000, func() {
		nilSink.Observe(HistServerLatencyNS, 4096)
		nilSink.Exemplar(HistServerLatencyNS, 4096, "req-x", 3)
		nilSink.HistExemplars(HistServerLatencyNS)
	})
	if allocs != 0 {
		t.Fatalf("nil sink allocates: %v allocs/op", allocs)
	}
}

// openMetricsExemplarRe matches a bucket line carrying an exemplar:
//
//	name_bucket{le="2048"} 3 # {request_id="load-1-9",seq="42"} 1500 1712345678.123
var openMetricsExemplarRe = regexp.MustCompile(
	`_bucket\{le="[^"]+"\} \d+ # \{request_id="([^"]+)",seq="(\d+)"\} (\d+) (\d+\.\d{3})$`)

// TestWritePromExemplarFree: the v0.0.4 body never carries exemplars, even
// with exemplar storage populated — the classic text parser allows only an
// optional timestamp after a sample's value, so one exemplar line would
// fail the entire scrape.
func TestWritePromExemplarFree(t *testing.T) {
	s := New(Config{})
	s.EnableExemplars()
	s.Observe(HistServerLatencyNS, 1500)
	s.Exemplar(HistServerLatencyNS, 1500, "load-1-9", 42)

	var buf bytes.Buffer
	if err := WriteProm(&buf, s); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, " # {") {
			t.Fatalf("v0.0.4 body carries an exemplar: %q", line)
		}
	}
	if strings.Contains(buf.String(), "# EOF") {
		t.Fatal("v0.0.4 body carries the OpenMetrics EOF terminator")
	}
}

// TestWriteOpenMetricsExemplars: the OpenMetrics body carries exemplar
// syntax on exactly the buckets that hold one, declares counter families
// without the _total sample suffix, contains no free-form comments, and
// terminates with # EOF.
func TestWriteOpenMetricsExemplars(t *testing.T) {
	s := New(Config{})
	s.EnableExemplars()
	s.Observe(HistServerLatencyNS, 1500)
	s.Exemplar(HistServerLatencyNS, 1500, "load-1-9", 42)
	s.Add(CtrQueries, 7)

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var matched int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") &&
			!strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") &&
			line != "# EOF" && line != "" {
			t.Fatalf("free-form comment in OpenMetrics body: %q", line)
		}
		if !strings.Contains(line, " # {") {
			continue
		}
		m := openMetricsExemplarRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exemplar line: %q", line)
		}
		if m[1] != "load-1-9" || m[2] != "42" || m[3] != "1500" {
			t.Fatalf("exemplar identity wrong: %q", line)
		}
		if !strings.HasPrefix(line, "parcfl_server_latency_ns_bucket{") {
			t.Fatalf("exemplar on unexpected series: %q", line)
		}
		matched++
	}
	if matched != 1 {
		t.Fatalf("%d exemplar lines, want exactly 1", matched)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics body not terminated by # EOF:\n...%q", out[max(0, len(out)-80):])
	}
	// Counter families drop the mandatory _total sample suffix in their
	// TYPE declarations; the sample lines keep it.
	if !strings.Contains(out, "# TYPE parcfl_queries counter\n") {
		t.Fatal("OpenMetrics counter family still declared with _total suffix")
	}
	if strings.Contains(out, "# TYPE parcfl_queries_total counter\n") {
		t.Fatal("OpenMetrics TYPE line uses the sample name, not the family name")
	}
	if !strings.Contains(out, "parcfl_queries_total 7\n") {
		t.Fatal("counter sample lost its _total suffix")
	}
	// The timer _count series cannot be a legal OpenMetrics counter; it is
	// declared unknown instead.
	if !strings.Contains(out, "# TYPE parcfl_timer_schedule_count unknown\n") {
		t.Fatal("timer _count series not declared unknown in OpenMetrics")
	}

	// A nil sink still yields a valid, terminated OpenMetrics body.
	buf.Reset()
	if err := WriteOpenMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("nil-sink OpenMetrics body = %q, want just # EOF", buf.String())
	}
}

// TestMetricsContentNegotiation: /metrics serves the v0.0.4 body (no
// exemplars) to clients that do not ask for OpenMetrics, and the
// OpenMetrics body (exemplars + # EOF) to those that do — a Prometheus
// scrape without OpenMetrics support must never see an unparseable line.
func TestMetricsContentNegotiation(t *testing.T) {
	s := New(Config{})
	s.EnableExemplars()
	s.Observe(HistServerLatencyNS, 1500)
	s.Exemplar(HistServerLatencyNS, 1500, "req-neg", 5)

	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	fetch := func(accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), body.String()
	}

	// Default scrape (no Accept, or a generic one): classic format, clean.
	for _, accept := range []string{"", "*/*", "text/plain;version=0.0.4"} {
		ct, body := fetch(accept)
		if !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
			t.Fatalf("Accept %q: content type %q, want v0.0.4 text", accept, ct)
		}
		if strings.Contains(body, " # {") || strings.Contains(body, "# EOF") {
			t.Fatalf("Accept %q: v0.0.4 body carries OpenMetrics syntax", accept)
		}
	}

	// An OpenMetrics-negotiating scraper (Prometheus sends it with q-params
	// and fallbacks) gets exemplars and the terminator.
	ct, body := fetch("application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated content type %q, want openmetrics-text", ct)
	}
	if !strings.Contains(body, `# {request_id="req-neg",seq="5"}`) {
		t.Fatalf("OpenMetrics body missing the exemplar:\n%.500s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("OpenMetrics body not terminated by # EOF")
	}
}

// TestHistSnapshotSub: the windowed delta underpinning the watchdog's
// rolling p99 rule subtracts element-wise and clamps at zero.
func TestHistSnapshotSub(t *testing.T) {
	s := New(Config{})
	s.Observe(HistServerLatencyNS, 100)
	s.Observe(HistServerLatencyNS, 100)
	before := s.Hist(HistServerLatencyNS)
	s.Observe(HistServerLatencyNS, 1<<20)
	delta := s.Hist(HistServerLatencyNS).Sub(before)
	if delta.Count != 1 || delta.Sum != 1<<20 {
		t.Fatalf("delta = %+v", delta)
	}
	if q := delta.Quantile(0.99); q < 1<<19 {
		t.Fatalf("windowed p99 %d ignores the new slow observation", q)
	}
	// Reversed operands clamp rather than going negative.
	neg := before.Sub(s.Hist(HistServerLatencyNS))
	if neg.Count != 0 || neg.Sum != 0 {
		t.Fatalf("reversed delta not clamped: %+v", neg)
	}
}

// TestBuildIdentityAndStatusz: the build identity is populated and stable,
// and /debug/statusz serves a parseable document with it.
func TestBuildIdentityAndStatusz(t *testing.T) {
	bi := ReadBuildIdentity()
	if bi.GoVersion == "" {
		t.Fatal("no Go version in build identity")
	}
	if again := ReadBuildIdentity(); again != bi {
		t.Fatalf("build identity not stable: %+v vs %+v", bi, again)
	}
	s := New(Config{})
	st := Status(s)
	if st.Schema != StatusZSchema || st.GOMAXPROCS <= 0 || st.PID <= 0 || st.NumGoroutine <= 0 {
		t.Fatalf("statusz = %+v", st)
	}

	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status %d: %s", resp.StatusCode, body.String())
	}
	for _, want := range []string{StatusZSchema, `"go_version"`, `"gomaxprocs"`, `"uptime_ns"`} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("statusz body missing %q:\n%s", want, body.String())
		}
	}

	// parcfl_build_info rides /metrics with the identity as labels.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), "parcfl_build_info{go_version=\"") {
		t.Fatalf("/metrics missing parcfl_build_info:\n%.500s", metrics.String())
	}
}

// TestSpanBufferKeepsRecent: a full span buffer overwrites the oldest spans,
// so a long-lived process retains the most recent activity window (what a
// mid-incident diagnostic bundle needs).
func TestSpanBufferKeepsRecent(t *testing.T) {
	s := New(Config{})
	s.EnableSpans(0, 4)
	for i := 0; i < 10; i++ {
		s.SpanInstant(SpJmpTake, NoWorker, int64(i), 0)
	}
	spans, dropped := s.Spans()
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("got %d spans, %d dropped; want 4 kept, 6 dropped", len(spans), dropped)
	}
	for _, sp := range spans {
		if sp.A < 6 {
			t.Fatalf("old span %d survived; kept set %+v", sp.A, spans)
		}
	}
}

// TestShutdownDebugReturnsError: a hung handler surfaces as a returned
// error instead of being swallowed.
func TestShutdownDebugReturnsError(t *testing.T) {
	srv, addr, err := ServeDebug("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ShutdownDebug(srv, time.Second); err != nil {
		t.Fatalf("clean shutdown errored: %v", err)
	}

	// A handler that outlives the shutdown timeout must produce an error.
	block := make(chan struct{})
	started := make(chan struct{})
	hung := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-block
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = hung.Serve(ln) }()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	if err := ShutdownDebug(hung, 50*time.Millisecond); err == nil {
		t.Fatal("hung listener shutdown reported no error")
	}
	close(block)
	_ = addr
}
