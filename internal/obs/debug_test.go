package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugIndexGenerated: the "/" index is generated from the registered
// routes, so every described endpoint — including ones layered on after
// construction, the way parcfld mounts /debug/bundle — appears, and
// undescribed internals (pprof sub-handlers, the /debug/traces/ prefix) stay
// out. This is the anti-drift property the hand-maintained index lacked.
func TestDebugIndexGenerated(t *testing.T) {
	s := New(Config{})
	m := NewDebugMux(s)
	m.HandleFunc("/debug/custom", "a layered-on endpoint", func(w http.ResponseWriter, r *http.Request) {})

	srv := httptest.NewServer(m)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, path := range []string{
		"/metrics", "/debug/vars", "/debug/pprof/", "/debug/obs",
		"/debug/timeseries", "/debug/heat", "/debug/slo", "/debug/statusz",
		"/debug/traces", "/debug/custom",
	} {
		if !strings.Contains(body, path) {
			t.Errorf("index missing %s:\n%s", path, body)
		}
	}
	for _, hidden := range []string{"/debug/pprof/cmdline", "/debug/traces/\n"} {
		if strings.Contains(body, hidden) {
			t.Errorf("index lists undescribed route %q:\n%s", hidden, body)
		}
	}
	// Every indexed path actually serves (no dangling index lines).
	for _, rt := range m.Routes() {
		r, err := http.Get(srv.URL + rt.Path)
		if err != nil {
			t.Fatalf("GET %s: %v", rt.Path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", rt.Path, r.StatusCode)
		}
	}
}

// TestDebugTracesEndpoints covers the /debug/traces surface end to end: the
// storeless empty payload, search filters, bad-parameter rejection, and the
// per-rid Perfetto export whose serve span carries the request identity.
func TestDebugTracesEndpoints(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(NewDebugMux(s))
	defer srv.Close()

	// No store attached: empty payload with the schema, not a 404.
	var p TracesPayload
	getJSON(t, srv.URL+"/debug/traces", &p)
	if p.Schema != TraceStoreSchema || len(p.Traces) != 0 {
		t.Fatalf("storeless payload %+v", p)
	}

	ts := NewTraceStore(s, TraceStoreConfig{Capacity: 8, SampleRate: -1})
	s.AttachTraceStore(ts)
	ts.Offer(ReqTrace{
		RID: "req-a", Seq: 3, Outcome: 1, TotalNS: 5_000,
		Spans: []Span{{Kind: SpanServe, Worker: NoWorker, T: 10, Dur: 5_000, A: 3, C: 1}},
	})
	ts.Offer(ReqTrace{RID: "req-b", Seq: 4, Outcome: 2, TotalNS: 9_000})

	getJSON(t, srv.URL+"/debug/traces", &p)
	if len(p.Traces) != 2 || p.Traces[0].RID != "req-b" {
		t.Fatalf("search = %+v", p.Traces)
	}
	getJSON(t, srv.URL+"/debug/traces?outcome=overload", &p)
	if len(p.Traces) != 1 || p.Traces[0].RID != "req-a" {
		t.Fatalf("outcome filter = %+v", p.Traces)
	}
	getJSON(t, srv.URL+"/debug/traces?min_ns=6000", &p)
	if len(p.Traces) != 1 || p.Traces[0].RID != "req-b" {
		t.Fatalf("min_ns filter = %+v", p.Traces)
	}
	if resp, err := http.Get(srv.URL + "/debug/traces?outcome=bogus"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad outcome = %d, want 400", resp.StatusCode)
	}

	// Per-rid export: standalone Perfetto file, serve span annotated with
	// the trace identity the store minted.
	var tf TraceFile
	getJSON(t, srv.URL+"/debug/traces/req-a", &tf)
	var serve *TraceEvent
	for i := range tf.TraceEvents {
		if tf.TraceEvents[i].Ph == "X" && tf.TraceEvents[i].Name == "serve" {
			serve = &tf.TraceEvents[i]
		}
	}
	if serve == nil {
		t.Fatalf("no serve span in export: %+v", tf.TraceEvents)
	}
	if serve.Args["rid"] != "req-a" || serve.Args["outcome_name"] != "overload" ||
		serve.Args["policy"] != "outcome" {
		t.Fatalf("serve args %+v", serve.Args)
	}
	if tid, ok := serve.Args["trace_id"].(string); !ok || !isHexID(tid, 32) {
		t.Fatalf("serve trace_id %+v", serve.Args["trace_id"])
	}
	if resp, err := http.Get(srv.URL + "/debug/traces/nope"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown rid = %d, want 404", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
