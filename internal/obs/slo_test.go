package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock steps a deterministic wall clock for SLO window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLO(c *fakeClock, windows ...time.Duration) *SLO {
	return NewSLO(SLOConfig{
		AvailabilityObjective: 0.99,
		LatencyObjective:      0.9,
		LatencyTargetNS:       int64(10 * time.Millisecond),
		Windows:               windows,
		now:                   c.now,
	})
}

func TestSLOBurnRates(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	s := newTestSLO(clk, 5*time.Minute, time.Hour)

	// 98 fast successes, 1 slow success, 1 deadline miss, 1 overload.
	for i := 0; i < 98; i++ {
		s.Record(ClassSuccess, int64(2*time.Millisecond))
	}
	s.Record(ClassSuccess, int64(40*time.Millisecond))
	s.Record(ClassDeadline, int64(30*time.Millisecond))
	s.Record(ClassOverload, 0)

	snap := s.Snapshot()
	if snap.Schema != SLOSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if len(snap.Windows) != 2 {
		t.Fatalf("windows = %d", len(snap.Windows))
	}
	w := snap.Windows[0]
	if w.Total != 101 {
		t.Fatalf("total = %d", w.Total)
	}
	if w.Classes["success"] != 99 || w.Classes["deadline"] != 1 || w.Classes["overload"] != 1 {
		t.Fatalf("classes = %v", w.Classes)
	}
	// Availability counts overload as good: 100/101.
	wantAvail := 100.0 / 101.0
	if math.Abs(w.Availability-wantAvail) > 1e-9 {
		t.Fatalf("availability = %g, want %g", w.Availability, wantAvail)
	}
	wantBurn := (1 - wantAvail) / (1 - 0.99)
	if math.Abs(w.AvailBurnRate-wantBurn) > 1e-9 {
		t.Fatalf("avail burn = %g, want %g", w.AvailBurnRate, wantBurn)
	}
	// Latency SLI over successes only: 98/99 within the 10ms target.
	wantAtt := 98.0 / 99.0
	if math.Abs(w.LatencyAttainment-wantAtt) > 1e-9 {
		t.Fatalf("latency attainment = %g, want %g", w.LatencyAttainment, wantAtt)
	}
	if w.LatencyBurnRate <= 0 {
		t.Fatalf("latency burn = %g", w.LatencyBurnRate)
	}
	// Both windows saw the same traffic.
	if snap.Windows[1].Total != 101 {
		t.Fatalf("1h total = %d", snap.Windows[1].Total)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2_000_000, 0)}
	s := newTestSLO(clk, 10*time.Second, time.Minute)

	s.Record(ClassError, 0)
	clk.advance(30 * time.Second)
	s.Record(ClassSuccess, int64(time.Millisecond))

	snap := s.Snapshot()
	short, long := snap.Windows[0], snap.Windows[1]
	// The error has aged out of the 10s window but not the 1m one.
	if short.Total != 1 || short.Classes["error"] != 0 {
		t.Fatalf("short window = %+v", short)
	}
	if short.Availability != 1 || short.AvailBurnRate != 0 {
		t.Fatalf("short window burn = %+v", short)
	}
	if long.Total != 2 || long.Classes["error"] != 1 {
		t.Fatalf("long window = %+v", long)
	}
	if long.Availability != 0.5 {
		t.Fatalf("long availability = %g", long.Availability)
	}

	// Ring reuse: after the long window passes, everything ages out.
	clk.advance(2 * time.Minute)
	snap = s.Snapshot()
	for _, w := range snap.Windows {
		if w.Total != 0 || w.Availability != 1 {
			t.Fatalf("expired window = %+v", w)
		}
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Record(ClassSuccess, 1) // must not panic
	if snap := s.Snapshot(); snap.Schema != SLOSchema || len(snap.Windows) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	var sink *Sink
	if sink.SLO() != nil {
		t.Fatal("nil sink SLO != nil")
	}
	sink.AttachSLO(nil) // no panic
}

func TestSLOPromExport(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3_000_000, 0)}
	sink := New(Config{})
	sink.AttachSLO(newTestSLO(clk, 5*time.Minute, time.Hour))
	sink.SLO().Record(ClassSuccess, int64(time.Millisecond))
	sink.SLO().Record(ClassOverload, 0)

	var sb strings.Builder
	if err := WriteProm(&sb, sink); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`parcfl_slo_requests_total{class="success"} 1`,
		`parcfl_slo_requests_total{class="overload"} 1`,
		`parcfl_slo_availability{window="300s"} 1`,
		`parcfl_slo_availability{window="3600s"} 1`,
		`parcfl_slo_avail_burn_rate{window="300s"} 0`,
		`parcfl_slo_latency_attainment{window="300s"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("prom output missing %q\n%s", line, out)
		}
	}
}
