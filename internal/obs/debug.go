package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DebugMux is the daemon's debug surface: an http.ServeMux whose "/" index
// is generated from the registered routes, so a newly mounted endpoint can
// never be missing from the index (the hand-maintained list this replaces
// had already drifted past /debug/bundle). Components layer their own
// endpoints on with Handle; paths registered with an empty description
// (pprof sub-handlers) serve but stay out of the index.
type DebugMux struct {
	mux *http.ServeMux

	mu     sync.Mutex
	routes []DebugRoute
}

// DebugRoute is one indexed debug endpoint.
type DebugRoute struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
}

// Handle mounts h at path and, when desc is non-empty, lists it in the "/"
// index. Registering a path twice panics (http.ServeMux semantics).
func (m *DebugMux) Handle(path, desc string, h http.Handler) {
	m.mux.Handle(path, h)
	if desc == "" {
		return
	}
	m.mu.Lock()
	m.routes = append(m.routes, DebugRoute{Path: path, Desc: desc})
	sort.Slice(m.routes, func(i, j int) bool { return m.routes[i].Path < m.routes[j].Path })
	m.mu.Unlock()
}

// HandleFunc is Handle for plain handler functions.
func (m *DebugMux) HandleFunc(path, desc string, h func(http.ResponseWriter, *http.Request)) {
	m.Handle(path, desc, http.HandlerFunc(h))
}

// Routes returns the indexed routes, path-sorted.
func (m *DebugMux) Routes() []DebugRoute {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DebugRoute, len(m.routes))
	copy(out, m.routes)
	return out
}

// ServeHTTP dispatches to the registered routes; unmatched paths get the
// generated index.
func (m *DebugMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

func (m *DebugMux) serveIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	b.WriteString("parcfl debug endpoint\n\n")
	for _, rt := range m.Routes() {
		b.WriteString(rt.Path)
		if rt.Desc != "" {
			pad := 24 - len(rt.Path)
			if pad < 1 {
				pad = 1
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString("— ")
			b.WriteString(rt.Desc)
		}
		b.WriteByte('\n')
	}
	_, _ = w.Write([]byte(b.String()))
}

func jsonEnc(w http.ResponseWriter) *json.Encoder {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}

// NewDebugMux builds the standard debug surface over sink:
//
//	/debug/vars        — expvar (cmdline, memstats, and anything published)
//	/debug/pprof/      — net/http/pprof profiles
//	/debug/obs         — JSON Snapshot of the given sink (nil sink → zero snapshot)
//	/debug/timeseries  — flight-recorder history (obs.TimeSeries JSON; empty
//	                     when no recorder is attached)
//	/debug/heat        — PAG heat profile from the attached HeatSource (JSON;
//	                     an empty object when none is attached)
//	/debug/slo         — rolling SLO windows with burn rates (obs.SLOSnapshot
//	                     JSON; zero-valued when no tracker is attached)
//	/debug/statusz     — build/runtime identity (parcfl-statusz/v1)
//	/debug/traces      — tail-sampled retained request traces
//	                     (parcfl-traces/v1; ?rid= ?min_ns= ?outcome= ?policy=
//	                     ?limit= filters); /debug/traces/{rid} exports that
//	                     request as a standalone Perfetto JSON trace
//	/metrics           — Prometheus text exposition (counters, gauges, timers,
//	                     latency histograms, flight-recorder last sample, heat
//	                     top-k gauges); clients whose Accept header negotiates
//	                     application/openmetrics-text get the OpenMetrics body
//	                     with bucket exemplars, everyone else the classic
//	                     v0.0.4 body (which cannot legally carry exemplars)
//
// A dedicated mux is used so callers never pollute http.DefaultServeMux.
func NewDebugMux(sink *Sink) *DebugMux {
	m := &DebugMux{mux: http.NewServeMux()}
	m.HandleFunc("/metrics", "Prometheus/OpenMetrics exposition", func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = WriteOpenMetrics(w, sink)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, sink)
	})
	m.Handle("/debug/vars", "expvar", expvar.Handler())
	m.HandleFunc("/debug/pprof/", "runtime profiles", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", "", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", "", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", "", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", "", pprof.Trace)
	m.HandleFunc("/debug/obs", "sink snapshot (counters/gauges/hists)", func(w http.ResponseWriter, r *http.Request) {
		_ = jsonEnc(w).Encode(sink.Snapshot())
	})
	m.HandleFunc("/debug/timeseries", "flight-recorder history", func(w http.ResponseWriter, r *http.Request) {
		_ = jsonEnc(w).Encode(sink.FlightRecorder().Snapshot())
	})
	m.HandleFunc("/debug/heat", "PAG heat profile", func(w http.ResponseWriter, r *http.Request) {
		if h := sink.Heat(); h != nil {
			_ = jsonEnc(w).Encode(h.HeatSnapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}\n"))
	})
	m.HandleFunc("/debug/slo", "SLO windows and burn rates", func(w http.ResponseWriter, r *http.Request) {
		_ = jsonEnc(w).Encode(sink.SLO().Snapshot())
	})
	m.HandleFunc("/debug/statusz", "build and runtime identity", func(w http.ResponseWriter, r *http.Request) {
		_ = jsonEnc(w).Encode(Status(sink))
	})
	m.HandleFunc("/debug/traces", "tail-sampled request traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraceSearch(w, r, sink.TraceStore())
	})
	m.HandleFunc("/debug/traces/", "", func(w http.ResponseWriter, r *http.Request) {
		serveTraceGet(w, r, sink.TraceStore())
	})
	m.mux.HandleFunc("/", m.serveIndex)
	return m
}

// Handler returns the standard debug surface over sink (see NewDebugMux).
func Handler(sink *Sink) http.Handler { return NewDebugMux(sink) }

// serveTraceSearch answers GET /debug/traces: the store snapshot plus
// retained traces filtered by ?rid=, ?min_ns=, ?outcome= (class number or
// name), ?policy= and ?limit= (default 32, 0 = all). A daemon without a
// trace store serves the empty payload rather than a 404, so probes can
// distinguish "nothing retained" from "no such route".
func serveTraceSearch(w http.ResponseWriter, r *http.Request, ts *TraceStore) {
	q := TraceQuery{Outcome: -1, Limit: 32}
	qs := r.URL.Query()
	q.RID = qs.Get("rid")
	q.Policy = qs.Get("policy")
	if v := qs.Get("min_ns"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad min_ns: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.MinTotalNS = n
	}
	if v := qs.Get("outcome"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			q.Outcome = n
		} else {
			found := false
			for c := int64(0); c <= 3; c++ {
				if OutcomeName(c) == v {
					q.Outcome, found = c, true
					break
				}
			}
			if !found {
				http.Error(w, "bad outcome: "+v, http.StatusBadRequest)
				return
			}
		}
	}
	if v := qs.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit: "+v, http.StatusBadRequest)
			return
		}
		q.Limit = n
	}
	_ = jsonEnc(w).Encode(ts.Dump(q))
}

// serveTraceGet answers GET /debug/traces/{rid}: the named request's
// retained trace as a standalone Perfetto JSON file (404 when the rid is
// not retained — evicted, sampled out, or never seen).
func serveTraceGet(w http.ResponseWriter, r *http.Request, ts *TraceStore) {
	rid := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if rid == "" {
		serveTraceSearch(w, r, ts)
		return
	}
	t, ok := ts.Get(rid)
	if !ok {
		http.Error(w, "trace not retained: "+rid, http.StatusNotFound)
		return
	}
	_ = jsonEnc(w).Encode(RequestTraceEvents(t))
}

// openMetricsContentType is the Content-Type of an OpenMetrics scrape body.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// acceptsOpenMetrics reports whether an Accept header negotiates the
// OpenMetrics text exposition. A plain media-type match is enough: every
// scraper that can parse OpenMetrics names it explicitly, and everyone
// else (curl's */*, no header at all) gets v0.0.4.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// ServeDebug starts the debug HTTP endpoint on addr (e.g. "localhost:6060";
// use ":0" for an ephemeral port) serving Handler(sink) in a background
// goroutine. It returns the server and the bound address; callers shut it
// down gracefully with ShutdownDebug (or srv.Close to abort in-flight
// requests).
func ServeDebug(addr string, sink *Sink) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(sink)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// ShutdownDebug gracefully shuts down a server started by ServeDebug:
// the listener closes immediately, in-flight requests get up to timeout to
// finish. A nil srv is a no-op, so callers can defer it unconditionally.
// The shutdown error is returned — a context.DeadlineExceeded here means a
// handler was still running when the timeout expired (a hung listener
// during SIGTERM drain), which callers should surface rather than swallow.
func ShutdownDebug(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return srv.Shutdown(ctx)
}
