package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns an http.Handler exposing the standard debug surface:
//
//	/debug/vars       — expvar (cmdline, memstats, and anything published)
//	/debug/pprof/     — net/http/pprof profiles
//	/debug/obs        — JSON Snapshot of the given sink (nil sink → zero snapshot)
//	/debug/timeseries — flight-recorder history (obs.TimeSeries JSON; empty
//	                    when no recorder is attached)
//	/debug/heat       — PAG heat profile from the attached HeatSource (JSON;
//	                    an empty object when none is attached)
//	/debug/slo        — rolling SLO windows with burn rates (obs.SLOSnapshot
//	                    JSON; zero-valued when no tracker is attached)
//	/metrics          — Prometheus text exposition (counters, gauges, timers,
//	                    latency histograms, flight-recorder last sample, heat
//	                    top-k gauges); clients whose Accept header negotiates
//	                    application/openmetrics-text get the OpenMetrics body
//	                    with bucket exemplars, everyone else the classic
//	                    v0.0.4 body (which cannot legally carry exemplars)
//
// A dedicated mux is used so callers never pollute http.DefaultServeMux.
func Handler(sink *Sink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = WriteOpenMetrics(w, sink)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, sink)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sink.Snapshot())
	})
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sink.FlightRecorder().Snapshot())
	})
	mux.HandleFunc("/debug/heat", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if h := sink.Heat(); h != nil {
			_ = enc.Encode(h.HeatSnapshot())
			return
		}
		_, _ = w.Write([]byte("{}\n"))
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sink.SLO().Snapshot())
	})
	mux.HandleFunc("/debug/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Status(sink))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("parcfl debug endpoint\n\n/debug/vars\n/debug/pprof/\n/debug/obs\n/debug/timeseries\n/debug/heat\n/debug/slo\n/debug/statusz\n/metrics\n"))
	})
	return mux
}

// openMetricsContentType is the Content-Type of an OpenMetrics scrape body.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// acceptsOpenMetrics reports whether an Accept header negotiates the
// OpenMetrics text exposition. A plain media-type match is enough: every
// scraper that can parse OpenMetrics names it explicitly, and everyone
// else (curl's */*, no header at all) gets v0.0.4.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// ServeDebug starts the debug HTTP endpoint on addr (e.g. "localhost:6060";
// use ":0" for an ephemeral port) serving Handler(sink) in a background
// goroutine. It returns the server and the bound address; callers shut it
// down gracefully with ShutdownDebug (or srv.Close to abort in-flight
// requests).
func ServeDebug(addr string, sink *Sink) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(sink)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// ShutdownDebug gracefully shuts down a server started by ServeDebug:
// the listener closes immediately, in-flight requests get up to timeout to
// finish. A nil srv is a no-op, so callers can defer it unconditionally.
// The shutdown error is returned — a context.DeadlineExceeded here means a
// handler was still running when the timeout expired (a hung listener
// during SIGTERM drain), which callers should surface rather than swallow.
func ShutdownDebug(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return srv.Shutdown(ctx)
}
