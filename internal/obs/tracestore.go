package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStore is a bounded, tail-sampling store of completed per-request
// traces, queryable on a live daemon through /debug/traces. The server
// assembles each request's phase spans at reply time and offers the trace
// here; the store decides retention by a tail policy, most-interesting
// first:
//
//  1. outcome — error / overloaded / deadline-exceeded requests are always
//     retained (failures are the rarest and most valuable traces);
//  2. anomaly — everything completing inside a watchdog anomaly window is
//     retained (MarkAnomaly is called when a diagnostic trigger fires, so
//     the requests surrounding an incident survive);
//  3. slow — requests at or above a live histogram-derived latency
//     threshold (the configured quantile of the server latency histogram,
//     refreshed periodically) are retained;
//  4. sampled — a deterministic pseudo-random fraction of the remainder is
//     retained as a healthy-baseline control group.
//
// Retained traces land in a bounded overwrite-oldest ring, so memory stays
// within Capacity entries forever and the store always holds the most
// recent interesting window. Per-policy retention counters are exported as
// parcfl_trace_* metrics.
//
// On-demand CFL-reachability serving is exactly the regime where this
// matters: per-query costs are wildly skewed (a hot high-fan-in variable
// walks orders of magnitude more PAG than the median query), so uniform
// head sampling would drown the tail that operators actually debug.

// TraceStoreSchema identifies the /debug/traces JSON layout.
const TraceStoreSchema = "parcfl-traces/v1"

// RetainPolicy says why a trace was kept.
type RetainPolicy uint8

const (
	// RetainOutcome: non-success outcome (overload / deadline / error).
	RetainOutcome RetainPolicy = iota
	// RetainAnomaly: completed inside a watchdog anomaly window.
	RetainAnomaly
	// RetainSlow: total latency at or above the live threshold.
	RetainSlow
	// RetainSampled: probabilistically sampled healthy-baseline request.
	RetainSampled

	// NumRetainPolicies is the number of defined retention policies.
	NumRetainPolicies
)

var retainNames = [NumRetainPolicies]string{"outcome", "anomaly", "slow", "sampled"}

// String returns the policy's snake_case name.
func (p RetainPolicy) String() string {
	if int(p) < len(retainNames) {
		return retainNames[p]
	}
	return "policy_unknown"
}

// OutcomeName maps a request outcome class (the SpanServe C payload:
// 0 success, 1 overload, 2 deadline, 3 error) to its name.
func OutcomeName(c int64) string {
	switch c {
	case 0:
		return "success"
	case 1:
		return "overload"
	case 2:
		return "deadline"
	default:
		return "error"
	}
}

// ReqTrace is one request's completed trace: identity, outcome, and the
// phase spans reconstructed from its timings. Spans use the owning sink's
// clock (T = ns since sink creation), matching the full -trace-out export.
type ReqTrace struct {
	RID     string `json:"rid"`
	TraceID string `json:"trace_id,omitempty"` // 32-hex W3C trace id
	SpanID  string `json:"span_id,omitempty"`  // server's 16-hex span id
	Seq     int64  `json:"seq"`
	Primary int64  `json:"primary,omitempty"` // seq whose computation answered this
	Batch   int64  `json:"batch,omitempty"`
	// Outcome is the request outcome class (see OutcomeName).
	Outcome int64    `json:"outcome"`
	Vars    []string `json:"vars,omitempty"`
	// StartUnixNano anchors the sink-relative span clock to wall time.
	StartUnixNano int64  `json:"start_unix_nano"`
	TotalNS       int64  `json:"total_ns"`
	Spans         []Span `json:"spans"`
	// Policy is stamped by the store at retention time.
	Policy string `json:"policy,omitempty"`
}

// TraceStoreConfig sizes and tunes a TraceStore. The zero value gets sane
// defaults from NewTraceStore.
type TraceStoreConfig struct {
	// Capacity bounds the retained set (overwrite-oldest). Default 512.
	Capacity int
	// SampleRate is the probability a healthy, fast request is retained
	// anyway as a baseline. Default 0.01; negative disables sampling.
	SampleRate float64
	// Seed seeds the sampling RNG (deterministic for tests). Default 1.
	Seed int64
	// SlowQuantile is the latency quantile used as the "slow" threshold.
	// Default 0.99.
	SlowQuantile float64
	// Hist is the sink histogram the threshold is derived from.
	// Default HistServerLatencyNS.
	Hist HistID
	// MinCount is the histogram population required before a threshold
	// exists; below it the slow rule is inactive (a cold store falls back
	// to sampling). Default 64.
	MinCount int64
	// RefreshEvery recomputes the cached threshold every N offers.
	// Default 64.
	RefreshEvery int64
	// Now overrides the wall clock (tests). Default time.Now.
	Now func() time.Time
}

// TraceStore holds retained request traces. Create with NewTraceStore and
// attach with Sink.AttachTraceStore; a detached sink costs producers one
// atomic load and zero allocations.
type TraceStore struct {
	cfg  TraceStoreConfig
	sink *Sink // threshold histogram source (nil → slow rule inactive)

	mu       sync.Mutex
	rng      *rand.Rand
	ring     []ReqTrace
	next     int   // overwrite position once the ring is full
	offers   int64 // offers since last threshold refresh
	retained [NumRetainPolicies]int64

	observed    atomic.Int64
	dropped     atomic.Int64 // offered, not retained
	evicted     atomic.Int64 // retained entries overwritten
	thresholdNS atomic.Int64 // cached slow threshold (0 = inactive)
	anomalyNS   atomic.Int64 // anomaly window end, sink-relative ns
}

// NewTraceStore creates a store deriving its slow threshold from sink's
// latency histogram (sink may be nil: the slow rule stays inactive).
func NewTraceStore(sink *Sink, cfg TraceStoreConfig) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.01
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SlowQuantile <= 0 || cfg.SlowQuantile >= 1 {
		cfg.SlowQuantile = 0.99
	}
	if cfg.Hist == 0 {
		cfg.Hist = HistServerLatencyNS
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 64
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &TraceStore{
		cfg:  cfg,
		sink: sink,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		ring: make([]ReqTrace, 0, cfg.Capacity),
	}
}

// AttachTraceStore attaches ts as the sink's trace store (nil detaches).
// Producers discover it through TraceStore(); the swap is atomic.
func (s *Sink) AttachTraceStore(ts *TraceStore) {
	if s == nil {
		return
	}
	s.tracestore.Store(&traceStoreBox{ts: ts})
}

// TraceStore returns the attached trace store, or nil. The detached path is
// one atomic load — callers guard their trace assembly behind it so the
// request hot path stays allocation-free when tracing is off.
func (s *Sink) TraceStore() *TraceStore {
	if s == nil {
		return nil
	}
	b := s.tracestore.Load()
	if b == nil {
		return nil
	}
	return b.ts
}

// MarkAnomaly opens (or extends) the anomaly retention window for d from
// now: every request completing before it closes is retained. The watchdog
// calls this when any diagnostic trigger rule fires, so the requests around
// an incident survive sampling. Nil-safe.
func (ts *TraceStore) MarkAnomaly(d time.Duration) {
	if ts == nil || d <= 0 {
		return
	}
	until := ts.nowNS() + int64(d)
	for {
		cur := ts.anomalyNS.Load()
		if until <= cur || ts.anomalyNS.CompareAndSwap(cur, until) {
			return
		}
	}
}

// AnomalyActive reports whether the anomaly retention window is open.
func (ts *TraceStore) AnomalyActive() bool {
	return ts != nil && ts.anomalyNS.Load() > ts.nowNS()
}

// nowNS is the store's monotonic-enough clock in ns (sink-relative when a
// sink is present, so it shares the span clock; wall otherwise).
func (ts *TraceStore) nowNS() int64 {
	if ts.sink != nil {
		return ts.sink.Now()
	}
	return ts.cfg.Now().UnixNano()
}

// Offer presents a completed request trace for retention. The tail policy
// decides: non-success outcomes, anomaly-window completions and
// above-threshold latencies are always retained; the healthy remainder is
// sampled at SampleRate. Missing trace/span ids are minted at retention
// time from the store's seeded RNG (cheaper and deterministic, versus
// crypto/rand per request on the hot path). Nil-safe.
func (ts *TraceStore) Offer(t ReqTrace) {
	if ts == nil {
		return
	}
	ts.observed.Add(1)
	policy, ok := ts.classify(&t)
	if !ok {
		ts.dropped.Add(1)
		return
	}
	t.Policy = policy.String()

	ts.mu.Lock()
	ts.retained[policy]++
	if t.TraceID == "" {
		t.TraceID = ts.mintHexLocked(16)
	}
	if t.SpanID == "" {
		t.SpanID = ts.mintHexLocked(8)
	}
	if len(ts.ring) < cap(ts.ring) {
		ts.ring = append(ts.ring, t)
	} else {
		ts.ring[ts.next] = t
		ts.next = (ts.next + 1) % cap(ts.ring)
		ts.evicted.Add(1)
	}
	ts.mu.Unlock()
}

// classify applies the tail policy in order of interest.
func (ts *TraceStore) classify(t *ReqTrace) (RetainPolicy, bool) {
	if t.Outcome != 0 {
		return RetainOutcome, true
	}
	if ts.anomalyNS.Load() > ts.nowNS() {
		return RetainAnomaly, true
	}
	if thr := ts.threshold(); thr > 0 && t.TotalNS >= thr {
		return RetainSlow, true
	}
	if ts.cfg.SampleRate > 0 {
		ts.mu.Lock()
		hit := ts.rng.Float64() < ts.cfg.SampleRate
		ts.mu.Unlock()
		if hit {
			return RetainSampled, true
		}
	}
	return 0, false
}

// threshold returns the cached slow threshold, refreshing it from the live
// histogram every RefreshEvery offers. 0 means inactive (no sink, or the
// histogram population is still below MinCount).
func (ts *TraceStore) threshold() int64 {
	ts.mu.Lock()
	ts.offers++
	due := ts.offers%ts.cfg.RefreshEvery == 1
	ts.mu.Unlock()
	if due && ts.sink != nil {
		hs := ts.sink.Hist(ts.cfg.Hist)
		if hs.Count >= ts.cfg.MinCount {
			ts.thresholdNS.Store(hs.Quantile(ts.cfg.SlowQuantile))
		} else {
			ts.thresholdNS.Store(0)
		}
	}
	return ts.thresholdNS.Load()
}

// mintHexLocked mints n random bytes as lowercase hex from the seeded RNG.
// Callers hold ts.mu.
func (ts *TraceStore) mintHexLocked(n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 2*n)
	for i := 0; i < len(b); i += 2 {
		v := ts.rng.Intn(256)
		b[i] = digits[v>>4]
		b[i+1] = digits[v&0xf]
	}
	return string(b)
}

// TraceQuery filters a Search.
type TraceQuery struct {
	// RID matches the request id exactly ("" = any). A value that instead
	// equals a retained trace's TraceID also matches, so operators can
	// resolve by either handle.
	RID string
	// MinTotalNS drops faster traces (0 = any).
	MinTotalNS int64
	// Outcome matches the outcome class; negative = any.
	Outcome int64
	// Policy matches the retention policy name ("" = any).
	Policy string
	// Limit caps the result count (0 = no cap).
	Limit int
}

// Search returns matching retained traces, newest first.
func (ts *TraceStore) Search(q TraceQuery) []ReqTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var out []ReqTrace
	// Ring order: ts.next..end are oldest when full, 0..next newest; walk
	// backwards from the newest insert.
	n := len(ts.ring)
	for i := 0; i < n; i++ {
		idx := ts.next - 1 - i
		if idx < 0 {
			idx += n
		}
		t := ts.ring[idx]
		if q.RID != "" && t.RID != q.RID && t.TraceID != q.RID {
			continue
		}
		if q.MinTotalNS > 0 && t.TotalNS < q.MinTotalNS {
			continue
		}
		if q.Outcome >= 0 && t.Outcome != q.Outcome {
			continue
		}
		if q.Policy != "" && t.Policy != q.Policy {
			continue
		}
		out = append(out, t)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Get returns the most recently retained trace for rid (matching RID or
// TraceID), if any.
func (ts *TraceStore) Get(rid string) (ReqTrace, bool) {
	hits := ts.Search(TraceQuery{RID: rid, Outcome: -1, Limit: 1})
	if len(hits) == 0 {
		return ReqTrace{}, false
	}
	return hits[0], true
}

// TraceStoreSnapshot is the store's counters at a point in time.
type TraceStoreSnapshot struct {
	Capacity    int   `json:"capacity"`
	Retained    int   `json:"retained"` // live entries in the ring
	Observed    int64 `json:"observed"` // traces offered
	Dropped     int64 `json:"dropped"`  // offered, not retained
	Evicted     int64 `json:"evicted"`  // retained, later overwritten
	ThresholdNS int64 `json:"slow_threshold_ns"`
	// AnomalyActive reports whether the anomaly window is currently open.
	AnomalyActive bool `json:"anomaly_active"`
	// RetainedByPolicy counts retention decisions per policy name.
	RetainedByPolicy map[string]int64 `json:"retained_by_policy"`
}

// Snapshot captures the store's counters (zero value on nil).
func (ts *TraceStore) Snapshot() TraceStoreSnapshot {
	if ts == nil {
		return TraceStoreSnapshot{RetainedByPolicy: map[string]int64{}}
	}
	snap := TraceStoreSnapshot{
		Capacity:         cap(ts.ring),
		Observed:         ts.observed.Load(),
		Dropped:          ts.dropped.Load(),
		Evicted:          ts.evicted.Load(),
		ThresholdNS:      ts.thresholdNS.Load(),
		AnomalyActive:    ts.AnomalyActive(),
		RetainedByPolicy: make(map[string]int64, NumRetainPolicies),
	}
	ts.mu.Lock()
	snap.Retained = len(ts.ring)
	for p := RetainPolicy(0); p < NumRetainPolicies; p++ {
		snap.RetainedByPolicy[p.String()] = ts.retained[p]
	}
	ts.mu.Unlock()
	return snap
}

// retainedCount reads one policy's retention counter.
func (ts *TraceStore) retainedCount(p RetainPolicy) int64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.retained[p]
}

// TracesPayload is the /debug/traces response and the diag bundle's
// traces.json artifact: store counters plus (filtered) retained traces.
type TracesPayload struct {
	Schema string             `json:"schema"`
	Store  TraceStoreSnapshot `json:"store"`
	Traces []ReqTrace         `json:"traces"`
}

// Dump packages the snapshot and matching traces (nil-safe; a nil store
// yields an empty payload with the schema stamped).
func (ts *TraceStore) Dump(q TraceQuery) TracesPayload {
	p := TracesPayload{Schema: TraceStoreSchema, Store: ts.Snapshot(), Traces: ts.Search(q)}
	if p.Traces == nil {
		p.Traces = []ReqTrace{}
	}
	return p
}

// traceStoreBox wraps the pointer so detaching stores a non-nil box holding
// nil, keeping AttachTraceStore(nil) and "never attached" one code path.
type traceStoreBox struct{ ts *TraceStore }
