package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) support: parcfl
// speaks the `traceparent` header so its per-request traces compose with
// external tracers — a future router→shard hop propagates one trace id end
// to end, and an operator can join a parcfl request trace against whatever
// the caller's own tracing backend recorded.
//
// Only version 00 is emitted; any well-formed future version is accepted
// (per spec, an unknown version parses as 00 when the tail matches).

// TraceParentHeader is the W3C Trace Context request/response header name.
const TraceParentHeader = "traceparent"

// TraceParent is a parsed version-00 traceparent value.
type TraceParent struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
	Flags   byte   // bit 0 = sampled
}

// String renders the header value: 00-<trace-id>-<span-id>-<flags>.
func (tp TraceParent) String() string {
	var flags [1]byte
	flags[0] = tp.Flags
	return "00-" + tp.TraceID + "-" + tp.SpanID + "-" + hex.EncodeToString(flags[:])
}

// Valid reports whether the fields form a legal traceparent (well-sized
// lowercase hex, ids not all zero).
func (tp TraceParent) Valid() bool {
	return isHexID(tp.TraceID, 32) && isHexID(tp.SpanID, 16)
}

// ParseTraceParent parses a traceparent header value. It returns ok=false on
// anything malformed (wrong field sizes, non-hex, all-zero ids, the invalid
// version ff) — callers treat that as "no incoming trace" and mint fresh ids
// rather than propagating garbage.
func ParseTraceParent(v string) (TraceParent, bool) {
	// version(2) - trace-id(32) - span-id(16) - flags(2); future versions may
	// append "-..." suffixes, which version-00 parsers must tolerate.
	if len(v) < 55 {
		return TraceParent{}, false
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceParent{}, false
	}
	ver := v[0:2]
	if !isHex(ver) || ver == "ff" {
		return TraceParent{}, false
	}
	if ver == "00" && len(v) != 55 {
		return TraceParent{}, false
	}
	if len(v) > 55 && v[55] != '-' {
		return TraceParent{}, false
	}
	tp := TraceParent{TraceID: v[3:35], SpanID: v[36:52]}
	flags := v[53:55]
	if !isHex(flags) || !tp.Valid() {
		return TraceParent{}, false
	}
	b, _ := hex.DecodeString(flags)
	tp.Flags = b[0]
	return tp, true
}

// MintTraceParent mints a fresh sampled traceparent with random ids
// (crypto/rand; a failed read degrades to a fixed non-zero id rather than
// panicking — observability must never take the request path down).
func MintTraceParent() TraceParent {
	return TraceParent{TraceID: randHex(16), SpanID: randHex(8), Flags: 0x01}
}

// MintSpanID mints a fresh random 16-hex-char span id.
func MintSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = 0x42
		}
	}
	return hex.EncodeToString(b)
}

// isHexID reports whether s is exactly n lowercase hex chars and not all
// zero (all-zero trace/span ids are invalid per spec).
func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
