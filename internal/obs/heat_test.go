package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fakeHeat is a minimal HeatSource for endpoint/exposition tests.
type fakeHeat struct{}

func (fakeHeat) HeatSnapshot() any {
	return map[string]any{"schema": "test-heat/v1", "total_steps": 42}
}

func (fakeHeat) HeatTop(k int) []HeatSample {
	return []HeatSample{
		{Series: "node_steps", LabelKey: "node", Label: "main.s1", Value: 30},
		{Series: "node_steps", LabelKey: "node", Label: "main.s2", Value: 12},
		{Series: "field_steps", LabelKey: "field", Label: "f3", Value: 9},
	}
}

// TestNilSinkHeatIsSafeAndFree extends the nil-sink contract to the heat
// attachment: attach/read on a nil sink must be no-ops with zero
// allocations.
func TestNilSinkHeatIsSafeAndFree(t *testing.T) {
	var s *Sink
	allocs := testing.AllocsPerRun(1000, func() {
		s.AttachHeat(fakeHeat{})
		if s.Heat() != nil {
			t.Fatal("nil sink returned a heat source")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil sink heat hooks allocated %.1f per run, want 0", allocs)
	}
}

// TestAttachHeat: a live sink round-trips the attached source, and a nil
// attachment detaches cleanly.
func TestAttachHeat(t *testing.T) {
	s := New(Config{})
	if s.Heat() != nil {
		t.Fatal("fresh sink has a heat source")
	}
	s.AttachHeat(fakeHeat{})
	if s.Heat() == nil {
		t.Fatal("attached heat source not returned")
	}
	s.AttachHeat(nil)
	if s.Heat() != nil {
		t.Fatal("nil attachment did not detach")
	}
}

// TestDebugHeatEndpoint: /debug/heat serves the snapshot JSON when a source
// is attached, and an empty object otherwise; /metrics gains the
// parcfl_heat_* gauges.
func TestDebugHeatEndpoint(t *testing.T) {
	s := New(Config{})
	srv, addr, err := ServeDebug("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/debug/heat"); strings.TrimSpace(body) != "{}" {
		t.Fatalf("detached /debug/heat = %q, want {}", body)
	}
	s.AttachHeat(fakeHeat{})
	if body := get("/debug/heat"); !strings.Contains(body, "test-heat/v1") {
		t.Fatalf("/debug/heat missing snapshot: %q", body)
	}
	metrics := get("/metrics")
	for _, line := range []string{
		`parcfl_heat_node_steps{node="main.s1"} 30`,
		`parcfl_heat_node_steps{node="main.s2"} 12`,
		`parcfl_heat_field_steps{field="f3"} 9`,
		"# TYPE parcfl_heat_node_steps gauge",
	} {
		if !strings.Contains(metrics, line) {
			t.Fatalf("/metrics missing %q", line)
		}
	}
	// The index page advertises the endpoint.
	if !strings.Contains(get("/"), "/debug/heat") {
		t.Fatal("index page does not list /debug/heat")
	}
}
