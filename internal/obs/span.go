package obs

import (
	"sort"
	"sync"
)

// SpanKind identifies one span (timed interval) or instant-event type.
//
// Spans carry a start timestamp and a duration; instants a timestamp only.
// The distinction matters to consumers: the trace-event exporter renders
// spans as "complete" (X) events that nest by containment on their worker's
// track, and instants as zero-width (i) markers.
type SpanKind uint8

const (
	// SpRun: one whole engine.Run batch. A = queries, B = units.
	SpRun SpanKind = iota
	// SpWorker: one worker goroutine's run. A = units, B = queries,
	// C = steps walked.
	SpWorker
	// SpUnit: one claimed work unit, claim to completion. A = unit index,
	// B = unit size (queries).
	SpUnit
	// SpQuery: one query, start to answer. A = query variable, B = steps
	// consumed (negative when the query aborted), C = jumps taken.
	SpQuery
	// SpCompPts: one scan of a memoised backward (points-to) traversal.
	// A = node, B = steps consumed by the scan, C = context depth.
	SpCompPts
	// SpCompFls: the forward (flows-to) mirror of SpCompPts.
	SpCompFls
	// SpSchedule: one whole sched plan build. A = groups.
	SpSchedule
	// SpSchedGroup: the component-grouping phase. A = components touched.
	SpSchedGroup
	// SpSchedOrder: the CD/DD ordering phase. A = groups ordered.
	SpSchedOrder
	// SpSchedBalance: the split/merge rebalancing phase. A = final groups.
	SpSchedBalance
	// SpRefinePass: one refinement pass. A = query variable, B = pass
	// index (0-based), C = approximate fields remaining after the pass.
	SpRefinePass
	// SpIncUpdate: one incremental edit application. A = edges added,
	// B = edges removed.
	SpIncUpdate
	// SpanAdmit: one server request's admission phase (handler entry to the
	// pending-map insert or coalesce join). A = request sequence number,
	// B = queue depth at admission, C = admission class (0 = new entry,
	// 1 = coalesced onto pending, 2 = coalesced onto inflight).
	SpanAdmit
	// SpanQueueWait: one server request's wait from admission until the
	// batch containing it was sealed. A = request sequence number,
	// B = batch sequence number.
	SpanQueueWait
	// SpanBatchWindow: one dispatcher batch from window open (first pending
	// entry observed) through seal, solve and fan-out. A = batch sequence
	// number, B = distinct variables sealed, C = pending depth left behind.
	SpanBatchWindow
	// SpanServe: one server request end to end, admission to reply.
	// A = request sequence number, B = primary request sequence (the request
	// whose computation this one rode; equals A when not coalesced),
	// C = outcome class (0 = success, 1 = overload, 2 = deadline, 3 = error).
	SpanServe
	// SpanFanout: one per-shard subrequest issued by the cluster router,
	// send to reply. A = routed request sequence number, B = shard index,
	// C = outcome class (same classes as SpanServe).
	SpanFanout

	// SpJmpTake (instant): a finished jmp shortcut was taken. A = node,
	// B = steps saved.
	SpJmpTake
	// SpEarlyTerm (instant): a query early-terminated on an unfinished jmp
	// entry. A = node, B = required budget.
	SpEarlyTerm
	// SpJmpInsert (instant): a jmp edge entered the store. A = node,
	// B = step cost (negative for unfinished markers).
	SpJmpInsert

	// NumSpanKinds is the number of defined span kinds.
	NumSpanKinds
)

var spanNames = [NumSpanKinds]string{
	"run", "worker", "unit", "query", "comp_pts", "comp_fls",
	"schedule", "sched_group", "sched_order", "sched_balance",
	"refine_pass", "inc_update",
	"admit", "queue_wait", "batch_window", "serve", "fanout",
	"jmp_take", "early_term", "jmp_insert",
}

// String returns the span kind's snake_case name.
func (k SpanKind) String() string {
	if int(k) < len(spanNames) {
		return spanNames[k]
	}
	return "span_unknown"
}

// Instant reports whether the kind is an instant event (zero duration by
// construction) rather than a timed span.
func (k SpanKind) Instant() bool {
	return k == SpJmpTake || k == SpEarlyTerm || k == SpJmpInsert
}

// Span is one recorded span or instant event. T is the start timestamp in
// nanoseconds since sink creation; Dur is 0 for instants. A, B and C are
// kind-specific payloads (see the SpanKind docs).
type Span struct {
	Kind   SpanKind `json:"kind"`
	Worker int32    `json:"worker"`
	T      int64    `json:"t_ns"`
	Dur    int64    `json:"dur_ns"`
	A      int64    `json:"a"`
	B      int64    `json:"b"`
	C      int64    `json:"c"`
}

// spanBuf is one span buffer. Buffer 0 (the "main" track: engine phases,
// scheduler phases, store insertions — anything not attributable to a
// single worker goroutine) is shared between goroutines. Buffers 1..N are
// per-worker and single-writer: only worker w appends to buffer w+1, so
// their mutex is uncontended on the query hot path — it exists so a live
// reader (a diagnostic bundle capturing mid-incident, when the ring
// overwrite mutates existing entries) snapshots consistent spans instead
// of racing the writers. The struct is padded so adjacent workers'
// buffers never share a cache line.
//
// A full buffer behaves as a ring: new spans overwrite the oldest (counted
// as dropped). A long-lived daemon therefore always holds the most recent
// window of activity — the spans a diagnostic bundle captured mid-incident
// actually needs — rather than whatever happened in its first minutes.
type spanBuf struct {
	mu      sync.Mutex
	spans   []Span
	next    int // overwrite position once len(spans) == limit
	dropped int64

	_ [2]int64 // pad to a cache line
}

func (b *spanBuf) put(sp Span, limit int) {
	b.mu.Lock()
	if len(b.spans) < limit {
		b.spans = append(b.spans, sp)
		b.mu.Unlock()
		return
	}
	b.spans[b.next] = sp
	b.next = (b.next + 1) % limit
	b.dropped++
	b.mu.Unlock()
}

// spanRegion is an attached set of span buffers: one shared buffer plus one
// buffer per worker. Buffers grow geometrically up to limit spans each,
// then wrap (overwriting oldest, counting drops), bounding memory on
// runaway traces while retaining the most recent activity.
type spanRegion struct {
	limit int
	bufs  []spanBuf
}

func newSpanRegion(workers, limit int) *spanRegion {
	if workers < 0 {
		workers = 0
	}
	return &spanRegion{limit: limit, bufs: make([]spanBuf, workers+1)}
}

// put records sp into worker's buffer. NoWorker and out-of-range ids land
// in the shared buffer 0. Every buffer locks its own mutex inside put.
func (r *spanRegion) put(worker int32, sp Span) {
	i := int(worker) + 1
	if i < 1 || i >= len(r.bufs) {
		i = 0
	}
	r.bufs[i].put(sp, r.limit)
}

// SpanTracing reports whether span buffers are attached (false for nil).
// Producers may use it to skip computing span payloads entirely.
func (s *Sink) SpanTracing() bool { return s != nil && s.spans.Load() != nil }

// SpanStart returns the span-relative start timestamp for a span about to
// open, or 0 when span tracing is off (including on a nil sink).
func (s *Sink) SpanStart() int64 {
	if s == nil || s.spans.Load() == nil {
		return 0
	}
	return s.sinceNS()
}

// Span closes a span opened at startNS (a value returned by SpanStart while
// tracing was on) and records it on worker's track. No-op when span tracing
// is off; like every Sink method it is safe and allocation-free on nil.
func (s *Sink) Span(kind SpanKind, worker int32, startNS int64, a, b, c int64) {
	if s == nil {
		return
	}
	r := s.spans.Load()
	if r == nil {
		return
	}
	r.put(worker, Span{Kind: kind, Worker: worker, T: startNS, Dur: s.sinceNS() - startNS, A: a, B: b, C: c})
}

// SpanAt records a span whose start and duration were measured elsewhere —
// e.g. reconstructed from phase stamps after a request replied, when the
// interval's endpoints were captured by different goroutines. startNS must
// come from SpanStart (or arithmetic on such values); durNS is clamped at 0.
func (s *Sink) SpanAt(kind SpanKind, worker int32, startNS, durNS int64, a, b, c int64) {
	if s == nil {
		return
	}
	r := s.spans.Load()
	if r == nil {
		return
	}
	if durNS < 0 {
		durNS = 0
	}
	r.put(worker, Span{Kind: kind, Worker: worker, T: startNS, Dur: durNS, A: a, B: b, C: c})
}

// SpanInstant records a zero-duration instant event on worker's track.
func (s *Sink) SpanInstant(kind SpanKind, worker int32, a, b int64) {
	if s == nil {
		return
	}
	r := s.spans.Load()
	if r == nil {
		return
	}
	r.put(worker, Span{Kind: kind, Worker: worker, T: s.sinceNS(), A: a, B: b})
}

// EnableSpans attaches fresh span buffers: one shared track plus one track
// per worker, each bounded at capPerTrack spans. Any previously attached
// buffers (and their spans) are discarded. Call while no producers are
// running; producers observe the swap atomically.
func (s *Sink) EnableSpans(workers, capPerTrack int) {
	if s == nil || capPerTrack <= 0 {
		return
	}
	s.spans.Store(newSpanRegion(workers, capPerTrack))
}

// DisableSpans detaches the span buffers, returning the recorded spans (as
// by Spans) one last time. Subsequent span hooks no-op until EnableSpans.
func (s *Sink) DisableSpans() ([]Span, int64) {
	if s == nil {
		return nil, 0
	}
	r := s.spans.Swap(nil)
	return collectSpans(r)
}

// Spans returns a copy of every recorded span, merged across tracks in
// start-time order, plus the total number of spans dropped on full buffers.
// Every buffer is mutex-guarded, so this is safe on a live process — a
// watchdog-triggered diagnostic bundle captures mid-run without tearing
// spans — though a moving run means the snapshot is only per-buffer (not
// globally) atomic; for exact end-of-run accounting call it quiesced.
func (s *Sink) Spans() ([]Span, int64) {
	if s == nil {
		return nil, 0
	}
	return collectSpans(s.spans.Load())
}

func collectSpans(r *spanRegion) ([]Span, int64) {
	if r == nil {
		return nil, 0
	}
	var out []Span
	var dropped int64
	for i := range r.bufs {
		b := &r.bufs[i]
		b.mu.Lock()
		out = append(out, b.spans...)
		dropped += b.dropped
		b.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		// Equal starts: longer span first, so parents precede children.
		return out[i].Dur > out[j].Dur
	})
	return out, dropped
}
