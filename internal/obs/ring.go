package obs

import "sync"

// EventKind identifies one trace event type.
type EventKind uint8

const (
	// EvWorkerStart: a worker goroutine started. Worker = id.
	EvWorkerStart EventKind = iota
	// EvWorkerStop: a worker exited. A = queries processed, B = steps walked.
	EvWorkerStop
	// EvUnitClaim: a worker claimed a work unit. A = unit index, B = size.
	EvUnitClaim
	// EvQueryDone: one query finished. A = query variable, B = steps
	// consumed (negative when the query aborted).
	EvQueryDone
	// EvJmpInsert: a jmp edge entered the store. A = node, B = step cost
	// (negative for unfinished markers).
	EvJmpInsert
	// EvJmpTake: a finished jmp shortcut was taken. A = node, B = steps saved.
	EvJmpTake
	// EvEarlyTerm: a query early-terminated on an unfinished jmp entry.
	// A = node, B = required budget.
	EvEarlyTerm
	// EvCacheHit / EvCacheMiss: result-cache lookup outcome. A = node.
	EvCacheHit
	EvCacheMiss
	// EvSchedPlan: a schedule was built. A = groups, B = build ns.
	EvSchedPlan

	// NumEventKinds is the number of defined event kinds.
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	"worker_start", "worker_stop", "unit_claim", "query_done",
	"jmp_insert", "jmp_take", "early_term", "cache_hit", "cache_miss",
	"sched_plan",
}

// String returns the event kind's snake_case name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "event_unknown"
}

// NoWorker is the Worker value for events not attributable to an engine
// worker goroutine (e.g. store insertions observed outside the worker loop).
const NoWorker int32 = -1

// Event is one fixed-size trace record. A and B are kind-specific payloads
// (see the EventKind docs); T is nanoseconds since sink creation.
type Event struct {
	Kind   EventKind `json:"kind"`
	Worker int32     `json:"worker"`
	T      int64     `json:"t_ns"`
	A      int64     `json:"a"`
	B      int64     `json:"b"`
}

// ring is a bounded trace buffer: the newest cap events win, older ones are
// overwritten. A single mutex keeps it race-free; tracing is opt-in, so the
// lock is never touched on the disabled path.
type ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever put
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, capacity)}
}

func (r *ring) put(e Event) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// snapshot returns the retained events oldest-first plus the number of
// events that have been overwritten.
func (r *ring) snapshot() ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.buf))
	var dropped uint64
	start := uint64(0)
	count := n
	if n > size {
		dropped = n - size
		start = n % size
		count = size
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, r.buf[(start+i)%size])
	}
	return out, dropped
}
