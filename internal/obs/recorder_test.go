package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRecorderRingBoundsAndOrder(t *testing.T) {
	s := New(Config{})
	r := NewRecorder(s, RecorderConfig{Cap: 4})
	for i := 0; i < 7; i++ {
		s.SetGauge(GaugeUnits, int64(i))
		r.SampleOnce()
	}
	ts := r.Snapshot()
	if len(ts.Points) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(ts.Points))
	}
	if ts.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", ts.Dropped)
	}
	ui := ts.Index("units")
	if ui < 0 {
		t.Fatalf("no units series in %v", ts.Series)
	}
	// Newest 4 samples survive, oldest-first: gauge values 3,4,5,6.
	for i, p := range ts.Points {
		if got, want := p.V[ui], float64(i+3); got != want {
			t.Errorf("point %d units = %g, want %g", i, got, want)
		}
		if i > 0 && p.TNS < ts.Points[i-1].TNS {
			t.Errorf("timestamps out of order: %d after %d", p.TNS, ts.Points[i-1].TNS)
		}
	}
	if len(ts.Points[0].V) != len(ts.Series) {
		t.Fatalf("point width %d != series count %d", len(ts.Points[0].V), len(ts.Series))
	}
}

func TestRecorderSeriesValues(t *testing.T) {
	s := New(Config{})
	s.Add(CtrQueries, 42)
	s.Add(CtrShareLookups, 10)
	s.Add(CtrShareHits, 4)
	s.SetGauge(GaugeWorklistDepth, 17)
	r := NewRecorder(s, RecorderConfig{Cap: 8})
	r.SampleOnce()
	ts := r.Snapshot()
	if ts.Len() != 1 {
		t.Fatalf("got %d points, want 1", ts.Len())
	}
	p := ts.Points[0]
	get := func(name string) float64 {
		i := ts.Index(name)
		if i < 0 {
			t.Fatalf("series %q missing from %v", name, ts.Series)
		}
		return p.V[i]
	}
	if got := get("queries"); got != 42 {
		t.Errorf("queries = %g, want 42", got)
	}
	if got := get("worklist_depth"); got != 17 {
		t.Errorf("worklist_depth = %g, want 17", got)
	}
	if got := get("share_hit_ratio"); got != 0.4 {
		t.Errorf("share_hit_ratio = %g, want 0.4", got)
	}
	if got := get("heap_bytes"); got <= 0 {
		t.Errorf("heap_bytes = %g, want > 0", got)
	}
	if got := get("goroutines"); got < 1 {
		t.Errorf("goroutines = %g, want >= 1", got)
	}
}

func TestRecorderCustomSource(t *testing.T) {
	r := NewRecorder(nil, RecorderConfig{Cap: 2})
	v := 7.0
	r.Register("custom_depth", func() float64 { return v })
	r.SampleOnce()
	v = 9.0
	r.SampleOnce()
	// Registration after the first sample must not change the layout.
	r.Register("too_late", func() float64 { return 1 })
	r.SampleOnce()
	ts := r.Snapshot()
	if i := ts.Index("too_late"); i >= 0 {
		t.Fatal("late registration extended the frozen series layout")
	}
	ci := ts.Index("custom_depth")
	if ci < 0 {
		t.Fatalf("custom series missing from %v", ts.Series)
	}
	if got := ts.Points[0].V[ci]; got != 9 {
		t.Errorf("oldest retained custom sample = %g, want 9", got)
	}
}

// TestRecorderOffIsFreeAndNilSafe: with no recorder attached nothing about
// the producer side changes — gauge updates on a sink without a recorder
// stay allocation-free, and every method of a nil *Recorder is a safe no-op.
func TestRecorderOffIsFreeAndNilSafe(t *testing.T) {
	s := New(Config{})
	if s.FlightRecorder() != nil {
		t.Fatal("fresh sink has a recorder")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.SetGauge(GaugeWorklistDepth, 3)
		s.AddGauge(GaugeInflight, 1)
		s.AddGauge(GaugeInflight, -1)
		s.Add(CtrShareLookups, 1)
		_ = s.FlightRecorder()
	})
	if allocs != 0 {
		t.Fatalf("recorder-off producer path allocated %.1f per run, want 0", allocs)
	}
	var r *Recorder
	allocs = testing.AllocsPerRun(100, func() {
		r.SampleOnce()
		r.Start()
		r.Stop()
		r.Register("x", func() float64 { return 0 })
		_, _, _ = r.Last()
		_ = r.Running()
		_ = r.Interval()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per run, want 0", allocs)
	}
	if ts := r.Snapshot(); len(ts.Series) != 0 || len(ts.Points) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", ts)
	}
	var nilSink *Sink
	nilSink.AttachRecorder(NewRecorder(nil, RecorderConfig{}))
	if nilSink.FlightRecorder() != nil {
		t.Fatal("nil sink returned a recorder")
	}
}

// TestRecorderSteadyStateSamplingNoAllocs: after the layout freezes, each
// tick writes into the preallocated ring in place.
func TestRecorderSteadyStateSamplingNoAllocs(t *testing.T) {
	s := New(Config{})
	r := NewRecorder(s, RecorderConfig{Cap: 64})
	for i := 0; i < 8; i++ {
		r.SampleOnce() // warm up runtime/metrics histogram buffers
	}
	allocs := testing.AllocsPerRun(200, func() { r.SampleOnce() })
	if allocs != 0 {
		t.Fatalf("steady-state sampling allocated %.1f per run, want 0", allocs)
	}
}

func TestRecorderStartStopLifecycle(t *testing.T) {
	s := New(Config{})
	r := NewRecorder(s, RecorderConfig{Interval: time.Millisecond, Cap: 1024})
	r.Start()
	if !r.Running() {
		t.Fatal("recorder not running after Start")
	}
	r.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	if r.Running() {
		t.Fatal("recorder still running after Stop")
	}
	r.Stop()  // idempotent
	r.Start() // stopped recorders do not restart
	if r.Running() {
		t.Fatal("stopped recorder restarted")
	}
	ts := r.Snapshot()
	// Start samples immediately and Stop samples once more, so even a
	// sub-interval life records >= 2 points; 20ms at 1ms gives many more.
	if ts.Len() < 2 {
		t.Fatalf("got %d points, want >= 2", ts.Len())
	}
	for i := 1; i < ts.Len(); i++ {
		if ts.Points[i].TNS < ts.Points[i-1].TNS {
			t.Fatalf("point %d timestamp regressed", i)
		}
	}
}

func TestRecorderDefaults(t *testing.T) {
	r := NewRecorder(nil, RecorderConfig{})
	if r.Interval() != DefaultSampleInterval {
		t.Errorf("interval = %v, want %v", r.Interval(), DefaultSampleInterval)
	}
	r.SampleOnce()
	if ts := r.Snapshot(); ts.IntervalNS != int64(DefaultSampleInterval) {
		t.Errorf("snapshot interval_ns = %d", ts.IntervalNS)
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	s := New(Config{})
	r := NewRecorder(s, RecorderConfig{Cap: 16})
	s.AttachRecorder(r)
	s.Add(CtrQueries, 5)
	r.SampleOnce()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ts TimeSeries
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		t.Fatalf("bad timeseries JSON: %v", err)
	}
	if len(ts.Series) == 0 || len(ts.Points) == 0 {
		t.Fatalf("empty timeseries: %d series, %d points", len(ts.Series), len(ts.Points))
	}
	qi := ts.Index("queries")
	if qi < 0 || ts.Points[0].V[qi] != 5 {
		t.Fatalf("queries series not served: %v", ts.Series)
	}
	// Without a recorder the endpoint still serves valid (empty) JSON.
	bare := httptest.NewServer(Handler(New(Config{})))
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/debug/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty TimeSeries
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatalf("bad empty timeseries JSON: %v", err)
	}
	if len(empty.Points) != 0 {
		t.Fatalf("recorder-less endpoint served points: %+v", empty)
	}
}

// TestTraceExportCounterTracks: the trace-event export merges recorder
// points as ph=C counter events that survive a JSON round trip, one track
// per series, on the same clock as the spans.
func TestTraceExportCounterTracks(t *testing.T) {
	s := New(Config{Workers: 1, SpanCap: 64})
	t0 := s.SpanStart()
	s.Span(SpQuery, 0, t0, 1, 2, 3)
	r := NewRecorder(s, RecorderConfig{Cap: 16})
	s.AttachRecorder(r)
	s.Add(CtrQueries, 1)
	r.SampleOnce()
	s.Add(CtrQueries, 1)
	r.SampleOnce()

	data, err := json.Marshal(TraceEvents(s))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	tracks := map[string]int{}
	spans := 0
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "C":
			if _, ok := e.Args["value"].(float64); !ok {
				t.Fatalf("counter %q has no numeric value: %v", e.Name, e.Args)
			}
			tracks[e.Name]++
		case "X":
			spans++
		}
	}
	if len(tracks) < 3 {
		t.Fatalf("got %d counter tracks, want >= 3: %v", len(tracks), tracks)
	}
	if spans == 0 {
		t.Fatal("span events missing alongside counter tracks")
	}
	if tracks["queries"] != 2 {
		t.Fatalf("queries track has %d points, want 2", tracks["queries"])
	}
}

// TestPromIncludesRecorderLastSample: /metrics exposes the newest point
// under the parcfl_fr_ prefix.
func TestPromIncludesRecorderLastSample(t *testing.T) {
	s := New(Config{})
	r := NewRecorder(s, RecorderConfig{Cap: 4})
	s.AttachRecorder(r)
	s.SetGauge(GaugeWorklistDepth, 11)
	r.SampleOnce()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := "parcfl_fr_worklist_depth 11"
	if !containsLine(string(body), want) {
		t.Fatalf("metrics missing %q:\n%s", want, body)
	}
}

func containsLine(body, line string) bool {
	for len(body) > 0 {
		i := 0
		for i < len(body) && body[i] != '\n' {
			i++
		}
		if body[:i] == line {
			return true
		}
		if i == len(body) {
			break
		}
		body = body[i+1:]
	}
	return false
}
