package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)

// TestWritePromParses: every non-comment line is a well-formed sample, every
// series has HELP and TYPE lines, and no (name, labels) pair repeats — the
// invariants a Prometheus scraper enforces.
func TestWritePromParses(t *testing.T) {
	s := New(Config{Workers: 2})
	s.Add(CtrQueries, 42)
	s.SetGauge(GaugeWorkers, 2)
	s.Observe(HistQueryNS, 1500)
	s.Observe(HistQueryNS, 3_000_000)
	s.Observe(HistQuerySteps, 77)

	var buf bytes.Buffer
	if err := WriteProm(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	typed := map[string]string{} // metric family -> type
	helped := map[string]bool{}
	seen := map[string]bool{} // full series key
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[f[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		series := m[1] + m[2]
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
	}

	// Spot-check key series and their declared types.
	if typed["parcfl_queries_total"] != "counter" || !helped["parcfl_queries_total"] {
		t.Fatalf("parcfl_queries_total missing or mistyped: %v", typed["parcfl_queries_total"])
	}
	if typed["parcfl_workers"] != "gauge" {
		t.Fatalf("parcfl_workers type = %q", typed["parcfl_workers"])
	}
	if typed["parcfl_query_latency_ns"] != "histogram" {
		t.Fatalf("parcfl_query_latency_ns type = %q", typed["parcfl_query_latency_ns"])
	}
	if !strings.Contains(out, "parcfl_queries_total 42\n") {
		t.Fatalf("counter value missing:\n%s", out)
	}
	if !strings.Contains(out, `parcfl_query_latency_ns_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, "parcfl_query_latency_ns_count 2\n") ||
		!strings.Contains(out, "parcfl_query_latency_ns_sum 3001500\n") {
		t.Fatalf("histogram sum/count wrong:\n%s", out)
	}
}

// TestWritePromHistogramCumulative: bucket counts are monotonically
// non-decreasing in le and end at the observation count.
func TestWritePromHistogramCumulative(t *testing.T) {
	s := New(Config{})
	for _, v := range []int64{1, 2, 2, 500, 70_000, 1 << 45} {
		s.Observe(HistQuerySteps, v)
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, s); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`parcfl_query_steps_bucket\{le="([^"]+)"\} ([0-9]+)`)
	prev := int64(-1)
	var last int64
	n := 0
	for _, m := range re.FindAllStringSubmatch(buf.String(), -1) {
		c, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev {
			t.Fatalf("bucket le=%s count %d < previous %d (not cumulative)", m[1], c, prev)
		}
		prev = c
		last = c
		n++
	}
	if n != NumHistBuckets+1 {
		t.Fatalf("%d bucket lines, want %d", n, NumHistBuckets+1)
	}
	if last != 6 {
		t.Fatalf("+Inf bucket = %d, want 6", last)
	}
}

// TestWritePromNilSink: a nil sink still yields a valid (comment-only)
// scrape body.
func TestWritePromNilSink(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, nil); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") {
			t.Fatalf("nil sink emitted a sample: %q", line)
		}
	}
}

// TestHelpTablesCover: every counter/gauge/timer/hist has a help string, so
// new IDs cannot silently ship without documentation.
func TestHelpTablesCover(t *testing.T) {
	for c := CounterID(0); c < NumCounters; c++ {
		if counterHelp[c] == "" {
			t.Fatalf("counter %v has no help text", c)
		}
	}
	for g := GaugeID(0); g < NumGauges; g++ {
		if gaugeHelp[g] == "" {
			t.Fatalf("gauge %v has no help text", g)
		}
	}
	for tm := TimerID(0); tm < NumTimers; tm++ {
		if timerHelp[tm] == "" {
			t.Fatalf("timer %v has no help text", tm)
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		if histHelp[h] == "" {
			t.Fatalf("hist %v has no help text", h)
		}
	}
}
