package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestSpanEnableDisable: span hooks no-op until EnableSpans, record while
// enabled, and DisableSpans hands the spans back exactly once.
func TestSpanEnableDisable(t *testing.T) {
	s := New(Config{})
	if s.SpanTracing() {
		t.Fatal("spans on by default")
	}
	s.Span(SpQuery, 0, 0, 1, 2, 3) // before enable: dropped
	s.EnableSpans(2, 16)
	if !s.SpanTracing() {
		t.Fatal("EnableSpans did not enable")
	}
	t0 := s.SpanStart()
	s.Span(SpQuery, 0, t0, 7, 8, 9)
	s.SpanInstant(SpJmpTake, 1, 10, 11)
	spans, dropped := s.DisableSpans()
	if s.SpanTracing() {
		t.Fatal("DisableSpans did not disable")
	}
	if len(spans) != 2 || dropped != 0 {
		t.Fatalf("got %d spans, %d dropped", len(spans), dropped)
	}
	for _, sp := range spans {
		if sp.Dur < 0 || sp.T < 0 {
			t.Fatalf("negative time in %+v", sp)
		}
	}
	if again, _ := s.Spans(); again != nil {
		t.Fatalf("spans still readable after disable: %v", again)
	}
	// SpanCap in Config pre-enables the region.
	s2 := New(Config{Workers: 1, SpanCap: 8})
	if !s2.SpanTracing() {
		t.Fatal("SpanCap did not enable spans")
	}
}

// TestSpanBufferLimit: each track is bounded at capPerTrack; overflow drops
// and is counted rather than growing without bound.
func TestSpanBufferLimit(t *testing.T) {
	s := New(Config{})
	s.EnableSpans(1, 4)
	for i := 0; i < 10; i++ {
		s.SpanInstant(SpJmpTake, 0, int64(i), 0)
	}
	// The shared track has its own independent limit.
	for i := 0; i < 6; i++ {
		s.SpanInstant(SpJmpInsert, NoWorker, int64(i), 0)
	}
	spans, dropped := s.Spans()
	if len(spans) != 8 || dropped != 8 {
		t.Fatalf("got %d spans, %d dropped; want 8 kept, 8 dropped", len(spans), dropped)
	}
}

// TestSpanWorkerRouting: out-of-range worker ids and NoWorker land on the
// shared track instead of panicking, and concurrent shared-track writers are
// safe.
func TestSpanWorkerRouting(t *testing.T) {
	s := New(Config{})
	s.EnableSpans(2, 1024)
	s.SpanInstant(SpJmpInsert, NoWorker, 1, 0)
	s.SpanInstant(SpJmpInsert, 99, 2, 0) // out of range -> shared track
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.SpanInstant(SpJmpInsert, NoWorker, int64(j), 0)
			}
		}()
	}
	wg.Wait()
	spans, dropped := s.Spans()
	if len(spans) != 2+8*50 || dropped != 0 {
		t.Fatalf("got %d spans, %d dropped", len(spans), dropped)
	}
}

// TestSpansSorted: Spans merges tracks into start-time order, ties broken
// longer-first so parents precede their children.
func TestSpansSorted(t *testing.T) {
	r := newSpanRegion(2, 100)
	r.put(1, Span{Kind: SpQuery, T: 50, Dur: 10})
	r.put(0, Span{Kind: SpUnit, T: 50, Dur: 200})
	r.put(NoWorker, Span{Kind: SpRun, T: 10, Dur: 500})
	r.put(1, Span{Kind: SpCompPts, T: 55, Dur: 2})
	spans, _ := collectSpans(r)
	if len(spans) != 4 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Kind != SpRun || spans[1].Kind != SpUnit || spans[2].Kind != SpQuery || spans[3].Kind != SpCompPts {
		t.Fatalf("order: %v %v %v %v", spans[0].Kind, spans[1].Kind, spans[2].Kind, spans[3].Kind)
	}
}

// TestTraceEventsRoundTrip: the exported trace survives encoding/json, maps
// workers to distinct threads, marks instants as ph=i, and never emits a
// negative timestamp or duration.
func TestTraceEventsRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2, SpanCap: 64})
	rt0 := s.SpanStart()
	q0 := s.SpanStart()
	s.Span(SpQuery, 0, q0, 4, 120, 1)
	s.SpanInstant(SpJmpTake, 1, 9, 30)
	s.Span(SpRun, NoWorker, rt0, 1, 1, 0)

	data, err := json.Marshal(TraceEvents(s))
	if err != nil {
		t.Fatal(err)
	}
	var back TraceFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}

	byPh := map[string]int{}
	tids := map[int64]bool{}
	threadNames := map[int64]string{}
	for _, ev := range back.TraceEvents {
		byPh[ev.Ph]++
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("negative time in %+v", ev)
		}
		if ev.Pid != tracePid {
			t.Fatalf("pid = %d", ev.Pid)
		}
		if ev.Ph == "M" {
			if ev.Name == "thread_name" {
				threadNames[ev.Tid] = ev.Args["name"].(string)
			}
			continue
		}
		tids[ev.Tid] = true
		if ev.Ph == "i" && ev.S != "t" {
			t.Fatalf("instant without thread scope: %+v", ev)
		}
	}
	if byPh["X"] != 2 || byPh["i"] != 1 {
		t.Fatalf("phases: %v", byPh)
	}
	// NoWorker -> engine tid 1; workers 0 and 1 -> tids 2 and 3.
	for tid, name := range map[int64]string{1: "engine", 2: "worker 0", 3: "worker 1"} {
		if !tids[tid] {
			t.Fatalf("no events on tid %d (have %v)", tid, tids)
		}
		if threadNames[tid] != name {
			t.Fatalf("tid %d named %q, want %q", tid, threadNames[tid], name)
		}
	}

	// The query span kept its named args.
	for _, ev := range back.TraceEvents {
		if ev.Name == "query" {
			if ev.Args["var"] != float64(4) || ev.Args["steps"] != float64(120) {
				t.Fatalf("query args = %v", ev.Args)
			}
		}
	}
}

// TestWriteTraceFile: the -trace-out path writes a parseable file even for
// an empty or nil sink (traceEvents must be [] not null).
func TestWriteTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if tf.TraceEvents == nil {
		t.Fatal("traceEvents is null, want []")
	}
}

// TestSpansLiveCollect: Spans() may run while worker goroutines are still
// recording — the daemon-mode diagnostic-bundle path — without tearing the
// ring. Run with -race this pins the per-buffer locking; without it, it
// still checks every collected span is internally consistent.
func TestSpansLiveCollect(t *testing.T) {
	const workers = 3
	s := New(Config{Workers: workers})
	s.EnableSpans(workers, 64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := int32(0); w < workers; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// A and B always match; a torn read would break the pair.
				s.SpanInstant(SpJmpTake, w, i, i)
				s.SpanInstant(SpJmpTake, NoWorker, i, i) // shared buffer too
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		spans, _ := s.Spans()
		for _, sp := range spans {
			if sp.A != sp.B {
				t.Errorf("torn span: A=%d B=%d", sp.A, sp.B)
			}
		}
	}
	close(stop)
	wg.Wait()
}
