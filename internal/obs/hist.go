package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistID names one log-bucketed latency/size histogram.
type HistID uint8

const (
	// HistQueryNS buckets per-query wall time in nanoseconds.
	HistQueryNS HistID = iota
	// HistQuerySteps buckets per-query budget steps consumed.
	HistQuerySteps
	// HistServerBatchSize buckets unique query variables per dispatched
	// server batch.
	HistServerBatchSize
	// HistServerWaitNS buckets admission-to-dispatch queue wait per server
	// request in nanoseconds.
	HistServerWaitNS
	// HistServerLatencyNS buckets admission-to-reply latency per server
	// request in nanoseconds.
	HistServerLatencyNS

	// NumHists is the number of defined histograms.
	NumHists
)

var histNames = [NumHists]string{
	"query_latency_ns", "query_steps",
	"server_batch_size", "server_wait_ns", "server_latency_ns",
}

var histHelp = [NumHists]string{
	"Per-query wall time in nanoseconds.",
	"Per-query budget steps consumed (including shortcut charges).",
	"Unique query variables per dispatched server batch.",
	"Admission-to-dispatch queue wait per server request in nanoseconds.",
	"Admission-to-reply latency per server request in nanoseconds.",
}

// String returns the histogram's snake_case name.
func (h HistID) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "hist_unknown"
}

// NumHistBuckets is the number of finite histogram buckets. Bucket i counts
// observations v with HistBucketBound(i-1) < v <= HistBucketBound(i) — i.e.
// upper bounds are successive powers of two, 2^0 .. 2^(NumHistBuckets-1),
// inclusive, matching Prometheus `le` semantics. 2^38 ns is ≈ 4.6 minutes,
// comfortably above any single query; larger observations still count
// toward Count and Sum (the +Inf bucket at export time).
const NumHistBuckets = 39

// HistBucketBound returns bucket i's inclusive upper bound, 2^i.
func HistBucketBound(i int) int64 { return 1 << uint(i) }

// histBucket maps an observation to its bucket index: the smallest i with
// v <= 2^i. Values beyond the last finite bound return NumHistBuckets
// (the implicit +Inf bucket).
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b > NumHistBuckets-1 {
		return NumHistBuckets
	}
	return b
}

// hist is one histogram's storage: per-bucket counts plus count and sum,
// all atomics so any worker may observe concurrently.
type hist struct {
	count, sum atomic.Int64
	buckets    [NumHistBuckets]atomic.Int64
}

// Observe records one observation of value v (clamped at 0) into histogram
// h. Nil-safe and allocation-free; a handful of atomic adds when live.
func (s *Sink) Observe(h HistID, v int64) {
	if s == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	hs := &s.hists[h]
	hs.count.Add(1)
	hs.sum.Add(v)
	if b := histBucket(v); b < NumHistBuckets {
		hs.buckets[b].Add(1)
	}
}

// HistSnapshot is one histogram's state at a point in time. Buckets are
// per-bucket (non-cumulative) counts; Count includes observations beyond
// the last finite bound, so Count - sum(Buckets) is the +Inf bucket.
type HistSnapshot struct {
	Count   int64                 `json:"count"`
	Sum     int64                 `json:"sum"`
	Buckets [NumHistBuckets]int64 `json:"buckets"`
}

// Merge returns the element-wise sum of two snapshots (e.g. the same
// histogram sampled from several sinks).
func (a HistSnapshot) Merge(b HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	for i := range out.Buckets {
		out.Buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	return out
}

// Hist reads histogram h (zero value on a nil sink).
func (s *Sink) Hist(h HistID) HistSnapshot {
	if s == nil {
		return HistSnapshot{}
	}
	hs := &s.hists[h]
	out := HistSnapshot{Count: hs.count.Load(), Sum: hs.sum.Load()}
	for i := range out.Buckets {
		out.Buckets[i] = hs.buckets[i].Load()
	}
	return out
}
