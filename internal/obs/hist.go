package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistID names one log-bucketed latency/size histogram.
type HistID uint8

const (
	// HistQueryNS buckets per-query wall time in nanoseconds.
	HistQueryNS HistID = iota
	// HistQuerySteps buckets per-query budget steps consumed.
	HistQuerySteps
	// HistServerBatchSize buckets unique query variables per dispatched
	// server batch.
	HistServerBatchSize
	// HistServerWaitNS buckets admission-to-dispatch queue wait per server
	// request in nanoseconds.
	HistServerWaitNS
	// HistServerLatencyNS buckets admission-to-reply latency per server
	// request in nanoseconds.
	HistServerLatencyNS

	// NumHists is the number of defined histograms.
	NumHists
)

var histNames = [NumHists]string{
	"query_latency_ns", "query_steps",
	"server_batch_size", "server_wait_ns", "server_latency_ns",
}

var histHelp = [NumHists]string{
	"Per-query wall time in nanoseconds.",
	"Per-query budget steps consumed (including shortcut charges).",
	"Unique query variables per dispatched server batch.",
	"Admission-to-dispatch queue wait per server request in nanoseconds.",
	"Admission-to-reply latency per server request in nanoseconds.",
}

// String returns the histogram's snake_case name.
func (h HistID) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "hist_unknown"
}

// Bucket layout. Pure power-of-two buckets give at most one bucket per
// octave, which is far too coarse for warm-snapshot serve latencies: a
// daemon answering most requests between 1µs and 4µs would pile every
// observation into two buckets and report p50 == p99. Buckets therefore
// stay exact powers of two up to 2^histSubOctaveStart, and above that each
// octave (2^k, 2^(k+1)] splits into histSubBuckets equal-width sub-buckets
// (~19% relative resolution at 4 per octave). The top finite bound stays
// 2^histTopPow ns ≈ 4.6 minutes; larger observations still count toward
// Count and Sum (the +Inf bucket at export time).
const (
	histSubOctaveStart = 10 // last pure power-of-two bucket bound: 2^10
	histSubBuckets     = 4  // sub-buckets per octave above that
	histTopPow         = 38 // last finite bound: 2^38
)

// NumHistBuckets is the number of finite histogram buckets: bucket i counts
// observations v with HistBucketBound(i-1) < v <= HistBucketBound(i),
// matching Prometheus `le` semantics. 11 power-of-two buckets (2^0..2^10)
// plus 4 sub-buckets for each of the 28 octaves up to 2^38.
const NumHistBuckets = histSubOctaveStart + 1 + (histTopPow-histSubOctaveStart)*histSubBuckets

// HistBucketBound returns bucket i's inclusive upper bound: 2^i for
// i <= histSubOctaveStart, then histSubBuckets evenly spaced bounds per
// octave ending at 2^histTopPow.
func HistBucketBound(i int) int64 {
	if i <= histSubOctaveStart {
		return 1 << uint(i)
	}
	j := i - histSubOctaveStart - 1
	k := histSubOctaveStart + j/histSubBuckets
	sub := j % histSubBuckets
	// Bounds within (2^k, 2^(k+1)]: 2^k * (5/4, 6/4, 7/4, 8/4).
	return (int64(1) << uint(k)) / histSubBuckets * int64(histSubBuckets+1+sub)
}

// histBucket maps an observation to its bucket index: the smallest i with
// v <= HistBucketBound(i). Values beyond the last finite bound return
// NumHistBuckets (the implicit +Inf bucket).
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // smallest b with v <= 2^b
	if b <= histSubOctaveStart {
		return b
	}
	if b > histTopPow {
		return NumHistBuckets
	}
	k := b - 1                 // v lies in (2^k, 2^(k+1)]
	w := int64(1) << uint(k-2) // sub-bucket width 2^k / histSubBuckets
	sub := (v - 1 - (int64(1) << uint(k))) / w
	return histSubOctaveStart + 1 + (k-histSubOctaveStart)*histSubBuckets + int(sub)
}

// hist is one histogram's storage: per-bucket counts plus count and sum,
// all atomics so any worker may observe concurrently.
type hist struct {
	count, sum atomic.Int64
	buckets    [NumHistBuckets]atomic.Int64
}

// Observe records one observation of value v (clamped at 0) into histogram
// h. Nil-safe and allocation-free; a handful of atomic adds when live.
func (s *Sink) Observe(h HistID, v int64) {
	if s == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	hs := &s.hists[h]
	hs.count.Add(1)
	hs.sum.Add(v)
	if b := histBucket(v); b < NumHistBuckets {
		hs.buckets[b].Add(1)
	}
}

// HistSnapshot is one histogram's state at a point in time. Buckets are
// per-bucket (non-cumulative) counts; Count includes observations beyond
// the last finite bound, so Count - sum(Buckets) is the +Inf bucket.
type HistSnapshot struct {
	Count   int64                 `json:"count"`
	Sum     int64                 `json:"sum"`
	Buckets [NumHistBuckets]int64 `json:"buckets"`
}

// Merge returns the element-wise sum of two snapshots (e.g. the same
// histogram sampled from several sinks).
func (a HistSnapshot) Merge(b HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	for i := range out.Buckets {
		out.Buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution by locating the bucket containing the rank and linearly
// interpolating within it. Observations beyond the last finite bound are
// reported as that bound. Returns 0 on an empty histogram.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i := 0; i < NumHistBuckets; i++ {
		c := h.Buckets[i]
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			var lo int64
			if i > 0 {
				lo = HistBucketBound(i - 1)
			}
			hi := HistBucketBound(i)
			frac := (rank - float64(cum)) / float64(c)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum += c
	}
	return HistBucketBound(NumHistBuckets - 1)
}

// Sub returns the element-wise difference a-b: the observations recorded
// between the moment snapshot b was taken and the moment a was. Negative
// cells (a reset sink, or snapshots taken out of order) clamp to 0 so
// windowed quantiles never see impossible counts.
func (a HistSnapshot) Sub(b HistSnapshot) HistSnapshot {
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	out := HistSnapshot{Count: clamp(a.Count - b.Count), Sum: clamp(a.Sum - b.Sum)}
	for i := range out.Buckets {
		out.Buckets[i] = clamp(a.Buckets[i] - b.Buckets[i])
	}
	return out
}

// Hist reads histogram h (zero value on a nil sink).
func (s *Sink) Hist(h HistID) HistSnapshot {
	if s == nil {
		return HistSnapshot{}
	}
	hs := &s.hists[h]
	out := HistSnapshot{Count: hs.count.Load(), Sum: hs.sum.Load()}
	for i := range out.Buckets {
		out.Buckets[i] = hs.buckets[i].Load()
	}
	return out
}

// LocalHist is a standalone log-bucketed histogram with the same bucket
// layout as the Sink's enumerated histograms, for callers that need labelled
// per-instance series outside the HistID space — the cluster router keeps
// one per shard for its `parcfl_cluster_shard_latency` rollup. Safe for
// concurrent use; the zero value is ready.
type LocalHist struct {
	h hist
}

// Observe records one observation of value v (clamped at 0).
func (l *LocalHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	l.h.count.Add(1)
	l.h.sum.Add(v)
	if b := histBucket(v); b < NumHistBuckets {
		l.h.buckets[b].Add(1)
	}
}

// Snapshot reads the histogram's current state.
func (l *LocalHist) Snapshot() HistSnapshot {
	out := HistSnapshot{Count: l.h.count.Load(), Sum: l.h.sum.Load()}
	for i := range out.Buckets {
		out.Buckets[i] = l.h.buckets[i].Load()
	}
	return out
}

// Exemplars: each histogram bucket may retain the identity of the most
// recent observation that landed in it — the request ID (and its server-side
// sequence number) behind a latency sample — so a p99 bucket on /metrics
// links to a concrete request whose trace lane and log lines can be pulled
// up. Storage is attached lazily by EnableExemplars; while detached, the
// exemplar hooks are a single atomic load and allocate nothing, keeping the
// hot path identical to a sink without the feature.

// Exemplar is one bucket's retained observation identity.
type Exemplar struct {
	// RID is the request ID that produced the observation.
	RID string `json:"rid"`
	// Seq is the server-side request sequence number (keys the "req N"
	// trace lane in the span export; 0 when not applicable).
	Seq int64 `json:"seq,omitempty"`
	// Value is the observed value (same unit as the histogram).
	Value int64 `json:"value"`
	// UnixNano is the wall-clock capture time.
	UnixNano int64 `json:"unix_nano"`
}

// exemplarTable holds one exemplar slot per bucket per histogram, the last
// slot of each row being the +Inf bucket. Slots are atomic pointers:
// concurrent writers race benignly (last write wins — "most recent" is the
// contract) and readers always see a whole Exemplar.
type exemplarTable struct {
	slots [NumHists][NumHistBuckets + 1]atomic.Pointer[Exemplar]
}

// EnableExemplars attaches exemplar storage to the sink's histograms.
// Idempotent; call once at startup. Nil-safe.
func (s *Sink) EnableExemplars() {
	if s == nil || s.exemplars.Load() != nil {
		return
	}
	s.exemplars.CompareAndSwap(nil, &exemplarTable{})
}

// ExemplarsEnabled reports whether exemplar storage is attached.
func (s *Sink) ExemplarsEnabled() bool { return s != nil && s.exemplars.Load() != nil }

// Exemplar records rid (with server sequence seq) as the exemplar of the
// bucket that value v falls in for histogram h. It does not bump the bucket
// counts — pair it with an Observe of the same value, typically at reply
// time when the request ID is in hand. No-op (and allocation-free) when
// exemplar storage is not attached or on a nil sink.
func (s *Sink) Exemplar(h HistID, v int64, rid string, seq int64) {
	if s == nil {
		return
	}
	t := s.exemplars.Load()
	if t == nil || rid == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	t.slots[h][histBucket(v)].Store(&Exemplar{RID: rid, Seq: seq, Value: v, UnixNano: time.Now().UnixNano()})
}

// BucketExemplar is one retained exemplar with its bucket coordinates.
type BucketExemplar struct {
	// Bucket is the bucket index; LE its inclusive upper bound (-1 for the
	// +Inf bucket).
	Bucket int   `json:"bucket"`
	LE     int64 `json:"le"`
	Exemplar
}

// HistExemplars returns histogram h's retained exemplars in bucket order
// (nil when exemplar storage is not attached, or on a nil sink).
func (s *Sink) HistExemplars(h HistID) []BucketExemplar {
	if s == nil {
		return nil
	}
	t := s.exemplars.Load()
	if t == nil {
		return nil
	}
	var out []BucketExemplar
	for i := 0; i <= NumHistBuckets; i++ {
		e := t.slots[h][i].Load()
		if e == nil {
			continue
		}
		le := int64(-1)
		if i < NumHistBuckets {
			le = HistBucketBound(i)
		}
		out = append(out, BucketExemplar{Bucket: i, LE: le, Exemplar: *e})
	}
	return out
}
