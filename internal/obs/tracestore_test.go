package obs

import (
	"fmt"
	"testing"
	"time"
)

// fixedClock is a hand-advanced wall clock for stores without a sink.
type fixedClock struct{ now time.Time }

func (c *fixedClock) Now() time.Time { return c.now }

// TestTraceStoreOutcomeAlwaysRetained: failure-class requests are retained
// unconditionally — no sampling, no threshold, no anomaly window needed.
func TestTraceStoreOutcomeAlwaysRetained(t *testing.T) {
	ts := NewTraceStore(nil, TraceStoreConfig{Capacity: 8, SampleRate: -1})
	for c := int64(1); c <= 3; c++ {
		ts.Offer(ReqTrace{RID: fmt.Sprintf("fail-%d", c), Outcome: c, TotalNS: 1})
	}
	ts.Offer(ReqTrace{RID: "ok-1", Outcome: 0, TotalNS: 1})

	if got := ts.retainedCount(RetainOutcome); got != 3 {
		t.Fatalf("outcome retained = %d, want 3", got)
	}
	snap := ts.Snapshot()
	if snap.Observed != 4 || snap.Dropped != 1 || snap.Retained != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	for c := int64(1); c <= 3; c++ {
		tr, ok := ts.Get(fmt.Sprintf("fail-%d", c))
		if !ok || tr.Policy != "outcome" || tr.Outcome != c {
			t.Fatalf("fail-%d: got %+v ok=%v", c, tr, ok)
		}
		if !isHexID(tr.TraceID, 32) || !isHexID(tr.SpanID, 16) {
			t.Fatalf("fail-%d: ids not minted: %+v", c, tr)
		}
	}
	if _, ok := ts.Get("ok-1"); ok {
		t.Fatal("healthy request retained despite sampling disabled")
	}
}

// TestTraceStoreEvictionOrder: the ring overwrites oldest-first, Search
// returns newest-first, and the evicted counter tracks every overwrite —
// the memory bound holds forever while the newest window survives.
func TestTraceStoreEvictionOrder(t *testing.T) {
	ts := NewTraceStore(nil, TraceStoreConfig{Capacity: 4, SampleRate: -1})
	for i := 0; i < 7; i++ {
		ts.Offer(ReqTrace{RID: fmt.Sprintf("r%d", i), Outcome: 1, TotalNS: int64(i)})
	}
	snap := ts.Snapshot()
	if snap.Retained != 4 || snap.Evicted != 3 || snap.Capacity != 4 {
		t.Fatalf("snapshot %+v", snap)
	}
	got := ts.Search(TraceQuery{Outcome: -1})
	want := []string{"r6", "r5", "r4", "r3"}
	if len(got) != len(want) {
		t.Fatalf("search returned %d traces, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].RID != w {
			t.Fatalf("search[%d] = %s, want %s (newest first)", i, got[i].RID, w)
		}
	}
	if _, ok := ts.Get("r0"); ok {
		t.Fatal("evicted trace still resolvable")
	}
	// Limit and MinTotalNS filters compose with the ring walk.
	if hits := ts.Search(TraceQuery{Outcome: -1, Limit: 2}); len(hits) != 2 || hits[0].RID != "r6" {
		t.Fatalf("limited search: %+v", hits)
	}
	if hits := ts.Search(TraceQuery{Outcome: -1, MinTotalNS: 5}); len(hits) != 2 {
		t.Fatalf("min-latency search returned %d, want 2", len(hits))
	}
}

// TestTraceStoreAnomalyWindow: MarkAnomaly retains everything until the
// window closes, extensions only ever push the close later, and the
// store's clock follows the injected Now.
func TestTraceStoreAnomalyWindow(t *testing.T) {
	clk := &fixedClock{now: time.Unix(1000, 0)}
	ts := NewTraceStore(nil, TraceStoreConfig{Capacity: 8, SampleRate: -1, Now: clk.Now})

	ts.Offer(ReqTrace{RID: "before", Outcome: 0})
	if _, ok := ts.Get("before"); ok {
		t.Fatal("retained before any anomaly")
	}
	if ts.AnomalyActive() {
		t.Fatal("anomaly active before MarkAnomaly")
	}

	ts.MarkAnomaly(10 * time.Second)
	ts.MarkAnomaly(2 * time.Second) // shorter re-mark must not shrink the window
	if !ts.AnomalyActive() {
		t.Fatal("anomaly window not open")
	}
	ts.Offer(ReqTrace{RID: "during", Outcome: 0})
	tr, ok := ts.Get("during")
	if !ok || tr.Policy != "anomaly" {
		t.Fatalf("during window: %+v ok=%v", tr, ok)
	}

	clk.now = clk.now.Add(5 * time.Second) // inside 10s, past the 2s re-mark
	ts.Offer(ReqTrace{RID: "still", Outcome: 0})
	if _, ok := ts.Get("still"); !ok {
		t.Fatal("shorter MarkAnomaly shrank the window")
	}

	clk.now = clk.now.Add(6 * time.Second) // 11s total: window closed
	if ts.AnomalyActive() {
		t.Fatal("anomaly window did not close")
	}
	ts.Offer(ReqTrace{RID: "after", Outcome: 0})
	if _, ok := ts.Get("after"); ok {
		t.Fatal("retained after the window closed")
	}
	if got := ts.retainedCount(RetainAnomaly); got != 2 {
		t.Fatalf("anomaly retained = %d, want 2", got)
	}
}

// TestTraceStoreSamplingDeterminism: with a fixed seed the sampled subset
// is a deterministic function of the offer sequence — two stores configured
// identically retain exactly the same rids, and the rate lands near the
// configured fraction.
func TestTraceStoreSamplingDeterminism(t *testing.T) {
	mk := func() *TraceStore {
		return NewTraceStore(nil, TraceStoreConfig{Capacity: 4096, SampleRate: 0.25, Seed: 7})
	}
	a, b := mk(), mk()
	const n = 2000
	for i := 0; i < n; i++ {
		tr := ReqTrace{RID: fmt.Sprintf("r%d", i), Outcome: 0}
		a.Offer(tr)
		b.Offer(tr)
	}
	as := a.Search(TraceQuery{Outcome: -1})
	bs := b.Search(TraceQuery{Outcome: -1})
	if len(as) != len(bs) {
		t.Fatalf("same seed, different retained counts: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].RID != bs[i].RID || as[i].TraceID != bs[i].TraceID {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, as[i], bs[i])
		}
	}
	got := float64(len(as)) / n
	if got < 0.20 || got > 0.30 {
		t.Fatalf("sample rate %.3f too far from configured 0.25", got)
	}
	c := NewTraceStore(nil, TraceStoreConfig{Capacity: 4096, SampleRate: 0.25, Seed: 8})
	for i := 0; i < n; i++ {
		c.Offer(ReqTrace{RID: fmt.Sprintf("r%d", i), Outcome: 0})
	}
	cs := c.Search(TraceQuery{Outcome: -1})
	same := len(cs) == len(as)
	for i := 0; same && i < len(cs); i++ {
		same = cs[i].RID == as[i].RID
	}
	if same {
		t.Fatal("different seed produced an identical sampled subset")
	}
}

// TestTraceStoreSlowThreshold: once the sink's latency histogram has
// population, the store retains requests at or above the configured
// quantile and reports the live threshold in its snapshot.
func TestTraceStoreSlowThreshold(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 100; i++ {
		s.Observe(HistServerLatencyNS, int64(time.Millisecond))
	}
	ts := NewTraceStore(s, TraceStoreConfig{
		Capacity: 8, SampleRate: -1, SlowQuantile: 0.99, MinCount: 10, RefreshEvery: 2,
	})
	s.AttachTraceStore(ts)

	ts.Offer(ReqTrace{RID: "fast", Outcome: 0, TotalNS: int64(10 * time.Microsecond)})
	ts.Offer(ReqTrace{RID: "slow", Outcome: 0, TotalNS: int64(time.Second)})

	if _, ok := ts.Get("fast"); ok {
		t.Fatal("fast request retained by the slow rule")
	}
	tr, ok := ts.Get("slow")
	if !ok || tr.Policy != "slow" {
		t.Fatalf("slow request: %+v ok=%v", tr, ok)
	}
	snap := ts.Snapshot()
	if snap.ThresholdNS <= 0 || snap.ThresholdNS > int64(10*time.Millisecond) {
		t.Fatalf("threshold %d ns implausible for a 1ms population", snap.ThresholdNS)
	}
	if snap.RetainedByPolicy["slow"] != 1 {
		t.Fatalf("by-policy counters %+v", snap.RetainedByPolicy)
	}
}

// TestTraceStoreNilSafety: every entry point is nil-safe, and Dump on a
// detached daemon yields the empty payload with the schema stamped — the
// /debug/traces contract for daemons started without a store.
func TestTraceStoreNilSafety(t *testing.T) {
	var ts *TraceStore
	ts.Offer(ReqTrace{RID: "x", Outcome: 1})
	ts.MarkAnomaly(time.Second)
	if ts.AnomalyActive() {
		t.Fatal("nil store has an anomaly window")
	}
	if got := ts.Search(TraceQuery{}); got != nil {
		t.Fatalf("nil search = %+v", got)
	}
	if _, ok := ts.Get("x"); ok {
		t.Fatal("nil store resolved a trace")
	}
	p := ts.Dump(TraceQuery{Outcome: -1})
	if p.Schema != TraceStoreSchema || p.Traces == nil || len(p.Traces) != 0 {
		t.Fatalf("nil dump %+v", p)
	}

	var s *Sink
	s.AttachTraceStore(nil)
	if s.TraceStore() != nil {
		t.Fatal("nil sink returned a store")
	}
	live := New(Config{})
	if live.TraceStore() != nil {
		t.Fatal("fresh sink has a store attached")
	}
	live.AttachTraceStore(NewTraceStore(live, TraceStoreConfig{}))
	if live.TraceStore() == nil {
		t.Fatal("attach lost the store")
	}
	live.AttachTraceStore(nil)
	if live.TraceStore() != nil {
		t.Fatal("detach left the store attached")
	}
}

// TestTraceStoreDetachedZeroAlloc pins the hot-path contract: with no store
// attached, discovering that (the guard every reply path runs) allocates
// nothing — tracing off must cost one atomic load.
func TestTraceStoreDetachedZeroAlloc(t *testing.T) {
	s := New(Config{})
	if allocs := testing.AllocsPerRun(1000, func() {
		if ts := s.TraceStore(); ts != nil {
			t.Fatal("store attached")
		}
	}); allocs != 0 {
		t.Fatalf("detached TraceStore() allocates %.1f/op, want 0", allocs)
	}
}
