package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition of a Sink: every counter becomes a
// `parcfl_<name>_total` counter, every gauge a `parcfl_<name>` gauge,
// every timer a `_count`/`_ns_total` counter pair, and every log-bucketed
// histogram a native Prometheus histogram with power-of-two `le` bounds.
// Two formats are served: the classic text exposition v0.0.4 (the one
// every Prometheus scraper and promtool understand), and OpenMetrics 1.0
// for clients that negotiate it — only the latter may carry bucket
// exemplars, because the v0.0.4 parser allows nothing after a sample's
// value except an optional timestamp and would fail the whole scrape on
// an exemplar-bearing line.

var counterHelp = [NumCounters]string{
	"Queries completed or aborted.",
	"Queries that ran out of budget.",
	"Aborts triggered by unfinished jmp entries.",
	"Budget steps actually traversed.",
	"Budget steps satisfied by jmp shortcuts.",
	"Finished jmp shortcuts taken.",
	"Finished jmp store insertions.",
	"Unfinished jmp store insertions.",
	"Result-cache hits.",
	"Result-cache misses.",
	"Work units claimed off the shared cursor.",
	"Refinement-based queries answered.",
	"Refinement passes executed.",
	"Incremental edits that can grow value-flow paths.",
	"Incremental edits that only remove paths.",
	"Incremental re-solve queries.",
	"Jmp store lookups.",
	"Jmp store lookups that found a current-epoch entry.",
	"Query requests admitted by the resident server.",
	"Admitted requests answered by another request's computation.",
	"Requests refused by admission control.",
	"Requests whose deadline expired before their batch was answered.",
	"Coalesced engine batches dispatched by the server.",
	"Queries rejected in shard mode because another replica owns them.",
	"Query requests accepted by the cluster router.",
	"Per-shard subrequests issued by the router.",
	"Per-shard subrequests that failed after retries.",
	"Router replies degraded to partial results.",
}

var gaugeHelp = [NumGauges]string{
	"Worker count of the current/last run.",
	"Scheduled work units of the current run.",
	"Sharing epoch of the attached stores.",
	"Scheduled work units not yet claimed.",
	"Queries currently being solved across all workers.",
	"Current-epoch finished jmp entries.",
	"Current-epoch unfinished jmp entries.",
	"Largest total jmp store size ever seen.",
	"Published result-cache entries.",
	"Direct-relation components touched by the last schedule.",
	"Admitted server requests waiting to be dispatched.",
	"Unique query variables in dispatched server batches.",
	"Shard count of the router's plan.",
	"Shards currently passing the router's health probe.",
	"Shards the last routed request fanned out to.",
}

var timerHelp = [NumTimers]string{
	"sched.Schedule plan construction.",
	"Whole engine.Run batches.",
}

// promExtraFn appends caller-owned series to every exposition of a sink.
type promExtraFn func(io.Writer)

// SetPromExtra registers fn to run at the end of every /metrics exposition
// of this sink, before the OpenMetrics `# EOF` terminator, so components
// with labelled series outside the enumerated counter/gauge space (the
// cluster router's per-shard rollup) can extend the scrape body without the
// enum layer knowing about them. fn must write complete, well-formed
// families (HELP/TYPE then samples). A nil fn detaches. Nil-safe.
func (s *Sink) SetPromExtra(fn func(io.Writer)) {
	if s == nil {
		return
	}
	if fn == nil {
		s.promExtra.Store(nil)
		return
	}
	f := promExtraFn(fn)
	s.promExtra.Store(&f)
}

// WriteProm writes the sink's state in the classic Prometheus text
// exposition format v0.0.4. The body is exemplar-free by construction:
// clients that want exemplars negotiate OpenMetrics (see WriteOpenMetrics).
// A nil sink writes only a marker comment (all series absent), which is
// still a valid scrape body.
func WriteProm(w io.Writer, s *Sink) error {
	return writeExposition(w, s, false)
}

// WriteOpenMetrics writes the same series in the OpenMetrics 1.0 text
// format: counter families are declared without the mandatory `_total`
// sample suffix, histogram bucket lines carry exemplars
// (` # {request_id="...",seq="..."} value ts`) linking a latency bucket to
// the most recent request that landed in it, and the body ends with the
// required `# EOF` terminator.
func WriteOpenMetrics(w io.Writer, s *Sink) error {
	return writeExposition(w, s, true)
}

func writeExposition(w io.Writer, s *Sink, om bool) error {
	bw := &errWriter{w: w}
	if !om {
		// OpenMetrics permits no free-form comments; v0.0.4 keeps the marker
		// so an all-absent scrape body is visibly ours.
		bw.printf("# parcfl metrics\n")
	}
	if s == nil {
		if om {
			bw.printf("# EOF\n")
		}
		return bw.err
	}

	// counterHeader declares the family for a counter sample named with the
	// `_total` suffix; OpenMetrics names the family without it.
	counterHeader := func(sample, help string) {
		fam := sample
		if om {
			fam = strings.TrimSuffix(sample, "_total")
		}
		bw.printf("# HELP %s %s\n", fam, help)
		bw.printf("# TYPE %s counter\n", fam)
	}

	for c := CounterID(0); c < NumCounters; c++ {
		name := "parcfl_" + c.String() + "_total"
		counterHeader(name, counterHelp[c])
		bw.printf("%s %d\n", name, s.Counter(c))
	}
	for g := GaugeID(0); g < NumGauges; g++ {
		name := "parcfl_" + g.String()
		bw.printf("# HELP %s %s\n", name, gaugeHelp[g])
		bw.printf("# TYPE %s gauge\n", name)
		bw.printf("%s %d\n", name, s.Gauge(g))
	}
	{
		name := "parcfl_uptime_seconds"
		bw.printf("# HELP %s Seconds since the sink was created.\n", name)
		bw.printf("# TYPE %s gauge\n", name)
		bw.printf("%s %g\n", name, float64(s.Now())/1e9)
	}
	{
		// Build identity as the conventional info-style gauge: the constant 1
		// with the identity in labels, joinable against every other series.
		bi := ReadBuildIdentity()
		name := "parcfl_build_info"
		bw.printf("# HELP %s Build identity of the running binary (constant 1; labels carry the identity).\n", name)
		bw.printf("# TYPE %s gauge\n", name)
		bw.printf("%s{go_version=%q,revision=%q,dirty=%q} 1\n",
			name, bi.GoVersion, bi.Revision, boolStr(bi.Dirty))
	}
	for t := TimerID(0); t < NumTimers; t++ {
		ts := s.Timer(t)
		base := "parcfl_timer_" + t.String()
		// An OpenMetrics counter sample must end in `_total`, which the
		// `_count` series name cannot; it is declared `unknown` there so the
		// series keeps its identity across both formats.
		countType := "counter"
		if om {
			countType = "unknown"
		}
		bw.printf("# HELP %s_count Timed observations: %s\n", base, timerHelp[t])
		bw.printf("# TYPE %s_count %s\n", base, countType)
		bw.printf("%s_count %d\n", base, ts.Count)
		counterHeader(base+"_ns_total", "Total nanoseconds: "+timerHelp[t])
		bw.printf("%s_ns_total %d\n", base, ts.TotalNS)
	}
	for h := HistID(0); h < NumHists; h++ {
		hs := s.Hist(h)
		name := "parcfl_" + h.String()
		// Bucket exemplars (OpenMetrics syntax: "# {labels} value timestamp"
		// appended to the bucket's sample line) link a latency bucket to the
		// most recent request ID that landed in it — and through its seq to
		// the request's "req N" trace lane in the span export. Only the
		// OpenMetrics body may carry them: v0.0.4 parsers reject the syntax.
		var exByBucket map[int]BucketExemplar
		if exs := s.HistExemplars(h); om && len(exs) > 0 {
			exByBucket = make(map[int]BucketExemplar, len(exs))
			for _, e := range exs {
				exByBucket[e.Bucket] = e
			}
		}
		bw.printf("# HELP %s %s\n", name, histHelp[h])
		bw.printf("# TYPE %s histogram\n", name)
		cum := int64(0)
		for i := 0; i < NumHistBuckets; i++ {
			cum += hs.Buckets[i]
			bw.printf("%s_bucket{le=\"%d\"} %d", name, HistBucketBound(i), cum)
			writeExemplar(bw, exByBucket, i)
			bw.printf("\n")
		}
		bw.printf("%s_bucket{le=\"+Inf\"} %d", name, hs.Count)
		writeExemplar(bw, exByBucket, NumHistBuckets)
		bw.printf("\n")
		bw.printf("%s_sum %d\n", name, hs.Sum)
		bw.printf("%s_count %d\n", name, hs.Count)
	}
	// SLO state, when a tracker is attached: outcome counts by class plus
	// per-window availability/latency attainment and burn rates. Window
	// lengths become a label so both 5m and 1h series scrape side by side.
	if slo := s.SLO(); slo != nil {
		snap := slo.Snapshot()
		counterHeader("parcfl_slo_requests_total", "Requests accounted by the SLO tracker, by outcome class (longest window).")
		if n := len(snap.Windows); n > 0 {
			longest := snap.Windows[n-1]
			for c := SLOClass(0); c < NumSLOClasses; c++ {
				bw.printf("parcfl_slo_requests_total{class=%q} %d\n", c.String(), longest.Classes[c.String()])
			}
		}
		bw.printf("# HELP parcfl_slo_availability_objective Availability objective (fraction).\n")
		bw.printf("# TYPE parcfl_slo_availability_objective gauge\n")
		bw.printf("parcfl_slo_availability_objective %g\n", snap.AvailabilityObjective)
		bw.printf("# HELP parcfl_slo_latency_objective Latency objective (fraction within target).\n")
		bw.printf("# TYPE parcfl_slo_latency_objective gauge\n")
		bw.printf("parcfl_slo_latency_objective %g\n", snap.LatencyObjective)
		bw.printf("# HELP parcfl_slo_latency_target_ns Latency SLI threshold in nanoseconds.\n")
		bw.printf("# TYPE parcfl_slo_latency_target_ns gauge\n")
		bw.printf("parcfl_slo_latency_target_ns %d\n", snap.LatencyTargetNS)
		for _, fam := range []struct {
			name, help string
			val        func(SLOWindow) float64
		}{
			{"parcfl_slo_availability", "Rolling availability SLI (success+overload over total).", func(w SLOWindow) float64 { return w.Availability }},
			{"parcfl_slo_avail_burn_rate", "Availability error-budget burn rate ((1-SLI)/(1-objective)).", func(w SLOWindow) float64 { return w.AvailBurnRate }},
			{"parcfl_slo_latency_attainment", "Rolling fraction of successes within the latency target.", func(w SLOWindow) float64 { return w.LatencyAttainment }},
			{"parcfl_slo_latency_burn_rate", "Latency error-budget burn rate ((1-SLI)/(1-objective)).", func(w SLOWindow) float64 { return w.LatencyBurnRate }},
		} {
			bw.printf("# HELP %s %s\n", fam.name, fam.help)
			bw.printf("# TYPE %s gauge\n", fam.name)
			for _, w := range snap.Windows {
				bw.printf("%s{window=\"%ds\"} %g\n", fam.name, w.WindowSec, fam.val(w))
			}
		}
	}
	// Trace-store retention state, when one is attached: how many request
	// traces were offered / retained (by tail policy) / evicted, the live
	// retained count against its bound, and the current slow threshold —
	// enough to alert on "the interesting traces are being evicted faster
	// than anyone could fetch them".
	if ts := s.TraceStore(); ts != nil {
		snap := ts.Snapshot()
		counterHeader("parcfl_trace_observed_total", "Completed request traces offered to the trace store.")
		bw.printf("parcfl_trace_observed_total %d\n", snap.Observed)
		counterHeader("parcfl_trace_retained_total", "Request traces retained, by tail policy.")
		for p := RetainPolicy(0); p < NumRetainPolicies; p++ {
			bw.printf("parcfl_trace_retained_total{policy=%q} %d\n", p.String(), snap.RetainedByPolicy[p.String()])
		}
		counterHeader("parcfl_trace_dropped_total", "Request traces offered but not retained (sampled out).")
		bw.printf("parcfl_trace_dropped_total %d\n", snap.Dropped)
		counterHeader("parcfl_trace_evicted_total", "Retained traces overwritten by newer ones (ring full).")
		bw.printf("parcfl_trace_evicted_total %d\n", snap.Evicted)
		bw.printf("# HELP parcfl_trace_retained Retained request traces currently held.\n")
		bw.printf("# TYPE parcfl_trace_retained gauge\n")
		bw.printf("parcfl_trace_retained %d\n", snap.Retained)
		bw.printf("# HELP parcfl_trace_capacity Trace-store ring capacity (memory bound, in traces).\n")
		bw.printf("# TYPE parcfl_trace_capacity gauge\n")
		bw.printf("parcfl_trace_capacity %d\n", snap.Capacity)
		bw.printf("# HELP parcfl_trace_slow_threshold_ns Live slow-retention latency threshold (0 = inactive).\n")
		bw.printf("# TYPE parcfl_trace_slow_threshold_ns gauge\n")
		bw.printf("parcfl_trace_slow_threshold_ns %d\n", snap.ThresholdNS)
		bw.printf("# HELP parcfl_trace_anomaly_active Whether the watchdog anomaly retention window is open.\n")
		bw.printf("# TYPE parcfl_trace_anomaly_active gauge\n")
		active := int64(0)
		if snap.AnomalyActive {
			active = 1
		}
		bw.printf("parcfl_trace_anomaly_active %d\n", active)
	}
	// The flight recorder's newest sample, one gauge per series under the
	// parcfl_fr_ prefix (fr = flight recorder) so runtime series never
	// collide with the engine counter/gauge names above.
	if names, vals, ok := s.FlightRecorder().Last(); ok {
		for i, n := range names {
			name := "parcfl_fr_" + n
			bw.printf("# HELP %s Flight-recorder series %s (last sample).\n", name, n)
			bw.printf("# TYPE %s gauge\n", name)
			bw.printf("%s %g\n", name, vals[i])
		}
	}
	// Top-k rows of the attached heat profile, one labelled gauge family
	// per series under the parcfl_heat_ prefix (analysis-semantic step
	// attribution; see internal/autopsy).
	if h := s.Heat(); h != nil {
		samples := h.HeatTop(promHeatTopK)
		var lastSeries string
		for _, smp := range samples {
			name := "parcfl_heat_" + smp.Series
			if smp.Series != lastSeries {
				bw.printf("# HELP %s Heat-profile series %s (top %d).\n", name, smp.Series, promHeatTopK)
				bw.printf("# TYPE %s gauge\n", name)
				lastSeries = smp.Series
			}
			bw.printf("%s{%s=%q} %d\n", name, smp.LabelKey, smp.Label, smp.Value)
		}
	}
	if fn := s.promExtra.Load(); fn != nil {
		(*fn)(bw)
	}
	if om {
		bw.printf("# EOF\n")
	}
	return bw.err
}

// promHeatTopK bounds the heat rows exported per series on /metrics: the
// full profile stays on /debug/heat, the scrape surface stays small.
const promHeatTopK = 10

// writeExemplar appends one bucket's exemplar in OpenMetrics syntax to the
// (unterminated) sample line: ` # {request_id="...",seq="..."} value ts`.
func writeExemplar(bw *errWriter, ex map[int]BucketExemplar, bucket int) {
	e, ok := ex[bucket]
	if !ok {
		return
	}
	bw.printf(" # {request_id=%q,seq=\"%d\"} %d %d.%03d",
		e.RID, e.Seq, e.Value, e.UnixNano/1e9, (e.UnixNano/1e6)%1000)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// errWriter latches the first write error so the exposition loop stays
// uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Write lets an errWriter be handed to extra-series hooks as an io.Writer,
// with the same first-error latching as printf.
func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
