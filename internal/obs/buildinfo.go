package obs

import (
	"os"
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identity: which binary is this, exactly? Every diagnostic artifact
// (bundles, soak reports, bench rows) is only actionable if it can be tied
// back to a specific revision, so the identity is read once from the
// binary's embedded build info and exposed three ways: the parcfl_build_info
// gauge on /metrics (labels carry the identity, value is the conventional
// constant 1), the /debug/statusz JSON, and the build.json artifact inside
// diagnostic bundles.

// BuildIdentity describes the running binary.
type BuildIdentity struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// MainPath is the main module path ("" outside module builds).
	MainPath string `json:"main_path,omitempty"`
	// Revision/VCSTime/Dirty come from the vcs.* build settings stamped by
	// `go build` in a checkout; empty/false when the binary was built
	// without VCS metadata (e.g. `go test` binaries).
	Revision string `json:"vcs_revision,omitempty"`
	VCSTime  string `json:"vcs_time,omitempty"`
	Dirty    bool   `json:"vcs_dirty"`
}

var (
	buildOnce sync.Once
	buildID   BuildIdentity
)

// ReadBuildIdentity returns the binary's build identity, reading the
// embedded build info once and caching it.
func ReadBuildIdentity() BuildIdentity {
	buildOnce.Do(func() {
		buildID.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildID.MainPath = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildID.Revision = s.Value
			case "vcs.time":
				buildID.VCSTime = s.Value
			case "vcs.modified":
				buildID.Dirty = s.Value == "true"
			}
		}
	})
	return buildID
}

// StatusZSchema identifies the /debug/statusz JSON layout.
const StatusZSchema = "parcfl-statusz/v1"

// StatusZ is the /debug/statusz payload: build identity plus the process
// facts an operator checks first when a page fires.
type StatusZ struct {
	Schema       string        `json:"schema"`
	Build        BuildIdentity `json:"build"`
	PID          int           `json:"pid"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	NumCPU       int           `json:"num_cpu"`
	NumGoroutine int           `json:"num_goroutine"`
	// UptimeNS is nanoseconds since the sink was created (0 on a nil sink).
	UptimeNS int64 `json:"uptime_ns"`
}

// Status assembles the statusz view. Nil-safe on the sink (uptime reads 0).
func Status(s *Sink) StatusZ {
	return StatusZ{
		Schema:       StatusZSchema,
		Build:        ReadBuildIdentity(),
		PID:          os.Getpid(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		NumGoroutine: runtime.NumGoroutine(),
		UptimeNS:     s.Now(),
	}
}
