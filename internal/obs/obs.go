// Package obs is the engine's observability layer: allocation-conscious
// atomic counters and timers, a bounded in-memory trace ring of engine
// events, and per-worker timelines, all behind a nil-safe *Sink.
//
// Every method is safe (and free) to call on a nil *Sink: the disabled path
// is a single nil check with no allocations, so hot loops can carry
// unconditional instrumentation calls. Producers (engine workers, the jmp
// store, the result cache, the scheduler) record into the sink; consumers
// read a consistent Snapshot, or watch live through the debug HTTP endpoint
// (see ServeDebug).
//
// The design follows the paper's own evaluation needs: Table I and
// Figs. 6–8 are per-run counters (steps, jumps, early terminations,
// group shapes) and per-worker work distributions; the trace ring adds the
// event-level view (who claimed which unit when, where shortcuts were taken)
// that aggregate counters cannot answer.
package obs

import (
	"sync/atomic"
	"time"
)

// CounterID names one monotonic counter. Counters are cheap enough to bump
// from hot paths (one atomic add each).
type CounterID uint8

const (
	// CtrQueries counts queries completed or aborted.
	CtrQueries CounterID = iota
	// CtrQueriesAborted counts queries that ran out of budget.
	CtrQueriesAborted
	// CtrEarlyTerms counts aborts triggered by unfinished jmp entries.
	CtrEarlyTerms
	// CtrStepsWalked counts budget steps actually traversed.
	CtrStepsWalked
	// CtrStepsSaved counts budget steps satisfied by jmp shortcuts.
	CtrStepsSaved
	// CtrJumpsTaken counts finished jmp shortcuts taken.
	CtrJumpsTaken
	// CtrJmpFinishedIns / CtrJmpUnfinishedIns count jmp store insertions.
	CtrJmpFinishedIns
	CtrJmpUnfinishedIns
	// CtrCacheHits / CtrCacheMisses count result-cache lookups.
	CtrCacheHits
	CtrCacheMisses
	// CtrUnitsClaimed counts work units claimed off the shared cursor.
	CtrUnitsClaimed
	// CtrRefineQueries / CtrRefinePasses count refinement-based queries
	// and the refinement iterations they ran.
	CtrRefineQueries
	CtrRefinePasses
	// CtrIncEditsGrow / CtrIncEditsShrink count incremental graph edits
	// by class (growing edits invalidate caches, shrinking ones do not).
	CtrIncEditsGrow
	CtrIncEditsShrink
	// CtrIncResolves counts incremental re-solve queries.
	CtrIncResolves
	// CtrShareLookups / CtrShareHits count jmp store lookups and the
	// subset that found a current-epoch entry; their ratio is the
	// shortcut hit-rate behind the TauF/TauU thresholds.
	CtrShareLookups
	CtrShareHits
	// CtrServerRequests counts query requests admitted by the resident
	// server (see internal/server).
	CtrServerRequests
	// CtrServerCoalesced counts admitted requests answered by another
	// request's computation (in-flight or same-batch dedup).
	CtrServerCoalesced
	// CtrServerRejected counts requests refused by admission control
	// (bounded queue full or server draining).
	CtrServerRejected
	// CtrServerTimeouts counts requests whose deadline expired before
	// their batch was answered.
	CtrServerTimeouts
	// CtrServerBatches counts coalesced engine.Run batches dispatched.
	CtrServerBatches
	// CtrServerMisdirected counts queries rejected in shard mode because
	// the plan assigns their variable to another replica.
	CtrServerMisdirected
	// CtrClusterRequests counts query requests accepted by the cluster
	// router (see internal/cluster/router).
	CtrClusterRequests
	// CtrClusterFanouts counts per-shard subrequests the router issued.
	CtrClusterFanouts
	// CtrClusterShardErrors counts per-shard subrequests that failed after
	// retries.
	CtrClusterShardErrors
	// CtrClusterPartial counts router replies degraded to partial results.
	CtrClusterPartial

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	"queries", "queries_aborted", "early_terminations",
	"steps_walked", "steps_saved", "jumps_taken",
	"jmp_finished_inserted", "jmp_unfinished_inserted",
	"cache_hits", "cache_misses", "units_claimed",
	"refine_queries", "refine_passes",
	"inc_edits_grow", "inc_edits_shrink", "inc_resolves",
	"share_lookups", "share_hits",
	"server_requests", "server_coalesced", "server_rejected",
	"server_timeouts", "server_batches", "server_misdirected",
	"cluster_requests", "cluster_fanouts", "cluster_shard_errors",
	"cluster_partial",
}

// String returns the counter's snake_case name.
func (c CounterID) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter_unknown"
}

// GaugeID names one last-value gauge.
type GaugeID uint8

const (
	// GaugeWorkers is the worker count of the current/last run.
	GaugeWorkers GaugeID = iota
	// GaugeUnits is the number of scheduled work units of the current run.
	GaugeUnits
	// GaugeEpoch is the sharing epoch of the attached stores.
	GaugeEpoch
	// GaugeWorklistDepth is the number of scheduled work units not yet
	// claimed by any worker (drains from GaugeUnits to 0 over a run).
	GaugeWorklistDepth
	// GaugeInflight is the number of queries currently being solved across
	// all workers (each worker solves at most one at a time).
	GaugeInflight
	// GaugeShareFinished / GaugeShareUnfinished are the jmp store's
	// current-epoch entry counts by kind.
	GaugeShareFinished
	GaugeShareUnfinished
	// GaugeShareHighWater is the largest total jmp store size ever seen.
	GaugeShareHighWater
	// GaugePtcacheEntries is the result cache's published-entry count.
	GaugePtcacheEntries
	// GaugeSchedComponents is the number of direct-relation components the
	// last schedule touched.
	GaugeSchedComponents
	// GaugeServerQueueDepth is the number of admitted server requests
	// waiting to be dispatched in a batch.
	GaugeServerQueueDepth
	// GaugeServerInflight is the number of unique query variables currently
	// being computed by dispatched server batches.
	GaugeServerInflight
	// GaugeClusterShards is the shard count of the router's plan.
	GaugeClusterShards
	// GaugeClusterShardsUp is the number of shards currently passing the
	// router's health probe.
	GaugeClusterShardsUp
	// GaugeClusterFanoutWidth is the number of shards the last routed
	// request fanned out to.
	GaugeClusterFanoutWidth

	// NumGauges is the number of defined gauges.
	NumGauges
)

var gaugeNames = [NumGauges]string{
	"workers", "units", "epoch",
	"worklist_depth", "inflight_queries",
	"share_finished_size", "share_unfinished_size", "share_high_water",
	"ptcache_entries", "sched_components",
	"server_queue_depth", "server_inflight",
	"cluster_shards", "cluster_shards_up", "cluster_fanout_width",
}

// String returns the gauge's snake_case name.
func (g GaugeID) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "gauge_unknown"
}

// TimerID names one aggregate timer (count + total duration).
type TimerID uint8

const (
	// TmSchedule times sched.Schedule plan construction.
	TmSchedule TimerID = iota
	// TmRun times whole engine.Run batches.
	TmRun

	// NumTimers is the number of defined timers.
	NumTimers
)

var timerNames = [NumTimers]string{"schedule", "run"}

// String returns the timer's snake_case name.
func (t TimerID) String() string {
	if int(t) < len(timerNames) {
		return timerNames[t]
	}
	return "timer_unknown"
}

// TimerStats is one timer's aggregate.
type TimerStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// WorkerStats is one worker goroutine's timeline entry. Entries are padded
// to a full cache line so adjacent workers never false-share; workers write
// only their own entry, once at start and once at exit.
type WorkerStats struct {
	StartNS int64 `json:"start_ns"` // ns since sink creation
	StopNS  int64 `json:"stop_ns"`
	Units   int64 `json:"units"`   // work units claimed
	Queries int64 `json:"queries"` // queries processed
	Steps   int64 `json:"steps"`   // budget steps consumed (incl. shortcut charges)
	Walked  int64 `json:"walked"`  // steps actually traversed

	_ [2]int64 // pad to 64 bytes
}

// paddedCounter keeps each hot counter on its own cache line.
type paddedCounter struct {
	v atomic.Int64
	_ [7]int64
}

// Config sizes a Sink.
type Config struct {
	// Workers is the number of per-worker timeline slots (0 = none).
	Workers int
	// TraceCap is the trace ring capacity in events; 0 disables tracing
	// (counters, gauges, timers and timelines still work).
	TraceCap int
	// SpanCap, when positive, attaches span buffers at creation: one
	// shared track plus one per worker, each bounded at SpanCap spans
	// (see EnableSpans). 0 leaves span tracing off.
	SpanCap int
}

// Sink collects observations. The zero value is not usable; create with
// New. A nil *Sink is the disabled sink: every method no-ops.
type Sink struct {
	start      time.Time
	counters   [NumCounters]paddedCounter
	gauges     [NumGauges]atomic.Int64
	timers     [NumTimers]struct{ n, ns atomic.Int64 }
	hists      [NumHists]hist
	workers    []WorkerStats
	ring       *ring
	spans      atomic.Pointer[spanRegion]
	recorder   atomic.Pointer[Recorder]
	heat       atomic.Pointer[heatBox]
	slo        atomic.Pointer[SLO]
	exemplars  atomic.Pointer[exemplarTable]
	tracestore atomic.Pointer[traceStoreBox]
	promExtra  atomic.Pointer[promExtraFn]
}

// New creates a sink.
func New(cfg Config) *Sink {
	s := &Sink{start: time.Now()}
	if cfg.Workers > 0 {
		s.workers = make([]WorkerStats, cfg.Workers)
	}
	if cfg.TraceCap > 0 {
		s.ring = newRing(cfg.TraceCap)
	}
	if cfg.SpanCap > 0 {
		s.spans.Store(newSpanRegion(cfg.Workers, cfg.SpanCap))
	}
	return s
}

// Enabled reports whether the sink records anything (false for nil).
func (s *Sink) Enabled() bool { return s != nil }

// Tracing reports whether the trace ring is active. Producers may use it to
// skip building event payloads when no ring will record them.
func (s *Sink) Tracing() bool { return s != nil && s.ring != nil }

// sinceNS returns nanoseconds since sink creation.
func (s *Sink) sinceNS() int64 { return int64(time.Since(s.start)) }

// Now returns the sink-relative timestamp in ns (0 on a nil sink).
func (s *Sink) Now() int64 {
	if s == nil {
		return 0
	}
	return s.sinceNS()
}

// Add bumps counter c by n.
func (s *Sink) Add(c CounterID, n int64) {
	if s == nil {
		return
	}
	s.counters[c].v.Add(n)
}

// Counter reads counter c.
func (s *Sink) Counter(c CounterID) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c].v.Load()
}

// SetGauge stores the latest value of gauge g.
func (s *Sink) SetGauge(g GaugeID, v int64) {
	if s == nil {
		return
	}
	s.gauges[g].Store(v)
}

// AddGauge adjusts gauge g by delta atomically (for gauges that track a
// level, like in-flight queries, rather than a last-written value).
func (s *Sink) AddGauge(g GaugeID, delta int64) {
	if s == nil {
		return
	}
	s.gauges[g].Add(delta)
}

// Gauge reads gauge g.
func (s *Sink) Gauge(g GaugeID) int64 {
	if s == nil {
		return 0
	}
	return s.gauges[g].Load()
}

// AttachRecorder attaches r as the sink's flight recorder, replacing any
// previous one. Consumers (the debug endpoint, the Prometheus exposition,
// the trace-event export) discover it through FlightRecorder.
func (s *Sink) AttachRecorder(r *Recorder) {
	if s == nil {
		return
	}
	s.recorder.Store(r)
}

// FlightRecorder returns the attached flight recorder (nil when none is
// attached, or on a nil sink).
func (s *Sink) FlightRecorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.recorder.Load()
}

// Time records one observation of duration d under timer t.
func (s *Sink) Time(t TimerID, d time.Duration) {
	if s == nil {
		return
	}
	s.timers[t].n.Add(1)
	s.timers[t].ns.Add(int64(d))
}

// Timer reads timer t's aggregate.
func (s *Sink) Timer(t TimerID) TimerStats {
	if s == nil {
		return TimerStats{}
	}
	return TimerStats{Count: s.timers[t].n.Load(), TotalNS: s.timers[t].ns.Load()}
}

// Trace appends an event to the trace ring (no-op when tracing is off).
// worker is the producing worker id, or NoWorker when not attributable.
func (s *Sink) Trace(kind EventKind, worker int32, a, b int64) {
	if s == nil || s.ring == nil {
		return
	}
	s.ring.put(Event{Kind: kind, Worker: worker, T: s.sinceNS(), A: a, B: b})
}

// WorkerStarted stamps worker w's timeline start and traces EvWorkerStart.
func (s *Sink) WorkerStarted(w int) {
	if s == nil {
		return
	}
	if w >= 0 && w < len(s.workers) {
		s.workers[w].StartNS = s.sinceNS()
	}
	s.Trace(EvWorkerStart, int32(w), 0, 0)
}

// WorkerStopped stores worker w's accumulated stats (a single write at
// worker exit — producers accumulate locally, avoiding cross-worker cache
// traffic during the run) and traces EvWorkerStop. With span tracing on,
// the worker's whole run becomes an SpWorker span on its track.
func (s *Sink) WorkerStopped(w int, st WorkerStats) {
	if s == nil {
		return
	}
	if w >= 0 && w < len(s.workers) {
		start := s.workers[w].StartNS
		s.workers[w] = st
		s.workers[w].StartNS = start
		s.workers[w].StopNS = s.sinceNS()
		s.Span(SpWorker, int32(w), start, st.Units, st.Queries, st.Walked)
	}
	s.Trace(EvWorkerStop, int32(w), st.Queries, st.Walked)
}

// Workers returns a copy of the per-worker timelines.
func (s *Sink) Workers() []WorkerStats {
	if s == nil || len(s.workers) == 0 {
		return nil
	}
	out := make([]WorkerStats, len(s.workers))
	copy(out, s.workers)
	return out
}

// Snapshot is a consistent-enough copy of everything the sink holds
// (counters are read one by one; exactness across counters is not needed
// for reporting).
type Snapshot struct {
	UptimeNS     int64                   `json:"uptime_ns"`
	Counters     map[string]int64        `json:"counters"`
	Gauges       map[string]int64        `json:"gauges"`
	Timers       map[string]TimerStats   `json:"timers"`
	Hists        map[string]HistSnapshot `json:"hists,omitempty"`
	Workers      []WorkerStats           `json:"workers,omitempty"`
	Trace        []Event                 `json:"trace,omitempty"`
	TraceDropped uint64                  `json:"trace_dropped"`
}

// Snapshot captures the sink's current state (zero value on nil).
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		UptimeNS: s.sinceNS(),
		Counters: make(map[string]int64, NumCounters),
		Gauges:   make(map[string]int64, NumGauges),
		Timers:   make(map[string]TimerStats, NumTimers),
		Workers:  s.Workers(),
	}
	for c := CounterID(0); c < NumCounters; c++ {
		snap.Counters[c.String()] = s.Counter(c)
	}
	for g := GaugeID(0); g < NumGauges; g++ {
		snap.Gauges[g.String()] = s.Gauge(g)
	}
	for t := TimerID(0); t < NumTimers; t++ {
		snap.Timers[t.String()] = s.Timer(t)
	}
	for h := HistID(0); h < NumHists; h++ {
		if hs := s.Hist(h); hs.Count > 0 {
			if snap.Hists == nil {
				snap.Hists = make(map[string]HistSnapshot, NumHists)
			}
			snap.Hists[h.String()] = hs
		}
	}
	if s.ring != nil {
		snap.Trace, snap.TraceDropped = s.ring.snapshot()
	}
	return snap
}
