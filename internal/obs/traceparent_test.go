package obs

import (
	"strings"
	"testing"
)

// TestMintParseRoundTrip: minted traceparents are valid, parse back to the
// same identity, and successive mints never collide.
func TestMintParseRoundTrip(t *testing.T) {
	a := MintTraceParent()
	if !a.Valid() {
		t.Fatalf("minted traceparent invalid: %+v", a)
	}
	if a.Flags != 0x01 {
		t.Fatalf("minted flags = %#x, want sampled (0x01)", a.Flags)
	}
	got, ok := ParseTraceParent(a.String())
	if !ok || got != a {
		t.Fatalf("round trip %q -> %+v ok=%v, want %+v", a.String(), got, ok, a)
	}
	if b := MintTraceParent(); b.TraceID == a.TraceID || b.SpanID == a.SpanID {
		t.Fatalf("two mints collided: %+v vs %+v", a, b)
	}
	if sid := MintSpanID(); len(sid) != 16 || !isHexID(sid, 16) {
		t.Fatalf("MintSpanID = %q, want 16 lowercase hex", sid)
	}
}

// TestParseTraceParent pins the accept/reject behaviour against the W3C
// grammar: well-formed version-00 values (and well-formed unknown versions)
// parse; the invalid version ff, all-zero ids, wrong sizes, uppercase hex
// and misplaced dashes are rejected — the caller mints fresh ids instead of
// propagating garbage.
func TestParseTraceParent(t *testing.T) {
	const (
		tid = "4bf92f3577b34da6a3ce929d0e0e4736"
		sid = "00f067aa0ba902b7"
	)
	valid := "00-" + tid + "-" + sid + "-01"
	cases := []struct {
		in     string
		ok     bool
		flags  byte
		reason string
	}{
		{valid, true, 0x01, "canonical version 00"},
		{"00-" + tid + "-" + sid + "-00", true, 0x00, "unsampled"},
		{"cc-" + tid + "-" + sid + "-09-extra", true, 0x09, "future version with suffix"},
		{"ff-" + tid + "-" + sid + "-01", false, 0, "version ff is invalid"},
		{"00-" + tid + "-" + sid + "-01-extra", false, 0, "version 00 forbids a suffix"},
		{"cc-" + tid + "-" + sid + "-01x", false, 0, "suffix must start with a dash"},
		{"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", false, 0, "all-zero trace id"},
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false, 0, "all-zero span id"},
		{"00-" + strings.ToUpper(tid) + "-" + sid + "-01", false, 0, "uppercase hex"},
		{"00-" + tid + "-" + sid + "-zz", false, 0, "non-hex flags"},
		{"00-" + tid[:31] + "g-" + sid + "-01", false, 0, "non-hex trace id"},
		{"00_" + tid + "-" + sid + "-01", false, 0, "missing dash"},
		{valid[:54], false, 0, "truncated"},
		{"", false, 0, "empty"},
	}
	for _, c := range cases {
		tp, ok := ParseTraceParent(c.in)
		if ok != c.ok {
			t.Errorf("%s: ParseTraceParent(%q) ok=%v, want %v", c.reason, c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if tp.TraceID != tid || tp.SpanID != sid || tp.Flags != c.flags {
			t.Errorf("%s: parsed %+v", c.reason, tp)
		}
	}
}
