package obs

import (
	"sync"
	"time"
)

// SLOClass classifies one served request's outcome for SLO accounting.
//
// The availability SLI counts ClassSuccess and ClassOverload as "good":
// an overload rejection is the server protecting itself as designed, and
// counting it against availability would make load shedding look like an
// outage. Deadline misses and internal errors are "bad". The latency SLI
// is computed over successful requests only.
type SLOClass uint8

const (
	// ClassSuccess: the request got its answer.
	ClassSuccess SLOClass = iota
	// ClassOverload: rejected by admission control (ErrOverloaded / 429).
	ClassOverload
	// ClassDeadline: the request's deadline expired before its answer.
	ClassDeadline
	// ClassError: any other failure (bad input, marshal error, solver bug).
	ClassError

	// NumSLOClasses is the number of defined outcome classes.
	NumSLOClasses
)

var sloClassNames = [NumSLOClasses]string{"success", "overload", "deadline", "error"}

// String returns the class's lowercase name.
func (c SLOClass) String() string {
	if int(c) < len(sloClassNames) {
		return sloClassNames[c]
	}
	return "class_unknown"
}

// SLOConfig configures an SLO tracker.
type SLOConfig struct {
	// AvailabilityObjective is the target fraction of non-bad requests,
	// e.g. 0.999. Defaults to 0.999; clamped to [0, 0.9999999].
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of successful requests
	// answered within LatencyTargetNS, e.g. 0.99. Defaults to 0.99.
	LatencyObjective float64
	// LatencyTargetNS is the latency threshold for the latency SLI.
	// Defaults to 50ms.
	LatencyTargetNS int64
	// Windows are the rolling windows to report, longest last. Defaults
	// to {5m, 1h}. Each must be a positive whole number of seconds.
	Windows []time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

// sloBucket accumulates one wall-clock second of outcomes.
type sloBucket struct {
	unix    int64 // second this bucket covers; 0 = never used
	classes [NumSLOClasses]int64
	slow    int64 // successes above LatencyTargetNS
	sumNS   int64 // latency sum over successes
}

// SLO tracks request outcomes against availability and latency objectives
// over rolling windows, with burn-rate computation. It keeps one bucket per
// second in a ring sized to the longest window; Record is a mutex-guarded
// handful of adds, cheap relative to the HTTP request it accounts for.
// All methods are nil-safe.
type SLO struct {
	cfg SLOConfig

	mu   sync.Mutex
	ring []sloBucket
}

// NewSLO builds an SLO tracker, applying config defaults.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.AvailabilityObjective <= 0 {
		cfg.AvailabilityObjective = 0.999
	}
	if cfg.AvailabilityObjective > 0.9999999 {
		cfg.AvailabilityObjective = 0.9999999
	}
	if cfg.LatencyObjective <= 0 {
		cfg.LatencyObjective = 0.99
	}
	if cfg.LatencyObjective > 0.9999999 {
		cfg.LatencyObjective = 0.9999999
	}
	if cfg.LatencyTargetNS <= 0 {
		cfg.LatencyTargetNS = 50 * int64(time.Millisecond)
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	maxSec := int64(1)
	for _, w := range cfg.Windows {
		if s := int64(w / time.Second); s > maxSec {
			maxSec = s
		}
	}
	return &SLO{cfg: cfg, ring: make([]sloBucket, maxSec)}
}

// Record accounts one request outcome. latencyNS is the request's
// admission-to-reply latency; it feeds the latency SLI only for
// ClassSuccess. Nil-safe.
func (s *SLO) Record(class SLOClass, latencyNS int64) {
	if s == nil || class >= NumSLOClasses {
		return
	}
	sec := s.cfg.now().Unix()
	s.mu.Lock()
	b := &s.ring[sec%int64(len(s.ring))]
	if b.unix != sec {
		*b = sloBucket{unix: sec}
	}
	b.classes[class]++
	if class == ClassSuccess {
		b.sumNS += latencyNS
		if latencyNS > s.cfg.LatencyTargetNS {
			b.slow++
		}
	}
	s.mu.Unlock()
}

// SLOWindow is one rolling window's state in an SLOSnapshot.
type SLOWindow struct {
	WindowSec int64            `json:"window_sec"`
	Total     int64            `json:"total"`
	Classes   map[string]int64 `json:"classes"`

	// Availability is good/total over the window (1 when empty):
	// good = success + overload (shedding is not an outage).
	Availability float64 `json:"availability"`
	// AvailBurnRate is (1-Availability)/(1-objective): 1.0 burns the error
	// budget exactly at the sustainable rate, >1 exhausts it early.
	AvailBurnRate float64 `json:"avail_burn_rate"`

	// LatencyAttainment is the fraction of successes within the latency
	// target (1 when there were no successes).
	LatencyAttainment float64 `json:"latency_attainment"`
	// LatencyBurnRate is (1-LatencyAttainment)/(1-objective).
	LatencyBurnRate float64 `json:"latency_burn_rate"`
	// MeanLatencyNS is the mean success latency over the window.
	MeanLatencyNS int64 `json:"mean_latency_ns"`
}

// SLOSnapshot is the tracker's state at a point in time.
type SLOSnapshot struct {
	Schema                string      `json:"schema"`
	AvailabilityObjective float64     `json:"availability_objective"`
	LatencyObjective      float64     `json:"latency_objective"`
	LatencyTargetNS       int64       `json:"latency_target_ns"`
	Windows               []SLOWindow `json:"windows"`
}

// SLOSchema identifies the /debug/slo JSON layout.
const SLOSchema = "parcfl-slo/v1"

// Snapshot summarises every configured window. Nil-safe (zero value).
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{Schema: SLOSchema}
	}
	out := SLOSnapshot{
		Schema:                SLOSchema,
		AvailabilityObjective: s.cfg.AvailabilityObjective,
		LatencyObjective:      s.cfg.LatencyObjective,
		LatencyTargetNS:       s.cfg.LatencyTargetNS,
	}
	now := s.cfg.now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, wd := range s.cfg.Windows {
		sec := int64(wd / time.Second)
		w := SLOWindow{WindowSec: sec, Classes: make(map[string]int64, NumSLOClasses)}
		var classes [NumSLOClasses]int64
		var slow, sumNS int64
		// Sum the ring buckets stamped inside [now-sec+1, now]; stale slots
		// (overwritten or never touched) identify themselves by unix stamp.
		lo := now - sec + 1
		for i := range s.ring {
			b := &s.ring[i]
			if b.unix < lo || b.unix > now {
				continue
			}
			for c := range classes {
				classes[c] += b.classes[c]
			}
			slow += b.slow
			sumNS += b.sumNS
		}
		for c, n := range classes {
			w.Classes[SLOClass(c).String()] = n
			w.Total += n
		}
		good := classes[ClassSuccess] + classes[ClassOverload]
		w.Availability = 1
		if w.Total > 0 {
			w.Availability = float64(good) / float64(w.Total)
		}
		w.AvailBurnRate = (1 - w.Availability) / (1 - s.cfg.AvailabilityObjective)
		succ := classes[ClassSuccess]
		w.LatencyAttainment = 1
		if succ > 0 {
			w.LatencyAttainment = float64(succ-slow) / float64(succ)
			w.MeanLatencyNS = sumNS / succ
		}
		w.LatencyBurnRate = (1 - w.LatencyAttainment) / (1 - s.cfg.LatencyObjective)
		out.Windows = append(out.Windows, w)
	}
	return out
}

// AttachSLO attaches an SLO tracker to the sink; Record calls via SLO()
// feed it. Attach once at startup, before serving. Nil-safe.
func (s *Sink) AttachSLO(t *SLO) {
	if s == nil {
		return
	}
	s.slo.Store(t)
}

// SLO returns the attached tracker, or nil (whose methods no-op). Nil-safe.
func (s *Sink) SLO() *SLO {
	if s == nil {
		return nil
	}
	return s.slo.Load()
}
