package andersen

import (
	"sort"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
)

// TestCallFreeEquivalence: on call-free programs, context-sensitivity is
// vacuous, and field-sensitive CFL-reachability computes exactly the
// inclusion-based (Andersen) solution. Since the two implementations share
// no code beyond the PAG, this is a strong mutual completeness oracle —
// Andersen missing a fact or the CFL solver missing a fixpoint iteration
// both fail it.
func TestCallFreeEquivalence(t *testing.T) {
	lim := randprog.DefaultLimits()
	lim.NoCalls = true
	for seed := int64(1000); seed < 1080; seed++ {
		p := randprog.Generate(seed, lim)
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		and := Analyze(lo.Graph)
		dem := cfl.New(lo.Graph, cfl.Config{})
		for _, v := range lo.Graph.Variables() {
			want := and.PointsTo(v)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			r := dem.PointsTo(v, pag.EmptyContext)
			if r.Aborted {
				t.Fatalf("seed %d: aborted", seed)
			}
			got := r.Objects()
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("seed %d: %s: CFL %v vs Andersen %v", seed, lo.Graph.Node(v).Name, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: %s: CFL %v vs Andersen %v", seed, lo.Graph.Node(v).Name, got, want)
				}
			}
		}
	}
}
