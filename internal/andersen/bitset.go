package andersen

import "math/bits"

// bitset is a growable dense bitset over object indexes.
type bitset struct {
	words []uint64
}

func (b *bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// set sets bit i, reporting whether it was previously clear.
func (b *bitset) set(i int) bool {
	w := i >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	mask := uint64(1) << uint(i&63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	return true
}

// has reports whether bit i is set.
func (b *bitset) has(i int) bool {
	w := i >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(uint64(1)<<uint(i&63)) != 0
}

// orChanged ors o into b, reporting whether b grew.
func (b *bitset) orChanged(o bitset) bool {
	changed := false
	for len(b.words) < len(o.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range o.words {
		if nw := b.words[i] | w; nw != b.words[i] {
			b.words[i] = nw
			changed = true
		}
	}
	return changed
}

// intersects reports whether b and o share a set bit.
func (b *bitset) intersects(o bitset) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// count returns the number of set bits.
func (b *bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f with each set bit index, ascending.
func (b *bitset) forEach(f func(int)) {
	for wi, w := range b.words {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi<<6 + i)
			w &^= 1 << uint(i)
		}
	}
}
