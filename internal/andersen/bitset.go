package andersen

import "parcfl/internal/bitset"

// Bitset is the dense points-to set representation of the Andersen solver;
// the implementation lives in internal/bitset, shared with the kernel
// traversal mode.
type Bitset = bitset.Bitset

// BitsetFromWords re-exports bitset.BitsetFromWords.
func BitsetFromWords(words []uint64) Bitset { return bitset.FromWords(words) }
