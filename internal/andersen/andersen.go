// Package andersen implements Andersen's whole-program, inclusion-based
// pointer analysis over a PAG: field-sensitive, context- and flow-
// insensitive. The paper uses Andersen's analysis as the canonical
// whole-program contrast to demand-driven CFL-reachability (Section I and
// Table II compare against its parallel implementations); this package
// provides it both as that baseline and as a soundness oracle for tests —
// the context-insensitive Andersen points-to set of a variable is always a
// superset of the CFL solver's (objects-projected) answer.
package andersen

import (
	"parcfl/internal/pag"
)

// Result holds the computed whole-program points-to sets.
type Result struct {
	g       *pag.Graph
	objs    []pag.NodeID // dense object numbering
	pts     []Bitset     // per solver node
	numVars int
}

// PointsTo returns the allocation sites variable v may point to, in dense
// object order.
func (r *Result) PointsTo(v pag.NodeID) []pag.NodeID {
	if int(v) >= r.numVars {
		return nil
	}
	var out []pag.NodeID
	r.pts[v].ForEach(func(oi int) {
		out = append(out, r.objs[oi])
	})
	return out
}

// PointsToSet returns v's points-to set as a membership map.
func (r *Result) PointsToSet(v pag.NodeID) map[pag.NodeID]bool {
	m := make(map[pag.NodeID]bool)
	for _, o := range r.PointsTo(v) {
		m[o] = true
	}
	return m
}

// Alias reports whether two variables' points-to sets intersect.
func (r *Result) Alias(a, b pag.NodeID) bool {
	if int(a) >= r.numVars || int(b) >= r.numVars {
		return false
	}
	return r.pts[a].Intersects(r.pts[b])
}

// NumObjects returns the number of allocation sites.
func (r *Result) NumObjects() int { return len(r.objs) }

type fieldKey struct {
	obj   int // dense object index
	field pag.FieldID
}

type access struct {
	field pag.FieldID
	other int // dst for loads, src for stores (solver node)
}

type analyzer struct {
	g    *pag.Graph
	objs []pag.NodeID
	oidx map[pag.NodeID]int

	succ   [][]int32 // inclusion (copy) edges
	pts    []Bitset
	loads  [][]access // per node: loads with this base
	stores [][]access // per node: stores with this base

	fieldNode map[fieldKey]int
	inW       []bool
	w         []int
}

// Analyze runs the analysis to fixpoint over a frozen graph.
func Analyze(g *pag.Graph) *Result {
	if !g.Frozen() {
		panic("andersen: unfrozen graph")
	}
	n := g.NumNodes()
	a := &analyzer{
		g:         g,
		oidx:      make(map[pag.NodeID]int),
		succ:      make([][]int32, n),
		pts:       make([]Bitset, n),
		loads:     make([][]access, n),
		stores:    make([][]access, n),
		fieldNode: make(map[fieldKey]int),
		inW:       make([]bool, n),
	}
	for id := 0; id < n; id++ {
		if g.Node(pag.NodeID(id)).Kind == pag.KindObject {
			a.oidx[pag.NodeID(id)] = len(a.objs)
			a.objs = append(a.objs, pag.NodeID(id))
		}
	}

	// Seed constraints from the PAG. All four assignment flavours (local,
	// global, param, ret) are inclusion edges; loads and stores become
	// deferred constraints resolved as base points-to sets grow.
	for id := 0; id < n; id++ {
		dst := pag.NodeID(id)
		for _, he := range g.In(dst) {
			switch he.Kind {
			case pag.EdgeNew:
				oi := a.oidx[he.Other]
				if a.pts[id].Set(oi) {
					a.push(id)
				}
			case pag.EdgeAssignLocal, pag.EdgeAssignGlobal, pag.EdgeParam, pag.EdgeRet:
				a.succ[he.Other] = append(a.succ[he.Other], int32(id))
			case pag.EdgeLoad:
				// dst = base.f, base = he.Other.
				a.loads[he.Other] = append(a.loads[he.Other], access{field: pag.FieldID(he.Label), other: id})
			case pag.EdgeStore:
				// dst.f = src: base is dst, value is he.Other.
				a.stores[id] = append(a.stores[id], access{field: pag.FieldID(he.Label), other: int(he.Other)})
			}
		}
	}
	// Ensure seeded nodes propagate even to already-added successors.
	for id := 0; id < n; id++ {
		if !a.pts[id].Empty() {
			a.push(id)
		}
	}

	a.solve()

	return &Result{g: g, objs: a.objs, pts: a.pts, numVars: n}
}

func (a *analyzer) push(n int) {
	if n < len(a.inW) && a.inW[n] {
		return
	}
	for n >= len(a.inW) {
		a.inW = append(a.inW, false)
	}
	a.inW[n] = true
	a.w = append(a.w, n)
}

// node returns the solver node for (object, field), creating it on first
// use. Field nodes are appended after the PAG's own nodes.
func (a *analyzer) node(oi int, f pag.FieldID) int {
	k := fieldKey{obj: oi, field: f}
	if id, ok := a.fieldNode[k]; ok {
		return id
	}
	id := len(a.succ)
	a.fieldNode[k] = id
	a.succ = append(a.succ, nil)
	a.pts = append(a.pts, Bitset{})
	a.loads = append(a.loads, nil)
	a.stores = append(a.stores, nil)
	a.inW = append(a.inW, false)
	return id
}

// addEdge inserts the inclusion edge src -> dst, immediately propagating
// src's current set.
func (a *analyzer) addEdge(src, dst int) {
	for _, s := range a.succ[src] {
		if int(s) == dst {
			return
		}
	}
	a.succ[src] = append(a.succ[src], int32(dst))
	if a.pts[dst].OrChanged(a.pts[src]) {
		a.push(dst)
	}
}

func (a *analyzer) solve() {
	for len(a.w) > 0 {
		n := a.w[len(a.w)-1]
		a.w = a.w[:len(a.w)-1]
		a.inW[n] = false

		// Resolve deferred heap constraints against the current set.
		if n < len(a.loads) {
			for _, ld := range a.loads[n] {
				a.pts[n].ForEach(func(oi int) {
					a.addEdge(a.node(oi, ld.field), ld.other)
				})
			}
			for _, st := range a.stores[n] {
				a.pts[n].ForEach(func(oi int) {
					a.addEdge(st.other, a.node(oi, st.field))
				})
			}
		}
		// Propagate along inclusion edges.
		for _, s := range a.succ[n] {
			if a.pts[s].OrChanged(a.pts[n]) {
				a.push(int(s))
			}
		}
	}
}
