package andersen

import (
	"sort"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

func TestBitset(t *testing.T) {
	var b Bitset
	if !b.Empty() {
		t.Fatal("fresh bitset not empty")
	}
	if !b.Set(3) || b.Set(3) {
		t.Fatal("set(3) semantics wrong")
	}
	if !b.Set(200) {
		t.Fatal("set(200) failed")
	}
	if !b.Has(3) || !b.Has(200) || b.Has(4) || b.Has(1000) {
		t.Fatal("has wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("count = %d", b.Count())
	}
	var c Bitset
	c.Set(64)
	if !c.OrChanged(b) {
		t.Fatal("orChanged should report growth")
	}
	if c.OrChanged(b) {
		t.Fatal("second or should be a no-op")
	}
	if !c.Intersects(b) {
		t.Fatal("intersects false negative")
	}
	var d Bitset
	d.Set(65)
	if d.Intersects(b) {
		t.Fatal("intersects false positive")
	}
	var got []int
	c.ForEach(func(i int) { got = append(got, i) })
	want := []int{3, 64, 200}
	if len(got) != len(want) {
		t.Fatalf("forEach = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach = %v, want %v", got, want)
		}
	}
}

func sortedIDs(ns []pag.NodeID) []pag.NodeID {
	out := append([]pag.NodeID(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestFig2Andersen checks the whole-program analysis on the Vector example.
// Crucially, context-insensitive analysis CONFLATES the two vectors: s1 and
// s2 both appear to point to o16 and o20 — the precision gap that motivates
// the CFL-reachability formulation.
func TestFig2Andersen(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(f.Lowered.Graph)

	check := func(name string, v pag.NodeID, want ...pag.NodeID) {
		t.Helper()
		got := sortedIDs(r.PointsTo(v))
		w := sortedIDs(want)
		if len(got) != len(w) {
			t.Fatalf("%s: pts = %v, want %v", name, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s: pts = %v, want %v", name, got, w)
			}
		}
	}
	check("v1", f.V1, f.O15)
	check("v2", f.V2, f.O19)
	check("n1", f.N1, f.O16)
	check("thisVector", f.ThisVector, f.O15, f.O19)
	check("tget", f.TGet, f.O6)
	// The context-insensitive conflation:
	check("s1", f.S1, f.O16, f.O20)
	check("s2", f.S2, f.O16, f.O20)
	check("eadd", f.EAdd, f.O16, f.O20)

	if !r.Alias(f.TAdd, f.TGet) {
		t.Error("tadd must alias tget")
	}
	if r.Alias(f.N1, f.N2) {
		t.Error("n1 must not alias n2")
	}
	if r.NumObjects() != 5 {
		t.Errorf("NumObjects = %d, want 5", r.NumObjects())
	}
}

// TestCFLSubsetOfAndersen: on Fig. 2, every demand-driven points-to set
// (projected to objects) must be a subset of Andersen's — the CFL analysis
// refines, never invents.
func TestCFLSubsetOfAndersen(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	and := Analyze(f.Lowered.Graph)
	dem := cfl.New(f.Lowered.Graph, cfl.Config{})
	for _, v := range f.Lowered.AppQueryVars {
		res := dem.PointsTo(v, pag.EmptyContext)
		if res.Aborted {
			t.Fatalf("query on %s aborted without budget", f.Lowered.Graph.Node(v).Name)
		}
		super := and.PointsToSet(v)
		for _, o := range res.Objects() {
			if !super[o] {
				t.Errorf("CFL says %s -> %s, Andersen disagrees",
					f.Lowered.Graph.Node(v).Name, f.Lowered.Graph.Node(o).Name)
			}
		}
	}
}

// TestHeapChain exercises multi-hop heap flow: a.f.g style nesting.
func TestHeapChain(t *testing.T) {
	g := pag.NewGraph()
	ty := pag.TypeID(0)
	oOuter := g.AddObject("oOuter", ty)
	oInner := g.AddObject("oInner", ty)
	a := g.AddLocal("a", ty, 0)
	b := g.AddLocal("b", ty, 0)
	inner := g.AddLocal("inner", ty, 0)
	out := g.AddLocal("out", ty, 0)
	tmp := g.AddLocal("tmp", ty, 0)
	fOuter := pag.Label(1)
	fInner := pag.Label(2)
	// a = new Outer; inner = new Inner; a.f = inner (via store);
	// b = a; tmp = b.f; tmp.g = inner? Keep simpler: out = tmp.
	g.AddEdge(pag.Edge{Dst: a, Src: oOuter, Kind: pag.EdgeNew})
	g.AddEdge(pag.Edge{Dst: inner, Src: oInner, Kind: pag.EdgeNew})
	g.AddEdge(pag.Edge{Dst: a, Src: inner, Kind: pag.EdgeStore, Label: fOuter}) // a.f = inner
	g.AddEdge(pag.Edge{Dst: b, Src: a, Kind: pag.EdgeAssignLocal})              // b = a
	g.AddEdge(pag.Edge{Dst: tmp, Src: b, Kind: pag.EdgeLoad, Label: fOuter})    // tmp = b.f
	g.AddEdge(pag.Edge{Dst: out, Src: tmp, Kind: pag.EdgeAssignLocal})          // out = tmp
	_ = fInner
	g.Freeze()

	r := Analyze(g)
	got := r.PointsTo(out)
	if len(got) != 1 || got[0] != oInner {
		t.Fatalf("out pts = %v, want [oInner]", got)
	}
	if pts := r.PointsTo(tmp); len(pts) != 1 || pts[0] != oInner {
		t.Fatalf("tmp pts = %v", pts)
	}
}

// TestStoreBeforeLoadOrderIndependence: the fixpoint must be reached no
// matter the textual order of loads and stores.
func TestStoreBeforeLoadOrderIndependence(t *testing.T) {
	build := func(storeFirst bool) []pag.NodeID {
		g := pag.NewGraph()
		ty := pag.TypeID(0)
		o1 := g.AddObject("o1", ty)
		o2 := g.AddObject("o2", ty)
		p := g.AddLocal("p", ty, 0)
		q := g.AddLocal("q", ty, 0)
		y := g.AddLocal("y", ty, 0)
		x := g.AddLocal("x", ty, 0)
		f := pag.Label(1)
		edges := []pag.Edge{
			{Dst: p, Src: o1, Kind: pag.EdgeNew},
			{Dst: q, Src: p, Kind: pag.EdgeAssignLocal},
			{Dst: y, Src: o2, Kind: pag.EdgeNew},
		}
		st := pag.Edge{Dst: q, Src: y, Kind: pag.EdgeStore, Label: f}
		ld := pag.Edge{Dst: x, Src: p, Kind: pag.EdgeLoad, Label: f}
		if storeFirst {
			edges = append(edges, st, ld)
		} else {
			edges = append(edges, ld, st)
		}
		for _, e := range edges {
			g.AddEdge(e)
		}
		g.Freeze()
		return Analyze(g).PointsTo(x)
	}
	a := build(true)
	b := build(false)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("order dependence: %v vs %v", a, b)
	}
}

func TestUnfrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Analyze on unfrozen graph did not panic")
		}
	}()
	Analyze(pag.NewGraph())
}

func TestPointsToUnknownNode(t *testing.T) {
	g := pag.NewGraph()
	g.AddLocal("a", 0, 0)
	g.Freeze()
	r := Analyze(g)
	if got := r.PointsTo(pag.NodeID(99)); got != nil {
		t.Fatalf("PointsTo(out of range) = %v", got)
	}
	if r.Alias(99, 0) {
		t.Fatal("Alias out of range = true")
	}
}
