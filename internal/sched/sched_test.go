package sched

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
)

// chainGraph builds: a -> b -> c (assign chain), d isolated, e <-ld- f
// (heap only, so e and f are NOT direct-connected).
func chainGraph(t *testing.T) (*pag.Graph, map[string]pag.NodeID) {
	t.Helper()
	g := pag.NewGraph()
	ids := map[string]pag.NodeID{}
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		ids[n] = g.AddLocal(n, 0, 0)
	}
	g.AddEdge(pag.Edge{Dst: ids["b"], Src: ids["a"], Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: ids["c"], Src: ids["b"], Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: ids["e"], Src: ids["f"], Kind: pag.EdgeLoad, Label: 1})
	g.Freeze()
	return g, ids
}

func TestGroupingByDirectRelation(t *testing.T) {
	g, ids := chainGraph(t)
	plan := Schedule(g, []pag.NodeID{ids["a"], ids["b"], ids["c"], ids["d"], ids["e"], ids["f"]}, nil)
	// Components: {a,b,c}, {d}, {e}, {f} — loads don't connect.
	if plan.NumComponents != 4 {
		t.Fatalf("NumComponents = %d, want 4", plan.NumComponents)
	}
	// All queries survive, as a permutation.
	got := plan.Queries()
	if len(got) != 6 {
		t.Fatalf("scheduled %d queries, want 6", len(got))
	}
	seen := map[pag.NodeID]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d in schedule", v)
		}
		seen[v] = true
	}
}

func TestScheduleDedups(t *testing.T) {
	g, ids := chainGraph(t)
	plan := Schedule(g, []pag.NodeID{ids["a"], ids["a"], ids["b"]}, nil)
	if got := len(plan.Queries()); got != 2 {
		t.Fatalf("deduped schedule has %d queries, want 2", got)
	}
}

func TestConnectionDistanceOrdering(t *testing.T) {
	// Chain a->b->c->d->e plus a short branch x->b: the longest path
	// through each of a..e is the whole 5-chain, but x's longest path is
	// x->b->c->d->e (5 nodes too)... use a clean case instead:
	// long chain a-b-c-d-e and separate pair p-q in one group via p->c?
	// Keep it simple: isolated node vs chain member.
	g := pag.NewGraph()
	var ids []pag.NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, g.AddLocal("n", 0, 0))
	}
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(pag.Edge{Dst: ids[i+1], Src: ids[i], Kind: pag.EdgeAssignLocal})
	}
	g.Freeze()
	cd := connectionDistances(g)
	for _, v := range ids {
		if cd[v] != 5 {
			t.Fatalf("cd[%d] = %d, want 5 (whole chain)", v, cd[v])
		}
	}
}

func TestConnectionDistanceModuloRecursion(t *testing.T) {
	// A 3-cycle a->b->c->a feeding into d: the cycle collapses to one
	// weight-3 component, so every node sees CD 4.
	g := pag.NewGraph()
	a := g.AddLocal("a", 0, 0)
	b := g.AddLocal("b", 0, 0)
	c := g.AddLocal("c", 0, 0)
	d := g.AddLocal("d", 0, 0)
	g.AddEdge(pag.Edge{Dst: b, Src: a, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: c, Src: b, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: a, Src: c, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: d, Src: c, Kind: pag.EdgeAssignLocal})
	g.Freeze()
	cd := connectionDistances(g)
	for _, v := range []pag.NodeID{a, b, c, d} {
		if cd[v] != 4 {
			t.Fatalf("cd[%d] = %d, want 4", v, cd[v])
		}
	}
}

func TestDependenceDepthOrdersGroups(t *testing.T) {
	// Two disconnected pairs: group X has a variable of deep type (level
	// 3), group Y only shallow (level 1). X must be scheduled first.
	g := pag.NewGraph()
	x1 := g.AddLocal("x1", 3, 0) // type 3: level 3
	x2 := g.AddLocal("x2", 0, 0) // type 0: level 1
	y1 := g.AddLocal("y1", 0, 0)
	y2 := g.AddLocal("y2", 0, 0)
	g.AddEdge(pag.Edge{Dst: x2, Src: x1, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: y2, Src: y1, Kind: pag.EdgeAssignLocal})
	g.Freeze()
	levels := []int{1, 1, 2, 3}
	plan := Schedule(g, []pag.NodeID{y1, y2, x1, x2}, levels)
	flat := plan.Queries()
	posX := -1
	posY := -1
	for i, v := range flat {
		if v == x1 && posX == -1 {
			posX = i
		}
		if (v == y1 || v == y2) && posY == -1 {
			posY = i
		}
	}
	if posX == -1 || posY == -1 || posX > posY {
		t.Fatalf("deep-type group not scheduled first: order %v", flat)
	}
}

func TestSplitMergeBalancesGroups(t *testing.T) {
	// One giant group (10 chained vars) and five singletons: M = ceil(15/6)
	// = 3, so groups should come out at ~3 each.
	g := pag.NewGraph()
	var chain []pag.NodeID
	for i := 0; i < 10; i++ {
		chain = append(chain, g.AddLocal("c", 0, 0))
		if i > 0 {
			g.AddEdge(pag.Edge{Dst: chain[i], Src: chain[i-1], Kind: pag.EdgeAssignLocal})
		}
	}
	var singles []pag.NodeID
	for i := 0; i < 5; i++ {
		singles = append(singles, g.AddLocal("s", 0, 0))
	}
	g.Freeze()
	plan := Schedule(g, append(append([]pag.NodeID{}, chain...), singles...), nil)
	if plan.NumComponents != 6 {
		t.Fatalf("NumComponents = %d, want 6", plan.NumComponents)
	}
	for i, gr := range plan.Groups {
		if len(gr) > 3 {
			t.Fatalf("group %d has %d members, want <= 3 after splitting", i, len(gr))
		}
	}
	if got := len(plan.Queries()); got != 15 {
		t.Fatalf("total scheduled = %d, want 15", got)
	}
	// The mean group size stat reflects the pre-balance grouping.
	if plan.AvgGroupSize != 15.0/6.0 {
		t.Fatalf("AvgGroupSize = %v", plan.AvgGroupSize)
	}
}

func TestEmptyBatch(t *testing.T) {
	g, _ := chainGraph(t)
	plan := Schedule(g, nil, nil)
	if len(plan.Groups) != 0 || plan.NumComponents != 0 {
		t.Fatalf("empty batch plan = %+v", plan)
	}
}

// TestFig2Schedule sanity-checks the full pipeline on the paper's example:
// Vector-typed receivers (deep type, level 3) must be issued before the
// plain Object locals of main when the groups are disjoint.
func TestFig2Schedule(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	plan := Schedule(f.Lowered.Graph, f.Lowered.AppQueryVars, f.Lowered.TypeLevels)
	if got := len(plan.Queries()); got != len(f.Lowered.AppQueryVars) {
		t.Fatalf("scheduled %d of %d queries", got, len(f.Lowered.AppQueryVars))
	}
}

// TestGeneratedSchedulePermutation: on a generated benchmark the schedule is
// a permutation of the deduplicated batch.
func TestGeneratedSchedulePermutation(t *testing.T) {
	prg, err := javagen.Generate(javagen.Params{
		Name: "schedtest", Seed: 7, Containers: 3, CallDepth: 2,
		PayloadClasses: 3, PayloadFieldDepth: 3, AppMethods: 10, OpsPerApp: 10,
		Globals: 2, AppCallFanout: 1, HubFields: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	plan := Schedule(lo.Graph, lo.AppQueryVars, lo.TypeLevels)
	want := append([]pag.NodeID{}, lo.AppQueryVars...)
	got := plan.Queries()
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	gotS := append([]pag.NodeID{}, got...)
	sort.Slice(gotS, func(i, j int) bool { return gotS[i] < gotS[j] })
	if len(gotS) != len(want) {
		t.Fatalf("schedule size %d, want %d", len(gotS), len(want))
	}
	for i := range want {
		if gotS[i] != want[i] {
			t.Fatalf("schedule is not a permutation at %d", i)
		}
	}
	if plan.AvgGroupSize <= 0 {
		t.Fatal("AvgGroupSize not computed")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(10)
	uf.union(1, 2)
	uf.union(2, 3)
	uf.union(7, 8)
	if uf.find(1) != uf.find(3) {
		t.Fatal("1 and 3 should be joined")
	}
	if uf.find(1) == uf.find(7) {
		t.Fatal("1 and 7 should be separate")
	}
	uf.union(3, 7)
	if uf.find(1) != uf.find(8) {
		t.Fatal("transitive union broken")
	}
	// Self-union is a no-op.
	uf.union(5, 5)
	if uf.find(5) != 5 {
		t.Fatal("self union broke singleton")
	}
}

func TestComponentMap(t *testing.T) {
	g, ids := chainGraph(t)
	cm := ComponentMap(g)
	if len(cm) != g.NumNodes() {
		t.Fatalf("ComponentMap length %d, want %d", len(cm), g.NumNodes())
	}
	// a, b, c share a component; d, e, f are singletons (loads don't
	// connect), so the partition matches Schedule's grouping.
	if cm[ids["a"]] != cm[ids["b"]] || cm[ids["b"]] != cm[ids["c"]] {
		t.Fatalf("a/b/c split across components: %d %d %d", cm[ids["a"]], cm[ids["b"]], cm[ids["c"]])
	}
	distinct := map[int32]bool{cm[ids["a"]]: true, cm[ids["d"]]: true, cm[ids["e"]]: true, cm[ids["f"]]: true}
	if len(distinct) != 4 {
		t.Fatalf("expected 4 distinct components, got %d", len(distinct))
	}
}

// TestComponentMapDeterministic: the partition must be identical across
// repeated runs on the same graph — shard plans built from it at different
// times (replica vs router vs rebuild) have to agree byte for byte.
func TestComponentMapDeterministic(t *testing.T) {
	prg, err := javagen.Generate(javagen.Params{
		Name: "comptest", Seed: 11, Containers: 3, CallDepth: 2,
		PayloadClasses: 3, PayloadFieldDepth: 3, AppMethods: 10, OpsPerApp: 10,
		Globals: 2, AppCallFanout: 1, HubFields: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	want := ComponentMap(lo.Graph)
	for i := 0; i < 5; i++ {
		if got := ComponentMap(lo.Graph); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d produced a different partition", i)
		}
	}
}

// randDirectGraph builds a pseudo-random graph of n nodes with direct
// (assign) edges between permuted node ids: order[i] is the node that plays
// logical role i. Edges are drawn from rng in logical-role space, so two
// graphs built with the same rng seed but different orders are isomorphic.
func randDirectGraph(t *testing.T, n int, seed int64, order []int) (*pag.Graph, []pag.NodeID) {
	t.Helper()
	g := pag.NewGraph()
	ids := make([]pag.NodeID, n) // ids[role] = node id of logical role
	for _, role := range order {
		ids[role] = g.AddLocal("", 0, 0)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2*n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		g.AddEdge(pag.Edge{Dst: ids[a], Src: ids[b], Kind: pag.EdgeAssignLocal})
	}
	g.Freeze()
	return g, ids
}

// TestComponentMapPermutationStability: relabelling the nodes of the same
// logical PAG must not change the partition — roles grouped together in one
// ordering are grouped together in every ordering.
func TestComponentMapPermutationStability(t *testing.T) {
	const n = 150
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	perm := rand.New(rand.NewSource(99)).Perm(n)

	g1, ids1 := randDirectGraph(t, n, 5, ident)
	g2, ids2 := randDirectGraph(t, n, 5, perm)
	cm1 := ComponentMap(g1)
	cm2 := ComponentMap(g2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			same1 := cm1[ids1[a]] == cm1[ids1[b]]
			same2 := cm2[ids2[a]] == cm2[ids2[b]]
			if same1 != same2 {
				t.Fatalf("roles %d,%d: together=%v under identity, %v under permutation", a, b, same1, same2)
			}
		}
	}
}

// BenchmarkComponentMap measures the partition pass on a generated
// benchmark graph — the cost a shard-plan build pays per invocation.
func BenchmarkComponentMap(b *testing.B) {
	prg, err := javagen.Generate(javagen.Params{
		Name: "compbench", Seed: 13, Containers: 4, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 16, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cm := ComponentMap(lo.Graph); len(cm) != lo.Graph.NumNodes() {
			b.Fatal("bad partition size")
		}
	}
}
