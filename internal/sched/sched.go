// Package sched implements the query-scheduling scheme of Section III-C.
// Given a batch of points-to queries, it:
//
//  1. groups query variables by connected components of the "direct"
//     relation (Eq. 5: assignl | assigng | param_i | ret_i edges — loads and
//     stores excluded, since they induce no variable-to-variable
//     reachability);
//  2. orders variables within a group by connection distance (CD) — the
//     length of the longest direct path through the variable, modulo
//     recursion — shortest first;
//  3. orders groups by dependence depth (DD) — 1/L(t) over the group's
//     minimum, where L(t) is the type level of Section III-C2 — ascending,
//     so groups of deeply-nested types (small DD) are issued first;
//  4. rebalances groups to the mean size M: larger groups are split,
//     adjacent smaller groups merged (Section III-C2, load balance).
//
// The result is an ordered list of query groups; the parallel engine hands
// one group at a time to each worker, reducing work-list synchronisation
// while maximising the early terminations enabled by data sharing.
package sched

import (
	"math"
	"sort"
	"time"

	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/scc"
)

// Plan is an ordered partition of a query batch.
type Plan struct {
	// Groups lists query groups in issue order. Concatenated, they are a
	// permutation of the original query batch (duplicates removed).
	Groups [][]pag.NodeID
	// AvgGroupSize is the mean group size M before rebalancing — the Sg
	// statistic of Table I.
	AvgGroupSize float64
	// NumComponents is the number of direct-relation components touched
	// by the batch (before split/merge).
	NumComponents int
}

// Queries returns the scheduled flat order.
func (p *Plan) Queries() []pag.NodeID {
	var out []pag.NodeID
	for _, g := range p.Groups {
		out = append(out, g...)
	}
	return out
}

// Schedule builds a plan for the query batch over graph g. typeLevels maps
// pag.TypeID to the L(t) level (see frontend.TypeLevels); it may be nil, in
// which case all dependence depths are equal and only grouping and CD
// ordering apply. Duplicate query variables are dropped.
func Schedule(g *pag.Graph, queries []pag.NodeID, typeLevels []int) *Plan {
	return ScheduleObs(g, queries, typeLevels, nil)
}

// ScheduleObs is Schedule with an observability sink: plan construction is
// timed into obs.TmSchedule, summarised as an obs.EvSchedPlan trace event,
// and (with span tracing on) broken into phase spans — grouping, CD/DD
// ordering, rebalancing — under one SpSchedule parent on the shared engine
// track. A nil sink costs nothing.
func ScheduleObs(g *pag.Graph, queries []pag.NodeID, typeLevels []int, sink *obs.Sink) *Plan {
	if !sink.Enabled() {
		return schedule(g, queries, typeLevels, nil)
	}
	t0 := time.Now()
	st0 := sink.SpanStart()
	plan := schedule(g, queries, typeLevels, sink)
	d := time.Since(t0)
	sink.Time(obs.TmSchedule, d)
	sink.SetGauge(obs.GaugeUnits, int64(len(plan.Groups)))
	sink.SetGauge(obs.GaugeSchedComponents, int64(plan.NumComponents))
	sink.Trace(obs.EvSchedPlan, obs.NoWorker, int64(len(plan.Groups)), int64(d))
	sink.Span(obs.SpSchedule, obs.NoWorker, st0, int64(len(plan.Groups)), 0, 0)
	return plan
}

func schedule(g *pag.Graph, queries []pag.NodeID, typeLevels []int, sink *obs.Sink) *Plan {
	// --- 1. Connected components of the direct relation (undirected). ---
	groupT0 := sink.SpanStart()
	uf := directUnionFind(g)

	// Dedup queries, bucket them per component.
	seen := make(map[pag.NodeID]struct{}, len(queries))
	byComp := make(map[int][]pag.NodeID)
	for _, v := range queries {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		byComp[uf.find(int(v))] = append(byComp[uf.find(int(v))], v)
	}
	sink.Span(obs.SpSchedGroup, obs.NoWorker, groupT0, int64(len(byComp)), 0, 0)

	// --- 2. Connection distances, computed once over the whole graph. ---
	orderT0 := sink.SpanStart()
	cd := connectionDistances(g)

	// --- 3. Dependence depths. ---
	dd := func(v pag.NodeID) float64 {
		if typeLevels == nil {
			return 1
		}
		t := g.Node(v).Type
		if t == pag.UntypedType || int(t) >= len(typeLevels) || typeLevels[t] <= 0 {
			return math.Inf(1)
		}
		return 1 / float64(typeLevels[t])
	}

	type group struct {
		vars []pag.NodeID
		dd   float64
		min  pag.NodeID // deterministic tie-break
	}
	groups := make([]group, 0, len(byComp))
	for _, vars := range byComp {
		// CD ascending within the group, node id tie-break.
		sort.Slice(vars, func(i, j int) bool {
			if cd[vars[i]] != cd[vars[j]] {
				return cd[vars[i]] < cd[vars[j]]
			}
			return vars[i] < vars[j]
		})
		gd := math.Inf(1)
		mn := vars[0]
		for _, v := range vars {
			if d := dd(v); d < gd {
				gd = d
			}
			if v < mn {
				mn = v
			}
		}
		groups = append(groups, group{vars: vars, dd: gd, min: mn})
	}
	// DD ascending across groups (deep types first).
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].dd != groups[j].dd {
			return groups[i].dd < groups[j].dd
		}
		return groups[i].min < groups[j].min
	})
	sink.Span(obs.SpSchedOrder, obs.NoWorker, orderT0, int64(len(groups)), 0, 0)

	plan := &Plan{NumComponents: len(groups)}
	if len(groups) == 0 {
		return plan
	}
	total := 0
	for _, gr := range groups {
		total += len(gr.vars)
	}
	m := int(math.Ceil(float64(total) / float64(len(groups))))
	if m < 1 {
		m = 1
	}
	plan.AvgGroupSize = float64(total) / float64(len(groups))

	// --- 4. Split/merge to roughly M variables per group. ---
	balanceT0 := sink.SpanStart()
	var cur []pag.NodeID
	for _, gr := range groups {
		vs := gr.vars
		for len(vs) > 0 {
			take := m - len(cur)
			if take > len(vs) {
				take = len(vs)
			}
			cur = append(cur, vs[:take]...)
			vs = vs[take:]
			if len(cur) >= m {
				plan.Groups = append(plan.Groups, cur)
				cur = nil
			}
		}
	}
	if len(cur) > 0 {
		plan.Groups = append(plan.Groups, cur)
	}
	sink.Span(obs.SpSchedBalance, obs.NoWorker, balanceT0, int64(len(plan.Groups)), 0, 0)
	return plan
}

// directUnionFind builds the disjoint-set of the undirected direct relation
// (Eq. 5) over all of g's nodes — the grouping structure of step 1.
func directUnionFind(g *pag.Graph) *unionFind {
	n := g.NumNodes()
	uf := newUnionFind(n)
	for x := 0; x < n; x++ {
		for _, he := range g.In(pag.NodeID(x)) {
			if he.Kind.IsDirect() {
				uf.union(x, int(he.Other))
			}
		}
	}
	return uf
}

// ComponentMap returns, for every node, the canonical id (a representative
// node index) of its direct-relation connected component — the same
// partition Schedule groups queries by. Consumers outside the scheduler use
// it to aggregate per-node data into per-subgraph rollups; the heat
// profiler folds node step counts into hot-component totals with it.
func ComponentMap(g *pag.Graph) []int32 {
	uf := directUnionFind(g)
	out := make([]int32, g.NumNodes())
	for v := range out {
		out[v] = int32(uf.find(v))
	}
	return out
}

// connectionDistances returns, per node, the length (in nodes) of the
// longest direct-relation path through it, with cycles collapsed ("modulo
// recursion"): each SCC of the directed direct-edge subgraph is weighted by
// its size, and the distance of a node is the weight of the heaviest
// source-to-sink chain through its component.
func connectionDistances(g *pag.Graph) []int {
	n := g.NumNodes()
	succ := make([][]int, n) // direction of value flow: src -> dst
	for x := 0; x < n; x++ {
		for _, he := range g.In(pag.NodeID(x)) {
			if he.Kind.IsDirect() {
				succ[he.Other] = append(succ[he.Other], x)
			}
		}
	}
	comp, numComp := scc.Compute(n, func(v int) []int { return succ[v] })

	weight := make([]int, numComp)
	for v := 0; v < n; v++ {
		weight[comp[v]]++
	}
	// Condensed edges; components are in reverse topological order
	// (successors have smaller indexes).
	csucc := make(map[int]map[int]struct{})
	for v := 0; v < n; v++ {
		for _, w := range succ[v] {
			if comp[v] != comp[w] {
				if csucc[comp[v]] == nil {
					csucc[comp[v]] = make(map[int]struct{})
				}
				csucc[comp[v]][comp[w]] = struct{}{}
			}
		}
	}
	// down[c]: heaviest chain starting at c going along csucc (ascending
	// pass works because successors have smaller component numbers).
	down := make([]int, numComp)
	for c := 0; c < numComp; c++ {
		best := 0
		for s := range csucc[c] {
			if down[s] > best {
				best = down[s]
			}
		}
		down[c] = weight[c] + best
	}
	// up[c]: heaviest chain ending at c. Predecessor components have
	// larger indexes, so a descending pass relaxes each component's
	// successors after the component itself is final.
	up := make([]int, numComp)
	for c := range up {
		up[c] = weight[c]
	}
	for c := numComp - 1; c >= 0; c-- {
		for s := range csucc[c] {
			if cand := up[c] + weight[s]; cand > up[s] {
				up[s] = cand
			}
		}
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		c := comp[v]
		out[v] = up[c] + down[c] - weight[c]
	}
	return out
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for int(u.parent[x]) != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = int(u.parent[x])
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	u.size[ra] += u.size[rb]
}
