// Package javagen generates synthetic mini-Java benchmark programs with the
// structural characteristics of the paper's 20 Java benchmarks (10 SPEC
// JVM98 + 10 DaCapo 2009). The real benchmarks require a Java bytecode
// frontend (Soot); per the reproduction's substitution rule we instead
// generate seeded, deterministic programs that exercise the same analysis
// code paths:
//
//   - Vector-like library containers with a two-level heap (container ->
//     backing array -> elements), producing the long ld/st alias chains the
//     paper identifies as "long (time-consuming to traverse) and common
//     (repeatedly traversed across the queries)";
//   - wrapper call chains of configurable depth, exercising param_i/ret_i
//     context matching;
//   - application methods sharing containers through globals and through
//     app-to-app calls, creating the cross-query redundancy that data
//     sharing exploits;
//   - occasional high fan-in "hub" fields, making some expansions exceed
//     the per-query budget (the source of unfinished jmp edges and early
//     terminations);
//   - payload-class hierarchies of varying field-containment depth, giving
//     the scheduler's dependence-depth heuristic something to order.
//
// Generation is fully deterministic given Params (including the seed), so
// benchmarks never need to be stored: experiments regenerate them.
package javagen

import (
	"fmt"
	"math/rand"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// Params controls generation. All counts are "approximately proportional" —
// the generator derives concrete structures from them.
type Params struct {
	// Name labels the benchmark in reports.
	Name string
	// Seed drives all randomised choices.
	Seed int64

	// Containers is the number of distinct container classes in the
	// library (each with init/put/get and a wrapper chain).
	Containers int
	// CallDepth is the wrapper chain length above put/get.
	CallDepth int
	// PayloadClasses is the number of element classes apps allocate.
	PayloadClasses int
	// PayloadFieldDepth is the maximum field-containment depth of the
	// payload class chains (drives type levels / dependence depths).
	PayloadFieldDepth int
	// AppMethods is the number of application methods (queries are
	// issued for all their locals).
	AppMethods int
	// OpsPerApp is the number of operations (alloc/put/get/assign/
	// field access) emitted per application method.
	OpsPerApp int
	// Globals is the number of global variables holding containers
	// shared across application methods.
	Globals int
	// AppCallFanout is the number of calls each app method makes to
	// lower-indexed app methods (passing containers around).
	AppCallFanout int
	// HubFields, when positive, adds high-fan-in stores: this many extra
	// app methods all store into the same field of aliased bases, making
	// expansions through that field expensive (budget pressure).
	HubFields int
	// LibPadMethods adds uncalled library methods that pass fresh
	// payloads through the container API. They model the large library
	// mass of the real benchmarks (the JVM98 suite is library-heavy):
	// their param edges fan into the shared put/get formals, so
	// empty-context traversals must explore them, inflating per-query
	// cost exactly as big libraries do.
	LibPadMethods int
}

// Validate reports the first implausible parameter.
func (p *Params) Validate() error {
	switch {
	case p.Containers < 1:
		return fmt.Errorf("javagen: Containers must be >= 1")
	case p.CallDepth < 0:
		return fmt.Errorf("javagen: CallDepth must be >= 0")
	case p.PayloadClasses < 1:
		return fmt.Errorf("javagen: PayloadClasses must be >= 1")
	case p.PayloadFieldDepth < 1:
		return fmt.Errorf("javagen: PayloadFieldDepth must be >= 1")
	case p.AppMethods < 1:
		return fmt.Errorf("javagen: AppMethods must be >= 1")
	case p.OpsPerApp < 1:
		return fmt.Errorf("javagen: OpsPerApp must be >= 1")
	case p.Globals < 0 || p.AppCallFanout < 0 || p.HubFields < 0 || p.LibPadMethods < 0:
		return fmt.Errorf("javagen: negative count")
	}
	return nil
}

// gen carries generation state.
type gen struct {
	p   Params
	rng *rand.Rand
	prg *frontend.Program

	// Type IDs.
	tObject    pag.TypeID
	tArr       pag.TypeID // backing array type with the collapsed arr field
	tPayload   []pag.TypeID
	tContainer []pag.TypeID

	nextField pag.FieldID

	// Per-container method indexes.
	initM, putM, getM []int
	putWrap, getWrap  [][]int // [container][depth]

	hubField pag.FieldID
}

// Generate builds a program from params. The same params always produce the
// same program.
func Generate(p Params) (*frontend.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
		prg: &frontend.Program{},
	}
	g.buildTypes()
	g.buildGlobals()
	g.buildLibrary()
	g.buildGlobalInits()
	g.buildLibraryPadding()
	g.buildApps()
	if err := g.prg.Validate(); err != nil {
		return nil, fmt.Errorf("javagen: generated invalid program: %w", err)
	}
	return g.prg, nil
}

func (g *gen) field(name string, t pag.TypeID) frontend.Field {
	g.nextField++
	return frontend.Field{Name: name, ID: g.nextField, Type: t}
}

func (g *gen) buildTypes() {
	// Type 0: Object.
	g.tObject = pag.TypeID(len(g.prg.Types))
	g.prg.Types = append(g.prg.Types, frontend.Type{Name: "Object", Ref: true})
	// Reserve field 0 as the collapsed array field (pag.ArrField).
	g.tArr = pag.TypeID(len(g.prg.Types))
	g.prg.Types = append(g.prg.Types, frontend.Type{
		Name: "Object[]", Ref: true,
		Fields: []frontend.Field{{Name: "arr", ID: pag.ArrField, Type: g.tObject}},
	})

	// Payload class chains: P_k_0 has an Object field; P_k_d has a field
	// of type P_k_(d-1); depth varies per class so type levels differ.
	for k := 0; k < g.p.PayloadClasses; k++ {
		depth := 1 + g.rng.Intn(g.p.PayloadFieldDepth)
		prev := g.tObject
		var tid pag.TypeID
		for d := 0; d < depth; d++ {
			tid = pag.TypeID(len(g.prg.Types))
			g.prg.Types = append(g.prg.Types, frontend.Type{
				Name: fmt.Sprintf("P%d_%d", k, d), Ref: true,
				Fields: []frontend.Field{g.field(fmt.Sprintf("p%d_%d", k, d), prev)},
			})
			prev = tid
		}
		g.tPayload = append(g.tPayload, tid)
	}

	// Container classes: C_k { Object[] elems } — like the paper's Vector.
	for k := 0; k < g.p.Containers; k++ {
		tid := pag.TypeID(len(g.prg.Types))
		g.prg.Types = append(g.prg.Types, frontend.Type{
			Name: fmt.Sprintf("C%d", k), Ref: true,
			Fields: []frontend.Field{g.field(fmt.Sprintf("elems%d", k), g.tArr)},
		})
		g.tContainer = append(g.tContainer, tid)
	}

	// One hub field on Object-typed bases (high fan-in stores).
	if g.p.HubFields > 0 {
		g.nextField++
		g.hubField = g.nextField
		g.prg.Types[g.tObject].Fields = append(g.prg.Types[g.tObject].Fields,
			frontend.Field{Name: "hub", ID: g.hubField, Type: g.tObject})
	}
}

func (g *gen) buildGlobals() {
	for i := 0; i < g.p.Globals; i++ {
		ct := g.tContainer[i%len(g.tContainer)]
		g.prg.Globals = append(g.prg.Globals, frontend.GlobalVar{
			Name: fmt.Sprintf("G%d", i), Type: ct,
		})
	}
}

// elemsFieldOf returns the elems field ID of container class k.
func (g *gen) elemsFieldOf(k int) pag.FieldID {
	return g.prg.Types[g.tContainer[k]].Fields[0].ID
}

// buildLibrary emits, per container class k:
//
//	Ck_init(this)        { t = new Object[]; this.elems = t }
//	Ck_put(this, e)      { t = this.elems; t.arr = e }
//	Ck_get(this) Object  { t = this.elems; r = t.arr; return r }
//	Ck_put_d / Ck_get_d  wrapper chains of depth CallDepth
func (g *gen) buildLibrary() {
	for k := 0; k < g.p.Containers; k++ {
		ct := g.tContainer[k]
		elems := g.elemsFieldOf(k)

		g.initM = append(g.initM, len(g.prg.Methods))
		g.prg.Methods = append(g.prg.Methods, frontend.Method{
			Name: fmt.Sprintf("C%d.init", k),
			Locals: []frontend.LocalVar{
				{Name: "this", Type: ct},
				{Name: "t", Type: g.tArr},
			},
			Params: []int{0}, Ret: -1,
			Body: []frontend.Stmt{
				{Kind: frontend.StAlloc, Dst: frontend.Local(1), Type: g.tArr},
				{Kind: frontend.StStore, Base: frontend.Local(0), Field: elems, Src: frontend.Local(1)},
			},
		})

		g.putM = append(g.putM, len(g.prg.Methods))
		g.prg.Methods = append(g.prg.Methods, frontend.Method{
			Name: fmt.Sprintf("C%d.put", k),
			Locals: []frontend.LocalVar{
				{Name: "this", Type: ct},
				{Name: "e", Type: g.tObject},
				{Name: "t", Type: g.tArr},
			},
			Params: []int{0, 1}, Ret: -1,
			Body: []frontend.Stmt{
				{Kind: frontend.StLoad, Dst: frontend.Local(2), Base: frontend.Local(0), Field: elems},
				{Kind: frontend.StStore, Base: frontend.Local(2), Field: pag.ArrField, Src: frontend.Local(1)},
			},
		})

		g.getM = append(g.getM, len(g.prg.Methods))
		g.prg.Methods = append(g.prg.Methods, frontend.Method{
			Name: fmt.Sprintf("C%d.get", k),
			Locals: []frontend.LocalVar{
				{Name: "this", Type: ct},
				{Name: "t", Type: g.tArr},
				{Name: "r", Type: g.tObject},
			},
			Params: []int{0}, Ret: 2,
			Body: []frontend.Stmt{
				{Kind: frontend.StLoad, Dst: frontend.Local(1), Base: frontend.Local(0), Field: elems},
				{Kind: frontend.StLoad, Dst: frontend.Local(2), Base: frontend.Local(1), Field: pag.ArrField},
			},
		})

		// Wrapper chains: depth 0 refers to the raw put/get; depth d>0
		// calls depth d-1.
		pw := []int{g.putM[k]}
		gw := []int{g.getM[k]}
		for d := 1; d <= g.p.CallDepth; d++ {
			pi := len(g.prg.Methods)
			g.prg.Methods = append(g.prg.Methods, frontend.Method{
				Name: fmt.Sprintf("C%d.put_%d", k, d),
				Locals: []frontend.LocalVar{
					{Name: "this", Type: ct},
					{Name: "e", Type: g.tObject},
				},
				Params: []int{0, 1}, Ret: -1,
				Body: []frontend.Stmt{
					{Kind: frontend.StCall, Callee: pw[d-1], Args: []frontend.VarRef{frontend.Local(0), frontend.Local(1)}, Dst: frontend.NoVar},
				},
			})
			pw = append(pw, pi)

			gi := len(g.prg.Methods)
			g.prg.Methods = append(g.prg.Methods, frontend.Method{
				Name: fmt.Sprintf("C%d.get_%d", k, d),
				Locals: []frontend.LocalVar{
					{Name: "this", Type: ct},
					{Name: "r", Type: g.tObject},
				},
				Params: []int{0}, Ret: 1,
				Body: []frontend.Stmt{
					{Kind: frontend.StCall, Callee: gw[d-1], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(1)},
				},
			})
			gw = append(gw, gi)
		}
		g.putWrap = append(g.putWrap, pw)
		g.getWrap = append(g.getWrap, gw)
	}
}

// buildGlobalInits emits one static-initialiser-style method per global,
// allocating and publishing a container of the global's class (as a Java
// <clinit> would). This guarantees every global holds at least one object,
// so library helpers reading globals are reachable by flowsTo traversals.
func (g *gen) buildGlobalInits() {
	for gi := range g.prg.Globals {
		k := gi % len(g.tContainer)
		g.prg.Methods = append(g.prg.Methods, frontend.Method{
			Name: fmt.Sprintf("clinit%d", gi),
			Locals: []frontend.LocalVar{
				{Name: "c", Type: g.tContainer[k]},
			},
			Ret: -1,
			Body: []frontend.Stmt{
				{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: g.tContainer[k]},
				{Kind: frontend.StCall, Callee: g.initM[k], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.NoVar},
				{Kind: frontend.StAssign, Dst: frontend.Global(gi), Src: frontend.Local(0)},
			},
		})
	}
}

// buildLibraryPadding emits LibPadMethods library helper methods, each
// reading a shared global container and exercising its put/get through the
// wrapper chain with a fresh payload. Because the helpers hold the same
// container objects the application publishes to globals, forward flowsTo
// traversals of those objects must explore every helper — reproducing the
// per-query cost profile of analysing a large library (the JVM98 suite's
// graphs are dominated by library code the queries still have to wade
// through).
func (g *gen) buildLibraryPadding() {
	for i := 0; i < g.p.LibPadMethods; i++ {
		k := g.rng.Intn(g.p.Containers)
		d := g.rng.Intn(len(g.putWrap[k]))
		pt := g.tPayload[g.rng.Intn(len(g.tPayload))]
		m := frontend.Method{
			Name: fmt.Sprintf("lib.pad%d", i),
			Locals: []frontend.LocalVar{
				{Name: "c", Type: g.tContainer[k]},
				{Name: "e", Type: pt},
				{Name: "x", Type: g.tObject},
				{Name: "y", Type: g.tObject},
			},
			Ret: -1,
		}
		if g.p.Globals > 0 {
			// Pick a global of container class k if one exists.
			gi := -1
			for cand := 0; cand < g.p.Globals; cand++ {
				if cand%len(g.tContainer) == k {
					gi = cand
					break
				}
			}
			if gi >= 0 {
				m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(0), Src: frontend.Global(gi)})
			}
		}
		if len(m.Body) == 0 {
			// No matching global: self-contained container.
			m.Body = append(m.Body,
				frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: g.tContainer[k]},
				frontend.Stmt{Kind: frontend.StCall, Callee: g.initM[k], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.NoVar},
			)
		}
		// Read-mostly: every helper reads through the container (making
		// alias discovery walk it), but only a few write into it, so the
		// discovery work — which data sharing can shortcut — dominates
		// the per-store continuation work, as in real library code where
		// readers outnumber writers.
		if i%5 == 0 {
			m.Body = append(m.Body,
				frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(1), Type: pt},
				frontend.Stmt{Kind: frontend.StCall, Callee: g.putWrap[k][d], Args: []frontend.VarRef{frontend.Local(0), frontend.Local(1)}, Dst: frontend.NoVar},
			)
		}
		m.Body = append(m.Body,
			frontend.Stmt{Kind: frontend.StCall, Callee: g.getWrap[k][d], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(2)},
			frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(3), Src: frontend.Local(2)},
		)
		g.prg.Methods = append(g.prg.Methods, m)
	}
}

// buildApps emits the application methods.
func (g *gen) buildApps() {
	appStart := len(g.prg.Methods)
	// Cap how many app methods interact with each global container:
	// real programs share a singleton with a bounded clique of call
	// sites, not with every method, and without the cap per-query cost
	// would grow with program size (the paper's per-query cost is
	// roughly constant per benchmark).
	const globalAudience = 8
	const globalPublishers = 3
	readers := make([]int, g.p.Globals)
	publishers := make([]int, g.p.Globals)
	for a := 0; a < g.p.AppMethods; a++ {
		m := frontend.Method{
			Name:        fmt.Sprintf("app%d", a),
			Ret:         -1,
			Application: true,
		}
		// Local slot bookkeeping: track which locals currently hold
		// containers (per container class) and which hold payloads.
		var containerLocals []struct {
			slot int
			k    int
		}
		var objLocals []int

		newLocal := func(name string, t pag.TypeID) int {
			m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("%s%d", name, len(m.Locals)), Type: t})
			return len(m.Locals) - 1
		}

		// Every app method starts with one container of a random class:
		// either a fresh allocation (with init) or a shared global.
		k := g.rng.Intn(g.p.Containers)
		c0 := newLocal("c", g.tContainer[k])
		gi := -1
		if g.p.Globals > 0 {
			gi = g.rng.Intn(g.p.Globals)
		}
		if gi >= 0 && g.rng.Intn(2) == 0 && readers[gi] < globalAudience {
			readers[gi]++
			// Pick the global's own class so put/get match.
			k = gi % g.p.Containers
			m.Locals[c0].Type = g.tContainer[k]
			m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(c0), Src: frontend.Global(gi)})
		} else {
			m.Body = append(m.Body,
				frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(c0), Type: g.tContainer[k]},
				frontend.Stmt{Kind: frontend.StCall, Callee: g.initM[k], Args: []frontend.VarRef{frontend.Local(c0)}, Dst: frontend.NoVar},
			)
			// Sometimes publish the fresh container to a global so other
			// app methods see it.
			if gi >= 0 && g.rng.Intn(3) == 0 && gi%g.p.Containers == k && publishers[gi] < globalPublishers {
				publishers[gi]++
				m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Global(gi), Src: frontend.Local(c0)})
			}
		}
		containerLocals = append(containerLocals, struct {
			slot int
			k    int
		}{c0, k})

		for op := 0; op < g.p.OpsPerApp; op++ {
			c := containerLocals[g.rng.Intn(len(containerLocals))]
			switch g.rng.Intn(10) {
			case 0, 1: // allocate a payload
				pt := g.tPayload[g.rng.Intn(len(g.tPayload))]
				s := newLocal("p", pt)
				m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(s), Type: pt})
				objLocals = append(objLocals, s)
			case 2, 3, 4: // put a payload into a container (via wrapper)
				if len(objLocals) == 0 {
					op--
					continue
				}
				e := objLocals[g.rng.Intn(len(objLocals))]
				d := g.rng.Intn(len(g.putWrap[c.k]))
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StCall, Callee: g.putWrap[c.k][d],
					Args: []frontend.VarRef{frontend.Local(c.slot), frontend.Local(e)},
					Dst:  frontend.NoVar,
				})
			case 5, 6, 7: // get from a container
				d := g.rng.Intn(len(g.getWrap[c.k]))
				s := newLocal("x", g.tObject)
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StCall, Callee: g.getWrap[c.k][d],
					Args: []frontend.VarRef{frontend.Local(c.slot)},
					Dst:  frontend.Local(s),
				})
				objLocals = append(objLocals, s)
				// Copy the result through a short local chain (as real
				// code does). Queries on the chained locals re-traverse
				// the get's alias expansion, which is precisely the
				// redundancy the jmp shortcuts remove — and the
				// connection-distance ordering issues the chain head
				// first so the shortcut exists by the time the tail runs.
				prev := s
				for ch := 0; ch < 1+g.rng.Intn(2); ch++ {
					cs := newLocal("y", g.tObject)
					m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(cs), Src: frontend.Local(prev)})
					objLocals = append(objLocals, cs)
					prev = cs
				}
				// Sometimes treat the fetched value as a nested container
				// (containers of containers): reading through it forces a
				// second level of alias expansion, the expensive-and-
				// shareable work the data-sharing scheme targets.
				if g.rng.Intn(8) == 0 {
					k2 := c.k
					d2 := g.rng.Intn(len(g.getWrap[k2]))
					s2 := newLocal("xx", g.tObject)
					m.Body = append(m.Body,
						frontend.Stmt{Kind: frontend.StCall, Callee: g.putWrap[k2][d2],
							Args: []frontend.VarRef{frontend.Local(c.slot), frontend.Local(s)}, Dst: frontend.NoVar},
						frontend.Stmt{Kind: frontend.StCall, Callee: g.getWrap[k2][d2],
							Args: []frontend.VarRef{frontend.Local(s)}, Dst: frontend.Local(s2)},
					)
					objLocals = append(objLocals, s2)
				}
			case 8: // local assignment chain
				if len(objLocals) == 0 {
					op--
					continue
				}
				src := objLocals[g.rng.Intn(len(objLocals))]
				s := newLocal("y", m.Locals[src].Type)
				m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(s), Src: frontend.Local(src)})
				objLocals = append(objLocals, s)
			case 9: // another container
				k2 := g.rng.Intn(g.p.Containers)
				s := newLocal("c", g.tContainer[k2])
				m.Body = append(m.Body,
					frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(s), Type: g.tContainer[k2]},
					frontend.Stmt{Kind: frontend.StCall, Callee: g.initM[k2], Args: []frontend.VarRef{frontend.Local(s)}, Dst: frontend.NoVar},
				)
				containerLocals = append(containerLocals, struct {
					slot int
					k    int
				}{s, k2})
			}
		}

		// App-to-app calls: pass a container to an earlier app method's
		// entry hook if it has one. To keep arities simple, app methods
		// expose no params; instead share through globals (already done)
		// and through container reuse. AppCallFanout instead introduces
		// helper calls: see below.
		g.prg.Methods = append(g.prg.Methods, m)
	}

	// App call fabric: each app method a > 0 calls up to AppCallFanout
	// helper methods derived from earlier app methods. We add tiny
	// "bridge" app methods that accept a container, put into it and
	// return a fresh read — exercising param/ret matching between app
	// methods.
	if g.p.AppCallFanout > 0 {
		// Several bridge instances per container class, so each bridge's
		// call fan-in stays bounded (~bridgeAudience callers): queries on
		// a bridge formal explore its callers with an empty context, and
		// unbounded fan-in would make per-query cost grow with program
		// size.
		const bridgeAudience = 12
		perClass := g.p.AppMethods*g.p.AppCallFanout/(bridgeAudience*g.p.Containers) + 1
		bridges := make([][]int, g.p.Containers)
		for k := 0; k < g.p.Containers; k++ {
			for b := 0; b < perClass; b++ {
				bi := len(g.prg.Methods)
				g.prg.Methods = append(g.prg.Methods, frontend.Method{
					Name: fmt.Sprintf("bridge%d_%d", k, b),
					Locals: []frontend.LocalVar{
						{Name: "c", Type: g.tContainer[k]},
						{Name: "v", Type: g.tObject},
						{Name: "r", Type: g.tObject},
					},
					Params: []int{0}, Ret: 2,
					Application: true,
					Body: []frontend.Stmt{
						{Kind: frontend.StAlloc, Dst: frontend.Local(1), Type: g.tPayload[k%len(g.tPayload)]},
						{Kind: frontend.StCall, Callee: g.putWrap[k][len(g.putWrap[k])-1], Args: []frontend.VarRef{frontend.Local(0), frontend.Local(1)}, Dst: frontend.NoVar},
						{Kind: frontend.StCall, Callee: g.getWrap[k][len(g.getWrap[k])-1], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(2)},
					},
				})
				bridges[k] = append(bridges[k], bi)
			}
		}
		for a := 0; a < g.p.AppMethods; a++ {
			mi := appStart + a
			m := &g.prg.Methods[mi]
			// Find this method's first container local and its class.
			ck := -1
			var cslot int
			for si, lv := range m.Locals {
				for k2, ct := range g.tContainer {
					if lv.Type == ct {
						ck, cslot = k2, si
						break
					}
				}
				if ck >= 0 {
					break
				}
			}
			if ck < 0 {
				continue
			}
			for fi := 0; fi < g.p.AppCallFanout; fi++ {
				s := len(m.Locals)
				m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("b%d", fi), Type: g.tObject})
				m.Body = append(m.Body, frontend.Stmt{
					Kind: frontend.StCall, Callee: bridges[ck][a%len(bridges[ck])],
					Args: []frontend.VarRef{frontend.Local(cslot)},
					Dst:  frontend.Local(s),
				})
			}
		}
	}

	// Hub pressure: HubFields extra app methods that each store a fresh
	// object into the hub field of a shared Object-typed base obtained
	// from a container, then read it back. All these stores target the
	// same field on aliased bases, so a points-to query on the loaded
	// value must alias-test against every store — an expensive expansion
	// that can exceed the per-query budget.
	if g.p.HubFields > 0 {
		k := 0
		for h := 0; h < g.p.HubFields; h++ {
			m := frontend.Method{
				Name:        fmt.Sprintf("hub%d", h),
				Ret:         -1,
				Application: true,
				Locals: []frontend.LocalVar{
					{Name: "c", Type: g.tContainer[k]},
					{Name: "base", Type: g.tObject},
					{Name: "v", Type: g.tObject},
					{Name: "w", Type: g.tObject},
				},
			}
			getC := frontend.Stmt{Kind: frontend.StCall, Callee: g.getWrap[k][0], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(1)}
			if g.p.Globals > 0 {
				gi := k % g.p.Globals
				m.Body = append(m.Body, frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(0), Src: frontend.Global(gi)})
			} else {
				m.Body = append(m.Body,
					frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: g.tContainer[k]},
					frontend.Stmt{Kind: frontend.StCall, Callee: g.initM[k], Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.NoVar},
				)
			}
			m.Body = append(m.Body,
				getC,
				frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(2), Type: g.tPayload[h%len(g.tPayload)]},
				frontend.Stmt{Kind: frontend.StStore, Base: frontend.Local(1), Field: g.hubField, Src: frontend.Local(2)},
				frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(3), Base: frontend.Local(1), Field: g.hubField},
			)
			g.prg.Methods = append(g.prg.Methods, m)
		}
	}
}
