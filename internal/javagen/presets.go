package javagen

import (
	"fmt"
	"math"

	"parcfl/internal/concurrent"
)

// Census records the paper's Table I columns for one benchmark — the
// published reference values our reports print next to measured numbers.
type Census struct {
	Classes int
	Methods int
	Nodes   int
	Edges   int
	Queries int
	// TSeqSecs is the paper's sequential analysis time in seconds.
	TSeqSecs float64
	// Jumps, SMillions, RS, Sg, ETs, RET are the paper's data-sharing and
	// scheduling statistics (Columns 8–13).
	Jumps     int
	SMillions float64
	RS        float64
	Sg        float64
	ETs       int
	RET       float64
}

// Preset is one of the paper's 20 benchmarks: its published census plus the
// generator parameters that produce a synthetic program of proportional
// shape at a given scale.
type Preset struct {
	Name   string
	DaCapo bool
	Paper  Census
}

// Presets returns the 20 benchmarks of Table I: the 10 SPEC JVM98 programs
// followed by the 10 DaCapo 2009 programs.
func Presets() []Preset {
	return []Preset{
		{"_200_check", false, Census{5758, 54514, 225797, 429551, 1101, 2.88, 428, 4.14, 25.76, 16.7, 0, 1.00}},
		{"_201_compress", false, Census{5761, 54549, 225765, 429808, 1328, 3.72, 1210, 4.21, 8.42, 4.6, 5, 1.00}},
		{"_202_jess", false, Census{5901, 55200, 232242, 440890, 7573, 121.11, 4755, 193.77, 42.68, 16.1, 617, 1.15}},
		{"_205_raytrace", false, Census{5774, 54681, 227514, 432110, 3240, 9.39, 2325, 62.02, 92.84, 7.2, 8, 0.88}},
		{"_209_db", false, Census{5753, 54549, 225994, 430569, 1339, 16.98, 4202, 10.06, 10.02, 10.3, 18, 1.17}},
		{"_213_javac", false, Census{5921, 55685, 240406, 473680, 14689, 258.34, 5309, 467.28, 64.60, 9.2, 76, 0.99}},
		{"_222_mpegaudio", false, Census{5801, 54826, 230349, 435391, 6389, 46.52, 2306, 86.17, 53.33, 3.8, 53, 3.17}},
		{"_227_mtrt", false, Census{5774, 54681, 227514, 432110, 3241, 10.38, 2358, 62.17, 115.70, 7.2, 7, 0.86}},
		{"_228_jack", false, Census{5806, 54830, 229482, 435159, 6591, 39.54, 25030, 79.48, 40.03, 14.2, 100, 1.62}},
		{"_999_checkit", false, Census{5757, 54548, 226292, 431435, 1473, 12.61, 2180, 10.14, 7.94, 16.9, 23, 0.78}},
		{"avrora", true, Census{3521, 29542, 108210, 189081, 24455, 51.16, 32046, 47.46, 6.18, 9.4, 24, 2.83}},
		{"batik", true, Census{7546, 65899, 252590, 477113, 64467, 72.72, 14876, 114.57, 11.95, 10.3, 38, 1.37}},
		{"fop", true, Census{8965, 79776, 266514, 636776, 71542, 118.22, 25418, 169.92, 19.03, 18.6, 76, 1.20}},
		{"h2", true, Census{3381, 32691, 115249, 204516, 44901, 25.50, 22094, 91.38, 12.39, 16.0, 283, 0.66}},
		{"luindex", true, Census{3160, 28791, 108827, 191126, 22415, 23.28, 62457, 60.93, 8.72, 8.2, 113, 0.71}},
		{"lusearch", true, Census{3120, 28223, 109439, 193012, 17520, 57.78, 77153, 66.26, 7.90, 9.3, 75, 1.52}},
		{"pmd", true, Census{3786, 33432, 110388, 195834, 56833, 61.05, 77313, 69.10, 7.93, 9.2, 84, 1.06}},
		{"sunflow", true, Census{6066, 56673, 233459, 447002, 21339, 55.56, 20946, 49.04, 5.57, 7.4, 24, 2.38}},
		{"tomcat", true, Census{8458, 83092, 265015, 574236, 185810, 202.89, 24601, 243.90, 23.14, 13.1, 574, 1.33}},
		{"xalan", true, Census{3716, 33248, 109317, 192441, 56229, 54.11, 33459, 60.35, 7.90, 9.4, 82, 1.43}},
	}
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("javagen: unknown benchmark %q", name)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Params derives generator parameters for this preset at the given scale.
// Scale 1.0 aims at the paper's full query census; experiments typically use
// a small fraction (e.g. 0.01) so the whole 20-benchmark suite runs on a
// laptop in minutes. Structural parameters (container breadth, call depth,
// type depth) derive from the class/method census and stay constant across
// scales; only the volume of application code (and hence queries) scales.
func (pr Preset) Params(scale float64) Params {
	if scale <= 0 {
		scale = 1
	}
	c := pr.Paper
	queriesTarget := float64(c.Queries) * scale
	// Each app method contributes roughly 8 query variables (locals).
	appMethods := clampInt(int(math.Round(queriesTarget/8)), 4, 1<<20)
	// Library padding tracks the node census: the JVM98 benchmarks have
	// few queries but large graphs (library-heavy), so the bulk of their
	// scaled node budget goes into padding. Each pad method contributes
	// ~5 nodes.
	padNodes := float64(c.Nodes)*scale - float64(appMethods)*12
	libPad := clampInt(int(padNodes/5), 0, 1<<20)
	// Budget pressure (the source of ETs) tracks how slow the paper found
	// the benchmark relative to its query count: slow-per-query
	// benchmarks get more hub methods.
	perQueryCost := c.TSeqSecs / float64(c.Queries) * 1000 // ms/query
	hubs := clampInt(int(perQueryCost*1.5), 1, 24)

	return Params{
		Name:              pr.Name,
		Seed:              int64(concurrent.HashBytes(concurrent.HashSeed, pr.Name)),
		Containers:        clampInt(c.Classes/700, 3, 14),
		CallDepth:         clampInt(c.Methods/12000, 2, 7),
		PayloadClasses:    clampInt(c.Classes/500, 3, 18),
		PayloadFieldDepth: 4,
		AppMethods:        appMethods,
		OpsPerApp:         12,
		Globals:           clampInt(c.Classes/900, 2, 12),
		AppCallFanout:     map[bool]int{true: 2, false: 1}[pr.DaCapo],
		HubFields:         hubs,
		LibPadMethods:     libPad,
	}
}
