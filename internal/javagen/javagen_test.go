package javagen

import (
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

func smallParams() Params {
	return Params{
		Name: "test", Seed: 42,
		Containers: 3, CallDepth: 2, PayloadClasses: 4, PayloadFieldDepth: 3,
		AppMethods: 8, OpsPerApp: 10, Globals: 3, AppCallFanout: 1, HubFields: 2,
	}
}

func TestGenerateValidProgram(t *testing.T) {
	p, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Graph.NumNodes() < 50 {
		t.Fatalf("suspiciously small graph: %d nodes", lo.Graph.NumNodes())
	}
	if len(lo.AppQueryVars) == 0 {
		t.Fatal("no query variables")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	la, _ := frontend.Lower(a)
	lb, _ := frontend.Lower(b)
	if la.Graph.NumNodes() != lb.Graph.NumNodes() || la.Graph.NumEdges() != lb.Graph.NumEdges() {
		t.Fatalf("nondeterministic generation: %d/%d vs %d/%d nodes/edges",
			la.Graph.NumNodes(), la.Graph.NumEdges(), lb.Graph.NumNodes(), lb.Graph.NumEdges())
	}
	for i := 0; i < la.Graph.NumNodes(); i++ {
		if la.Graph.Node(pag.NodeID(i)) != lb.Graph.Node(pag.NodeID(i)) {
			t.Fatalf("node %d differs", i)
		}
	}
	// Different seeds must differ (overwhelmingly likely).
	pp := smallParams()
	pp.Seed = 43
	c, err := Generate(pp)
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := frontend.Lower(c)
	if lc.Graph.NumNodes() == la.Graph.NumNodes() && lc.Graph.NumEdges() == la.Graph.NumEdges() {
		t.Log("warning: different seeds produced identical counts (possible but unlikely)")
	}
}

func TestGeneratedProgramIsAnalysable(t *testing.T) {
	p, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{Budget: 50000})
	nonEmpty := 0
	aborted := 0
	for _, v := range lo.AppQueryVars {
		r := s.PointsTo(v, pag.EmptyContext)
		if r.Aborted {
			aborted++
			continue
		}
		if len(r.PointsTo) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every query returned an empty points-to set; generator produces dead graphs")
	}
	t.Logf("queries=%d nonEmpty=%d aborted=%d", len(lo.AppQueryVars), nonEmpty, aborted)
}

func TestValidateParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Containers = 0 },
		func(p *Params) { p.CallDepth = -1 },
		func(p *Params) { p.PayloadClasses = 0 },
		func(p *Params) { p.PayloadFieldDepth = 0 },
		func(p *Params) { p.AppMethods = 0 },
		func(p *Params) { p.OpsPerApp = 0 },
		func(p *Params) { p.Globals = -1 },
	}
	for i, mod := range bad {
		p := smallParams()
		mod(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 20 {
		t.Fatalf("preset count = %d, want 20", len(ps))
	}
	jvm98, dacapo := 0, 0
	for _, p := range ps {
		if p.DaCapo {
			dacapo++
		} else {
			jvm98++
		}
		if p.Paper.Queries <= 0 || p.Paper.Nodes <= 0 || p.Paper.TSeqSecs <= 0 {
			t.Errorf("%s: incomplete census %+v", p.Name, p.Paper)
		}
	}
	if jvm98 != 10 || dacapo != 10 {
		t.Fatalf("suite split = %d/%d, want 10/10", jvm98, dacapo)
	}
	if _, err := PresetByName("tomcat"); err != nil {
		t.Fatal(err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetParamsScale(t *testing.T) {
	pr, _ := PresetByName("tomcat")
	small := pr.Params(0.001)
	big := pr.Params(0.01)
	if small.AppMethods >= big.AppMethods {
		t.Fatalf("scaling broken: %d !< %d", small.AppMethods, big.AppMethods)
	}
	// Structural parameters must not depend on scale.
	if small.Containers != big.Containers || small.CallDepth != big.CallDepth {
		t.Fatal("structural params vary with scale")
	}
	// Zero/negative scale falls back to 1.0.
	full := pr.Params(0)
	if full.AppMethods <= big.AppMethods {
		t.Fatal("scale fallback broken")
	}
	if _, err := Generate(small); err != nil {
		t.Fatal(err)
	}
}

// TestPresetShapeOrdering: benchmarks with more paper queries must generate
// more app methods (the suite's relative sizing is preserved).
func TestPresetShapeOrdering(t *testing.T) {
	small, _ := PresetByName("_200_check") // 1101 queries
	big, _ := PresetByName("tomcat")       // 185810 queries
	s := small.Params(0.01)
	b := big.Params(0.01)
	if s.AppMethods >= b.AppMethods {
		t.Fatalf("check=%d !< tomcat=%d app methods", s.AppMethods, b.AppMethods)
	}
}
