// Package cfront is a C-language frontend for the analysis, reproducing the
// paper's claim (Section V-B) that the parallel CFL-reachability solution
// "is expected to generalise to C programs as well", following the
// demand-driven C alias analysis of Zheng & Rugina (POPL'08) that the paper
// builds on for C.
//
// C pointers are lowered onto the same PAG the Java analysis uses:
//
//   - every address-taken variable x gets a *location object* Loc(x) and a
//     constant pointer &x to it; reads and writes of x become loads/stores
//     of the collapsed `deref` pseudo-field on &x;
//   - x = &y     becomes an assignment from the constant pointer &y;
//   - x = *p     becomes a load  x  = p.deref;
//   - *p = y     becomes a store p.deref = y;
//   - x = p->f   and p->f = y use struct fields, exactly like Java fields;
//   - x = malloc becomes an allocation site;
//   - calls are direct (C has no virtual dispatch), so param/ret matching
//     carries context-sensitivity exactly as for Java.
//
// The lowering targets the frontend IR, so recursion collapsing, type
// levels, scheduling, sharing — the entire pipeline — apply unchanged.
package cfront

import (
	"fmt"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// DerefField is the collapsed pseudo-field used for pointer dereference.
// It is distinct from every struct field the translator allocates.
const DerefField = pag.ArrField // reuse field 0: C programs have no Java arrays

// Struct declares a C struct type with pointer-typed fields.
type Struct struct {
	Name   string
	Fields []string // field names; all fields are pointer-sized
}

// Local is a local variable (or parameter) of a function.
type Local struct {
	Name string
	// Struct, if >= 0, is the index of the struct this variable points
	// to (for p->f accesses); -1 for plain pointers/values.
	Struct int
}

// StmtKind discriminates C statements.
type StmtKind uint8

const (
	// CAssign is x = y.
	CAssign StmtKind = iota
	// CAddr is x = &y (y becomes address-taken).
	CAddr
	// CLoad is x = *p.
	CLoad
	// CStore is *p = y.
	CStore
	// CFieldLoad is x = p->f.
	CFieldLoad
	// CFieldStore is p->f = y.
	CFieldStore
	// CMalloc is x = malloc(...) — a fresh allocation site.
	CMalloc
	// CCall is x = f(args...) or f(args...).
	CCall
)

// Stmt is one C statement. Operands index the enclosing function's Locals.
type Stmt struct {
	Kind  StmtKind
	Dst   int    // CAssign/CAddr/CLoad/CFieldLoad/CMalloc/CCall (-1 = discard)
	Src   int    // CAssign/CAddr(src=&y's y)/CStore value/CFieldStore value
	Base  int    // CLoad/CStore pointer, CFieldLoad/CFieldStore base
	Field string // CFieldLoad/CFieldStore
	// Callee/Args for CCall.
	Callee int
	Args   []int
}

// Func is a C function.
type Func struct {
	Name   string
	Locals []Local
	Params []int // local slots receiving arguments
	Ret    int   // local slot returned, or -1
	Body   []Stmt
	// Application marks functions whose locals are queried in batch.
	Application bool
}

// Program is a whole C translation unit (calls pre-resolved, as in the
// paper's PAG construction).
type Program struct {
	Structs []Struct
	Funcs   []Func
}

// Translate lowers the C program onto the mini-Java frontend IR (and thence
// the PAG). The returned Translation maps C entities to frontend slots.
type Translation struct {
	IR *frontend.Program
	// LocalSlot[f][l] is the frontend local slot of C local l in func f.
	LocalSlot [][]int
	// AddrSlot[f][l] is the slot of the synthetic &l pointer, or -1 if l
	// is not address-taken.
	AddrSlot [][]int
	// FieldID maps "Struct.field" to the PAG field.
	FieldID map[string]pag.FieldID
}

// Translate validates and lowers prog.
func Translate(prog *Program) (*Translation, error) {
	tr := &Translation{
		IR:      &frontend.Program{},
		FieldID: map[string]pag.FieldID{},
	}

	// Types: 0 = "ptr" (the generic pointer/value type), 1 = "loc" (the
	// location-object type with the deref field), then one per struct.
	const tPtr, tLoc = pag.TypeID(0), pag.TypeID(1)
	tr.IR.Types = append(tr.IR.Types,
		frontend.Type{Name: "ptr", Ref: true},
		frontend.Type{Name: "loc", Ref: true, Fields: []frontend.Field{
			{Name: "deref", ID: DerefField, Type: tPtr},
		}},
	)
	nextField := pag.FieldID(1)
	structType := make([]pag.TypeID, len(prog.Structs))
	for si, st := range prog.Structs {
		tid := pag.TypeID(len(tr.IR.Types))
		ty := frontend.Type{Name: st.Name, Ref: true}
		for _, fn := range st.Fields {
			key := st.Name + "." + fn
			if _, dup := tr.FieldID[key]; dup {
				return nil, fmt.Errorf("cfront: struct %s: duplicate field %s", st.Name, fn)
			}
			tr.FieldID[key] = nextField
			ty.Fields = append(ty.Fields, frontend.Field{Name: fn, ID: nextField, Type: tPtr})
			nextField++
		}
		tr.IR.Types = append(tr.IR.Types, ty)
		structType[si] = tid
	}

	// Determine address-taken locals.
	addrTaken := make([][]bool, len(prog.Funcs))
	for fi := range prog.Funcs {
		f := &prog.Funcs[fi]
		addrTaken[fi] = make([]bool, len(f.Locals))
		for _, s := range f.Body {
			if s.Kind == CAddr {
				if s.Src < 0 || s.Src >= len(f.Locals) {
					return nil, fmt.Errorf("cfront: %s: &x of unknown local %d", f.Name, s.Src)
				}
				addrTaken[fi][s.Src] = true
			}
		}
	}

	// Build function skeletons: real locals, then synthetic &x pointers.
	tr.LocalSlot = make([][]int, len(prog.Funcs))
	tr.AddrSlot = make([][]int, len(prog.Funcs))
	for fi := range prog.Funcs {
		f := &prog.Funcs[fi]
		m := frontend.Method{Name: f.Name, Ret: -1, Application: f.Application}
		tr.LocalSlot[fi] = make([]int, len(f.Locals))
		tr.AddrSlot[fi] = make([]int, len(f.Locals))
		for li, l := range f.Locals {
			t := tPtr
			if l.Struct >= 0 {
				if l.Struct >= len(prog.Structs) {
					return nil, fmt.Errorf("cfront: %s: local %s has unknown struct %d", f.Name, l.Name, l.Struct)
				}
				t = structType[l.Struct]
			}
			tr.LocalSlot[fi][li] = len(m.Locals)
			m.Locals = append(m.Locals, frontend.LocalVar{Name: l.Name, Type: t})
			tr.AddrSlot[fi][li] = -1
		}
		for li := range f.Locals {
			if addrTaken[fi][li] {
				tr.AddrSlot[fi][li] = len(m.Locals)
				m.Locals = append(m.Locals, frontend.LocalVar{Name: "&" + f.Locals[li].Name, Type: tLoc})
			}
		}
		for _, p := range f.Params {
			if p < 0 || p >= len(f.Locals) {
				return nil, fmt.Errorf("cfront: %s: bad param slot %d", f.Name, p)
			}
			m.Params = append(m.Params, tr.LocalSlot[fi][p])
		}
		if f.Ret >= 0 {
			if f.Ret >= len(f.Locals) {
				return nil, fmt.Errorf("cfront: %s: bad ret slot %d", f.Name, f.Ret)
			}
			m.Ret = tr.LocalSlot[fi][f.Ret]
		}
		tr.IR.Methods = append(tr.IR.Methods, m)
	}

	// Lower bodies.
	for fi := range prog.Funcs {
		f := &prog.Funcs[fi]
		m := &tr.IR.Methods[fi]
		emit := func(s frontend.Stmt) { m.Body = append(m.Body, s) }
		local := func(l int) frontend.VarRef { return frontend.Local(tr.LocalSlot[fi][l]) }

		// Materialise the location objects of address-taken locals once,
		// at function entry (like C allocas). Address-taken parameters
		// additionally spill their incoming value into the location
		// object, since param edges write the direct slot.
		isParam := make(map[int]bool, len(f.Params))
		for _, p := range f.Params {
			isParam[p] = true
		}
		for li := range f.Locals {
			if slot := tr.AddrSlot[fi][li]; slot >= 0 {
				emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(slot), Type: tLoc})
				if isParam[li] {
					emit(frontend.Stmt{Kind: frontend.StStore, Base: frontend.Local(slot), Field: DerefField, Src: local(li)})
				}
			}
		}

		// readVar/writeVar route address-taken variables through their
		// location object so direct accesses and *p accesses agree.
		readVar := func(l int) frontend.VarRef {
			if slot := tr.AddrSlot[fi][l]; slot >= 0 {
				tmp := len(m.Locals)
				m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("$r%d", len(m.Locals)), Type: tPtr})
				emit(frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(tmp), Base: frontend.Local(slot), Field: DerefField})
				return frontend.Local(tmp)
			}
			return local(l)
		}
		writeVar := func(l int, src frontend.VarRef) {
			if slot := tr.AddrSlot[fi][l]; slot >= 0 {
				emit(frontend.Stmt{Kind: frontend.StStore, Base: frontend.Local(slot), Field: DerefField, Src: src})
				// Also refresh the direct slot: it is what ret edges
				// and param edges read.
				emit(frontend.Stmt{Kind: frontend.StAssign, Dst: local(l), Src: src})
				return
			}
			if src.Global || src.Index != tr.LocalSlot[fi][l] {
				emit(frontend.Stmt{Kind: frontend.StAssign, Dst: local(l), Src: src})
			}
		}
		// assignInto lowers "dst = <ref>" honouring address-taken dsts.
		checkLocal := func(l int, what string) error {
			if l < 0 || l >= len(f.Locals) {
				return fmt.Errorf("cfront: %s: %s references unknown local %d", f.Name, what, l)
			}
			return nil
		}

		for si, s := range f.Body {
			what := fmt.Sprintf("stmt %d", si)
			switch s.Kind {
			case CAssign:
				if err := firstErr(checkLocal(s.Dst, what), checkLocal(s.Src, what)); err != nil {
					return nil, err
				}
				writeVar(s.Dst, readVar(s.Src))
			case CAddr:
				if err := firstErr(checkLocal(s.Dst, what), checkLocal(s.Src, what)); err != nil {
					return nil, err
				}
				// x = &y: copy the constant pointer.
				writeVar(s.Dst, frontend.Local(tr.AddrSlot[fi][s.Src]))
			case CLoad:
				if err := firstErr(checkLocal(s.Dst, what), checkLocal(s.Base, what)); err != nil {
					return nil, err
				}
				p := readVar(s.Base)
				tmp := len(m.Locals)
				m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("$d%d", tmp), Type: tPtr})
				emit(frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(tmp), Base: p, Field: DerefField})
				writeVar(s.Dst, frontend.Local(tmp))
			case CStore:
				if err := firstErr(checkLocal(s.Base, what), checkLocal(s.Src, what)); err != nil {
					return nil, err
				}
				emit(frontend.Stmt{Kind: frontend.StStore, Base: readVar(s.Base), Field: DerefField, Src: readVar(s.Src)})
			case CFieldLoad, CFieldStore:
				base := s.Base
				if err := checkLocal(base, what); err != nil {
					return nil, err
				}
				st := f.Locals[base].Struct
				if st < 0 {
					return nil, fmt.Errorf("cfront: %s: %s: field access on non-struct pointer %s", f.Name, what, f.Locals[base].Name)
				}
				fid, ok := tr.FieldID[prog.Structs[st].Name+"."+s.Field]
				if !ok {
					return nil, fmt.Errorf("cfront: %s: %s: struct %s has no field %s", f.Name, what, prog.Structs[st].Name, s.Field)
				}
				if s.Kind == CFieldLoad {
					if err := checkLocal(s.Dst, what); err != nil {
						return nil, err
					}
					tmp := len(m.Locals)
					m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("$f%d", tmp), Type: tPtr})
					emit(frontend.Stmt{Kind: frontend.StLoad, Dst: frontend.Local(tmp), Base: readVar(base), Field: fid})
					writeVar(s.Dst, frontend.Local(tmp))
				} else {
					if err := checkLocal(s.Src, what); err != nil {
						return nil, err
					}
					emit(frontend.Stmt{Kind: frontend.StStore, Base: readVar(base), Field: fid, Src: readVar(s.Src)})
				}
			case CMalloc:
				if err := checkLocal(s.Dst, what); err != nil {
					return nil, err
				}
				t := tPtr
				if st := f.Locals[s.Dst].Struct; st >= 0 {
					t = structType[st]
				}
				tmp := len(m.Locals)
				m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("$m%d", tmp), Type: t})
				emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(tmp), Type: t})
				writeVar(s.Dst, frontend.Local(tmp))
			case CCall:
				if s.Callee < 0 || s.Callee >= len(prog.Funcs) {
					return nil, fmt.Errorf("cfront: %s: %s: unknown callee %d", f.Name, what, s.Callee)
				}
				callee := &prog.Funcs[s.Callee]
				if len(s.Args) != len(callee.Params) {
					return nil, fmt.Errorf("cfront: %s: %s: %d args for %d params of %s",
						f.Name, what, len(s.Args), len(callee.Params), callee.Name)
				}
				var args []frontend.VarRef
				for _, a := range s.Args {
					if err := checkLocal(a, what); err != nil {
						return nil, err
					}
					args = append(args, readVar(a))
				}
				if s.Dst >= 0 {
					if err := checkLocal(s.Dst, what); err != nil {
						return nil, err
					}
					if callee.Ret < 0 {
						return nil, fmt.Errorf("cfront: %s: %s: callee %s returns nothing", f.Name, what, callee.Name)
					}
					tmp := len(m.Locals)
					m.Locals = append(m.Locals, frontend.LocalVar{Name: fmt.Sprintf("$c%d", tmp), Type: tPtr})
					emit(frontend.Stmt{Kind: frontend.StCall, Callee: s.Callee, Args: args, Dst: frontend.Local(tmp)})
					writeVar(s.Dst, frontend.Local(tmp))
				} else {
					emit(frontend.Stmt{Kind: frontend.StCall, Callee: s.Callee, Args: args, Dst: frontend.NoVar})
				}
			default:
				return nil, fmt.Errorf("cfront: %s: %s: unknown statement kind %d", f.Name, what, s.Kind)
			}
		}
	}

	if err := tr.IR.Validate(); err != nil {
		return nil, fmt.Errorf("cfront: internal lowering error: %w", err)
	}
	return tr, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
