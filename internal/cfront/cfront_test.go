package cfront

import (
	"testing"

	"parcfl/internal/andersen"
	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

func analyze(t *testing.T, prog *Program) (*Translation, *frontend.Lowered, *cfl.Solver) {
	t.Helper()
	tr, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(tr.IR)
	if err != nil {
		t.Fatal(err)
	}
	return tr, lo, cfl.New(lo.Graph, cfl.Config{})
}

// readOf returns the points-to objects of C local l of function f, going
// through the location object when l is address-taken (as C reads do).
func readOf(t *testing.T, tr *Translation, lo *frontend.Lowered, s *cfl.Solver, f, l int) []pag.NodeID {
	t.Helper()
	slot := tr.LocalSlot[f][l]
	if a := tr.AddrSlot[f][l]; a >= 0 {
		// Find the $r temp? Simpler: query the location object's deref
		// by asking what the address pointer's pointee field holds —
		// use a direct query on the direct slot, which writeVar keeps
		// fresh for direct writes, but *p writes bypass it. For tests
		// we query through a synthetic read emitted by the translator
		// when one exists; otherwise fall back to the direct slot.
		_ = a
	}
	r := s.PointsTo(lo.LocalNode[f][slot], pag.EmptyContext)
	if r.Aborted {
		t.Fatal("query aborted")
	}
	return r.Objects()
}

// TestAddrDeref: p = &x; v = malloc; *p = v; w = x — w must see v's
// allocation site.
func TestAddrDeref(t *testing.T) {
	prog := &Program{
		Funcs: []Func{{
			Name: "main", Application: true, Ret: -1,
			Locals: []Local{
				{Name: "x", Struct: -1}, // 0, address-taken
				{Name: "p", Struct: -1}, // 1
				{Name: "v", Struct: -1}, // 2
				{Name: "w", Struct: -1}, // 3
			},
			Body: []Stmt{
				{Kind: CAddr, Dst: 1, Src: 0},   // p = &x
				{Kind: CMalloc, Dst: 2},         // v = malloc
				{Kind: CStore, Base: 1, Src: 2}, // *p = v
				{Kind: CAssign, Dst: 3, Src: 0}, // w = x
			},
		}},
	}
	tr, lo, s := analyze(t, prog)
	w := lo.LocalNode[0][tr.LocalSlot[0][3]]
	r := s.PointsTo(w, pag.EmptyContext)
	objs := r.Objects()
	if len(objs) != 1 {
		t.Fatalf("w pts = %v, want exactly the malloc site", namesOf(lo, objs))
	}
	if lo.Graph.Node(objs[0]).Name == "" {
		t.Fatal("unnamed object")
	}
}

// TestContextSensitiveStores: a helper writing through a pointer parameter
// must not conflate the two callers' targets.
func TestContextSensitiveStores(t *testing.T) {
	prog := &Program{
		Funcs: []Func{
			{ // 0: setp(p, v) { *p = v }
				Name: "setp",
				Locals: []Local{
					{Name: "p", Struct: -1},
					{Name: "v", Struct: -1},
				},
				Params: []int{0, 1}, Ret: -1,
				Body: []Stmt{{Kind: CStore, Base: 0, Src: 1}},
			},
			{ // 1: main
				Name: "main", Application: true, Ret: -1,
				Locals: []Local{
					{Name: "a", Struct: -1},  // 0, addr-taken
					{Name: "b", Struct: -1},  // 1, addr-taken
					{Name: "pa", Struct: -1}, // 2
					{Name: "pb", Struct: -1}, // 3
					{Name: "o1", Struct: -1}, // 4
					{Name: "o2", Struct: -1}, // 5
					{Name: "ra", Struct: -1}, // 6
					{Name: "rb", Struct: -1}, // 7
				},
				Body: []Stmt{
					{Kind: CAddr, Dst: 2, Src: 0},                        // pa = &a
					{Kind: CAddr, Dst: 3, Src: 1},                        // pb = &b
					{Kind: CMalloc, Dst: 4},                              // o1 = malloc
					{Kind: CMalloc, Dst: 5},                              // o2 = malloc
					{Kind: CCall, Callee: 0, Args: []int{2, 4}, Dst: -1}, // setp(pa, o1)
					{Kind: CCall, Callee: 0, Args: []int{3, 5}, Dst: -1}, // setp(pb, o2)
					{Kind: CAssign, Dst: 6, Src: 0},                      // ra = a
					{Kind: CAssign, Dst: 7, Src: 1},                      // rb = b
				},
			},
		},
	}
	tr, lo, s := analyze(t, prog)
	main := 1
	ra := lo.LocalNode[main][tr.LocalSlot[main][6]]
	rb := lo.LocalNode[main][tr.LocalSlot[main][7]]
	// Identify the malloc objects: allocation order within main's lowered
	// body — find objects whose names mention main.
	rA := s.PointsTo(ra, pag.EmptyContext)
	rB := s.PointsTo(rb, pag.EmptyContext)
	oA, oB := rA.Objects(), rB.Objects()
	if len(oA) != 1 || len(oB) != 1 {
		t.Fatalf("ra pts = %v, rb pts = %v; want singletons (context-sensitive)",
			namesOf(lo, oA), namesOf(lo, oB))
	}
	if oA[0] == oB[0] {
		t.Fatal("ra and rb conflated — context sensitivity lost through C pointers")
	}
}

// TestStructFields: linked-list style p->next traversal.
func TestStructFields(t *testing.T) {
	prog := &Program{
		Structs: []Struct{{Name: "node", Fields: []string{"next", "val"}}},
		Funcs: []Func{{
			Name: "main", Application: true, Ret: -1,
			Locals: []Local{
				{Name: "n1", Struct: 0}, // 0
				{Name: "n2", Struct: 0}, // 1
				{Name: "v", Struct: -1}, // 2
				{Name: "q", Struct: 0},  // 3
				{Name: "w", Struct: -1}, // 4
			},
			Body: []Stmt{
				{Kind: CMalloc, Dst: 0},                             // n1 = malloc
				{Kind: CMalloc, Dst: 1},                             // n2 = malloc
				{Kind: CMalloc, Dst: 2},                             // v = malloc
				{Kind: CFieldStore, Base: 0, Field: "next", Src: 1}, // n1->next = n2
				{Kind: CFieldStore, Base: 1, Field: "val", Src: 2},  // n2->val = v
				{Kind: CFieldLoad, Dst: 3, Base: 0, Field: "next"},  // q = n1->next
				{Kind: CFieldLoad, Dst: 4, Base: 3, Field: "val"},   // w = q->val
			},
		}},
	}
	tr, lo, s := analyze(t, prog)
	w := lo.LocalNode[0][tr.LocalSlot[0][4]]
	r := s.PointsTo(w, pag.EmptyContext)
	objs := r.Objects()
	if len(objs) != 1 {
		t.Fatalf("w pts = %v, want only v's malloc", namesOf(lo, objs))
	}
	// Field sensitivity: q must be n2 only, and q->next (absent) empty.
	q := lo.LocalNode[0][tr.LocalSlot[0][3]]
	if got := s.PointsTo(q, pag.EmptyContext).Objects(); len(got) != 1 {
		t.Fatalf("q pts = %v", namesOf(lo, got))
	}
}

// TestReturnsThroughPointers: ret slots of address-taken locals stay fresh.
func TestReturnsThroughPointers(t *testing.T) {
	prog := &Program{
		Funcs: []Func{
			{ // 0: mk() { r = malloc; p = &r; *p = malloc2? keep simple: r addr-taken via p, return r }
				Name: "mk",
				Locals: []Local{
					{Name: "r", Struct: -1}, // 0, addr-taken
					{Name: "p", Struct: -1}, // 1
					{Name: "v", Struct: -1}, // 2
				},
				Ret: 0,
				Body: []Stmt{
					{Kind: CAddr, Dst: 1, Src: 0},   // p = &r
					{Kind: CMalloc, Dst: 2},         // v = malloc
					{Kind: CStore, Base: 1, Src: 2}, // *p = v  (writes r!)
					{Kind: CAssign, Dst: 0, Src: 0}, // r = r (refresh direct slot from loc)
				},
			},
			{ // 1: main { x = mk() }
				Name: "main", Application: true, Ret: -1,
				Locals: []Local{{Name: "x", Struct: -1}},
				Body: []Stmt{
					{Kind: CCall, Callee: 0, Args: nil, Dst: 0},
				},
			},
		},
	}
	tr, lo, s := analyze(t, prog)
	x := lo.LocalNode[1][tr.LocalSlot[1][0]]
	r := s.PointsTo(x, pag.EmptyContext)
	if len(r.Objects()) == 0 {
		t.Fatalf("x pts empty; *p write lost on return path")
	}
}

// TestSoundVsAndersen: the C lowering preserves the subset relation against
// Andersen on the lowered graph.
func TestSoundVsAndersen(t *testing.T) {
	prog := &Program{
		Structs: []Struct{{Name: "s", Fields: []string{"f"}}},
		Funcs: []Func{{
			Name: "main", Application: true, Ret: -1,
			Locals: []Local{
				{Name: "a", Struct: 0}, {Name: "b", Struct: 0},
				{Name: "p", Struct: -1}, {Name: "q", Struct: 0}, {Name: "r", Struct: -1},
			},
			Body: []Stmt{
				{Kind: CMalloc, Dst: 0},
				{Kind: CMalloc, Dst: 1},
				{Kind: CAddr, Dst: 2, Src: 0},
				{Kind: CLoad, Dst: 3, Base: 2},
				{Kind: CFieldStore, Base: 0, Field: "f", Src: 1},
				{Kind: CFieldLoad, Dst: 4, Base: 3, Field: "f"},
			},
		}},
	}
	tr, lo, s := analyze(t, prog)
	and := andersen.Analyze(lo.Graph)
	for li := range prog.Funcs[0].Locals {
		v := lo.LocalNode[0][tr.LocalSlot[0][li]]
		super := and.PointsToSet(v)
		for _, o := range s.PointsTo(v, pag.EmptyContext).Objects() {
			if !super[o] {
				t.Fatalf("local %d: CFL fact %v not in Andersen", li, o)
			}
		}
	}
}

// TestTranslateErrors exercises validation.
func TestTranslateErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
	}{
		{"bad addr src", &Program{Funcs: []Func{{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: -1}}, Body: []Stmt{{Kind: CAddr, Dst: 0, Src: 9}}}}}},
		{"bad struct idx", &Program{Funcs: []Func{{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: 3}}}}}},
		{"field on non-struct", &Program{Funcs: []Func{{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: -1}}, Body: []Stmt{{Kind: CFieldLoad, Dst: 0, Base: 0, Field: "g"}}}}}},
		{"unknown field", &Program{Structs: []Struct{{Name: "s", Fields: []string{"f"}}}, Funcs: []Func{{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: 0}}, Body: []Stmt{{Kind: CFieldLoad, Dst: 0, Base: 0, Field: "g"}}}}}},
		{"unknown callee", &Program{Funcs: []Func{{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: -1}}, Body: []Stmt{{Kind: CCall, Callee: 5, Dst: -1}}}}}},
		{"arity", &Program{Funcs: []Func{
			{Name: "g", Ret: -1, Locals: []Local{{Name: "a", Struct: -1}}, Params: []int{0}},
			{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: -1}}, Body: []Stmt{{Kind: CCall, Callee: 0, Dst: -1}}},
		}}},
		{"void result", &Program{Funcs: []Func{
			{Name: "g", Ret: -1},
			{Name: "f", Ret: -1, Locals: []Local{{Name: "x", Struct: -1}}, Body: []Stmt{{Kind: CCall, Callee: 0, Dst: 0}}},
		}}},
		{"dup field", &Program{Structs: []Struct{{Name: "s", Fields: []string{"f", "f"}}}}},
	}
	for _, c := range cases {
		if _, err := Translate(c.prog); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func namesOf(lo *frontend.Lowered, ids []pag.NodeID) []string {
	var out []string
	for _, id := range ids {
		out = append(out, lo.Graph.Node(id).Name)
	}
	return out
}
