// Package intraquery implements the intra-query parallelisation strategy
// the paper considers and rejects (Section III): "To exploit intra-query
// parallelism, we need to partition and distribute the work performed in
// computing the points-to set of a single query among different threads.
// Such parallelism is irregular and hard to achieve with the right
// granularity. In addition, considerable synchronisation overhead ... would
// likely offset the performance benefit achieved."
//
// This package exists to reproduce that argument empirically. It answers a
// single query by fanning its alias expansions out to worker goroutines:
//
//  1. a sequential skeleton pass traverses the direct (assign/param/ret)
//     edges, collecting the heap expansions the query needs;
//  2. each expansion's sub-queries (points-to of the load base, flows-to of
//     its objects) run as independent parallel solver calls;
//  3. the discovered continuation variables feed the next round, with a
//     barrier between rounds.
//
// The results are exactly the standard solver's; the performance is not —
// sub-queries cannot share memoised computations across goroutines, and the
// per-round barriers serialise the irregular tail. The accompanying
// benchmark quantifies the loss, empirically justifying the paper's choice
// of inter-query parallelism.
package intraquery

import (
	"sync"

	"parcfl/internal/cfl"
	"parcfl/internal/pag"
)

// Config tunes the intra-query engine.
type Config struct {
	// Threads is the fan-out width (0 = 4).
	Threads int
	// Budget bounds each sub-query (0 = unbounded).
	Budget int
}

// Result mirrors the sequential solver's result for a points-to query.
type Result struct {
	Objects []pag.NodeID
	// Rounds is the number of barrier-separated expansion rounds.
	Rounds int
	// SubQueries is the number of parallel solver calls issued.
	SubQueries int
}

// expansion is one heap demand discovered by the skeleton pass: a load
// x = p.f reached at context c.
type expansion struct {
	base  pag.NodeID
	field pag.FieldID
	ctx   pag.Context
}

// PointsTo answers pts(v, ctx) with intra-query parallelism.
func PointsTo(g *pag.Graph, v pag.NodeID, ctx pag.Context, cfg Config) Result {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 4
	}

	var res Result
	objects := map[pag.NodeID]bool{}
	visited := map[pag.NodeCtx]bool{}
	work := []pag.NodeCtx{{Node: v, Ctx: ctx}}

	for len(work) > 0 {
		res.Rounds++
		// Phase 1 (sequential skeleton): drain direct edges, collect
		// heap expansions.
		var demands []expansion
		for len(work) > 0 {
			it := work[len(work)-1]
			work = work[:len(work)-1]
			if visited[it] {
				continue
			}
			visited[it] = true
			for _, he := range g.In(it.Node) {
				switch he.Kind {
				case pag.EdgeNew:
					objects[he.Other] = true
				case pag.EdgeAssignLocal:
					work = append(work, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx})
				case pag.EdgeAssignGlobal:
					work = append(work, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext})
				case pag.EdgeParam:
					i := pag.CallSiteID(he.Label)
					if it.Ctx.Empty() {
						work = append(work, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext})
					} else if it.Ctx.Top() == i {
						work = append(work, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.Pop()})
					}
				case pag.EdgeRet:
					work = append(work, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.Push(pag.CallSiteID(he.Label))})
				case pag.EdgeLoad:
					demands = append(demands, expansion{base: he.Other, field: pag.FieldID(he.Label), ctx: it.Ctx})
				}
			}
		}
		if len(demands) == 0 {
			break
		}

		// Phase 2 (parallel fan-out with a barrier): resolve each
		// expansion with independent sub-queries. Each goroutine builds
		// its own solvers — no shared memoisation, which is precisely
		// the strategy's weakness.
		type contribution struct {
			targets []pag.NodeCtx
			subs    int
		}
		out := make([]contribution, len(demands))
		var wg sync.WaitGroup
		sem := make(chan struct{}, threads)
		for di := range demands {
			wg.Add(1)
			go func(di int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				d := demands[di]
				solver := cfl.New(g, cfl.Config{Budget: cfg.Budget})
				pts := solver.PointsTo(d.base, d.ctx)
				out[di].subs++
				seen := map[pag.NodeCtx]bool{}
				for _, oc := range pts.PointsTo {
					fls := solver.FlowsTo(oc.Node, oc.Ctx)
					out[di].subs++
					for _, vc := range fls.PointsTo {
						for _, she := range g.In(vc.Node) {
							if she.Kind == pag.EdgeStore && pag.FieldID(she.Label) == d.field {
								t := pag.NodeCtx{Node: she.Other, Ctx: vc.Ctx}
								if !seen[t] {
									seen[t] = true
									out[di].targets = append(out[di].targets, t)
								}
							}
						}
					}
				}
			}(di)
		}
		wg.Wait()
		for _, c := range out {
			res.SubQueries += c.subs
			for _, t := range c.targets {
				if !visited[t] {
					work = append(work, t)
				}
			}
		}
	}

	for o := range objects {
		res.Objects = append(res.Objects, o)
	}
	return res
}
