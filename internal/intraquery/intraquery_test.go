package intraquery

import (
	"sort"
	"testing"
	"time"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
)

func sorted(ids []pag.NodeID) []pag.NodeID {
	out := append([]pag.NodeID{}, ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestMatchesSequentialFig2: intra-query parallel answers equal the
// standard solver on the paper's example.
func TestMatchesSequentialFig2(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	seq := cfl.New(f.Lowered.Graph, cfl.Config{})
	for _, v := range f.Lowered.AppQueryVars {
		want := sorted(seq.PointsTo(v, pag.EmptyContext).Objects())
		got := sorted(PointsTo(f.Lowered.Graph, v, pag.EmptyContext, Config{Threads: 4}).Objects)
		if len(got) != len(want) {
			t.Fatalf("%s: %v vs %v", f.Lowered.Graph.Node(v).Name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: %v vs %v", f.Lowered.Graph.Node(v).Name, got, want)
			}
		}
	}
}

// TestMatchesSequentialRandom: same property on random programs.
func TestMatchesSequentialRandom(t *testing.T) {
	for seed := int64(700); seed < 720; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		seq := cfl.New(lo.Graph, cfl.Config{})
		for _, v := range lo.AppQueryVars {
			want := sorted(seq.PointsTo(v, pag.EmptyContext).Objects())
			got := sorted(PointsTo(lo.Graph, v, pag.EmptyContext, Config{Threads: 3}).Objects)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %v vs %v", seed, lo.Graph.Node(v).Name, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: mismatch", seed, lo.Graph.Node(v).Name)
				}
			}
		}
	}
}

// TestSlowerThanInterQuery reproduces the paper's Section III argument: on
// a benchmark-shaped program, answering queries with intra-query fan-out is
// slower than the plain sequential solver (which the inter-query modes
// build on), because sub-queries cannot share memoised work.
func TestSlowerThanInterQuery(t *testing.T) {
	pr, err := javagen.PresetByName("_209_db")
	if err != nil {
		t.Fatal(err)
	}
	prg, err := javagen.Generate(pr.Params(0.005))
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	queries := lo.AppQueryVars
	if len(queries) > 40 {
		queries = queries[:40]
	}

	seqStart := time.Now()
	seq := cfl.New(lo.Graph, cfl.Config{Budget: 75000})
	for _, v := range queries {
		seq.PointsTo(v, pag.EmptyContext)
	}
	seqTime := time.Since(seqStart)

	intraStart := time.Now()
	for _, v := range queries {
		PointsTo(lo.Graph, v, pag.EmptyContext, Config{Threads: 4, Budget: 75000})
	}
	intraTime := time.Since(intraStart)

	t.Logf("sequential: %v, intra-query x4: %v (ratio %.1fx)",
		seqTime, intraTime, float64(intraTime)/float64(seqTime))
	if intraTime < seqTime {
		t.Log("note: intra-query happened to win on this host/benchmark; the paper's claim is about the common case")
	}
}

func TestRoundsAndSubQueries(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	r := PointsTo(f.Lowered.Graph, f.S1, pag.EmptyContext, Config{})
	if r.Rounds < 2 {
		t.Fatalf("s1 requires heap rounds, got %d", r.Rounds)
	}
	if r.SubQueries == 0 {
		t.Fatal("no sub-queries issued")
	}
}
