// Package kernel is the offline PAG preprocessing pass behind the solver's
// dense traversal mode ("kernel mode").
//
// The demand-driven walk of internal/cfl is, by construction, a
// node-at-a-time traversal over pointer-heavy adjacency structures: every
// visited (node, context) item costs a map insertion keyed by a composite
// struct, and every edge expansion re-scans a mixed-kind adjacency slice
// behind two levels of indirection. On the graphs the paper's benchmarks
// generate, nearly all solver time goes into that machinery rather than into
// the CFL matching itself — the same observation that drives the
// matrix/strong-component formulations of whole-program solvers (PAGMatrix's
// SC reduction; the component-parallel framing of on-demand data-flow
// analysis).
//
// Build collapses strongly connected components of the direct relation
// (assignl/assigng/param/ret — Eq. (5) of the paper, computed with
// internal/scc), renumbers nodes into dense kernel IDs with SCC members
// contiguous, and flattens adjacency into CSR-style arrays partitioned by
// edge kind: the direct edges each traversal direction walks, the load/store
// edges the alias expansion matches (per node and, program-wide, per field).
// jmp edges deliberately stay out of the static form: they are
// epoch-mutable runtime state owned by the share store, and a frozen copy
// would go stale on the first recorded edge.
//
// # The collapsed↔original ID contract
//
// Kernel IDs exist only inside a traversal's visited/result bitsets; every
// fact, witness step, profile entry, share key and cache key carries
// original pag.NodeIDs, obtained through the Orig/Dense mapping at the
// set-membership boundary. Consumers (witness reconstruction, autopsy heat
// profiles, ExplainFlows, the HTTP API) therefore see original nodes
// without any translation of their own — the mapping is total, bijective,
// and frozen at Build time. Component metadata (CompOf/Members/Rep) names
// the collapsed structure for diagnostics and for sizing: members of one
// component hold contiguous kernel IDs, so the bitsets a cyclic traversal
// touches share cache lines instead of hashing to scattered buckets.
package kernel

import (
	"encoding/gob"
	"fmt"
	"io"

	"parcfl/internal/bitset"
	"parcfl/internal/pag"
	"parcfl/internal/scc"
)

// Bitset is the dense visited/result-set primitive of kernel mode, shared
// with the Andersen solver (see internal/bitset). The zero value is an
// empty set that grows on demand.
type Bitset = bitset.Bitset

// Prep is the preprocessed, immutable form of one frozen PAG: the SCC
// collapse of its direct relation, the dense renumbering derived from it,
// and CSR adjacency arrays per edge kind. A Prep is read-only after Build
// and safe for any number of concurrent traversals; it is valid only for
// the exact graph it was built from (see Matches).
type Prep struct {
	numNodes int
	numEdges int

	// comp maps an original node to its component in the SCC collapse of
	// the direct relation; components are numbered in reverse topological
	// order by internal/scc (every direct successor has a smaller index).
	comp    []int32
	numComp int
	// members/memOff list each component's original nodes (CSR, ascending
	// original ID); rep is the first member, the component representative.
	members []pag.NodeID
	memOff  []int32
	rep     []pag.NodeID

	// dense/orig is the bijective renumbering: components laid out in
	// descending component index — the backward (points-to) direction
	// traverses direct predecessors, which have larger component indexes,
	// so the region a query's bitsets span starts near its root's ID —
	// with each component's members contiguous.
	dense []int32
	orig  []pag.NodeID

	// CSR adjacency, indexed by kernel ID, each row preserving the original
	// graph's per-node edge order (which is what keeps kernel-mode
	// traversal byte-identical to the node-at-a-time walk):
	//   dirIn/dirOut    — new + direct edges (everything expandDirect walks)
	//   loadIn/storeOut — the heap-access edges an alias expansion starts at
	//   storeIn/loadOut — the heap-access edges it matches against
	dirIn, dirOut    []pag.HalfEdge
	dirInOff         []int32
	dirOutOff        []int32
	loadIn, storeOut []pag.HalfEdge
	loadInOff        []int32
	storeOutOff      []int32
	storeIn, loadOut []pag.HalfEdge
	storeInOff       []int32
	loadOutOff       []int32

	// Program-wide per-field site CSR (the StoresOf/LoadsOf indexes in
	// dense form), rows in the graph's frozen (sorted) site order.
	fieldStores   []pag.StoreSite
	storeFieldOff []int32
	fieldLoads    []pag.LoadSite
	loadFieldOff  []int32

	// hasLoadIn/hasStoreOut answer hasHeapEdges in O(1): bit d set iff the
	// node with kernel ID d has an incoming load / outgoing store edge.
	hasLoadIn   Bitset
	hasStoreOut Bitset
}

// Build preprocesses a frozen graph. The pass is deterministic: the same
// graph always yields the same Prep (which is what lets snapshots persist
// it and equivalence tests compare against it).
func Build(g *pag.Graph) *Prep {
	if !g.Frozen() {
		panic("kernel: Build over unfrozen graph")
	}
	n := g.NumNodes()
	p := &Prep{numNodes: n, numEdges: g.NumEdges()}

	// SCC collapse over the direct relation (out-edges restricted to
	// EdgeKind.IsDirect).
	direct := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, he := range g.Out(pag.NodeID(v)) {
			if he.Kind.IsDirect() {
				direct[v] = append(direct[v], int(he.Other))
			}
		}
	}
	comp, numComp := scc.Compute(n, func(v int) []int { return direct[v] })
	p.numComp = numComp
	p.comp = make([]int32, n)
	for v, c := range comp {
		p.comp[v] = int32(c)
	}

	// Members CSR: counting sort by component, ascending original ID within
	// each (range over v ascending preserves it).
	p.memOff = make([]int32, numComp+1)
	for _, c := range comp {
		p.memOff[c+1]++
	}
	for c := 0; c < numComp; c++ {
		p.memOff[c+1] += p.memOff[c]
	}
	p.members = make([]pag.NodeID, n)
	fill := make([]int32, numComp)
	for v := 0; v < n; v++ {
		c := comp[v]
		p.members[p.memOff[c]+fill[c]] = pag.NodeID(v)
		fill[c]++
	}
	p.rep = make([]pag.NodeID, numComp)
	for c := 0; c < numComp; c++ {
		p.rep[c] = p.members[p.memOff[c]]
	}

	// Dense renumbering: components in descending index, members contiguous.
	p.dense = make([]int32, n)
	p.orig = make([]pag.NodeID, n)
	next := int32(0)
	for c := numComp - 1; c >= 0; c-- {
		for _, v := range p.Members(c) {
			p.dense[v] = next
			p.orig[next] = v
			next++
		}
	}

	// CSR adjacency per kind, rows indexed by kernel ID.
	p.dirIn, p.dirInOff = buildCSR(p, g.In, func(k pag.EdgeKind) bool { return k != pag.EdgeLoad && k != pag.EdgeStore })
	p.dirOut, p.dirOutOff = buildCSR(p, g.Out, func(k pag.EdgeKind) bool { return k != pag.EdgeLoad && k != pag.EdgeStore })
	p.loadIn, p.loadInOff = buildCSR(p, g.In, func(k pag.EdgeKind) bool { return k == pag.EdgeLoad })
	p.storeOut, p.storeOutOff = buildCSR(p, g.Out, func(k pag.EdgeKind) bool { return k == pag.EdgeStore })
	p.storeIn, p.storeInOff = buildCSR(p, g.In, func(k pag.EdgeKind) bool { return k == pag.EdgeStore })
	p.loadOut, p.loadOutOff = buildCSR(p, g.Out, func(k pag.EdgeKind) bool { return k == pag.EdgeLoad })

	for d := 0; d < n; d++ {
		if p.loadInOff[d+1] > p.loadInOff[d] {
			p.hasLoadIn.Set(d)
		}
		if p.storeOutOff[d+1] > p.storeOutOff[d] {
			p.hasStoreOut.Set(d)
		}
	}

	// Per-field site CSR over field IDs 0..fieldMax.
	fields := g.Fields()
	maxF := pag.FieldID(0)
	for _, f := range fields {
		if f > maxF {
			maxF = f
		}
	}
	p.storeFieldOff = make([]int32, int(maxF)+2)
	p.loadFieldOff = make([]int32, int(maxF)+2)
	for f := pag.FieldID(0); f <= maxF; f++ {
		p.fieldStores = append(p.fieldStores, g.StoresOf(f)...)
		p.storeFieldOff[f+1] = int32(len(p.fieldStores))
		p.fieldLoads = append(p.fieldLoads, g.LoadsOf(f)...)
		p.loadFieldOff[f+1] = int32(len(p.fieldLoads))
	}
	return p
}

// buildCSR flattens the kept edges of every node into one slice with
// per-kernel-ID row offsets, preserving per-node edge order.
func buildCSR(p *Prep, adj func(pag.NodeID) []pag.HalfEdge, keep func(pag.EdgeKind) bool) ([]pag.HalfEdge, []int32) {
	off := make([]int32, p.numNodes+1)
	total := 0
	for d := 0; d < p.numNodes; d++ {
		for _, he := range adj(p.orig[d]) {
			if keep(he.Kind) {
				total++
			}
		}
		off[d+1] = int32(total)
	}
	flat := make([]pag.HalfEdge, 0, total)
	for d := 0; d < p.numNodes; d++ {
		for _, he := range adj(p.orig[d]) {
			if keep(he.Kind) {
				flat = append(flat, he)
			}
		}
	}
	return flat, off
}

// NumNodes returns the node count of the graph the Prep was built from.
func (p *Prep) NumNodes() int { return p.numNodes }

// NumEdges returns the edge count of the graph the Prep was built from.
func (p *Prep) NumEdges() int { return p.numEdges }

// NumComps returns the number of components in the direct-relation collapse.
func (p *Prep) NumComps() int { return p.numComp }

// CompOf returns the component index of original node v.
func (p *Prep) CompOf(v pag.NodeID) int { return int(p.comp[v]) }

// Members returns component c's original nodes, ascending. Read-only.
func (p *Prep) Members(c int) []pag.NodeID {
	return p.members[p.memOff[c]:p.memOff[c+1]]
}

// Rep returns component c's representative (its lowest original node ID).
func (p *Prep) Rep(c int) pag.NodeID { return p.rep[c] }

// Dense maps an original node ID to its kernel ID.
func (p *Prep) Dense(v pag.NodeID) int { return int(p.dense[v]) }

// Orig maps a kernel ID back to the original node ID (the inverse of Dense).
func (p *Prep) Orig(d int) pag.NodeID { return p.orig[d] }

// DirIn returns original node v's incoming new/direct edges (everything the
// backward expansion walks), in original adjacency order. Read-only.
func (p *Prep) DirIn(v pag.NodeID) []pag.HalfEdge {
	d := p.dense[v]
	return p.dirIn[p.dirInOff[d]:p.dirInOff[d+1]]
}

// DirOut returns v's outgoing new/direct edges, in original adjacency order.
func (p *Prep) DirOut(v pag.NodeID) []pag.HalfEdge {
	d := p.dense[v]
	return p.dirOut[p.dirOutOff[d]:p.dirOutOff[d+1]]
}

// LoadIn returns v's incoming load edges (Other = base, Label = field).
func (p *Prep) LoadIn(v pag.NodeID) []pag.HalfEdge {
	d := p.dense[v]
	return p.loadIn[p.loadInOff[d]:p.loadInOff[d+1]]
}

// StoreOut returns v's outgoing store edges (Other = base, Label = field).
func (p *Prep) StoreOut(v pag.NodeID) []pag.HalfEdge {
	d := p.dense[v]
	return p.storeOut[p.storeOutOff[d]:p.storeOutOff[d+1]]
}

// StoreIn returns v's incoming store edges (Other = stored value).
func (p *Prep) StoreIn(v pag.NodeID) []pag.HalfEdge {
	d := p.dense[v]
	return p.storeIn[p.storeInOff[d]:p.storeInOff[d+1]]
}

// LoadOut returns v's outgoing load edges (Other = loaded-into variable).
func (p *Prep) LoadOut(v pag.NodeID) []pag.HalfEdge {
	d := p.dense[v]
	return p.loadOut[p.loadOutOff[d]:p.loadOutOff[d+1]]
}

// HasLoadIn reports whether v has any incoming load edge (the backward
// hasHeapEdges test), in O(1).
func (p *Prep) HasLoadIn(v pag.NodeID) bool { return p.hasLoadIn.Has(int(p.dense[v])) }

// HasStoreOut reports whether v has any outgoing store edge (the forward
// hasHeapEdges test), in O(1).
func (p *Prep) HasStoreOut(v pag.NodeID) bool { return p.hasStoreOut.Has(int(p.dense[v])) }

// StoresOf returns every store site of field f, program-wide, in the
// graph's frozen site order.
func (p *Prep) StoresOf(f pag.FieldID) []pag.StoreSite {
	if int(f)+1 >= len(p.storeFieldOff) {
		return nil
	}
	return p.fieldStores[p.storeFieldOff[f]:p.storeFieldOff[f+1]]
}

// LoadsOf returns every load site of field f, program-wide.
func (p *Prep) LoadsOf(f pag.FieldID) []pag.LoadSite {
	if int(f)+1 >= len(p.loadFieldOff) {
		return nil
	}
	return p.fieldLoads[p.loadFieldOff[f]:p.loadFieldOff[f+1]]
}

// Matches verifies the Prep was built from a graph shaped like g (node and
// edge counts). It cannot prove edge-level identity cheaply; callers that
// load a Prep from a snapshot pair it with the graph from the same file.
func (p *Prep) Matches(g *pag.Graph) error {
	if p.numNodes != g.NumNodes() || p.numEdges != g.NumEdges() {
		return fmt.Errorf("kernel: prep built for %d nodes/%d edges, graph has %d/%d",
			p.numNodes, p.numEdges, g.NumNodes(), g.NumEdges())
	}
	return nil
}

// wirePrep is the gob form of a Prep (exported fields only).
type wirePrep struct {
	NumNodes, NumEdges, NumComp int

	Comp    []int32
	Members []pag.NodeID
	MemOff  []int32
	Rep     []pag.NodeID
	Dense   []int32
	Orig    []pag.NodeID

	DirIn, DirOut, LoadIn, StoreOut, StoreIn, LoadOut                   []pag.HalfEdge
	DirInOff, DirOutOff, LoadInOff, StoreOutOff, StoreInOff, LoadOutOff []int32

	FieldStores   []pag.StoreSite
	StoreFieldOff []int32
	FieldLoads    []pag.LoadSite
	LoadFieldOff  []int32

	HasLoadIn, HasStoreOut []uint64
}

// WriteGob serialises the Prep (used by internal/snapshot so a warm-started
// daemon skips the Build pass).
func (p *Prep) WriteGob(w io.Writer) error {
	wp := wirePrep{
		NumNodes: p.numNodes, NumEdges: p.numEdges, NumComp: p.numComp,
		Comp: p.comp, Members: p.members, MemOff: p.memOff, Rep: p.rep,
		Dense: p.dense, Orig: p.orig,
		DirIn: p.dirIn, DirOut: p.dirOut, LoadIn: p.loadIn,
		StoreOut: p.storeOut, StoreIn: p.storeIn, LoadOut: p.loadOut,
		DirInOff: p.dirInOff, DirOutOff: p.dirOutOff, LoadInOff: p.loadInOff,
		StoreOutOff: p.storeOutOff, StoreInOff: p.storeInOff, LoadOutOff: p.loadOutOff,
		FieldStores: p.fieldStores, StoreFieldOff: p.storeFieldOff,
		FieldLoads: p.fieldLoads, LoadFieldOff: p.loadFieldOff,
		HasLoadIn: p.hasLoadIn.Words(), HasStoreOut: p.hasStoreOut.Words(),
	}
	if err := gob.NewEncoder(w).Encode(&wp); err != nil {
		return fmt.Errorf("kernel: encoding prep: %w", err)
	}
	return nil
}

// ReadGob deserialises a Prep written by WriteGob.
func ReadGob(r io.Reader) (*Prep, error) {
	var wp wirePrep
	if err := gob.NewDecoder(r).Decode(&wp); err != nil {
		return nil, fmt.Errorf("kernel: decoding prep: %w", err)
	}
	if len(wp.Dense) != wp.NumNodes || len(wp.Orig) != wp.NumNodes || len(wp.Comp) != wp.NumNodes {
		return nil, fmt.Errorf("kernel: malformed prep: %d nodes but %d/%d/%d mapping entries",
			wp.NumNodes, len(wp.Dense), len(wp.Orig), len(wp.Comp))
	}
	p := &Prep{
		numNodes: wp.NumNodes, numEdges: wp.NumEdges, numComp: wp.NumComp,
		comp: wp.Comp, members: wp.Members, memOff: wp.MemOff, rep: wp.Rep,
		dense: wp.Dense, orig: wp.Orig,
		dirIn: wp.DirIn, dirOut: wp.DirOut, loadIn: wp.LoadIn,
		storeOut: wp.StoreOut, storeIn: wp.StoreIn, loadOut: wp.LoadOut,
		dirInOff: wp.DirInOff, dirOutOff: wp.DirOutOff, loadInOff: wp.LoadInOff,
		storeOutOff: wp.StoreOutOff, storeInOff: wp.StoreInOff, loadOutOff: wp.LoadOutOff,
		fieldStores: wp.FieldStores, storeFieldOff: wp.StoreFieldOff,
		fieldLoads: wp.FieldLoads, loadFieldOff: wp.LoadFieldOff,
		hasLoadIn:   bitset.FromWords(wp.HasLoadIn),
		hasStoreOut: bitset.FromWords(wp.HasStoreOut),
	}
	return p, nil
}
