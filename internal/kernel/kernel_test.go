package kernel

import (
	"bytes"
	"reflect"
	"testing"

	"parcfl/internal/pag"
)

// testGraph builds a small frozen graph with a direct-edge cycle, heap
// accesses on two fields, and call edges.
func testGraph(t *testing.T) *pag.Graph {
	t.Helper()
	g := pag.NewGraph()
	o1 := g.AddObject("o1", 1)
	o2 := g.AddObject("o2", 1)
	a := g.AddLocal("a", 1, 0)
	b := g.AddLocal("b", 1, 0)
	c := g.AddLocal("c", 1, 0)
	x := g.AddLocal("x", 1, 0)
	y := g.AddLocal("y", 1, 0)
	gl := g.AddGlobal("gl", 1)
	g.AddEdge(pag.Edge{Dst: a, Src: o1, Kind: pag.EdgeNew})
	g.AddEdge(pag.Edge{Dst: b, Src: o2, Kind: pag.EdgeNew})
	// Direct cycle a -> b -> c -> a.
	g.AddEdge(pag.Edge{Dst: b, Src: a, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: c, Src: b, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: a, Src: c, Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: gl, Src: c, Kind: pag.EdgeAssignGlobal})
	// Heap accesses: store a.f1 = x, load y = a.f1, store b.f2 = x.
	g.AddEdge(pag.Edge{Dst: a, Src: x, Kind: pag.EdgeStore, Label: 1})
	g.AddEdge(pag.Edge{Dst: y, Src: a, Kind: pag.EdgeLoad, Label: 1})
	g.AddEdge(pag.Edge{Dst: b, Src: x, Kind: pag.EdgeStore, Label: 2})
	// Call edges x -> y at site 7.
	g.AddEdge(pag.Edge{Dst: y, Src: x, Kind: pag.EdgeParam, Label: 7})
	g.AddEdge(pag.Edge{Dst: x, Src: y, Kind: pag.EdgeRet, Label: 7})
	g.Freeze()
	return g
}

func TestBuildInvariants(t *testing.T) {
	g := testGraph(t)
	p := Build(g)
	n := g.NumNodes()

	if p.NumNodes() != n || p.NumEdges() != g.NumEdges() {
		t.Fatalf("counts: got %d/%d, want %d/%d", p.NumNodes(), p.NumEdges(), n, g.NumEdges())
	}

	// Dense/orig is a bijection.
	seen := make(map[int]bool, n)
	for v := 0; v < n; v++ {
		d := p.Dense(pag.NodeID(v))
		if d < 0 || d >= n || seen[d] {
			t.Fatalf("dense(%d) = %d: out of range or duplicate", v, d)
		}
		seen[d] = true
		if p.Orig(d) != pag.NodeID(v) {
			t.Fatalf("orig(dense(%d)) = %d", v, p.Orig(d))
		}
	}

	// Component membership is consistent and kernel IDs of one component
	// are contiguous.
	for c := 0; c < p.NumComps(); c++ {
		mem := p.Members(c)
		if len(mem) == 0 {
			t.Fatalf("component %d empty", c)
		}
		if p.Rep(c) != mem[0] {
			t.Fatalf("rep(%d) = %d, want first member %d", c, p.Rep(c), mem[0])
		}
		base := p.Dense(mem[0])
		for i, v := range mem {
			if p.CompOf(v) != c {
				t.Fatalf("CompOf(%d) = %d, want %d", v, p.CompOf(v), c)
			}
			if p.Dense(v) != base+i {
				t.Fatalf("members of comp %d not contiguous in kernel IDs", c)
			}
		}
	}

	// The direct-edge cycle a,b,c (nodes 2,3,4) is one component.
	if p.CompOf(2) != p.CompOf(3) || p.CompOf(3) != p.CompOf(4) {
		t.Fatalf("cycle nodes in distinct components: %d %d %d", p.CompOf(2), p.CompOf(3), p.CompOf(4))
	}

	// Reverse-topological numbering over cross-component direct edges.
	for v := 0; v < n; v++ {
		for _, he := range g.Out(pag.NodeID(v)) {
			if he.Kind.IsDirect() && p.CompOf(pag.NodeID(v)) != p.CompOf(he.Other) {
				if p.CompOf(he.Other) >= p.CompOf(pag.NodeID(v)) {
					t.Fatalf("direct edge %d->%d violates reverse-topo numbering (%d >= %d)",
						v, he.Other, p.CompOf(he.Other), p.CompOf(pag.NodeID(v)))
				}
			}
		}
	}

	// CSR rows equal the graph's adjacency filtered by kind, in order.
	filter := func(hes []pag.HalfEdge, keep func(pag.EdgeKind) bool) []pag.HalfEdge {
		var out []pag.HalfEdge
		for _, he := range hes {
			if keep(he.Kind) {
				out = append(out, he)
			}
		}
		return out
	}
	isDir := func(k pag.EdgeKind) bool { return k != pag.EdgeLoad && k != pag.EdgeStore }
	isLoad := func(k pag.EdgeKind) bool { return k == pag.EdgeLoad }
	isStore := func(k pag.EdgeKind) bool { return k == pag.EdgeStore }
	for v := 0; v < n; v++ {
		id := pag.NodeID(v)
		rows := []struct {
			name string
			got  []pag.HalfEdge
			want []pag.HalfEdge
		}{
			{"DirIn", p.DirIn(id), filter(g.In(id), isDir)},
			{"DirOut", p.DirOut(id), filter(g.Out(id), isDir)},
			{"LoadIn", p.LoadIn(id), filter(g.In(id), isLoad)},
			{"StoreOut", p.StoreOut(id), filter(g.Out(id), isStore)},
			{"StoreIn", p.StoreIn(id), filter(g.In(id), isStore)},
			{"LoadOut", p.LoadOut(id), filter(g.Out(id), isLoad)},
		}
		for _, r := range rows {
			if len(r.got) != len(r.want) {
				t.Fatalf("%s(%d): %d edges, want %d", r.name, v, len(r.got), len(r.want))
			}
			for i := range r.got {
				if r.got[i] != r.want[i] {
					t.Fatalf("%s(%d)[%d] = %+v, want %+v", r.name, v, i, r.got[i], r.want[i])
				}
			}
		}
		if p.HasLoadIn(id) != (len(filter(g.In(id), isLoad)) > 0) {
			t.Fatalf("HasLoadIn(%d) wrong", v)
		}
		if p.HasStoreOut(id) != (len(filter(g.Out(id), isStore)) > 0) {
			t.Fatalf("HasStoreOut(%d) wrong", v)
		}
	}

	// Per-field site CSR equals the graph's frozen indexes (empty and nil
	// rows are interchangeable).
	for _, f := range []pag.FieldID{0, 1, 2, 3} {
		gotS, wantS := p.StoresOf(f), g.StoresOf(f)
		if len(gotS) != len(wantS) {
			t.Fatalf("StoresOf(%d): %+v vs %+v", f, gotS, wantS)
		}
		for i := range gotS {
			if gotS[i] != wantS[i] {
				t.Fatalf("StoresOf(%d)[%d]: %+v vs %+v", f, i, gotS[i], wantS[i])
			}
		}
		gotL, wantL := p.LoadsOf(f), g.LoadsOf(f)
		if len(gotL) != len(wantL) {
			t.Fatalf("LoadsOf(%d): %+v vs %+v", f, gotL, wantL)
		}
		for i := range gotL {
			if gotL[i] != wantL[i] {
				t.Fatalf("LoadsOf(%d)[%d]: %+v vs %+v", f, i, gotL[i], wantL[i])
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := testGraph(t)
	a, b := Build(g), Build(g)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Builds of the same graph differ")
	}
}

func TestMatches(t *testing.T) {
	g := testGraph(t)
	p := Build(g)
	if err := p.Matches(g); err != nil {
		t.Fatalf("Matches on own graph: %v", err)
	}
	other := pag.NewGraph()
	other.AddLocal("solo", 1, 0)
	other.Freeze()
	if err := p.Matches(other); err == nil {
		t.Fatal("Matches accepted a different graph")
	}
}

func TestGobRoundTrip(t *testing.T) {
	g := testGraph(t)
	p := Build(g)
	var buf bytes.Buffer
	if err := p.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatal("gob round trip changed the prep")
	}
	if err := q.Matches(g); err != nil {
		t.Fatalf("round-tripped prep no longer matches graph: %v", err)
	}
}

func TestReadGobRejectsMalformed(t *testing.T) {
	g := testGraph(t)
	p := Build(g)
	var buf bytes.Buffer
	if err := p.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream must error, not yield a half-filled prep.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadGob(bytes.NewReader(trunc)); err == nil {
		t.Fatal("ReadGob accepted a truncated stream")
	}
}
