package autopsy_test

import (
	"strings"
	"testing"

	"parcfl/internal/autopsy"
	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/share"
)

func fig2(t *testing.T) *frontend.Fig2 {
	t.Helper()
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestNilCollectorIsSafeAndFree: the engine calls Record/RecordUnit
// unconditionally, so a nil collector must be a no-op with zero
// allocations (the internal/obs nil-sink contract).
func TestNilCollectorIsSafeAndFree(t *testing.T) {
	var c *autopsy.Collector
	r := &cfl.Result{Steps: 7, Prof: &cfl.Attribution{CacheSteps: 7}}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Record(r)
		c.RecordUnit(3, 2, 100)
		if c.Heat() != nil {
			t.Fatal("nil collector returned a heat profile")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil collector hooks allocated %.1f per run, want 0", allocs)
	}
	if reps, dropped := c.Autopsies(); reps != nil || dropped != 0 {
		t.Fatal("nil collector retained autopsies")
	}
}

// TestRecordSkipsUnprofiledResults: a result without attribution (Profile
// off) must not be counted — mixing attributed and unattributed queries
// would break the Heat conservation surface.
func TestRecordSkipsUnprofiledResults(t *testing.T) {
	c := autopsy.NewCollector(nil, 0)
	c.Record(nil)
	c.Record(&cfl.Result{Steps: 50})
	h := c.Heat()
	if h.Queries != 0 || h.TotalSteps != 0 {
		t.Fatalf("unprofiled results were counted: %+v", h)
	}
}

// TestHeatAggregation: fold the whole fig2 query batch in and check the
// batch-level conservation invariant plus the ranking surfaces.
func TestHeatAggregation(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	s := cfl.New(g, cfl.Config{Profile: true})
	c := autopsy.NewCollector(g, 0)

	queries := 0
	for _, v := range f.Lowered.AppQueryVars {
		r := s.PointsTo(v, pag.EmptyContext)
		c.Record(&r)
		queries++
	}
	rf := s.FlowsTo(f.O16, pag.EmptyContext)
	c.Record(&rf)
	queries++
	c.RecordUnit(0, queries, 123)

	h := c.Heat()
	if h.Schema != autopsy.HeatSchema {
		t.Fatalf("schema = %q", h.Schema)
	}
	if h.Queries != queries || h.Completed != queries {
		t.Fatalf("queries = %d/%d completed, want %d", h.Queries, h.Completed, queries)
	}
	if h.TotalSteps == 0 {
		t.Fatal("no steps recorded")
	}
	// The conservation invariant, batch-wide.
	if h.AttributedSteps != h.TotalSteps {
		t.Fatalf("attributed %d != total %d", h.AttributedSteps, h.TotalSteps)
	}
	// The category split must cover the attribution exactly.
	if sum := h.TraversalSteps + h.MatchSteps + h.ApproxSteps + h.JmpSteps + h.CacheSteps; sum != h.AttributedSteps {
		t.Fatalf("category sum %d != attributed %d", sum, h.AttributedSteps)
	}
	if len(h.Nodes) == 0 || len(h.Fields) == 0 {
		t.Fatal("empty node/field rankings")
	}
	for i := 1; i < len(h.Nodes); i++ {
		if h.Nodes[i].Steps > h.Nodes[i-1].Steps {
			t.Fatal("node ranking not sorted by descending steps")
		}
	}
	if h.Nodes[0].Name == "" {
		t.Fatal("hottest node has no name despite graph attached")
	}
	if len(h.Components) == 0 {
		t.Fatal("no component rollup despite graph attached")
	}
	if len(h.Units) != 1 || h.Units[0].Queries != queries || h.Units[0].Steps != 123 {
		t.Fatalf("unit rollup = %+v", h.Units)
	}
}

// TestHeatTopK: the row cap applies to rankings, never to the sums.
func TestHeatTopK(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	s := cfl.New(g, cfl.Config{Profile: true})
	c := autopsy.NewCollector(g, 0)
	c.TopK = 2
	for _, v := range f.Lowered.AppQueryVars {
		r := s.PointsTo(v, pag.EmptyContext)
		c.Record(&r)
	}
	h := c.Heat()
	if len(h.Nodes) != 2 {
		t.Fatalf("TopK=2 kept %d node rows", len(h.Nodes))
	}
	if h.AttributedSteps != h.TotalSteps {
		t.Fatal("capping rows disturbed the conservation sums")
	}
}

// TestAutopsyReportAborted: an aborted query yields a retained report with
// a partial frontier and conserved attribution.
func TestAutopsyReportAborted(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	s := cfl.New(g, cfl.Config{Budget: 12, Share: st, Profile: true})
	c := autopsy.NewCollector(g, 12)

	r := s.PointsTo(f.S1, pag.EmptyContext)
	if !r.Aborted {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}
	c.Record(&r)

	reps, dropped := c.Autopsies()
	if len(reps) != 1 || dropped != 0 {
		t.Fatalf("retained %d reports (%d dropped), want 1", len(reps), dropped)
	}
	rep := reps[0]
	if rep.Schema != autopsy.ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Outcome != autopsy.OutcomeAborted {
		t.Fatalf("outcome = %q", rep.Outcome)
	}
	if rep.AttributedSteps != int64(rep.Steps) {
		t.Fatalf("report not conserved: attributed %d, steps %d", rep.AttributedSteps, rep.Steps)
	}
	if rep.Budget != 12 {
		t.Fatalf("budget = %d", rep.Budget)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("aborted report has no frontier")
	}
	if rep.Name != g.Node(f.S1).Name {
		t.Fatalf("report names %q, want %q", rep.Name, g.Node(f.S1).Name)
	}

	h := c.Heat()
	if h.Aborted != 1 || h.AutopsiesRetained != 1 {
		t.Fatalf("heat abort counts: %+v", h)
	}
	if h.AttributedSteps != h.TotalSteps {
		t.Fatal("aborted query broke batch conservation")
	}
}

// TestAutopsyReportET is the acceptance-criterion surface at the autopsy
// level: an early-terminated query's report must name the unfinished jmp
// edge, its recorded s, and the budget shortfall.
func TestAutopsyReportET(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})

	tight := cfl.New(g, cfl.Config{Budget: 12, Share: st, Profile: true})
	r1 := tight.PointsTo(f.S1, pag.EmptyContext)
	if !r1.Aborted {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}

	tighter := cfl.New(g, cfl.Config{Budget: 11, Share: st, Profile: true})
	r2 := tighter.PointsTo(f.S1, pag.EmptyContext)
	if !r2.EarlyTerminated {
		t.Fatal("second query did not early-terminate")
	}

	rep := autopsy.FromResult(g, 11, &r2)
	if rep.Outcome != autopsy.OutcomeEarlyTerminated {
		t.Fatalf("outcome = %q", rep.Outcome)
	}
	j := rep.UnfinishedJmp
	if j == nil {
		t.Fatal("ET report names no unfinished jmp")
	}
	et := r2.Prof.ET
	if j.Node != et.Key.Node || j.S != et.S || j.Remaining != et.Remaining {
		t.Fatalf("report jmp %+v does not match attribution %+v", j, et)
	}
	if rep.ShortfallSteps != et.S-et.Remaining || rep.ShortfallSteps <= 0 {
		t.Fatalf("shortfall = %d, want %d", rep.ShortfallSteps, et.S-et.Remaining)
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"early-terminated", "unfinished jmp", "recorded s=", "short "} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Record into a collector: ET queries count as ET, and the jmp ledger
	// books the trigger.
	c := autopsy.NewCollector(g, 11)
	c.Record(&r2)
	h := c.Heat()
	if h.EarlyTerminated != 1 {
		t.Fatalf("heat ET count = %d", h.EarlyTerminated)
	}
	foundET := false
	for _, jm := range h.Jmp {
		if jm.ETs > 0 {
			foundET = true
			if jm.S != et.S {
				t.Fatalf("jmp ledger S = %d, want %d", jm.S, et.S)
			}
		}
	}
	if !foundET {
		t.Fatal("jmp ledger has no ET trigger row")
	}
}

// TestMaxAutopsies: aborts past the cap are counted, not retained.
func TestMaxAutopsies(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	s := cfl.New(g, cfl.Config{Budget: 3, Profile: true})
	c := autopsy.NewCollector(g, 3)
	c.MaxAutopsies = 1
	for i := 0; i < 3; i++ {
		r := s.PointsTo(f.S1, pag.EmptyContext)
		if !r.Aborted {
			t.Skip("budget 3 unexpectedly sufficient")
		}
		c.Record(&r)
	}
	reps, dropped := c.Autopsies()
	if len(reps) != 1 || dropped != 2 {
		t.Fatalf("retained %d dropped %d, want 1/2", len(reps), dropped)
	}
}

// TestHeatSource: the obs.HeatSource view groups samples by series (the
// contract the Prometheus exposition relies on) and honours k.
func TestHeatSource(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	s := cfl.New(g, cfl.Config{Profile: true})
	c := autopsy.NewCollector(g, 0)
	for _, v := range f.Lowered.AppQueryVars {
		r := s.PointsTo(v, pag.EmptyContext)
		c.Record(&r)
	}
	var _ obs.HeatSource = c

	samples := c.HeatTop(3)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	seen := map[string]bool{}
	var last string
	perSeries := map[string]int{}
	for _, smp := range samples {
		if smp.Series != last {
			if seen[smp.Series] {
				t.Fatalf("series %q not contiguous", smp.Series)
			}
			seen[smp.Series] = true
			last = smp.Series
		}
		perSeries[smp.Series]++
		if smp.Label == "" || smp.LabelKey == "" {
			t.Fatalf("unlabelled sample %+v", smp)
		}
	}
	for series, n := range perSeries {
		if n > 3 {
			t.Fatalf("series %q has %d samples, want <= 3", series, n)
		}
	}
	if !seen["node_steps"] || !seen["field_steps"] {
		t.Fatalf("missing expected series: %v", perSeries)
	}
}

// TestDOTBridge: the collector + store render as a heat/jmp overlay.
func TestDOTBridge(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	s := cfl.New(g, cfl.Config{Budget: 12, Share: st, Profile: true})
	c := autopsy.NewCollector(g, 12)
	r := s.PointsTo(f.S1, pag.EmptyContext)
	if !r.Aborted {
		t.Skip("budget 12 unexpectedly sufficient")
	}
	c.Record(&r)

	opt := c.DOTOptions(st)
	if len(opt.Heat) == 0 {
		t.Fatal("no heat in DOT options")
	}
	if len(opt.JmpEdges) == 0 {
		t.Fatal("no jmp edges despite recorded unfinished markers")
	}
	hasUnfinished := false
	for _, e := range opt.JmpEdges {
		if e.Unfinished {
			hasUnfinished = true
		}
	}
	if !hasUnfinished {
		t.Fatal("store holds unfinished entries but no unfinished edge rendered")
	}
	var sb strings.Builder
	if err := g.WriteDOTOpts(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fillcolor=\"#ff") {
		t.Fatal("DOT output has no heat shading")
	}
	if !strings.Contains(out, "jmp(") || !strings.Contains(out, "color=red") {
		t.Fatal("DOT output has no unfinished jmp overlay")
	}

	// A nil collector still renders the store overlay.
	var nc *autopsy.Collector
	opt2 := nc.DOTOptions(st)
	if len(opt2.Heat) != 0 || len(opt2.JmpEdges) == 0 {
		t.Fatalf("nil-collector options: %+v", opt2)
	}
	if e := autopsy.JmpEdges(nil); e != nil {
		t.Fatal("nil store produced edges")
	}
}
