// Package autopsy turns the per-query budget attributions produced by
// internal/cfl (Config.Profile → Result.Prof) into analysis-semantic
// diagnostics:
//
//   - a batch-wide PAG heat profile (Collector/Heat): which nodes, fields
//     and heap-access sites the step budget was actually spent on, jmp
//     hit/miss statistics per store entry, early-termination trigger sites
//     with their recorded s values, and hot direct-relation components;
//   - structured post-mortems for aborted or early-terminated queries
//     (Report): the partial frontier, the dominant fields, the unfinished
//     jmp edge that fired and how far the remaining budget fell short.
//
// The collector follows the internal/obs contract: a nil *Collector is a
// valid, allocation-free no-op receiver, so the engine hot path pays one
// pointer check when profiling is off. It also implements obs.HeatSource,
// so attaching it to a sink surfaces the profile on /debug/heat and as
// parcfl_heat_* gauges on /metrics.
package autopsy

import (
	"fmt"
	"sort"
	"sync"

	"parcfl/internal/cfl"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/sched"
	"parcfl/internal/share"
)

// HeatSchema identifies the Heat JSON layout; bump on breaking changes.
const HeatSchema = "parcfl-heat/v1"

// Collector aggregates query attributions into a batch heat profile. One
// collector serves a whole run; Record is safe to call from many workers.
type Collector struct {
	g      *pag.Graph
	budget int

	// TopK bounds the per-category rows materialised by Heat (the sums
	// are always over everything). MaxAutopsies bounds retained abort
	// reports; further aborts are counted, not kept. Set before the run
	// starts; defaults 50 and 256.
	TopK         int
	MaxAutopsies int

	mu               sync.Mutex
	queries          int
	completed        int
	aborted          int
	earlyTerminated  int
	totalSteps       int64
	attributedSteps  int64
	traversalSteps   int64
	matchSteps       int64
	approxSteps      int64
	jmpSteps         int64
	cacheSteps       int64
	nodes            map[pag.NodeID]int64
	sites            map[cfl.SiteKey]int64
	approxSites      map[cfl.SiteKey]int64
	fields           map[pag.FieldID]int64
	jmp              map[share.Key]*jmpStat
	units            map[int]*unitStat
	autopsies        []*Report
	autopsiesDropped int
}

// jmpStat is the per-store-entry hit/miss ledger.
type jmpStat struct {
	takes        int64
	stepsCharged int64
	expands      int64
	ets          int64
	etS          int // recorded s of the entry when it fired an ET
}

type unitStat struct {
	queries int
	steps   int64
}

// NewCollector creates a collector for one run over g (used to name nodes
// and aggregate components; may be nil for graph-less use). budget is the
// per-query step budget, echoed into autopsy reports.
func NewCollector(g *pag.Graph, budget int) *Collector {
	return &Collector{
		g:            g,
		budget:       budget,
		TopK:         50,
		MaxAutopsies: 256,
		nodes:        make(map[pag.NodeID]int64),
		sites:        make(map[cfl.SiteKey]int64),
		approxSites:  make(map[cfl.SiteKey]int64),
		fields:       make(map[pag.FieldID]int64),
		jmp:          make(map[share.Key]*jmpStat),
		units:        make(map[int]*unitStat),
	}
}

// Record folds one query result into the profile. Nil-safe and
// allocation-free on a nil collector or a result without attribution, so
// the call can sit unconditionally in the engine's worker loop.
func (c *Collector) Record(r *cfl.Result) {
	if c == nil || r == nil || r.Prof == nil {
		return
	}
	p := r.Prof
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries++
	switch {
	case r.EarlyTerminated:
		c.earlyTerminated++
	case r.Aborted:
		c.aborted++
	default:
		c.completed++
	}
	c.totalSteps += int64(r.Steps)
	c.attributedSteps += p.Sum()
	c.cacheSteps += p.CacheSteps
	for _, n := range p.Nodes {
		c.traversalSteps += n.Steps
		c.nodes[n.Node] += n.Steps
	}
	for _, s := range p.Sites {
		if s.Approx {
			c.approxSteps += s.Steps
			c.approxSites[s.Site] += s.Steps
		} else {
			c.matchSteps += s.Steps
			c.sites[s.Site] += s.Steps
		}
		c.fields[s.Site.Field] += s.Steps
	}
	for _, j := range p.Jumps {
		c.jmpSteps += int64(j.S)
		st := c.jmpStat(j.Key)
		st.takes++
		st.stepsCharged += int64(j.S)
	}
	for _, e := range p.Expansions {
		c.jmpStat(e.Key).expands++
	}
	if p.ET != nil {
		st := c.jmpStat(p.ET.Key)
		st.ets++
		st.etS = p.ET.S
	}
	if r.Aborted {
		if len(c.autopsies) < c.MaxAutopsies {
			c.autopsies = append(c.autopsies, FromResult(c.g, c.budget, r))
		} else {
			c.autopsiesDropped++
		}
	}
}

func (c *Collector) jmpStat(k share.Key) *jmpStat {
	st, ok := c.jmp[k]
	if !ok {
		st = &jmpStat{}
		c.jmp[k] = st
	}
	return st
}

// RecordUnit books one scheduled work unit's totals (the engine calls this
// once per unit per worker). Nil-safe.
func (c *Collector) RecordUnit(unit, queries int, steps int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.units[unit]
	if !ok {
		u = &unitStat{}
		c.units[unit] = u
	}
	u.queries += queries
	u.steps += steps
}

// Autopsies returns the retained abort reports (in record order) and the
// count of aborts dropped past MaxAutopsies. Nil-safe.
func (c *Collector) Autopsies() ([]*Report, int) {
	if c == nil {
		return nil, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Report, len(c.autopsies))
	copy(out, c.autopsies)
	return out, c.autopsiesDropped
}

// Budget returns the per-query budget the collector was created with.
func (c *Collector) Budget() int {
	if c == nil {
		return 0
	}
	return c.budget
}

// NodeHeat is one row of the per-node step ranking.
type NodeHeat struct {
	Node  pag.NodeID `json:"node"`
	Name  string     `json:"name,omitempty"`
	Steps int64      `json:"steps"`
	// Share is this node's fraction of all attributed steps.
	Share float64 `json:"share"`
}

// SiteHeat is one row of the per-heap-access-site ranking: alias-matching
// steps booked while resolving field Field at node Node.
type SiteHeat struct {
	Node   pag.NodeID  `json:"node"`
	Name   string      `json:"name,omitempty"`
	Field  pag.FieldID `json:"field"`
	Steps  int64       `json:"steps"`
	Approx bool        `json:"approx,omitempty"`
}

// FieldHeat aggregates matching steps per field across all sites.
type FieldHeat struct {
	Field pag.FieldID `json:"field"`
	Label string      `json:"label"`
	Steps int64       `json:"steps"`
}

// JmpHeat is the hit/miss ledger of one jmp store entry.
type JmpHeat struct {
	Node pag.NodeID `json:"node"`
	Name string     `json:"name,omitempty"`
	Dir  string     `json:"dir"`
	Ctx  string     `json:"ctx,omitempty"`
	// Takes counts shortcut hits; StepsCharged their summed budget cost.
	// Expands counts full expansions at the same key (jmp misses — before
	// the entry existed, or past an affordable unfinished marker). ETs
	// counts early terminations the entry fired, with S its recorded cost
	// at that point.
	Takes        int64 `json:"takes"`
	StepsCharged int64 `json:"steps_charged"`
	Expands      int64 `json:"expands"`
	ETs          int64 `json:"ets,omitempty"`
	S            int   `json:"s,omitempty"`
}

// UnitHeat is one scheduled work unit's totals.
type UnitHeat struct {
	Unit    int   `json:"unit"`
	Queries int   `json:"queries"`
	Steps   int64 `json:"steps"`
}

// ComponentHeat aggregates node heat over one direct-relation component
// (the partition sched.Schedule groups queries by), naming the hottest
// subgraphs of the PAG.
type ComponentHeat struct {
	// Component is the canonical node id from sched.ComponentMap.
	Component int32 `json:"component"`
	// Hottest names the component's hottest node.
	Hottest string  `json:"hottest,omitempty"`
	Nodes   int     `json:"nodes"`
	Steps   int64   `json:"steps"`
	Share   float64 `json:"share"`
}

// Heat is the aggregated PAG heat profile — the /debug/heat and -heat-out
// payload. TotalSteps and AttributedSteps are whole-run sums; the
// conservation invariant makes them equal, and CI asserts it.
type Heat struct {
	Schema  string `json:"schema"`
	Queries int    `json:"queries"`

	Completed       int `json:"completed"`
	Aborted         int `json:"aborted"`
	EarlyTerminated int `json:"early_terminated"`

	TotalSteps      int64 `json:"total_steps"`
	AttributedSteps int64 `json:"attributed_steps"`

	TraversalSteps int64 `json:"traversal_steps"`
	MatchSteps     int64 `json:"match_steps"`
	ApproxSteps    int64 `json:"approx_steps"`
	JmpSteps       int64 `json:"jmp_steps"`
	CacheSteps     int64 `json:"cache_steps"`

	// TopK echoes the row cap the rankings below were built with (the
	// sums above are never capped).
	TopK int `json:"top_k"`

	Nodes      []NodeHeat      `json:"nodes,omitempty"`
	Sites      []SiteHeat      `json:"sites,omitempty"`
	Fields     []FieldHeat     `json:"fields,omitempty"`
	Jmp        []JmpHeat       `json:"jmp,omitempty"`
	Units      []UnitHeat      `json:"units,omitempty"`
	Components []ComponentHeat `json:"components,omitempty"`

	// AutopsiesRetained/Dropped summarise the abort reports held by the
	// collector (exported separately via Autopsies).
	AutopsiesRetained int `json:"autopsies_retained"`
	AutopsiesDropped  int `json:"autopsies_dropped,omitempty"`
}

// Heat snapshots the profile. Nil-safe (returns nil).
func (c *Collector) Heat() *Heat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	h := &Heat{
		Schema:            HeatSchema,
		Queries:           c.queries,
		Completed:         c.completed,
		Aborted:           c.aborted,
		EarlyTerminated:   c.earlyTerminated,
		TotalSteps:        c.totalSteps,
		AttributedSteps:   c.attributedSteps,
		TraversalSteps:    c.traversalSteps,
		MatchSteps:        c.matchSteps,
		ApproxSteps:       c.approxSteps,
		JmpSteps:          c.jmpSteps,
		CacheSteps:        c.cacheSteps,
		TopK:              c.TopK,
		AutopsiesRetained: len(c.autopsies),
		AutopsiesDropped:  c.autopsiesDropped,
	}
	denom := float64(c.attributedSteps)
	if denom == 0 {
		denom = 1
	}

	for n, steps := range c.nodes {
		h.Nodes = append(h.Nodes, NodeHeat{Node: n, Name: c.nodeName(n), Steps: steps, Share: float64(steps) / denom})
	}
	sort.Slice(h.Nodes, func(i, j int) bool {
		if h.Nodes[i].Steps != h.Nodes[j].Steps {
			return h.Nodes[i].Steps > h.Nodes[j].Steps
		}
		return h.Nodes[i].Node < h.Nodes[j].Node
	})
	h.Nodes = capRows(h.Nodes, c.TopK)

	for k, steps := range c.sites {
		h.Sites = append(h.Sites, SiteHeat{Node: k.Node, Name: c.nodeName(k.Node), Field: k.Field, Steps: steps})
	}
	for k, steps := range c.approxSites {
		h.Sites = append(h.Sites, SiteHeat{Node: k.Node, Name: c.nodeName(k.Node), Field: k.Field, Steps: steps, Approx: true})
	}
	sort.Slice(h.Sites, func(i, j int) bool {
		if h.Sites[i].Steps != h.Sites[j].Steps {
			return h.Sites[i].Steps > h.Sites[j].Steps
		}
		if h.Sites[i].Node != h.Sites[j].Node {
			return h.Sites[i].Node < h.Sites[j].Node
		}
		return h.Sites[i].Field < h.Sites[j].Field
	})
	h.Sites = capRows(h.Sites, c.TopK)

	for f, steps := range c.fields {
		h.Fields = append(h.Fields, FieldHeat{Field: f, Label: fmt.Sprintf("f%d", f), Steps: steps})
	}
	sort.Slice(h.Fields, func(i, j int) bool {
		if h.Fields[i].Steps != h.Fields[j].Steps {
			return h.Fields[i].Steps > h.Fields[j].Steps
		}
		return h.Fields[i].Field < h.Fields[j].Field
	})
	h.Fields = capRows(h.Fields, c.TopK)

	for k, st := range c.jmp {
		h.Jmp = append(h.Jmp, JmpHeat{
			Node: k.Node, Name: c.nodeName(k.Node), Dir: dirString(k.Dir), Ctx: k.Ctx.String(),
			Takes: st.takes, StepsCharged: st.stepsCharged, Expands: st.expands,
			ETs: st.ets, S: st.etS,
		})
	}
	sort.Slice(h.Jmp, func(i, j int) bool {
		si, sj := h.Jmp[i], h.Jmp[j]
		wi, wj := si.StepsCharged+si.ETs, sj.StepsCharged+sj.ETs
		if wi != wj {
			return wi > wj
		}
		if si.Node != sj.Node {
			return si.Node < sj.Node
		}
		return si.Ctx < sj.Ctx
	})
	h.Jmp = capRows(h.Jmp, c.TopK)

	for u, st := range c.units {
		h.Units = append(h.Units, UnitHeat{Unit: u, Queries: st.queries, Steps: st.steps})
	}
	sort.Slice(h.Units, func(i, j int) bool {
		if h.Units[i].Steps != h.Units[j].Steps {
			return h.Units[i].Steps > h.Units[j].Steps
		}
		return h.Units[i].Unit < h.Units[j].Unit
	})
	h.Units = capRows(h.Units, c.TopK)

	h.Components = c.componentHeat(denom)
	return h
}

// componentHeat folds node heat into direct-relation components via
// sched.ComponentMap. Called with c.mu held.
func (c *Collector) componentHeat(denom float64) []ComponentHeat {
	if c.g == nil || len(c.nodes) == 0 {
		return nil
	}
	cm := sched.ComponentMap(c.g)
	type agg struct {
		steps   int64
		nodes   int
		hotNode pag.NodeID
		hotHeat int64
	}
	byComp := make(map[int32]*agg)
	for n, steps := range c.nodes {
		if int(n) >= len(cm) {
			continue
		}
		a, ok := byComp[cm[n]]
		if !ok {
			a = &agg{}
			byComp[cm[n]] = a
		}
		a.steps += steps
		a.nodes++
		if steps > a.hotHeat || (steps == a.hotHeat && n < a.hotNode) {
			a.hotHeat, a.hotNode = steps, n
		}
	}
	out := make([]ComponentHeat, 0, len(byComp))
	for comp, a := range byComp {
		out = append(out, ComponentHeat{
			Component: comp, Hottest: c.nodeName(a.hotNode),
			Nodes: a.nodes, Steps: a.steps, Share: float64(a.steps) / denom,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Steps != out[j].Steps {
			return out[i].Steps > out[j].Steps
		}
		return out[i].Component < out[j].Component
	})
	return capRows(out, c.TopK)
}

func capRows[T any](rows []T, k int) []T {
	if k > 0 && len(rows) > k {
		return rows[:k]
	}
	return rows
}

func (c *Collector) nodeName(n pag.NodeID) string {
	if c.g == nil || int(n) >= c.g.NumNodes() {
		return ""
	}
	return c.g.Node(n).Name
}

func dirString(d share.Direction) string {
	if d == share.Forward {
		return "fls"
	}
	return "pts"
}

// HeatSnapshot implements obs.HeatSource for /debug/heat.
func (c *Collector) HeatSnapshot() any { return c.Heat() }

// HeatTop implements obs.HeatSource: the k hottest rows per series, grouped
// by series, for the parcfl_heat_* gauge families.
func (c *Collector) HeatTop(k int) []obs.HeatSample {
	h := c.Heat()
	if h == nil {
		return nil
	}
	var out []obs.HeatSample
	for i, n := range h.Nodes {
		if i >= k {
			break
		}
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("n%d", n.Node)
		}
		out = append(out, obs.HeatSample{Series: "node_steps", LabelKey: "node", Label: label, Value: n.Steps})
	}
	for i, f := range h.Fields {
		if i >= k {
			break
		}
		out = append(out, obs.HeatSample{Series: "field_steps", LabelKey: "field", Label: f.Label, Value: f.Steps})
	}
	ets := 0
	for _, j := range h.Jmp {
		if j.ETs == 0 {
			continue
		}
		if ets >= k {
			break
		}
		label := j.Name
		if label == "" {
			label = fmt.Sprintf("n%d", j.Node)
		}
		out = append(out, obs.HeatSample{Series: "et_triggers", LabelKey: "node", Label: label, Value: j.ETs})
		ets++
	}
	return out
}
