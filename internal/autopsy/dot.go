package autopsy

import (
	"sort"

	"parcfl/internal/pag"
	"parcfl/internal/share"
)

// DOTOptions builds a pag.DOTOptions rendering the collector's heat
// profile over the graph: nodes shaded by attributed traversal steps, and
// — when st is non-nil — the current-epoch jmp store overlaid as dashed
// edges (finished entries blue to each distinct target, unfinished entries
// red into the O node). Use with g.WriteDOTOpts for the `heat dot` repl
// command and pointsto -heat-dot. Nil-safe: a nil collector yields only
// the store overlay (or a zero options value).
func (c *Collector) DOTOptions(st *share.Store) pag.DOTOptions {
	var opt pag.DOTOptions
	if c != nil {
		c.mu.Lock()
		if len(c.nodes) > 0 {
			opt.Heat = make(map[pag.NodeID]int64, len(c.nodes))
			for n, steps := range c.nodes {
				opt.Heat[n] = steps
			}
		}
		c.mu.Unlock()
	}
	opt.JmpEdges = JmpEdges(st)
	return opt
}

// JmpEdges flattens the store's current-epoch entries into DOT overlay
// edges: one edge per distinct (source, target) pair of a finished entry,
// one unfinished edge per unfinished entry. Deterministically ordered.
// Nil-safe (nil store → nil).
func JmpEdges(st *share.Store) []pag.DOTJmpEdge {
	if st == nil {
		return nil
	}
	type pair struct{ from, to pag.NodeID }
	finished := make(map[pair]int)
	var unfinished []pag.DOTJmpEdge
	st.ForEach(func(k share.Key, e share.Entry) bool {
		if e.Unfinished {
			unfinished = append(unfinished, pag.DOTJmpEdge{From: k.Node, S: e.S, Unfinished: true})
			return true
		}
		seen := make(map[pag.NodeID]bool, len(e.Targets))
		for _, t := range e.Targets {
			if seen[t.Node] {
				continue
			}
			seen[t.Node] = true
			p := pair{from: k.Node, to: t.Node}
			if e.S > finished[p] {
				finished[p] = e.S
			}
		}
		return true
	})
	out := make([]pag.DOTJmpEdge, 0, len(finished)+len(unfinished))
	for p, s := range finished {
		out = append(out, pag.DOTJmpEdge{From: p.from, To: p.to, S: s})
	}
	out = append(out, unfinished...)
	sort.Slice(out, func(i, j int) bool {
		ei, ej := out[i], out[j]
		if ei.Unfinished != ej.Unfinished {
			return !ei.Unfinished // finished edges first
		}
		if ei.From != ej.From {
			return ei.From < ej.From
		}
		if ei.To != ej.To {
			return ei.To < ej.To
		}
		return ei.S < ej.S
	})
	return out
}
