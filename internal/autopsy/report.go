package autopsy

import (
	"fmt"
	"io"

	"parcfl/internal/cfl"
	"parcfl/internal/pag"
)

// ReportSchema identifies the Report JSON layout; bump on breaking changes.
const ReportSchema = "parcfl-autopsy/v1"

// Outcome values for a Report.
const (
	OutcomeCompleted       = "completed"
	OutcomeAborted         = "aborted"
	OutcomeEarlyTerminated = "early-terminated"
)

// JmpRef names one jmp store entry in human terms: the PAG node, its
// name, the traversal direction and calling context.
type JmpRef struct {
	Node pag.NodeID `json:"node"`
	Name string     `json:"name,omitempty"`
	Dir  string     `json:"dir"`
	Ctx  string     `json:"ctx"`
	// S is the entry's recorded step cost; for an early termination,
	// Remaining is the budget left when the edge was met (the shortfall
	// is S - Remaining).
	S         int `json:"s"`
	Remaining int `json:"remaining,omitempty"`
}

// FrameRef is one alias expansion still open at abort time, with the steps
// spent since it started.
type FrameRef struct {
	JmpRef
	Steps int `json:"steps"`
}

// FieldRef is one field's share of the query's matching steps.
type FieldRef struct {
	Field pag.FieldID `json:"field"`
	Label string      `json:"label"`
	Steps int64       `json:"steps"`
}

// NodeRef is one node's share of the query's traversal steps.
type NodeRef struct {
	Node  pag.NodeID `json:"node"`
	Name  string     `json:"name,omitempty"`
	Steps int64      `json:"steps"`
}

// Report is the structured post-mortem of one query — what the repl's
// `autopsy` command prints and what -autopsy-out serialises. Built from a
// Result solved with Config.Profile on.
type Report struct {
	Schema string `json:"schema"`

	Node pag.NodeID `json:"node"`
	Name string     `json:"name,omitempty"`
	Ctx  string     `json:"ctx"`

	// Outcome is completed, aborted, or early-terminated.
	Outcome string `json:"outcome"`

	Steps  int `json:"steps"`
	Budget int `json:"budget,omitempty"`
	// AttributedSteps is the attribution sum; conservation makes it equal
	// Steps.
	AttributedSteps int64 `json:"attributed_steps"`

	TraversalSteps int64 `json:"traversal_steps"`
	MatchSteps     int64 `json:"match_steps"`
	ApproxSteps    int64 `json:"approx_steps,omitempty"`
	JmpSteps       int64 `json:"jmp_steps"`
	CacheSteps     int64 `json:"cache_steps"`

	// Results is the size of the (possibly partial) answer set.
	Results int `json:"results"`

	// UnfinishedJmp names the unfinished store entry that fired the early
	// termination (nil unless Outcome is early-terminated). For an ET the
	// shortfall is UnfinishedJmp.S - UnfinishedJmp.Remaining: the minimum
	// extra budget the recorded expansion would have needed.
	UnfinishedJmp  *JmpRef `json:"unfinished_jmp,omitempty"`
	ShortfallSteps int     `json:"shortfall_steps,omitempty"`

	// Frontier lists the alias expansions still open at abort time,
	// outermost first — the partial work the budget cut off.
	Frontier []FrameRef `json:"frontier,omitempty"`

	// TopNodes / TopFields are the dominant step consumers, descending.
	TopNodes  []NodeRef  `json:"top_nodes,omitempty"`
	TopFields []FieldRef `json:"top_fields,omitempty"`

	// JumpsTaken / StepsSaved echo the result's jmp shortcut usage.
	JumpsTaken int `json:"jumps_taken,omitempty"`
	StepsSaved int `json:"steps_saved,omitempty"`
}

// reportTopK bounds the per-report node/field rankings.
const reportTopK = 8

// FromResult builds a Report for r. Returns nil if r is nil or carries no
// attribution (Config.Profile was off). g may be nil (names are omitted);
// budget 0 means unbudgeted.
func FromResult(g *pag.Graph, budget int, r *cfl.Result) *Report {
	if r == nil || r.Prof == nil {
		return nil
	}
	p := r.Prof
	rep := &Report{
		Schema:          ReportSchema,
		Node:            r.Node,
		Name:            nodeName(g, r.Node),
		Ctx:             r.Ctx.String(),
		Outcome:         outcome(r),
		Steps:           r.Steps,
		Budget:          budget,
		AttributedSteps: p.Sum(),
		TraversalSteps:  p.TraversalSteps(),
		MatchSteps:      p.MatchSteps(),
		ApproxSteps:     p.ApproxSteps(),
		JmpSteps:        p.JmpSteps(),
		CacheSteps:      p.CacheSteps,
		Results:         len(r.PointsTo),
		JumpsTaken:      r.JumpsTaken,
		StepsSaved:      r.StepsSaved,
	}
	if p.ET != nil {
		rep.UnfinishedJmp = &JmpRef{
			Node: p.ET.Key.Node, Name: nodeName(g, p.ET.Key.Node),
			Dir: dirString(p.ET.Key.Dir), Ctx: p.ET.Key.Ctx.String(),
			S: p.ET.S, Remaining: p.ET.Remaining,
		}
		rep.ShortfallSteps = p.ET.S - p.ET.Remaining
	}
	for _, f := range p.Frontier {
		rep.Frontier = append(rep.Frontier, FrameRef{
			JmpRef: JmpRef{
				Node: f.Key.Node, Name: nodeName(g, f.Key.Node),
				Dir: dirString(f.Key.Dir), Ctx: f.Key.Ctx.String(),
			},
			Steps: f.Steps,
		})
	}
	for i, n := range p.Nodes {
		if i >= reportTopK {
			break
		}
		rep.TopNodes = append(rep.TopNodes, NodeRef{Node: n.Node, Name: nodeName(g, n.Node), Steps: n.Steps})
	}
	// Sites are already sorted by descending steps; fold into fields
	// preserving first-seen (hottest-site) order.
	fieldSteps := make(map[pag.FieldID]int64)
	var fieldOrder []pag.FieldID
	for _, s := range p.Sites {
		if _, ok := fieldSteps[s.Site.Field]; !ok {
			fieldOrder = append(fieldOrder, s.Site.Field)
		}
		fieldSteps[s.Site.Field] += s.Steps
	}
	for i, f := range fieldOrder {
		if i >= reportTopK {
			break
		}
		rep.TopFields = append(rep.TopFields, FieldRef{Field: f, Label: fmt.Sprintf("f%d", f), Steps: fieldSteps[f]})
	}
	return rep
}

func outcome(r *cfl.Result) string {
	switch {
	case r.EarlyTerminated:
		return OutcomeEarlyTerminated
	case r.Aborted:
		return OutcomeAborted
	default:
		return OutcomeCompleted
	}
}

func nodeName(g *pag.Graph, n pag.NodeID) string {
	if g == nil || int(n) >= g.NumNodes() {
		return ""
	}
	return g.Node(n).Name
}

func (r *JmpRef) label() string {
	name := r.Name
	if name == "" {
		name = fmt.Sprintf("n%d", r.Node)
	}
	return fmt.Sprintf("%s(%s, %s)", r.Dir, name, r.Ctx)
}

// WriteText renders the report for a terminal — the repl's `autopsy`
// output.
func (r *Report) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	name := r.Name
	if name == "" {
		name = fmt.Sprintf("n%d", r.Node)
	}
	ew.printf("query     %s @ %s\n", name, r.Ctx)
	ew.printf("outcome   %s\n", r.Outcome)
	if r.Budget > 0 {
		ew.printf("steps     %d of budget %d (attributed %d)\n", r.Steps, r.Budget, r.AttributedSteps)
	} else {
		ew.printf("steps     %d (attributed %d)\n", r.Steps, r.AttributedSteps)
	}
	ew.printf("breakdown traversal=%d match=%d", r.TraversalSteps, r.MatchSteps)
	if r.ApproxSteps > 0 {
		ew.printf(" approx=%d", r.ApproxSteps)
	}
	ew.printf(" jmp=%d cache=%d\n", r.JmpSteps, r.CacheSteps)
	ew.printf("results   %d", r.Results)
	if r.Outcome != OutcomeCompleted {
		ew.printf(" (partial)")
	}
	ew.printf("\n")
	if r.JumpsTaken > 0 {
		ew.printf("jmp       %d shortcuts taken, %d steps saved\n", r.JumpsTaken, r.StepsSaved)
	}
	if j := r.UnfinishedJmp; j != nil {
		ew.printf("et        unfinished jmp at %s: recorded s=%d, budget left %d (short %d steps)\n",
			j.label(), j.S, j.Remaining, r.ShortfallSteps)
	}
	if len(r.Frontier) > 0 {
		ew.printf("frontier  %d open expansion(s) at abort:\n", len(r.Frontier))
		for _, f := range r.Frontier {
			ew.printf("  %-40s %d steps in\n", f.label(), f.Steps)
		}
	}
	if len(r.TopNodes) > 0 {
		ew.printf("hot nodes\n")
		for _, n := range r.TopNodes {
			nm := n.Name
			if nm == "" {
				nm = fmt.Sprintf("n%d", n.Node)
			}
			ew.printf("  %-40s %d steps\n", nm, n.Steps)
		}
	}
	if len(r.TopFields) > 0 {
		ew.printf("hot fields\n")
		for _, f := range r.TopFields {
			ew.printf("  %-40s %d steps\n", f.Label, f.Steps)
		}
	}
	return ew.err
}

// errWriter latches the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
