// Package bitset provides the dense growable bitset shared by the Andersen
// solver and the kernel traversal mode.
package bitset

import "math/bits"

// Bitset is a growable dense bitset over small int indexes. It started as
// the points-to set representation of the Andersen solver (which aliases it)
// and is also the visited/context-set primitive of the kernel traversal mode
// (see internal/kernel): the zero value is an empty set, Set grows the
// backing array on demand, and Has beyond the allocated range is simply
// false, so a set only ever pays for the index range it actually touches.
type Bitset struct {
	words []uint64
}

// Empty reports whether no bit is set.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Set sets bit i, reporting whether it was previously clear.
func (b *Bitset) Set(i int) bool {
	w := i >> 6
	if w >= len(b.words) {
		b.grow(w + 1)
	}
	mask := uint64(1) << uint(i&63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	return true
}

// grow extends the word array to at least n words in a single allocation
// (with 50% headroom when reallocating), instead of appending word-by-word —
// the first Set of a high bit would otherwise pay a chain of doubling
// copies, which dominates allocation counts when many small sets are built.
func (b *Bitset) grow(n int) {
	if n <= cap(b.words) {
		tail := b.words[len(b.words):n]
		for i := range tail {
			tail[i] = 0
		}
		b.words = b.words[:n]
		return
	}
	nw := make([]uint64, n, n+n/2+2)
	copy(nw, b.words)
	b.words = nw
}

// Has reports whether bit i is set.
func (b *Bitset) Has(i int) bool {
	w := i >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(uint64(1)<<uint(i&63)) != 0
}

// OrChanged ors o into b, reporting whether b grew.
func (b *Bitset) OrChanged(o Bitset) bool {
	changed := false
	if len(b.words) < len(o.words) {
		b.grow(len(o.words))
	}
	for i, w := range o.words {
		if nw := b.words[i] | w; nw != b.words[i] {
			b.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersects reports whether b and o share a set bit.
func (b *Bitset) Intersects(o Bitset) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f with each set bit index, ascending.
func (b *Bitset) ForEach(f func(int)) {
	for wi, w := range b.words {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi<<6 + i)
			w &^= 1 << uint(i)
		}
	}
}

// Words exposes the backing words (read-only by convention), for
// serialisation.
func (b *Bitset) Words() []uint64 { return b.words }

// FromWords rebuilds a Bitset around words (takes ownership), the
// inverse of Words.
func FromWords(words []uint64) Bitset { return Bitset{words: words} }

// Reset clears the set, keeping the backing array for reuse.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
