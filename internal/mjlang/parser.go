package mjlang

// AST types. Tokens are retained on every node so the resolver can report
// positioned errors.

type srcProgram struct {
	types   []srcType
	globals []srcGlobal
	funcs   []srcFunc
}

type srcTypeRef struct {
	name token
	dims int // number of "[]" suffixes
}

type srcField struct {
	name token
	typ  srcTypeRef
}

type srcType struct {
	name      token
	primitive bool
	fields    []srcField
}

type srcGlobal struct {
	name token
	typ  srcTypeRef
}

type srcParam struct {
	name token
	typ  srcTypeRef
}

type srcFunc struct {
	name        token
	params      []srcParam
	ret         *srcTypeRef
	application bool
	body        []srcStmt
}

type stmtKind uint8

const (
	stDecl stmtKind = iota
	stAssign
	stReturn
	stExpr
	stBlock
)

type exprKind uint8

const (
	exNew exprKind = iota
	exIdent
	exField
	exCall
)

type srcExpr struct {
	kind  exprKind
	typ   srcTypeRef // exNew
	base  token      // exIdent (the ident), exField (the base)
	field token      // exField
	call  *srcCall   // exCall
}

type srcCall struct {
	fn   token
	args []srcExpr
}

type srcLValue struct {
	base  token
	field *token // non-nil for x.f = ...
}

type srcStmt struct {
	kind stmtKind
	// stDecl
	declName token
	declType srcTypeRef
	declInit *srcExpr
	// stAssign
	lhs srcLValue
	rhs srcExpr
	// stReturn
	retVal token
	// stExpr
	call *srcCall
	// stBlock (if/else/while): nested statement groups, analysed
	// flow-insensitively (all branches contribute).
	blocks [][]srcStmt
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectPunct(text string) (token, error) {
	t := p.next()
	if !t.is(tokPunct, text) {
		return t, errAt(t, "expected %q, found %q", text, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(text string) (token, error) {
	t := p.next()
	if !t.is(tokKeyword, text) {
		return t, errAt(t, "expected %q, found %q", text, t.text)
	}
	return t, nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, errAt(t, "expected identifier, found %q", t.text)
	}
	return t, nil
}

func parse(src string) (*srcProgram, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &srcProgram{}
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return prog, nil
		case t.is(tokKeyword, "type"):
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			prog.types = append(prog.types, *ty)
		case t.is(tokKeyword, "global"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, *g)
		case t.is(tokKeyword, "func"):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, *f)
		default:
			return nil, errAt(t, "expected top-level declaration (type/global/func), found %q", t.text)
		}
	}
}

func (p *parser) parseTypeRef() (srcTypeRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return srcTypeRef{}, err
	}
	tr := srcTypeRef{name: name}
	for p.peek().is(tokPunct, "[]") {
		p.next()
		tr.dims++
	}
	return tr, nil
}

func (p *parser) parseType() (*srcType, error) {
	p.next() // "type"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ty := &srcType{name: name}
	if p.peek().is(tokKeyword, "primitive") {
		p.next()
		ty.primitive = true
		if p.peek().is(tokPunct, ";") {
			p.next()
		}
		return ty, nil
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.peek().is(tokPunct, "}") {
		fname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		ftyp, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		ty.fields = append(ty.fields, srcField{name: fname, typ: ftyp})
	}
	p.next() // "}"
	return ty, nil
}

func (p *parser) parseGlobal() (*srcGlobal, error) {
	p.next() // "global"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	typ, err := p.parseTypeRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &srcGlobal{name: name, typ: typ}, nil
}

func (p *parser) parseFunc() (*srcFunc, error) {
	p.next() // "func"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &srcFunc{name: name}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.peek().is(tokPunct, ")") {
		if len(f.params) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		pname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		ptyp, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, srcParam{name: pname, typ: ptyp})
	}
	p.next() // ")"
	if p.peek().is(tokPunct, ":") {
		p.next()
		rt, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		f.ret = &rt
	}
	switch {
	case p.peek().is(tokKeyword, "application"):
		p.next()
		f.application = true
	case p.peek().is(tokKeyword, "library"):
		p.next()
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) parseBlock() ([]srcStmt, error) {
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var stmts []srcStmt
	for !p.peek().is(tokPunct, "}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, *s)
	}
	p.next() // "}"
	return stmts, nil
}

func (p *parser) parseStmt() (*srcStmt, error) {
	t := p.peek()
	switch {
	case t.is(tokKeyword, "var"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		typ, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		s := &srcStmt{kind: stDecl, declName: name, declType: typ}
		if p.peek().is(tokPunct, "=") {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.declInit = e
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return s, nil

	case t.is(tokKeyword, "return"):
		p.next()
		val, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &srcStmt{kind: stReturn, retVal: val}, nil

	case t.is(tokKeyword, "if"):
		p.next()
		thenB, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &srcStmt{kind: stBlock, blocks: [][]srcStmt{thenB}}
		if p.peek().is(tokKeyword, "else") {
			p.next()
			elseB, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.blocks = append(st.blocks, elseB)
		}
		return st, nil

	case t.is(tokKeyword, "while"):
		p.next()
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &srcStmt{kind: stBlock, blocks: [][]srcStmt{body}}, nil

	case t.kind == tokIdent:
		first := p.next()
		switch {
		case p.peek().is(tokPunct, "("):
			// Call statement with discarded result.
			call, err := p.parseCallAfterName(first)
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &srcStmt{kind: stExpr, call: call}, nil
		case p.peek().is(tokPunct, "."):
			// Field store or load-into? Only stores have a dotted LHS.
			p.next()
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &srcStmt{kind: stAssign, lhs: srcLValue{base: first, field: &field}, rhs: *rhs}, nil
		default:
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &srcStmt{kind: stAssign, lhs: srcLValue{base: first}, rhs: *rhs}, nil
		}
	default:
		return nil, errAt(t, "expected statement, found %q", t.text)
	}
}

func (p *parser) parseCallAfterName(fn token) (*srcCall, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	call := &srcCall{fn: fn}
	for !p.peek().is(tokPunct, ")") {
		if len(call.args) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.args = append(call.args, *arg)
	}
	p.next() // ")"
	return call, nil
}

func (p *parser) parseExpr() (*srcExpr, error) {
	t := p.peek()
	switch {
	case t.is(tokKeyword, "new"):
		p.next()
		tr, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		return &srcExpr{kind: exNew, typ: tr}, nil
	case t.kind == tokIdent:
		name := p.next()
		switch {
		case p.peek().is(tokPunct, "("):
			call, err := p.parseCallAfterName(name)
			if err != nil {
				return nil, err
			}
			return &srcExpr{kind: exCall, call: call}, nil
		case p.peek().is(tokPunct, "."):
			p.next()
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &srcExpr{kind: exField, base: name, field: field}, nil
		default:
			return &srcExpr{kind: exIdent, base: name}, nil
		}
	default:
		return nil, errAt(t, "expected expression, found %q", t.text)
	}
}
