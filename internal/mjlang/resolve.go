package mjlang

import (
	"fmt"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// Parse lexes, parses and resolves mini-Java source text into a frontend
// Program ready for lowering. Errors carry line:column positions.
func Parse(src string) (*frontend.Program, error) {
	sp, err := parse(src)
	if err != nil {
		return nil, err
	}
	r := &resolver{
		prog:     &frontend.Program{},
		typeIdx:  map[string]pag.TypeID{},
		arrayIdx: map[arrayKey]pag.TypeID{},
		globIdx:  map[string]int{},
		funcIdx:  map[string]int{},
	}
	if err := r.run(sp); err != nil {
		return nil, err
	}
	return r.prog, nil
}

type arrayKey struct {
	elem pag.TypeID
	dims int
}

type resolver struct {
	prog      *frontend.Program
	typeIdx   map[string]pag.TypeID
	arrayIdx  map[arrayKey]pag.TypeID
	globIdx   map[string]int
	funcIdx   map[string]int
	nextField pag.FieldID
}

func (r *resolver) run(sp *srcProgram) error {
	// Pass 1: declared type names.
	for _, ty := range sp.types {
		if _, dup := r.typeIdx[ty.name.text]; dup {
			return errAt(ty.name, "type %q redeclared", ty.name.text)
		}
		id := pag.TypeID(len(r.prog.Types))
		r.typeIdx[ty.name.text] = id
		r.prog.Types = append(r.prog.Types, frontend.Type{Name: ty.name.text, Ref: !ty.primitive})
	}
	// Pass 2: fields (may reference any type, including arrays).
	for _, ty := range sp.types {
		id := r.typeIdx[ty.name.text]
		if ty.primitive && len(ty.fields) > 0 {
			return errAt(ty.name, "primitive type %q cannot have fields", ty.name.text)
		}
		for _, f := range ty.fields {
			ftid, err := r.resolveTypeRef(f.typ)
			if err != nil {
				return err
			}
			for _, existing := range r.prog.Types[id].Fields {
				if existing.Name == f.name.text {
					return errAt(f.name, "field %q redeclared in %q", f.name.text, ty.name.text)
				}
			}
			r.nextField++
			r.prog.Types[id].Fields = append(r.prog.Types[id].Fields, frontend.Field{
				Name: f.name.text, ID: r.nextField, Type: ftid,
			})
		}
	}
	// Pass 3: globals.
	for _, g := range sp.globals {
		if _, dup := r.globIdx[g.name.text]; dup {
			return errAt(g.name, "global %q redeclared", g.name.text)
		}
		tid, err := r.resolveTypeRef(g.typ)
		if err != nil {
			return err
		}
		r.globIdx[g.name.text] = len(r.prog.Globals)
		r.prog.Globals = append(r.prog.Globals, frontend.GlobalVar{Name: g.name.text, Type: tid})
	}
	// Pass 4: function signatures.
	for _, f := range sp.funcs {
		if _, dup := r.funcIdx[f.name.text]; dup {
			return errAt(f.name, "func %q redeclared", f.name.text)
		}
		r.funcIdx[f.name.text] = len(r.prog.Methods)
		m := frontend.Method{Name: f.name.text, Ret: -1, Application: f.application}
		for _, prm := range f.params {
			tid, err := r.resolveTypeRef(prm.typ)
			if err != nil {
				return err
			}
			m.Params = append(m.Params, len(m.Locals))
			m.Locals = append(m.Locals, frontend.LocalVar{Name: prm.name.text, Type: tid})
		}
		if f.ret != nil {
			tid, err := r.resolveTypeRef(*f.ret)
			if err != nil {
				return err
			}
			m.Ret = len(m.Locals)
			m.Locals = append(m.Locals, frontend.LocalVar{Name: "$ret", Type: tid})
		}
		r.prog.Methods = append(r.prog.Methods, m)
	}
	// Pass 5: bodies.
	for fi, f := range sp.funcs {
		if err := r.lowerBody(fi, &f); err != nil {
			return err
		}
	}
	if err := r.prog.Validate(); err != nil {
		return fmt.Errorf("mjlang: internal lowering error: %w", err)
	}
	return nil
}

// resolveTypeRef resolves a (possibly array) type reference, creating array
// types on demand. Every array type's element field is the collapsed arr
// pseudo-field (pag.ArrField), matching the paper's array modelling.
func (r *resolver) resolveTypeRef(tr srcTypeRef) (pag.TypeID, error) {
	base, ok := r.typeIdx[tr.name.text]
	if !ok {
		return 0, errAt(tr.name, "unknown type %q", tr.name.text)
	}
	cur := base
	for d := 1; d <= tr.dims; d++ {
		key := arrayKey{elem: cur, dims: 1}
		if id, ok := r.arrayIdx[key]; ok {
			cur = id
			continue
		}
		id := pag.TypeID(len(r.prog.Types))
		r.prog.Types = append(r.prog.Types, frontend.Type{
			Name: r.prog.Types[cur].Name + "[]",
			Ref:  true,
			Fields: []frontend.Field{
				{Name: "arr", ID: pag.ArrField, Type: cur},
			},
		})
		r.arrayIdx[key] = id
		cur = id
	}
	return cur, nil
}

// bodyCtx carries per-function lowering state.
type bodyCtx struct {
	r      *resolver
	fi     int
	m      *frontend.Method
	scope  map[string]int // local name -> slot
	nTemps int
}

func (r *resolver) lowerBody(fi int, f *srcFunc) error {
	b := &bodyCtx{r: r, fi: fi, m: &r.prog.Methods[fi], scope: map[string]int{}}
	for i, prm := range f.params {
		if _, dup := b.scope[prm.name.text]; dup {
			return errAt(prm.name, "parameter %q redeclared", prm.name.text)
		}
		b.scope[prm.name.text] = b.m.Params[i]
	}
	for i := range f.body {
		if err := b.lowerStmt(&f.body[i]); err != nil {
			return err
		}
	}
	return nil
}

func (b *bodyCtx) newLocal(name string, t pag.TypeID) int {
	slot := len(b.m.Locals)
	b.m.Locals = append(b.m.Locals, frontend.LocalVar{Name: name, Type: t})
	return slot
}

func (b *bodyCtx) newTemp(t pag.TypeID) int {
	b.nTemps++
	return b.newLocal(fmt.Sprintf("$t%d", b.nTemps), t)
}

func (b *bodyCtx) emit(s frontend.Stmt) { b.m.Body = append(b.m.Body, s) }

// resolveVar resolves an identifier to a variable reference and its static
// type.
func (b *bodyCtx) resolveVar(name token) (frontend.VarRef, pag.TypeID, error) {
	if slot, ok := b.scope[name.text]; ok {
		return frontend.Local(slot), b.m.Locals[slot].Type, nil
	}
	if gi, ok := b.r.globIdx[name.text]; ok {
		return frontend.Global(gi), b.r.prog.Globals[gi].Type, nil
	}
	return frontend.NoVar, 0, errAt(name, "unknown variable %q", name.text)
}

// fieldOf looks field name up in the static type of a base variable.
func (b *bodyCtx) fieldOf(baseType pag.TypeID, field token) (pag.FieldID, pag.TypeID, error) {
	ty := &b.r.prog.Types[baseType]
	for _, f := range ty.Fields {
		if f.Name == field.text {
			return f.ID, f.Type, nil
		}
	}
	return 0, 0, errAt(field, "type %q has no field %q", ty.Name, field.text)
}

// exprType infers the static type of an expression.
func (b *bodyCtx) exprType(e *srcExpr) (pag.TypeID, error) {
	switch e.kind {
	case exNew:
		return b.r.resolveTypeRef(e.typ)
	case exIdent:
		_, t, err := b.resolveVar(e.base)
		return t, err
	case exField:
		_, bt, err := b.resolveVar(e.base)
		if err != nil {
			return 0, err
		}
		_, ft, err := b.fieldOf(bt, e.field)
		return ft, err
	case exCall:
		ci, ok := b.r.funcIdx[e.call.fn.text]
		if !ok {
			return 0, errAt(e.call.fn, "unknown function %q", e.call.fn.text)
		}
		callee := &b.r.prog.Methods[ci]
		if callee.Ret == -1 {
			return 0, errAt(e.call.fn, "%q returns nothing", e.call.fn.text)
		}
		return callee.Locals[callee.Ret].Type, nil
	}
	return 0, errAt(e.base, "unsupported expression")
}

// localArg returns a local VarRef carrying an argument expression's value:
// identifiers naming locals pass through directly; globals and compound
// expressions (allocations, nested calls, field reads) are lowered into
// typed temporaries first.
func (b *bodyCtx) localArg(arg *srcExpr) (frontend.VarRef, error) {
	if arg.kind == exIdent {
		ref, t, err := b.resolveVar(arg.base)
		if err != nil {
			return frontend.NoVar, err
		}
		if !ref.Global {
			return ref, nil
		}
		tmp := b.newTemp(t)
		b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(tmp), Src: ref})
		return frontend.Local(tmp), nil
	}
	t, err := b.exprType(arg)
	if err != nil {
		return frontend.NoVar, err
	}
	tmp := b.newTemp(t)
	if err := b.lowerExprInto(frontend.Local(tmp), arg); err != nil {
		return frontend.NoVar, err
	}
	return frontend.Local(tmp), nil
}

// lowerCall emits a call, returning the destination slot information.
func (b *bodyCtx) lowerCall(call *srcCall, dst frontend.VarRef) error {
	ci, ok := b.r.funcIdx[call.fn.text]
	if !ok {
		return errAt(call.fn, "unknown function %q", call.fn.text)
	}
	callee := &b.r.prog.Methods[ci]
	if len(call.args) != len(callee.Params) {
		return errAt(call.fn, "%q takes %d argument(s), got %d", call.fn.text, len(callee.Params), len(call.args))
	}
	var args []frontend.VarRef
	for i := range call.args {
		ref, err := b.localArg(&call.args[i])
		if err != nil {
			return err
		}
		args = append(args, ref)
	}
	if !dst.IsNoVar() && callee.Ret == -1 {
		return errAt(call.fn, "%q returns nothing", call.fn.text)
	}
	if dst.Global {
		// Route the result through a temp: ret edges connect locals.
		tmp := b.newTemp(b.r.prog.Globals[dst.Index].Type)
		b.emit(frontend.Stmt{Kind: frontend.StCall, Callee: ci, Args: args, Dst: frontend.Local(tmp)})
		b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: dst, Src: frontend.Local(tmp)})
		return nil
	}
	b.emit(frontend.Stmt{Kind: frontend.StCall, Callee: ci, Args: args, Dst: dst})
	return nil
}

// lowerExprInto lowers an expression so its value lands in dst.
func (b *bodyCtx) lowerExprInto(dst frontend.VarRef, e *srcExpr) error {
	switch e.kind {
	case exNew:
		tid, err := b.r.resolveTypeRef(e.typ)
		if err != nil {
			return err
		}
		if !b.r.prog.Types[tid].Ref {
			return errAt(e.typ.name, "cannot allocate primitive type %q", e.typ.name.text)
		}
		if dst.Global {
			tmp := b.newTemp(tid)
			b.emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: frontend.Local(tmp), Type: tid})
			b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: dst, Src: frontend.Local(tmp)})
			return nil
		}
		b.emit(frontend.Stmt{Kind: frontend.StAlloc, Dst: dst, Type: tid})
		return nil
	case exIdent:
		src, _, err := b.resolveVar(e.base)
		if err != nil {
			return err
		}
		b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: dst, Src: src})
		return nil
	case exField:
		base, bt, err := b.resolveVar(e.base)
		if err != nil {
			return err
		}
		fid, _, err := b.fieldOf(bt, e.field)
		if err != nil {
			return err
		}
		b.emit(frontend.Stmt{Kind: frontend.StLoad, Dst: dst, Base: base, Field: fid})
		return nil
	case exCall:
		return b.lowerCall(e.call, dst)
	}
	return errAt(e.base, "unsupported expression")
}

func (b *bodyCtx) lowerStmt(s *srcStmt) error {
	switch s.kind {
	case stDecl:
		if _, dup := b.scope[s.declName.text]; dup {
			return errAt(s.declName, "variable %q redeclared", s.declName.text)
		}
		tid, err := b.r.resolveTypeRef(s.declType)
		if err != nil {
			return err
		}
		slot := b.newLocal(s.declName.text, tid)
		b.scope[s.declName.text] = slot
		if s.declInit != nil {
			return b.lowerExprInto(frontend.Local(slot), s.declInit)
		}
		return nil

	case stAssign:
		if s.lhs.field != nil {
			// Store: base.f = rhs. The stored value must be a variable;
			// other expressions go through a temp.
			base, bt, err := b.resolveVar(s.lhs.base)
			if err != nil {
				return err
			}
			fid, ft, err := b.fieldOf(bt, *s.lhs.field)
			if err != nil {
				return err
			}
			var src frontend.VarRef
			if s.rhs.kind == exIdent {
				src, _, err = b.resolveVar(s.rhs.base)
				if err != nil {
					return err
				}
			} else {
				tmp := b.newTemp(ft)
				if err := b.lowerExprInto(frontend.Local(tmp), &s.rhs); err != nil {
					return err
				}
				src = frontend.Local(tmp)
			}
			b.emit(frontend.Stmt{Kind: frontend.StStore, Base: base, Field: fid, Src: src})
			return nil
		}
		dst, _, err := b.resolveVar(s.lhs.base)
		if err != nil {
			return err
		}
		return b.lowerExprInto(dst, &s.rhs)

	case stReturn:
		if b.m.Ret == -1 {
			return errAt(s.retVal, "function %q returns nothing", b.m.Name)
		}
		src, _, err := b.resolveVar(s.retVal)
		if err != nil {
			return err
		}
		b.emit(frontend.Stmt{Kind: frontend.StAssign, Dst: frontend.Local(b.m.Ret), Src: src})
		return nil

	case stExpr:
		return b.lowerCall(s.call, frontend.NoVar)

	case stBlock:
		// Flow-insensitive analysis: every branch/iteration contributes,
		// so nested blocks flatten into the enclosing body. Declarations
		// inside blocks scope to the whole function (the language keeps
		// scoping simple).
		for bi := range s.blocks {
			for si := range s.blocks[bi] {
				if err := b.lowerStmt(&s.blocks[bi][si]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("mjlang: unknown statement kind")
}
