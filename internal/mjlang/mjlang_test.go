package mjlang

import (
	"strings"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// vectorSrc is the paper's Fig. 2 program in mini-Java source form.
const vectorSrc = `
type int primitive;
type Object {}
type String {}
type Integer {}
type Vector { elems: Object[]; }

func init(this: Vector) application {
    var t: Object[] = new Object[];
    this.elems = t;
}
func add(this: Vector, e: Object) application {
    var t: Object[] = this.elems;
    t.arr = e;
}
func get(this: Vector): Object application {
    var t: Object[] = this.elems;
    var r: Object = t.arr;
    return r;
}
func main() application {
    var v1: Vector = new Vector;
    init(v1);
    var n1: String = new String;
    add(v1, n1);
    var s1: Object = get(v1);
    var v2: Vector = new Vector;
    init(v2);
    var n2: Integer = new Integer;
    add(v2, n2);
    var s2: Object = get(v2);
}
`

func parseOrDie(t *testing.T, src string) *frontend.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseVector(t *testing.T) {
	p := parseOrDie(t, vectorSrc)
	if len(p.Methods) != 4 {
		t.Fatalf("methods = %d, want 4", len(p.Methods))
	}
	// Object[] auto-declared once: int, Object, String, Integer, Vector + Object[].
	if len(p.Types) != 6 {
		for _, ty := range p.Types {
			t.Log(ty.Name)
		}
		t.Fatalf("types = %d, want 6", len(p.Types))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestVectorSemantics: the parsed program must produce the paper's exact
// points-to facts.
func TestVectorSemantics(t *testing.T) {
	p := parseOrDie(t, vectorSrc)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})

	// main is method 3; slot layout: v1, n1, s1, v2, n2, s2 in decl order.
	mainM := 3
	slotOf := func(name string) int {
		for i, lv := range p.Methods[mainM].Locals {
			if lv.Name == name {
				return i
			}
		}
		t.Fatalf("no local %q", name)
		return -1
	}
	s1 := lo.LocalNode[mainM][slotOf("s1")]
	s2 := lo.LocalNode[mainM][slotOf("s2")]
	// Allocation order in main: o(v1)=0, o(n1)=1, o(v2)=2, o(n2)=3.
	oN1 := lo.ObjectNode[mainM][1]
	oN2 := lo.ObjectNode[mainM][3]

	r1 := s.PointsTo(s1, pag.EmptyContext)
	if got := r1.Objects(); len(got) != 1 || got[0] != oN1 {
		t.Fatalf("pts(s1) = %v, want [o(n1)=%d]", got, oN1)
	}
	r2 := s.PointsTo(s2, pag.EmptyContext)
	if got := r2.Objects(); len(got) != 1 || got[0] != oN2 {
		t.Fatalf("pts(s2) = %v, want [o(n2)=%d]", got, oN2)
	}
}

func TestGlobalsAndTemps(t *testing.T) {
	src := `
type Object {}
global G: Object;
func id(x: Object): Object { return x; }
func main() application {
    G = new Object;
    var y: Object = id(G);   // global arg must be copied through a temp
    G = id(y);               // global result likewise
}
`
	p := parseOrDie(t, src)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})
	var y pag.NodeID
	for i, lv := range p.Methods[1].Locals {
		if lv.Name == "y" {
			y = lo.LocalNode[1][i]
		}
	}
	r := s.PointsTo(y, pag.EmptyContext)
	if len(r.Objects()) != 1 {
		t.Fatalf("pts(y) = %v, want the single allocation", r.Objects())
	}
}

func TestReturnSynthesis(t *testing.T) {
	src := `
type Object {}
func pick(a: Object, b: Object): Object {
    return a;
    return b;
}
func main() application {
    var x: Object = new Object;
    var y: Object = new Object;
    var r: Object = pick(x, y);
}
`
	p := parseOrDie(t, src)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})
	var r pag.NodeID
	for i, lv := range p.Methods[1].Locals {
		if lv.Name == "r" {
			r = lo.LocalNode[1][i]
		}
	}
	// Flow-insensitively, both returns reach r.
	if got := s.PointsTo(r, pag.EmptyContext).Objects(); len(got) != 2 {
		t.Fatalf("pts(r) = %v, want both objects", got)
	}
}

func TestNestedArrays(t *testing.T) {
	src := `
type Object {}
func main() application {
    var m: Object[][] = new Object[][];
    var row: Object[] = new Object[];
    var v: Object = new Object;
    row.arr = v;
    m.arr = row;
    var r0: Object[] = m.arr;
    var r: Object = r0.arr;
}
`
	p := parseOrDie(t, src)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})
	var r pag.NodeID
	for i, lv := range p.Methods[0].Locals {
		if lv.Name == "r" {
			r = lo.LocalNode[0][i]
		}
	}
	got := s.PointsTo(r, pag.EmptyContext).Objects()
	if len(got) == 0 {
		t.Fatal("nested array read found nothing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"garbage", "what is this", `expected top-level declaration`},
		{"bad char", "type A { x: !; }", `unexpected character`},
		{"unknown type", "global G: Nope;", `unknown type`},
		{"type redecl", "type A {}\ntype A {}", "redeclared"},
		{"field redecl", "type A { f: A; f: A; }", "redeclared"},
		{"primitive fields", "type P primitive;\n", ""},
		{"unknown var", "type O {}\nfunc m() { x = new O; }", `unknown variable "x"`},
		{"unknown func", "type O {}\nfunc m() { f(); }", `unknown function`},
		{"arity", "type O {}\nfunc f(a: O) {}\nfunc m() { var x: O = new O; f(x, x); }", "argument"},
		{"void result", "type O {}\nfunc f() {}\nfunc m() { var x: O = f(); }", "returns nothing"},
		{"return in void", "type O {}\nfunc m() { var x: O = new O; return x; }", "returns nothing"},
		{"no such field", "type O {}\nfunc m() { var x: O = new O; var y: O = x.f; }", "no field"},
		{"new primitive", "type i primitive;\ntype O {}\nfunc m() { var x: O = new i; }", "primitive"},
		{"var redecl", "type O {}\nfunc m(a: O) { var a: O = new O; }", "redeclared"},
		{"global redecl", "type O {}\nglobal G: O;\nglobal G: O;", "redeclared"},
		{"missing semi", "type O {}\nfunc m() { var x: O = new O }", `expected ";"`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: error expected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	src := "type O {}\nfunc m() {\n    x = new O;\n}"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 3 {
		t.Fatalf("error line = %d, want 3 (%v)", perr.Line, err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// leading comment
type Object {}   // trailing
func main() application {
    // body comment
    var x: Object = new Object;
}
`
	p := parseOrDie(t, src)
	if len(p.Methods) != 1 || len(p.Methods[0].Body) != 1 {
		t.Fatalf("unexpected structure: %+v", p.Methods)
	}
}

func TestLibraryAttribute(t *testing.T) {
	src := `
type Object {}
func helper() library { var x: Object = new Object; }
func main() application { helper(); }
`
	p := parseOrDie(t, src)
	if p.Methods[0].Application {
		t.Fatal("library func marked application")
	}
	if !p.Methods[1].Application {
		t.Fatal("application func not marked")
	}
}

func TestNestedCallArguments(t *testing.T) {
	src := `
type Object {}
func id(x: Object): Object { return x; }
func main() application {
    var y: Object = id(id(new Object));
    var z: Object = id(y.self);
}
`
	// y.self doesn't exist — split the test: first the valid part.
	_ = src
	valid := `
type Object {}
func id(x: Object): Object { return x; }
func main() application {
    var y: Object = id(id(new Object));
}
`
	p := parseOrDie(t, valid)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})
	var y pag.NodeID
	mainIdx := 1
	for i, lv := range p.Methods[mainIdx].Locals {
		if lv.Name == "y" {
			y = lo.LocalNode[mainIdx][i]
		}
	}
	if got := s.PointsTo(y, pag.EmptyContext).Objects(); len(got) != 1 {
		t.Fatalf("pts(y) = %v, want the nested allocation", got)
	}
}

func TestFieldExprArgument(t *testing.T) {
	src := `
type Object {}
type Box { val: Object; }
func id(x: Object): Object { return x; }
func main() application {
    var b: Box = new Box;
    var v: Object = new Object;
    b.val = v;
    var y: Object = id(b.val);
}
`
	p := parseOrDie(t, src)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})
	mainIdx := 1
	var y pag.NodeID
	for i, lv := range p.Methods[mainIdx].Locals {
		if lv.Name == "y" {
			y = lo.LocalNode[mainIdx][i]
		}
	}
	got := s.PointsTo(y, pag.EmptyContext).Objects()
	if len(got) != 1 {
		t.Fatalf("pts(y) = %v", got)
	}
}

func TestIfElseWhileBlocks(t *testing.T) {
	src := `
type Object {}
func main() application {
    var x: Object = new Object;
    if {
        x = new Object;
    } else {
        var inner: Object = new Object;
        x = inner;
    }
    while {
        x = new Object;
    }
}
`
	p := parseOrDie(t, src)
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := cfl.New(lo.Graph, cfl.Config{})
	var x pag.NodeID
	for i, lv := range p.Methods[0].Locals {
		if lv.Name == "x" {
			x = lo.LocalNode[0][i]
		}
	}
	// Flow-insensitive: all four allocations reach x.
	if got := s.PointsTo(x, pag.EmptyContext).Objects(); len(got) != 4 {
		t.Fatalf("pts(x) = %v, want 4 allocations (flow-insensitive)", got)
	}
}

func TestNestedCallArgErrors(t *testing.T) {
	// A void call used as an argument must error with position info.
	src := `
type Object {}
func v() { var a: Object = new Object; }
func id(x: Object): Object { return x; }
func main() application {
    var y: Object = id(v());
}
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "returns nothing") {
		t.Fatalf("err = %v", err)
	}
}
