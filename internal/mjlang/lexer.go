// Package mjlang implements a small textual frontend ("mini-Java", .mj
// files) for the analysis: a lexer, a recursive-descent parser and a
// resolver that lower source text to the frontend IR. It plays the role the
// Soot frontend plays in the paper — turning programs into PAGs — for users
// who want to write analysable programs as text rather than construct IR
// values.
//
// The language is deliberately tiny but covers everything the PAG models:
//
//	type Object {}                          // reference class
//	type Vector { elems: Object[]; }        // fields (arrays auto-declare)
//	type int primitive;                     // primitive type
//	global G: Vector;                       // static variable
//
//	func get(this: Vector): Object application {
//	    var t: Object[] = this.elems;       // load
//	    var r: Object = t.arr;              // collapsed array element
//	    return r;
//	}
//	func main() application {
//	    var v: Vector = new Vector;
//	    init(v);                            // static call
//	    var s: Object = get(v);
//	}
//
// Calls are statically dispatched (as in the paper's PAG, where the call
// graph is precomputed). Array element accesses use the implicit field
// `arr`, mirroring the paper's collapsed array modelling.
package mjlang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokPunct
)

var keywords = map[string]bool{
	"type": true, "primitive": true, "global": true, "func": true,
	"var": true, "new": true, "return": true, "application": true,
	"library": true, "if": true, "else": true, "while": true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) is(kind tokenKind, text string) bool {
	return t.kind == kind && t.text == text
}

// Error is a source-position-annotated frontend error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenises src. Comments run from "//" to end of line. Punctuation
// tokens are single characters except "[]" which is lexed as one token for
// array type syntax.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start, startLine, startCol := i, line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			text := src[start:i]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: startLine, col: startCol})
		case c == '[' && i+1 < len(src) && src[i+1] == ']':
			toks = append(toks, token{kind: tokPunct, text: "[]", line: line, col: col})
			advance(2)
		case strings.ContainsRune("{}():;,=.", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c), line: line, col: col})
			advance(1)
		default:
			return nil, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}
