package mjlang

import (
	"testing"

	"parcfl/internal/frontend"
)

// FuzzParse: the parser must never panic, and every accepted program must
// validate and lower. Run with `go test -fuzz FuzzParse ./internal/mjlang`
// for continuous fuzzing; the seed corpus runs in normal `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"type Object {}",
		vectorSrc,
		"type O {}\nglobal G: O;\nfunc m() application { G = new O; }",
		"func broken(",
		"type A { f: A; }\nfunc m(a: A) { a.f = a; var x: A = a.f; }",
		"type i primitive;\ntype O {}\nfunc f(x: O): O { return x; }\nfunc m() { var y: O = f(f(new O)); }", // nested call expr (invalid arg) — must error, not crash
		"// just a comment",
		"type O {}\nfunc m() { var a: O[][] = new O[][]; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", err, src)
		}
		if _, err := frontend.Lower(p); err != nil {
			t.Fatalf("accepted program fails lowering: %v\nsource:\n%s", err, src)
		}
	})
}
