package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestBenchGridSmall runs the full mode grid on one tiny preset and checks
// the structural invariants every BENCH_runs.json consumer relies on.
func TestBenchGridSmall(t *testing.T) {
	rep, err := BenchGrid(Options{
		Scale: 0.002, Threads: 4, Benchmarks: []string{"_200_check"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	// 4 modes + the DQ+cache row + the Serve-cold/Serve-warm/Serve-soak
	// rows + the Serve-sharded cluster triple + the traversal-kernel
	// off/on pair.
	if len(rep.Runs) != 13 {
		t.Fatalf("%d runs, want 13", len(rep.Runs))
	}
	wantModes := []string{"SeqCFL", "ParCFL-naive", "ParCFL-D", "ParCFL-DQ",
		"ParCFL-DQ+cache", "Serve-cold", "Serve-warm", "Serve-soak",
		"Serve-sharded-1", "Serve-sharded-2", "Serve-sharded-4",
		"seq+kernel-off", "seq+kernel-on"}
	queries := rep.Runs[0].Queries
	for i, r := range rep.Runs {
		if r.Mode != wantModes[i] {
			t.Fatalf("run %d mode = %q, want %q", i, r.Mode, wantModes[i])
		}
		if r.Bench != "_200_check" || r.WallNS <= 0 || r.Queries == 0 {
			t.Fatalf("run %d malformed: %+v", i, r)
		}
		serving := i >= 5 && i <= 10
		if !serving && r.Queries != queries {
			t.Fatalf("run %d: %d queries, Seq saw %d", i, r.Queries, queries)
		}
		if r.StepsWalked != r.TotalSteps-r.StepsSaved {
			t.Fatalf("run %d: walked %d != total %d - saved %d", i, r.StepsWalked, r.TotalSteps, r.StepsSaved)
		}
		if serving && (r.QPS <= 0 || r.P50NS <= 0 || r.P99NS < r.P50NS) {
			t.Fatalf("serving run %d has no throughput shape: %+v", i, r)
		}
	}
	soak := rep.Runs[7]
	if soak.TargetQPS <= 0 || soak.P999NS < soak.P99NS || soak.Completed == 0 {
		t.Fatalf("soak row malformed: %+v", soak)
	}
	if shares := soak.AdmitShare + soak.QueueShare + soak.SolveShare + soak.FanoutShare; shares < 0.99 || shares > 1.01 {
		t.Fatalf("soak phase shares sum to %.4f, want 1: %+v", shares, soak)
	}
	if soak.OverloadRate > 0.01 {
		t.Fatalf("soak overloaded %.2f%% of requests at a sub-saturation rate", 100*soak.OverloadRate)
	}
	cold, warm := rep.Runs[5], rep.Runs[6]
	if warm.StepsWalked >= cold.StepsWalked {
		t.Fatalf("warm serve walked %d steps, cold walked %d — no snapshot reuse win",
			warm.StepsWalked, cold.StepsWalked)
	}
	if warm.CacheHitRate <= cold.CacheHitRate {
		t.Fatalf("warm serve cache hit-rate %.3f not above cold %.3f",
			warm.CacheHitRate, cold.CacheHitRate)
	}
	seq := rep.Runs[0]
	if seq.ModeledSpeedup != 1 || seq.WallSpeedup != 1 {
		t.Fatalf("Seq row must be its own baseline: %+v", seq)
	}
	if d := rep.Runs[2]; d.ShareFinished == 0 || d.ShareLookups == 0 {
		t.Fatalf("D row has no sharing activity: %+v", d)
	}
	if c := rep.Runs[4]; c.CacheHits+c.CacheMisses == 0 {
		t.Fatalf("cache row has no cache activity: %+v", c)
	}
	s1, s4 := rep.Runs[8], rep.Runs[10]
	if s1.Shards != 1 || rep.Runs[9].Shards != 2 || s4.Shards != 4 {
		t.Fatalf("sharded rows carry wrong shard counts: %+v", rep.Runs[8:11])
	}
	if s4.QPS <= s1.QPS {
		t.Fatalf("4-shard cluster qps %.1f not above single-shard %.1f — admission scaling lost",
			s4.QPS, s1.QPS)
	}
	koff, kon := rep.Runs[11], rep.Runs[12]
	if koff.TotalSteps != kon.TotalSteps {
		t.Fatalf("kernel rows diverge: off %d steps, on %d", koff.TotalSteps, kon.TotalSteps)
	}
	if koff.StepsPerSec <= 0 || kon.StepsPerSec <= 0 {
		t.Fatalf("kernel rows missing throughput: off %+v on %+v", koff, kon)
	}
	if kon.AllocsPerOp >= koff.AllocsPerOp {
		t.Fatalf("kernel-on allocates %d/op, off %d/op — no allocation win",
			kon.AllocsPerOp, koff.AllocsPerOp)
	}
}

// TestBenchReportJSONRoundTrip: the report must survive marshal/unmarshal
// bit-exactly — the contract behind the BENCH_runs.json artifact.
func TestBenchReportJSONRoundTrip(t *testing.T) {
	orig := &BenchReport{
		Schema: BenchSchema, Generated: "2026-01-02T03:04:05Z",
		Host: "linux/amd64 8 cores", Scale: 0.01, Budget: 75000, Threads: 4,
		Runs: []BenchRun{{
			Bench: "_209_db", Mode: "ParCFL-DQ", Threads: 4, WallNS: 123456789,
			Queries: 1339, Completed: 1300, Aborted: 39, EarlyTerminations: 7,
			TotalSteps: 9999999, StepsWalked: 7000000, StepsSaved: 2999999, JumpsTaken: 4242,
			ModeledSpeedup: 8.1, WallSpeedup: 2.3, RS: 0.43,
			ShareFinished: 100, ShareUnfinished: 5, ShareLookups: 5000, ShareHits: 900, ShareHitRate: 0.18,
			CacheHits: 10, CacheMisses: 90, CacheHitRate: 0.1,
			NumGroups: 77, AvgGroupSize: 17.4,
		}},
	}
	data, err := json.MarshalIndent(orig, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, &back) {
		t.Fatalf("round trip changed the report:\n%+v\nvs\n%+v", orig, back)
	}
	// Field names are part of the schema contract: spot-check the wire keys.
	for _, key := range []string{
		`"schema"`, `"wall_ns"`, `"early_terminations"`, `"steps_walked"`,
		`"modeled_speedup"`, `"r_s"`, `"share_hit_rate"`, `"cache_hit_rate"`,
		`"avg_group_size"`,
	} {
		if !bytes.Contains(data, []byte(key)) {
			t.Fatalf("wire format lost key %s:\n%s", key, data)
		}
	}
}

// TestBenchWritesJSONFile: the Bench experiment honours Options.JSONPath;
// the file it writes is a history that parses back under the current schema
// and accumulates across runs instead of clobbering.
func TestBenchWritesJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_runs.json")
	var out bytes.Buffer
	err := BenchTrajectory(Options{
		Scale: 0.002, Threads: 2, Benchmarks: []string{"_200_check"},
		Out: &out, JSONPath: path, Label: "first", GitRev: "abc1234",
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := LoadBenchHistory(path)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if h.Schema != BenchHistorySchema || len(h.Reports) != 1 {
		t.Fatalf("artifact = schema %q, %d reports", h.Schema, len(h.Reports))
	}
	rep := h.Reports[0]
	if rep.Schema != BenchSchema || len(rep.Runs) != 13 {
		t.Fatalf("report = schema %q, %d runs", rep.Schema, len(rep.Runs))
	}
	if rep.Label != "first" || rep.GitRev != "abc1234" {
		t.Fatalf("report stamp = label %q rev %q", rep.Label, rep.GitRev)
	}
	if !bytes.Contains(out.Bytes(), []byte("wrote")) {
		t.Fatalf("no confirmation line in output: %s", out.String())
	}

	// A second run with a different label appends; re-running an existing
	// label replaces its entry, keeping the history at two reports.
	for _, label := range []string{"second", "second"} {
		err = BenchTrajectory(Options{
			Scale: 0.002, Threads: 2, Benchmarks: []string{"_200_check"},
			Out: &out, JSONPath: path, Label: label,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	h, err = LoadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Reports) != 2 {
		t.Fatalf("history has %d reports, want 2 (append then replace)", len(h.Reports))
	}
	if h.Reports[0].Label != "first" || h.Reports[1].Label != "second" {
		t.Fatalf("history labels = %q, %q", h.Reports[0].Label, h.Reports[1].Label)
	}
}

// TestBenchHistoryLegacyAndMerge: a legacy v1 single-report file loads as a
// one-entry history, and unlabelled reports always append.
func TestBenchHistoryLegacyAndMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_runs.json")
	legacy := BenchReport{Schema: BenchSchema, Generated: "2026-01-02T03:04:05Z", Scale: 0.01}
	data, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := LoadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != BenchHistorySchema || len(h.Reports) != 1 || h.Reports[0].Generated != legacy.Generated {
		t.Fatalf("legacy wrap = %+v", h)
	}

	// Unlabelled reports append (no label to match on).
	if _, err := WriteBenchHistory(path, BenchReport{Schema: BenchSchema}); err != nil {
		t.Fatal(err)
	}
	if n, err := WriteBenchHistory(path, BenchReport{Schema: BenchSchema}); err != nil || n != 3 {
		t.Fatalf("unlabelled merge: n=%d err=%v, want 3 reports", n, err)
	}

	// A missing file is an empty history, not an error.
	empty, err := LoadBenchHistory(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(empty.Reports) != 0 {
		t.Fatalf("missing file: %+v, %v", empty, err)
	}

	// Garbage schemas are rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchHistory(bad); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
