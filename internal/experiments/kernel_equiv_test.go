package experiments

import (
	"reflect"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/engine"
	"parcfl/internal/javagen"
	"parcfl/internal/kernel"
	"parcfl/internal/pag"
	"parcfl/internal/share"
)

// stripProf clears the attribution pointers so result slices can be compared
// structurally (the breakdowns are compared via their conservation sums).
func stripProf(rs []engine.QueryResult) []engine.QueryResult {
	out := append([]engine.QueryResult(nil), rs...)
	for i := range out {
		out[i].Prof = nil
	}
	return out
}

// TestKernelModeEquivalence is the kernel-mode contract: over every bench
// preset, a sequential batch run with the kernel enabled returns results
// byte-identical to the node-at-a-time solver — same objects, same context
// counts, same step counts, same abort flags — and the profile conservation
// invariant (Prof.Sum() == Steps) holds in kernel mode.
func TestKernelModeEquivalence(t *testing.T) {
	for _, name := range benchDefaults {
		t.Run(name, func(t *testing.T) {
			pr, err := javagen.PresetByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := PrepareBench(pr, 0.004)
			if err != nil {
				t.Fatal(err)
			}
			prep := kernel.Build(b.Lowered.Graph)
			base := engine.Config{Mode: engine.Seq, Budget: 75000, Profile: true}
			kcfg := base
			kcfg.Kernel = prep

			plain, plainStats := engine.Run(b.Lowered.Graph, b.Queries, base)
			kern, kernStats := engine.Run(b.Lowered.Graph, b.Queries, kcfg)

			if !reflect.DeepEqual(stripProf(plain), stripProf(kern)) {
				t.Fatal("kernel-mode results differ from node-at-a-time results")
			}
			if plainStats.TotalSteps != kernStats.TotalSteps {
				t.Fatalf("step totals differ: %d vs %d", plainStats.TotalSteps, kernStats.TotalSteps)
			}
			for i := range kern {
				if kern[i].Prof == nil {
					t.Fatalf("query %d: no attribution in kernel mode", i)
				}
				if got, want := kern[i].Prof.Sum(), int64(kern[i].Steps); got != want {
					t.Fatalf("query %d: conservation violated in kernel mode: Sum()=%d Steps=%d", i, got, want)
				}
			}
		})
	}
}

// TestKernelModeEquivalenceSharing repeats the contract with the jmp-edge
// data sharing of Algorithm 2 enabled, single-threaded (one worker makes
// record/take order deterministic, so the two runs must agree exactly —
// including early terminations, jumps taken and steps saved).
func TestKernelModeEquivalenceSharing(t *testing.T) {
	pr, err := javagen.PresetByName(benchDefaults[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareBench(pr, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	prep := kernel.Build(b.Lowered.Graph)
	run := func(kern *kernel.Prep) []cfl.Result {
		st := share.NewStore(share.DefaultConfig())
		s := cfl.New(b.Lowered.Graph, cfl.Config{Budget: 75000, Share: st, Kernel: kern})
		out := make([]cfl.Result, 0, len(b.Queries))
		for _, v := range b.Queries {
			out = append(out, s.PointsTo(v, pag.EmptyContext))
		}
		return out
	}
	if !reflect.DeepEqual(run(nil), run(prep)) {
		t.Fatal("kernel-mode results with sharing differ from node-at-a-time results")
	}
}

// TestKernelModeWitnessEquivalence checks the collapsed↔original mapping
// contract end to end: witness paths reconstructed in kernel mode are
// step-for-step identical to the plain solver's, reported in original node
// IDs.
func TestKernelModeWitnessEquivalence(t *testing.T) {
	pr, err := javagen.PresetByName(benchDefaults[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareBench(pr, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Lowered.Graph
	prep := kernel.Build(g)
	plain := cfl.New(g, cfl.Config{Budget: 75000})
	kern := cfl.New(g, cfl.Config{Budget: 75000, Kernel: prep})

	witnesses := 0
	for _, v := range b.Queries {
		if witnesses >= 25 {
			break
		}
		r := plain.PointsTo(v, pag.EmptyContext)
		if r.Aborted || len(r.PointsTo) == 0 {
			continue
		}
		for _, oc := range r.PointsTo[:1] {
			pw, pok := plain.Explain(v, pag.EmptyContext, oc.Node)
			kw, kok := kern.Explain(v, pag.EmptyContext, oc.Node)
			if pok != kok || !reflect.DeepEqual(pw, kw) {
				t.Fatalf("witness for var %d obj %d differs between modes:\nplain: %v (%v)\nkernel: %v (%v)",
					v, oc.Node, pw, pok, kw, kok)
			}
			if pok {
				witnesses++
			}
			// The inverse direction through the same pair.
			pf, pfok := plain.ExplainFlows(oc.Node, oc.Ctx, v)
			kf, kfok := kern.ExplainFlows(oc.Node, oc.Ctx, v)
			if pfok != kfok || !reflect.DeepEqual(pf, kf) {
				t.Fatalf("flows witness for obj %d var %d differs between modes", oc.Node, v)
			}
		}
	}
	if witnesses == 0 {
		t.Fatal("no witnesses exercised; preset or scale too small")
	}
}

// TestKernelRows: the grid rows run, assert equality internally, and show
// the kernel reducing allocations per query.
func TestKernelRows(t *testing.T) {
	pr, err := javagen.PresetByName("_201_compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareBench(pr, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := KernelRows(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Mode != "seq+kernel-off" || on.Mode != "seq+kernel-on" {
		t.Fatalf("modes %q/%q", off.Mode, on.Mode)
	}
	if off.TotalSteps != on.TotalSteps {
		t.Fatalf("steps diverge: %d off, %d on", off.TotalSteps, on.TotalSteps)
	}
	if off.StepsPerSec <= 0 || on.StepsPerSec <= 0 {
		t.Fatalf("steps/sec not recorded: off %.0f, on %.0f", off.StepsPerSec, on.StepsPerSec)
	}
	if on.AllocsPerOp >= off.AllocsPerOp {
		t.Fatalf("kernel-on allocs/op %d not below kernel-off %d", on.AllocsPerOp, off.AllocsPerOp)
	}
}
