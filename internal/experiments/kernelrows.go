package experiments

import (
	"fmt"
	"reflect"
	"runtime"

	"parcfl/internal/engine"
	"parcfl/internal/kernel"
)

// Kernel-on/off rows: the same sequential census run twice — once over the
// graph's adjacency lists with NodeCtx-keyed maps, once over the
// preprocessed dense form (internal/kernel) — so the trajectory records
// whether the kernel's layout actually buys throughput and allocation
// savings on this host. The kernel build itself runs outside the timed
// region (it is a once-per-graph cost a resident service pays at startup,
// not per query), and the two runs' results are asserted deep-equal
// including step counts: a kernel that answered anything differently would
// make its rows meaningless, so divergence is an error, not a footnote.

// kernelRun executes the census sequentially and measures engine wall time
// plus the heap allocation delta across the run.
func kernelRun(b *Bench, budget int, prep *kernel.Prep) ([]engine.QueryResult, engine.Stats, int64) {
	var before, after runtime.MemStats
	runtime.GC() // settle the heap so Mallocs deltas compare runs, not GC timing
	runtime.ReadMemStats(&before)
	results, st := engine.Run(b.Lowered.Graph, b.Queries, engine.Config{
		Mode: engine.Seq, Threads: 1, Budget: budget,
		TypeLevels: b.Lowered.TypeLevels, Kernel: prep,
	})
	runtime.ReadMemStats(&after)
	return results, st, int64(after.Mallocs - before.Mallocs)
}

func kernelRowFrom(bench, mode string, st engine.Stats, mallocs int64, queries int) BenchRun {
	r := benchRunFrom(bench, st, st)
	r.Mode = mode
	if st.Wall > 0 {
		r.StepsPerSec = float64(st.TotalSteps) / st.Wall.Seconds()
	}
	if queries > 0 {
		r.AllocsPerOp = mallocs / int64(queries)
	}
	return r
}

// KernelRows runs the kernel-off/kernel-on pair for one prepared benchmark
// and returns the two grid rows. It errors if the two runs disagree on any
// result — the kernel's contract is byte-identical traversal.
func KernelRows(b *Bench, opts Options) ([]BenchRun, error) {
	opts = opts.withDefaults()
	off, offSt, offMallocs := kernelRun(b, opts.Budget, nil)

	prep := kernel.Build(b.Lowered.Graph) // offline, outside both timed regions
	on, onSt, onMallocs := kernelRun(b, opts.Budget, prep)

	if !reflect.DeepEqual(off, on) {
		return nil, fmt.Errorf("kernel rows for %s: kernel-on results diverge from kernel-off", b.Preset.Name)
	}
	if offSt.TotalSteps != onSt.TotalSteps {
		return nil, fmt.Errorf("kernel rows for %s: step counts diverge (%d off, %d on)",
			b.Preset.Name, offSt.TotalSteps, onSt.TotalSteps)
	}
	return []BenchRun{
		kernelRowFrom(b.Preset.Name, "seq+kernel-off", offSt, offMallocs, len(b.Queries)),
		kernelRowFrom(b.Preset.Name, "seq+kernel-on", onSt, onMallocs, len(b.Queries)),
	}, nil
}
