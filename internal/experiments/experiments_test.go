package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts keeps experiment tests fast: two small benchmarks at a small
// scale and few threads.
func tinyOpts(buf *bytes.Buffer) Options {
	return Options{
		Scale:      0.002,
		Budget:     75000,
		Threads:    4,
		Benchmarks: []string{"_200_check", "_209_db"},
		Out:        buf,
	}
}

func TestPrepareBenchDeterministic(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts(&buf)
	presets, err := opts.presets()
	if err != nil {
		t.Fatal(err)
	}
	a, err := PrepareBench(presets[0], opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareBench(presets[0], opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("query counts differ: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatal("shuffled batch order is not deterministic")
		}
	}
	// The shuffle must actually reorder (overwhelmingly likely).
	same := true
	for i, v := range a.Queries {
		if v != a.Lowered.AppQueryVars[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("batch was not shuffled")
	}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "_200_check", "_209_db", "Average", "R_S", "R_ET"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 6", "naive1", "D4", "DQ4", "AVERAGE", "modeled"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 7", "2^0", "2^16", "Finished", "Unfinished_opt", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 8", "DQ1", "DQ16", "AVERAGE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "CFL-Reachability", "Andersen", "per-query"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablation(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ablation", "paper (tauF=100", "no thresholds", "aggressive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestMemoryRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Memory(tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "peak heap") {
		t.Fatalf("memory output:\n%s", buf.String())
	}
}

func TestByName(t *testing.T) {
	var buf bytes.Buffer
	if err := ByName("nope", tinyOpts(&buf)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := ByName("table2", tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if len(Names()) != 13 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts(&buf)
	if err := Summaries(opts); err != nil {
		t.Fatal(err)
	}
	if err := IntraQuery(opts); err != nil {
		t.Fatal(err)
	}
	if err := Refinement(opts); err != nil {
		t.Fatal(err)
	}
	if err := Caching(opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Summarisation", "forwarders", "Intra-query", "Refinement-based", "passes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("extension output missing %q", want)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts(&buf)
	opts.Benchmarks = []string{"doesnotexist"}
	if err := Table1(opts); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
