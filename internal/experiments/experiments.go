// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic benchmark suite:
//
//   - Table I  — benchmark census and data-sharing/scheduling statistics;
//   - Fig. 6   — speedups of PARCFL{naive,D,DQ} over SEQCFL;
//   - Fig. 7   — histograms of jmp edges by steps saved, with and without
//     the selective-insertion optimisation;
//   - Fig. 8   — thread-count scaling of PARCFL_DQ;
//   - Table II — comparison against whole-program Andersen analysis;
//   - the Section IV-A/IV-D2 ablation of the tau thresholds.
//
// Speedups are reported two ways. "Wall" is measured wall-clock on the host
// (meaningful only up to the host's core count). "Modeled" divides the
// sequential baseline's walked steps by the heaviest worker's walked steps —
// a hardware-independent estimate of the parallel critical path, used
// because the paper's 16-core testbed is not available (a documented
// substitution; on a 16-core host the two coincide to first order).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"parcfl/internal/andersen"
	"parcfl/internal/concurrent"
	"parcfl/internal/engine"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
	"parcfl/internal/share"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the fraction of the paper's query census to generate
	// (default 0.01, the whole suite in minutes on a laptop).
	Scale float64
	// Budget is the per-query step budget B (default 75,000, as in the
	// paper).
	Budget int
	// Threads is the maximum worker count (default 16, as in the paper).
	Threads int
	// Benchmarks restricts the suite to the named presets (default all).
	Benchmarks []string
	// Out receives the report (default os.Stdout set by the caller).
	Out io.Writer
	// JSONPath, when set, makes JSON-emitting experiments (currently only
	// "bench") write their machine-readable report to this file. The file
	// holds a history of labelled reports; re-running merges instead of
	// clobbering.
	JSONPath string
	// Label names the report in the history (same non-empty label =
	// replace, otherwise append).
	Label string
	// GitRev stamps the report with the source revision, when known.
	GitRev string
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.01
	}
	if o.Budget == 0 {
		o.Budget = 75000
	}
	if o.Threads <= 0 {
		o.Threads = 16
	}
	return o
}

func (o Options) presets() ([]javagen.Preset, error) {
	all := javagen.Presets()
	if len(o.Benchmarks) == 0 {
		return all, nil
	}
	var out []javagen.Preset
	for _, name := range o.Benchmarks {
		p, err := javagen.PresetByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Bench is a prepared benchmark: generated program, lowered PAG, and the
// query batch in a deterministic "as collected" order (shuffled — clients
// collect queries in arbitrary code order, not in a traversal-friendly one;
// the scheduler's job is to impose a good order).
type Bench struct {
	Preset  javagen.Preset
	Program *frontend.Program
	Lowered *frontend.Lowered
	Queries []pag.NodeID
}

// PrepareBench generates and lowers one preset at the given scale.
func PrepareBench(pr javagen.Preset, scale float64) (*Bench, error) {
	prg, err := javagen.Generate(pr.Params(scale))
	if err != nil {
		return nil, err
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		return nil, err
	}
	queries := append([]pag.NodeID(nil), lo.AppQueryVars...)
	rng := rand.New(rand.NewSource(int64(concurrent.HashBytes(concurrent.HashSeed, pr.Name+"/batch"))))
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	return &Bench{Preset: pr, Program: prg, Lowered: lo, Queries: queries}, nil
}

// runMode executes one configuration over a bench.
func (b *Bench) runMode(mode engine.Mode, threads, budget, tauF, tauU int) ([]engine.QueryResult, engine.Stats) {
	return engine.Run(b.Lowered.Graph, b.Queries, engine.Config{
		Mode:       mode,
		Threads:    threads,
		Budget:     budget,
		TauF:       tauF,
		TauU:       tauU,
		TypeLevels: b.Lowered.TypeLevels,
	})
}

// Table1 regenerates Table I: per-benchmark census plus sequential time,
// total steps, and the sharing/scheduling statistics.
func Table1(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Table I: benchmark information and statistics (scale=%.4g, B=%d, %d threads)\n", opts.Scale, opts.Budget, opts.Threads)
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s %8s %9s %8s %9s %7s %6s %6s %6s\n",
		"Benchmark", "#Classes", "#Methods", "#Nodes", "#Edges", "#Queries", "Tseq", "#Jumps", "#S(x10^6)", "R_S", "Sg", "#ETs", "R_ET")

	var sums struct {
		classes, methods, nodes, edges, queries, jumps, ets int
		tseq, s, rs, sg, ret                                float64
		retN                                                int
	}
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		_, seq := b.runMode(engine.Seq, 1, opts.Budget, 0, 0)
		_, d := b.runMode(engine.D, opts.Threads, opts.Budget, 0, 0)
		_, dq := b.runMode(engine.DQ, opts.Threads, opts.Budget, 0, 0)

		ret := 1.0
		if d.EarlyTerminations > 0 {
			ret = float64(dq.EarlyTerminations) / float64(d.EarlyTerminations)
			sums.ret += ret
			sums.retN++
		}
		jumps := int(dq.Share.FinishedAdded + dq.Share.UnfinishedAdded)
		classes := len(b.Program.Types)
		methods := len(b.Program.Methods)
		fmt.Fprintf(w, "%-14s %8d %8d %8d %8d %8d %8.2fs %8d %9.2f %7.2f %6.1f %6d %6.2f\n",
			pr.Name, classes, methods,
			b.Lowered.Graph.NumNodes(), b.Lowered.Graph.NumEdges(), seq.Queries,
			seq.Wall.Seconds(), jumps, float64(seq.TotalSteps)/1e6,
			dq.RS(), dq.AvgGroupSize, d.EarlyTerminations, ret)

		sums.classes += classes
		sums.methods += methods
		sums.nodes += b.Lowered.Graph.NumNodes()
		sums.edges += b.Lowered.Graph.NumEdges()
		sums.queries += seq.Queries
		sums.tseq += seq.Wall.Seconds()
		sums.jumps += jumps
		sums.s += float64(seq.TotalSteps) / 1e6
		sums.rs += dq.RS()
		sums.sg += dq.AvgGroupSize
		sums.ets += d.EarlyTerminations
	}
	n := float64(len(presets))
	avgRET := 1.0
	if sums.retN > 0 {
		avgRET = sums.ret / float64(sums.retN)
	}
	fmt.Fprintf(w, "%-14s %8d %8d %8d %8d %8d %8.2fs %8d %9.2f %7.2f %6.1f %6d %6.2f\n",
		"Average",
		int(float64(sums.classes)/n), int(float64(sums.methods)/n),
		int(float64(sums.nodes)/n), int(float64(sums.edges)/n), int(float64(sums.queries)/n),
		sums.tseq/n, int(float64(sums.jumps)/n), sums.s/n, sums.rs/n, sums.sg/n,
		int(float64(sums.ets)/n), avgRET)
	fmt.Fprintf(w, "\nPaper reference (full-size benchmarks): avg #Jumps=22023, #S=97.62x10^6, R_S=28.6, Sg=10.9, #ETs=114.0, R_ET=1.35\n")
	return nil
}

// Fig6 regenerates Fig. 6: speedups of the parallel configurations over
// SEQCFL, per benchmark and on average.
func Fig6(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	t := opts.Threads
	fmt.Fprintf(w, "Fig. 6: speedups over SeqCFL (scale=%.4g, B=%d)\n", opts.Scale, opts.Budget)
	fmt.Fprintf(w, "%-14s | %-31s | %-31s\n", "", "modeled (work/critical-path)", "wall-clock (this host)")
	fmt.Fprintf(w, "%-14s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"Benchmark", "naive1", fmt.Sprintf("naive%d", t), fmt.Sprintf("D%d", t), fmt.Sprintf("DQ%d", t),
		"naive1", fmt.Sprintf("naive%d", t), fmt.Sprintf("D%d", t), fmt.Sprintf("DQ%d", t))

	var mSums, wSums [4]float64
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		_, seq := b.runMode(engine.Seq, 1, opts.Budget, 0, 0)
		base := seq.StepsWalked()

		var mRow, wRow [4]float64
		configs := []struct {
			mode    engine.Mode
			threads int
		}{
			{engine.Naive, 1}, {engine.Naive, t}, {engine.D, t}, {engine.DQ, t},
		}
		for i, c := range configs {
			_, st := b.runMode(c.mode, c.threads, opts.Budget, 0, 0)
			mRow[i] = st.ModeledSpeedup(base)
			wRow[i] = float64(seq.Wall) / float64(st.Wall)
			mSums[i] += mRow[i]
			wSums[i] += wRow[i]
		}
		fmt.Fprintf(w, "%-14s | %7.1f %7.1f %7.1f %7.1f | %7.2f %7.2f %7.2f %7.2f\n",
			pr.Name, mRow[0], mRow[1], mRow[2], mRow[3], wRow[0], wRow[1], wRow[2], wRow[3])
	}
	n := float64(len(presets))
	fmt.Fprintf(w, "%-14s | %7.1f %7.1f %7.1f %7.1f | %7.2f %7.2f %7.2f %7.2f\n",
		"AVERAGE", mSums[0]/n, mSums[1]/n, mSums[2]/n, mSums[3]/n,
		wSums[0]/n, wSums[1]/n, wSums[2]/n, wSums[3]/n)
	fmt.Fprintf(w, "\nPaper reference (16 cores): naive1=1.0X, naive16=7.3X, D16=13.4X, DQ16=16.2X\n")
	fmt.Fprintf(w, "Host has %d core(s); wall-clock speedup of naive is bounded by that, so compare shapes on the modeled columns.\n", runtime.NumCPU())
	return nil
}

// Fig7 regenerates Fig. 7: histograms of jmp edges bucketed by steps saved,
// with the selective-insertion optimisation (tauF=100, tauU=10000) and
// without it (insert everything).
func Fig7(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out

	collect := func(tauF, tauU int) (share.Stats, error) {
		var agg share.Stats
		for _, pr := range presets {
			b, err := PrepareBench(pr, opts.Scale)
			if err != nil {
				return agg, err
			}
			_, st := b.runMode(engine.DQ, opts.Threads, opts.Budget, tauF, tauU)
			agg.FinishedAdded += st.Share.FinishedAdded
			agg.UnfinishedAdded += st.Share.UnfinishedAdded
			for i := 0; i < share.HistBuckets; i++ {
				agg.HistFinished[i] += st.Share.HistFinished[i]
				agg.HistUnfinished[i] += st.Share.HistUnfinished[i]
			}
		}
		return agg, nil
	}

	withOpt, err := collect(0, 0) // defaults: tauF=100 tauU=10000
	if err != nil {
		return err
	}
	noOpt, err := collect(-1, -1) // thresholds disabled
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Fig. 7: histograms of jmp edges by steps saved (aggregated over %d benchmarks, scale=%.4g)\n", len(presets), opts.Scale)
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s\n", "bucket", "Finished", "Unfinished", "Finished_opt", "Unfinished_opt")
	for i := 0; i < share.HistBuckets; i++ {
		fmt.Fprintf(w, "2^%-6d | %12d %12d | %12d %12d\n", i,
			noOpt.HistFinished[i], noOpt.HistUnfinished[i],
			withOpt.HistFinished[i], withOpt.HistUnfinished[i])
	}
	fmt.Fprintf(w, "total    | %12d %12d | %12d %12d\n",
		noOpt.FinishedAdded, noOpt.UnfinishedAdded, withOpt.FinishedAdded, withOpt.UnfinishedAdded)
	fmt.Fprintf(w, "\nPaper shape: without the optimisation, many short jmp edges are added (mass in the low buckets);\n")
	fmt.Fprintf(w, "the tau thresholds suppress them, keeping only high-value shortcuts (speedup 16.2X -> 12.4X without it).\n")
	return nil
}

// Fig8 regenerates Fig. 8: thread scaling of PARCFL_DQ.
func Fig8(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	threads := []int{1, 2, 4, 8, 16}
	fmt.Fprintf(w, "Fig. 8: PARCFL_DQ speedups over SeqCFL by thread count (modeled; scale=%.4g, B=%d)\n", opts.Scale, opts.Budget)
	fmt.Fprintf(w, "%-14s", "Benchmark")
	for _, t := range threads {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("DQ%d", t))
	}
	fmt.Fprintln(w)

	sums := make([]float64, len(threads))
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		_, seq := b.runMode(engine.Seq, 1, opts.Budget, 0, 0)
		base := seq.StepsWalked()
		fmt.Fprintf(w, "%-14s", pr.Name)
		for i, t := range threads {
			_, st := b.runMode(engine.DQ, t, opts.Budget, 0, 0)
			sp := st.ModeledSpeedup(base)
			sums[i] += sp
			fmt.Fprintf(w, " %8.1f", sp)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "AVERAGE")
	for i := range threads {
		fmt.Fprintf(w, " %8.1f", sums[i]/float64(len(presets)))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\nPaper reference: DQ1=8.1X, DQ2=11.8X, DQ4=13.9X, DQ8=15.8X, DQ16=16.2X\n")
	return nil
}

// Table2 regenerates Table II: the qualitative comparison of parallel
// pointer analyses, plus an empirical whole-program-vs-demand-driven
// contrast using our Andersen baseline.
func Table2(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintln(w, "Table II: comparing parallel pointer analyses")
	fmt.Fprintf(w, "%-12s %-22s %-10s %-8s %-6s %-6s %-10s %-9s\n",
		"Analysis", "Algorithm", "On-demand", "Context", "Field", "Flow", "Applications", "Platform")
	rows := []struct{ a, alg, dem, ctx, fld, flw, app, plat string }{
		{"[8]", "Andersen's", "no", "no", "yes", "no", "C", "CPU"},
		{"[3]", "Andersen's", "no", "no", "no", "part", "Java", "CPU"},
		{"[7]", "Andersen's", "no", "no", "yes", "no", "C", "GPU"},
		{"[14]", "Andersen's", "no", "yes", "no", "no", "C", "CPU"},
		{"[9]", "Andersen's", "no", "no", "yes", "yes", "C", "CPU"},
		{"[10]", "Andersen's", "no", "no", "yes", "yes", "C", "GPU"},
		{"[20]", "Andersen's", "no", "no", "yes", "no", "C", "CPU-GPU"},
		{"this paper", "CFL-Reachability", "yes", "yes", "yes", "no", "Java", "CPU"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-22s %-10s %-8s %-6s %-6s %-10s %-9s\n", r.a, r.alg, r.dem, r.ctx, r.fld, r.flw, r.app, r.plat)
	}

	fmt.Fprintf(w, "\nEmpirical whole-program vs demand-driven contrast (scale=%.4g):\n", opts.Scale)
	fmt.Fprintf(w, "%-14s %12s %14s %16s %22s\n", "Benchmark", "Andersen", "CFL all-queries", "CFL per-query", "CFL ctx-sensitive wins")
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		t0 := time.Now()
		and := andersen.Analyze(b.Lowered.Graph)
		andT := time.Since(t0)
		res, dq := b.runMode(engine.DQ, opts.Threads, opts.Budget, 0, 0)
		perQuery := time.Duration(0)
		if dq.Queries > 0 {
			perQuery = dq.Wall / time.Duration(dq.Queries)
		}
		// Precision: count queries whose context-sensitive set is
		// strictly smaller than Andersen's (completed queries only).
		wins, comparable := 0, 0
		for _, r := range res {
			if r.Aborted {
				continue
			}
			comparable++
			if len(r.Objects) < len(and.PointsTo(r.Var)) {
				wins++
			}
		}
		fmt.Fprintf(w, "%-14s %12s %14s %16s %15d/%d\n",
			pr.Name, andT.Round(time.Millisecond), dq.Wall.Round(time.Millisecond),
			perQuery.Round(time.Microsecond), wins, comparable)
	}
	return nil
}

// Ablation regenerates the Section IV-A / IV-D2 study of the selective jmp
// insertion thresholds: average DQ speedup with the paper's taus, without
// any thresholds, and with overly aggressive ones.
func Ablation(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	settings := []struct {
		name       string
		tauF, tauU int
	}{
		{"paper (tauF=100, tauU=10000)", 0, 0},
		{"no thresholds (insert all)", -1, -1},
		{"aggressive (tauF=2000, tauU=200000)", 2000, 200000},
	}
	fmt.Fprintf(w, "Ablation: selective jmp insertion thresholds (DQ, %d threads, scale=%.4g)\n", opts.Threads, opts.Scale)
	fmt.Fprintf(w, "%-38s %10s %10s %12s %10s\n", "setting", "modeled", "wall(s)", "#jumps", "R_S")
	for _, s := range settings {
		var modeled, wall, rs float64
		var jumps int64
		for _, pr := range presets {
			b, err := PrepareBench(pr, opts.Scale)
			if err != nil {
				return err
			}
			_, seq := b.runMode(engine.Seq, 1, opts.Budget, 0, 0)
			_, st := b.runMode(engine.DQ, opts.Threads, opts.Budget, s.tauF, s.tauU)
			modeled += st.ModeledSpeedup(seq.StepsWalked())
			wall += st.Wall.Seconds()
			jumps += st.Share.FinishedAdded + st.Share.UnfinishedAdded
			rs += st.RS()
		}
		n := float64(len(presets))
		fmt.Fprintf(w, "%-38s %10.1f %10.2f %12d %10.1f\n", s.name, modeled/n, wall, jumps, rs/n)
	}
	fmt.Fprintf(w, "\nPaper reference: disabling the optimisation drops the average speedup from 16.2X to 12.4X.\n")
	return nil
}

// Memory regenerates the Section IV-D5 comparison: peak heap usage of the
// sequential analysis vs PARCFL_DQ. Peaks are sampled from runtime.MemStats
// around each batch (GC makes this approximate, as the paper also notes).
func Memory(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Memory: peak heap during analysis (approximate; scale=%.4g)\n", opts.Scale)
	fmt.Fprintf(w, "%-14s %14s %14s %8s\n", "Benchmark", "Seq peak", "DQ peak", "ratio")
	var ratios float64
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		seqPeak := measurePeak(func() { b.runMode(engine.Seq, 1, opts.Budget, 0, 0) })
		dqPeak := measurePeak(func() { b.runMode(engine.DQ, opts.Threads, opts.Budget, 0, 0) })
		ratio := float64(dqPeak) / float64(seqPeak)
		ratios += ratio
		fmt.Fprintf(w, "%-14s %11.2fMB %11.2fMB %8.2f\n",
			pr.Name, float64(seqPeak)/1e6, float64(dqPeak)/1e6, ratio)
	}
	fmt.Fprintf(w, "%-14s %14s %14s %8.2f\n", "AVERAGE", "", "", ratios/float64(len(presets)))
	fmt.Fprintf(w, "\nPaper reference: PARCFL_DQ uses 65%% of SEQCFL's peak (35%% reduction), worst case 103%%.\n")
	return nil
}

// measurePeak runs f while sampling heap usage, returning the peak
// HeapAlloc observed (after a GC-settled baseline).
func measurePeak(f func()) uint64 {
	runtime.GC()
	var peak uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	f()
	close(done)
	<-sampled
	return peak
}

// All runs every experiment in paper order.
func All(opts Options) error {
	type exp struct {
		name string
		run  func(Options) error
	}
	for _, e := range []exp{
		{"table1", Table1}, {"fig6", Fig6}, {"fig7", Fig7},
		{"fig8", Fig8}, {"table2", Table2}, {"ablation", Ablation}, {"memory", Memory},
		{"summaries", Summaries}, {"intraquery", IntraQuery}, {"refinement", Refinement}, {"caching", Caching},
	} {
		fmt.Fprintf(opts.Out, "\n================ %s ================\n", e.name)
		if err := e.run(opts); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
	}
	return nil
}

// Names lists the available experiment names in paper order.
func Names() []string {
	return []string{"table1", "fig6", "fig7", "fig8", "table2", "ablation", "memory", "summaries", "intraquery", "refinement", "caching", "bench", "all"}
}

// ByName dispatches an experiment by name.
func ByName(name string, opts Options) error {
	switch name {
	case "table1":
		return Table1(opts)
	case "fig6":
		return Fig6(opts)
	case "fig7":
		return Fig7(opts)
	case "fig8":
		return Fig8(opts)
	case "table2":
		return Table2(opts)
	case "ablation":
		return Ablation(opts)
	case "memory":
		return Memory(opts)
	case "summaries":
		return Summaries(opts)
	case "intraquery":
		return IntraQuery(opts)
	case "refinement":
		return Refinement(opts)
	case "caching":
		return Caching(opts)
	case "bench":
		return BenchTrajectory(opts)
	case "all":
		return All(opts)
	}
	return fmt.Errorf("experiments: unknown experiment %q (want one of %v)", name, Names())
}
