package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"parcfl/internal/cluster"
	"parcfl/internal/cluster/router"
	"parcfl/internal/server"
)

// Sharded serving rows: the census replayed through a real cluster — N
// shard replicas behind a parcflrouter, all over loopback HTTP — so the
// trajectory records what component-aware sharding buys end to end,
// including the router's split/fanout/merge overhead.
//
// The quantity the rows scale on is admission capacity per batch window.
// Each replica's micro-batcher claims at most MaxBatch distinct variables
// per coalescing window, so a burst of B pending variables costs a single
// daemon ceil(B/MaxBatch) serialised window rounds. The router splits the
// same burst across N replicas whose windows run concurrently, cutting the
// rounds to ceil(B/(N*MaxBatch)). That is a property of the admission
// pipeline, not of the core count: the N=4 row beats N=1 even on one CPU,
// because the win comes from fewer serialised windows, not from parallel
// solving.

const (
	// shardedClients is the closed-loop concurrency: each client sends one
	// multi-variable chunk at a time and waits for the merged reply.
	shardedClients = 4
	// shardedChunk is the variables per request. The router splits each
	// chunk across shards, so a chunk costs one window round on the cluster
	// and ceil(chunk/MaxBatch) rounds on a single replica.
	shardedChunk = 16
	// shardedMaxBatch bounds each replica's per-round admission, the knob
	// the rows scale on. Small, so the bound binds at bench scale the same
	// way a per-batch latency budget makes it bind in production.
	shardedMaxBatch = 8
	// shardedWindow is each replica's batch window — the unit of
	// serialisation the cluster amortises.
	shardedWindow = 5 * time.Millisecond
	// shardedThreads is each replica's solver thread count. One, so the
	// N=1 vs N=4 comparison is admission-pipeline scaling, not a hidden
	// 4x thread-count advantage.
	shardedThreads = 1
	// shardedMinQueries is the replay floor: the census repeats until at
	// least this many queries have been issued, so the percentiles rest on
	// a usable number of chunk requests at any bench scale.
	shardedMinQueries = 512
)

// shardCounts are the cluster widths the trajectory records.
var shardCounts = []int{1, 2, 4}

// ShardedRows produces the Serve-sharded-N rows for one prepared benchmark.
func ShardedRows(b *Bench, opts Options) ([]BenchRun, error) {
	rows := make([]BenchRun, 0, len(shardCounts))
	for _, n := range shardCounts {
		row, err := shardedRun(b, n, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// shardedRun boots an N-shard cluster on loopback, replays the census
// through the router from shardedClients closed-loop callers, and flattens
// the summed shard stats plus router-side latency into one row.
func shardedRun(b *Bench, n int, opts Options) (BenchRun, error) {
	g := b.Lowered.Graph
	plan, err := cluster.BuildPlan(g, n)
	if err != nil {
		return BenchRun{}, err
	}
	enc, err := plan.Encode()
	if err != nil {
		return BenchRun{}, err
	}

	srvs := make([]*server.Server, n)
	httpSrvs := make([]*http.Server, n)
	addrs := make([]string, n)
	shutdown := func() {
		for _, hs := range httpSrvs {
			if hs != nil {
				_ = hs.Close()
			}
		}
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		srvs[i] = server.New(g, server.Config{
			Threads: shardedThreads, Budget: opts.Budget,
			TypeLevels: b.Lowered.TypeLevels, QueryVars: b.Lowered.AppQueryVars,
			ResultCache: true, BatchWindow: shardedWindow, MaxBatch: shardedMaxBatch,
			ShardOf: plan.ShardOf, ShardIndex: i, ShardCount: n, ShardPlan: enc,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return BenchRun{}, err
		}
		httpSrvs[i] = &http.Server{Handler: server.NewHandler(srvs[i], server.HandlerConfig{})}
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(httpSrvs[i], ln)
		addrs[i] = "http://" + ln.Addr().String()
	}
	rt, err := router.New(router.Config{Plan: plan, Shards: addrs, HealthInterval: -1})
	if err != nil {
		shutdown()
		return BenchRun{}, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		shutdown()
		return BenchRun{}, err
	}
	routerSrv := &http.Server{Handler: router.NewHandler(rt, router.HandlerConfig{})}
	go func() { _ = routerSrv.Serve(rln) }()
	defer func() {
		_ = routerSrv.Close()
		rt.Close()
		shutdown()
	}()

	// Decimal node ids resolve identically on the router and every replica,
	// so the replay is immune to census name collisions. The census repeats
	// until the replay reaches the query floor, then is cut into fixed-size
	// chunks — one multi-variable request each.
	passes := (shardedMinQueries + len(b.Queries) - 1) / len(b.Queries)
	if passes < 2 {
		passes = 2
	}
	names := make([]string, 0, passes*len(b.Queries))
	for p := 0; p < passes; p++ {
		for _, q := range b.Queries {
			names = append(names, strconv.Itoa(int(q)))
		}
	}
	chunks := make([][]string, 0, (len(names)+shardedChunk-1)/shardedChunk)
	for i := 0; i < len(names); i += shardedChunk {
		chunks = append(chunks, names[i:min(i+shardedChunk, len(names))])
	}

	cl := server.NewClient("http://"+rln.Addr().String(),
		&http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * shardedClients}})
	latencies := make([]time.Duration, len(chunks))
	var firstErr error
	var errMu sync.Mutex
	idx := make(chan int, len(chunks))
	for i := range chunks {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < shardedClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				_, err := cl.Query(context.Background(), chunks[i], 30*time.Second)
				latencies[i] = time.Since(t0)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sharded n=%d: chunk %d: %w", n, i, err)
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return BenchRun{}, firstErr
	}

	// The shard stores are disjoint, so summing replica stats is exact.
	var st server.Stats
	for _, s := range srvs {
		ss := s.Stats()
		st.Queries += ss.Queries
		st.Completed += ss.Completed
		st.Aborted += ss.Aborted
		st.TotalSteps += ss.TotalSteps
		st.StepsSaved += ss.StepsSaved
		st.JumpsTaken += ss.JumpsTaken
		st.Share.FinishedAdded += ss.Share.FinishedAdded
		st.Share.UnfinishedAdded += ss.Share.UnfinishedAdded
		st.Share.Lookups += ss.Share.Lookups
		st.Share.LookupHits += ss.Share.LookupHits
		st.Cache.Hits += ss.Cache.Hits
		st.Cache.Misses += ss.Cache.Misses
	}

	// P50/P99 are per-chunk-request latencies: what one caller sees for a
	// shardedChunk-variable batch, split/merge included.
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) int64 {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(p*float64(len(sorted)-1))].Nanoseconds()
	}

	return BenchRun{
		Bench:   b.Preset.Name,
		Mode:    fmt.Sprintf("Serve-sharded-%d", n),
		Threads: shardedThreads,
		Shards:  n,

		WallNS: wall.Nanoseconds(),

		Queries:   int(st.Queries),
		Completed: int(st.Completed),
		Aborted:   int(st.Aborted),

		TotalSteps:  st.TotalSteps,
		StepsWalked: st.TotalSteps - st.StepsSaved,
		StepsSaved:  st.StepsSaved,
		JumpsTaken:  st.JumpsTaken,

		ShareFinished:   st.Share.FinishedAdded,
		ShareUnfinished: st.Share.UnfinishedAdded,
		ShareLookups:    st.Share.Lookups,
		ShareHits:       st.Share.LookupHits,
		ShareHitRate:    st.Share.HitRate(),

		CacheHits:    st.Cache.Hits,
		CacheMisses:  st.Cache.Misses,
		CacheHitRate: st.Cache.HitRate(),

		QPS:   float64(len(names)) / wall.Seconds(),
		P50NS: pct(0.50),
		P99NS: pct(0.99),
	}, nil
}
