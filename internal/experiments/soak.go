package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"parcfl/internal/server"
	"parcfl/internal/snapshot"
)

// Open-loop soak harness. The serve rows replay the census as fast as the
// server will take it (closed loop: a slow server slows the clients down,
// hiding queueing). A soak instead fires requests at a fixed Poisson rate
// regardless of how the server is doing — the open-loop shape that exposes
// queue growth, overload shedding and tail latency inflation — and reports
// a machine-readable summary suitable for gating.

// SoakSchema identifies the layout of one soak report; bump on breaking
// changes.
const SoakSchema = "parcfl-soak/v1"

// SoakOptions configures one open-loop run.
type SoakOptions struct {
	// Rate is the target arrival rate in requests/second (Poisson spaced;
	// 0 means 100).
	Rate float64
	// Duration is how long arrivals keep coming (0 means 1s). In-flight
	// requests are drained after the last arrival.
	Duration time.Duration
	// MaxInflight bounds concurrently outstanding requests; an arrival that
	// would exceed it is shed client-side and counted, preserving the open
	// loop without unbounded goroutine growth (0 means 64).
	MaxInflight int
	// Seed makes the arrival process and variable choice reproducible.
	Seed int64
	// Timeout is the per-request deadline (0 means 5s).
	Timeout time.Duration
	// Retry re-sends a request once after an overload rejection, honouring
	// the server's Retry-After hint (capped at 100ms so a soak never parks).
	Retry bool
	// RIDPrefix prefixes the per-request IDs RunSoak mints ("" means
	// "soak"); the full ID is <prefix>-<seed>-<arrival#>.
	RIDPrefix string
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Rate <= 0 {
		o.Rate = 100
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.RIDPrefix == "" {
		o.RIDPrefix = "soak"
	}
	return o
}

// SlowRequest is one of a report's top-K slowest successful requests: its
// ID (the join key against the daemon's slow-query log, /metrics exemplars
// and diagnostic-bundle trace lanes), client-observed latency, and the
// server's phase breakdown for it.
type SlowRequest struct {
	RID       string         `json:"rid"`
	LatencyNS int64          `json:"latency_ns"`
	Timings   server.Timings `json:"timings"`
}

// soakSlowestK is how many slowest requests a report retains.
const soakSlowestK = 5

// SoakPhases aggregates the server-reported per-request phase breakdown
// over every successful request: where the time went, as totals and as
// shares of the summed end-to-end time.
type SoakPhases struct {
	AdmitNS     int64 `json:"admit_ns"`
	QueueWaitNS int64 `json:"queue_wait_ns"`
	SolveNS     int64 `json:"solve_ns"`
	FanoutNS    int64 `json:"fanout_ns"`
	MarshalNS   int64 `json:"marshal_ns,omitempty"`

	AdmitShare  float64 `json:"admit_share"`
	QueueShare  float64 `json:"queue_share"`
	SolveShare  float64 `json:"solve_share"`
	FanoutShare float64 `json:"fanout_share"`
}

// SoakReport is the machine-readable result of one open-loop run.
type SoakReport struct {
	Schema     string  `json:"schema"`
	TargetQPS  float64 `json:"target_qps"`
	DurationNS int64   `json:"duration_ns"`

	Sent       int64 `json:"sent"`
	Shed       int64 `json:"shed"`
	Succeeded  int64 `json:"succeeded"`
	Overloaded int64 `json:"overloaded"`
	Deadlined  int64 `json:"deadlined"`
	Errored    int64 `json:"errored"`
	Retried    int64 `json:"retried"`

	// QPS is the achieved success throughput; the rates are fractions of
	// Sent.
	QPS          float64 `json:"qps"`
	OverloadRate float64 `json:"overload_rate"`
	RetryRate    float64 `json:"retry_rate"`

	// Client-observed latency of successful requests.
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`

	Phases SoakPhases `json:"phases"`

	// Slowest holds the top-K slowest successful requests (slowest first)
	// with their request IDs and per-phase attribution — the starting point
	// for joining a bad tail to daemon-side evidence.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// noteSlow inserts sr into the top-K slowest list (slowest first). Called
// under RunSoak's mutex.
func (r *SoakReport) noteSlow(sr SlowRequest) {
	i := sort.Search(len(r.Slowest), func(i int) bool {
		return r.Slowest[i].LatencyNS < sr.LatencyNS
	})
	if i >= soakSlowestK {
		return
	}
	r.Slowest = append(r.Slowest, SlowRequest{})
	copy(r.Slowest[i+1:], r.Slowest[i:])
	r.Slowest[i] = sr
	if len(r.Slowest) > soakSlowestK {
		r.Slowest = r.Slowest[:soakSlowestK]
	}
}

// RunSoak fires Poisson-spaced requests at do for the configured duration
// and aggregates the outcomes. numVars is the size of the variable universe;
// each arrival carries a uniformly chosen index in [0, numVars) and a
// RunSoak-minted request ID (<RIDPrefix>-<seed>-<arrival#>) that do should
// propagate to the server, so the report's slowest-request IDs resolve
// daemon-side. do performs one request and returns the server's phase
// timings (zero value when the transport does not carry them) — RunSoak
// classifies its error into success / overload / deadline / other.
func RunSoak(opts SoakOptions, numVars int, do func(ctx context.Context, varIdx int, rid string) (server.Timings, error)) SoakReport {
	opts = opts.withDefaults()
	rep := SoakReport{
		Schema:    SoakSchema,
		TargetQPS: opts.Rate,
	}
	if numVars <= 0 {
		return rep
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	sem := make(chan struct{}, opts.MaxInflight)
	var mu sync.Mutex
	var latencies []int64
	var wg sync.WaitGroup

	fire := func(idx int, rid string) {
		defer wg.Done()
		defer func() { <-sem }()
		ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
		defer cancel()
		t0 := time.Now()
		tm, err := do(ctx, idx, rid)
		if err != nil && opts.Retry && errors.Is(err, server.ErrOverloaded) {
			delay := 10 * time.Millisecond
			var oe *server.OverloadedError
			if errors.As(err, &oe) && oe.RetryAfter > 0 {
				delay = oe.RetryAfter
			}
			if delay > 100*time.Millisecond {
				delay = 100 * time.Millisecond
			}
			select {
			case <-time.After(delay):
				mu.Lock()
				rep.Retried++
				mu.Unlock()
				tm, err = do(ctx, idx, rid)
			case <-ctx.Done():
			}
		}
		lat := time.Since(t0).Nanoseconds()
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			rep.Succeeded++
			latencies = append(latencies, lat)
			rep.Phases.AdmitNS += tm.AdmitNS
			rep.Phases.QueueWaitNS += tm.QueueWaitNS
			rep.Phases.SolveNS += tm.SolveNS
			rep.Phases.FanoutNS += tm.FanoutNS
			rep.Phases.MarshalNS += tm.MarshalNS
			rep.noteSlow(SlowRequest{RID: rid, LatencyNS: lat, Timings: tm})
		case errors.Is(err, server.ErrOverloaded), errors.Is(err, server.ErrClosed):
			rep.Overloaded++
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			rep.Deadlined++
		default:
			rep.Errored++
		}
	}

	// Absolute-time pacing: the next arrival is start plus the accumulated
	// exponential gaps, so a slow iteration never shifts the whole schedule
	// (that would close the loop).
	start := time.Now()
	next := time.Duration(0)
	for {
		next += time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second))
		if next > opts.Duration {
			break
		}
		if d := time.Until(start.Add(next)); d > 0 {
			time.Sleep(d)
		}
		idx := rng.Intn(numVars)
		select {
		case sem <- struct{}{}:
			rep.Sent++
			rid := fmt.Sprintf("%s-%d-%d", opts.RIDPrefix, opts.Seed, rep.Sent)
			wg.Add(1)
			go fire(idx, rid)
		default:
			rep.Shed++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep.DurationNS = elapsed.Nanoseconds()

	if rep.Sent > 0 {
		rep.OverloadRate = float64(rep.Overloaded) / float64(rep.Sent)
		rep.RetryRate = float64(rep.Retried) / float64(rep.Sent)
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Succeeded) / elapsed.Seconds()
	}
	if n := len(latencies); n > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum int64
		for _, l := range latencies {
			sum += l
		}
		rep.MeanNS = sum / int64(n)
		pct := func(p float64) int64 { return latencies[int(p*float64(n-1))] }
		rep.P50NS = pct(0.50)
		rep.P99NS = pct(0.99)
		rep.P999NS = pct(0.999)
	}
	if tot := rep.Phases.AdmitNS + rep.Phases.QueueWaitNS + rep.Phases.SolveNS + rep.Phases.FanoutNS; tot > 0 {
		rep.Phases.AdmitShare = float64(rep.Phases.AdmitNS) / float64(tot)
		rep.Phases.QueueShare = float64(rep.Phases.QueueWaitNS) / float64(tot)
		rep.Phases.SolveShare = float64(rep.Phases.SolveNS) / float64(tot)
		rep.Phases.FanoutShare = float64(rep.Phases.FanoutNS) / float64(tot)
	}
	return rep
}

// soakRate picks the Serve-soak arrival rate from the warm closed-loop
// throughput: well under saturation (the soak gates steady-state phase
// shares and tail latency, not the overload cliff), bounded so tiny or huge
// benches still produce a meaningful, cheap run.
func soakRate(warmQPS float64) float64 {
	r := 0.6 * warmQPS
	if r < 50 {
		r = 50
	}
	if r > 2000 {
		r = 2000
	}
	return r
}

// SoakRow runs an open-loop soak against a warm server (restored from snap,
// exactly what the resident daemon serves after a restart) and flattens the
// report into one bench grid row. Queries is pinned to the census size — the
// run's identity for benchdiff comparability — while Completed records how
// many soak requests actually succeeded.
func SoakRow(b *Bench, snap *snapshot.Snapshot, warmQPS float64, opts Options) (BenchRun, error) {
	srv := server.NewFromSnapshot(snap, server.Config{
		Threads: opts.Threads, Budget: opts.Budget,
		QueryVars: b.Lowered.AppQueryVars, ResultCache: true,
		BatchWindow: 200 * time.Microsecond,
	})
	defer srv.Close()

	queries := b.Queries
	rep := RunSoak(SoakOptions{
		Rate:     soakRate(warmQPS),
		Duration: 1200 * time.Millisecond,
		Seed:     42,
		Retry:    true,
	}, len(queries), func(ctx context.Context, i int, rid string) (server.Timings, error) {
		// Propagate the soak-minted rid into the in-process path (the
		// RunSoak contract): with exemplars enabled on the server's sink,
		// the report's slowest-request IDs resolve to daemon-side latency
		// buckets and trace lanes, same as an HTTP client's header rid.
		a, err := srv.QueryRequest(server.WithRID(ctx, rid), queries[i])
		return a.Timings, err
	})
	if rep.Errored > 0 {
		return BenchRun{}, fmt.Errorf("soak %s: %d hard errors (first-class failures, not shedding)",
			b.Preset.Name, rep.Errored)
	}

	st := srv.Stats()
	return BenchRun{
		Bench:   b.Preset.Name,
		Mode:    "Serve-soak",
		Threads: opts.Threads,

		WallNS: rep.DurationNS,

		Queries:   len(queries),
		Completed: int(rep.Succeeded),

		CacheHits:    st.Cache.Hits,
		CacheMisses:  st.Cache.Misses,
		CacheHitRate: st.Cache.HitRate(),

		QPS:    rep.QPS,
		P50NS:  rep.P50NS,
		P99NS:  rep.P99NS,
		P999NS: rep.P999NS,

		TargetQPS:    rep.TargetQPS,
		OverloadRate: rep.OverloadRate,
		AdmitShare:   rep.Phases.AdmitShare,
		QueueShare:   rep.Phases.QueueShare,
		SolveShare:   rep.Phases.SolveShare,
		FanoutShare:  rep.Phases.FanoutShare,
	}, nil
}
