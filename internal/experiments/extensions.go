package experiments

import (
	"fmt"
	"time"

	"parcfl/internal/cfl"
	"parcfl/internal/engine"
	"parcfl/internal/frontend"
	"parcfl/internal/intraquery"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
	"parcfl/internal/refine"
	"parcfl/internal/summary"
)

// Summaries evaluates the method-summarisation pre-analysis (the
// summary-based optimisation line the paper surveys, [17][26]): sequential
// analysis cost with and without collapsing trivial forwarder chains.
func Summaries(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Summarisation: sequential cost with/without forwarder collapsing (scale=%.4g)\n", opts.Scale)
	fmt.Fprintf(w, "%-14s %10s %12s %12s %9s %9s\n", "Benchmark", "forwarders", "steps", "steps(sum)", "saved", "speedup")
	var totBase, totSum int64
	for _, pr := range presets {
		base, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		_, seqBase := engine.Run(base.Lowered.Graph, base.Queries, engine.Config{Mode: engine.Seq, Budget: opts.Budget})

		prg, err := javagen.Generate(pr.Params(opts.Scale))
		if err != nil {
			return err
		}
		_, st := summary.Transform(prg)
		lo, err := frontend.Lower(prg)
		if err != nil {
			return err
		}
		t0 := time.Now()
		_, seqSum := engine.Run(lo.Graph, base.Queries, engine.Config{Mode: engine.Seq, Budget: opts.Budget})
		_ = t0
		saved := float64(seqBase.TotalSteps-seqSum.TotalSteps) / float64(seqBase.TotalSteps) * 100
		speed := float64(seqBase.Wall) / float64(seqSum.Wall)
		fmt.Fprintf(w, "%-14s %10d %12d %12d %8.1f%% %8.2fx\n",
			pr.Name, st.Forwarders, seqBase.TotalSteps, seqSum.TotalSteps, saved, speed)
		totBase += seqBase.TotalSteps
		totSum += seqSum.TotalSteps
	}
	fmt.Fprintf(w, "%-14s %10s %12d %12d %8.1f%%\n", "TOTAL", "",
		totBase, totSum, float64(totBase-totSum)/float64(totBase)*100)
	fmt.Fprintf(w, "\nPaper context: summary-based schemes are reported to achieve up to 3X sequential speedups ([17][26]).\n")
	return nil
}

// IntraQuery evaluates the intra-query parallelisation strategy the paper
// rejects (Section III), against the sequential solver.
func IntraQuery(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Intra-query parallelism (the strategy Section III rejects) vs the sequential solver (scale=%.4g)\n", opts.Scale)
	fmt.Fprintf(w, "%-14s %10s %14s %8s\n", "Benchmark", "seq", fmt.Sprintf("intra x%d", opts.Threads), "ratio")
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		queries := b.Queries
		if len(queries) > 60 {
			queries = queries[:60]
		}
		t0 := time.Now()
		s := cfl.New(b.Lowered.Graph, cfl.Config{Budget: opts.Budget})
		for _, v := range queries {
			s.PointsTo(v, pag.EmptyContext)
		}
		seqT := time.Since(t0)
		t0 = time.Now()
		for _, v := range queries {
			intraquery.PointsTo(b.Lowered.Graph, v, pag.EmptyContext, intraquery.Config{Threads: opts.Threads, Budget: opts.Budget})
		}
		intraT := time.Since(t0)
		fmt.Fprintf(w, "%-14s %10s %14s %7.2fx\n",
			pr.Name, seqT.Round(time.Millisecond), intraT.Round(time.Millisecond),
			float64(intraT)/float64(seqT))
	}
	fmt.Fprintf(w, "\nRatios above 1 confirm the paper's argument: fan-out inside a query cannot share memoised\n")
	fmt.Fprintf(w, "work and pays barrier synchronisation, so inter-query parallelism is the right axis.\n")
	return nil
}

// Refinement evaluates the refinement-based configuration against the
// general-purpose one for clients of varying strength.
func Refinement(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Refinement-based configuration (Sridharan-Bodik) vs general-purpose (scale=%.4g)\n", opts.Scale)
	fmt.Fprintf(w, "%-14s %12s %14s %14s %10s\n", "Benchmark", "general", "refine(weak)", "refine(full)", "passes")
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		queries := b.Queries
		if len(queries) > 120 {
			queries = queries[:120]
		}
		var genSteps, weakSteps, fullSteps, passes int
		gen := cfl.New(b.Lowered.Graph, cfl.Config{Budget: opts.Budget})
		refWeak := refine.New(b.Lowered.Graph, refine.Config{
			BudgetPerPass: opts.Budget,
			Satisfied:     func(r cfl.Result) bool { return len(r.Objects()) <= 4 },
		})
		refFull := refine.New(b.Lowered.Graph, refine.Config{BudgetPerPass: opts.Budget})
		for _, v := range queries {
			genSteps += gen.PointsTo(v, pag.EmptyContext).Steps
			rw := refWeak.PointsTo(v, pag.EmptyContext)
			weakSteps += rw.TotalSteps
			rf := refFull.PointsTo(v, pag.EmptyContext)
			fullSteps += rf.TotalSteps
			passes += rf.Passes
		}
		fmt.Fprintf(w, "%-14s %12d %14d %14d %10.1f\n",
			pr.Name, genSteps, weakSteps, fullSteps, float64(passes)/float64(len(queries)))
	}
	fmt.Fprintf(w, "\nWeak clients (e.g. cast checks satisfied by small sets) finish on cheap approximate passes;\n")
	fmt.Fprintf(w, "clients needing full precision pay for the extra passes — the trade-off Section IV-A notes.\n")
	return nil
}

// Caching evaluates the cross-query result cache (the "ad-hoc caching" of
// [18][25]) on top of the paper's configurations.
func Caching(opts Options) error {
	opts = opts.withDefaults()
	presets, err := opts.presets()
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Result caching on top of the paper's modes (scale=%.4g, %d threads)\n", opts.Scale, opts.Threads)
	fmt.Fprintf(w, "%-14s %12s %12s %10s %10s %10s\n", "Benchmark", "DQ walked", "DQ+C walked", "reduction", "hits", "entries")
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return err
		}
		_, dq := b.runMode(engine.DQ, opts.Threads, opts.Budget, 0, 0)
		_, dqc := engine.Run(b.Lowered.Graph, b.Queries, engine.Config{
			Mode: engine.DQ, Threads: opts.Threads, Budget: opts.Budget,
			TypeLevels: b.Lowered.TypeLevels, ResultCache: true,
		})
		red := float64(dq.StepsWalked()-dqc.StepsWalked()) / float64(dq.StepsWalked()) * 100
		fmt.Fprintf(w, "%-14s %12d %12d %9.1f%% %10d %10d\n",
			pr.Name, dq.StepsWalked(), dqc.StepsWalked(), red, dqc.Cache.Hits, dqc.Cache.Entries)
	}
	fmt.Fprintf(w, "\nThe cache shares entire memoised traversals; the jmp store shares alias expansions.\n")
	fmt.Fprintf(w, "They compose: entries the cache absorbs never reach the jmp-recording path.\n")
	return nil
}
