package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parcfl/internal/server"
)

// TestRunSoakShape: a healthy target yields a well-formed report — every
// arrival sent and succeeded, ordered percentiles, phase shares that
// partition the attributed time.
func TestRunSoakShape(t *testing.T) {
	var calls atomic.Int64
	rep := RunSoak(SoakOptions{Rate: 400, Duration: 250 * time.Millisecond, Seed: 7},
		8, func(ctx context.Context, idx int, rid string) (server.Timings, error) {
			if idx < 0 || idx >= 8 {
				t.Errorf("var index %d out of range", idx)
			}
			calls.Add(1)
			return server.Timings{
				AdmitNS: 100, QueueWaitNS: 300, SolveNS: 500, FanoutNS: 100,
				TotalNS: 1000,
			}, nil
		})
	if rep.Schema != SoakSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Sent == 0 || rep.Sent != calls.Load() || rep.Succeeded != rep.Sent {
		t.Fatalf("sent=%d succeeded=%d calls=%d", rep.Sent, rep.Succeeded, calls.Load())
	}
	if rep.Shed != 0 || rep.Overloaded != 0 || rep.Deadlined != 0 || rep.Errored != 0 {
		t.Fatalf("healthy soak reported failures: %+v", rep)
	}
	if rep.QPS <= 0 || rep.P50NS <= 0 || rep.P99NS < rep.P50NS || rep.P999NS < rep.P99NS {
		t.Fatalf("latency shape: %+v", rep)
	}
	// Fixed timings: shares are exactly the per-request fractions.
	ph := rep.Phases
	if ph.AdmitShare != 0.1 || ph.QueueShare != 0.3 || ph.SolveShare != 0.5 || ph.FanoutShare != 0.1 {
		t.Fatalf("phase shares: %+v", ph)
	}
}

// TestRunSoakDeterministicArrivals: same seed, same arrival count and
// variable draw — the property that makes soak diffs meaningful. The
// inflight cap is set far above the arrival count so scheduling jitter can
// never shed (shedding would make the count timing-dependent).
func TestRunSoakDeterministicArrivals(t *testing.T) {
	run := func() (int64, [5]int64) {
		var hist [5]atomic.Int64
		rep := RunSoak(SoakOptions{Rate: 300, Duration: 150 * time.Millisecond, Seed: 11, MaxInflight: 1024},
			5, func(ctx context.Context, idx int, rid string) (server.Timings, error) {
				hist[idx].Add(1)
				return server.Timings{}, nil
			})
		var out [5]int64
		for i := range hist {
			out[i] = hist[i].Load()
		}
		return rep.Sent, out
	}
	n1, h1 := run()
	n2, h2 := run()
	if n1 == 0 || n1 != n2 {
		t.Fatalf("arrival counts differ: %d vs %d", n1, n2)
	}
	if h1 != h2 {
		t.Fatalf("variable draws diverged: %v vs %v", h1, h2)
	}
}

// TestRunSoakClassification: overloads are classified, retried once when
// asked, and never pollute the success latency set; deadline and hard
// errors land in their own buckets.
func TestRunSoakClassification(t *testing.T) {
	var calls atomic.Int64
	rep := RunSoak(SoakOptions{Rate: 200, Duration: 200 * time.Millisecond, Seed: 3, Retry: true},
		4, func(ctx context.Context, idx int, rid string) (server.Timings, error) {
			switch calls.Add(1) % 4 {
			case 1:
				return server.Timings{}, &server.OverloadedError{RetryAfter: time.Millisecond}
			case 2:
				return server.Timings{}, context.DeadlineExceeded
			case 3:
				return server.Timings{}, errors.New("boom")
			}
			return server.Timings{SolveNS: 10, TotalNS: 10}, nil
		})
	if rep.Retried == 0 {
		t.Fatalf("no retries despite overloads: %+v", rep)
	}
	if rep.Deadlined == 0 || rep.Errored == 0 || rep.Succeeded == 0 {
		t.Fatalf("classification: %+v", rep)
	}
	if rep.Sent != rep.Succeeded+rep.Overloaded+rep.Deadlined+rep.Errored {
		t.Fatalf("outcomes do not partition sent: %+v", rep)
	}
	if rep.RetryRate <= 0 {
		t.Fatalf("retry rate = %g", rep.RetryRate)
	}
}

// TestRunSoakShedsAtInflightCap: with the target wedged, the open loop
// sheds arrivals client-side instead of queueing unboundedly.
func TestRunSoakShedsAtInflightCap(t *testing.T) {
	block := make(chan struct{})
	rep := RunSoak(SoakOptions{Rate: 500, Duration: 150 * time.Millisecond, Seed: 5,
		MaxInflight: 2, Timeout: 50 * time.Millisecond},
		1, func(ctx context.Context, idx int, rid string) (server.Timings, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return server.Timings{}, ctx.Err()
		})
	close(block)
	if rep.Shed == 0 {
		t.Fatalf("wedged target shed nothing: %+v", rep)
	}
	if rep.Sent > 0 && rep.Deadlined == 0 {
		t.Fatalf("wedged target produced no deadline outcomes: %+v", rep)
	}
}

// TestRunSoakSlowest: the report retains the top-K slowest successful
// requests, slowest first, each with its minted request ID and timings.
func TestRunSoakSlowest(t *testing.T) {
	var calls atomic.Int64
	rep := RunSoak(SoakOptions{Rate: 300, Duration: 200 * time.Millisecond, Seed: 9, RIDPrefix: "tst"},
		4, func(ctx context.Context, idx int, rid string) (server.Timings, error) {
			if rid == "" {
				t.Error("empty rid")
			}
			n := calls.Add(1)
			if n%7 == 0 {
				time.Sleep(5 * time.Millisecond) // a deliberately slow tail
			}
			return server.Timings{SolveNS: n, TotalNS: n}, nil
		})
	if len(rep.Slowest) == 0 || len(rep.Slowest) > soakSlowestK {
		t.Fatalf("slowest has %d entries", len(rep.Slowest))
	}
	for i, sr := range rep.Slowest {
		if sr.RID == "" || sr.LatencyNS <= 0 {
			t.Fatalf("slowest[%d] = %+v", i, sr)
		}
		if !strings.HasPrefix(sr.RID, "tst-9-") {
			t.Fatalf("slowest[%d] rid %q lacks the minted prefix", i, sr.RID)
		}
		if i > 0 && sr.LatencyNS > rep.Slowest[i-1].LatencyNS {
			t.Fatalf("slowest not ordered: %+v", rep.Slowest)
		}
	}
	// The slowest entry should be one of the deliberately delayed calls.
	if rep.Slowest[0].LatencyNS < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("slowest[0] = %+v does not reflect the injected tail", rep.Slowest[0])
	}
}
