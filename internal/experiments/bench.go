package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"parcfl/internal/engine"
)

// BenchSchema identifies the layout of one bench report; bump on breaking
// changes so downstream trajectory tooling can reject files it does not
// understand.
const BenchSchema = "parcfl-bench/v1"

// BenchHistorySchema identifies the BENCH_runs.json root: an append-only
// list of labelled reports, so successive runs accumulate a trajectory
// instead of clobbering each other. Legacy v1 files holding a single bare
// report are read transparently (wrapped as the first history entry).
const BenchHistorySchema = "parcfl-bench-history/v1"

// benchDefaults are the presets the bench experiment runs when none are
// named: the three smallest members of the suite, so the full 3 benchmarks
// x 4 modes grid stays cheap enough for CI.
var benchDefaults = []string{"_200_check", "_201_compress", "_209_db"}

// BenchRun is one (benchmark, mode) cell of the trajectory grid.
type BenchRun struct {
	Bench   string `json:"bench"`
	Mode    string `json:"mode"`
	Threads int    `json:"threads"`
	// Shards is the cluster width of a Serve-sharded-N row (0 for every
	// single-process row).
	Shards int `json:"shards,omitempty"`

	WallNS int64 `json:"wall_ns"`

	Queries           int `json:"queries"`
	Completed         int `json:"completed"`
	Aborted           int `json:"aborted"`
	EarlyTerminations int `json:"early_terminations"`

	TotalSteps  int64 `json:"total_steps"`
	StepsWalked int64 `json:"steps_walked"`
	StepsSaved  int64 `json:"steps_saved"`
	JumpsTaken  int64 `json:"jumps_taken"`

	// ModeledSpeedup is sequential walked steps over this run's heaviest
	// worker (hardware-independent); WallSpeedup is sequential wall time
	// over this run's wall time (host-bound). Both are 1 for the Seq row.
	ModeledSpeedup float64 `json:"modeled_speedup"`
	WallSpeedup    float64 `json:"wall_speedup"`
	RS             float64 `json:"r_s"`

	// Share counters are zero for Seq/Naive (no jmp store).
	ShareFinished   int64   `json:"share_finished"`
	ShareUnfinished int64   `json:"share_unfinished"`
	ShareLookups    int64   `json:"share_lookups"`
	ShareHits       int64   `json:"share_hits"`
	ShareHitRate    float64 `json:"share_hit_rate"`

	// Cache counters are zero unless the run used the result cache.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Schedule shape (DQ only; zero otherwise).
	NumGroups    int     `json:"num_groups"`
	AvgGroupSize float64 `json:"avg_group_size"`

	// Serving throughput (Serve-* rows only; zero otherwise): request
	// rate and latency percentiles of the census replayed against a
	// resident server (see internal/server).
	QPS   float64 `json:"qps,omitempty"`
	P50NS int64   `json:"p50_ns,omitempty"`
	P99NS int64   `json:"p99_ns,omitempty"`

	// Open-loop soak metrics (Serve-soak row only; zero otherwise): the
	// census soaked at a fixed Poisson arrival rate against a warm server.
	// The share columns attribute the summed request time to the server's
	// lifecycle phases — drift here localises a regression (queueing vs
	// solving vs fan-out) before the aggregate numbers move.
	TargetQPS    float64 `json:"target_qps,omitempty"`
	P999NS       int64   `json:"p999_ns,omitempty"`
	OverloadRate float64 `json:"overload_rate,omitempty"`
	AdmitShare   float64 `json:"admit_share,omitempty"`
	QueueShare   float64 `json:"queue_share,omitempty"`
	SolveShare   float64 `json:"solve_share,omitempty"`
	FanoutShare  float64 `json:"fanout_share,omitempty"`

	// Traversal-kernel throughput (kernel-on/off rows only; zero
	// otherwise): budget steps retired per second of engine wall time, and
	// heap allocations per query (runtime.MemStats.Mallocs delta over the
	// census). The two rows answer one question — does the preprocessed
	// dense form actually traverse faster and allocate less than the
	// NodeCtx-keyed maps — on results asserted byte-identical.
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// BenchReport is one labelled grid of bench runs — one entry of the
// BENCH_runs.json history.
type BenchReport struct {
	Schema    string  `json:"schema"`
	Generated string  `json:"generated"` // RFC 3339
	Host      string  `json:"host"`      // GOOS/GOARCH, core count
	Scale     float64 `json:"scale"`
	Budget    int     `json:"budget"`
	Threads   int     `json:"threads"`
	// GoMaxProcs and NumCPU pin down the parallelism the host actually
	// offered: when Threads > NumCPU the workers time-share cores and
	// wall_speedup systematically underestimates parallel scaling (the
	// modeled_speedup column is the hardware-independent number).
	GoMaxProcs int `json:"go_max_procs"`
	NumCPU     int `json:"num_cpu"`

	// Label names the run (e.g. "baseline", "pr-12", "ci-smoke"); a
	// re-run with the same non-empty label replaces the earlier entry in
	// the history instead of appending a duplicate.
	Label string `json:"label,omitempty"`
	// GitRev is the source revision the binary was built from, when known.
	GitRev string `json:"git_rev,omitempty"`

	Runs []BenchRun `json:"runs"`
}

// BenchHistory is the root object of BENCH_runs.json: the accumulated
// reports across runs.
type BenchHistory struct {
	Schema  string        `json:"schema"`
	Reports []BenchReport `json:"reports"`
}

// Add merges rep into the history: an entry with the same non-empty label
// is replaced in place (a re-run supersedes it); otherwise rep is appended.
func (h *BenchHistory) Add(rep BenchReport) {
	if rep.Label != "" {
		for i := range h.Reports {
			if h.Reports[i].Label == rep.Label {
				h.Reports[i] = rep
				return
			}
		}
	}
	h.Reports = append(h.Reports, rep)
}

// LoadBenchHistory reads an existing BENCH_runs.json. A missing file yields
// an empty history; a legacy single-report file (schema parcfl-bench/v1 at
// the root) is wrapped as the history's first entry.
func LoadBenchHistory(path string) (*BenchHistory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchHistory{Schema: BenchHistorySchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch probe.Schema {
	case BenchHistorySchema:
		var h BenchHistory
		if err := json.Unmarshal(data, &h); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &h, nil
	case BenchSchema:
		var rep BenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &BenchHistory{Schema: BenchHistorySchema, Reports: []BenchReport{rep}}, nil
	default:
		return nil, fmt.Errorf("%s: unknown schema %q", path, probe.Schema)
	}
}

// WriteBenchHistory merges rep into the history at path (creating it if
// absent) and writes the result back as indented JSON. It returns the
// resulting history size.
func WriteBenchHistory(path string, rep BenchReport) (int, error) {
	h, err := LoadBenchHistory(path)
	if err != nil {
		return 0, err
	}
	h.Add(rep)
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, err
	}
	return len(h.Reports), nil
}

// benchRunFrom flattens engine stats into one grid cell.
func benchRunFrom(bench string, st engine.Stats, seq engine.Stats) BenchRun {
	r := BenchRun{
		Bench:   bench,
		Mode:    st.Mode.String(),
		Threads: st.Threads,

		WallNS: st.Wall.Nanoseconds(),

		Queries:           st.Queries,
		Completed:         st.Completed,
		Aborted:           st.Aborted,
		EarlyTerminations: st.EarlyTerminations,

		TotalSteps:  st.TotalSteps,
		StepsWalked: st.StepsWalked(),
		StepsSaved:  st.StepsSaved,
		JumpsTaken:  st.JumpsTaken,

		RS: st.RS(),

		ShareFinished:   st.Share.FinishedAdded,
		ShareUnfinished: st.Share.UnfinishedAdded,
		ShareLookups:    st.Share.Lookups,
		ShareHits:       st.Share.LookupHits,
		ShareHitRate:    st.Share.HitRate(),

		CacheHits:    st.Cache.Hits,
		CacheMisses:  st.Cache.Misses,
		CacheHitRate: st.Cache.HitRate(),

		NumGroups:    st.NumGroups,
		AvgGroupSize: st.AvgGroupSize,
	}
	r.ModeledSpeedup = st.ModeledSpeedup(seq.StepsWalked())
	if st.Wall > 0 {
		r.WallSpeedup = float64(seq.Wall) / float64(st.Wall)
	}
	return r
}

// BenchGrid runs every benchmark x mode cell and returns the report. The
// sequential row of each benchmark is the speedup baseline for the other
// three. Exposed separately from Bench so tests can exercise the grid
// without touching the filesystem.
func BenchGrid(opts Options) (*BenchReport, error) {
	opts = opts.withDefaults()
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = benchDefaults
	}
	presets, err := opts.presets()
	if err != nil {
		return nil, err
	}

	rep := &BenchReport{
		Schema:     BenchSchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Host:       fmt.Sprintf("%s/%s %d cores", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Scale:      opts.Scale,
		Budget:     opts.Budget,
		Threads:    opts.Threads,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Label:      opts.Label,
		GitRev:     opts.GitRev,
	}
	for _, pr := range presets {
		b, err := PrepareBench(pr, opts.Scale)
		if err != nil {
			return nil, err
		}
		_, seq := b.runMode(engine.Seq, 1, opts.Budget, 0, 0)
		rep.Runs = append(rep.Runs, benchRunFrom(pr.Name, seq, seq))
		for _, mode := range []engine.Mode{engine.Naive, engine.D, engine.DQ} {
			_, st := b.runMode(mode, opts.Threads, opts.Budget, 0, 0)
			rep.Runs = append(rep.Runs, benchRunFrom(pr.Name, st, seq))
		}
		// One extra DQ run with the result cache on, so the trajectory
		// includes a meaningful cache hit-rate signal.
		_, cached := engine.Run(b.Lowered.Graph, b.Queries, engine.Config{
			Mode: engine.DQ, Threads: opts.Threads, Budget: opts.Budget,
			TypeLevels: b.Lowered.TypeLevels, ResultCache: true,
		})
		cr := benchRunFrom(pr.Name, cached, seq)
		cr.Mode = cached.Mode.String() + "+cache"
		rep.Runs = append(rep.Runs, cr)
		// Serving rows: the census replayed against a resident server,
		// cold and then warm through the snapshot codec, so benchdiff
		// gates daemon throughput and the warm-start win.
		serve, err := ServeRows(b, opts)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, serve...)
		// Sharded serving rows: the census through a loopback cluster of 1,
		// 2 and 4 plan-sliced replicas behind a router, so benchdiff gates
		// the cluster path's throughput (and the N=1 row prices the router's
		// own overhead against Serve-cold).
		shardRows, err := ShardedRows(b, opts)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, shardRows...)
		// Kernel rows: the sequential census with the preprocessed
		// traversal kernel off and on, results asserted identical, so the
		// trajectory records the layout's steps/sec and allocs/op win.
		kern, err := KernelRows(b, opts)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, kern...)
	}
	return rep, nil
}

// BenchTrajectory runs the benchmark-trajectory grid, prints a summary
// table, and — when Options.JSONPath is set — writes the full report there
// as indented JSON (the BENCH_runs.json artifact). Registered as the
// "bench" experiment.
func BenchTrajectory(opts Options) error {
	opts = opts.withDefaults()
	rep, err := BenchGrid(opts)
	if err != nil {
		return err
	}
	w := opts.Out
	fmt.Fprintf(w, "Bench trajectory: %d runs (scale=%.4g, B=%d, %d threads)\n",
		len(rep.Runs), rep.Scale, rep.Budget, rep.Threads)
	if rep.Threads > rep.NumCPU {
		fmt.Fprintf(w, "warning: %d threads on %d cores — workers are time-sharing, so wallX underestimates parallel scaling; read the modeled column instead\n",
			rep.Threads, rep.NumCPU)
	}
	fmt.Fprintf(w, "%-14s %-16s %10s %8s %8s %8s %8s %9s %9s\n",
		"Benchmark", "Mode", "wall", "queries", "aborted", "modeled", "wallX", "shareHit", "cacheHit")
	for _, r := range rep.Runs {
		fmt.Fprintf(w, "%-14s %-16s %10s %8d %8d %8.2f %8.2f %8.1f%% %8.1f%%\n",
			r.Bench, r.Mode, time.Duration(r.WallNS).Round(time.Microsecond),
			r.Queries, r.Aborted, r.ModeledSpeedup, r.WallSpeedup,
			100*r.ShareHitRate, 100*r.CacheHitRate)
	}
	if opts.JSONPath != "" {
		n, err := WriteBenchHistory(opts.JSONPath, *rep)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s (%s, %d runs, %d reports in history)\n",
			opts.JSONPath, rep.Schema, len(rep.Runs), n)
	}
	return nil
}
