package experiments

import (
	"bytes"
	"sort"
	"testing"

	"parcfl/internal/engine"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
)

// TestSerialisedBenchmarkEquivalence: analysing a benchmark loaded from its
// PAG JSON must give exactly the results of analysing the freshly lowered
// graph — the round trip the benchgen/pointsto tools rely on.
func TestSerialisedBenchmarkEquivalence(t *testing.T) {
	pr, err := javagen.PresetByName("_201_compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareBench(pr, 0.002)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := b.Lowered.Graph.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := pag.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != b.Lowered.Graph.NumNodes() || g2.NumEdges() != b.Lowered.Graph.NumEdges() {
		t.Fatalf("roundtrip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), b.Lowered.Graph.NumNodes(), b.Lowered.Graph.NumEdges())
	}

	canon := func(rs []engine.QueryResult) map[pag.NodeID]string {
		m := map[pag.NodeID]string{}
		for _, r := range rs {
			objs := append([]pag.NodeID{}, r.Objects...)
			sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
			var key []byte
			for _, o := range objs {
				key = append(key, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
			}
			m[r.Var] = string(key)
		}
		return m
	}
	r1, _ := engine.Run(b.Lowered.Graph, b.Queries, engine.Config{Mode: engine.Seq, Budget: 75000})
	r2, _ := engine.Run(g2, b.Queries, engine.Config{Mode: engine.Seq, Budget: 75000})
	m1, m2 := canon(r1), canon(r2)
	if len(m1) != len(m2) {
		t.Fatalf("result counts differ: %d vs %d", len(m1), len(m2))
	}
	for v, k := range m1 {
		if m2[v] != k {
			t.Fatalf("var %d differs after serialisation roundtrip", v)
		}
	}
}
