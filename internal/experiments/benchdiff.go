package experiments

import (
	"fmt"
	"io"
	"time"
)

// Bench regression gate: compare two labelled reports of a BENCH_runs.json
// history cell by cell — a cell is one (benchmark, mode) pair — against
// percentage thresholds, so the bench trajectory becomes an enforced perf
// contract instead of an archive. Wall time gates "did it get slower";
// steps_saved / jumps_taken / early_terminations gate "did the sharing
// scheme stop pulling its weight" (the Fig. 7 signals), failing only on
// drops. cmd/benchdiff wraps this into a CLI that exits non-zero on
// regression, which CI runs against the committed baseline label.

// DiffOptions are the regression thresholds.
type DiffOptions struct {
	// WallPct fails a cell whose wall_ns grew by more than this percent
	// over the baseline. <= 0 disables the wall gate (useful when base and
	// head ran on different hosts).
	WallPct float64
	// CountPct fails a cell where a sharing counter (steps_saved,
	// jumps_taken, early_terminations) dropped by more than this percent.
	// <= 0 disables the counter gates.
	CountPct float64
	// MinCount is the noise floor for counter gates: baselines below it
	// are too small for a relative drop to mean anything (a handful of
	// racy jmp inserts can halve them run to run) and are skipped.
	MinCount int64
	// MinWallNS is the wall gate's noise floor: cells whose baseline ran
	// shorter than this are skipped.
	MinWallNS int64
	// QPSPct fails a serving cell (Serve-*) whose qps dropped by more than
	// this percent below the baseline. qps is higher-is-better — the
	// opposite gating direction from wall_ns, same as the sharing counters.
	// <= 0 disables the qps gate.
	QPSPct float64
	// MinQPS is the qps gate's noise floor: baselines below this rate are
	// too small for a relative drop to mean anything.
	MinQPS float64
	// TailPct fails a soak cell whose p999_ns grew by more than this
	// percent. The tail is far noisier than the median, so its threshold is
	// deliberately looser than WallPct; <= 0 disables the tail gate.
	TailPct float64
	// MinTailNS is the tail gate's noise floor: baselines whose p99.9 is
	// below it are dominated by scheduler jitter and skipped.
	MinTailNS int64
}

// DefaultDiffOptions returns the thresholds benchdiff ships with: 20% wall
// growth, 50% counter drop, 50% qps drop, 150% p99.9 growth; counters under
// 50, walls under 1ms, rates under 20 qps and tails under 1ms ignored.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{
		WallPct:   20,
		CountPct:  50,
		MinCount:  50,
		MinWallNS: int64(time.Millisecond),
		QPSPct:    50,
		MinQPS:    20,
		TailPct:   150,
		MinTailNS: int64(time.Millisecond),
	}
}

// DiffCell is one metric comparison within one (benchmark, mode) cell.
type DiffCell struct {
	Bench  string `json:"bench"`
	Mode   string `json:"mode"`
	Metric string `json:"metric"`
	Base   int64  `json:"base"`
	Head   int64  `json:"head"`
	// DeltaPct is (head-base)/base in percent (0 when base is 0).
	DeltaPct float64 `json:"delta_pct"`
	// Regression marks the cell as failing its threshold.
	Regression bool `json:"regression"`
	// Skipped marks comparisons below the noise floors or with the gate
	// disabled; Note says why (also set on incomparable cells).
	Skipped bool   `json:"skipped"`
	Note    string `json:"note,omitempty"`
}

// DiffSchema identifies the Diff JSON layout (benchdiff -json); bump on
// breaking changes.
const DiffSchema = "parcfl-benchdiff/v1"

// Diff is the outcome of comparing two reports.
type Diff struct {
	Schema    string     `json:"schema"`
	BaseLabel string     `json:"base_label"`
	HeadLabel string     `json:"head_label"`
	Cells     []DiffCell `json:"cells"`
	// Regressions counts failing cells; the CLI exit code is non-zero iff
	// this is.
	Regressions int `json:"regressions"`
	// MissingHead lists bench/mode cells present in base but absent from
	// head (reported, not failed: the suite may legitimately shrink).
	MissingHead []string `json:"missing_head,omitempty"`
	// NewHead lists bench/mode cells present in head but absent from base:
	// freshly added benchmarks or modes (e.g. a kernel-on row landing before
	// the baseline is re-recorded). They have nothing to gate against, so
	// they are reported as new and ungated rather than treated as an error.
	NewHead []string `json:"new_head,omitempty"`
	// Incomparable lists cells whose query census differs between the two
	// reports — their metrics are shown but not gated, since a changed
	// workload invalidates the comparison.
	Incomparable []string `json:"incomparable,omitempty"`
}

// ReportByLabel finds the history entry with the given label.
func ReportByLabel(h *BenchHistory, label string) (*BenchReport, error) {
	for i := range h.Reports {
		if h.Reports[i].Label == label {
			return &h.Reports[i], nil
		}
	}
	var have []string
	for i := range h.Reports {
		if h.Reports[i].Label != "" {
			have = append(have, h.Reports[i].Label)
		}
	}
	return nil, fmt.Errorf("no report labelled %q in history (labels: %v)", label, have)
}

// cellKey identifies one grid cell across reports.
type cellKey struct{ bench, mode string }

// DiffReports compares head against base cell by cell. Cells are matched by
// (benchmark, mode); head-only cells are reported as new (ungated),
// base-only cells as missing.
func DiffReports(base, head *BenchReport, opt DiffOptions) *Diff {
	d := &Diff{Schema: DiffSchema, BaseLabel: base.Label, HeadLabel: head.Label}
	headIdx := make(map[cellKey]*BenchRun, len(head.Runs))
	baseIdx := make(map[cellKey]bool, len(base.Runs))
	for i := range head.Runs {
		r := &head.Runs[i]
		headIdx[cellKey{r.Bench, r.Mode}] = r
	}
	for i := range base.Runs {
		b := &base.Runs[i]
		baseIdx[cellKey{b.Bench, b.Mode}] = true
	}
	for i := range head.Runs {
		r := &head.Runs[i]
		if !baseIdx[cellKey{r.Bench, r.Mode}] {
			d.NewHead = append(d.NewHead, r.Bench+"/"+r.Mode)
		}
	}
	for i := range base.Runs {
		b := &base.Runs[i]
		h, ok := headIdx[cellKey{b.Bench, b.Mode}]
		if !ok {
			d.MissingHead = append(d.MissingHead, b.Bench+"/"+b.Mode)
			continue
		}
		comparable := b.Queries == h.Queries
		if !comparable {
			d.Incomparable = append(d.Incomparable,
				fmt.Sprintf("%s/%s (queries %d -> %d)", b.Bench, b.Mode, b.Queries, h.Queries))
		}
		d.add(diffWall(b, h, opt, comparable))
		d.add(diffCount(b, h, "steps_saved", b.StepsSaved, h.StepsSaved, opt, comparable))
		d.add(diffCount(b, h, "jumps_taken", b.JumpsTaken, h.JumpsTaken, opt, comparable))
		d.add(diffCount(b, h, "early_terminations",
			int64(b.EarlyTerminations), int64(h.EarlyTerminations), opt, comparable))
		// Serving cells additionally carry a throughput gate (direction
		// opposite to wall) and, for soak rows, informational phase-share
		// drift so a localised shift (queueing vs solving) is visible in the
		// diff before it moves the aggregate numbers.
		if b.QPS > 0 && h.QPS > 0 {
			d.add(diffQPS(b, h, opt, comparable))
		}
		if b.P999NS > 0 && h.P999NS > 0 {
			d.add(diffTail(b, h, opt, comparable))
		}
		if b.TargetQPS > 0 && h.TargetQPS > 0 {
			d.add(diffShare(b, h, "admit_share_bp", b.AdmitShare, h.AdmitShare, comparable))
			d.add(diffShare(b, h, "queue_share_bp", b.QueueShare, h.QueueShare, comparable))
			d.add(diffShare(b, h, "solve_share_bp", b.SolveShare, h.SolveShare, comparable))
			d.add(diffShare(b, h, "fanout_share_bp", b.FanoutShare, h.FanoutShare, comparable))
		}
	}
	return d
}

func (d *Diff) add(c DiffCell) {
	if c.Regression {
		d.Regressions++
	}
	d.Cells = append(d.Cells, c)
}

func deltaPct(base, head int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(head-base) / float64(base)
}

// diffWall gates wall_ns: growth beyond WallPct is a regression.
func diffWall(b, h *BenchRun, opt DiffOptions, comparable bool) DiffCell {
	c := DiffCell{
		Bench: b.Bench, Mode: b.Mode, Metric: "wall_ns",
		Base: b.WallNS, Head: h.WallNS, DeltaPct: deltaPct(b.WallNS, h.WallNS),
	}
	switch {
	case !comparable:
		c.Skipped, c.Note = true, "query census changed"
	case opt.WallPct <= 0:
		c.Skipped, c.Note = true, "wall gate disabled"
	case b.WallNS < opt.MinWallNS:
		c.Skipped, c.Note = true, "below noise floor"
	default:
		c.Regression = c.DeltaPct > opt.WallPct
	}
	return c
}

// diffCount gates a higher-is-better sharing counter: a drop beyond
// CountPct is a regression.
func diffCount(b, h *BenchRun, metric string, base, head int64, opt DiffOptions, comparable bool) DiffCell {
	c := DiffCell{
		Bench: b.Bench, Mode: b.Mode, Metric: metric,
		Base: base, Head: head, DeltaPct: deltaPct(base, head),
	}
	switch {
	case !comparable:
		c.Skipped, c.Note = true, "query census changed"
	case opt.CountPct <= 0:
		c.Skipped, c.Note = true, "counter gate disabled"
	case base < opt.MinCount:
		c.Skipped, c.Note = true, "below noise floor"
	default:
		c.Regression = c.DeltaPct < -opt.CountPct
	}
	return c
}

// diffQPS gates serving throughput, reported in milli-qps so the int64 cell
// keeps three decimals. qps is higher-is-better: a drop beyond QPSPct is
// the regression, growth never fails.
func diffQPS(b, h *BenchRun, opt DiffOptions, comparable bool) DiffCell {
	c := DiffCell{
		Bench: b.Bench, Mode: b.Mode, Metric: "qps_milli",
		Base: int64(b.QPS * 1000), Head: int64(h.QPS * 1000),
	}
	c.DeltaPct = deltaPct(c.Base, c.Head)
	switch {
	case !comparable:
		c.Skipped, c.Note = true, "query census changed"
	case opt.QPSPct <= 0:
		c.Skipped, c.Note = true, "qps gate disabled"
	case b.QPS < opt.MinQPS:
		c.Skipped, c.Note = true, "below noise floor"
	default:
		c.Regression = c.DeltaPct < -opt.QPSPct
	}
	return c
}

// diffTail gates the soak p99.9: growth beyond TailPct is a regression,
// shrinkage never fails (same direction as wall_ns, looser threshold — the
// extreme tail is the metric the trace store retains requests by, and the
// first to move when queueing goes wrong, but also the noisiest).
func diffTail(b, h *BenchRun, opt DiffOptions, comparable bool) DiffCell {
	c := DiffCell{
		Bench: b.Bench, Mode: b.Mode, Metric: "p999_ns",
		Base: b.P999NS, Head: h.P999NS, DeltaPct: deltaPct(b.P999NS, h.P999NS),
	}
	switch {
	case !comparable:
		c.Skipped, c.Note = true, "query census changed"
	case opt.TailPct <= 0:
		c.Skipped, c.Note = true, "tail gate disabled"
	case b.P999NS < opt.MinTailNS:
		c.Skipped, c.Note = true, "below noise floor"
	default:
		c.Regression = c.DeltaPct > opt.TailPct
	}
	return c
}

// diffShare reports phase-share drift in basis points (1/100 of a percent of
// the request's end-to-end time). Shares are a diagnostic — where the time
// went, not how much — so these cells are always informational: never gated,
// present in the table and the -json diff to localise a wall/qps regression.
func diffShare(b, h *BenchRun, metric string, base, head float64, comparable bool) DiffCell {
	c := DiffCell{
		Bench: b.Bench, Mode: b.Mode, Metric: metric,
		Base: int64(base*10_000 + 0.5), Head: int64(head*10_000 + 0.5),
		Skipped: true, Note: "informational",
	}
	c.DeltaPct = deltaPct(c.Base, c.Head)
	if !comparable {
		c.Note = "query census changed"
	}
	return c
}

// WriteTable prints the delta table, one line per comparison, regressions
// marked, followed by a verdict line.
func (d *Diff) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "benchdiff: %q -> %q\n", d.BaseLabel, d.HeadLabel)
	fmt.Fprintf(w, "%-14s %-16s %-20s %14s %14s %9s  %s\n",
		"Benchmark", "Mode", "Metric", "base", "head", "delta", "verdict")
	for _, c := range d.Cells {
		verdict := "ok"
		switch {
		case c.Regression:
			verdict = "REGRESSION"
		case c.Skipped:
			verdict = "skipped: " + c.Note
		}
		fmt.Fprintf(w, "%-14s %-16s %-20s %14d %14d %+8.1f%%  %s\n",
			c.Bench, c.Mode, c.Metric, c.Base, c.Head, c.DeltaPct, verdict)
	}
	for _, m := range d.MissingHead {
		fmt.Fprintf(w, "missing in head: %s\n", m)
	}
	for _, m := range d.NewHead {
		fmt.Fprintf(w, "new in head (ungated): %s\n", m)
	}
	for _, m := range d.Incomparable {
		fmt.Fprintf(w, "incomparable (not gated): %s\n", m)
	}
	if d.Regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d regression(s)\n", d.Regressions)
	} else {
		fmt.Fprintf(w, "PASS: no regressions\n")
	}
}
