package experiments

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// diffRun builds one grid cell with healthy counter values well above the
// default noise floors.
func diffRun(bench, mode string, wallNS int64) BenchRun {
	return BenchRun{
		Bench: bench, Mode: mode, Threads: 4,
		WallNS:            wallNS,
		Queries:           200,
		EarlyTerminations: 120,
		StepsSaved:        10_000,
		JumpsTaken:        800,
	}
}

func diffReport(label string, runs ...BenchRun) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Label: label, Runs: runs}
}

func findCell(t *testing.T, d *Diff, bench, mode, metric string) DiffCell {
	t.Helper()
	for _, c := range d.Cells {
		if c.Bench == bench && c.Mode == mode && c.Metric == metric {
			return c
		}
	}
	t.Fatalf("no cell %s/%s/%s in %+v", bench, mode, metric, d.Cells)
	return DiffCell{}
}

func TestDiffWallRegressionThreshold(t *testing.T) {
	base := diffReport("base", diffRun("b1", "dq", 10*int64(time.Millisecond)))

	// +25% wall trips the default 20% gate.
	head := diffReport("head", diffRun("b1", "dq", 12_500_000))
	d := DiffReports(base, head, DefaultDiffOptions())
	c := findCell(t, d, "b1", "dq", "wall_ns")
	if !c.Regression || d.Regressions != 1 {
		t.Fatalf("+25%% wall not flagged: cell=%+v regressions=%d", c, d.Regressions)
	}

	// +10% does not.
	head = diffReport("head", diffRun("b1", "dq", 11_000_000))
	d = DiffReports(base, head, DefaultDiffOptions())
	if c := findCell(t, d, "b1", "dq", "wall_ns"); c.Regression {
		t.Fatalf("+10%% wall flagged: %+v", c)
	}
	if d.Regressions != 0 {
		t.Fatalf("regressions = %d, want 0", d.Regressions)
	}

	// -wall-pct 0 disables the gate even for a 3x slowdown.
	head = diffReport("head", diffRun("b1", "dq", 30_000_000))
	opt := DefaultDiffOptions()
	opt.WallPct = 0
	d = DiffReports(base, head, opt)
	c = findCell(t, d, "b1", "dq", "wall_ns")
	if c.Regression || !c.Skipped {
		t.Fatalf("disabled wall gate still fired: %+v", c)
	}
}

func TestDiffWallNoiseFloor(t *testing.T) {
	// Baseline under MinWallNS (1ms default): even a 10x slowdown is noise.
	base := diffReport("base", diffRun("b1", "dq", 100_000))
	head := diffReport("head", diffRun("b1", "dq", 1_000_000))
	d := DiffReports(base, head, DefaultDiffOptions())
	c := findCell(t, d, "b1", "dq", "wall_ns")
	if c.Regression || !c.Skipped || c.Note != "below noise floor" {
		t.Fatalf("sub-floor wall cell not skipped: %+v", c)
	}
}

func TestDiffCounterDropRegression(t *testing.T) {
	base := diffReport("base", diffRun("b1", "dq", 10_000_000))
	headRun := diffRun("b1", "dq", 10_000_000)
	headRun.StepsSaved = 4_000 // -60% trips the default 50% drop gate
	head := diffReport("head", headRun)
	d := DiffReports(base, head, DefaultDiffOptions())
	if c := findCell(t, d, "b1", "dq", "steps_saved"); !c.Regression {
		t.Fatalf("-60%% steps_saved not flagged: %+v", c)
	}
	// Counters moving UP never fail.
	headRun.StepsSaved = 50_000
	d = DiffReports(base, diffReport("head", headRun), DefaultDiffOptions())
	if c := findCell(t, d, "b1", "dq", "steps_saved"); c.Regression {
		t.Fatalf("counter growth flagged: %+v", c)
	}
}

func TestDiffCounterNoiseFloor(t *testing.T) {
	baseRun := diffRun("b1", "dq", 10_000_000)
	baseRun.JumpsTaken = 20 // below MinCount=50
	headRun := diffRun("b1", "dq", 10_000_000)
	headRun.JumpsTaken = 2 // -90%, but the baseline is noise
	d := DiffReports(diffReport("base", baseRun), diffReport("head", headRun), DefaultDiffOptions())
	c := findCell(t, d, "b1", "dq", "jumps_taken")
	if c.Regression || !c.Skipped || c.Note != "below noise floor" {
		t.Fatalf("sub-floor counter cell not skipped: %+v", c)
	}
}

// soakRunCell builds a Serve-soak grid cell.
func soakRunCell(qps float64) BenchRun {
	r := diffRun("b1", "Serve-soak", 1_200_000_000)
	r.QPS = qps
	r.TargetQPS = qps
	r.AdmitShare, r.QueueShare, r.SolveShare, r.FanoutShare = 0.05, 0.30, 0.60, 0.05
	return r
}

// TestDiffQPSDirection: qps is higher-is-better — a drop fails, growth never
// does, and the direction is independent of the wall gate on the same cell.
func TestDiffQPSDirection(t *testing.T) {
	base := diffReport("base", soakRunCell(1000))

	// -60% qps trips the default 50% drop gate.
	d := DiffReports(base, diffReport("head", soakRunCell(400)), DefaultDiffOptions())
	if c := findCell(t, d, "b1", "Serve-soak", "qps_milli"); !c.Regression {
		t.Fatalf("-60%% qps not flagged: %+v", c)
	}
	// +60% qps is an improvement, not a regression.
	d = DiffReports(base, diffReport("head", soakRunCell(1600)), DefaultDiffOptions())
	if c := findCell(t, d, "b1", "Serve-soak", "qps_milli"); c.Regression {
		t.Fatalf("qps growth flagged: %+v", c)
	}
	// Sub-floor baselines are noise.
	d = DiffReports(diffReport("base", soakRunCell(10)), diffReport("head", soakRunCell(1)), DefaultDiffOptions())
	if c := findCell(t, d, "b1", "Serve-soak", "qps_milli"); c.Regression || !c.Skipped || c.Note != "below noise floor" {
		t.Fatalf("sub-floor qps cell not skipped: %+v", c)
	}
	// -qps-pct 0 disables the gate.
	opt := DefaultDiffOptions()
	opt.QPSPct = 0
	d = DiffReports(base, diffReport("head", soakRunCell(1)), opt)
	if c := findCell(t, d, "b1", "Serve-soak", "qps_milli"); c.Regression || !c.Skipped {
		t.Fatalf("disabled qps gate still fired: %+v", c)
	}
}

// TestDiffPhaseShareInformational: soak rows carry phase-share drift cells
// in basis points that never gate, whatever the drift.
func TestDiffPhaseShareInformational(t *testing.T) {
	base := diffReport("base", soakRunCell(1000))
	headRun := soakRunCell(1000)
	headRun.QueueShare, headRun.SolveShare = 0.60, 0.30 // queueing exploded
	d := DiffReports(base, diffReport("head", headRun), DefaultDiffOptions())
	if d.Regressions != 0 {
		t.Fatalf("informational share drift gated: %d regressions", d.Regressions)
	}
	c := findCell(t, d, "b1", "Serve-soak", "queue_share_bp")
	if !c.Skipped || c.Note != "informational" {
		t.Fatalf("share cell not informational: %+v", c)
	}
	if c.Base != 3000 || c.Head != 6000 {
		t.Fatalf("share drift in bp = %d -> %d, want 3000 -> 6000", c.Base, c.Head)
	}
	for _, m := range []string{"admit_share_bp", "solve_share_bp", "fanout_share_bp"} {
		findCell(t, d, "b1", "Serve-soak", m)
	}
	// Non-soak serving rows get the qps cell but no share cells.
	warm := diffRun("b1", "Serve-warm", 10_000_000)
	warm.QPS = 500
	d = DiffReports(diffReport("base", warm), diffReport("head", warm), DefaultDiffOptions())
	findCell(t, d, "b1", "Serve-warm", "qps_milli")
	for _, c := range d.Cells {
		if strings.HasSuffix(c.Metric, "_share_bp") {
			t.Fatalf("non-soak row grew share cells: %+v", c)
		}
	}
}

func TestDiffQueryCensusMismatchIncomparable(t *testing.T) {
	base := diffReport("base", diffRun("b1", "dq", 10_000_000))
	headRun := diffRun("b1", "dq", 100_000_000) // would regress everything...
	headRun.Queries = 999                       // ...but the workload changed
	headRun.StepsSaved = 0
	d := DiffReports(base, diffReport("head", headRun), DefaultDiffOptions())
	if d.Regressions != 0 {
		t.Fatalf("incomparable cell gated: %d regressions", d.Regressions)
	}
	if len(d.Incomparable) != 1 || !strings.Contains(d.Incomparable[0], "b1/dq") {
		t.Fatalf("incomparable not reported: %v", d.Incomparable)
	}
	for _, c := range d.Cells {
		if !c.Skipped || c.Note != "query census changed" {
			t.Fatalf("cell not marked incomparable: %+v", c)
		}
	}
}

func TestDiffMissingHeadCell(t *testing.T) {
	base := diffReport("base",
		diffRun("b1", "dq", 10_000_000), diffRun("b2", "seq", 10_000_000))
	head := diffReport("head", diffRun("b1", "dq", 10_000_000))
	d := DiffReports(base, head, DefaultDiffOptions())
	if len(d.MissingHead) != 1 || d.MissingHead[0] != "b2/seq" {
		t.Fatalf("missing cell not reported: %v", d.MissingHead)
	}
	if d.Regressions != 0 {
		t.Fatalf("missing cell counted as regression")
	}
}

func TestDiffTableVerdicts(t *testing.T) {
	base := diffReport("base", diffRun("b1", "dq", 10_000_000))
	head := diffReport("head", diffRun("b1", "dq", 20_000_000))
	d := DiffReports(base, head, DefaultDiffOptions())
	var sb strings.Builder
	d.WriteTable(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL: 1 regression(s)") {
		t.Fatalf("table missing failure verdict:\n%s", out)
	}
	d = DiffReports(base, diffReport("head", diffRun("b1", "dq", 10_000_000)), DefaultDiffOptions())
	sb.Reset()
	d.WriteTable(&sb)
	if !strings.Contains(sb.String(), "PASS: no regressions") {
		t.Fatalf("table missing pass verdict:\n%s", sb.String())
	}
}

func TestReportByLabel(t *testing.T) {
	h := &BenchHistory{Schema: BenchHistorySchema, Reports: []BenchReport{
		{Schema: BenchSchema, Label: "ci-baseline"},
		{Schema: BenchSchema, Label: "ci"},
	}}
	rep, err := ReportByLabel(h, "ci")
	if err != nil || rep.Label != "ci" {
		t.Fatalf("lookup failed: %v %v", rep, err)
	}
	_, err = ReportByLabel(h, "nope")
	if err == nil {
		t.Fatal("missing label did not error")
	}
	if msg := err.Error(); !strings.Contains(msg, "ci-baseline") || !strings.Contains(msg, "ci") {
		t.Fatalf("error does not list available labels: %v", err)
	}
}

// TestDiffAgainstWrittenHistory exercises the full benchdiff pipeline the CLI
// uses: write two labelled reports into a history file, load it back, look
// both up, and diff — a synthetic >=20%% wall regression must gate.
func TestDiffAgainstWrittenHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_runs.json")
	if _, err := WriteBenchHistory(path, *diffReport("ci-baseline", diffRun("b1", "dq", 10_000_000))); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBenchHistory(path, *diffReport("ci", diffRun("b1", "dq", 12_500_000))); err != nil {
		t.Fatal(err)
	}
	h, err := LoadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReportByLabel(h, "ci-baseline")
	if err != nil {
		t.Fatal(err)
	}
	head, err := ReportByLabel(h, "ci")
	if err != nil {
		t.Fatal(err)
	}
	d := DiffReports(base, head, DefaultDiffOptions())
	if d.Regressions == 0 {
		t.Fatal("synthetic +25% wall regression passed the gate")
	}
}

// TestDiffNewHeadCell: cells present only in head (a freshly added bench or
// mode) are reported as new and ungated, never as a regression.
func TestDiffNewHeadCell(t *testing.T) {
	base := diffReport("base", diffRun("b1", "dq", 10*int64(time.Millisecond)))
	head := diffReport("head",
		diffRun("b1", "dq", 10*int64(time.Millisecond)),
		diffRun("b1", "dq+kernel", 6*int64(time.Millisecond)),
		diffRun("b2", "dq", 4*int64(time.Millisecond)),
	)
	d := DiffReports(base, head, DefaultDiffOptions())
	if d.Regressions != 0 {
		t.Fatalf("new head cells produced %d regressions", d.Regressions)
	}
	want := []string{"b1/dq+kernel", "b2/dq"}
	if len(d.NewHead) != len(want) || d.NewHead[0] != want[0] || d.NewHead[1] != want[1] {
		t.Fatalf("NewHead = %v, want %v", d.NewHead, want)
	}
	var sb strings.Builder
	d.WriteTable(&sb)
	if !strings.Contains(sb.String(), "new in head (ungated): b1/dq+kernel") {
		t.Fatalf("table missing new-in-head line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "PASS") {
		t.Fatalf("table did not pass:\n%s", sb.String())
	}
}

// TestDiffTailDirection: the p999_ns cell is direction-aware like wall —
// growth beyond TailPct fails, any shrinkage passes — and only appears when
// both reports recorded a tail. Noise floor and -tail-pct 0 disable it.
func TestDiffTailDirection(t *testing.T) {
	soak := func(label string, p999 int64) *BenchReport {
		r := diffRun("census", "serve-soak", 10*int64(time.Millisecond))
		r.QPS, r.TargetQPS = 150, 150
		r.P999NS = p999
		return diffReport(label, r)
	}
	base := soak("base", 10*int64(time.Millisecond))

	// +200% trips the default 150% gate.
	d := DiffReports(base, soak("head", 30*int64(time.Millisecond)), DefaultDiffOptions())
	c := findCell(t, d, "census", "serve-soak", "p999_ns")
	if !c.Regression {
		t.Fatalf("+200%% tail not flagged: %+v", c)
	}

	// +100% stays under it; a huge shrink is never a regression.
	for _, head := range []int64{20 * int64(time.Millisecond), int64(time.Millisecond)} {
		d = DiffReports(base, soak("head", head), DefaultDiffOptions())
		if c := findCell(t, d, "census", "serve-soak", "p999_ns"); c.Regression {
			t.Fatalf("tail %d flagged: %+v", head, c)
		}
	}

	// Below the noise floor the cell is skipped, not gated.
	tiny := soak("base", int64(100*time.Microsecond))
	d = DiffReports(tiny, soak("head", int64(time.Millisecond)), DefaultDiffOptions())
	if c := findCell(t, d, "census", "serve-soak", "p999_ns"); !c.Skipped || c.Regression {
		t.Fatalf("sub-floor tail gated: %+v", c)
	}

	// -tail-pct 0 disables the gate.
	opt := DefaultDiffOptions()
	opt.TailPct = 0
	d = DiffReports(base, soak("head", 100*int64(time.Millisecond)), opt)
	if c := findCell(t, d, "census", "serve-soak", "p999_ns"); !c.Skipped || c.Regression {
		t.Fatalf("disabled tail gate still fired: %+v", c)
	}

	// Rows without a recorded tail (plain bench cells) get no p999 cell.
	d = DiffReports(diffReport("base", diffRun("b1", "dq", 1e7)),
		diffReport("head", diffRun("b1", "dq", 1e7)), DefaultDiffOptions())
	for _, c := range d.Cells {
		if c.Metric == "p999_ns" {
			t.Fatalf("tail cell on a row without p999: %+v", c)
		}
	}
}
