package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"parcfl/internal/server"
	"parcfl/internal/snapshot"
)

// Serving-throughput rows of the bench trajectory: the query census is
// replayed against a resident server from concurrent clients, once cold
// (fresh jmp store) and once warm (state round-tripped through the
// snapshot codec, exactly what a daemon restart does). The warm row must
// show the jmp reuse win — more steps satisfied by shortcuts, fewer steps
// walked — and benchdiff gates the wall/qps of both rows across commits.

// serveClients is how many concurrent callers replay the census; small
// enough that micro-batching (not raw thread count) is what's measured.
const serveClients = 8

// serveRun replays the census against a resident server built either cold
// (warmFrom nil) or from a snapshot, and returns the flattened row plus a
// snapshot of the post-run state (codec round trip included, so a warm run
// exercises exactly the daemon-restart path).
func serveRun(b *Bench, mode string, warmFrom *snapshot.Snapshot, opts Options) (BenchRun, *snapshot.Snapshot, error) {
	cfg := server.Config{
		Threads: opts.Threads, Budget: opts.Budget,
		TypeLevels: b.Lowered.TypeLevels, QueryVars: b.Lowered.AppQueryVars,
		ResultCache: true,
		// A short window keeps the bench fast while still coalescing the
		// concurrent clients into multi-query batches.
		BatchWindow: 200 * time.Microsecond,
	}
	var srv *server.Server
	if warmFrom != nil {
		srv = server.NewFromSnapshot(warmFrom, cfg)
	} else {
		srv = server.New(b.Lowered.Graph, cfg)
	}

	queries := b.Queries
	latencies := make([]time.Duration, len(queries))
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int, len(queries))
	for i := range queries {
		idx <- i
	}
	close(idx)

	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				_, err := srv.Query(context.Background(), queries[i])
				latencies[i] = time.Since(t0)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("serve %s: query %d: %w", mode, queries[i], err)
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	st := srv.Stats()
	var buf bytes.Buffer
	err := snapshot.Write(&buf, srv.Snapshot("bench"))
	srv.Close()
	if err == nil && firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return BenchRun{}, nil, err
	}
	snap, err := snapshot.Read(&buf)
	if err != nil {
		return BenchRun{}, nil, err
	}

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) int64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i].Nanoseconds()
	}

	row := BenchRun{
		Bench:   b.Preset.Name,
		Mode:    mode,
		Threads: opts.Threads,

		WallNS: wall.Nanoseconds(),

		Queries:   int(st.Queries),
		Completed: int(st.Completed),
		Aborted:   int(st.Aborted),

		TotalSteps:  st.TotalSteps,
		StepsWalked: st.TotalSteps - st.StepsSaved,
		StepsSaved:  st.StepsSaved,
		JumpsTaken:  st.JumpsTaken,

		ShareFinished:   st.Share.FinishedAdded,
		ShareUnfinished: st.Share.UnfinishedAdded,
		ShareLookups:    st.Share.Lookups,
		ShareHits:       st.Share.LookupHits,
		ShareHitRate:    st.Share.HitRate(),

		CacheHits:    st.Cache.Hits,
		CacheMisses:  st.Cache.Misses,
		CacheHitRate: st.Cache.HitRate(),

		QPS:   float64(len(queries)) / wall.Seconds(),
		P50NS: pct(0.50),
		P99NS: pct(0.99),
	}
	return row, snap, nil
}

// ServeRows produces the Serve-cold, Serve-warm and Serve-soak rows for one
// prepared benchmark: the closed-loop census replays (cold, then warm
// through the snapshot codec) plus an open-loop Poisson soak of the warm
// state at a rate derived from the warm throughput (see SoakRow).
func ServeRows(b *Bench, opts Options) ([]BenchRun, error) {
	cold, snap, err := serveRun(b, "Serve-cold", nil, opts)
	if err != nil {
		return nil, err
	}
	warm, warmSnap, err := serveRun(b, "Serve-warm", snap, opts)
	if err != nil {
		return nil, err
	}
	soak, err := SoakRow(b, warmSnap, warm.QPS, opts)
	if err != nil {
		return nil, err
	}
	return []BenchRun{cold, warm, soak}, nil
}
