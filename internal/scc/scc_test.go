package scc

import (
	"math/rand"
	"testing"
)

func TestSingleNode(t *testing.T) {
	comp, n := Compute(1, func(int) []int { return nil })
	if n != 1 || comp[0] != 0 {
		t.Fatalf("comp=%v n=%d", comp, n)
	}
}

func TestEmpty(t *testing.T) {
	comp, n := Compute(0, func(int) []int { return nil })
	if n != 0 || len(comp) != 0 {
		t.Fatalf("comp=%v n=%d", comp, n)
	}
}

func TestSelfLoop(t *testing.T) {
	comp, n := Compute(2, func(v int) []int {
		if v == 0 {
			return []int{0, 1}
		}
		return nil
	})
	if n != 2 || comp[0] == comp[1] {
		t.Fatalf("comp=%v n=%d", comp, n)
	}
}

func TestReverseTopologicalNumbering(t *testing.T) {
	// 0 -> 1 -> 2: sink gets the smallest component number.
	comp, n := Compute(3, func(v int) []int {
		if v < 2 {
			return []int{v + 1}
		}
		return nil
	})
	if n != 3 {
		t.Fatalf("n=%d", n)
	}
	if !(comp[2] < comp[1] && comp[1] < comp[0]) {
		t.Fatalf("not reverse-topological: %v", comp)
	}
}

func TestBigCycle(t *testing.T) {
	const n = 5000
	comp, nc := Compute(n, func(v int) []int { return []int{(v + 1) % n} })
	if nc != 1 {
		t.Fatalf("cycle split into %d components", nc)
	}
	for _, c := range comp {
		if c != 0 {
			t.Fatal("cycle members differ")
		}
	}
}

// TestRandomGraphInvariants: components partition nodes; mutual
// reachability within a component (checked by a reference DFS on small
// graphs).
func TestRandomGraphInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			for e := 0; e < rng.Intn(4); e++ {
				adj[v] = append(adj[v], rng.Intn(n))
			}
		}
		comp, nc := Compute(n, func(v int) []int { return adj[v] })

		// Partition sanity.
		for _, c := range comp {
			if c < 0 || c >= nc {
				t.Fatalf("seed %d: component out of range", seed)
			}
		}

		// Reference reachability.
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = make([]bool, n)
			stack := []int{v}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if reach[v][u] {
					continue
				}
				reach[v][u] = true
				stack = append(stack, adj[u]...)
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				same := comp[a] == comp[b]
				mutual := reach[a][b] && reach[b][a]
				if same != mutual {
					t.Fatalf("seed %d: nodes %d,%d: same-comp=%v mutual=%v", seed, a, b, same, mutual)
				}
			}
		}
	}
}
