package scc

import (
	"math/rand"
	"testing"
)

func TestSingleNode(t *testing.T) {
	comp, n := Compute(1, func(int) []int { return nil })
	if n != 1 || comp[0] != 0 {
		t.Fatalf("comp=%v n=%d", comp, n)
	}
}

func TestEmpty(t *testing.T) {
	comp, n := Compute(0, func(int) []int { return nil })
	if n != 0 || len(comp) != 0 {
		t.Fatalf("comp=%v n=%d", comp, n)
	}
}

func TestSelfLoop(t *testing.T) {
	comp, n := Compute(2, func(v int) []int {
		if v == 0 {
			return []int{0, 1}
		}
		return nil
	})
	if n != 2 || comp[0] == comp[1] {
		t.Fatalf("comp=%v n=%d", comp, n)
	}
}

func TestReverseTopologicalNumbering(t *testing.T) {
	// 0 -> 1 -> 2: sink gets the smallest component number.
	comp, n := Compute(3, func(v int) []int {
		if v < 2 {
			return []int{v + 1}
		}
		return nil
	})
	if n != 3 {
		t.Fatalf("n=%d", n)
	}
	if !(comp[2] < comp[1] && comp[1] < comp[0]) {
		t.Fatalf("not reverse-topological: %v", comp)
	}
}

func TestBigCycle(t *testing.T) {
	const n = 5000
	comp, nc := Compute(n, func(v int) []int { return []int{(v + 1) % n} })
	if nc != 1 {
		t.Fatalf("cycle split into %d components", nc)
	}
	for _, c := range comp {
		if c != 0 {
			t.Fatal("cycle members differ")
		}
	}
}

// TestRandomGraphInvariants: components partition nodes; mutual
// reachability within a component (checked by a reference DFS on small
// graphs).
func TestRandomGraphInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			for e := 0; e < rng.Intn(4); e++ {
				adj[v] = append(adj[v], rng.Intn(n))
			}
		}
		comp, nc := Compute(n, func(v int) []int { return adj[v] })

		// Partition sanity.
		for _, c := range comp {
			if c < 0 || c >= nc {
				t.Fatalf("seed %d: component out of range", seed)
			}
		}

		// Reference reachability.
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = make([]bool, n)
			stack := []int{v}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if reach[v][u] {
					continue
				}
				reach[v][u] = true
				stack = append(stack, adj[u]...)
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				same := comp[a] == comp[b]
				mutual := reach[a][b] && reach[b][a]
				if same != mutual {
					t.Fatalf("seed %d: nodes %d,%d: same-comp=%v mutual=%v", seed, a, b, same, mutual)
				}
			}
		}
	}
}

// TestRandomReverseTopoProperty: on larger random graphs, check the two
// properties kernel.Build relies on against a naive O(V*E) reference —
// same-component iff mutually reachable, and every cross-component edge
// u -> v lands in a smaller-numbered component (reverse topological
// numbering, so descending component order is a valid evaluation order).
func TestRandomReverseTopoProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 50 + rng.Intn(150)
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			for e := 0; e < rng.Intn(5); e++ {
				adj[v] = append(adj[v], rng.Intn(n))
			}
		}
		comp, nc := Compute(n, func(v int) []int { return adj[v] })

		// Every component index must actually be used.
		used := make([]bool, nc)
		for _, c := range comp {
			used[c] = true
		}
		for c, ok := range used {
			if !ok {
				t.Fatalf("seed %d: component %d unused", seed, c)
			}
		}

		// Cross-component edges point at strictly smaller components.
		for u := range adj {
			for _, v := range adj[u] {
				if comp[u] != comp[v] && comp[v] >= comp[u] {
					t.Fatalf("seed %d: edge %d->%d crosses from comp %d to %d (not reverse-topo)",
						seed, u, v, comp[u], comp[v])
				}
			}
		}

		// Naive mutual-reachability reference.
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = make([]bool, n)
			stack := []int{v}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if reach[v][u] {
					continue
				}
				reach[v][u] = true
				stack = append(stack, adj[u]...)
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if same, mutual := comp[a] == comp[b], reach[a][b] && reach[b][a]; same != mutual {
					t.Fatalf("seed %d: nodes %d,%d: same-comp=%v mutual=%v", seed, a, b, same, mutual)
				}
			}
		}
	}
}

// TestSuccCalledOncePerNode: the walk must fetch each node's successor slice
// exactly once (the frame caches it). Calling succ per edge visit makes the
// walk quadratic for succ functions that materialise their slice, which is
// exactly how kernel.Build and sched use this package.
func TestSuccCalledOncePerNode(t *testing.T) {
	const n = 500
	calls := make([]int, n)
	adj := make([][]int, n)
	rng := rand.New(rand.NewSource(7))
	for v := 0; v < n; v++ {
		for e := 0; e < 4; e++ {
			adj[v] = append(adj[v], rng.Intn(n))
		}
	}
	Compute(n, func(v int) []int {
		calls[v]++
		return adj[v]
	})
	for v, c := range calls {
		if c != 1 {
			t.Fatalf("succ(%d) called %d times, want 1", v, c)
		}
	}
}

// TestDeepGraph: a 200k-node path and a 200k-node cycle — the explicit-stack
// DFS must handle recursion depths that would overflow a call stack.
func TestDeepGraph(t *testing.T) {
	const n = 200_000
	path := func(v int) []int {
		if v+1 < n {
			return []int{v + 1}
		}
		return nil
	}
	comp, nc := Compute(n, path)
	if nc != n {
		t.Fatalf("path of %d nodes gave %d components", n, nc)
	}
	for v := 0; v+1 < n; v++ {
		if comp[v+1] >= comp[v] {
			t.Fatalf("path numbering not reverse-topo at %d", v)
		}
	}

	cycle := func(v int) []int { return []int{(v + 1) % n} }
	comp, nc = Compute(n, cycle)
	if nc != 1 {
		t.Fatalf("cycle of %d nodes split into %d components", n, nc)
	}
	for v, c := range comp {
		if c != 0 {
			t.Fatalf("cycle member %d in component %d", v, c)
		}
	}
}
