// Package scc provides strongly-connected-component decomposition, used to
// collapse recursion cycles in the call graph (frontend), "modulo recursion"
// type levels (frontend), and connection-distance computation over direct
// edges (sched).
package scc

// Compute returns a component index for every node of the directed graph
// with nodes 0..n-1 and successor function succ. Components are numbered in
// reverse topological order: every successor of a component has a smaller
// component index. The implementation is Tarjan's algorithm with an explicit
// stack, safe for very deep graphs.
func Compute(n int, succ func(int) []int) (comp []int, numComp int) {
	const unvisited = -1
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	// Each frame caches its successor slice: succ is called exactly once per
	// node, when the frame is pushed. Re-fetching it on every edge visit
	// (the previous behaviour) made the walk O(deg²) per node for succ
	// functions that materialise their slice.
	type frame struct {
		v  int
		ei int
		ss []int
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: root, ss: succ(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.ei < len(f.ss) {
				w := f.ss[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w, ss: succ(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, numComp
}
