package server

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"parcfl/internal/engine"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// RequestIDHeader carries the client-minted request ID. The server echoes
// it on the response (minting one from the primary request sequence when
// the client sent none) and returns it in the reply body, so a slow
// response can be joined to its daemon-side trace lane and log lines.
const RequestIDHeader = "X-Parcfl-Request-Id"

// HTTP/JSON surface of the resident server. Variables travel by name
// ("v3main") with decimal node IDs accepted as a fallback; objects come
// back as names. The wire types live here and in the client package-side
// functions below so cmd/parcflq and tests share one schema.

// QuerySpec is the body of POST /v1/query: one variable or a batch.
type QuerySpec struct {
	// Var queries a single variable; Vars a batch. Exactly one of the two
	// should be set.
	Var  string   `json:"var,omitempty"`
	Vars []string `json:"vars,omitempty"`
	// TimeoutMS bounds the wait server-side (0 means the server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// AllowPartial lets the cluster router answer with whatever shards are
	// reachable (Partial/Missing set on the reply) instead of failing the
	// whole request. A single daemon is all-or-nothing and ignores it.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// VarResult is one variable's answer on the wire.
type VarResult struct {
	Var      string   `json:"var"`
	Objects  []string `json:"objects"`
	Contexts int      `json:"contexts"`
	Aborted  bool     `json:"aborted,omitempty"`
	Steps    int      `json:"steps"`
	// Failed marks a placeholder slot in a partial cluster reply: the
	// owning shard was unreachable, so Objects is meaningless for this var.
	Failed bool `json:"failed,omitempty"`
	// Timings is the per-request phase breakdown (see server.Timings).
	Timings *Timings `json:"timings,omitempty"`
}

// QueryReply is the body of a /v1/query response.
type QueryReply struct {
	// RequestID echoes the client's X-Parcfl-Request-Id (or the
	// server-minted fallback). The per-variable server-side sequence
	// numbers live in each result's timings.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the W3C trace id this request was served under — the
	// client's traceparent trace id when one was forwarded, a server-minted
	// one otherwise. The response's traceparent header carries the full
	// version-00 value with the server's span id.
	TraceID string      `json:"trace_id,omitempty"`
	Results []VarResult `json:"results"`
	// Partial marks a degraded cluster reply: the shards in Missing were
	// unreachable and their slots in Results carry Failed placeholders.
	// Never set by a single daemon.
	Partial bool `json:"partial,omitempty"`
	// Missing lists the variables the reply could not answer.
	Missing []string `json:"missing,omitempty"`
}

// SnapshotSpec is the body of POST /v1/snapshot.
type SnapshotSpec struct {
	// Path overrides the daemon's configured snapshot path when set.
	Path string `json:"path,omitempty"`
}

// SnapshotReply reports where the snapshot landed.
type SnapshotReply struct {
	Path string `json:"path"`
}

// VarsReply is the body of GET /v1/vars.
type VarsReply struct {
	Vars []string `json:"vars"`
}

type errorReply struct {
	Error string `json:"error"`
	// Shard/Shards report a 421 misdirect: the shard that owns the queried
	// variable and the plan's total shard count. Shards > 0 marks the
	// fields present (shard index 0 survives omitempty via that sentinel).
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// HandlerConfig wires the HTTP surface.
type HandlerConfig struct {
	// SnapshotPath is the default destination for /v1/snapshot (required
	// for that endpoint unless the request carries a path).
	SnapshotPath string
	// DefaultTimeout bounds queries that do not set timeout_ms (0 means
	// 30s).
	DefaultTimeout time.Duration
	// RetryAfter is the back-off hint sent with 429 responses (Retry-After
	// header, whole seconds, rounded up; 0 means 1s). One batch window is
	// usually enough for the queue to drain, so the default is deliberately
	// short.
	RetryAfter time.Duration
	// SlowLog, when positive, logs every /v1/query slower than it —
	// request ID, variables and phase breakdown — to the standard logger.
	SlowLog time.Duration
	// Fallback, when non-nil, serves any path the API does not claim
	// (e.g. obs.Handler for /metrics and /debug/*).
	Fallback http.Handler
}

func (c HandlerConfig) timeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DefaultTimeout
}

// retryAfterSeconds renders the 429 hint as the integer seconds the header
// requires, never below 1 (a "Retry-After: 0" invites an immediate retry
// storm from naive clients).
func (c HandlerConfig) retryAfterSeconds() int {
	d := c.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// apiHandler binds a Server to the HTTP surface.
type apiHandler struct {
	srv    *Server
	cfg    HandlerConfig
	byName map[string]pag.NodeID
}

// NewHandler returns the daemon's HTTP handler: /v1/query, /v1/stats,
// /v1/snapshot and /v1/vars, with everything else delegated to
// cfg.Fallback.
func NewHandler(srv *Server, cfg HandlerConfig) http.Handler {
	h := &apiHandler{srv: srv, cfg: cfg, byName: make(map[string]pag.NodeID)}
	g := srv.Graph()
	// First-name-wins matches the repl's lookup table; names are unique
	// for query variables in practice.
	for id := 0; id < g.NumNodes(); id++ {
		if name := g.Node(pag.NodeID(id)).Name; name != "" {
			if _, ok := h.byName[name]; !ok {
				h.byName[name] = pag.NodeID(id)
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", h.handleQuery)
	mux.HandleFunc("/v1/stats", h.handleStats)
	mux.HandleFunc("/v1/snapshot", h.handleSnapshot)
	mux.HandleFunc("/v1/vars", h.handleVars)
	if cfg.Fallback != nil {
		mux.Handle("/", cfg.Fallback)
	}
	return mux
}

func (h *apiHandler) resolve(name string) (pag.NodeID, bool) {
	if id, ok := h.byName[name]; ok {
		return id, true
	}
	if n, err := strconv.Atoi(name); err == nil && n >= 0 && n < h.srv.Graph().NumNodes() {
		return pag.NodeID(n), true
	}
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorReply{Error: err.Error()})
}

func (h *apiHandler) toWire(r engine.QueryResult) VarResult {
	g := h.srv.Graph()
	objs := make([]string, len(r.Objects))
	for i, o := range r.Objects {
		objs[i] = g.Node(o).Name
	}
	return VarResult{
		Var: g.Node(r.Var).Name, Objects: objs, Contexts: r.Contexts,
		Aborted: r.Aborted, Steps: r.Steps,
	}
}

func (h *apiHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var spec QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	names := spec.Vars
	if spec.Var != "" {
		names = append([]string{spec.Var}, names...)
	}
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no var(s) given"))
		return
	}
	vars := make([]pag.NodeID, len(names))
	for i, name := range names {
		id, ok := h.resolve(name)
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("unknown variable "+name))
			return
		}
		vars[i] = id
	}
	timeout := h.cfg.timeout()
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	rid := r.Header.Get(RequestIDHeader)
	// W3C trace propagation: continue the caller's trace under a fresh
	// server span id, or mint a whole trace when the caller sent none (or
	// sent garbage — malformed traceparent values must not propagate). The
	// response always echoes the full value, so even an untraced caller
	// learns the id its retained trace is filed under.
	tp, traced := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
	if traced {
		tp.SpanID = obs.MintSpanID()
	} else {
		tp = obs.MintTraceParent()
	}
	w.Header().Set(obs.TraceParentHeader, tp.String())
	ctx = WithRID(ctx, rid)
	ctx = WithTrace(ctx, tp.TraceID, tp.SpanID)
	answers, err := h.srv.QueryBatchAnswers(ctx, vars)
	if err != nil {
		// A shard-mode replica disowning the variable is a typed redirect,
		// not a failure: 421 with the owning shard in the body, so a router
		// or a plan-aware client can re-aim.
		var wse *WrongShardError
		if errors.As(err, &wse) {
			if rid != "" {
				w.Header().Set(RequestIDHeader, rid)
			}
			h.srv.sink.SLO().Record(obs.ClassError, time.Since(start).Nanoseconds())
			writeJSON(w, http.StatusMisdirectedRequest,
				errorReply{Error: err.Error(), Shard: wse.Shard, Shards: wse.Of})
			return
		}
		status := http.StatusInternalServerError
		class := obs.ClassError
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
			class = obs.ClassDeadline
		case errors.Is(err, ErrOverloaded):
			status = http.StatusTooManyRequests
			class = obs.ClassOverload
			// Admission rejections are transient (the queue drains on the
			// next batch); tell well-behaved clients when to come back.
			w.Header().Set("Retry-After", strconv.Itoa(h.cfg.retryAfterSeconds()))
		case errors.Is(err, ErrClosed):
			// Intentional shedding while draining, same as overload for
			// SLO purposes: the server is protecting itself, not failing.
			status = http.StatusServiceUnavailable
			class = obs.ClassOverload
		}
		if rid != "" {
			w.Header().Set(RequestIDHeader, rid)
		}
		h.srv.sink.SLO().Record(class, time.Since(start).Nanoseconds())
		writeErr(w, status, err)
		return
	}
	// Wire conversion is the marshal phase: it is what stands between
	// solve-done fan-out and bytes on the socket, and it scales with the
	// points-to set sizes being rendered.
	mStart := time.Now()
	reply := QueryReply{Results: make([]VarResult, len(answers))}
	for i, a := range answers {
		reply.Results[i] = h.toWire(a.Result)
	}
	marshalNS := time.Since(mStart).Nanoseconds()
	for i, a := range answers {
		t := a.Timings
		t.MarshalNS = marshalNS
		reply.Results[i].Timings = &t
	}
	if rid == "" {
		rid = "srv-" + strconv.FormatInt(answers[0].Timings.Seq, 10)
	}
	w.Header().Set(RequestIDHeader, rid)
	reply.RequestID = rid
	reply.TraceID = tp.TraceID
	// Exemplar the request's latency bucket with its ID: the value is the
	// same TotalNS the server already Observe()d for this request, so the
	// exemplar lands in exactly the bucket this request incremented — and
	// its seq names the "req N" lane in the trace export. No-op (and
	// alloc-free) unless the sink has exemplars enabled.
	h.srv.sink.Exemplar(obs.HistServerLatencyNS, answers[0].Timings.TotalNS, rid, answers[0].Timings.Seq)
	total := time.Since(start)
	h.srv.sink.SLO().Record(obs.ClassSuccess, total.Nanoseconds())
	if h.cfg.SlowLog > 0 && total > h.cfg.SlowLog {
		var names2 []string
		for _, res := range reply.Results {
			names2 = append(names2, res.Var)
		}
		t0 := answers[0].Timings
		log.Printf("parcfld: slow query rid=%s vars=%s total=%s seq=%d batch=%d admit=%s queue=%s solve=%s fanout=%s marshal=%s",
			rid, strings.Join(names2, ","), total, t0.Seq, t0.Batch,
			time.Duration(t0.AdmitNS), time.Duration(t0.QueueWaitNS),
			time.Duration(t0.SolveNS), time.Duration(t0.FanoutNS),
			time.Duration(t0.MarshalNS))
	}
	writeJSON(w, http.StatusOK, reply)
}

func (h *apiHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.srv.Stats())
}

func (h *apiHandler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var spec SnapshotSpec
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	path := spec.Path
	if path == "" {
		path = h.cfg.SnapshotPath
	}
	if path == "" {
		writeErr(w, http.StatusBadRequest, errors.New("no snapshot path configured"))
		return
	}
	if err := h.srv.SaveSnapshot(path, "api"); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotReply{Path: path})
}

func (h *apiHandler) handleVars(w http.ResponseWriter, r *http.Request) {
	g := h.srv.Graph()
	meta := h.srv.Meta()
	names := make([]string, 0, len(meta.QueryVars))
	for _, v := range meta.QueryVars {
		names = append(names, g.Node(v).Name)
	}
	writeJSON(w, http.StatusOK, VarsReply{Vars: names})
}
