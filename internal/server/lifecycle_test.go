package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parcfl/internal/frontend"
	"parcfl/internal/obs"
)

func tracedServer(t *testing.T, cfg Config) (*Server, *obs.Sink, *frontend.Lowered) {
	t.Helper()
	lo := genBench(t)
	sink := obs.New(obs.Config{})
	sink.EnableSpans(2, 1<<12)
	cfg.Threads = 2
	cfg.TypeLevels = lo.TypeLevels
	cfg.Obs = sink
	return New(lo.Graph, cfg), sink, lo
}

// TestTimingsPartition: for an uncoalesced request the four phase durations
// are telescoping differences of the same stamps, so they must sum to
// TotalNS exactly — no clock skew, no gaps.
func TestTimingsPartition(t *testing.T) {
	srv, _, lo := tracedServer(t, Config{BatchWindow: -1})
	defer srv.Close()

	for i, v := range lo.AppQueryVars[:3] {
		a, err := srv.QueryRequest(context.Background(), v)
		if err != nil {
			t.Fatal(err)
		}
		tm := a.Timings
		if tm.Seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", tm.Seq, i+1)
		}
		if tm.Coalesced || tm.Primary != tm.Seq {
			t.Fatalf("uncoalesced request marked coalesced: %+v", tm)
		}
		if tm.Batch <= 0 {
			t.Fatalf("batch = %d", tm.Batch)
		}
		sum := tm.AdmitNS + tm.QueueWaitNS + tm.SolveNS + tm.FanoutNS
		if sum != tm.TotalNS {
			t.Fatalf("phases sum %d != total %d (%+v)", sum, tm.TotalNS, tm)
		}
		if tm.TotalNS <= 0 || tm.SolveNS <= 0 {
			t.Fatalf("degenerate timings %+v", tm)
		}
	}
}

// TestCoalescedTimingsRecordPrimary: waiters that join another request's
// pending entry report that request's seq as their primary.
func TestCoalescedTimingsRecordPrimary(t *testing.T) {
	srv, _, lo := tracedServer(t, Config{BatchWindow: 50 * time.Millisecond})
	defer srv.Close()
	v := lo.AppQueryVars[0]

	const callers = 8
	answers := make([]Answer, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			answers[i], errs[i] = srv.QueryRequest(context.Background(), v)
		}()
	}
	wg.Wait()
	var primary int64
	coalesced := 0
	for i := range answers {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		tm := answers[i].Timings
		if !tm.Coalesced {
			if primary != 0 && primary != tm.Seq {
				t.Fatalf("two primaries: %d and %d", primary, tm.Seq)
			}
			primary = tm.Seq
			continue
		}
		coalesced++
	}
	if coalesced == 0 {
		t.Skip("no coalescing happened (scheduling)")
	}
	for i := range answers {
		tm := answers[i].Timings
		if tm.Coalesced && tm.Primary != primary {
			t.Fatalf("coalesced onto %d, want primary %d", tm.Primary, primary)
		}
	}
}

// TestRequestSpanLanes: a traced request materialises as admit, queue_wait
// and serve spans carrying its seq, the serve span's duration equals the
// timings TotalNS, and the trace export puts the lane on the requests
// process with a "req N" thread name.
func TestRequestSpanLanes(t *testing.T) {
	srv, sink, lo := tracedServer(t, Config{BatchWindow: -1})
	a, err := srv.QueryRequest(context.Background(), lo.AppQueryVars[0])
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	spans, _ := sink.Spans()
	var admit, queue, serve, window int
	for _, sp := range spans {
		switch sp.Kind {
		case obs.SpanAdmit:
			if sp.A == a.Timings.Seq {
				admit++
			}
		case obs.SpanQueueWait:
			if sp.A == a.Timings.Seq {
				queue++
				if sp.B != a.Timings.Batch {
					t.Fatalf("queue_wait batch = %d, want %d", sp.B, a.Timings.Batch)
				}
			}
		case obs.SpanServe:
			if sp.A == a.Timings.Seq {
				serve++
				if sp.Dur != a.Timings.TotalNS {
					t.Fatalf("serve span dur %d != timings total %d", sp.Dur, a.Timings.TotalNS)
				}
				if sp.B != a.Timings.Primary || sp.C != 0 {
					t.Fatalf("serve span payload %+v", sp)
				}
			}
		case obs.SpanBatchWindow:
			if sp.A == a.Timings.Batch {
				window++
			}
		}
	}
	if admit != 1 || queue != 1 || serve != 1 || window != 1 {
		t.Fatalf("span counts admit=%d queue=%d serve=%d window=%d, want 1 each",
			admit, queue, serve, window)
	}

	tf := obs.TraceEvents(sink)
	var laneNamed, batcherNamed bool
	for _, ev := range tf.TraceEvents {
		if ev.Name == "thread_name" && ev.Args["name"] == "req 1" {
			laneNamed = true
		}
		if ev.Name == "process_name" && ev.Args["name"] == "parcfl-batcher" {
			batcherNamed = true
		}
	}
	if !laneNamed || !batcherNamed {
		t.Fatalf("trace export lanes: request=%v batcher=%v", laneNamed, batcherNamed)
	}
}

// TestDrainFlushesSpans: Close() during an in-flight traced batch must let
// every admitted request finish and close its serve span — no truncated
// lanes, no send on a closed channel, one complete serve span per answered
// request.
func TestDrainFlushesSpans(t *testing.T) {
	srv, sink, lo := tracedServer(t, Config{BatchWindow: 30 * time.Millisecond})

	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = srv.QueryRequest(context.Background(), lo.AppQueryVars[i%len(lo.AppQueryVars)])
		}()
	}
	// Close mid-window: admitted requests must still be answered.
	time.Sleep(5 * time.Millisecond)
	srv.Close()
	wg.Wait()

	answered := 0
	for _, err := range errs {
		if err == nil {
			answered++
		} else if !errors.Is(err, ErrClosed) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	spans, dropped := sink.Spans()
	if dropped != 0 {
		t.Fatalf("%d spans dropped", dropped)
	}
	serveOK := 0
	for _, sp := range spans {
		if sp.Kind == obs.SpanServe && sp.C == 0 {
			if sp.Dur <= 0 {
				t.Fatalf("truncated serve span %+v", sp)
			}
			serveOK++
		}
	}
	if serveOK != answered {
		t.Fatalf("%d successful serve spans for %d answered requests", serveOK, answered)
	}
}

// TestCancelledWaiterRepliedStamp: a coalesced waiter whose context expires
// mid-batch still produces its replied stamp — a serve span with the
// deadline outcome — and the surviving waiter is unaffected.
func TestCancelledWaiterRepliedStamp(t *testing.T) {
	srv, sink, lo := tracedServer(t, Config{BatchWindow: 60 * time.Millisecond})
	v := lo.AppQueryVars[0]

	var wg sync.WaitGroup
	var survivor Answer
	var survivorErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivor, survivorErr = srv.QueryRequest(context.Background(), v)
	}()
	time.Sleep(5 * time.Millisecond) // let the first request create the entry

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := srv.QueryRequest(ctx, v) // coalesces, then gives up mid-window
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled waiter error = %v", err)
	}
	wg.Wait()
	srv.Close()
	if survivorErr != nil {
		t.Fatal(survivorErr)
	}

	spans, _ := sink.Spans()
	var deadlineServe *obs.Span
	for i := range spans {
		if spans[i].Kind == obs.SpanServe && spans[i].C == 2 {
			deadlineServe = &spans[i]
		}
	}
	if deadlineServe == nil {
		t.Fatal("no deadline-outcome serve span for the cancelled waiter")
	}
	// Whichever of the two requests created the entry is the primary of
	// both; the survivor's Primary names it either way.
	if deadlineServe.B != survivor.Timings.Primary {
		t.Fatalf("cancelled waiter primary = %d, want %d",
			deadlineServe.B, survivor.Timings.Primary)
	}
	if deadlineServe.Dur <= 0 {
		t.Fatalf("truncated deadline serve span %+v", deadlineServe)
	}
}

// TestParseRetryAfter covers both RFC 9110 forms plus clamping.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 3, 14, 15, 9, 26, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"delta", "3", 3 * time.Second},
		{"delta-zero", "0", 0},
		{"delta-negative", "-5", 0},
		{"delta-absurd", "86400", maxRetryAfter},
		{"http-date", now.Add(7 * time.Second).UTC().Format(http.TimeFormat), 7 * time.Second},
		{"http-date-past", now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0},
		{"http-date-absurd", now.Add(48 * time.Hour).UTC().Format(http.TimeFormat), maxRetryAfter},
		{"garbage", "soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.h, now); got != c.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", c.name, c.h, got, c.want)
		}
	}
}

// TestClientRetryAfterHTTPDate: the typed overload error surfaces an
// HTTP-date Retry-After end to end through the client.
func TestClientRetryAfterHTTPDate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(4*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(errorReply{Error: "server: overloaded"})
	}))
	defer ts.Close()

	cl := NewClient(ts.URL, nil)
	_, err := cl.Query(context.Background(), []string{"x"}, time.Second)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("error = %v, want OverloadedError", err)
	}
	if oe.RetryAfter < 2*time.Second || oe.RetryAfter > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want ≈4s", oe.RetryAfter)
	}
}

// TestHTTPRequestIDAndTimings: the request ID round-trips header → body,
// per-variable timings ride the JSON reply, and the handler feeds the SLO
// tracker with a success sample.
func TestHTTPRequestIDAndTimings(t *testing.T) {
	srv, sink, lo := tracedServer(t, Config{BatchWindow: -1})
	defer srv.Close()
	sink.AttachSLO(obs.NewSLO(obs.SLOConfig{}))
	name := srv.Graph().Node(lo.AppQueryVars[0]).Name

	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{}))
	defer ts.Close()

	cl := NewClient(ts.URL, nil)
	reply, err := cl.QueryRequest(context.Background(), "test-rid-42", []string{name}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.RequestID != "test-rid-42" {
		t.Fatalf("request id = %q", reply.RequestID)
	}
	tm := reply.Results[0].Timings
	if tm == nil {
		t.Fatal("no timings on the wire")
	}
	if sum := tm.AdmitNS + tm.QueueWaitNS + tm.SolveNS + tm.FanoutNS; sum != tm.TotalNS {
		t.Fatalf("wire phases sum %d != total %d", sum, tm.TotalNS)
	}
	if tm.MarshalNS < 0 {
		t.Fatalf("marshal = %d", tm.MarshalNS)
	}

	// The server mints an ID when the client sends none.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"var":"`+name+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw QueryReply
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.RequestID == "" || !strings.HasPrefix(raw.RequestID, "srv-") {
		t.Fatalf("minted id = %q", raw.RequestID)
	}
	if got := resp.Header.Get(RequestIDHeader); got != raw.RequestID {
		t.Fatalf("header id %q != body id %q", got, raw.RequestID)
	}

	snap := sink.SLO().Snapshot()
	if len(snap.Windows) == 0 || snap.Windows[0].Classes["success"] != 2 {
		t.Fatalf("slo did not record successes: %+v", snap.Windows)
	}
}
