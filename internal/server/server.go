// Package server turns the batch engine into a long-lived query service.
//
// The paper's engine answers one batch and exits; every invocation re-pays
// PAG loading and jmp-edge warm-up. A resident Server instead keeps the
// frozen graph, the shared jmp store and the cross-query result cache alive
// between requests, so the data sharing of Algorithm 2 compounds across the
// whole process lifetime (and, via internal/snapshot, across restarts).
//
// # Micro-batching
//
// The engine's scheduling win (sched.Schedule grouping queries whose
// traversals overlap) only exists when queries arrive as a batch, but a
// service receives them one at a time. The micro-batcher recovers the
// batch: an admitted request parks in a pending map keyed by query
// variable, and a single dispatcher goroutine waits one batch window for
// stragglers before handing every distinct pending variable to engine.Run
// as one sched-ordered batch. Concurrent requests for the same variable
// coalesce onto one computation — both while queued and while already in
// flight — and every waiter gets the one result.
//
// # Admission control and drain
//
// Admission is bounded: at most QueueDepth distinct variables may be
// pending; beyond that Query fails fast with ErrOverloaded rather than
// letting latency grow without bound. Each waiter honours its context, so a
// deadline expiry returns promptly (the batch still completes and feeds any
// other waiters; nothing leaks — replies go into buffered channels). Close
// stops admission, lets the dispatcher finish every admitted request, and
// only then returns: a drained server has answered everything it accepted.
package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parcfl/internal/engine"
	"parcfl/internal/kernel"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
	"parcfl/internal/snapshot"
)

// Errors returned by Query.
var (
	// ErrClosed reports admission after Close.
	ErrClosed = errors.New("server: closed")
	// ErrOverloaded reports admission-control rejection (queue full).
	ErrOverloaded = errors.New("server: overloaded")
	// ErrUnknownVar reports a query for a node the graph does not have.
	ErrUnknownVar = errors.New("server: unknown variable")
)

// WrongShardError reports a query this replica resolved but does not own:
// the shard plan assigns the variable's component to another shard. It is a
// typed redirect, not a failure — the error names the owning shard so a
// router (or a client following it) can re-aim without this replica paying
// any solve cost. The HTTP surface maps it to 421 Misdirected Request.
type WrongShardError struct {
	// Node is the resolved query variable.
	Node pag.NodeID
	// Shard is the shard that owns it; Here is this replica's shard;
	// Of is the plan's total shard count.
	Shard, Here, Of int
}

func (e *WrongShardError) Error() string {
	return "server: variable " + strconv.Itoa(int(e.Node)) + " belongs to shard " +
		strconv.Itoa(e.Shard) + "/" + strconv.Itoa(e.Of) + " (this replica serves shard " +
		strconv.Itoa(e.Here) + ")"
}

// Config tunes the resident service. The zero value serves: DQ mode,
// GOMAXPROCS workers, paper-default thresholds, a 2ms batch window and a
// 1024-variable queue.
type Config struct {
	// Mode is the engine mode; zero value Seq is almost never what a
	// service wants, so New defaults it to DQ.
	Mode    engine.Mode
	Threads int
	// Budget is the per-query step budget (0 disables).
	Budget int
	// TauF/TauU select jmp insertion thresholds (0 = paper defaults).
	TauF, TauU int
	// TypeLevels feeds DQ scheduling; nil degrades the heuristic, not
	// correctness.
	TypeLevels []int
	// QueryVars is the application query census, published via Meta (and
	// /v1/vars). Ignored when NewFromSnapshot already carries one.
	QueryVars []pag.NodeID
	// ContextK k-limits call strings.
	ContextK int
	// ResultCache additionally memoises whole result sets across queries.
	ResultCache bool
	// BatchWindow is how long the dispatcher waits after the first pending
	// request for more to coalesce. 0 means 2ms; negative means dispatch
	// immediately (useful in tests).
	BatchWindow time.Duration
	// MaxBatch caps distinct variables per engine.Run (0 means 256).
	MaxBatch int
	// QueueDepth caps distinct pending variables (0 means 1024).
	QueueDepth int
	// Kernel enables the preprocessed traversal kernel (internal/kernel):
	// New builds the Prep once at startup; NewFromSnapshot reuses a persisted
	// Prep when the snapshot carries one (and is auto-enabled by it).
	// Results are identical either way — the kernel only changes data layout.
	Kernel bool
	// ShardOf, when non-nil, puts the server in cluster shard mode: a query
	// for a node whose ShardOf differs from ShardIndex is rejected at
	// admission with a *WrongShardError naming the owner (the plan function
	// comes from internal/cluster; the server only consults it). ShardIndex
	// and ShardCount identify this replica within the plan; ShardPlan is the
	// serialized plan document, embedded into snapshots this replica saves
	// so a warm restart can verify it restores the slice it was given.
	ShardOf    func(pag.NodeID) int
	ShardIndex int
	ShardCount int
	ShardPlan  []byte
	// Obs receives server and engine metrics (nil disables, as usual).
	Obs *obs.Sink
}

func (c Config) window() time.Duration {
	if c.BatchWindow == 0 {
		return 2 * time.Millisecond
	}
	if c.BatchWindow < 0 {
		return 0
	}
	return c.BatchWindow
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 256
	}
	return c.MaxBatch
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 1024
	}
	return c.QueueDepth
}

// waiter is one admitted request: a buffered reply slot (the dispatcher's
// send never blocks, so an abandoned waiter cannot leak a goroutine) plus
// its identity and admission time for attribution. The first waiter in a
// pending/inflight list is the request that created the entry — the
// "primary" whose computation every later joiner rides.
type waiter struct {
	seq      int64 // server-assigned request sequence number
	reply    chan answerMsg
	admitted time.Time
}

// answerMsg is what the dispatcher sends each waiter: the result plus the
// batch-side phase stamps (sealed = batch claimed after the window,
// solveStart/solveDone bracket engine.RunMapped) and the identity of the
// batch and of the primary request whose entry carried this variable.
type answerMsg struct {
	result     engine.QueryResult
	primary    int64
	batch      int64
	sealed     time.Time
	solveStart time.Time
	solveDone  time.Time
}

// Timings is one request's phase breakdown, stamped at monotonic points of
// its life: admitted (entry), enqueued (admission done), batch-sealed,
// solve-start, solve-done, replied. For an uncoalesced request the four
// phase durations partition TotalNS exactly; a waiter that joined an
// already-inflight batch clamps QueueWaitNS at 0 (the batch sealed before
// it arrived) so its phases can sum below TotalNS. MarshalNS is filled by
// the HTTP handler (response encoding), outside the partition.
type Timings struct {
	// Seq is this request's sequence number; Primary is the request whose
	// pending/inflight entry computed the answer (== Seq when this request
	// created the entry); Batch is the dispatcher batch that solved it.
	Seq     int64 `json:"seq"`
	Primary int64 `json:"primary"`
	Batch   int64 `json:"batch"`
	// Coalesced reports that this request rode another's computation.
	Coalesced bool `json:"coalesced,omitempty"`

	AdmitNS     int64 `json:"admit_ns"`
	QueueWaitNS int64 `json:"queue_wait_ns"`
	SolveNS     int64 `json:"solve_ns"`
	FanoutNS    int64 `json:"fanout_ns"`
	// MarshalNS is response-encoding time, measured by the HTTP layer.
	MarshalNS int64 `json:"marshal_ns,omitempty"`
	TotalNS   int64 `json:"total_ns"`
}

// Answer is one request's result plus its phase attribution.
type Answer struct {
	Result  engine.QueryResult
	Timings Timings
}

// Stats is the service-level cumulative view served by /v1/stats.
type Stats struct {
	// Requests/Coalesced/Rejected/Timeouts/Batches mirror the obs
	// counters; see their help strings.
	Requests  int64 `json:"requests"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	Batches   int64 `json:"batches"`
	// Queries is the distinct variables the engine actually solved.
	Queries   int64 `json:"queries"`
	Completed int64 `json:"completed"`
	Aborted   int64 `json:"aborted"`
	// TotalSteps/StepsSaved/JumpsTaken accumulate engine.Stats across all
	// dispatched batches.
	TotalSteps int64 `json:"total_steps"`
	StepsSaved int64 `json:"steps_saved"`
	JumpsTaken int64 `json:"jumps_taken"`
	// EngineNS is wall time spent inside engine.Run.
	EngineNS int64 `json:"engine_ns"`
	// Share/Cache are the live stores' counters (not per-batch deltas).
	Share share.Stats   `json:"share"`
	Cache ptcache.Stats `json:"cache"`
	// StoreEpoch is the jmp store's current epoch.
	StoreEpoch int64 `json:"store_epoch"`
	// Uptime of the server in nanoseconds.
	UptimeNS int64 `json:"uptime_ns"`
}

// Server is the resident solver. Create with New or NewFromSnapshot; all
// methods are safe for concurrent use.
type Server struct {
	cfg    Config
	graph  *pag.Graph
	store  *share.Store
	cache  *ptcache.Cache
	kernel *kernel.Prep // nil unless kernel mode is enabled
	meta   snapshot.Meta
	sink   *obs.Sink
	start  time.Time

	// reqSeq mints request sequence numbers (1-based); batchSeq is bumped
	// by the dispatcher alone.
	reqSeq   atomic.Int64
	batchSeq int64

	mu       sync.Mutex
	cond     *sync.Cond // signals the dispatcher: work pending or closing
	pending  map[pag.NodeID][]waiter
	order    []pag.NodeID // FIFO over distinct pending variables
	inflight map[pag.NodeID][]waiter
	closed   bool
	done     chan struct{} // dispatcher exited

	stats struct {
		requests, coalesced, rejected, batches int64
		// timeouts is atomic: recorded on waiter goroutines outside the
		// server lock.
		timeouts                           atomic.Int64
		queries, completed, aborted        int64
		totalSteps, stepsSaved, jumpsTaken int64
		engineNS                           int64
	}
}

// New builds a resident server around a frozen graph, creating a fresh jmp
// store (for sharing modes) and, if configured, a fresh result cache and a
// freshly built traversal kernel.
func New(g *pag.Graph, cfg Config) *Server {
	return newServer(g, nil, nil, nil, snapshot.Meta{TypeLevels: cfg.TypeLevels}, cfg)
}

// NewFromSnapshot builds a resident server around warm-loaded state: the
// snapshot's graph, jmp store and result cache are used directly, and its
// Meta fills any Config fields the caller left zero (TypeLevels, Budget,
// ContextK) so a warm start replays the settings the state was recorded
// under. A persisted kernel Prep is reused (skipping the offline build) and
// auto-enables kernel mode.
func NewFromSnapshot(s *snapshot.Snapshot, cfg Config) *Server {
	if cfg.TypeLevels == nil {
		cfg.TypeLevels = s.Meta.TypeLevels
	}
	if cfg.Budget == 0 {
		cfg.Budget = s.Meta.Budget
	}
	if cfg.ContextK == 0 {
		cfg.ContextK = s.Meta.ContextK
	}
	if s.Kernel != nil {
		cfg.Kernel = true
	}
	return newServer(s.Graph, s.Store, s.Cache, s.Kernel, s.Meta, cfg)
}

func newServer(g *pag.Graph, store *share.Store, cache *ptcache.Cache, prep *kernel.Prep, meta snapshot.Meta, cfg Config) *Server {
	if cfg.Kernel && prep == nil {
		prep = kernel.Build(g)
	}
	if cfg.Mode == engine.Seq {
		cfg.Mode = engine.DQ
	}
	sharing := cfg.Mode == engine.D || cfg.Mode == engine.DQ
	if store == nil && sharing {
		sc := share.DefaultConfig()
		if cfg.TauF != 0 {
			sc.TauF = max(cfg.TauF, 0)
		}
		if cfg.TauU != 0 {
			sc.TauU = max(cfg.TauU, 0)
		}
		store = share.NewStore(sc)
	}
	if store != nil {
		store.SetObs(cfg.Obs)
	}
	if cache == nil && cfg.ResultCache {
		cache = ptcache.New(64)
	}
	if cache != nil {
		cache.SetObs(cfg.Obs)
	}
	meta.TypeLevels = cfg.TypeLevels
	meta.Budget = cfg.Budget
	meta.ContextK = cfg.ContextK
	if cfg.ShardOf != nil {
		meta.Shard = cfg.ShardIndex
		meta.NumShards = cfg.ShardCount
	}
	if len(meta.QueryVars) == 0 {
		meta.QueryVars = cfg.QueryVars
	}
	s := &Server{
		cfg: cfg, graph: g, store: store, cache: cache, kernel: prep, meta: meta,
		sink: cfg.Obs, start: time.Now(),
		pending:  make(map[pag.NodeID][]waiter),
		inflight: make(map[pag.NodeID][]waiter),
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.dispatch()
	return s
}

// Graph returns the resident frozen graph (read-only by convention).
func (s *Server) Graph() *pag.Graph { return s.graph }

// Meta returns the serving metadata (query census, type levels, settings).
func (s *Server) Meta() snapshot.Meta { return s.meta }

// Admission classes recorded in SpanAdmit's C payload.
const (
	admitNew      = 0 // created a fresh pending entry
	admitPending  = 1 // joined an already-queued entry
	admitInflight = 2 // joined an already-dispatched computation
)

// Outcome classes recorded in SpanServe's C payload.
const (
	outcomeSuccess  = 0
	outcomeOverload = 1
	outcomeDeadline = 2
)

// Query answers one points-to query, waiting until the coalesced batch that
// contains it completes or ctx expires. A ctx expiry returns ctx.Err()
// promptly and cleanly: the computation still completes and feeds any other
// waiters on the same variable.
func (s *Server) Query(ctx context.Context, v pag.NodeID) (engine.QueryResult, error) {
	a, err := s.QueryRequest(ctx, v)
	return a.Result, err
}

// ridKey carries a client-minted request ID through the in-process query
// path; the HTTP surface carries it in RequestIDHeader instead.
type ridKey struct{}

// WithRID attaches a request ID to ctx for QueryRequest: at reply time the
// ID exemplars the request's latency bucket (when the sink has exemplars
// enabled), so an in-process caller — the soak harness minting
// <prefix>-<seed>-<n> IDs — joins the same trace lanes and diagnostic
// bundles an HTTP client's X-Parcfl-Request-Id does.
func WithRID(ctx context.Context, rid string) context.Context {
	if rid == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, rid)
}

// RIDFrom returns the request ID attached by WithRID ("" when none).
func RIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// traceKey carries W3C trace identity (trace id + the server's span id for
// this request) through the in-process query path, the way ridKey carries
// the request ID.
type traceKey struct{}

type traceIDs struct{ traceID, spanID string }

// WithTrace attaches a W3C trace id and the serving span id to ctx; retained
// request traces carry them, so a parcfl trace joins the caller's own
// distributed trace. Empty values are fine (the trace store mints ids for
// untraced requests at retention time).
func WithTrace(ctx context.Context, traceID, spanID string) context.Context {
	if traceID == "" && spanID == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, traceIDs{traceID, spanID})
}

// TraceFrom returns the trace identity attached by WithTrace ("" when none).
func TraceFrom(ctx context.Context) (traceID, spanID string) {
	ids, _ := ctx.Value(traceKey{}).(traceIDs)
	return ids.traceID, ids.spanID
}

// offerTrace assembles this request's phase spans from its reply-time
// timings and offers the completed trace to the attached store. Built from
// the same Timings the caller returns, the serve span's duration IS the
// reply's total_ns — the live trace and the client's reply can never
// disagree. Callers guard on TraceStore() != nil, so a detached sink costs
// the reply path one atomic load and zero allocations.
func (s *Server) offerTrace(ts *obs.TraceStore, ctx context.Context, v pag.NodeID, t Timings, outcome int64, entered time.Time, enteredNS, depth, class int64) {
	rid := RIDFrom(ctx)
	if rid == "" {
		// Match the HTTP handler's fallback mint so both surfaces agree on
		// the rid a trace is stored under.
		rid = "srv-" + strconv.FormatInt(t.Seq, 10)
	}
	traceID, spanID := TraceFrom(ctx)
	baseNS := enteredNS
	if baseNS == 0 {
		// Span tracing off: place the spans on the sink clock from the
		// total, so the export still lines up with any enabled-later spans.
		baseNS = s.sink.Now() - t.TotalNS
		if baseNS < 0 {
			baseNS = 0
		}
	}
	spans := make([]obs.Span, 0, 3)
	if outcome == outcomeSuccess {
		spans = append(spans,
			obs.Span{Kind: obs.SpanAdmit, Worker: obs.NoWorker, T: baseNS, Dur: t.AdmitNS, A: t.Seq, B: depth, C: class},
			obs.Span{Kind: obs.SpanQueueWait, Worker: obs.NoWorker, T: baseNS + t.AdmitNS, Dur: t.QueueWaitNS, A: t.Seq, B: t.Batch},
		)
	}
	spans = append(spans, obs.Span{Kind: obs.SpanServe, Worker: obs.NoWorker, T: baseNS, Dur: t.TotalNS, A: t.Seq, B: t.Primary, C: outcome})
	ts.Offer(obs.ReqTrace{
		RID: rid, TraceID: traceID, SpanID: spanID,
		Seq: t.Seq, Primary: t.Primary, Batch: t.Batch, Outcome: outcome,
		Vars:          []string{s.graph.Node(v).Name},
		StartUnixNano: entered.UnixNano(), TotalNS: t.TotalNS,
		Spans: spans,
	})
}

// QueryRequest is Query plus request identity and phase attribution: the
// returned Answer carries the request's sequence number, the batch that
// solved it, which request's computation it rode, and a per-phase latency
// breakdown. With span tracing enabled, each request also becomes an
// admit → queue_wait → serve lane in the trace export, stamped even when
// the waiter gives up on its deadline mid-batch. A request ID attached via
// WithRID exemplars the latency bucket this request observes into.
func (s *Server) QueryRequest(ctx context.Context, v pag.NodeID) (Answer, error) {
	if v < 0 || int(v) >= s.graph.NumNodes() {
		return Answer{}, ErrUnknownVar
	}
	if s.cfg.ShardOf != nil {
		if owner := s.cfg.ShardOf(v); owner != s.cfg.ShardIndex {
			s.sink.Add(obs.CtrServerMisdirected, 1)
			return Answer{}, &WrongShardError{Node: v, Shard: owner, Here: s.cfg.ShardIndex, Of: s.cfg.ShardCount}
		}
	}
	seq := s.reqSeq.Add(1)
	entered := time.Now()
	enteredNS := s.sink.SpanStart()
	w := waiter{seq: seq, reply: make(chan answerMsg, 1), admitted: entered}

	primary := seq
	class := int64(admitNew)
	var depth int64
	s.mu.Lock()
	switch {
	case s.closed:
		s.stats.rejected++
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRejected, 1)
		s.sink.Span(obs.SpanServe, obs.NoWorker, enteredNS, seq, seq, outcomeOverload)
		if ts := s.sink.TraceStore(); ts != nil {
			s.offerTrace(ts, ctx, v, Timings{Seq: seq, Primary: seq, TotalNS: time.Since(entered).Nanoseconds()},
				outcomeOverload, entered, enteredNS, 0, admitNew)
		}
		return Answer{}, ErrClosed
	case len(s.inflight[v]) > 0:
		// Already being computed: ride the in-flight batch.
		primary = s.inflight[v][0].seq
		class = admitInflight
		s.inflight[v] = append(s.inflight[v], w)
		s.stats.requests++
		s.stats.coalesced++
		depth = int64(len(s.order))
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRequests, 1)
		s.sink.Add(obs.CtrServerCoalesced, 1)
	case len(s.pending[v]) > 0:
		// Already queued: join the pending entry.
		primary = s.pending[v][0].seq
		class = admitPending
		s.pending[v] = append(s.pending[v], w)
		s.stats.requests++
		s.stats.coalesced++
		depth = int64(len(s.order))
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRequests, 1)
		s.sink.Add(obs.CtrServerCoalesced, 1)
	case len(s.order) >= s.cfg.queueDepth():
		s.stats.rejected++
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRejected, 1)
		s.sink.Span(obs.SpanServe, obs.NoWorker, enteredNS, seq, seq, outcomeOverload)
		if ts := s.sink.TraceStore(); ts != nil {
			s.offerTrace(ts, ctx, v, Timings{Seq: seq, Primary: seq, TotalNS: time.Since(entered).Nanoseconds()},
				outcomeOverload, entered, enteredNS, 0, admitNew)
		}
		return Answer{}, ErrOverloaded
	default:
		s.pending[v] = []waiter{w}
		s.order = append(s.order, v)
		s.stats.requests++
		depth = int64(len(s.order))
		s.cond.Signal()
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRequests, 1)
		s.sink.SetGauge(obs.GaugeServerQueueDepth, depth)
	}
	admitDone := time.Now()
	s.sink.Span(obs.SpanAdmit, obs.NoWorker, enteredNS, seq, depth, class)

	select {
	case msg := <-w.reply:
		replied := time.Now()
		t := Timings{
			Seq: seq, Primary: msg.primary, Batch: msg.batch,
			Coalesced:   class != admitNew,
			AdmitNS:     admitDone.Sub(entered).Nanoseconds(),
			QueueWaitNS: max64(msg.solveStart.Sub(admitDone).Nanoseconds(), 0),
			SolveNS:     msg.solveDone.Sub(msg.solveStart).Nanoseconds(),
			FanoutNS:    replied.Sub(msg.solveDone).Nanoseconds(),
			TotalNS:     replied.Sub(entered).Nanoseconds(),
		}
		s.sink.Observe(obs.HistServerLatencyNS, t.TotalNS)
		if rid := RIDFrom(ctx); rid != "" {
			s.sink.Exemplar(obs.HistServerLatencyNS, t.TotalNS, rid, seq)
		}
		if s.sink.SpanTracing() {
			admitDoneNS := enteredNS + t.AdmitNS
			s.sink.SpanAt(obs.SpanQueueWait, obs.NoWorker, admitDoneNS, t.QueueWaitNS, seq, msg.batch, 0)
			s.sink.SpanAt(obs.SpanServe, obs.NoWorker, enteredNS, t.TotalNS, seq, msg.primary, outcomeSuccess)
		}
		if ts := s.sink.TraceStore(); ts != nil {
			s.offerTrace(ts, ctx, v, t, outcomeSuccess, entered, enteredNS, depth, class)
		}
		return Answer{Result: msg.result, Timings: t}, nil
	case <-ctx.Done():
		// The replied stamp for an abandoned waiter: its serve span closes
		// here with the deadline outcome, so traced lanes are never
		// truncated even when the batch finishes after we are gone.
		s.stats.timeouts.Add(1)
		s.sink.Add(obs.CtrServerTimeouts, 1)
		s.sink.Span(obs.SpanServe, obs.NoWorker, enteredNS, seq, primary, outcomeDeadline)
		if ts := s.sink.TraceStore(); ts != nil {
			s.offerTrace(ts, ctx, v, Timings{Seq: seq, Primary: primary, Coalesced: class != admitNew,
				TotalNS: time.Since(entered).Nanoseconds()}, outcomeDeadline, entered, enteredNS, depth, class)
		}
		return Answer{}, ctx.Err()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// QueryBatch answers several variables, admitting all of them up front (so
// they coalesce into the same dispatch) and waiting for every answer.
// Results are positional: out[i] answers vars[i]. The first admission or
// wait error aborts the call.
func (s *Server) QueryBatch(ctx context.Context, vars []pag.NodeID) ([]engine.QueryResult, error) {
	as, err := s.QueryBatchAnswers(ctx, vars)
	if err != nil {
		return nil, err
	}
	out := make([]engine.QueryResult, len(as))
	for i, a := range as {
		out[i] = a.Result
	}
	return out, nil
}

// QueryBatchAnswers is QueryBatch returning full Answers (timings included).
func (s *Server) QueryBatchAnswers(ctx context.Context, vars []pag.NodeID) ([]Answer, error) {
	out := make([]Answer, len(vars))
	errs := make([]error, len(vars))
	var wg sync.WaitGroup
	for i, v := range vars {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = s.QueryRequest(ctx, v)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dispatch is the micro-batcher: one goroutine that turns the pending map
// into sched-ordered engine batches.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.order) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.order) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		windowNS := s.sink.SpanStart()

		// Batch window: let concurrent arrivals pile up so the scheduler
		// has a real batch to group. Skipped when closing — drain fast.
		if w := s.cfg.window(); w > 0 {
			s.mu.Lock()
			closing := s.closed
			s.mu.Unlock()
			if !closing {
				time.Sleep(w)
			}
		}

		// Claim up to maxBatch distinct variables FIFO, moving their
		// waiter lists pending→inflight so late arrivals for the same
		// variables attach to this computation.
		s.batchSeq++
		batchSeq := s.batchSeq
		s.mu.Lock()
		n := min(len(s.order), s.cfg.maxBatch())
		batch := make([]pag.NodeID, n)
		copy(batch, s.order[:n])
		s.order = s.order[n:]
		sealed := time.Now()
		primaries := make([]int64, n)
		for i, v := range batch {
			s.inflight[v] = s.pending[v]
			primaries[i] = s.pending[v][0].seq
			delete(s.pending, v)
		}
		s.stats.batches++
		depth := int64(len(s.order))
		s.mu.Unlock()

		s.sink.Add(obs.CtrServerBatches, 1)
		s.sink.SetGauge(obs.GaugeServerQueueDepth, depth)
		s.sink.SetGauge(obs.GaugeServerInflight, int64(n))
		s.sink.Observe(obs.HistServerBatchSize, int64(n))

		solveStart := time.Now()
		results, mapping, stats := engine.RunMapped(s.graph, batch, engine.Config{
			Mode: s.cfg.Mode, Threads: s.cfg.Threads, Budget: s.cfg.Budget,
			TauF: s.cfg.TauF, TauU: s.cfg.TauU, TypeLevels: s.cfg.TypeLevels,
			Store: s.store, Cache: s.cache, ResultCache: s.cache != nil,
			ContextK: s.cfg.ContextK, Kernel: s.kernel, Obs: s.sink,
			Tag: batchSeq,
		})
		solveDone := time.Now()

		// Fan out, then retire the in-flight entries. Replies are buffered
		// size-1 channels with exactly one send each: never blocks, even
		// for waiters that already gave up.
		s.mu.Lock()
		for i, v := range batch {
			msg := answerMsg{
				result: results[mapping[i]], primary: primaries[i], batch: batchSeq,
				sealed: sealed, solveStart: solveStart, solveDone: solveDone,
			}
			for _, w := range s.inflight[v] {
				s.sink.Observe(obs.HistServerWaitNS, sealed.Sub(w.admitted).Nanoseconds())
				w.reply <- msg
			}
			delete(s.inflight, v)
		}
		s.stats.queries += int64(stats.Queries)
		s.stats.completed += int64(stats.Completed)
		s.stats.aborted += int64(stats.Aborted)
		s.stats.totalSteps += stats.TotalSteps
		s.stats.stepsSaved += stats.StepsSaved
		s.stats.jumpsTaken += stats.JumpsTaken
		s.stats.engineNS += stats.Wall.Nanoseconds()
		s.mu.Unlock()
		s.sink.SetGauge(obs.GaugeServerInflight, 0)
		s.sink.Span(obs.SpanBatchWindow, obs.NoWorker, windowNS, batchSeq, int64(n), depth)
	}
}

// Close stops admission and drains: every request admitted before Close
// gets its answer before Close returns. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if !wasClosed {
		<-s.done
		return
	}
	<-s.done
}

// Stats returns the cumulative service view.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := Stats{
		Requests: s.stats.requests, Coalesced: s.stats.coalesced,
		Rejected: s.stats.rejected, Batches: s.stats.batches,
		Queries: s.stats.queries, Completed: s.stats.completed,
		Aborted: s.stats.aborted, TotalSteps: s.stats.totalSteps,
		StepsSaved: s.stats.stepsSaved, JumpsTaken: s.stats.jumpsTaken,
		EngineNS: s.stats.engineNS,
	}
	s.mu.Unlock()
	out.Timeouts = s.stats.timeouts.Load()
	out.UptimeNS = time.Since(s.start).Nanoseconds()
	if s.store != nil {
		out.Share = s.store.Snapshot()
		out.StoreEpoch = s.store.Epoch()
	}
	if s.cache != nil {
		out.Cache = s.cache.Snapshot()
	}
	return out
}

// Snapshot captures the resident state for persistence. Taken live: entries
// inserted by a batch racing the save may or may not be included, which is
// safe (they are pure accelerators).
func (s *Server) Snapshot(label string) *snapshot.Snapshot {
	meta := s.meta
	meta.Label = label
	meta.CreatedUnixNano = time.Now().UnixNano()
	return &snapshot.Snapshot{Graph: s.graph, Store: s.store, Cache: s.cache, Kernel: s.kernel,
		ShardPlan: s.cfg.ShardPlan, Meta: meta}
}

// SaveSnapshot atomically persists the resident state to path.
func (s *Server) SaveSnapshot(path, label string) error {
	return snapshot.Save(path, s.Snapshot(label))
}
