// Package server turns the batch engine into a long-lived query service.
//
// The paper's engine answers one batch and exits; every invocation re-pays
// PAG loading and jmp-edge warm-up. A resident Server instead keeps the
// frozen graph, the shared jmp store and the cross-query result cache alive
// between requests, so the data sharing of Algorithm 2 compounds across the
// whole process lifetime (and, via internal/snapshot, across restarts).
//
// # Micro-batching
//
// The engine's scheduling win (sched.Schedule grouping queries whose
// traversals overlap) only exists when queries arrive as a batch, but a
// service receives them one at a time. The micro-batcher recovers the
// batch: an admitted request parks in a pending map keyed by query
// variable, and a single dispatcher goroutine waits one batch window for
// stragglers before handing every distinct pending variable to engine.Run
// as one sched-ordered batch. Concurrent requests for the same variable
// coalesce onto one computation — both while queued and while already in
// flight — and every waiter gets the one result.
//
// # Admission control and drain
//
// Admission is bounded: at most QueueDepth distinct variables may be
// pending; beyond that Query fails fast with ErrOverloaded rather than
// letting latency grow without bound. Each waiter honours its context, so a
// deadline expiry returns promptly (the batch still completes and feeds any
// other waiters; nothing leaks — replies go into buffered channels). Close
// stops admission, lets the dispatcher finish every admitted request, and
// only then returns: a drained server has answered everything it accepted.
package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"parcfl/internal/engine"
	"parcfl/internal/kernel"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
	"parcfl/internal/snapshot"
)

// Errors returned by Query.
var (
	// ErrClosed reports admission after Close.
	ErrClosed = errors.New("server: closed")
	// ErrOverloaded reports admission-control rejection (queue full).
	ErrOverloaded = errors.New("server: overloaded")
	// ErrUnknownVar reports a query for a node the graph does not have.
	ErrUnknownVar = errors.New("server: unknown variable")
)

// Config tunes the resident service. The zero value serves: DQ mode,
// GOMAXPROCS workers, paper-default thresholds, a 2ms batch window and a
// 1024-variable queue.
type Config struct {
	// Mode is the engine mode; zero value Seq is almost never what a
	// service wants, so New defaults it to DQ.
	Mode    engine.Mode
	Threads int
	// Budget is the per-query step budget (0 disables).
	Budget int
	// TauF/TauU select jmp insertion thresholds (0 = paper defaults).
	TauF, TauU int
	// TypeLevels feeds DQ scheduling; nil degrades the heuristic, not
	// correctness.
	TypeLevels []int
	// QueryVars is the application query census, published via Meta (and
	// /v1/vars). Ignored when NewFromSnapshot already carries one.
	QueryVars []pag.NodeID
	// ContextK k-limits call strings.
	ContextK int
	// ResultCache additionally memoises whole result sets across queries.
	ResultCache bool
	// BatchWindow is how long the dispatcher waits after the first pending
	// request for more to coalesce. 0 means 2ms; negative means dispatch
	// immediately (useful in tests).
	BatchWindow time.Duration
	// MaxBatch caps distinct variables per engine.Run (0 means 256).
	MaxBatch int
	// QueueDepth caps distinct pending variables (0 means 1024).
	QueueDepth int
	// Kernel enables the preprocessed traversal kernel (internal/kernel):
	// New builds the Prep once at startup; NewFromSnapshot reuses a persisted
	// Prep when the snapshot carries one (and is auto-enabled by it).
	// Results are identical either way — the kernel only changes data layout.
	Kernel bool
	// Obs receives server and engine metrics (nil disables, as usual).
	Obs *obs.Sink
}

func (c Config) window() time.Duration {
	if c.BatchWindow == 0 {
		return 2 * time.Millisecond
	}
	if c.BatchWindow < 0 {
		return 0
	}
	return c.BatchWindow
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 256
	}
	return c.MaxBatch
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 1024
	}
	return c.QueueDepth
}

// waiter is one admitted request: a buffered reply slot (the dispatcher's
// send never blocks, so an abandoned waiter cannot leak a goroutine) plus
// its admission time for wait/latency attribution.
type waiter struct {
	reply    chan engine.QueryResult
	admitted time.Time
}

// Stats is the service-level cumulative view served by /v1/stats.
type Stats struct {
	// Requests/Coalesced/Rejected/Timeouts/Batches mirror the obs
	// counters; see their help strings.
	Requests  int64 `json:"requests"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	Batches   int64 `json:"batches"`
	// Queries is the distinct variables the engine actually solved.
	Queries   int64 `json:"queries"`
	Completed int64 `json:"completed"`
	Aborted   int64 `json:"aborted"`
	// TotalSteps/StepsSaved/JumpsTaken accumulate engine.Stats across all
	// dispatched batches.
	TotalSteps int64 `json:"total_steps"`
	StepsSaved int64 `json:"steps_saved"`
	JumpsTaken int64 `json:"jumps_taken"`
	// EngineNS is wall time spent inside engine.Run.
	EngineNS int64 `json:"engine_ns"`
	// Share/Cache are the live stores' counters (not per-batch deltas).
	Share share.Stats   `json:"share"`
	Cache ptcache.Stats `json:"cache"`
	// StoreEpoch is the jmp store's current epoch.
	StoreEpoch int64 `json:"store_epoch"`
	// Uptime of the server in nanoseconds.
	UptimeNS int64 `json:"uptime_ns"`
}

// Server is the resident solver. Create with New or NewFromSnapshot; all
// methods are safe for concurrent use.
type Server struct {
	cfg    Config
	graph  *pag.Graph
	store  *share.Store
	cache  *ptcache.Cache
	kernel *kernel.Prep // nil unless kernel mode is enabled
	meta   snapshot.Meta
	sink   *obs.Sink
	start  time.Time

	mu       sync.Mutex
	cond     *sync.Cond // signals the dispatcher: work pending or closing
	pending  map[pag.NodeID][]waiter
	order    []pag.NodeID // FIFO over distinct pending variables
	inflight map[pag.NodeID][]waiter
	closed   bool
	done     chan struct{} // dispatcher exited

	stats struct {
		requests, coalesced, rejected, batches int64
		// timeouts is atomic: recorded on waiter goroutines outside the
		// server lock.
		timeouts                           atomic.Int64
		queries, completed, aborted        int64
		totalSteps, stepsSaved, jumpsTaken int64
		engineNS                           int64
	}
}

// New builds a resident server around a frozen graph, creating a fresh jmp
// store (for sharing modes) and, if configured, a fresh result cache and a
// freshly built traversal kernel.
func New(g *pag.Graph, cfg Config) *Server {
	return newServer(g, nil, nil, nil, snapshot.Meta{TypeLevels: cfg.TypeLevels}, cfg)
}

// NewFromSnapshot builds a resident server around warm-loaded state: the
// snapshot's graph, jmp store and result cache are used directly, and its
// Meta fills any Config fields the caller left zero (TypeLevels, Budget,
// ContextK) so a warm start replays the settings the state was recorded
// under. A persisted kernel Prep is reused (skipping the offline build) and
// auto-enables kernel mode.
func NewFromSnapshot(s *snapshot.Snapshot, cfg Config) *Server {
	if cfg.TypeLevels == nil {
		cfg.TypeLevels = s.Meta.TypeLevels
	}
	if cfg.Budget == 0 {
		cfg.Budget = s.Meta.Budget
	}
	if cfg.ContextK == 0 {
		cfg.ContextK = s.Meta.ContextK
	}
	if s.Kernel != nil {
		cfg.Kernel = true
	}
	return newServer(s.Graph, s.Store, s.Cache, s.Kernel, s.Meta, cfg)
}

func newServer(g *pag.Graph, store *share.Store, cache *ptcache.Cache, prep *kernel.Prep, meta snapshot.Meta, cfg Config) *Server {
	if cfg.Kernel && prep == nil {
		prep = kernel.Build(g)
	}
	if cfg.Mode == engine.Seq {
		cfg.Mode = engine.DQ
	}
	sharing := cfg.Mode == engine.D || cfg.Mode == engine.DQ
	if store == nil && sharing {
		sc := share.DefaultConfig()
		if cfg.TauF != 0 {
			sc.TauF = max(cfg.TauF, 0)
		}
		if cfg.TauU != 0 {
			sc.TauU = max(cfg.TauU, 0)
		}
		store = share.NewStore(sc)
	}
	if store != nil {
		store.SetObs(cfg.Obs)
	}
	if cache == nil && cfg.ResultCache {
		cache = ptcache.New(64)
	}
	if cache != nil {
		cache.SetObs(cfg.Obs)
	}
	meta.TypeLevels = cfg.TypeLevels
	meta.Budget = cfg.Budget
	meta.ContextK = cfg.ContextK
	if len(meta.QueryVars) == 0 {
		meta.QueryVars = cfg.QueryVars
	}
	s := &Server{
		cfg: cfg, graph: g, store: store, cache: cache, kernel: prep, meta: meta,
		sink: cfg.Obs, start: time.Now(),
		pending:  make(map[pag.NodeID][]waiter),
		inflight: make(map[pag.NodeID][]waiter),
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.dispatch()
	return s
}

// Graph returns the resident frozen graph (read-only by convention).
func (s *Server) Graph() *pag.Graph { return s.graph }

// Meta returns the serving metadata (query census, type levels, settings).
func (s *Server) Meta() snapshot.Meta { return s.meta }

// Query answers one points-to query, waiting until the coalesced batch that
// contains it completes or ctx expires. A ctx expiry returns ctx.Err()
// promptly and cleanly: the computation still completes and feeds any other
// waiters on the same variable.
func (s *Server) Query(ctx context.Context, v pag.NodeID) (engine.QueryResult, error) {
	if v < 0 || int(v) >= s.graph.NumNodes() {
		return engine.QueryResult{}, ErrUnknownVar
	}
	w := waiter{reply: make(chan engine.QueryResult, 1), admitted: time.Now()}

	s.mu.Lock()
	switch {
	case s.closed:
		s.stats.rejected++
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRejected, 1)
		return engine.QueryResult{}, ErrClosed
	case len(s.inflight[v]) > 0:
		// Already being computed: ride the in-flight batch.
		s.inflight[v] = append(s.inflight[v], w)
		s.stats.requests++
		s.stats.coalesced++
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRequests, 1)
		s.sink.Add(obs.CtrServerCoalesced, 1)
	case len(s.pending[v]) > 0:
		// Already queued: join the pending entry.
		s.pending[v] = append(s.pending[v], w)
		s.stats.requests++
		s.stats.coalesced++
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRequests, 1)
		s.sink.Add(obs.CtrServerCoalesced, 1)
	case len(s.order) >= s.cfg.queueDepth():
		s.stats.rejected++
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRejected, 1)
		return engine.QueryResult{}, ErrOverloaded
	default:
		s.pending[v] = []waiter{w}
		s.order = append(s.order, v)
		s.stats.requests++
		depth := int64(len(s.order))
		s.cond.Signal()
		s.mu.Unlock()
		s.sink.Add(obs.CtrServerRequests, 1)
		s.sink.SetGauge(obs.GaugeServerQueueDepth, depth)
	}

	select {
	case r := <-w.reply:
		s.sink.Observe(obs.HistServerLatencyNS, time.Since(w.admitted).Nanoseconds())
		return r, nil
	case <-ctx.Done():
		s.stats.timeouts.Add(1)
		s.sink.Add(obs.CtrServerTimeouts, 1)
		return engine.QueryResult{}, ctx.Err()
	}
}

// QueryBatch answers several variables, admitting all of them up front (so
// they coalesce into the same dispatch) and waiting for every answer.
// Results are positional: out[i] answers vars[i]. The first admission or
// wait error aborts the call.
func (s *Server) QueryBatch(ctx context.Context, vars []pag.NodeID) ([]engine.QueryResult, error) {
	out := make([]engine.QueryResult, len(vars))
	errs := make([]error, len(vars))
	var wg sync.WaitGroup
	for i, v := range vars {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = s.Query(ctx, v)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dispatch is the micro-batcher: one goroutine that turns the pending map
// into sched-ordered engine batches.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.order) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.order) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		// Batch window: let concurrent arrivals pile up so the scheduler
		// has a real batch to group. Skipped when closing — drain fast.
		if w := s.cfg.window(); w > 0 {
			s.mu.Lock()
			closing := s.closed
			s.mu.Unlock()
			if !closing {
				time.Sleep(w)
			}
		}

		// Claim up to maxBatch distinct variables FIFO, moving their
		// waiter lists pending→inflight so late arrivals for the same
		// variables attach to this computation.
		s.mu.Lock()
		n := min(len(s.order), s.cfg.maxBatch())
		batch := make([]pag.NodeID, n)
		copy(batch, s.order[:n])
		s.order = s.order[n:]
		dispatched := time.Now()
		for _, v := range batch {
			s.inflight[v] = s.pending[v]
			delete(s.pending, v)
		}
		s.stats.batches++
		depth := int64(len(s.order))
		s.mu.Unlock()

		s.sink.Add(obs.CtrServerBatches, 1)
		s.sink.SetGauge(obs.GaugeServerQueueDepth, depth)
		s.sink.SetGauge(obs.GaugeServerInflight, int64(n))
		s.sink.Observe(obs.HistServerBatchSize, int64(n))

		results, mapping, stats := engine.RunMapped(s.graph, batch, engine.Config{
			Mode: s.cfg.Mode, Threads: s.cfg.Threads, Budget: s.cfg.Budget,
			TauF: s.cfg.TauF, TauU: s.cfg.TauU, TypeLevels: s.cfg.TypeLevels,
			Store: s.store, Cache: s.cache, ResultCache: s.cache != nil,
			ContextK: s.cfg.ContextK, Kernel: s.kernel, Obs: s.sink,
		})

		// Fan out, then retire the in-flight entries. Replies are buffered
		// size-1 channels with exactly one send each: never blocks, even
		// for waiters that already gave up.
		s.mu.Lock()
		for i, v := range batch {
			r := results[mapping[i]]
			for _, w := range s.inflight[v] {
				s.sink.Observe(obs.HistServerWaitNS, dispatched.Sub(w.admitted).Nanoseconds())
				w.reply <- r
			}
			delete(s.inflight, v)
		}
		s.stats.queries += int64(stats.Queries)
		s.stats.completed += int64(stats.Completed)
		s.stats.aborted += int64(stats.Aborted)
		s.stats.totalSteps += stats.TotalSteps
		s.stats.stepsSaved += stats.StepsSaved
		s.stats.jumpsTaken += stats.JumpsTaken
		s.stats.engineNS += stats.Wall.Nanoseconds()
		s.mu.Unlock()
		s.sink.SetGauge(obs.GaugeServerInflight, 0)
	}
}

// Close stops admission and drains: every request admitted before Close
// gets its answer before Close returns. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if !wasClosed {
		<-s.done
		return
	}
	<-s.done
}

// Stats returns the cumulative service view.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := Stats{
		Requests: s.stats.requests, Coalesced: s.stats.coalesced,
		Rejected: s.stats.rejected, Batches: s.stats.batches,
		Queries: s.stats.queries, Completed: s.stats.completed,
		Aborted: s.stats.aborted, TotalSteps: s.stats.totalSteps,
		StepsSaved: s.stats.stepsSaved, JumpsTaken: s.stats.jumpsTaken,
		EngineNS: s.stats.engineNS,
	}
	s.mu.Unlock()
	out.Timeouts = s.stats.timeouts.Load()
	out.UptimeNS = time.Since(s.start).Nanoseconds()
	if s.store != nil {
		out.Share = s.store.Snapshot()
		out.StoreEpoch = s.store.Epoch()
	}
	if s.cache != nil {
		out.Cache = s.cache.Snapshot()
	}
	return out
}

// Snapshot captures the resident state for persistence. Taken live: entries
// inserted by a batch racing the save may or may not be included, which is
// safe (they are pure accelerators).
func (s *Server) Snapshot(label string) *snapshot.Snapshot {
	meta := s.meta
	meta.Label = label
	meta.CreatedUnixNano = time.Now().UnixNano()
	return &snapshot.Snapshot{Graph: s.graph, Store: s.store, Cache: s.cache, Kernel: s.kernel, Meta: meta}
}

// SaveSnapshot atomically persists the resident state to path.
func (s *Server) SaveSnapshot(path, label string) error {
	return snapshot.Save(path, s.Snapshot(label))
}
