package server

import (
	"bytes"
	"context"
	"log"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"parcfl/internal/obs"
)

// TestSlowLogCarriesRequestID: with SlowLog set below any real latency,
// every query logs one line carrying the request ID and the full
// telescoping phase breakdown — the fields an operator joins against a
// bundle's trace after the pager fires.
func TestSlowLogCarriesRequestID(t *testing.T) {
	srv, _, lo := tracedServer(t, Config{BatchWindow: -1})
	defer srv.Close()
	name := srv.Graph().Node(lo.AppQueryVars[0]).Name

	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{SlowLog: time.Nanosecond}))
	defer ts.Close()

	var logBuf bytes.Buffer
	prev := log.Writer()
	prevFlags := log.Flags()
	log.SetOutput(&logBuf)
	log.SetFlags(0)
	defer func() {
		log.SetOutput(prev)
		log.SetFlags(prevFlags)
	}()

	cl := NewClient(ts.URL, nil)
	if _, err := cl.QueryRequest(context.Background(), "slow-rid-7", []string{name}, time.Second); err != nil {
		t.Fatal(err)
	}

	line := logBuf.String()
	if line == "" {
		t.Fatal("SlowLog produced no log line")
	}
	// One line, with the rid, the variable, and every phase of the
	// telescoping breakdown (admit+queue+solve+fanout partitions total;
	// marshal is the HTTP layer's own phase on top).
	re := regexp.MustCompile(`slow query rid=slow-rid-7 vars=` + regexp.QuoteMeta(name) +
		` total=\S+ seq=\d+ batch=\d+ admit=\S+ queue=\S+ solve=\S+ fanout=\S+ marshal=\S+`)
	if !re.MatchString(line) {
		t.Fatalf("slow log line missing fields:\n%s", line)
	}
}

// TestExemplarAtReplyTime: the HTTP handler exemplars the latency bucket
// with the request ID at reply time, using the same TotalNS the server
// observed — so the exemplar names a bucket that actually counted this
// request, and its seq resolves to the request's trace lane.
func TestExemplarAtReplyTime(t *testing.T) {
	srv, sink, lo := tracedServer(t, Config{BatchWindow: -1})
	defer srv.Close()
	sink.EnableExemplars()
	name := srv.Graph().Node(lo.AppQueryVars[0]).Name

	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{}))
	defer ts.Close()

	cl := NewClient(ts.URL, nil)
	reply, err := cl.QueryRequest(context.Background(), "exemplar-rid", []string{name}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tm := reply.Results[0].Timings
	if tm == nil {
		t.Fatal("no timings on the wire")
	}

	exs := sink.HistExemplars(obs.HistServerLatencyNS)
	var found *obs.BucketExemplar
	for i := range exs {
		if exs[i].RID == "exemplar-rid" {
			found = &exs[i]
		}
	}
	if found == nil {
		t.Fatalf("no exemplar for the request; have %+v", exs)
	}
	if found.Seq != tm.Seq {
		t.Fatalf("exemplar seq %d != request seq %d", found.Seq, tm.Seq)
	}
	if found.Value != tm.TotalNS {
		t.Fatalf("exemplar value %d != observed total %d", found.Value, tm.TotalNS)
	}
	// The exemplared bucket holds at least one observation: the exemplar
	// points at a count this request actually incremented.
	hs := sink.Hist(obs.HistServerLatencyNS)
	if found.LE != -1 && hs.Buckets[found.Bucket] == 0 {
		t.Fatalf("exemplar in empty bucket %d", found.Bucket)
	}
}

// TestInProcessRIDExemplar: a request ID attached with WithRID travels the
// in-process query path (no HTTP layer) and exemplars the latency bucket at
// reply time — the contract the soak harness relies on so its report's
// slowest-request IDs resolve daemon-side.
func TestInProcessRIDExemplar(t *testing.T) {
	srv, sink, lo := tracedServer(t, Config{BatchWindow: -1})
	defer srv.Close()
	sink.EnableExemplars()

	ctx := WithRID(context.Background(), "soak-42-1")
	if got := RIDFrom(ctx); got != "soak-42-1" {
		t.Fatalf("RIDFrom = %q", got)
	}
	if got := RIDFrom(context.Background()); got != "" {
		t.Fatalf("RIDFrom on a bare context = %q, want empty", got)
	}

	a, err := srv.QueryRequest(ctx, lo.AppQueryVars[0])
	if err != nil {
		t.Fatal(err)
	}
	exs := sink.HistExemplars(obs.HistServerLatencyNS)
	var found *obs.BucketExemplar
	for i := range exs {
		if exs[i].RID == "soak-42-1" {
			found = &exs[i]
		}
	}
	if found == nil {
		t.Fatalf("in-process rid left no exemplar; have %+v", exs)
	}
	if found.Seq != a.Timings.Seq || found.Value != a.Timings.TotalNS {
		t.Fatalf("exemplar %+v does not match answer timings %+v", found, a.Timings)
	}

	// Without WithRID the in-process path stays exemplar-free.
	if _, err := srv.QueryRequest(context.Background(), lo.AppQueryVars[1]); err != nil {
		t.Fatal(err)
	}
	for _, e := range sink.HistExemplars(obs.HistServerLatencyNS) {
		if e.RID != "soak-42-1" {
			t.Fatalf("rid-less request minted exemplar %+v", e)
		}
	}
}
