package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parcfl/internal/engine"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

func genBench(t testing.TB) *frontend.Lowered {
	t.Helper()
	prg, err := javagen.Generate(javagen.Params{
		Name: "servertest", Seed: 23, Containers: 3, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 12, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// TestServerAnswersMatchEngine: the service must return exactly what a
// direct engine run returns.
func TestServerAnswersMatchEngine(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	direct, _ := engine.Run(lo.Graph, queries, engine.Config{
		Mode: engine.DQ, Threads: 2, TypeLevels: lo.TypeLevels,
	})
	byVar := make(map[pag.NodeID]engine.QueryResult, len(direct))
	for _, r := range direct {
		byVar[r.Var] = r
	}

	srv := New(lo.Graph, Config{Threads: 2, TypeLevels: lo.TypeLevels, BatchWindow: -1})
	defer srv.Close()
	for _, q := range queries {
		got, err := srv.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		want := byVar[q]
		if got.Var != want.Var || !reflect.DeepEqual(got.Objects, want.Objects) ||
			got.Contexts != want.Contexts {
			t.Fatalf("var %d: served %+v, direct %+v", q, got, want)
		}
	}
}

// TestCoalesce: concurrent duplicate queries must coalesce onto one engine
// execution, every caller still receiving the (identical) answer.
func TestCoalesce(t *testing.T) {
	lo := genBench(t)
	q := lo.AppQueryVars[0]
	sink := obs.New(obs.Config{})
	srv := New(lo.Graph, Config{
		Threads: 2, TypeLevels: lo.TypeLevels,
		BatchWindow: 20 * time.Millisecond, Obs: sink,
	})
	defer srv.Close()

	const callers = 16
	var wg sync.WaitGroup
	results := make([]engine.QueryResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = srv.Query(context.Background(), q)
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Objects, results[0].Objects) {
			t.Fatalf("caller %d got a different answer", i)
		}
	}

	st := srv.Stats()
	if st.Requests != callers {
		t.Fatalf("requests %d, want %d", st.Requests, callers)
	}
	if st.Queries != 1 {
		t.Fatalf("engine solved %d distinct queries, want 1 (coalescing failed)", st.Queries)
	}
	if st.Coalesced != callers-1 {
		t.Fatalf("coalesced %d, want %d", st.Coalesced, callers-1)
	}
	if got := sink.Counter(obs.CtrServerCoalesced); got != callers-1 {
		t.Fatalf("obs coalesced counter %d, want %d", got, callers-1)
	}
}

// TestDeadlineTimeout: a request whose context expires before its batch is
// answered must return promptly with the context error — a clean timeout,
// not a dropped goroutine — and the server must keep serving afterwards.
func TestDeadlineTimeout(t *testing.T) {
	lo := genBench(t)
	q := lo.AppQueryVars[0]
	srv := New(lo.Graph, Config{
		Threads: 2, TypeLevels: lo.TypeLevels,
		// A batch window far beyond the deadline guarantees the expiry
		// fires while the request is still queued.
		BatchWindow: 500 * time.Millisecond,
	})
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := srv.Query(ctx, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request returned %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 250*time.Millisecond {
		t.Fatalf("timeout took %v — waiter stuck until dispatch", waited)
	}
	if got := srv.Stats().Timeouts; got != 1 {
		t.Fatalf("timeouts %d, want 1", got)
	}

	// The abandoned computation still completes and the server stays
	// healthy: a fresh query succeeds.
	if _, err := srv.Query(context.Background(), q); err != nil {
		t.Fatalf("server unhealthy after timeout: %v", err)
	}
}

// TestDrainOnClose: Close must answer every admitted request before
// returning, and reject admissions made after.
func TestDrainOnClose(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	srv := New(lo.Graph, Config{
		Threads: 2, TypeLevels: lo.TypeLevels,
		BatchWindow: 50 * time.Millisecond, MaxBatch: 4,
	})

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = srv.Query(context.Background(), queries[i%len(queries)])
		}()
	}
	// Give the goroutines a moment to be admitted, then close while the
	// first batch window is still open.
	time.Sleep(10 * time.Millisecond)
	srv.Close()

	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if answered := st.Requests - st.Rejected; answered > 0 && st.Queries == 0 {
		t.Fatalf("%d admitted requests but 0 queries solved — drain dropped work", answered)
	}
	// Every admitted request must have an answer: recompute from errors.
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("admitted request %d errored: %v", i, err)
		}
	}

	if _, err := srv.Query(context.Background(), queries[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close admission returned %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
}

// TestAdmissionControl: a full queue rejects with ErrOverloaded instead of
// queueing unboundedly.
func TestAdmissionControl(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	if len(queries) < 4 {
		t.Skip("bench too small")
	}
	srv := New(lo.Graph, Config{
		Threads: 1, TypeLevels: lo.TypeLevels,
		BatchWindow: time.Second, QueueDepth: 2,
	})
	defer srv.Close()

	// Fill the queue with two distinct vars (waiters in background).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = srv.Query(context.Background(), queries[i])
		}()
	}
	deadline := time.Now().Add(time.Second)
	for srv.Stats().Requests < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background queries never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := srv.Query(context.Background(), queries[2])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow admission returned %v, want ErrOverloaded", err)
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Fatalf("rejected %d, want 1", got)
	}
	// A duplicate of a queued var still coalesces even at full depth.
	go func() { _, _ = srv.Query(context.Background(), queries[0]) }()
	wg.Wait()
}

// TestHTTPRoundTrip drives the full wire path: client → handler → server →
// engine and back, including stats, vars and snapshot-to-file.
func TestHTTPRoundTrip(t *testing.T) {
	lo := genBench(t)
	srv := New(lo.Graph, Config{
		Threads: 2, TypeLevels: lo.TypeLevels, QueryVars: lo.AppQueryVars,
		BatchWindow: -1,
	})
	defer srv.Close()

	snapPath := t.TempDir() + "/warm.pag"
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{SnapshotPath: snapPath}))
	defer ts.Close()
	cl := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	vars, err := cl.Vars(ctx)
	if err != nil || len(vars) == 0 {
		t.Fatalf("vars: %v (%d)", err, len(vars))
	}

	res, err := cl.Query(ctx, vars[:3], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Var != vars[i] {
			t.Fatalf("result %d is for %q, want %q", i, r.Var, vars[i])
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 || st.Batches == 0 {
		t.Fatalf("stats after one batch: %+v", st)
	}

	path, err := cl.SaveSnapshot(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if path != snapPath {
		t.Fatalf("snapshot landed at %q, want %q", path, snapPath)
	}

	if _, err := cl.Query(ctx, []string{"no-such-var"}, time.Second); err == nil {
		t.Fatal("unknown var accepted")
	}
}

// TestKernelServerAnswersMatch: a kernel-mode server serves exactly what the
// plain server serves (the kernel is a data-layout change, not a semantic
// one), and its snapshot carries the Prep so a warm start skips the build
// and auto-enables kernel mode.
func TestKernelServerAnswersMatch(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars[:4]

	plain := New(lo.Graph, Config{Threads: 1, TypeLevels: lo.TypeLevels, BatchWindow: -1})
	kern := New(lo.Graph, Config{Threads: 1, TypeLevels: lo.TypeLevels, BatchWindow: -1, Kernel: true})
	defer plain.Close()
	for _, v := range queries {
		want, err1 := plain.Query(context.Background(), v)
		got, err2 := kern.Query(context.Background(), v)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d: %v / %v", v, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("var %d: kernel served %+v, plain %+v", v, got, want)
		}
	}

	snap := kern.Snapshot("test")
	kern.Close()
	if snap.Kernel == nil {
		t.Fatal("kernel server snapshot lost the prep")
	}
	warm := NewFromSnapshot(snap, Config{Threads: 1, BatchWindow: -1})
	defer warm.Close()
	if warm.kernel == nil {
		t.Fatal("warm start from kernel snapshot did not auto-enable kernel mode")
	}
	if _, err := warm.Query(context.Background(), queries[0]); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadedHTTP: an admission rejection surfaces as 429 with a
// Retry-After hint, and the client reports it as a typed OverloadedError
// that unwraps to ErrOverloaded.
func TestOverloadedHTTP(t *testing.T) {
	lo := genBench(t)
	queries := lo.AppQueryVars
	if len(queries) < 3 {
		t.Skip("bench too small")
	}
	srv := New(lo.Graph, Config{
		Threads: 1, TypeLevels: lo.TypeLevels,
		BatchWindow: time.Second, QueueDepth: 1,
	})
	defer srv.Close()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{RetryAfter: 3 * time.Second}))
	defer ts.Close()
	cl := NewClient(ts.URL, ts.Client())
	g := srv.Graph()

	// Park one query so the depth-1 queue is full, then hit the API with a
	// different variable.
	go func() { _, _ = srv.Query(context.Background(), queries[0]) }()
	deadline := time.Now().Add(time.Second)
	for srv.Stats().Requests < 1 {
		if time.Now().After(deadline) {
			t.Fatal("background query never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := cl.Query(context.Background(), []string{g.Node(queries[1]).Name}, time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded daemon returned %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overloaded daemon returned %T, want *OverloadedError", err)
	}
	if oe.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter %v, want 3s (handler hint)", oe.RetryAfter)
	}
}

// TestClientRetriesOverload: WithRetry retries 429s under the policy and
// succeeds when the server recovers; the deadline is respected.
func TestClientRetriesOverload(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Retry-After", "0") // parsed as no hint; policy delay applies
			writeErr(w, http.StatusTooManyRequests, ErrOverloaded)
			return
		}
		writeJSON(w, http.StatusOK, QueryReply{Results: []VarResult{{Var: "v"}}})
	}))
	defer ts.Close()

	cl := NewClient(ts.URL, ts.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
	})
	res, err := cl.Query(context.Background(), []string{"v"}, time.Second)
	if err != nil {
		t.Fatalf("retrying client failed: %v (after %d attempts)", err, hits.Load())
	}
	if len(res) != 1 || hits.Load() != 3 {
		t.Fatalf("got %d results after %d attempts, want 1 after 3", len(res), hits.Load())
	}

	// Exhausted attempts surface the overload error, not a context error.
	hits.Store(-1000)
	cl2 := cl.WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	if _, err := cl2.Query(context.Background(), []string{"v"}, time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries returned %v, want ErrOverloaded", err)
	}

	// A deadline shorter than the server's Retry-After hint gives up
	// immediately with the overload error instead of sleeping into expiry.
	hits.Store(-1000)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeErr(w, http.StatusTooManyRequests, ErrOverloaded)
	}))
	defer ts2.Close()
	cl3 := NewClient(ts2.URL, ts2.Client()).WithRetry(RetryPolicy{MaxAttempts: 5})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl3.Query(ctx, []string{"v"}, time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline-bounded retry returned %v, want ErrOverloaded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("client slept past its deadline before giving up")
	}
}
