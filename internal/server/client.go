package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client speaks the daemon's /v1 JSON API. It is a thin convenience over
// net/http — safe for concurrent use, no state beyond the base URL.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a daemon at base (e.g. "http://localhost:7070"). A nil
// hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: hc}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorReply
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
		}
		return fmt.Errorf("server: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Query answers a batch of variables by name (positional results). A zero
// timeout uses the server default.
func (c *Client) Query(ctx context.Context, vars []string, timeout time.Duration) ([]VarResult, error) {
	spec := QuerySpec{Vars: vars, TimeoutMS: timeout.Milliseconds()}
	var reply QueryReply
	if err := c.do(ctx, http.MethodPost, "/v1/query", &spec, &reply); err != nil {
		return nil, err
	}
	if len(reply.Results) != len(vars) {
		return nil, fmt.Errorf("server: %d results for %d vars", len(reply.Results), len(vars))
	}
	return reply.Results, nil
}

// Stats fetches the cumulative service stats.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &s)
	return s, err
}

// SaveSnapshot asks the daemon to persist its warm state; an empty path
// uses the daemon's configured destination. Returns where it landed.
func (c *Client) SaveSnapshot(ctx context.Context, path string) (string, error) {
	var reply SnapshotReply
	err := c.do(ctx, http.MethodPost, "/v1/snapshot", &SnapshotSpec{Path: path}, &reply)
	return reply.Path, err
}

// Vars lists the daemon's application query variables by name.
func (c *Client) Vars(ctx context.Context) ([]string, error) {
	var reply VarsReply
	if err := c.do(ctx, http.MethodGet, "/v1/vars", nil, &reply); err != nil {
		return nil, err
	}
	return reply.Vars, nil
}
