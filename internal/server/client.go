package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"parcfl/internal/obs"
)

// OverloadedError reports a 429 from the daemon: admission control rejected
// the request because the pending-variable queue was full. It carries the
// server's Retry-After hint and unwraps to ErrOverloaded, so callers can
// test errors.Is(err, server.ErrOverloaded) without depending on this type.
type OverloadedError struct {
	// RetryAfter is the server's back-off hint (0 when none was sent).
	RetryAfter time.Duration
	msg        string
}

func (e *OverloadedError) Error() string { return e.msg }

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// MisdirectedError reports a 421 from a shard-mode daemon: the queried
// variable belongs to another replica. It carries the owning shard and the
// plan's shard count so a routing caller can re-aim the request.
type MisdirectedError struct {
	// Shard owns the variable; Shards is the plan's total shard count.
	Shard, Shards int
	msg           string
}

func (e *MisdirectedError) Error() string { return e.msg }

// RetryPolicy is the client's opt-in handling of overload rejections: a
// bounded, jittered exponential back-off that honours the server's
// Retry-After hint and never sleeps past the request context's deadline.
// Only ErrOverloaded responses are retried — queries are read-only, so a
// repeat is always safe, but other failures (timeouts, unknown variables,
// daemon shutdown) are not transient in the same way.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (values below 2 disable retrying).
	MaxAttempts int
	// BaseDelay is the first back-off, doubled each further attempt
	// (0 means 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the back-off growth (0 means 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

// delay computes the back-off before attempt i+1 (i counts completed
// attempts, so the first retry sees i == 0): the doubled base, capped, with
// full jitter on the upper half so synchronised clients spread out.
func (p RetryPolicy) delay(i int) time.Duration {
	d := p.base() << uint(i)
	if d <= 0 || d > p.cap() { // <= 0 catches shift overflow
		d = p.cap()
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Client speaks the daemon's /v1 JSON API. It is a thin convenience over
// net/http — safe for concurrent use, no state beyond the base URL and
// retry policy.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// NewClient targets a daemon at base (e.g. "http://localhost:7070"). A nil
// hc uses http.DefaultClient. The returned client does not retry; see
// WithRetry.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: hc}
}

// WithRetry returns a copy of the client that retries overload rejections
// under the given policy. The receiver is unchanged.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	nc := *c
	nc.retry = p
	return &nc
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRid(ctx, "", "", method, path, in, out)
}

func (c *Client) doRid(ctx context.Context, rid, traceparent, method, path string, in, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, rid, traceparent, method, path, in, out)
		var oe *OverloadedError
		if err == nil || !errors.As(err, &oe) || attempt+1 >= c.retry.MaxAttempts {
			return err
		}
		delay := c.retry.delay(attempt)
		if oe.RetryAfter > delay {
			delay = oe.RetryAfter
		}
		// Sleeping past the caller's deadline would just convert an
		// actionable "overloaded" into a vague context error; give up with
		// the real cause instead.
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return err
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Client) doOnce(ctx context.Context, rid, traceparent, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if rid != "" {
		req.Header.Set(RequestIDHeader, rid)
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceParentHeader, traceparent)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorReply
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = fmt.Sprintf("%s (%s)", e.Error, resp.Status)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			oe := &OverloadedError{msg: "server: " + msg}
			oe.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			return oe
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			return &MisdirectedError{Shard: e.Shard, Shards: e.Shards, msg: "server: " + msg}
		}
		return fmt.Errorf("server: %s", msg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// maxRetryAfter bounds how far in the future a Retry-After hint may point:
// beyond this the value is treated as absurd (a broken server clock or a
// hostile proxy) and clamped, so a client never parks itself for hours on
// one malformed header.
const maxRetryAfter = 5 * time.Minute

// parseRetryAfter interprets a Retry-After header per RFC 9110 §10.2.3:
// either delta-seconds or an HTTP-date. Negative and unparseable values
// yield 0 (no hint); values beyond maxRetryAfter clamp to it.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(h); err == nil {
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(h); err == nil {
		d = when.Sub(now)
	} else {
		return 0
	}
	if d < 0 {
		return 0
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// Query answers a batch of variables by name (positional results). A zero
// timeout uses the server default.
func (c *Client) Query(ctx context.Context, vars []string, timeout time.Duration) ([]VarResult, error) {
	reply, err := c.QueryRequest(ctx, "", vars, timeout)
	if err != nil {
		return nil, err
	}
	return reply.Results, nil
}

// QueryRequest is Query carrying an explicit request ID: requestID travels
// as the X-Parcfl-Request-Id header (empty lets the server mint one) and
// the full reply — echoed ID and per-variable phase timings — is returned.
// The client mints a fresh W3C traceparent for the request (shared across
// overload retries, so one logical request is one trace); callers that are
// themselves part of a trace forward their own with QueryTraced.
func (c *Client) QueryRequest(ctx context.Context, requestID string, vars []string, timeout time.Duration) (QueryReply, error) {
	return c.QueryTraced(ctx, requestID, obs.MintTraceParent().String(), vars, timeout)
}

// QueryTraced is QueryRequest forwarding an explicit W3C traceparent header
// value (empty sends none; the server then mints the trace id itself). The
// reply's TraceID reports the trace the request was served under.
func (c *Client) QueryTraced(ctx context.Context, requestID, traceparent string, vars []string, timeout time.Duration) (QueryReply, error) {
	spec := QuerySpec{Vars: vars, TimeoutMS: timeout.Milliseconds()}
	var reply QueryReply
	if err := c.doRid(ctx, requestID, traceparent, http.MethodPost, "/v1/query", &spec, &reply); err != nil {
		return QueryReply{}, err
	}
	if len(reply.Results) != len(vars) {
		return QueryReply{}, fmt.Errorf("server: %d results for %d vars", len(reply.Results), len(vars))
	}
	return reply, nil
}

// Stats fetches the cumulative service stats.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &s)
	return s, err
}

// SaveSnapshot asks the daemon to persist its warm state; an empty path
// uses the daemon's configured destination. Returns where it landed.
func (c *Client) SaveSnapshot(ctx context.Context, path string) (string, error) {
	var reply SnapshotReply
	err := c.do(ctx, http.MethodPost, "/v1/snapshot", &SnapshotSpec{Path: path}, &reply)
	return reply.Path, err
}

// Vars lists the daemon's application query variables by name.
func (c *Client) Vars(ctx context.Context) ([]string, error) {
	var reply VarsReply
	if err := c.do(ctx, http.MethodGet, "/v1/vars", nil, &reply); err != nil {
		return nil, err
	}
	return reply.Vars, nil
}
