package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// storeServer is tracedServer plus an attached retain-everything trace
// store, so every request's reply-time trace is resolvable in the test.
func storeServer(t *testing.T) (*Server, pag.NodeID, string, *obs.TraceStore) {
	t.Helper()
	srv, sink, lo := tracedServer(t, Config{BatchWindow: -1})
	t.Cleanup(srv.Close)
	ts := obs.NewTraceStore(sink, obs.TraceStoreConfig{Capacity: 64, SampleRate: 1})
	sink.AttachTraceStore(ts)
	v := lo.AppQueryVars[0]
	return srv, v, srv.Graph().Node(v).Name, ts
}

// TestTraceparentPropagation: a client-minted traceparent travels the HTTP
// hop — the response echoes the header with the caller's trace id but a
// fresh server span id, the reply body names the trace, and the retained
// trace carries the same identity, so the parcfl trace joins the caller's
// distributed trace end to end.
func TestTraceparentPropagation(t *testing.T) {
	srv, _, name, store := storeServer(t)
	hts := httptest.NewServer(NewHandler(srv, HandlerConfig{}))
	defer hts.Close()

	in := obs.MintTraceParent()
	body, _ := json.Marshal(QuerySpec{Vars: []string{name}})
	req, err := http.NewRequest(http.MethodPost, hts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "traced-rid-1")
	req.Header.Set(obs.TraceParentHeader, in.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	echo, ok := obs.ParseTraceParent(resp.Header.Get(obs.TraceParentHeader))
	if !ok {
		t.Fatalf("response traceparent %q unparseable", resp.Header.Get(obs.TraceParentHeader))
	}
	if echo.TraceID != in.TraceID {
		t.Fatalf("trace id changed across the hop: sent %s, got %s", in.TraceID, echo.TraceID)
	}
	if echo.SpanID == in.SpanID {
		t.Fatal("server did not mint its own span id")
	}
	var reply QueryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.TraceID != in.TraceID {
		t.Fatalf("reply trace_id %q, want %q", reply.TraceID, in.TraceID)
	}

	tr, found := store.Get("traced-rid-1")
	if !found {
		t.Fatal("request not retained")
	}
	if tr.TraceID != in.TraceID || tr.SpanID != echo.SpanID {
		t.Fatalf("retained identity %s/%s, want %s/%s", tr.TraceID, tr.SpanID, in.TraceID, echo.SpanID)
	}
}

// TestTraceparentMintedWhenAbsent: with no (or a malformed) incoming
// traceparent the server mints the whole trace — the response header is a
// fresh valid value and the reply still names the trace.
func TestTraceparentMintedWhenAbsent(t *testing.T) {
	srv, _, name, _ := storeServer(t)
	hts := httptest.NewServer(NewHandler(srv, HandlerConfig{}))
	defer hts.Close()

	for _, incoming := range []string{"", "ff-garbage"} {
		body, _ := json.Marshal(QuerySpec{Vars: []string{name}})
		req, _ := http.NewRequest(http.MethodPost, hts.URL+"/v1/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if incoming != "" {
			req.Header.Set(obs.TraceParentHeader, incoming)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		tp, ok := obs.ParseTraceParent(resp.Header.Get(obs.TraceParentHeader))
		var reply QueryReply
		err = json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !tp.Valid() {
			t.Fatalf("incoming %q: response traceparent invalid", incoming)
		}
		if reply.TraceID != tp.TraceID {
			t.Fatalf("incoming %q: reply trace_id %q != header %q", incoming, reply.TraceID, tp.TraceID)
		}
	}
}

// TestRetainedTraceMatchesReply is the live-trace contract: the retained
// trace's serve span duration IS the total_ns the reply carried (built from
// the same Timings), its phase spans cover admit and queue_wait, and the
// queried variable rides along — GET /debug/traces/{rid} can never disagree
// with what the client saw.
func TestRetainedTraceMatchesReply(t *testing.T) {
	srv, v, name, store := storeServer(t)
	hts := httptest.NewServer(NewHandler(srv, HandlerConfig{}))
	defer hts.Close()

	cl := NewClient(hts.URL, nil)
	reply, err := cl.QueryRequest(context.Background(), "match-rid-1", []string{name}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tm := reply.Results[0].Timings
	if tm == nil {
		t.Fatal("no timings on the wire")
	}

	tr, ok := store.Get("match-rid-1")
	if !ok {
		t.Fatal("request not retained")
	}
	if tr.Seq != tm.Seq || tr.Batch != tm.Batch || tr.TotalNS != tm.TotalNS {
		t.Fatalf("retained %+v != reply timings %+v", tr, tm)
	}
	if len(tr.Vars) != 1 || tr.Vars[0] != name {
		t.Fatalf("retained vars %v, want [%s]", tr.Vars, name)
	}
	var serve *obs.Span
	phases := map[obs.SpanKind]bool{}
	for i := range tr.Spans {
		phases[tr.Spans[i].Kind] = true
		if tr.Spans[i].Kind == obs.SpanServe {
			serve = &tr.Spans[i]
		}
	}
	if serve == nil || !phases[obs.SpanAdmit] || !phases[obs.SpanQueueWait] {
		t.Fatalf("phase spans incomplete: %+v", tr.Spans)
	}
	if serve.Dur != tm.TotalNS {
		t.Fatalf("serve span dur %d != reply total_ns %d", serve.Dur, tm.TotalNS)
	}
	if serve.C != 0 {
		t.Fatalf("serve outcome %d, want success", serve.C)
	}

	// The in-process path agrees: WithRID + WithTrace thread identity to the
	// same offer, under the same rid scheme the soak harness uses.
	ctx := WithTrace(WithRID(context.Background(), "match-rid-2"), "a1b2", "c3d4")
	if _, err := srv.QueryRequest(ctx, v); err != nil {
		t.Fatal(err)
	}
	tr2, ok := store.Get("match-rid-2")
	if !ok {
		t.Fatal("in-process request not retained")
	}
	if tr2.TraceID != "a1b2" || tr2.SpanID != "c3d4" {
		t.Fatalf("in-process trace identity %+v", tr2)
	}
}
