package incremental

import (
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
	"parcfl/internal/share"
)

// buildBase: o1 -new-> a -assign-> b, plus store/load through a container:
// c -new-> oc ; c.f = a ; d = c.f.
func buildBase(t *testing.T) (*pag.Graph, map[string]pag.NodeID) {
	t.Helper()
	g := pag.NewGraph()
	ids := map[string]pag.NodeID{}
	ids["o1"] = g.AddObject("o1", 0)
	ids["oc"] = g.AddObject("oc", 1)
	ids["a"] = g.AddLocal("a", 0, 0)
	ids["b"] = g.AddLocal("b", 0, 0)
	ids["c"] = g.AddLocal("c", 1, 0)
	ids["d"] = g.AddLocal("d", 0, 0)
	f := pag.Label(1)
	g.AddEdge(pag.Edge{Dst: ids["a"], Src: ids["o1"], Kind: pag.EdgeNew})
	g.AddEdge(pag.Edge{Dst: ids["b"], Src: ids["a"], Kind: pag.EdgeAssignLocal})
	g.AddEdge(pag.Edge{Dst: ids["c"], Src: ids["oc"], Kind: pag.EdgeNew})
	g.AddEdge(pag.Edge{Dst: ids["c"], Src: ids["a"], Kind: pag.EdgeStore, Label: f})
	g.AddEdge(pag.Edge{Dst: ids["d"], Src: ids["c"], Kind: pag.EdgeLoad, Label: f})
	g.Freeze()
	return g, ids
}

func objs(r cfl.Result) map[pag.NodeID]bool {
	m := map[pag.NodeID]bool{}
	for _, o := range r.Objects() {
		m[o] = true
	}
	return m
}

func TestGrowingEditFindsNewFacts(t *testing.T) {
	g, ids := buildBase(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 4})
	ia := New(g, Config{Store: st})

	// Warm the cache: d -> {o1} via the store/load pair.
	r := ia.PointsTo(ids["d"], pag.EmptyContext)
	if !objs(r)[ids["o1"]] {
		t.Fatalf("d pts = %v, want o1", r.Objects())
	}
	if st.NumJumps() == 0 {
		t.Fatal("no shortcuts recorded")
	}

	// Edit: a second object flows into the container: o2 -new-> e; c.f = e.
	gIDs := ia.Apply(Edit{
		AddNodes: []pag.Node{
			{Name: "o2", Kind: pag.KindObject},
			{Name: "e", Kind: pag.KindLocal},
		},
		AddEdges: nil,
	})
	o2, e := gIDs[0], gIDs[1]
	ia.Apply(Edit{AddEdges: []pag.Edge{
		{Dst: e, Src: o2, Kind: pag.EdgeNew},
		{Dst: ids["c"], Src: e, Kind: pag.EdgeStore, Label: 1},
	}})

	// The cached shortcut for d's expansion is stale; epoch invalidation
	// must expose the new fact.
	r2 := ia.PointsTo(ids["d"], pag.EmptyContext)
	got := objs(r2)
	if !got[ids["o1"]] || !got[o2] {
		t.Fatalf("after growing edit, d pts = %v, want {o1, o2}", r2.Objects())
	}
	grew, _ := ia.Edits()
	if grew != 2 {
		t.Fatalf("grew = %d", grew)
	}
}

func TestShrinkingEditKeepsCache(t *testing.T) {
	g, ids := buildBase(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 4})
	ia := New(g, Config{Store: st})
	ia.PointsTo(ids["d"], pag.EmptyContext)
	epochBefore := st.Epoch()

	// Remove the assignment b = a (irrelevant to d's answer).
	ia.Apply(Edit{RemoveEdges: []pag.Edge{
		{Dst: ids["b"], Src: ids["a"], Kind: pag.EdgeAssignLocal},
	}})
	if st.Epoch() != epochBefore {
		t.Fatal("shrinking edit bumped the epoch")
	}
	// The cached answer is still usable and correct here.
	r := ia.PointsTo(ids["d"], pag.EmptyContext)
	if !objs(r)[ids["o1"]] {
		t.Fatalf("d pts = %v", r.Objects())
	}
	// b's answer reflects the removal (no cache covered it).
	rb := ia.PointsTo(ids["b"], pag.EmptyContext)
	if len(rb.Objects()) != 0 {
		t.Fatalf("b pts = %v after removing its only edge", rb.Objects())
	}
	_, shrank := ia.Edits()
	if shrank != 1 {
		t.Fatalf("shrank = %d", shrank)
	}
}

func TestShrinkingEditIsSoundOverApprox(t *testing.T) {
	g, ids := buildBase(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 4})
	ia := New(g, Config{Store: st})
	ia.PointsTo(ids["d"], pag.EmptyContext) // warm shortcut for d

	// Remove the store c.f = a: exactly (from scratch) d now points to
	// nothing; incrementally, the stale shortcut may still claim o1.
	ia.Apply(Edit{RemoveEdges: []pag.Edge{
		{Dst: ids["c"], Src: ids["a"], Kind: pag.EdgeStore, Label: 1},
	}})
	inc := objs(ia.PointsTo(ids["d"], pag.EmptyContext))

	fresh := cfl.New(ia.Graph(), cfl.Config{})
	exact := objs(fresh.PointsTo(ids["d"], pag.EmptyContext))

	// Over-approximation: everything exact is in the incremental answer.
	for o := range exact {
		if !inc[o] {
			t.Fatalf("incremental lost fact %v after removal", o)
		}
	}
}

// TestIncrementalMatchesFromScratchOnGrowth: on random programs, applying a
// growing edit and re-querying must equal a from-scratch analysis of the
// edited graph.
func TestIncrementalMatchesFromScratchOnGrowth(t *testing.T) {
	for seed := int64(600); seed < 620; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 4})
		ia := New(lo.Graph, Config{Store: st})
		// Warm: query everything once.
		for _, v := range lo.AppQueryVars {
			ia.PointsTo(v, pag.EmptyContext)
		}
		// Grow: new object assigned into the first queried variable.
		if len(lo.AppQueryVars) == 0 {
			continue
		}
		target := lo.AppQueryVars[0]
		added := ia.Apply(Edit{AddNodes: []pag.Node{{Name: "oNew", Kind: pag.KindObject}}})
		ia.Apply(Edit{AddEdges: []pag.Edge{{Dst: target, Src: added[0], Kind: pag.EdgeNew}}})

		fresh := cfl.New(ia.Graph(), cfl.Config{})
		for _, v := range lo.AppQueryVars {
			a := objs(ia.PointsTo(v, pag.EmptyContext))
			b := objs(fresh.PointsTo(v, pag.EmptyContext))
			if len(a) != len(b) {
				t.Fatalf("seed %d: %s: incremental %v vs fresh %v", seed, lo.Graph.Node(v).Name, a, b)
			}
			for o := range b {
				if !a[o] {
					t.Fatalf("seed %d: %s: incremental missing %v", seed, lo.Graph.Node(v).Name, o)
				}
			}
		}
	}
}

func TestUpdateAPIBasics(t *testing.T) {
	g, ids := buildBase(t)
	// RemoveEdge of an absent edge returns false.
	g.BeginUpdate()
	if g.RemoveEdge(pag.Edge{Dst: ids["a"], Src: ids["b"], Kind: pag.EdgeAssignLocal}) {
		t.Fatal("removed a non-existent edge")
	}
	if !g.RemoveEdge(pag.Edge{Dst: ids["b"], Src: ids["a"], Kind: pag.EdgeAssignLocal}) {
		t.Fatal("failed to remove an existing edge")
	}
	g.CommitUpdate()
	if !g.Frozen() {
		t.Fatal("not re-frozen")
	}
	// Double BeginUpdate / CommitUpdate misuse panics.
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f()
	}
	mustPanic(func() { g.CommitUpdate() })
	g.BeginUpdate()
	mustPanic(func() { g.BeginUpdate() })
	g.CommitUpdate()
	// The O node survives updates and stays unique.
	n := 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(pag.NodeID(i)).Kind == pag.KindUnfinished {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("O nodes = %d", n)
	}
}
