package incremental

import (
	"testing"

	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// TestIncrementalObsWiring: edits and re-solves feed the sink's counters and
// span buffers.
func TestIncrementalObsWiring(t *testing.T) {
	g, ids := buildBase(t)
	sink := obs.New(obs.Config{SpanCap: 64})
	ia := New(g, Config{Obs: sink})

	ia.PointsTo(ids["d"], pag.EmptyContext)
	ia.Apply(Edit{AddEdges: []pag.Edge{
		{Dst: ids["b"], Src: ids["o1"], Kind: pag.EdgeNew},
	}})
	ia.Apply(Edit{RemoveEdges: []pag.Edge{
		{Dst: ids["b"], Src: ids["o1"], Kind: pag.EdgeNew},
	}})
	ia.PointsTo(ids["d"], pag.EmptyContext)

	if got := sink.Counter(obs.CtrIncResolves); got != 2 {
		t.Fatalf("CtrIncResolves = %d, want 2", got)
	}
	if sink.Counter(obs.CtrIncEditsGrow) != 1 || sink.Counter(obs.CtrIncEditsShrink) != 1 {
		t.Fatalf("edit counters: grow=%d shrink=%d",
			sink.Counter(obs.CtrIncEditsGrow), sink.Counter(obs.CtrIncEditsShrink))
	}
	spans, _ := sink.Spans()
	updates := 0
	for _, sp := range spans {
		if sp.Kind == obs.SpIncUpdate {
			updates++
			if sp.Dur < 0 {
				t.Fatalf("negative duration: %+v", sp)
			}
		}
	}
	if updates != 2 {
		t.Fatalf("%d SpIncUpdate spans, want 2", updates)
	}
}
