// Package incremental maintains analysis results across program edits,
// reproducing (in simplified form) the incremental CFL-reachability line of
// work the paper builds on ([6] Lu/Shang/Xie/Xue CC'13, [16] Shang/Lu/Xue
// ASE'12): "incremental techniques, which are tailored for scenarios where
// code changes are small, take advantage of previously computed
// CFL-reachable paths to avoid unnecessary reanalysis."
//
// The previously computed paths here are the jmp shortcut edges of the
// data-sharing store. Program edits classify into:
//
//   - shrinking edits (statement/edge removals): recorded shortcuts can
//     only over-approximate afterwards — taking one may re-derive facts
//     that no longer hold, costing precision but never soundness — so the
//     store is RETAINED and results stay conservative until entries are
//     naturally replaced;
//   - growing edits (additions): recorded shortcuts may now be incomplete
//     (missing targets), which would lose facts; the store's epoch is
//     advanced, lazily invalidating every entry. Re-querying rebuilds
//     entries on demand — no eager recomputation.
//
// The PAG itself is edited in place (node IDs are stable across updates),
// so the caches keyed by (node, context) stay meaningful.
package incremental

import (
	"parcfl/internal/cfl"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// Analyzer owns a mutable PAG and the persistent jmp store.
type Analyzer struct {
	g      *pag.Graph
	store  *share.Store
	cache  *ptcache.Cache
	budget int
	sink   *obs.Sink

	// edit statistics
	grew, shrank int
}

// Config tunes the incremental analyzer.
type Config struct {
	// Budget is the per-query step budget (0 = unbounded).
	Budget int
	// Store overrides the jmp store (mainly for tests); nil creates one
	// with the paper's thresholds.
	Store *share.Store
	// ResultCache additionally maintains a cross-query result cache with
	// the same epoch discipline.
	ResultCache bool
	// Obs receives counters (inc_edits_grow, inc_edits_shrink,
	// inc_resolves) and — with span tracing on — one SpIncUpdate span per
	// Apply. Nil disables.
	Obs *obs.Sink
}

// New wraps a frozen graph for incremental analysis.
func New(g *pag.Graph, cfg Config) *Analyzer {
	if !g.Frozen() {
		panic("incremental: unfrozen graph")
	}
	st := cfg.Store
	if st == nil {
		st = share.NewStore(share.DefaultConfig())
		st.SetObs(cfg.Obs)
	}
	a := &Analyzer{g: g, store: st, budget: cfg.Budget, sink: cfg.Obs}
	if cfg.ResultCache {
		a.cache = ptcache.New(64)
		a.cache.SetObs(cfg.Obs)
	}
	return a
}

// Graph returns the underlying (currently frozen) graph.
func (a *Analyzer) Graph() *pag.Graph { return a.g }

// Store returns the persistent jmp store.
func (a *Analyzer) Store() *share.Store { return a.store }

// Edit is a batch of graph changes applied atomically between analysis
// sessions.
type Edit struct {
	AddNodes    []pag.Node
	AddEdges    []pag.Edge
	RemoveEdges []pag.Edge
}

// Grows reports whether the edit can add value-flow paths (any node or edge
// addition). Growing edits invalidate cached shortcuts.
func (e *Edit) Grows() bool {
	return len(e.AddNodes) > 0 || len(e.AddEdges) > 0
}

// Apply performs the edit and returns the IDs of any added nodes (in order).
// The analyzer must not be queried concurrently with Apply.
func (a *Analyzer) Apply(e Edit) []pag.NodeID {
	editT0 := a.sink.SpanStart()
	a.g.BeginUpdate()
	ids := make([]pag.NodeID, 0, len(e.AddNodes))
	for _, n := range e.AddNodes {
		ids = append(ids, a.g.AddNode(n))
	}
	for _, ed := range e.RemoveEdges {
		a.g.RemoveEdge(ed)
	}
	for _, ed := range e.AddEdges {
		a.g.AddEdge(ed)
	}
	a.g.CommitUpdate()

	if e.Grows() {
		// Additions can create new paths: every recorded expansion may
		// now be incomplete. Invalidate lazily.
		a.store.BumpEpoch()
		if a.cache != nil {
			a.cache.BumpEpoch()
		}
		a.grew++
		a.sink.Add(obs.CtrIncEditsGrow, 1)
	} else {
		// Pure removals: stale entries only over-approximate. Keep them
		// (the incremental win: prior work remains usable).
		a.shrank++
		a.sink.Add(obs.CtrIncEditsShrink, 1)
	}
	a.sink.Span(obs.SpIncUpdate, obs.NoWorker, editT0,
		int64(len(e.AddNodes)+len(e.AddEdges)), int64(len(e.RemoveEdges)), 0)
	return ids
}

// Solver returns a fresh demand solver sharing the persistent store.
// Solvers are single-goroutine; create one per worker.
func (a *Analyzer) Solver() *cfl.Solver {
	return cfl.New(a.g, cfl.Config{
		Budget: a.budget, Share: a.store, Cache: a.cache,
		Obs: a.sink, Worker: obs.NoWorker,
	})
}

// PointsTo runs one query against the current graph with the persistent
// store.
func (a *Analyzer) PointsTo(v pag.NodeID, ctx pag.Context) cfl.Result {
	a.sink.Add(obs.CtrIncResolves, 1)
	return a.Solver().PointsTo(v, ctx)
}

// Edits returns how many growing and shrinking edits have been applied.
func (a *Analyzer) Edits() (grew, shrank int) { return a.grew, a.shrank }
