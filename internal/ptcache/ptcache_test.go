package ptcache_test

import (
	"sort"
	"sync"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/randprog"
)

func TestBasicPutGet(t *testing.T) {
	c := ptcache.New(4)
	k := ptcache.Key{Dir: ptcache.Backward, Node: 3, Ctx: pag.EmptyContext.Push(5)}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	set := []pag.NodeCtx{{Node: 9}}
	c.Put(k, set)
	got, ok := c.Get(k)
	if !ok || len(got) != 1 || got[0].Node != 9 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	st := c.Snapshot()
	if st.Published != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := ptcache.New(4)
	k := ptcache.Key{Node: 1}
	c.Put(k, []pag.NodeCtx{{Node: 2}})
	c.BumpEpoch()
	if _, ok := c.Get(k); ok {
		t.Fatal("stale entry visible")
	}
	// Re-publishing under the new epoch replaces the stale entry.
	c.Put(k, []pag.NodeCtx{{Node: 3}})
	got, ok := c.Get(k)
	if !ok || got[0].Node != 3 {
		t.Fatalf("replacement failed: %v %v", got, ok)
	}
}

// TestSnapshotEntriesAcrossEpochBump: Snapshot().Entries must count live
// (current-epoch) entries only (regression: it used the map's physical
// length, which still includes every epoch-invalidated entry until its key
// happens to be republished).
func TestSnapshotEntriesAcrossEpochBump(t *testing.T) {
	c := ptcache.New(4)
	for i := 0; i < 10; i++ {
		c.Put(ptcache.Key{Node: pag.NodeID(i)}, []pag.NodeCtx{{Node: 100}})
	}
	if st := c.Snapshot(); st.Entries != 10 {
		t.Fatalf("before bump: Entries = %d, want 10", st.Entries)
	}

	c.BumpEpoch()
	if st := c.Snapshot(); st.Entries != 0 {
		t.Fatalf("after bump: Entries = %d, want 0 (stale entries are invisible to Get)", st.Entries)
	}

	// Republishing a subset makes exactly that subset live again.
	for i := 0; i < 3; i++ {
		c.Put(ptcache.Key{Node: pag.NodeID(i)}, []pag.NodeCtx{{Node: 200}})
	}
	if st := c.Snapshot(); st.Entries != 3 {
		t.Fatalf("after republish: Entries = %d, want 3", st.Entries)
	}
}

// TestCachePreservesResults: queries with a shared cache return exactly the
// uncached answers, and repeat queries hit.
func TestCachePreservesResults(t *testing.T) {
	for seed := int64(800); seed < 830; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		plain := cfl.New(lo.Graph, cfl.Config{})
		cache := ptcache.New(8)
		cached := cfl.New(lo.Graph, cfl.Config{Cache: cache})
		for pass := 0; pass < 2; pass++ {
			for _, v := range lo.AppQueryVars {
				a := plain.PointsTo(v, pag.EmptyContext)
				b := cached.PointsTo(v, pag.EmptyContext)
				ga, gb := a.Objects(), b.Objects()
				sort.Slice(ga, func(i, j int) bool { return ga[i] < ga[j] })
				sort.Slice(gb, func(i, j int) bool { return gb[i] < gb[j] })
				if len(ga) != len(gb) {
					t.Fatalf("seed %d pass %d %s: %v vs %v", seed, pass, lo.Graph.Node(v).Name, ga, gb)
				}
				for i := range ga {
					if ga[i] != gb[i] {
						t.Fatalf("seed %d pass %d %s: %v vs %v", seed, pass, lo.Graph.Node(v).Name, ga, gb)
					}
				}
			}
		}
		if cache.Snapshot().Hits == 0 {
			t.Fatalf("seed %d: no cache hits on second pass", seed)
		}
	}
}

// TestCacheCutsSteps: a repeated query with a warm cache costs almost
// nothing.
func TestCacheCutsSteps(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	cache := ptcache.New(8)
	s := cfl.New(f.Lowered.Graph, cfl.Config{Cache: cache})
	r1 := s.PointsTo(f.S1, pag.EmptyContext)
	r2 := s.PointsTo(f.S1, pag.EmptyContext)
	if r2.Steps >= r1.Steps {
		t.Fatalf("warm query not cheaper: %d vs %d", r2.Steps, r1.Steps)
	}
	if r2.Steps > 3 {
		t.Fatalf("warm query cost %d steps, expected a couple of cache hits", r2.Steps)
	}
}

// TestConcurrentSolvers: many goroutines share one cache; all answers agree
// (run with -race).
func TestConcurrentSolvers(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	cache := ptcache.New(8)
	want := cfl.New(f.Lowered.Graph, cfl.Config{}).PointsTo(f.S1, pag.EmptyContext).Objects()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := cfl.New(f.Lowered.Graph, cfl.Config{Cache: cache})
			for i := 0; i < 20; i++ {
				got := s.PointsTo(f.S1, pag.EmptyContext).Objects()
				if len(got) != len(want) || got[0] != want[0] {
					errs <- "mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// TestCacheWithApproxPanics: the combination is rejected.
func TestCacheWithApproxPanics(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cfl.New(f.Lowered.Graph, cfl.Config{Cache: ptcache.New(4), Approx: &cfl.Approx{}})
}

// TestExplainIgnoresCache: witness queries bypass the cache, so
// explanations stay available after cached queries.
func TestExplainIgnoresCache(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	cache := ptcache.New(8)
	s := cfl.New(f.Lowered.Graph, cfl.Config{Cache: cache})
	s.PointsTo(f.S1, pag.EmptyContext) // warm
	steps, ok := s.Explain(f.S1, pag.EmptyContext, f.O16)
	if !ok || len(steps) < 3 {
		t.Fatalf("Explain with warm cache: %v %v", steps, ok)
	}
}
