// Package ptcache is a cross-query points-to result cache, the "ad-hoc
// caching" optimisation the paper attributes to the sequential
// implementations it builds on ([18] Sridharan-Bodik, [25] Xu et al.):
// where the jmp store shares *alias expansions*, this cache shares entire
// memoised traversal results — the points-to set of (variable, context) and
// the flows-to set of (object, context) — across queries and workers.
//
// Only results computed by queries that ran to their local fixpoint without
// exhausting their budget are published, so every cached set is the exact
// CFL answer; consulting the cache is therefore precision-neutral. Entries
// are epoch-invalidated like jmp edges, so incremental clients can reuse
// the same discipline.
package ptcache

import (
	"sync/atomic"

	"parcfl/internal/concurrent"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
)

// Direction distinguishes points-to (backward) from flows-to (forward)
// entries.
type Direction uint8

const (
	// Backward caches points-to sets of variables.
	Backward Direction = iota
	// Forward caches flows-to sets of objects.
	Forward
)

// Key identifies one cached computation.
type Key struct {
	Dir  Direction
	Node pag.NodeID
	Ctx  pag.Context
}

type entry struct {
	set   []pag.NodeCtx
	epoch int64
}

// Cache is safe for concurrent use by any number of solvers.
type Cache struct {
	m     *concurrent.Map[Key, *entry]
	epoch atomic.Int64
	// sink receives observability events; nil disables (the default). Set
	// once via SetObs before the cache is shared between goroutines.
	sink *obs.Sink

	hits      atomic.Int64
	misses    atomic.Int64
	published atomic.Int64
}

// New creates an empty cache with the given lock-stripe count.
func New(shards int) *Cache {
	if shards <= 0 {
		shards = 64
	}
	return &Cache{
		m: concurrent.NewMap[Key, *entry](shards, func(k Key) uint64 {
			h := concurrent.HashSeed
			h = concurrent.HashUint64(h, uint64(k.Dir))
			h = concurrent.HashUint64(h, uint64(k.Node))
			return concurrent.HashBytes(h, k.Ctx.Key())
		}),
	}
}

// SetObs attaches an observability sink (nil-safe). Call before the cache is
// shared between goroutines; hits and misses are traced into it.
func (c *Cache) SetObs(sink *obs.Sink) { c.sink = sink }

// Get returns the cached exact result set for k, if present in the current
// epoch. The returned slice must not be modified.
func (c *Cache) Get(k Key) ([]pag.NodeCtx, bool) {
	e, ok := c.m.Get(k)
	if !ok || e.epoch != c.epoch.Load() {
		c.misses.Add(1)
		c.sink.Add(obs.CtrCacheMisses, 1)
		c.sink.Trace(obs.EvCacheMiss, obs.NoWorker, int64(k.Node), 0)
		return nil, false
	}
	c.hits.Add(1)
	c.sink.Add(obs.CtrCacheHits, 1)
	c.sink.Trace(obs.EvCacheHit, obs.NoWorker, int64(k.Node), 0)
	return e.set, true
}

// Put publishes an exact result set for k. The slice is retained. Losing a
// put-if-absent race is fine — both publishers computed the same exact set.
func (c *Cache) Put(k Key, set []pag.NodeCtx) {
	ep := c.epoch.Load()
	for {
		existing, inserted := c.m.PutIfAbsent(k, &entry{set: set, epoch: ep})
		if inserted {
			c.sink.SetGauge(obs.GaugePtcacheEntries, c.published.Add(1))
			return
		}
		if existing.epoch == ep {
			return
		}
		if c.m.Replace(k, existing, &entry{set: set, epoch: ep}) {
			c.sink.SetGauge(obs.GaugePtcacheEntries, c.published.Add(1))
			return
		}
	}
}

// BumpEpoch lazily invalidates every entry (for incremental edits that can
// add value-flow paths).
func (c *Cache) BumpEpoch() { c.epoch.Add(1) }

// Epoch returns the current epoch.
func (c *Cache) Epoch() int64 { return c.epoch.Load() }

// Exported is the serialisable form of one cache entry (see
// internal/snapshot). Set is shared with the live entry and must be treated
// as immutable.
type Exported struct {
	Key Key
	Set []pag.NodeCtx
}

// Export returns the cache's current epoch and every entry visible in it.
// Stale-epoch entries are dropped — a snapshot never resurrects them.
func (c *Cache) Export() (epoch int64, entries []Exported) {
	epoch = c.epoch.Load()
	c.m.Range(func(k Key, e *entry) bool {
		if e.epoch == epoch {
			entries = append(entries, Exported{Key: k, Set: e.set})
		}
		return true
	})
	return epoch, entries
}

// Import warm-loads exported entries and restores the epoch. Intended for a
// fresh, quiescent cache (snapshot restore).
func (c *Cache) Import(epoch int64, entries []Exported) {
	c.epoch.Store(epoch)
	for _, x := range entries {
		e := &entry{set: x.Set, epoch: epoch}
		if _, inserted := c.m.PutIfAbsent(x.Key, e); inserted {
			c.sink.SetGauge(obs.GaugePtcacheEntries, c.published.Add(1))
		}
	}
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Published int64
	// Entries counts live entries only: entries recorded under an earlier
	// epoch are invisible to Get and are excluded here too.
	Entries int
}

// HitRate returns Hits/(Hits+Misses) (0 when no lookups happened).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Snapshot returns the current counters. Entries is computed by scanning the
// map and counting only current-epoch entries — epoch-invalidated ones stay
// physically present until their key is republished, but reporting them as
// live would overstate the cache after every BumpEpoch.
func (c *Cache) Snapshot() Stats {
	ep := c.epoch.Load()
	live := 0
	c.m.Range(func(_ Key, e *entry) bool {
		if e.epoch == ep {
			live++
		}
		return true
	})
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Published: c.published.Load(),
		Entries:   live,
	}
}
