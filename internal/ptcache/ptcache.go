// Package ptcache is a cross-query points-to result cache, the "ad-hoc
// caching" optimisation the paper attributes to the sequential
// implementations it builds on ([18] Sridharan-Bodik, [25] Xu et al.):
// where the jmp store shares *alias expansions*, this cache shares entire
// memoised traversal results — the points-to set of (variable, context) and
// the flows-to set of (object, context) — across queries and workers.
//
// Only results computed by queries that ran to their local fixpoint without
// exhausting their budget are published, so every cached set is the exact
// CFL answer; consulting the cache is therefore precision-neutral. Entries
// are epoch-invalidated like jmp edges, so incremental clients can reuse
// the same discipline.
package ptcache

import (
	"sync/atomic"

	"parcfl/internal/concurrent"
	"parcfl/internal/pag"
)

// Direction distinguishes points-to (backward) from flows-to (forward)
// entries.
type Direction uint8

const (
	// Backward caches points-to sets of variables.
	Backward Direction = iota
	// Forward caches flows-to sets of objects.
	Forward
)

// Key identifies one cached computation.
type Key struct {
	Dir  Direction
	Node pag.NodeID
	Ctx  pag.Context
}

type entry struct {
	set   []pag.NodeCtx
	epoch int64
}

// Cache is safe for concurrent use by any number of solvers.
type Cache struct {
	m     *concurrent.Map[Key, *entry]
	epoch atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	published atomic.Int64
}

// New creates an empty cache with the given lock-stripe count.
func New(shards int) *Cache {
	if shards <= 0 {
		shards = 64
	}
	return &Cache{
		m: concurrent.NewMap[Key, *entry](shards, func(k Key) uint64 {
			h := concurrent.HashSeed
			h = concurrent.HashUint64(h, uint64(k.Dir))
			h = concurrent.HashUint64(h, uint64(k.Node))
			return concurrent.HashBytes(h, k.Ctx.Key())
		}),
	}
}

// Get returns the cached exact result set for k, if present in the current
// epoch. The returned slice must not be modified.
func (c *Cache) Get(k Key) ([]pag.NodeCtx, bool) {
	e, ok := c.m.Get(k)
	if !ok || e.epoch != c.epoch.Load() {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.set, true
}

// Put publishes an exact result set for k. The slice is retained. Losing a
// put-if-absent race is fine — both publishers computed the same exact set.
func (c *Cache) Put(k Key, set []pag.NodeCtx) {
	ep := c.epoch.Load()
	for {
		existing, inserted := c.m.PutIfAbsent(k, &entry{set: set, epoch: ep})
		if inserted {
			c.published.Add(1)
			return
		}
		if existing.epoch == ep {
			return
		}
		if c.m.Replace(k, existing, &entry{set: set, epoch: ep}) {
			c.published.Add(1)
			return
		}
	}
}

// BumpEpoch lazily invalidates every entry (for incremental edits that can
// add value-flow paths).
func (c *Cache) BumpEpoch() { c.epoch.Add(1) }

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Published int64
	Entries                 int
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Published: c.published.Load(),
		Entries:   c.m.Len(),
	}
}
