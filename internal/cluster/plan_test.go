package cluster

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
	"parcfl/internal/sched"
	"parcfl/internal/server"
	"parcfl/internal/snapshot"
)

func genBench(t testing.TB) *frontend.Lowered {
	t.Helper()
	prg, err := javagen.Generate(javagen.Params{
		Name: "clustertest", Seed: 41, Containers: 3, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 12, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// TestPlanCoversEveryNodeExactlyOnce is the partition property: for any
// shard count, every node is assigned to exactly one in-range shard and the
// shard sizes sum back to the node count.
func TestPlanCoversEveryNodeExactlyOnce(t *testing.T) {
	g := genBench(t).Graph
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		p, err := BuildPlan(g, n)
		if err != nil {
			t.Fatalf("BuildPlan(%d): %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(p.NodeShards) != g.NumNodes() {
			t.Fatalf("n=%d: plan covers %d of %d nodes", n, len(p.NodeShards), g.NumNodes())
		}
		total := 0
		for s, size := range p.ShardSizes {
			if size < 0 {
				t.Fatalf("n=%d: negative size for shard %d", n, s)
			}
			total += size
		}
		if total != g.NumNodes() {
			t.Fatalf("n=%d: shard sizes sum to %d, want %d", n, total, g.NumNodes())
		}
		for v, s := range p.NodeShards {
			if s < 0 || int(s) >= n {
				t.Fatalf("n=%d: node %d assigned out-of-range shard %d", n, v, s)
			}
		}
	}
}

// TestPlanKeepsComponentsWhole: co-component nodes must always land on the
// same shard — that is the whole correctness argument for private shard
// stores.
func TestPlanKeepsComponentsWhole(t *testing.T) {
	g := genBench(t).Graph
	comp := sched.ComponentMap(g)
	for _, n := range []int{2, 4} {
		p, err := BuildPlan(g, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Matches(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		shardOf := map[int32]int32{}
		for v, c := range comp {
			if prev, ok := shardOf[c]; ok && prev != p.NodeShards[v] {
				t.Fatalf("n=%d: component %d split across shards %d and %d", n, c, prev, p.NodeShards[v])
			}
			shardOf[c] = p.NodeShards[v]
		}
	}
}

// TestPlanDeterministic: the same (graph, n) must always produce the same
// plan, byte for byte — replicas and routers built at different times have
// to agree without coordination.
func TestPlanDeterministic(t *testing.T) {
	g := genBench(t).Graph
	a, err := BuildPlan(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := BuildPlan(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rebuild %d differs", i)
		}
	}
	ea, _ := a.Encode()
	b, _ := BuildPlan(g, 4)
	eb, _ := b.Encode()
	if !bytes.Equal(ea, eb) {
		t.Fatal("encoded plans differ between identical builds")
	}
}

// TestPlanBalance: LPT placement must not leave a shard empty while another
// holds everything, as long as there are at least n components.
func TestPlanBalance(t *testing.T) {
	g := genBench(t).Graph
	p, err := BuildPlan(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumComponents < 2 {
		t.Skipf("graph has %d components; need >=2", p.NumComponents)
	}
	for s, size := range p.ShardSizes {
		if size == 0 {
			t.Fatalf("shard %d empty with %d components to place: %v", s, p.NumComponents, p.ShardSizes)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	g := genBench(t).Graph
	p, err := BuildPlan(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatal("plan changed across save/load")
	}
	// A corrupted schema must be rejected.
	got.Schema = "parcfl-shardplan/v0"
	if err := got.Validate(); err == nil {
		t.Fatal("bad schema passed validation")
	}
}

// TestShardOfVar: names resolve through the Vars table, decimal node ids
// through the fallback, and both agree with NodeShards.
func TestShardOfVar(t *testing.T) {
	g := genBench(t).Graph
	p, err := BuildPlan(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for id := 0; id < g.NumNodes() && checked < 50; id++ {
		name := g.Node(pag.NodeID(id)).Name
		if name == "" {
			continue
		}
		s, ok := p.ShardOfVar(name)
		if !ok {
			t.Fatalf("name %q did not resolve", name)
		}
		if want := p.ShardOf(pag.NodeID(id)); s != want && p.Vars[name] != int32(s) {
			t.Fatalf("name %q resolved to shard %d, node says %d", name, s, want)
		}
		checked++
	}
	if s, ok := p.ShardOfVar("7"); !ok || s != p.ShardOf(7) {
		t.Fatalf("decimal fallback: got (%d,%v), want (%d,true)", s, ok, p.ShardOf(7))
	}
	if _, ok := p.ShardOfVar("no-such-variable-zzz"); ok {
		t.Fatal("unknown name resolved")
	}
}

// TestFilterSnapshot: slicing a warm snapshot keeps exactly the entries the
// plan assigns to each shard, the slices partition the whole store, and a
// replica warm-started from its slice answers its own queries identically.
func TestFilterSnapshot(t *testing.T) {
	lo := genBench(t)
	srv := server.New(lo.Graph, server.Config{
		Threads: 2, TypeLevels: lo.TypeLevels, BatchWindow: -1, ResultCache: true,
	})
	for _, v := range lo.AppQueryVars {
		if _, err := srv.Query(context.Background(), v); err != nil {
			t.Fatal(err)
		}
	}
	full := srv.Snapshot("test")
	srv.Close()
	_, fullStore := full.Store.Export()
	_, fullCache := full.Cache.Export()
	if len(fullStore) == 0 || len(fullCache) == 0 {
		t.Fatalf("warm snapshot too cold to test: %d store, %d cache entries", len(fullStore), len(fullCache))
	}

	p, err := BuildPlan(lo.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	storeTotal, cacheTotal := 0, 0
	for shard := 0; shard < 2; shard++ {
		sliced, err := FilterSnapshot(full, p, shard)
		if err != nil {
			t.Fatal(err)
		}
		if sliced.Meta.Shard != shard || sliced.Meta.NumShards != 2 {
			t.Fatalf("slice meta %d/%d, want %d/2", sliced.Meta.Shard, sliced.Meta.NumShards, shard)
		}
		if len(sliced.ShardPlan) == 0 {
			t.Fatal("slice lost the plan")
		}
		epoch, entries := sliced.Store.Export()
		if fullEpoch, _ := full.Store.Export(); epoch != fullEpoch {
			t.Fatalf("store epoch changed: %d -> %d", fullEpoch, epoch)
		}
		for _, e := range entries {
			if p.ShardOf(e.Key.Node) != shard {
				t.Fatalf("shard %d slice holds foreign store entry for node %d", shard, e.Key.Node)
			}
		}
		storeTotal += len(entries)
		_, centries := sliced.Cache.Export()
		for _, e := range centries {
			if p.ShardOf(e.Key.Node) != shard {
				t.Fatalf("shard %d slice holds foreign cache entry for node %d", shard, e.Key.Node)
			}
		}
		cacheTotal += len(centries)

		// Round-trip the slice through the file format and warm-start a
		// shard replica from it: owned queries must answer exactly as the
		// unsharded server did.
		path := filepath.Join(t.TempDir(), "slice.pag")
		if err := snapshot.Save(path, sliced); err != nil {
			t.Fatal(err)
		}
		loaded, err := snapshot.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Meta.Shard != shard || loaded.Meta.NumShards != 2 {
			t.Fatalf("loaded slice meta %d/%d", loaded.Meta.Shard, loaded.Meta.NumShards)
		}
		lp, err := DecodePlan(loaded.ShardPlan)
		if err != nil {
			t.Fatal(err)
		}
		replica := server.NewFromSnapshot(loaded, server.Config{
			Threads: 2, BatchWindow: -1,
			ShardOf: lp.ShardOf, ShardIndex: shard, ShardCount: lp.NumShards, ShardPlan: loaded.ShardPlan,
		})
		refSrv := server.New(lo.Graph, server.Config{Threads: 2, TypeLevels: lo.TypeLevels, BatchWindow: -1})
		for _, v := range lo.AppQueryVars {
			if p.ShardOf(v) != shard {
				if _, err := replica.Query(context.Background(), v); err == nil {
					t.Fatalf("replica %d accepted foreign var %d", shard, v)
				}
				continue
			}
			got, err := replica.Query(context.Background(), v)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refSrv.Query(context.Background(), v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Objects, want.Objects) || got.Contexts != want.Contexts {
				t.Fatalf("shard %d var %d: sliced answer differs from reference", shard, v)
			}
		}
		replica.Close()
		refSrv.Close()
	}
	if storeTotal != len(fullStore) {
		t.Fatalf("store slices hold %d entries, full store %d", storeTotal, len(fullStore))
	}
	if cacheTotal != len(fullCache) {
		t.Fatalf("cache slices hold %d entries, full cache %d", cacheTotal, len(fullCache))
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("read %q", data)
	}
	dir, _ := os.ReadDir(filepath.Dir(path))
	if len(dir) != 1 {
		t.Fatalf("temp files left behind: %v", dir)
	}
}
