// Package cluster partitions the query space of a PAG across N serving
// replicas ("shards") and carries the shared plan both sides of the split
// need: the daemon side (which queries a replica owns, which slice of a warm
// snapshot it restores) and the router side (which replica a query variable
// must be sent to).
//
// The partition key is the connected component of the direct relation —
// sched.ComponentMap — because the paper's jmp edges never cross component
// boundaries: a points-to traversal rooted in one component can only ever
// read and write share-store entries keyed by nodes of that component. Two
// queries in different components therefore share no state at all, which is
// the perfectly-parallel decomposition the related on-demand data-flow work
// formalises. Assigning whole components to shards makes every shard's
// share store and result cache private by construction: no cross-shard
// coherence, no cross-shard invalidation, and a sharded cluster answers
// byte-identically to one unsharded daemon.
//
// A Plan is deterministic for a given (graph, shard count): components are
// placed largest-first onto the least-loaded shard with index tie-breaks,
// so every replica, the router, and any later rebuild agree on the
// assignment without coordination.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parcfl/internal/pag"
	"parcfl/internal/sched"
)

// PlanSchema identifies the serialized shard-plan layout.
const PlanSchema = "parcfl-shardplan/v1"

// Plan is the component-to-shard assignment for one PAG. It is the single
// source of truth for query routing: the router maps variables to shards
// with it, each replica rejects queries it does not own against it, and a
// snapshot embeds it so a warm restart restores exactly its slice.
type Plan struct {
	Schema    string `json:"schema"`
	NumShards int    `json:"num_shards"`
	NumNodes  int    `json:"num_nodes"`
	// NumComponents is the number of direct-relation components partitioned.
	NumComponents int `json:"num_components"`
	// NodeShards[v] is the shard owning node v. Every node is assigned to
	// exactly one shard; co-component nodes always share a shard.
	NodeShards []int32 `json:"node_shards"`
	// Vars maps named nodes to their shard, first-name-wins over node ids —
	// the same resolution order the daemon's HTTP surface uses — so a
	// stateless router can route by wire name without loading the graph.
	Vars map[string]int32 `json:"vars"`
	// ShardSizes[s] is the node count owned by shard s (balance diagnostic).
	ShardSizes []int `json:"shard_sizes"`
}

// BuildPlan partitions g's nodes into n shards along direct-relation
// component boundaries. Components are sorted by size descending (canonical
// representative id as tie-break) and greedily placed on the currently
// smallest shard (lowest index on ties) — the LPT rule, deterministic and
// within 4/3 of a perfectly balanced split.
func BuildPlan(g *pag.Graph, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	comp := sched.ComponentMap(g)
	numNodes := g.NumNodes()

	// Component sizes, keyed by representative node id.
	size := make(map[int32]int)
	for _, c := range comp {
		size[c]++
	}
	reps := make([]int32, 0, len(size))
	for c := range size {
		reps = append(reps, c)
	}
	sort.Slice(reps, func(i, j int) bool {
		if size[reps[i]] != size[reps[j]] {
			return size[reps[i]] > size[reps[j]]
		}
		return reps[i] < reps[j]
	})

	// LPT placement: largest component onto the least-loaded shard.
	assign := make(map[int32]int32, len(reps))
	load := make([]int, n)
	for _, c := range reps {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[c] = int32(best)
		load[best] += size[c]
	}

	p := &Plan{
		Schema:        PlanSchema,
		NumShards:     n,
		NumNodes:      numNodes,
		NumComponents: len(reps),
		NodeShards:    make([]int32, numNodes),
		Vars:          make(map[string]int32),
		ShardSizes:    load,
	}
	for v := 0; v < numNodes; v++ {
		p.NodeShards[v] = assign[comp[v]]
		if name := g.Node(pag.NodeID(v)).Name; name != "" {
			if _, ok := p.Vars[name]; !ok {
				p.Vars[name] = p.NodeShards[v]
			}
		}
	}
	return p, nil
}

// ShardOf returns the shard owning node v (-1 for out-of-range ids).
func (p *Plan) ShardOf(v pag.NodeID) int {
	if v < 0 || int(v) >= len(p.NodeShards) {
		return -1
	}
	return int(p.NodeShards[v])
}

// ShardOfVar resolves a wire-format variable (name, with decimal node id as
// fallback — the daemon's own resolution order) to its shard.
func (p *Plan) ShardOfVar(name string) (int, bool) {
	if s, ok := p.Vars[name]; ok {
		return int(s), true
	}
	var id int
	if _, err := fmt.Sscanf(name, "%d", &id); err == nil && id >= 0 && id < len(p.NodeShards) {
		return int(p.NodeShards[id]), true
	}
	return 0, false
}

// Validate checks the plan's internal invariants: schema, shard-count
// bounds, every node assigned to exactly one in-range shard, and shard
// sizes consistent with the assignment.
func (p *Plan) Validate() error {
	if p.Schema != PlanSchema {
		return fmt.Errorf("cluster: plan schema %q (this build reads %s)", p.Schema, PlanSchema)
	}
	if p.NumShards < 1 {
		return fmt.Errorf("cluster: plan has %d shards", p.NumShards)
	}
	if len(p.NodeShards) != p.NumNodes {
		return fmt.Errorf("cluster: plan covers %d nodes, header says %d", len(p.NodeShards), p.NumNodes)
	}
	sizes := make([]int, p.NumShards)
	for v, s := range p.NodeShards {
		if s < 0 || int(s) >= p.NumShards {
			return fmt.Errorf("cluster: node %d assigned to out-of-range shard %d", v, s)
		}
		sizes[s]++
	}
	if len(p.ShardSizes) != p.NumShards {
		return fmt.Errorf("cluster: plan has %d shard sizes for %d shards", len(p.ShardSizes), p.NumShards)
	}
	for s, n := range sizes {
		if p.ShardSizes[s] != n {
			return fmt.Errorf("cluster: shard %d size %d does not match assignment (%d)", s, p.ShardSizes[s], n)
		}
	}
	for name, s := range p.Vars {
		if s < 0 || int(s) >= p.NumShards {
			return fmt.Errorf("cluster: var %q assigned to out-of-range shard %d", name, s)
		}
	}
	return nil
}

// Matches verifies the plan was built for (an identical copy of) g: same
// node count, and no direct-relation component split across shards. A
// replica refuses to serve under a plan that fails this — a router working
// from a different plan would route queries to replicas that disown them.
func (p *Plan) Matches(g *pag.Graph) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if g.NumNodes() != p.NumNodes {
		return fmt.Errorf("cluster: plan built for %d nodes, graph has %d", p.NumNodes, g.NumNodes())
	}
	comp := sched.ComponentMap(g)
	shardOfComp := make(map[int32]int32, p.NumComponents)
	for v, c := range comp {
		s := p.NodeShards[v]
		if prev, ok := shardOfComp[c]; !ok {
			shardOfComp[c] = s
		} else if prev != s {
			return fmt.Errorf("cluster: component of node %d split across shards %d and %d", v, prev, s)
		}
	}
	return nil
}

// Encode serialises the plan as its canonical JSON form.
func (p *Plan) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding plan: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodePlan parses and validates a serialized plan.
func DecodePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("cluster: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// SavePlan writes the plan to path atomically.
func SavePlan(path string, p *Plan) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// LoadPlan reads and validates the plan at path.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return DecodePlan(data)
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so a concurrent reader (a smoke script polling an -addr-file, the
// router loading a plan) never observes a partial write.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
