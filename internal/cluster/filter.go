package cluster

import (
	"fmt"

	"parcfl/internal/ptcache"
	"parcfl/internal/share"
	"parcfl/internal/snapshot"
)

// FilterSnapshot slices an unsharded snapshot down to one shard's share of
// warm state: the full graph (every replica needs it to resolve names and
// validate the plan) with only the jmp-store and result-cache entries whose
// key node the plan assigns to shard. Because jmp edges never cross
// component boundaries and the plan keeps components whole, the dropped
// entries are exactly the ones this replica could never read — the slice is
// lossless for the queries the replica owns.
//
// The returned snapshot embeds the plan and stamps Meta.Shard/NumShards so
// a later warm start can verify it is restoring the slice it was given.
func FilterSnapshot(s *snapshot.Snapshot, p *Plan, shard int) (*snapshot.Snapshot, error) {
	if shard < 0 || shard >= p.NumShards {
		return nil, fmt.Errorf("cluster: shard %d out of range for %d-shard plan", shard, p.NumShards)
	}
	if s.Meta.NumShards != 0 {
		return nil, fmt.Errorf("cluster: snapshot is already sharded (%d/%d); slice from an unsharded snapshot",
			s.Meta.Shard, s.Meta.NumShards)
	}
	if err := p.Matches(s.Graph); err != nil {
		return nil, err
	}
	planBytes, err := p.Encode()
	if err != nil {
		return nil, err
	}
	out := &snapshot.Snapshot{Graph: s.Graph, Kernel: s.Kernel, ShardPlan: planBytes, Meta: s.Meta}
	out.Meta.Shard = shard
	out.Meta.NumShards = p.NumShards
	if s.Store != nil {
		epoch, entries := s.Store.Export()
		kept := entries[:0:0]
		for _, e := range entries {
			if p.ShardOf(e.Key.Node) == shard {
				kept = append(kept, e)
			}
		}
		out.Store = share.NewStore(s.Store.Config())
		out.Store.Import(epoch, kept)
	}
	if s.Cache != nil {
		epoch, entries := s.Cache.Export()
		kept := entries[:0:0]
		for _, e := range entries {
			if p.ShardOf(e.Key.Node) == shard {
				kept = append(kept, e)
			}
		}
		out.Cache = ptcache.New(64)
		out.Cache.Import(epoch, kept)
	}
	return out, nil
}
