package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"parcfl/internal/obs"
	"parcfl/internal/server"
)

// HandlerConfig wires the router's HTTP surface. The wire schema is the
// daemon's own (server.QuerySpec / server.QueryReply), so parcflq,
// parcflload and every existing client speak to a router unchanged.
type HandlerConfig struct {
	// DefaultTimeout bounds queries that do not set timeout_ms (0 means 30s).
	DefaultTimeout time.Duration
	// RetryAfter is the back-off hint sent with 503 responses when shards
	// are down (whole seconds, rounded up; 0 means 1s).
	RetryAfter time.Duration
	// Fallback serves any path the API does not claim (the router's debug
	// mux: /metrics, /debug/*).
	Fallback http.Handler
}

func (c HandlerConfig) timeout() time.Duration {
	if c.DefaultTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DefaultTimeout
}

func (c HandlerConfig) retryAfterSeconds() int {
	d := c.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

type apiHandler struct {
	rt  *Router
	cfg HandlerConfig
}

// NewHandler returns the router's HTTP handler: /v1/query, /v1/vars,
// /v1/stats (cluster-summed), /v1/cluster and /v1/cluster/slo, with
// everything else delegated to cfg.Fallback.
func NewHandler(rt *Router, cfg HandlerConfig) http.Handler {
	h := &apiHandler{rt: rt, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", h.handleQuery)
	mux.HandleFunc("/v1/vars", h.handleVars)
	mux.HandleFunc("/v1/stats", h.handleStats)
	mux.HandleFunc("/v1/cluster", h.handleCluster)
	mux.HandleFunc("/v1/cluster/slo", h.handleClusterSLO)
	if cfg.Fallback != nil {
		mux.Handle("/", cfg.Fallback)
		// When the fallback is the standard debug mux, list the API routes in
		// its generated "/" index too — the index exists so no mounted route
		// can be missing from it, and the router's own routes are no
		// exception. The top-level mux still dispatches them; the duplicate
		// registration below is only ever reached through the index.
		if dm, ok := cfg.Fallback.(*obs.DebugMux); ok {
			dm.Handle("/v1/query", "routed points-to query (POST; plan-split fanout across shards)", http.HandlerFunc(h.handleQuery))
			dm.Handle("/v1/vars", "query-variable census (proxied from a healthy shard)", http.HandlerFunc(h.handleVars))
			dm.Handle("/v1/stats", "cluster-summed service stats", http.HandlerFunc(h.handleStats))
			dm.Handle("/v1/cluster", "shard health/latency rollup (parcfl-cluster/v1)", http.HandlerFunc(h.handleCluster))
			dm.Handle("/v1/cluster/slo", "per-shard SLO burn rates side by side", http.HandlerFunc(h.handleClusterSLO))
		}
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorReply struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorReply{Error: err.Error()})
}

func (h *apiHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var spec server.QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	names := spec.Vars
	if spec.Var != "" {
		names = append([]string{spec.Var}, names...)
	}
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no var(s) given"))
		return
	}
	// Resolve everything up front so an unknown variable is a clean 404,
	// never a wasted fanout.
	for _, name := range names {
		if _, ok := h.rt.plan.ShardOfVar(name); !ok {
			writeErr(w, http.StatusNotFound, errors.New("unknown variable "+name))
			return
		}
	}
	timeout := h.cfg.timeout()
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	seq := h.rt.NextSeq()
	rid := r.Header.Get(server.RequestIDHeader)
	if rid == "" {
		rid = FallbackRID(seq)
	}
	// Same join-or-mint trace policy as the daemon: the router keeps the
	// caller's trace id under a fresh span id, and forwards the SAME
	// traceparent to every shard, so router fanout spans and shard serve
	// spans share one trace.
	tp, traced := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
	if traced {
		tp.SpanID = obs.MintSpanID()
	} else {
		tp = obs.MintTraceParent()
	}
	w.Header().Set(obs.TraceParentHeader, tp.String())
	w.Header().Set(server.RequestIDHeader, rid)

	reply, failed, err := h.rt.route(ctx, seq, rid, tp.String(), names, timeout, spec.AllowPartial)
	totalNS := time.Since(start).Nanoseconds()
	h.rt.sink.Observe(obs.HistServerLatencyNS, totalNS)
	h.rt.sink.Exemplar(obs.HistServerLatencyNS, totalNS, rid, seq)
	if err != nil {
		class := obs.ClassError
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
			class = obs.ClassDeadline
		case errors.Is(err, server.ErrOverloaded):
			status = http.StatusTooManyRequests
			class = obs.ClassOverload
			w.Header().Set("Retry-After", strconv.Itoa(h.cfg.retryAfterSeconds()))
		case failed > 0:
			// Shards down: shed with an explicit come-back hint — the health
			// prober readmits a recovered shard within one interval.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(h.cfg.retryAfterSeconds()))
		}
		h.rt.sink.SLO().Record(class, totalNS)
		writeErr(w, status, err)
		return
	}
	h.rt.sink.SLO().Record(obs.ClassSuccess, totalNS)
	reply.RequestID = rid
	reply.TraceID = tp.TraceID
	writeJSON(w, http.StatusOK, reply)
}

// handleVars proxies the census from a healthy shard: every replica loads
// the full graph and census, so any one of them can answer for the cluster.
func (h *apiHandler) handleVars(w http.ResponseWriter, r *http.Request) {
	vars, err := h.rt.firstUp().client.Vars(r.Context())
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, server.VarsReply{Vars: vars})
}

func (h *apiHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := h.rt.SumStats(r.Context())
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *apiHandler) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.rt.Status())
}

func (h *apiHandler) handleClusterSLO(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	writeJSON(w, http.StatusOK, struct {
		Schema string        `json:"schema"`
		Shards []ShardSLORow `json:"shards"`
	}{Schema: "parcfl-cluster-slo/v1", Shards: h.rt.SLOFanout(ctx)})
}
