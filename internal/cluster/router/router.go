// Package router is the stateless front of a sharded parcfl cluster: it
// holds no graph and no solver — only a shard plan and the addresses of the
// replicas — so any number of interchangeable router processes can sit in
// front of the same shard set.
//
// A query batch is split by the plan into per-shard sub-batches (all
// variables one shard owns travel as one coalesced subrequest, so the
// shard's micro-batcher still sees a real batch), fanned out with bounded
// concurrency, per-shard deadlines and overload retries, and merged back
// positionally. Request identity propagates whole: the client's
// X-Parcfl-Request-Id and W3C traceparent are forwarded to every shard, so
// one routed request renders as router + shard lanes in a single Perfetto
// trace.
//
// Failure degrades by policy, not by accident: with every shard down the
// router sheds with 503 + Retry-After; with some shards down a request that
// set allow_partial gets the reachable answers (Partial/Missing marked),
// and everyone else gets the 503.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parcfl/internal/cluster"
	"parcfl/internal/obs"
	"parcfl/internal/server"
)

// ClusterSchema identifies the /v1/cluster rollup payload.
const ClusterSchema = "parcfl-cluster/v1"

// Config wires a Router.
type Config struct {
	// Plan maps query variables to shards; required.
	Plan *cluster.Plan
	// Shards are the replica base URLs, indexed by shard
	// (len must equal Plan.NumShards).
	Shards []string
	// MaxFanout bounds concurrent per-shard subrequests per routed request
	// (0 means all shards at once).
	MaxFanout int
	// ShardTimeout bounds each per-shard subrequest (0 means 10s).
	ShardTimeout time.Duration
	// RetryAttempts is the per-shard overload retry budget, including the
	// first try (0 means 3; negative disables retries).
	RetryAttempts int
	// HealthInterval is the background shard probe period (0 means 2s;
	// negative disables the prober — request outcomes still update health).
	HealthInterval time.Duration
	// Obs receives router metrics and spans (nil disables). The router
	// registers its per-shard rollup series on the sink's /metrics via
	// SetPromExtra.
	Obs *obs.Sink
	// HTTPClient is used for all shard traffic (nil means a dedicated
	// client with sane connection pooling).
	HTTPClient *http.Client
}

func (c Config) shardTimeout() time.Duration {
	if c.ShardTimeout <= 0 {
		return 10 * time.Second
	}
	return c.ShardTimeout
}

func (c Config) retryAttempts() int {
	if c.RetryAttempts == 0 {
		return 3
	}
	if c.RetryAttempts < 0 {
		return 1
	}
	return c.RetryAttempts
}

// shardState is the router's view of one replica.
type shardState struct {
	addr   string
	client *server.Client // retry-wrapped

	up       atomic.Bool
	lastErr  atomic.Pointer[string]
	requests atomic.Int64 // subrequests issued to this shard
	errors   atomic.Int64 // subrequests failed after retries
	lat      obs.LocalHist
}

func (ss *shardState) setHealth(up bool, err error) {
	ss.up.Store(up)
	if err != nil {
		msg := err.Error()
		ss.lastErr.Store(&msg)
	} else if up {
		ss.lastErr.Store(nil)
	}
}

// Router routes queries across the shard set. Create with New; all methods
// are safe for concurrent use.
type Router struct {
	cfg    Config
	plan   *cluster.Plan
	shards []*shardState
	sink   *obs.Sink
	hc     *http.Client
	seq    atomic.Int64 // routed-request sequence (trace lane identity)
	start  time.Time

	stopHealth chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once
}

// New builds a router over cfg and starts its health prober. The per-shard
// rollup series are registered on cfg.Obs's /metrics exposition.
func New(cfg Config) (*Router, error) {
	if cfg.Plan == nil {
		return nil, errors.New("router: nil plan")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Shards) != cfg.Plan.NumShards {
		return nil, fmt.Errorf("router: plan has %d shards, %d addresses given",
			cfg.Plan.NumShards, len(cfg.Shards))
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	rt := &Router{
		cfg: cfg, plan: cfg.Plan, sink: cfg.Obs, hc: hc, start: time.Now(),
		stopHealth: make(chan struct{}), healthDone: make(chan struct{}),
	}
	retry := server.RetryPolicy{MaxAttempts: cfg.retryAttempts(), BaseDelay: 25 * time.Millisecond}
	for i, addr := range cfg.Shards {
		if addr == "" {
			return nil, fmt.Errorf("router: empty address for shard %d", i)
		}
		ss := &shardState{addr: addr, client: server.NewClient(addr, hc).WithRetry(retry)}
		ss.up.Store(true) // optimistic until the first probe or request says otherwise
		rt.shards = append(rt.shards, ss)
	}
	rt.sink.SetGauge(obs.GaugeClusterShards, int64(len(rt.shards)))
	rt.sink.SetGauge(obs.GaugeClusterShardsUp, int64(len(rt.shards)))
	rt.sink.SetPromExtra(rt.writeShardMetrics)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health prober. In-flight requests finish normally.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.stopHealth)
		<-rt.healthDone
	})
}

// Plan returns the router's shard plan.
func (rt *Router) Plan() *cluster.Plan { return rt.plan }

// healthLoop probes every shard's /v1/stats on the configured period.
// Request outcomes update health too; the prober exists so a dead shard is
// noticed (and a recovered one readmitted) without waiting for live
// traffic to hit it.
func (rt *Router) healthLoop() {
	defer close(rt.healthDone)
	interval := rt.cfg.HealthInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	if interval < 0 {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopHealth:
			return
		case <-tick.C:
			rt.probeAll(interval)
		}
	}
}

func (rt *Router) probeAll(interval time.Duration) {
	var wg sync.WaitGroup
	for _, ss := range rt.shards {
		wg.Add(1)
		go func(ss *shardState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			defer cancel()
			_, err := ss.client.Stats(ctx)
			ss.setHealth(err == nil, err)
		}(ss)
	}
	wg.Wait()
	rt.publishShardsUp()
}

func (rt *Router) publishShardsUp() {
	up := int64(0)
	for _, ss := range rt.shards {
		if ss.up.Load() {
			up++
		}
	}
	rt.sink.SetGauge(obs.GaugeClusterShardsUp, up)
}

// shardCall is one per-shard subrequest's outcome.
type shardCall struct {
	shard     int
	positions []int // indices into the routed request's name list
	reply     server.QueryReply
	err       error
}

// route answers one query batch: split by plan, fan out, merge. names must
// be non-empty and fully resolvable (the caller 404s unknowns first); seq
// is the routed-request sequence the caller minted with NextSeq.
func (rt *Router) route(ctx context.Context, seq int64, rid, traceparent string, names []string, timeout time.Duration, allowPartial bool) (server.QueryReply, int, error) {
	startNS := rt.sink.SpanStart()

	// Group positions by owning shard; iteration order is made deterministic
	// so retries and traces are reproducible.
	byShard := make(map[int][]int)
	for i, name := range names {
		s, ok := rt.plan.ShardOfVar(name)
		if !ok {
			return server.QueryReply{}, 0, fmt.Errorf("router: unresolvable variable %q", name)
		}
		byShard[s] = append(byShard[s], i)
	}
	order := make([]int, 0, len(byShard))
	for s := range byShard {
		order = append(order, s)
	}
	sort.Ints(order)

	rt.sink.Add(obs.CtrClusterRequests, 1)
	rt.sink.Add(obs.CtrClusterFanouts, int64(len(order)))
	rt.sink.SetGauge(obs.GaugeClusterFanoutWidth, int64(len(order)))

	// Bounded fanout: same-shard variables already coalesced into one
	// subrequest; at most MaxFanout subrequests run concurrently.
	sem := make(chan struct{}, maxFanout(rt.cfg.MaxFanout, len(order)))
	calls := make([]shardCall, len(order))
	var wg sync.WaitGroup
	for ci, s := range order {
		wg.Add(1)
		go func(ci, s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ss := rt.shards[s]
			positions := byShard[s]
			sub := make([]string, len(positions))
			for i, p := range positions {
				sub[i] = names[p]
			}
			callCtx, cancel := context.WithTimeout(ctx, rt.cfg.shardTimeout())
			defer cancel()
			callStartNS := rt.sink.SpanStart()
			callStart := time.Now()
			ss.requests.Add(1)
			reply, err := ss.client.QueryTraced(callCtx, rid, traceparent, sub, timeout)
			ss.lat.Observe(time.Since(callStart).Nanoseconds())
			outcome := int64(0)
			if err != nil {
				ss.errors.Add(1)
				rt.sink.Add(obs.CtrClusterShardErrors, 1)
				outcome = 3
				if errors.Is(err, context.DeadlineExceeded) {
					outcome = 2
				} else if errors.Is(err, server.ErrOverloaded) {
					outcome = 1
				}
			}
			// One fanout span per subrequest on the routed request's lane:
			// the router-side cost of shard s, next to the shard's own serve
			// span when both trace files are merged by rid.
			rt.sink.Span(obs.SpanFanout, obs.NoWorker, callStartNS, seq, int64(s), outcome)
			ss.setHealth(err == nil || outcome == 1, err) // overload is alive, just busy
			calls[ci] = shardCall{shard: s, positions: byShard[s], reply: reply, err: err}
		}(ci, s)
	}
	wg.Wait()
	rt.publishShardsUp()

	// Merge positionally; failed shards leave Failed placeholders.
	out := server.QueryReply{Results: make([]server.VarResult, len(names))}
	failed := 0
	for _, call := range calls {
		if call.err != nil {
			failed++
			for _, p := range call.positions {
				out.Results[p] = server.VarResult{Var: names[p], Failed: true}
				out.Missing = append(out.Missing, names[p])
			}
			continue
		}
		for i, p := range call.positions {
			out.Results[p] = call.reply.Results[i]
		}
	}
	rt.sink.Span(obs.SpanServe, obs.NoWorker, startNS, seq, seq, serveOutcome(failed, len(order)))
	switch {
	case failed == 0:
	case failed == len(order) || !allowPartial:
		// Nothing useful to return, or the client wants all-or-nothing.
		err := calls[firstFailed(calls)].err
		return out, failed, fmt.Errorf("router: %d/%d shards failed: %w", failed, len(order), err)
	default:
		sort.Strings(out.Missing)
		out.Partial = true
		rt.sink.Add(obs.CtrClusterPartial, 1)
	}
	return out, failed, nil
}

func maxFanout(cfgMax, width int) int {
	if cfgMax > 0 && cfgMax < width {
		return cfgMax
	}
	if width < 1 {
		return 1
	}
	return width
}

func serveOutcome(failed, total int) int64 {
	if failed == 0 {
		return 0
	}
	if failed == total {
		return 3
	}
	return 1
}

func firstFailed(calls []shardCall) int {
	for i, c := range calls {
		if c.err != nil {
			return i
		}
	}
	return 0
}

// ShardStatus is one replica's row in the /v1/cluster rollup.
type ShardStatus struct {
	Index     int    `json:"index"`
	Addr      string `json:"addr"`
	Up        bool   `json:"up"`
	LastError string `json:"last_error,omitempty"`
	// Nodes is the node count the plan assigns to this shard.
	Nodes int `json:"nodes"`
	// Requests/Errors count router-issued subrequests (not shard-side
	// admissions; coalescing makes those smaller).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// P50NS/P99NS summarise router-observed subrequest latency.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
}

// ClusterStatus is the /v1/cluster payload: plan summary plus live health.
type ClusterStatus struct {
	Schema        string        `json:"schema"`
	NumShards     int           `json:"num_shards"`
	ShardsUp      int           `json:"shards_up"`
	NumNodes      int           `json:"num_nodes"`
	NumComponents int           `json:"num_components"`
	UptimeNS      int64         `json:"uptime_ns"`
	Shards        []ShardStatus `json:"shards"`
}

// Status reports the cluster rollup.
func (rt *Router) Status() ClusterStatus {
	st := ClusterStatus{
		Schema: ClusterSchema, NumShards: len(rt.shards),
		NumNodes: rt.plan.NumNodes, NumComponents: rt.plan.NumComponents,
		UptimeNS: time.Since(rt.start).Nanoseconds(),
	}
	for i, ss := range rt.shards {
		hs := ss.lat.Snapshot()
		row := ShardStatus{
			Index: i, Addr: ss.addr, Up: ss.up.Load(), Nodes: rt.plan.ShardSizes[i],
			Requests: ss.requests.Load(), Errors: ss.errors.Load(),
			P50NS: hs.Quantile(0.50), P99NS: hs.Quantile(0.99),
		}
		if msg := ss.lastErr.Load(); msg != nil {
			row.LastError = *msg
		}
		if row.Up {
			st.ShardsUp++
		}
		st.Shards = append(st.Shards, row)
	}
	return st
}

// writeShardMetrics is the sink's extra-series hook: the per-shard rollup
// as labelled families next to the enumerated parcfl_cluster_* scalars.
func (rt *Router) writeShardMetrics(w io.Writer) {
	st := rt.Status()
	pf := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	pf("# HELP parcfl_cluster_shard_up Shard passes the router's health probe (by shard).\n")
	pf("# TYPE parcfl_cluster_shard_up gauge\n")
	for _, s := range st.Shards {
		up := 0
		if s.Up {
			up = 1
		}
		pf("parcfl_cluster_shard_up{shard=\"%d\"} %d\n", s.Index, up)
	}
	pf("# HELP parcfl_cluster_shard_requests_total Subrequests the router issued, by shard.\n")
	pf("# TYPE parcfl_cluster_shard_requests_total counter\n")
	for _, s := range st.Shards {
		pf("parcfl_cluster_shard_requests_total{shard=\"%d\"} %d\n", s.Index, s.Requests)
	}
	pf("# HELP parcfl_cluster_shard_errors_total Subrequests failed after retries, by shard.\n")
	pf("# TYPE parcfl_cluster_shard_errors_total counter\n")
	for _, s := range st.Shards {
		pf("parcfl_cluster_shard_errors_total{shard=\"%d\"} %d\n", s.Index, s.Errors)
	}
	pf("# HELP parcfl_cluster_shard_p99_ns Router-observed p99 subrequest latency, by shard.\n")
	pf("# TYPE parcfl_cluster_shard_p99_ns gauge\n")
	for _, s := range st.Shards {
		pf("parcfl_cluster_shard_p99_ns{shard=\"%d\"} %d\n", s.Index, s.P99NS)
	}
	pf("# HELP parcfl_cluster_shard_p50_ns Router-observed median subrequest latency, by shard.\n")
	pf("# TYPE parcfl_cluster_shard_p50_ns gauge\n")
	for _, s := range st.Shards {
		pf("parcfl_cluster_shard_p50_ns{shard=\"%d\"} %d\n", s.Index, s.P50NS)
	}
}

// firstUp returns a healthy shard to proxy shard-agnostic reads to
// (falling back to shard 0 when everything looks down — the proxied call
// will report the real error).
func (rt *Router) firstUp() *shardState {
	for _, ss := range rt.shards {
		if ss.up.Load() {
			return ss
		}
	}
	return rt.shards[0]
}

// SumStats fetches every reachable shard's /v1/stats and sums the scalar
// fields into one cluster-wide view (share/cache roll up too — the stores
// are disjoint by construction, so sums are exact). UptimeNS reports the
// router's own uptime.
func (rt *Router) SumStats(ctx context.Context) (server.Stats, error) {
	var out server.Stats
	var firstErr error
	reached := 0
	for _, ss := range rt.shards {
		st, err := ss.client.Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		out.Requests += st.Requests
		out.Coalesced += st.Coalesced
		out.Rejected += st.Rejected
		out.Timeouts += st.Timeouts
		out.Batches += st.Batches
		out.Queries += st.Queries
		out.Completed += st.Completed
		out.Aborted += st.Aborted
		out.TotalSteps += st.TotalSteps
		out.StepsSaved += st.StepsSaved
		out.JumpsTaken += st.JumpsTaken
		out.EngineNS += st.EngineNS
		out.Share.FinishedAdded += st.Share.FinishedAdded
		out.Share.UnfinishedAdded += st.Share.UnfinishedAdded
		out.Share.FinishedSuppressed += st.Share.FinishedSuppressed
		out.Share.UnfinishedSuppressed += st.Share.UnfinishedSuppressed
		out.Share.InsertLost += st.Share.InsertLost
		out.Share.Lookups += st.Share.Lookups
		out.Share.LookupHits += st.Share.LookupHits
		out.Cache.Hits += st.Cache.Hits
		out.Cache.Misses += st.Cache.Misses
		out.Cache.Published += st.Cache.Published
		out.Cache.Entries += st.Cache.Entries
		if st.StoreEpoch > out.StoreEpoch {
			out.StoreEpoch = st.StoreEpoch
		}
	}
	if reached == 0 {
		return server.Stats{}, fmt.Errorf("router: no shard reachable: %w", firstErr)
	}
	out.UptimeNS = time.Since(rt.start).Nanoseconds()
	return out, nil
}

// ShardSLO fetches one shard's /debug/slo payload verbatim.
func (rt *Router) shardSLO(ctx context.Context, ss *shardState) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ss.addr+"/debug/slo", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: shard %s: %s", ss.addr, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return json.RawMessage(body), nil
}

// ShardSLORow is one shard's entry in the /v1/cluster/slo fanout.
type ShardSLORow struct {
	Index int             `json:"index"`
	Addr  string          `json:"addr"`
	Error string          `json:"error,omitempty"`
	SLO   json.RawMessage `json:"slo,omitempty"`
}

// SLOFanout collects every shard's /debug/slo state (per-shard burn rates
// side by side — a single hot shard shows up here long before the summed
// stats move).
func (rt *Router) SLOFanout(ctx context.Context) []ShardSLORow {
	rows := make([]ShardSLORow, len(rt.shards))
	var wg sync.WaitGroup
	for i, ss := range rt.shards {
		wg.Add(1)
		go func(i int, ss *shardState) {
			defer wg.Done()
			rows[i] = ShardSLORow{Index: i, Addr: ss.addr}
			slo, err := rt.shardSLO(ctx, ss)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].SLO = slo
		}(i, ss)
	}
	wg.Wait()
	return rows
}

// NextSeq mints the next routed-request sequence number; its string form
// ("rtr-N") doubles as the request ID for clients that sent none, in the
// same style the daemon's "srv-N" fallback uses.
func (rt *Router) NextSeq() int64 { return rt.seq.Add(1) }

// FallbackRID renders seq as the router-minted request ID.
func FallbackRID(seq int64) string { return "rtr-" + strconv.FormatInt(seq, 10) }
