package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parcfl/internal/cluster"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/obs"
	"parcfl/internal/server"
)

func genBench(t testing.TB) *frontend.Lowered {
	t.Helper()
	prg, err := javagen.Generate(javagen.Params{
		Name: "routertest", Seed: 41, Containers: 3, CallDepth: 3,
		PayloadClasses: 4, PayloadFieldDepth: 3, AppMethods: 12, OpsPerApp: 12,
		Globals: 3, AppCallFanout: 1, HubFields: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := frontend.Lower(prg)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// startShard runs one shard replica as an in-process HTTP server.
func startShard(t *testing.T, lo *frontend.Lowered, p *cluster.Plan, shard int) *httptest.Server {
	t.Helper()
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(lo.Graph, server.Config{
		Threads: 1, TypeLevels: lo.TypeLevels, QueryVars: lo.AppQueryVars,
		BatchWindow: -1, ResultCache: true,
		ShardOf: p.ShardOf, ShardIndex: shard, ShardCount: p.NumShards, ShardPlan: enc,
	})
	hs := httptest.NewServer(server.NewHandler(srv, server.HandlerConfig{}))
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return hs
}

// startCluster stands up n shards plus a router and returns the router's
// HTTP server, the router itself and the shard servers.
func startCluster(t *testing.T, lo *frontend.Lowered, n int) (*httptest.Server, *Router, []*httptest.Server) {
	t.Helper()
	p, err := cluster.BuildPlan(lo.Graph, n)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		shards[i] = startShard(t, lo, p, i)
		addrs[i] = shards[i].URL
	}
	sink := obs.New(obs.Config{Workers: 1})
	rt, err := New(Config{
		Plan: p, Shards: addrs, Obs: sink,
		HealthInterval: -1, // deterministic tests: health comes from request outcomes
		RetryAttempts:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	hs := httptest.NewServer(NewHandler(rt, HandlerConfig{Fallback: obs.NewDebugMux(sink)}))
	t.Cleanup(hs.Close)
	return hs, rt, shards
}

// varNames maps the app query vars to their census names.
func varNames(lo *frontend.Lowered) []string {
	names := make([]string, 0, len(lo.AppQueryVars))
	for _, v := range lo.AppQueryVars {
		names = append(names, lo.Graph.Node(v).Name)
	}
	return names
}

// normalize reduces query results to the deterministic fields — the same
// projection scripts/cluster_smoke.sh compares — and marshals them, so
// equivalence is a byte comparison.
func normalize(t *testing.T, results []server.VarResult) []byte {
	t.Helper()
	type row struct {
		Var      string   `json:"var"`
		Objects  []string `json:"objects"`
		Contexts int      `json:"contexts"`
		Aborted  bool     `json:"aborted"`
	}
	rows := make([]row, len(results))
	for i, r := range results {
		rows[i] = row{Var: r.Var, Objects: r.Objects, Contexts: r.Contexts, Aborted: r.Aborted}
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterEquivalence is the acceptance property: the same query batch
// answered through a 2-shard and a 4-shard cluster must normalize to bytes
// identical to a single unsharded daemon's answers.
func TestClusterEquivalence(t *testing.T) {
	lo := genBench(t)
	names := varNames(lo)

	single := server.New(lo.Graph, server.Config{
		Threads: 1, TypeLevels: lo.TypeLevels, QueryVars: lo.AppQueryVars,
		BatchWindow: -1, ResultCache: true,
	})
	singleHS := httptest.NewServer(server.NewHandler(single, server.HandlerConfig{}))
	defer func() { singleHS.Close(); single.Close() }()
	want, err := server.NewClient(singleHS.URL, nil).Query(context.Background(), names, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := normalize(t, want)

	for _, n := range []int{2, 4} {
		hs, _, _ := startCluster(t, lo, n)
		got, err := server.NewClient(hs.URL, nil).Query(context.Background(), names, 30*time.Second)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if gotBytes := normalize(t, got); !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("n=%d: sharded answers differ from single daemon\n got: %s\nwant: %s", n, gotBytes, wantBytes)
		}
	}
}

// TestShardRejectsForeignVar: a shard replica queried directly for a
// variable it does not own must answer 421 with the owning shard, surfaced
// client-side as a typed MisdirectedError.
func TestShardRejectsForeignVar(t *testing.T) {
	lo := genBench(t)
	p, err := cluster.BuildPlan(lo.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := startShard(t, lo, p, 0)
	c := server.NewClient(hs.URL, nil)
	checkedForeign := false
	for _, name := range varNames(lo) {
		owner, ok := p.ShardOfVar(name)
		if !ok {
			t.Fatalf("unresolvable var %q", name)
		}
		if owner == 0 {
			if _, err := c.Query(context.Background(), []string{name}, time.Second); err != nil {
				t.Fatalf("owned var %q rejected: %v", name, err)
			}
			continue
		}
		_, err := c.Query(context.Background(), []string{name}, time.Second)
		var me *server.MisdirectedError
		if !errors.As(err, &me) {
			t.Fatalf("foreign var %q: got %v, want MisdirectedError", name, err)
		}
		if me.Shard != owner || me.Shards != 2 {
			t.Fatalf("foreign var %q: redirect says %d/%d, want %d/2", name, me.Shard, me.Shards, owner)
		}
		checkedForeign = true
	}
	if !checkedForeign {
		t.Fatal("plan put every app var on shard 0; cannot test misdirection")
	}
}

// postQuery sends a raw /v1/query and returns status, headers and decoded reply.
func postQuery(t *testing.T, url string, spec server.QuerySpec) (int, http.Header, server.QueryReply) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply server.QueryReply
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &reply)
	return resp.StatusCode, resp.Header, reply
}

// TestShardDownDegradation: with one shard dead, all-or-nothing requests
// shed with 503 + Retry-After while allow_partial requests get the
// reachable answers with Partial/Missing marked.
func TestShardDownDegradation(t *testing.T) {
	lo := genBench(t)
	hs, rt, shards := startCluster(t, lo, 2)
	names := varNames(lo)
	p := rt.Plan()
	var mine, dead []string
	for _, name := range names {
		if s, _ := p.ShardOfVar(name); s == 0 {
			mine = append(mine, name)
		} else {
			dead = append(dead, name)
		}
	}
	if len(mine) == 0 || len(dead) == 0 {
		t.Fatalf("need vars on both shards, got %d/%d", len(mine), len(dead))
	}
	shards[1].Close()

	// All-or-nothing: one dead shard fails the whole batch with 503.
	status, hdr, _ := postQuery(t, hs.URL, server.QuerySpec{Vars: []string{mine[0], dead[0]}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-or-nothing with dead shard: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After hint")
	}

	// Partial: reachable answers come back, dead slots are marked.
	status, _, reply := postQuery(t, hs.URL, server.QuerySpec{
		Vars: []string{mine[0], dead[0]}, AllowPartial: true,
	})
	if status != http.StatusOK {
		t.Fatalf("partial query: status %d, want 200", status)
	}
	if !reply.Partial {
		t.Fatal("degraded reply not marked Partial")
	}
	if len(reply.Missing) != 1 || reply.Missing[0] != dead[0] {
		t.Fatalf("Missing = %v, want [%s]", reply.Missing, dead[0])
	}
	if reply.Results[0].Failed || len(reply.Results[0].Objects) == 0 {
		t.Fatalf("live slot unusable: %+v", reply.Results[0])
	}
	if !reply.Results[1].Failed {
		t.Fatalf("dead slot not marked Failed: %+v", reply.Results[1])
	}

	// Everything the request needs is down: partial cannot help, still 503.
	status, _, _ = postQuery(t, hs.URL, server.QuerySpec{Vars: []string{dead[0]}, AllowPartial: true})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-shards-dead partial: status %d, want 503", status)
	}

	// The rollup must reflect the dead shard.
	st := rt.Status()
	if st.ShardsUp != 1 || st.Shards[1].Up {
		t.Fatalf("status says %d up, shard1.up=%v; want 1 up, shard 1 down", st.ShardsUp, st.Shards[1].Up)
	}
}

// TestRouterRollup: /v1/cluster, /v1/stats and the /metrics exposition all
// reflect routed traffic.
func TestRouterRollup(t *testing.T) {
	lo := genBench(t)
	hs, _, _ := startCluster(t, lo, 2)
	names := varNames(lo)
	c := server.NewClient(hs.URL, nil)
	if _, err := c.Query(context.Background(), names, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Schema != ClusterSchema || st.NumShards != 2 || st.ShardsUp != 2 {
		t.Fatalf("bad rollup: %+v", st)
	}
	for _, row := range st.Shards {
		if row.Requests == 0 {
			t.Fatalf("shard %d saw no subrequests after a full-census query", row.Index)
		}
	}

	// Summed stats must account for every variable exactly once.
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries < int64(len(names)) {
		t.Fatalf("summed stats report %d queries for %d vars", stats.Queries, len(names))
	}

	// The per-shard rollup series ride the standard exposition.
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"parcfl_cluster_requests_total",
		"parcfl_cluster_shards_up 2",
		`parcfl_cluster_shard_up{shard="0"} 1`,
		`parcfl_cluster_shard_requests_total{shard="1"}`,
		`parcfl_cluster_shard_p99_ns{shard="0"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestRouterUnknownVar: unresolvable names are a clean 404 before any fanout.
func TestRouterUnknownVar(t *testing.T) {
	lo := genBench(t)
	hs, rt, _ := startCluster(t, lo, 2)
	status, _, _ := postQuery(t, hs.URL, server.QuerySpec{Vars: []string{"no-such-var-zzz"}})
	if status != http.StatusNotFound {
		t.Fatalf("unknown var: status %d, want 404", status)
	}
	if got := rt.Status().Shards[0].Requests + rt.Status().Shards[1].Requests; got != 0 {
		t.Fatalf("unknown var caused %d subrequests", got)
	}
}

// TestRouterTracePropagation: a caller-supplied traceparent keeps its trace
// id through the router, and request IDs echo back.
func TestRouterTracePropagation(t *testing.T) {
	lo := genBench(t)
	hs, _, _ := startCluster(t, lo, 2)
	names := varNames(lo)
	tp := obs.MintTraceParent()
	reply, err := server.NewClient(hs.URL, nil).QueryTraced(
		context.Background(), "req-42", tp.String(), names[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.RequestID != "req-42" {
		t.Fatalf("request id %q, want req-42", reply.RequestID)
	}
	if reply.TraceID != tp.TraceID {
		t.Fatalf("trace id %q, want %q", reply.TraceID, tp.TraceID)
	}
}
