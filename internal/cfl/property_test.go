package cfl

import (
	"testing"

	"parcfl/internal/andersen"
	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
	"parcfl/internal/share"
)

// lowerRandom generates and lowers a random program; generation is total, so
// any failure is a bug.
func lowerRandom(t *testing.T, seed int64) *frontend.Lowered {
	t.Helper()
	p := randprog.Generate(seed, randprog.DefaultLimits())
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return lo
}

const propertySeeds = 60

// TestPropertySoundnessVsAndersen: on random programs, every unbudgeted
// demand answer (projected to objects) is a subset of Andersen's
// whole-program, context-insensitive answer.
func TestPropertySoundnessVsAndersen(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		lo := lowerRandom(t, seed)
		and := andersen.Analyze(lo.Graph)
		s := New(lo.Graph, Config{})
		for _, v := range lo.AppQueryVars {
			r := s.PointsTo(v, pag.EmptyContext)
			if r.Aborted {
				t.Fatalf("seed %d: unbudgeted query aborted", seed)
			}
			super := and.PointsToSet(v)
			for _, o := range r.Objects() {
				if !super[o] {
					t.Fatalf("seed %d: CFL %s -> %s not in Andersen set",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
				}
			}
		}
	}
}

// TestPropertyFlowsToInverse: with empty query contexts (which permit
// partially balanced paths in both directions), o ∈ pts(v) iff v ∈ fls(o).
func TestPropertyFlowsToInverse(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		lo := lowerRandom(t, seed)
		s := New(lo.Graph, Config{})

		// Forward index: object -> reached variables.
		fls := map[pag.NodeID]map[pag.NodeID]bool{}
		for _, o := range lo.Graph.Objects() {
			r := s.FlowsTo(o, pag.EmptyContext)
			set := map[pag.NodeID]bool{}
			for _, nc := range r.PointsTo {
				set[nc.Node] = true
			}
			fls[o] = set
		}
		for _, v := range lo.Graph.Variables() {
			r := s.PointsTo(v, pag.EmptyContext)
			ptsSet := map[pag.NodeID]bool{}
			for _, oc := range r.PointsTo {
				ptsSet[oc.Node] = true
			}
			for _, o := range lo.Graph.Objects() {
				if ptsSet[o] != fls[o][v] {
					t.Fatalf("seed %d: inverse mismatch: pts(%s)∋%s = %v but fls∋ = %v",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name, ptsSet[o], fls[o][v])
				}
			}
		}
	}
}

// TestPropertyBudgetMonotone: for the deterministic sequential solver, a
// query that completes within budget B returns the same answer with any
// larger budget, and a smaller budget yields a subset (prefix of the same
// traversal).
func TestPropertyBudgetMonotone(t *testing.T) {
	for seed := int64(0); seed < propertySeeds/2; seed++ {
		lo := lowerRandom(t, seed)
		full := New(lo.Graph, Config{})
		for _, v := range lo.AppQueryVars {
			rFull := full.PointsTo(v, pag.EmptyContext)
			fullSet := map[pag.NodeCtx]bool{}
			for _, nc := range rFull.PointsTo {
				fullSet[nc] = true
			}
			for _, b := range []int{1, 10, rFull.Steps, rFull.Steps * 2} {
				if b <= 0 {
					continue
				}
				s := New(lo.Graph, Config{Budget: b})
				r := s.PointsTo(v, pag.EmptyContext)
				for _, nc := range r.PointsTo {
					if !fullSet[nc] {
						t.Fatalf("seed %d budget %d: spurious fact %v", seed, b, nc)
					}
				}
				if b >= rFull.Steps && (r.Aborted || len(r.PointsTo) != len(rFull.PointsTo)) {
					t.Fatalf("seed %d: budget %d >= full steps %d but aborted=%v size %d vs %d",
						seed, b, rFull.Steps, r.Aborted, len(r.PointsTo), len(rFull.PointsTo))
				}
			}
		}
	}
}

// TestPropertySharingPreservesResults: running the whole batch with a shared
// store (sequentially, unbudgeted) yields exactly the unshared answers, in
// any repetition.
func TestPropertySharingPreservesResults(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		lo := lowerRandom(t, seed)
		plain := New(lo.Graph, Config{})
		st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 4})
		shared := New(lo.Graph, Config{Share: st})
		for pass := 0; pass < 2; pass++ {
			for _, v := range lo.AppQueryVars {
				a := plain.PointsTo(v, pag.EmptyContext)
				b := shared.PointsTo(v, pag.EmptyContext)
				if len(a.PointsTo) != len(b.PointsTo) {
					t.Fatalf("seed %d pass %d: %s: %d vs %d facts",
						seed, pass, lo.Graph.Node(v).Name, len(a.PointsTo), len(b.PointsTo))
				}
				am := map[pag.NodeCtx]bool{}
				for _, nc := range a.PointsTo {
					am[nc] = true
				}
				for _, nc := range b.PointsTo {
					if !am[nc] {
						t.Fatalf("seed %d pass %d: %s: spurious %v under sharing",
							seed, pass, lo.Graph.Node(v).Name, nc)
					}
				}
			}
		}
	}
}

// TestPropertyContextRefinement: a query under a specific calling context
// returns a subset of the empty-context (all-contexts) answer, projected to
// objects.
func TestPropertyContextRefinement(t *testing.T) {
	for seed := int64(0); seed < propertySeeds/2; seed++ {
		lo := lowerRandom(t, seed)
		s := New(lo.Graph, Config{})
		for _, v := range lo.AppQueryVars {
			all := map[pag.NodeID]bool{}
			for _, o := range s.PointsTo(v, pag.EmptyContext).Objects() {
				all[o] = true
			}
			// Use each incoming ret-edge call site of the variable's
			// method as a plausible context.
			for _, he := range lo.Graph.In(v) {
				if he.Kind != pag.EdgeParam {
					continue
				}
				ctx := pag.EmptyContext.Push(pag.CallSiteID(he.Label))
				for _, o := range s.PointsTo(v, ctx).Objects() {
					if !all[o] {
						t.Fatalf("seed %d: context-specific answer for %s not in all-context answer",
							seed, lo.Graph.Node(v).Name)
					}
				}
			}
		}
	}
}
