package cfl

import (
	"testing"

	"parcfl/internal/kernel"
	"parcfl/internal/pag"
)

// TestKernelModeAllocsBelowMapMode pins the kernel's allocation win: the
// bitset frontier (slot-interned planes over slab-backed words, bump-pooled
// comps) must allocate strictly less per query than the NodeCtx-keyed map
// traversal on the same workload. This is the contract the bench grid's
// allocs_per_op column reports; a regression here means the pools stopped
// being pools.
func TestKernelModeAllocsBelowMapMode(t *testing.T) {
	lo := lowerRandom(t, 3)
	prep := kernel.Build(lo.Graph)
	plain := New(lo.Graph, Config{Budget: 75000})
	kern := New(lo.Graph, Config{Budget: 75000, Kernel: prep})
	vars := lo.AppQueryVars
	if len(vars) == 0 {
		t.Skip("no query vars in random program")
	}

	run := func(s *Solver) float64 {
		return testing.AllocsPerRun(10, func() {
			for _, v := range vars {
				s.PointsTo(v, pag.EmptyContext)
			}
		})
	}
	// Warm both solvers once so one-time growth (slot tables, pool chunks)
	// does not count against either side.
	run(plain)
	run(kern)
	plainAllocs, kernAllocs := run(plain), run(kern)

	if kernAllocs >= plainAllocs {
		t.Fatalf("kernel mode allocates %.0f/run, map mode %.0f/run — kernel should be below",
			kernAllocs, plainAllocs)
	}
}
