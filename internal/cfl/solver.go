// Package cfl implements demand-driven, context- and field-sensitive pointer
// analysis as CFL-reachability over a PAG, following Algorithm 1 of the paper
// (the sequential solver) and Algorithm 2 (the data-sharing variant that
// records and takes jmp shortcut edges).
//
// The languages involved are L_FS (field-sensitivity, Eq. 2: st(f)/ld(f)
// matched as balanced parentheses through an alias test) intersected with
// R_CS (context-sensitivity, Eq. 3: param_i/ret_i matched as balanced call
// parentheses, with partially balanced prefixes allowed when the context is
// empty). PointsTo answers "which (object, context) pairs flow to this
// variable"; FlowsTo is its inverse.
//
// # Recursive alias resolution
//
// Algorithm 1 calls PointsTo, FlowsTo and ReachableNodes mutually
// recursively; on real programs these recursions cycle (e.g. p = p.next).
// As written in the paper the pseudo-code would not terminate on such
// cycles; practical implementations memoise per-query results. We make the
// memoisation explicit: each (direction, node, context) traversal is a
// "computation" with a monotonically growing result set. A computation that
// re-enters itself observes its current partial set; whenever a set grows,
// computations that consulted it are marked dirty and re-evaluated until a
// query-local fixpoint is reached. At that fixpoint every completed query's
// answer equals the exact CFL-reachability answer, which is what makes the
// parallel modes testable against the sequential one.
//
// # Budgets
//
// Each query carries a step budget B (paper: 75,000); every first visit of a
// (node, context) pair costs one step. Overrunning the budget aborts the
// query ("out of budget"), returning its partial result marked Aborted.
// With data sharing enabled, taking a finished jmp shortcut charges the
// recorded step cost (keeping budget accounting aligned with an unshared
// run), and meeting an unfinished jmp whose cost exceeds the remaining
// budget aborts immediately — the paper's "early termination".
package cfl

import (
	"parcfl/internal/kernel"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// Approx is a field-matching approximation policy, the mechanism behind the
// refinement-based configuration of Sridharan-Bodik (PLDI'06), which the
// paper cites as the alternate configuration of its sequential baseline.
// A field that is not "precise" is matched regularly: a load x = p.f is
// assumed to see every store q.f = y in the program, skipping the alias
// check entirely (an over-approximation that is much cheaper to compute).
// Refinement re-runs a query with more fields made precise until the client
// is satisfied; see package refine.
type Approx struct {
	// Precise lists the fields that must be matched exactly (with the
	// full alias check). All other fields are approximated.
	Precise map[pag.FieldID]bool
}

// precise reports whether field f requires exact matching under the policy
// (nil policy = everything precise).
func (a *Approx) precise(f pag.FieldID) bool {
	return a == nil || a.Precise[f]
}

// Config configures a Solver.
type Config struct {
	// Budget is the per-query step budget B; 0 disables budgeting.
	Budget int
	// Share, when non-nil, enables the data-sharing scheme of
	// Algorithm 2 backed by this store. The store may be shared by many
	// Solvers (one per worker goroutine) concurrently.
	Share *share.Store
	// Approx, when non-nil, relaxes field matching (refinement support).
	// Incompatible with Share: jmp entries recorded under different
	// approximation policies would be unsound to exchange.
	Approx *Approx
	// Cache, when non-nil, shares entire memoised traversal results
	// across queries (the "ad-hoc caching" of the sequential
	// implementations the paper builds on). Like Share, it may be used
	// by many solvers concurrently, and is incompatible with Approx.
	Cache *ptcache.Cache
	// ContextK, when positive, k-limits call strings: context pushes keep
	// only the newest K call sites (a sound over-approximation). Besides
	// trading precision for speed, a finite K guarantees termination even
	// on graphs whose recursive call cycles were not collapsed. 0 means
	// unlimited (the paper's configuration — it relies on recursion
	// collapsing instead).
	ContextK int
	// Obs, when non-nil with span tracing enabled, receives a span per
	// memoised traversal scan (direction, node, context depth, steps
	// consumed) and instant events for jmp shortcuts taken and early
	// terminations. A nil sink costs one pointer check per hook.
	Obs *obs.Sink
	// Kernel, when non-nil, switches the traversal onto the preprocessed
	// dense form of the graph (see internal/kernel): CSR adjacency slices
	// replace the mixed-kind lists and per-context bitsets over kernel IDs
	// replace the NodeCtx-keyed visited/result maps. The traversal order —
	// and therefore every result, step count, witness and profile entry —
	// is byte-identical to the node-at-a-time walk; only the data layout
	// changes. The Prep must have been built from (or match) this graph.
	Kernel *kernel.Prep
	// Profile enables per-query budget attribution: every Result carries a
	// Prof breakdown whose summed steps equal Result.Steps exactly. Off,
	// the hooks cost one nil check each and allocate nothing.
	Profile bool
	// Worker attributes this solver's spans to an engine worker track;
	// use obs.NoWorker for solvers running outside a worker pool.
	Worker int32
}

// Solver answers points-to and flows-to queries on one frozen PAG. A Solver
// is stateless between queries apart from its configuration; it is cheap and
// any number of Solvers over the same graph may run concurrently. A single
// Solver must not be used from two goroutines at once.
type Solver struct {
	g   *pag.Graph
	cfg Config

	// Kernel-mode slot-interning scratch (see query.kidx): kslot[n] is
	// node n's query-local slot when kgen[n] equals the current query
	// generation kq; knext is the next free slot. Sized once in New,
	// reused by every query this solver answers — which is why a Solver
	// must not be shared between goroutines.
	kslot []int32
	kgen  []uint64
	kq    uint64
	knext int32
}

// New creates a solver over a frozen graph.
func New(g *pag.Graph, cfg Config) *Solver {
	if !g.Frozen() {
		panic("cfl: solver over unfrozen graph")
	}
	if cfg.Share != nil && cfg.Approx != nil {
		panic("cfl: data sharing cannot be combined with field approximation")
	}
	if cfg.Cache != nil && cfg.Approx != nil {
		panic("cfl: result caching cannot be combined with field approximation")
	}
	if cfg.Kernel != nil {
		if err := cfg.Kernel.Matches(g); err != nil {
			panic("cfl: " + err.Error())
		}
		return &Solver{g: g, cfg: cfg,
			kslot: make([]int32, g.NumNodes()),
			kgen:  make([]uint64, g.NumNodes()),
		}
	}
	return &Solver{g: g, cfg: cfg}
}

// Graph returns the solver's PAG.
func (s *Solver) Graph() *pag.Graph { return s.g }

// Result is the outcome of one query.
type Result struct {
	// Node and Ctx echo the query.
	Node pag.NodeID
	Ctx  pag.Context
	// PointsTo holds, for a PointsTo query, the (object, context) pairs
	// found; for a FlowsTo query, the (variable, context) pairs reached.
	// If Aborted, the set is the partial result at abort time.
	PointsTo []pag.NodeCtx
	// Aborted reports the query ran out of budget.
	Aborted bool
	// EarlyTerminated reports the abort was triggered by an unfinished
	// jmp edge (a paper "ET") rather than plain budget exhaustion.
	EarlyTerminated bool
	// Steps is the number of budget steps consumed (including steps
	// charged for jmp shortcuts taken).
	Steps int
	// JumpsTaken counts finished jmp shortcuts taken.
	JumpsTaken int
	// StepsSaved is the total step cost of those shortcuts — graph
	// traversal work this query did not have to redo.
	StepsSaved int
	// ApproxFields lists the fields whose regular (approximate) matching
	// contributed to this result, in first-use order. Non-empty only
	// under an Approx policy; refinement clients use it to decide what
	// to make precise next.
	ApproxFields []pag.FieldID
	// Prof is the per-step budget attribution (nil unless Config.Profile).
	// Prof.Sum() == int64(Steps) — the conservation invariant.
	Prof *Attribution
}

// Objects projects the result set onto allocation sites, dropping contexts
// and duplicates, in first-seen order.
func (r Result) Objects() []pag.NodeID {
	seen := make(map[pag.NodeID]struct{}, len(r.PointsTo))
	out := make([]pag.NodeID, 0, len(r.PointsTo))
	for _, oc := range r.PointsTo {
		if _, ok := seen[oc.Node]; ok {
			continue
		}
		seen[oc.Node] = struct{}{}
		out = append(out, oc.Node)
	}
	return out
}

// PointsTo computes the points-to set of variable l under context c
// (POINTSTO of Algorithm 1; Algorithm 2 when sharing is configured).
func (s *Solver) PointsTo(l pag.NodeID, c pag.Context) Result {
	return s.query(compKey{kind: kindPts, node: l, ctx: c})
}

// FlowsTo computes the variables that object o (under context c) flows to —
// the inverse relation, FLOWSTO of Algorithm 1.
func (s *Solver) FlowsTo(o pag.NodeID, c pag.Context) Result {
	return s.query(compKey{kind: kindFls, node: o, ctx: c})
}

// Alias reports whether variables a and b may alias: whether their points-to
// sets share an allocation site. Both sub-queries run under the solver's
// budget; if either aborts, ok is false and the boolean is a may-alias
// over-approximation based on the partial sets.
func (s *Solver) Alias(a, b pag.NodeID, c pag.Context) (alias, ok bool) {
	ra := s.PointsTo(a, c)
	rb := s.PointsTo(b, c)
	ok = !ra.Aborted && !rb.Aborted
	objs := make(map[pag.NodeID]struct{}, len(ra.PointsTo))
	for _, oc := range ra.PointsTo {
		objs[oc.Node] = struct{}{}
	}
	for _, oc := range rb.PointsTo {
		if _, hit := objs[oc.Node]; hit {
			return true, ok
		}
	}
	return false, ok
}

// query runs the full demand computation for one root key.
func (s *Solver) query(root compKey) (res Result) {
	q := newQuery(s)
	res.Node = root.node
	res.Ctx = root.ctx

	defer func() {
		if r := recover(); r != nil {
			ab, isAbort := r.(budgetAbort)
			if !isAbort {
				panic(r)
			}
			res.Aborted = true
			res.EarlyTerminated = ab.earlyTermination
			s.fill(&res, q, root)
		}
	}()

	q.run(root)
	q.drainDirty()
	s.fill(&res, q, root)
	// Publish the fixpointed computations to the cross-query result
	// cache (exact answers only; aborted queries never reach here).
	q.publishCache()
	// Record finished jmp edges now that all consulted computations are at
	// their fixpoint, so recorded targets are exact (Section III-B2,
	// Fig. 3(a)). Aborted queries never reach this point; they record
	// unfinished markers in outOfBudget instead (Fig. 3(b)). Recording
	// happens after the result snapshot so its bookkeeping does not
	// pollute the reported step count.
	q.recordCandidates()
	return res
}

func (s *Solver) fill(res *Result, q *query, root compKey) {
	if c, ok := q.comps[root]; ok {
		res.PointsTo = append([]pag.NodeCtx(nil), c.order...)
	}
	res.Steps = q.steps
	res.JumpsTaken = q.jumpsTaken
	res.StepsSaved = q.stepsSaved
	res.ApproxFields = append([]pag.FieldID(nil), q.approxOrder...)
	// Snapshot the attribution here — before recordCandidates runs — so
	// recording-mode bookkeeping never leaks into the breakdown and the
	// conservation invariant (Prof.Sum() == Steps) holds exactly.
	if q.prof != nil {
		res.Prof = q.prof.snapshot(q)
	}
}
