package cfl

import (
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/share"
)

// reachable implements REACHABLENODES(x, c) — Algorithm 1 lines 17–25
// without sharing, Algorithm 2 with sharing. For the backward (points-to)
// direction it matches each load x = p.f against every store q.f = y whose
// base q aliases p, returning the (y, c”) pairs the traversal must continue
// from; the forward direction mirrors it (stores matched against loads).
//
// With sharing enabled, the store is consulted first: an unfinished entry
// whose cost exceeds the remaining budget aborts the query early; a finished
// entry is taken as a shortcut, charging its recorded step cost once. A full
// expansion is otherwise performed and remembered as a candidate for
// recording when the query completes.
func (q *query) reachable(owner *comp, it pag.NodeCtx) []pag.NodeCtx {
	kind := owner.key.kind
	if !q.hasHeapEdges(kind, it.Node) {
		return nil
	}
	dir := share.Backward
	if kind == kindFls {
		dir = share.Forward
	}
	key := share.Key{Dir: dir, Node: it.Node, Ctx: it.Ctx}

	st := q.s.cfg.Share
	if st != nil {
		if e, ok := st.Lookup(key); ok {
			if e.Unfinished {
				// Fig. 3(b): a previous traversal ran out of budget s
				// steps past this point; if we cannot afford s either,
				// terminate early instead of burning the budget.
				if b := q.s.cfg.Budget; !q.recording && b > 0 && b-q.steps < e.S {
					if p := q.prof; p != nil {
						p.et = &ETRecord{Key: key, S: e.S, Remaining: b - q.steps}
					}
					q.s.cfg.Obs.SpanInstant(obs.SpEarlyTerm, q.s.cfg.Worker, int64(it.Node), int64(e.S))
					q.outOfBudget(e.S, true)
				}
				// Enough budget remains: fall through to a full
				// expansion, as in Algorithm 2.
			} else {
				// Fig. 3(a): take the shortcut. The recorded step cost
				// is charged (once per computation) so budget
				// accounting stays aligned with an unshared run; the
				// budget itself is only checked at the next node visit,
				// exactly as in the paper.
				if !q.recording {
					if _, done := owner.charged[key]; !done {
						if owner.charged == nil {
							owner.charged = make(map[share.Key]struct{})
						}
						owner.charged[key] = struct{}{}
						if p := q.prof; p != nil {
							p.jumps = append(p.jumps, JmpCharge{Key: key, S: e.S})
						}
						q.steps += e.S
						q.jumpsTaken++
						q.stepsSaved += e.S
						q.s.cfg.Obs.SpanInstant(obs.SpJmpTake, q.s.cfg.Worker, int64(it.Node), int64(e.S))
					}
				}
				return e.Targets
			}
		}
	}

	if q.recording {
		return q.expandHeap(kind, owner, it)
	}

	s0 := q.steps
	q.frames = append(q.frames, frame{key: key, s0: s0})
	rch := q.expandHeap(kind, owner, it)
	q.frames = q.frames[:len(q.frames)-1]
	if st != nil {
		if cost := q.steps - s0; cost > q.candidates[key] {
			q.candidates[key] = cost
		}
	}
	return rch
}

// hasHeapEdges reports whether node n participates in any heap access
// relevant to the given direction (an incoming load backward, an outgoing
// store forward), so reachable can skip the sharing machinery on the vast
// majority of nodes.
func (q *query) hasHeapEdges(kind compKind, n pag.NodeID) bool {
	if k := q.s.cfg.Kernel; k != nil {
		if kind == kindPts {
			return k.HasLoadIn(n)
		}
		return k.HasStoreOut(n)
	}
	if kind == kindPts {
		for _, he := range q.g.In(n) {
			if he.Kind == pag.EdgeLoad {
				return true
			}
		}
		return false
	}
	for _, he := range q.g.Out(n) {
		if he.Kind == pag.EdgeStore {
			return true
		}
	}
	return false
}

// expandHeap performs the alias expansion itself (the loops of Algorithm 1
// lines 18–24 and their forward mirror). owner may be nil during candidate
// recording, in which case no dependency edges are recorded.
func (q *query) expandHeap(kind compKind, owner *comp, it pag.NodeCtx) []pag.NodeCtx {
	var rch []pag.NodeCtx
	switch kind {
	case kindPts:
		// it.Node is x with loads x = p.f: anything stored into field f
		// of an object p points to is reachable.
		for _, he := range q.loadsIn(it.Node) {
			if he.Kind != pag.EdgeLoad {
				continue
			}
			f := pag.FieldID(he.Label)
			if !q.s.cfg.Approx.precise(f) {
				rch = q.approxMatchLoad(rch, it.Node, f)
				continue
			}
			p := he.Other
			ptsC := q.run(compKey{kind: kindPts, node: p, ctx: it.Ctx})
			if owner != nil {
				q.depend(ptsC, owner)
			}
			for i := 0; i < len(ptsC.order); i++ {
				oc := ptsC.order[i]
				// Each alias-set element examined costs one step: in
				// Algorithm 1 these elements are produced by recursive
				// PointsTo/FlowsTo traversals that each charge steps, so
				// the budget must bound this matching work too.
				if pr := q.prof; pr != nil && !q.recording {
					pr.site(it.Node, f)
				}
				q.step()
				flsC := q.run(compKey{kind: kindFls, node: oc.Node, ctx: oc.Ctx})
				if owner != nil {
					q.depend(flsC, owner)
				}
				for j := 0; j < len(flsC.order); j++ {
					vc := flsC.order[j]
					if pr := q.prof; pr != nil && !q.recording {
						pr.site(it.Node, f)
					}
					q.step()
					// vc.Node aliases p; match stores vc.Node.f = y.
					for _, she := range q.storesIn(vc.Node) {
						if she.Kind == pag.EdgeStore && pag.FieldID(she.Label) == f {
							rch = append(rch, pag.NodeCtx{Node: she.Other, Ctx: vc.Ctx})
						}
					}
				}
			}
		}
	case kindFls:
		// it.Node is y with stores q'.f = y: the value flows into field
		// f of every object q' points to, and out of every load on an
		// alias of q'.
		for _, he := range q.storesOut(it.Node) {
			if he.Kind != pag.EdgeStore {
				continue
			}
			f := pag.FieldID(he.Label)
			if !q.s.cfg.Approx.precise(f) {
				rch = q.approxMatchStore(rch, it.Node, f)
				continue
			}
			base := he.Other
			ptsC := q.run(compKey{kind: kindPts, node: base, ctx: it.Ctx})
			if owner != nil {
				q.depend(ptsC, owner)
			}
			for i := 0; i < len(ptsC.order); i++ {
				oc := ptsC.order[i]
				if pr := q.prof; pr != nil && !q.recording {
					pr.site(it.Node, f)
				}
				q.step()
				flsC := q.run(compKey{kind: kindFls, node: oc.Node, ctx: oc.Ctx})
				if owner != nil {
					q.depend(flsC, owner)
				}
				for j := 0; j < len(flsC.order); j++ {
					vc := flsC.order[j]
					if pr := q.prof; pr != nil && !q.recording {
						pr.site(it.Node, f)
					}
					q.step()
					// vc.Node aliases base; match loads x = vc.Node.f.
					for _, lhe := range q.loadsOut(vc.Node) {
						if lhe.Kind == pag.EdgeLoad && pag.FieldID(lhe.Label) == f {
							rch = append(rch, pag.NodeCtx{Node: lhe.Other, Ctx: vc.Ctx})
						}
					}
				}
			}
		}
	}
	return rch
}

// fieldStores/fieldLoads select the program-wide per-field site index: the
// Prep's CSR rows (slice-indexed) in kernel mode, the graph's maps otherwise.
// Both hold the same sites in the same frozen order.

func (q *query) fieldStores(f pag.FieldID) []pag.StoreSite {
	if k := q.s.cfg.Kernel; k != nil {
		return k.StoresOf(f)
	}
	return q.g.StoresOf(f)
}

func (q *query) fieldLoads(f pag.FieldID) []pag.LoadSite {
	if k := q.s.cfg.Kernel; k != nil {
		return k.LoadsOf(f)
	}
	return q.g.LoadsOf(f)
}

// noteApprox records that field f was matched approximately.
func (q *query) noteApprox(f pag.FieldID) {
	if _, seen := q.approxUsed[f]; seen {
		return
	}
	q.approxUsed[f] = struct{}{}
	q.approxOrder = append(q.approxOrder, f)
}

// approxMatchLoad is the regularly-approximated backward match for a load
// of field f at node n: every store q'.f = y in the program is assumed to
// reach it. Targets continue with the empty context (the over-approximating
// choice: an empty context permits any subsequent matching). Each examined
// store costs one step so approximation still consumes budget in proportion
// to fan-in.
func (q *query) approxMatchLoad(rch []pag.NodeCtx, n pag.NodeID, f pag.FieldID) []pag.NodeCtx {
	q.noteApprox(f)
	for _, st := range q.fieldStores(f) {
		if p := q.prof; p != nil && !q.recording {
			p.approxSite(n, f)
		}
		q.step()
		rch = append(rch, pag.NodeCtx{Node: st.Val, Ctx: pag.EmptyContext})
	}
	return rch
}

// approxMatchStore is the forward mirror: a store of field f at node n is
// assumed to flow into every load of f.
func (q *query) approxMatchStore(rch []pag.NodeCtx, n pag.NodeID, f pag.FieldID) []pag.NodeCtx {
	q.noteApprox(f)
	for _, ld := range q.fieldLoads(f) {
		if p := q.prof; p != nil && !q.recording {
			p.approxSite(n, f)
		}
		q.step()
		rch = append(rch, pag.NodeCtx{Node: ld.Dst, Ctx: pag.EmptyContext})
	}
	return rch
}

// recordCandidates converts the expansions performed by a successfully
// completed query into finished jmp edges. It runs after the query-local
// fixpoint, re-expanding each candidate from the memoised computations so
// the recorded targets are the exact CFL answer (never a partial snapshot
// from mid-fixpoint). Budget checks are disabled during recording: this is
// bookkeeping, not analysis work.
func (q *query) recordCandidates() {
	st := q.s.cfg.Share
	if st == nil || len(q.candidates) == 0 {
		return
	}
	q.recording = true
	defer func() { q.recording = false }()
	tauF := st.Config().TauF
	for key, cost := range q.candidates {
		if cost < tauF {
			continue
		}
		if _, exists := st.Lookup(key); exists {
			continue
		}
		kind := kindPts
		if key.Dir == share.Forward {
			kind = kindFls
		}
		rch := q.expandHeap(kind, nil, pag.NodeCtx{Node: key.Node, Ctx: key.Ctx})
		seen := make(map[pag.NodeCtx]struct{}, len(rch))
		targets := make([]pag.NodeCtx, 0, len(rch))
		for _, nc := range rch {
			if _, dup := seen[nc]; dup {
				continue
			}
			seen[nc] = struct{}{}
			targets = append(targets, nc)
		}
		st.PutFinished(key, cost, targets)
	}
}
