package cfl

import (
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
)

func TestPushK(t *testing.T) {
	c := pag.EmptyContext
	for i := 1; i <= 5; i++ {
		c = c.PushK(pag.CallSiteID(i), 3)
	}
	sites := c.Sites()
	if len(sites) != 3 || sites[0] != 3 || sites[1] != 4 || sites[2] != 5 {
		t.Fatalf("k-limited sites = %v, want [3 4 5]", sites)
	}
	// k <= 0 is unlimited.
	u := pag.EmptyContext
	for i := 1; i <= 5; i++ {
		u = u.PushK(pag.CallSiteID(i), 0)
	}
	if u.Depth() != 5 {
		t.Fatalf("unlimited depth = %d", u.Depth())
	}
}

// TestKLimitOverApproximates: for every k, the k-limited answer contains
// the exact answer; for k at least the program's call depth, they are equal.
func TestKLimitOverApproximates(t *testing.T) {
	for seed := int64(900); seed < 930; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		exact := New(lo.Graph, Config{})
		for _, k := range []int{1, 2, 64} {
			lim := New(lo.Graph, Config{ContextK: k})
			for _, v := range lo.AppQueryVars {
				want := exact.PointsTo(v, pag.EmptyContext).Objects()
				gotSet := map[pag.NodeID]bool{}
				for _, o := range lim.PointsTo(v, pag.EmptyContext).Objects() {
					gotSet[o] = true
				}
				for _, o := range want {
					if !gotSet[o] {
						t.Fatalf("seed %d k=%d: lost %s -> %s", seed, k,
							lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
					}
				}
				if k == 64 && len(gotSet) != len(want) {
					t.Fatalf("seed %d: k=64 differs from exact (%d vs %d)", seed, len(gotSet), len(want))
				}
			}
		}
	}
}

// TestKLimitCanLosePrecision: Fig. 2 with k=0-equivalent context strings —
// with k=1 the param/ret matching for s1/s2 needs two frames, so precision
// may drop; with k=2 the example is fully precise.
func TestKLimitPrecisionOnFig2(t *testing.T) {
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	// k=2 suffices for the deepest derivation in the example.
	s2 := New(f.Lowered.Graph, Config{ContextK: 2})
	got := s2.PointsTo(f.S1, pag.EmptyContext).Objects()
	if len(got) != 1 || got[0] != f.O16 {
		t.Fatalf("k=2 pts(s1) = %v, want exactly [o16]", got)
	}
}

// TestKLimitTerminatesOnUncollapsedRecursion: a PAG with a recursive
// param/ret cycle (built directly, bypassing the frontend's recursion
// collapsing) does not terminate with unlimited contexts unless budgeted;
// with a finite k it must terminate unbudgeted and stay sound.
func TestKLimitTerminatesOnUncollapsedRecursion(t *testing.T) {
	g := pag.NewGraph()
	o := g.AddObject("o", 0)
	a := g.AddLocal("a", 0, 0) // caller local
	x := g.AddLocal("x", 0, 1) // recursive formal
	r := g.AddLocal("r", 0, 1) // recursive return
	res := g.AddLocal("res", 0, 0)
	g.AddEdge(pag.Edge{Dst: a, Src: o, Kind: pag.EdgeNew})
	// Call f(a) at site 1: x <-param1- a; res <-ret1- r.
	g.AddEdge(pag.Edge{Dst: x, Src: a, Kind: pag.EdgeParam, Label: 1})
	g.AddEdge(pag.Edge{Dst: res, Src: r, Kind: pag.EdgeRet, Label: 1})
	// Inside f: recursive call f(x) at site 2 (NOT collapsed):
	// x <-param2- x; r <-ret2- r; plus r = x.
	g.AddEdge(pag.Edge{Dst: x, Src: x, Kind: pag.EdgeParam, Label: 2})
	g.AddEdge(pag.Edge{Dst: r, Src: r, Kind: pag.EdgeRet, Label: 2})
	g.AddEdge(pag.Edge{Dst: r, Src: x, Kind: pag.EdgeAssignLocal})
	g.Freeze()

	s := New(g, Config{ContextK: 2})
	resPts := s.PointsTo(res, pag.EmptyContext)
	if resPts.Aborted {
		t.Fatal("k-limited query aborted without budget")
	}
	found := false
	for _, got := range resPts.Objects() {
		if got == o {
			found = true
		}
	}
	if !found {
		t.Fatalf("res must reach o through the recursion: %v", resPts.Objects())
	}
}
