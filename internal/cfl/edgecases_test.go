package cfl

import (
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
)

// lowerOrDie lowers a hand-written program.
func lowerOrDie(t *testing.T, p *frontend.Program) *frontend.Lowered {
	t.Helper()
	lo, err := frontend.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// TestLinkedListCycle: the classic recursive alias cycle p = p.next. The
// printed Algorithm 1 would recurse forever; the query-local fixpoint must
// terminate and find both the head and the tail node objects.
func TestLinkedListCycle(t *testing.T) {
	obj := pag.TypeID(0)
	node := pag.TypeID(1)
	fNext := pag.FieldID(1)
	p := &frontend.Program{
		Types: []frontend.Type{
			{Name: "Object", Ref: true},
			{Name: "Node", Ref: true, Fields: []frontend.Field{{Name: "next", ID: fNext, Type: node}}},
		},
		Methods: []frontend.Method{{
			Name: "walk",
			Locals: []frontend.LocalVar{
				{Name: "head", Type: node}, // 0
				{Name: "tail", Type: node}, // 1
				{Name: "p", Type: node},    // 2
			},
			Ret: -1, Application: true,
			Body: []frontend.Stmt{
				{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: node},                            // head = new Node (oHead)
				{Kind: frontend.StAlloc, Dst: frontend.Local(1), Type: node},                            // tail = new Node (oTail)
				{Kind: frontend.StStore, Base: frontend.Local(0), Field: fNext, Src: frontend.Local(1)}, // head.next = tail
				{Kind: frontend.StStore, Base: frontend.Local(1), Field: fNext, Src: frontend.Local(1)}, // tail.next = tail (cycle)
				{Kind: frontend.StAssign, Dst: frontend.Local(2), Src: frontend.Local(0)},               // p = head
				{Kind: frontend.StLoad, Dst: frontend.Local(2), Base: frontend.Local(2), Field: fNext},  // p = p.next (loop)
			},
		}},
	}
	_ = obj
	lo := lowerOrDie(t, p)
	s := New(lo.Graph, Config{})
	pVar := lo.LocalNode[0][2]
	r := s.PointsTo(pVar, pag.EmptyContext)
	if r.Aborted {
		t.Fatal("unbudgeted query aborted")
	}
	objs := map[pag.NodeID]bool{}
	for _, o := range r.Objects() {
		objs[o] = true
	}
	oHead := lo.ObjectNode[0][0]
	oTail := lo.ObjectNode[0][1]
	if !objs[oHead] || !objs[oTail] {
		t.Fatalf("p should reach both list nodes; got %v (head=%d tail=%d)", r.Objects(), oHead, oTail)
	}
}

// TestGlobalClearsContext: traversing an assigng edge clears the context, so
// values read from a global are visible regardless of calling context, and
// flows through globals never match call-site parentheses spuriously.
func TestGlobalClearsContext(t *testing.T) {
	obj := pag.TypeID(0)
	p := &frontend.Program{
		Types:   []frontend.Type{{Name: "Object", Ref: true}},
		Globals: []frontend.GlobalVar{{Name: "G", Type: obj}},
		Methods: []frontend.Method{
			{ // 0: producer() { a = new; G = a }
				Name:   "producer",
				Locals: []frontend.LocalVar{{Name: "a", Type: obj}},
				Ret:    -1, Application: true,
				Body: []frontend.Stmt{
					{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: obj},
					{Kind: frontend.StAssign, Dst: frontend.Global(0), Src: frontend.Local(0)},
				},
			},
			{ // 1: consumer() Object { b = G; return b }
				Name:   "consumer",
				Locals: []frontend.LocalVar{{Name: "b", Type: obj}},
				Ret:    0, Application: true,
				Body: []frontend.Stmt{
					{Kind: frontend.StAssign, Dst: frontend.Local(0), Src: frontend.Global(0)},
				},
			},
			{ // 2: main { x = consumer(); y = consumer(); }
				Name:   "main",
				Locals: []frontend.LocalVar{{Name: "x", Type: obj}, {Name: "y", Type: obj}},
				Ret:    -1, Application: true,
				Body: []frontend.Stmt{
					{Kind: frontend.StCall, Callee: 1, Dst: frontend.Local(0)},
					{Kind: frontend.StCall, Callee: 1, Dst: frontend.Local(1)},
				},
			},
		},
	}
	lo := lowerOrDie(t, p)
	s := New(lo.Graph, Config{})
	oA := lo.ObjectNode[0][0]
	for _, v := range []pag.NodeID{lo.LocalNode[2][0], lo.LocalNode[2][1]} {
		r := s.PointsTo(v, pag.EmptyContext)
		if got := r.Objects(); len(got) != 1 || got[0] != oA {
			t.Fatalf("%s: pts = %v, want [%d]", lo.Graph.Node(v).Name, got, oA)
		}
	}
	// Forward: the object flows to both call results.
	fl := s.FlowsTo(oA, pag.EmptyContext)
	found := map[pag.NodeID]bool{}
	for _, nc := range fl.PointsTo {
		found[nc.Node] = true
	}
	for _, v := range []pag.NodeID{lo.GlobalNode[0], lo.LocalNode[1][0], lo.LocalNode[2][0], lo.LocalNode[2][1]} {
		if !found[v] {
			t.Fatalf("object should flow to %s", lo.Graph.Node(v).Name)
		}
	}
}

// TestParamMismatchFiltersFlows: a value entering a callee from call site A
// must not exit toward call site B (the R_CS matching).
func TestParamMismatchFiltersFlows(t *testing.T) {
	obj := pag.TypeID(0)
	p := &frontend.Program{
		Types: []frontend.Type{{Name: "Object", Ref: true}},
		Methods: []frontend.Method{
			{ // 0: id(x) { return x }
				Name:   "id",
				Locals: []frontend.LocalVar{{Name: "x", Type: obj}},
				Params: []int{0}, Ret: 0, Application: true,
				Body: []frontend.Stmt{},
			},
			{ // 1: main { a = new; b = new; ra = id(a); rb = id(b) }
				Name: "main",
				Locals: []frontend.LocalVar{
					{Name: "a", Type: obj}, {Name: "b", Type: obj},
					{Name: "ra", Type: obj}, {Name: "rb", Type: obj},
				},
				Ret: -1, Application: true,
				Body: []frontend.Stmt{
					{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: obj},
					{Kind: frontend.StAlloc, Dst: frontend.Local(1), Type: obj},
					{Kind: frontend.StCall, Callee: 0, Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(2)},
					{Kind: frontend.StCall, Callee: 0, Args: []frontend.VarRef{frontend.Local(1)}, Dst: frontend.Local(3)},
				},
			},
		},
	}
	lo := lowerOrDie(t, p)
	s := New(lo.Graph, Config{})
	oA := lo.ObjectNode[1][0]
	oB := lo.ObjectNode[1][1]
	ra := lo.LocalNode[1][2]
	rb := lo.LocalNode[1][3]
	gotA := s.PointsTo(ra, pag.EmptyContext).Objects()
	gotB := s.PointsTo(rb, pag.EmptyContext).Objects()
	if len(gotA) != 1 || gotA[0] != oA {
		t.Fatalf("ra pts = %v, want [oA]", gotA)
	}
	if len(gotB) != 1 || gotB[0] != oB {
		t.Fatalf("rb pts = %v, want [oB]", gotB)
	}
	// The id formal itself conflates both, of course.
	formal := s.PointsTo(lo.LocalNode[0][0], pag.EmptyContext).Objects()
	if len(formal) != 2 {
		t.Fatalf("id.x pts = %v, want both objects", formal)
	}
}

// TestEmptyResultQueries: variables with no incoming flow return empty sets
// quickly, not errors.
func TestEmptyResultQueries(t *testing.T) {
	obj := pag.TypeID(0)
	p := &frontend.Program{
		Types: []frontend.Type{{Name: "Object", Ref: true}},
		Methods: []frontend.Method{{
			Name:   "m",
			Locals: []frontend.LocalVar{{Name: "dead", Type: obj}},
			Ret:    -1, Application: true,
			Body: []frontend.Stmt{{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: obj}},
		}},
	}
	lo := lowerOrDie(t, p)
	s := New(lo.Graph, Config{Budget: 10})
	// A fresh local with only an allocation: one object.
	r := s.PointsTo(lo.LocalNode[0][0], pag.EmptyContext)
	if r.Aborted || len(r.Objects()) != 1 {
		t.Fatalf("r = %+v", r)
	}
	// FlowsTo of the object reaches only that local.
	fl := s.FlowsTo(lo.ObjectNode[0][0], pag.EmptyContext)
	if fl.Aborted || len(fl.PointsTo) != 1 {
		t.Fatalf("fl = %+v", fl)
	}
}
