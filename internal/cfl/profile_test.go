package cfl

import (
	"testing"

	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// checkConserved asserts the conservation invariant on one result: the
// summed attribution equals Result.Steps exactly.
func checkConserved(t *testing.T, name string, r Result) {
	t.Helper()
	if r.Prof == nil {
		t.Fatalf("%s: Profile on but Prof nil", name)
	}
	if got, want := r.Prof.Sum(), int64(r.Steps); got != want {
		t.Fatalf("%s: attribution sums to %d, Result.Steps = %d (traversal=%d match=%d approx=%d jmp=%d cache=%d)",
			name, got, want, r.Prof.TraversalSteps(), r.Prof.MatchSteps(),
			r.Prof.ApproxSteps(), r.Prof.JmpSteps(), r.Prof.CacheSteps)
	}
}

// TestProfileOff: without Config.Profile, results carry no attribution and
// step counts are unchanged.
func TestProfileOff(t *testing.T) {
	f := fig2(t)
	plain := New(f.Lowered.Graph, Config{})
	prof := New(f.Lowered.Graph, Config{Profile: true})
	for _, v := range f.Lowered.AppQueryVars {
		a := plain.PointsTo(v, pag.EmptyContext)
		b := prof.PointsTo(v, pag.EmptyContext)
		if a.Prof != nil {
			t.Fatal("Prof set without Profile")
		}
		if b.Prof == nil {
			t.Fatal("Prof nil with Profile on")
		}
		if a.Steps != b.Steps {
			t.Fatalf("profiling changed step count: %d vs %d", a.Steps, b.Steps)
		}
	}
}

// TestProfileConservationFig2 checks the invariant on completed queries in
// both directions, and that traversal steps dominate a precise run.
func TestProfileConservationFig2(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{Profile: true})
	for _, v := range f.Lowered.AppQueryVars {
		r := s.PointsTo(v, pag.EmptyContext)
		checkConserved(t, f.Lowered.Graph.Node(v).Name, r)
		if r.Prof.TraversalSteps() == 0 {
			t.Fatalf("%s: no traversal steps attributed", f.Lowered.Graph.Node(v).Name)
		}
	}
	r := s.FlowsTo(f.O16, pag.EmptyContext)
	checkConserved(t, "flows(o16)", r)
}

// TestProfileConservationAborted: a query that runs out of budget must still
// conserve, and its attribution must carry the partial frontier.
func TestProfileConservationAborted(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	s := New(f.Lowered.Graph, Config{Budget: 12, Share: st, Profile: true})
	r := s.PointsTo(f.S1, pag.EmptyContext)
	if !r.Aborted {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}
	checkConserved(t, "s1@12", r)
	if r.Prof.ET != nil {
		t.Fatal("plain exhaustion recorded an ETRecord")
	}
	if len(r.Prof.Frontier) == 0 {
		t.Fatal("aborted query has no partial frontier (but recorded unfinished markers)")
	}
	for _, fr := range r.Prof.Frontier {
		if fr.Steps < 0 || fr.Steps > r.Steps {
			t.Fatalf("frontier frame steps %d out of range [0,%d]", fr.Steps, r.Steps)
		}
	}
}

// TestProfileEarlyTerminationNamesJmp is the acceptance-criterion test: an
// ET query's attribution must name the unfinished jmp edge that fired and
// its recorded cost s, built on the TestEarlyTermination fixture.
func TestProfileEarlyTerminationNamesJmp(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})

	// First query aborts at budget 12, recording unfinished markers.
	tight := New(f.Lowered.Graph, Config{Budget: 12, Share: st, Profile: true})
	r1 := tight.PointsTo(f.S1, pag.EmptyContext)
	if !r1.Aborted {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}
	checkConserved(t, "recorder", r1)

	// Second query at budget 11 hits an unfinished marker and ETs.
	tighter := New(f.Lowered.Graph, Config{Budget: 11, Share: st, Profile: true})
	r2 := tighter.PointsTo(f.S1, pag.EmptyContext)
	if !r2.EarlyTerminated {
		t.Fatal("second query did not early-terminate")
	}
	checkConserved(t, "et", r2)
	et := r2.Prof.ET
	if et == nil {
		t.Fatal("ET query carries no ETRecord")
	}
	// The record must name an edge the store actually holds, with the
	// store's recorded s and a true shortfall.
	e, ok := st.Lookup(et.Key)
	if !ok || !e.Unfinished {
		t.Fatalf("ETRecord names key %+v, which is not an unfinished store entry", et.Key)
	}
	if et.S != e.S {
		t.Fatalf("ETRecord.S = %d, store entry S = %d", et.S, e.S)
	}
	if et.Remaining >= et.S {
		t.Fatalf("no shortfall: remaining %d >= s %d", et.Remaining, et.S)
	}
	if et.Remaining != 11-r2.Steps {
		t.Fatalf("Remaining = %d, want budget-steps = %d", et.Remaining, 11-r2.Steps)
	}
}

// TestProfileJmpCharges: shortcut charges must appear in the attribution
// and sum to StepsSaved.
func TestProfileJmpCharges(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	s := New(f.Lowered.Graph, Config{Share: st, Profile: true})
	first := s.PointsTo(f.S1, pag.EmptyContext)
	checkConserved(t, "first", first)
	if len(first.Prof.Expansions) == 0 {
		t.Fatal("first pass performed no shareable expansions")
	}
	second := s.PointsTo(f.S1, pag.EmptyContext)
	checkConserved(t, "second", second)
	if len(second.Prof.Jumps) == 0 {
		t.Fatal("second pass took no shortcuts")
	}
	if got := second.Prof.JmpSteps(); got != int64(second.StepsSaved) {
		t.Fatalf("jmp charges sum to %d, StepsSaved = %d", got, second.StepsSaved)
	}
	if second.JumpsTaken != len(second.Prof.Jumps) {
		t.Fatalf("JumpsTaken = %d but %d charges attributed", second.JumpsTaken, len(second.Prof.Jumps))
	}
}

// TestProfileCacheHits: result-cache hits are attributed to CacheSteps and
// conserve.
func TestProfileCacheHits(t *testing.T) {
	f := fig2(t)
	pc := ptcache.New(8)
	s := New(f.Lowered.Graph, Config{Cache: pc, Profile: true})
	first := s.PointsTo(f.S1, pag.EmptyContext)
	checkConserved(t, "cold", first)
	second := s.PointsTo(f.S1, pag.EmptyContext)
	checkConserved(t, "warm", second)
	if second.Prof.CacheSteps == 0 {
		t.Fatal("warm query hit no cached computations")
	}
}

// TestProfileApprox: approximate field matching is attributed to its
// (site, field) pairs and conserves.
func TestProfileApprox(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{Approx: &Approx{}, Profile: true})
	r := s.PointsTo(f.S1, pag.EmptyContext)
	checkConserved(t, "approx", r)
	if len(r.ApproxFields) == 0 {
		t.Skip("query used no approximated fields")
	}
	if r.Prof.ApproxSteps() == 0 {
		t.Fatal("approximate matching attributed no steps")
	}
	found := false
	for _, site := range r.Prof.Sites {
		if site.Approx {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no site marked Approx")
	}
}

// TestProfileDeterminism: the attribution itself must be deterministic run
// to run (sorted slices, stable step counts).
func TestProfileDeterminism(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{Profile: true})
	base := s.PointsTo(f.S1, pag.EmptyContext)
	for i := 0; i < 3; i++ {
		r := s.PointsTo(f.S1, pag.EmptyContext)
		if len(r.Prof.Nodes) != len(base.Prof.Nodes) {
			t.Fatalf("run %d: node attribution size changed", i)
		}
		for j := range r.Prof.Nodes {
			if r.Prof.Nodes[j] != base.Prof.Nodes[j] {
				t.Fatalf("run %d: node attribution changed at %d: %+v vs %+v",
					i, j, r.Prof.Nodes[j], base.Prof.Nodes[j])
			}
		}
		for j := range r.Prof.Sites {
			if r.Prof.Sites[j] != base.Prof.Sites[j] {
				t.Fatalf("run %d: site attribution changed at %d", i, j)
			}
		}
	}
}
