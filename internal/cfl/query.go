package cfl

import (
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// compKind distinguishes the two traversal directions.
type compKind uint8

const (
	// kindPts is the backward (flowsTo-bar / points-to) direction.
	kindPts compKind = iota
	// kindFls is the forward (flowsTo) direction.
	kindFls
)

// compKey identifies one memoised traversal: direction plus start
// (node, context).
type compKey struct {
	kind compKind
	node pag.NodeID
	ctx  pag.Context
}

type compState uint8

const (
	compRunning compState = iota
	compDone
)

// comp is one memoised computation with a monotonically growing result set.
type comp struct {
	key   compKey
	state compState
	dirty bool
	// cached marks a computation materialised from the cross-query
	// result cache: its set is final and it is never evaluated.
	cached bool

	// set/order hold the result: (object, ctx) pairs for kindPts,
	// (variable, ctx) pairs for kindFls. order preserves insertion order
	// for deterministic traversal (and hence deterministic step counts).
	set   map[pag.NodeCtx]struct{}
	order []pag.NodeCtx

	// dependents are computations that consulted this one and must be
	// re-evaluated when the set grows.
	dependents map[*comp]struct{}

	// visited/vlist are the traversal frontier: every (node, ctx) pair
	// ever enqueued. Re-evaluations rescan vlist instead of restarting,
	// and only first visits cost budget steps.
	visited map[pag.NodeCtx]struct{}
	vlist   []pag.NodeCtx
	// stepped marks items whose first scan (budget step + direct-edge
	// expansion) already happened.
	stepped map[pag.NodeCtx]struct{}
	// charged marks jmp shortcuts whose step cost was already added, so
	// rescans do not charge twice.
	charged map[share.Key]struct{}

	// parent and objSrc are witness-recording tables (allocated only when
	// the query runs with witnesses enabled): parent maps each traversal
	// item to its first discovered predecessor and the edge label taken;
	// objSrc maps each result fact to the item whose expansion produced
	// it.
	parent map[pag.NodeCtx]parentInfo
	objSrc map[pag.NodeCtx]pag.NodeCtx
}

func (c *comp) add(nc pag.NodeCtx) bool {
	if _, ok := c.set[nc]; ok {
		return false
	}
	c.set[nc] = struct{}{}
	c.order = append(c.order, nc)
	return true
}

func (c *comp) push(nc pag.NodeCtx) {
	if _, ok := c.visited[nc]; ok {
		return
	}
	c.visited[nc] = struct{}{}
	c.vlist = append(c.vlist, nc)
}

// frame is an in-progress alias expansion, the query-local S of
// Algorithm 2: if the query runs out of budget, an unfinished jmp edge is
// recorded for every open frame.
type frame struct {
	key share.Key
	s0  int // steps when the expansion started
}

// budgetAbort is the panic value used to unwind a query that ran out of
// budget (the paper's OutOfBudget/exit()).
type budgetAbort struct {
	earlyTermination bool
}

// query is the per-query state: the memo table, dirty queue, step counter
// and sharing bookkeeping. It lives for a single Solver.PointsTo/FlowsTo
// call.
type query struct {
	s *Solver
	g *pag.Graph

	comps  map[compKey]*comp
	dirtyQ []*comp

	steps      int
	jumpsTaken int
	stepsSaved int

	frames []frame

	// candidates maps expansion keys performed by this query to their
	// (maximum observed) step cost; successful queries convert them to
	// finished jmp edges at the end.
	candidates map[share.Key]int
	// approxUsed records fields matched approximately (refinement
	// feedback), in first-use order.
	approxUsed  map[pag.FieldID]struct{}
	approxOrder []pag.FieldID
	// recording disables budget checks while candidates are being
	// re-expanded for recording (bookkeeping, not analysis work).
	recording bool
	// wit enables witness recording (see Explain).
	wit bool
	// prof accumulates budget attribution (nil unless Config.Profile);
	// every hook site guards on the pointer so the off path costs one
	// comparison.
	prof *queryProf
}

func newQuery(s *Solver) *query {
	q := &query{
		s:          s,
		g:          s.g,
		comps:      make(map[compKey]*comp),
		candidates: make(map[share.Key]int),
		approxUsed: make(map[pag.FieldID]struct{}),
	}
	if s.cfg.Profile {
		q.prof = newQueryProf()
	}
	return q
}

// resolve returns the computation for k, creating it if needed; created
// computations start evaluating immediately (state running while on the
// evaluation stack).
func (q *query) run(k compKey) *comp {
	if c, ok := q.comps[k]; ok {
		return c
	}
	// Consult the cross-query result cache: a hit materialises a final
	// computation without any traversal. Witness queries skip the cache
	// (cached results carry no provenance).
	if pc := q.s.cfg.Cache; pc != nil && !q.wit {
		ck := ptcache.Key{Dir: ptcache.Backward, Node: k.node, Ctx: k.ctx}
		if k.kind == kindFls {
			ck.Dir = ptcache.Forward
		}
		if set, ok := pc.Get(ck); ok {
			c := &comp{
				key:        k,
				state:      compDone,
				cached:     true,
				order:      set,
				dependents: make(map[*comp]struct{}),
			}
			q.comps[k] = c
			// A cache hit costs one traversal step. Attribute before
			// charging so the step is booked even if it trips the budget.
			if p := q.prof; p != nil && !q.recording {
				p.cache++
			}
			q.step()
			return c
		}
	}
	c := &comp{
		key:        k,
		state:      compRunning,
		set:        make(map[pag.NodeCtx]struct{}),
		dependents: make(map[*comp]struct{}),
		visited:    make(map[pag.NodeCtx]struct{}),
		stepped:    make(map[pag.NodeCtx]struct{}),
		charged:    make(map[share.Key]struct{}),
	}
	if q.wit {
		c.parent = make(map[pag.NodeCtx]parentInfo)
		c.objSrc = make(map[pag.NodeCtx]pag.NodeCtx)
	}
	q.comps[k] = c
	c.push(pag.NodeCtx{Node: k.node, Ctx: k.ctx})
	q.eval(c)
	c.state = compDone
	return c
}

// publishCache shares every fixpointed computation of a successfully
// completed query with the cross-query result cache. Result slices are no
// longer mutated once the query ends, so they are shared without copying.
func (q *query) publishCache() {
	pc := q.s.cfg.Cache
	if pc == nil || q.wit {
		return
	}
	for k, c := range q.comps {
		if c.cached || c.state != compDone {
			continue
		}
		ck := ptcache.Key{Dir: ptcache.Backward, Node: k.node, Ctx: k.ctx}
		if k.kind == kindFls {
			ck.Dir = ptcache.Forward
		}
		pc.Put(ck, c.order)
	}
}

// depend records that consumer consulted dep and must be re-evaluated when
// dep's result grows. Self-dependencies are real and must be kept: a
// computation like pts(p) for `p = p.next` consults its own partial result,
// and growing it later must trigger a rescan of the consulting expansion.
func (q *query) depend(dep, consumer *comp) {
	dep.dependents[consumer] = struct{}{}
}

// grow adds nc to c's result set, dirtying dependents on growth.
func (q *query) grow(c *comp, nc pag.NodeCtx) {
	if !c.add(nc) {
		return
	}
	for d := range c.dependents {
		q.markDirty(d)
	}
}

// pushEdge enqueues a traversal item reached from `from` over the edge
// described by label, recording provenance when witnesses are enabled.
func (q *query) pushEdge(c *comp, nc, from pag.NodeCtx, label string) {
	if q.wit {
		if _, seen := c.visited[nc]; !seen {
			c.parent[nc] = parentInfo{from: from, label: label}
		}
	}
	c.push(nc)
}

// markDirty queues c for re-evaluation. A computation that is still running
// is queued too: its in-progress scan may already have passed the items
// affected by the growth, so a post-completion rescan is required.
func (q *query) markDirty(c *comp) {
	if !c.dirty {
		c.dirty = true
		q.dirtyQ = append(q.dirtyQ, c)
	}
}

// drainDirty re-evaluates computations until the query-local fixpoint.
func (q *query) drainDirty() {
	for len(q.dirtyQ) > 0 {
		c := q.dirtyQ[0]
		q.dirtyQ = q.dirtyQ[1:]
		if !c.dirty {
			continue
		}
		c.dirty = false
		q.eval(c)
	}
}

// step charges one budget step for a node traversal. Every scan of a
// (node, context) item counts — including rescans during fixpoint
// iteration — matching the paper's "each node traversal being counted as
// one step" and ensuring the budget bounds total traversal work.
func (q *query) step() {
	q.steps++
	if q.recording {
		return
	}
	if b := q.s.cfg.Budget; b > 0 && q.steps > b {
		q.outOfBudget(0, false)
	}
}

// outOfBudget implements OUTOFBUDGET(BDG) of Algorithm 2: record an
// unfinished jmp edge for every open expansion frame, then abort the query.
// bdg is 0 for plain budget exhaustion, or the unfinished-jmp cost s when an
// early termination fires (Algorithm 2 line 3).
func (q *query) outOfBudget(bdg int, earlyTermination bool) {
	// Snapshot the partial frontier — every expansion still open — for the
	// autopsy before unwinding; fill reads it from the prof in the abort
	// recovery path.
	if p := q.prof; p != nil {
		p.frontier = make([]FrameRecord, len(q.frames))
		for i, f := range q.frames {
			p.frontier[i] = FrameRecord{Key: f.key, Steps: q.steps - f.s0}
		}
	}
	if st := q.s.cfg.Share; st != nil {
		b := q.s.cfg.Budget
		for _, f := range q.frames {
			s := bdg + q.steps - f.s0
			if b > 0 && s > b {
				s = b
			}
			st.PutUnfinished(f.key, s)
		}
	}
	panic(budgetAbort{earlyTermination: earlyTermination})
}

// eval (re)scans computation c's frontier. Items are processed in discovery
// order; first scans charge a budget step and expand the direct (non-heap)
// edges, and every scan re-runs the heap expansion (reachable) so results
// that grew since the last scan are picked up.
//
// With span tracing on, every scan becomes one span (SpCompPts/SpCompFls:
// node, context depth, steps consumed) on the solver's worker track. The
// close is deferred so a budget abort unwinding through the scan still
// records the span with the steps consumed up to the abort.
func (q *query) eval(c *comp) {
	if sink := q.s.cfg.Obs; sink.SpanTracing() && !q.recording {
		t0 := sink.SpanStart()
		s0 := q.steps
		kind := obs.SpCompPts
		if c.key.kind == kindFls {
			kind = obs.SpCompFls
		}
		defer func() {
			sink.Span(kind, q.s.cfg.Worker, t0, int64(c.key.node), int64(q.steps-s0), int64(c.key.ctx.Depth()))
		}()
	}
	for i := 0; i < len(c.vlist); i++ {
		it := c.vlist[i]
		if p := q.prof; p != nil && !q.recording {
			p.nodes[it.Node]++
		}
		q.step()
		if _, done := c.stepped[it]; !done {
			c.stepped[it] = struct{}{}
			q.expandDirect(c, it)
		}
		for _, r := range q.reachable(c, it) {
			q.pushEdge(c, r, it, "heap")
		}
	}
}

// expandDirect traverses the new/assign/param/ret edges at item it,
// implementing lines 7–15 of Algorithm 1 (backward) and their mirror image
// (forward).
func (q *query) expandDirect(c *comp, it pag.NodeCtx) {
	switch c.key.kind {
	case kindPts:
		for _, he := range q.g.In(it.Node) {
			switch he.Kind {
			case pag.EdgeNew:
				// x <-new- o: o (under the current context) is in
				// the points-to set.
				fact := pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}
				if q.wit {
					if _, dup := c.objSrc[fact]; !dup {
						c.objSrc[fact] = it
					}
				}
				q.grow(c, fact)
			case pag.EdgeAssignLocal:
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}, it, edgeLabel(he.Kind, he.Label))
			case pag.EdgeAssignGlobal:
				// Globals are context-insensitive: clear the context.
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, edgeLabel(he.Kind, he.Label))
			case pag.EdgeParam:
				// Moving formal -> actual exits the callee at site i:
				// pop a matching site, or continue unbalanced on an
				// empty context.
				i := pag.CallSiteID(he.Label)
				if it.Ctx.Empty() {
					q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, edgeLabel(he.Kind, he.Label))
				} else if it.Ctx.Top() == i {
					q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.Pop()}, it, edgeLabel(he.Kind, he.Label))
				}
			case pag.EdgeRet:
				// Moving receiver -> callee return enters the callee
				// at site i: push (k-limited when configured).
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.PushK(pag.CallSiteID(he.Label), q.s.cfg.ContextK)}, it, edgeLabel(he.Kind, he.Label))
			}
		}
	case kindFls:
		if q.g.Node(it.Node).Kind.IsVariable() {
			// Every variable reached forward is an element of the
			// flowsTo set.
			q.grow(c, it)
		}
		// All forward pushes go through pushEdge so parent provenance is
		// recorded for witness queries, exactly as in the backward branch
		// (Explain/ExplainFlows reconstruct paths from it).
		for _, he := range q.g.Out(it.Node) {
			switch he.Kind {
			case pag.EdgeNew:
				// o -new-> l: the object starts flowing at l.
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}, it, edgeLabel(he.Kind, he.Label))
			case pag.EdgeAssignLocal:
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}, it, edgeLabel(he.Kind, he.Label))
			case pag.EdgeAssignGlobal:
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, edgeLabel(he.Kind, he.Label))
			case pag.EdgeParam:
				// Moving actual -> formal enters the callee: push
				// (k-limited when configured).
				q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.PushK(pag.CallSiteID(he.Label), q.s.cfg.ContextK)}, it, edgeLabel(he.Kind, he.Label))
			case pag.EdgeRet:
				// Moving callee return -> receiver exits the callee:
				// pop a matching site, or continue on empty.
				i := pag.CallSiteID(he.Label)
				if it.Ctx.Empty() {
					q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, edgeLabel(he.Kind, he.Label))
				} else if it.Ctx.Top() == i {
					q.pushEdge(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.Pop()}, it, edgeLabel(he.Kind, he.Label))
				}
			}
		}
	}
}
