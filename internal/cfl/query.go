package cfl

import (
	"parcfl/internal/bitset"
	"parcfl/internal/kernel"
	"parcfl/internal/obs"
	"parcfl/internal/pag"
	"parcfl/internal/ptcache"
	"parcfl/internal/share"
)

// compKind distinguishes the two traversal directions.
type compKind uint8

const (
	// kindPts is the backward (flowsTo-bar / points-to) direction.
	kindPts compKind = iota
	// kindFls is the forward (flowsTo) direction.
	kindFls
)

// compKey identifies one memoised traversal: direction plus start
// (node, context).
type compKey struct {
	kind compKind
	node pag.NodeID
	ctx  pag.Context
}

type compState uint8

const (
	compRunning compState = iota
	compDone
)

// comp is one memoised computation with a monotonically growing result set.
type comp struct {
	key   compKey
	state compState
	dirty bool
	// cached marks a computation materialised from the cross-query
	// result cache: its set is final and it is never evaluated.
	cached bool

	// set/order hold the result: (object, ctx) pairs for kindPts,
	// (variable, ctx) pairs for kindFls. order preserves insertion order
	// for deterministic traversal (and hence deterministic step counts).
	set   map[pag.NodeCtx]struct{}
	order []pag.NodeCtx

	// dependents are computations that consulted this one and must be
	// re-evaluated when the set grows (allocated on first dependency).
	dependents map[*comp]struct{}

	// visited/vlist are the traversal frontier: every (node, ctx) pair
	// ever enqueued. Re-evaluations rescan vlist instead of restarting,
	// and only first visits cost budget steps.
	visited map[pag.NodeCtx]struct{}
	vlist   []pag.NodeCtx
	// stepped marks items whose first scan (budget step + direct-edge
	// expansion) already happened.
	stepped map[pag.NodeCtx]struct{}
	// charged marks jmp shortcuts whose step cost was already added, so
	// rescans do not charge twice (allocated on first charge).
	charged map[share.Key]struct{}

	// kern switches the three membership structures above (set, visited,
	// stepped) from NodeCtx-keyed maps to per-context bitsets over
	// query-local slot indexes (see query.kidx). root holds the bit-plane
	// triple of the first context this computation touches — most
	// computations only ever see a handful — and others carries the rest
	// (linear-scanned; context fan-out per computation is small);
	// lastCtx/last cache the previous lookup. order/vlist/charged and the
	// witness tables are unchanged: the traversal is identical, only set
	// membership is dense.
	kern    bool
	rootOK  bool
	rootCtx pag.Context
	root    kctx
	others  []ctxPlane
	lastCtx pag.Context
	last    *kctx

	// parent and objSrc are witness-recording tables (allocated only when
	// the query runs with witnesses enabled): parent maps each traversal
	// item to its first discovered predecessor and the edge label taken;
	// objSrc maps each result fact to the item whose expansion produced
	// it.
	parent map[pag.NodeCtx]parentInfo
	objSrc map[pag.NodeCtx]pag.NodeCtx
}

// kctx is the kernel-mode membership plane for one context: the same three
// sets comp keeps as maps, as bitsets over query-local slot indexes.
type kctx struct {
	set, visited, stepped kernel.Bitset
}

// ctxPlane pairs a non-root context with its bit-plane triple.
type ctxPlane struct {
	ctx pag.Context
	k   *kctx
}

// kidx interns node n into the current query's slot space: the first touch
// of a node assigns the next sequential index, so the bit planes below span
// only the nodes this query actually visits, in first-touch order — not the
// whole graph. The tables live on the Solver (sized once, to the node
// count) and are invalidated wholesale between queries by bumping the
// generation stamp.
func (q *query) kidx(n pag.NodeID) int {
	s := q.s
	if s.kgen[n] != s.kq {
		s.kgen[n] = s.kq
		s.kslot[n] = s.knext
		s.knext++
	}
	return int(s.kslot[n])
}

// newComp hands out a zeroed comp from the query's bump pool.
func (q *query) newComp() *comp {
	if len(q.compPool) == 0 {
		q.compPool = make([]comp, 64)
	}
	c := &q.compPool[0]
	q.compPool = q.compPool[1:]
	return c
}

// allocKctx hands out a kctx from the query's bump pool (one real
// allocation per chunk of 128; pointers into the chunk keep it alive).
func (q *query) allocKctx() *kctx {
	if len(q.kctxPool) == 0 {
		q.kctxPool = make([]kctx, 128)
	}
	k := &q.kctxPool[0]
	q.kctxPool = q.kctxPool[1:]
	return k
}

// newPlanes backs a fresh bit-plane triple with words carved from the
// query's slab pool, each plane pre-sized to the query's current slot count
// — a computation created mid-query immediately holds planes wide enough
// for every slot interned so far, so regrowth is rare, and thousands of
// plane allocations collapse into a few pool refills. A plane that does
// outgrow its carved capacity reallocates independently (the carve is
// capacity-limited), never clobbering its slab neighbours.
func (q *query) newPlanes(k *kctx) {
	w := int(q.s.knext)>>6 + 1
	if len(q.slabPool) < 3*w {
		n := 4096
		if 3*w > n {
			n = 3 * w
		}
		q.slabPool = make([]uint64, n)
	}
	slab := q.slabPool[:3*w]
	q.slabPool = q.slabPool[3*w:]
	k.set = bitset.FromWords(slab[0:w:w])
	k.visited = bitset.FromWords(slab[w : 2*w : 2*w])
	k.stepped = bitset.FromWords(slab[2*w : 3*w : 3*w])
}

// bits returns c's kernel-mode bit-plane for ctx, creating it on first use.
// The first context is stored inline and the rest are linear-scanned — a
// map would cost an allocation and a string hash per lookup for fan-outs
// that are nearly always in the single digits.
func (q *query) bits(c *comp, ctx pag.Context) *kctx {
	if c.last != nil && c.lastCtx == ctx {
		return c.last
	}
	var k *kctx
	switch {
	case !c.rootOK:
		c.rootOK, c.rootCtx = true, ctx
		k = &c.root
		q.newPlanes(k)
	case c.rootCtx == ctx:
		k = &c.root
	default:
		for _, p := range c.others {
			if p.ctx == ctx {
				k = p.k
				break
			}
		}
		if k == nil {
			k = q.allocKctx()
			q.newPlanes(k)
			c.others = append(c.others, ctxPlane{ctx: ctx, k: k})
		}
	}
	c.lastCtx, c.last = ctx, k
	return k
}

// addResult adds nc to c's result set, reporting whether it was new.
func (q *query) addResult(c *comp, nc pag.NodeCtx) bool {
	if c.kern {
		if !q.bits(c, nc.Ctx).set.Set(q.kidx(nc.Node)) {
			return false
		}
		c.order = append(c.order, nc)
		return true
	}
	if _, ok := c.set[nc]; ok {
		return false
	}
	c.set[nc] = struct{}{}
	c.order = append(c.order, nc)
	return true
}

// pushItem enqueues nc on c's frontier unless already visited.
func (q *query) pushItem(c *comp, nc pag.NodeCtx) {
	if c.kern {
		if q.bits(c, nc.Ctx).visited.Set(q.kidx(nc.Node)) {
			c.vlist = append(c.vlist, nc)
		}
		return
	}
	if _, ok := c.visited[nc]; ok {
		return
	}
	c.visited[nc] = struct{}{}
	c.vlist = append(c.vlist, nc)
}

// seenItem reports whether nc has ever been enqueued on c's frontier.
func (q *query) seenItem(c *comp, nc pag.NodeCtx) bool {
	if c.kern {
		return q.bits(c, nc.Ctx).visited.Has(q.kidx(nc.Node))
	}
	_, ok := c.visited[nc]
	return ok
}

// firstScan marks nc's first full scan (budget step + direct-edge
// expansion), reporting whether this call was that first scan.
func (q *query) firstScan(c *comp, nc pag.NodeCtx) bool {
	if c.kern {
		return q.bits(c, nc.Ctx).stepped.Set(q.kidx(nc.Node))
	}
	if _, done := c.stepped[nc]; done {
		return false
	}
	c.stepped[nc] = struct{}{}
	return true
}

// frame is an in-progress alias expansion, the query-local S of
// Algorithm 2: if the query runs out of budget, an unfinished jmp edge is
// recorded for every open frame.
type frame struct {
	key share.Key
	s0  int // steps when the expansion started
}

// budgetAbort is the panic value used to unwind a query that ran out of
// budget (the paper's OutOfBudget/exit()).
type budgetAbort struct {
	earlyTermination bool
}

// query is the per-query state: the memo table, dirty queue, step counter
// and sharing bookkeeping. It lives for a single Solver.PointsTo/FlowsTo
// call.
type query struct {
	s *Solver
	g *pag.Graph

	comps  map[compKey]*comp
	dirtyQ []*comp

	steps      int
	jumpsTaken int
	stepsSaved int

	frames []frame

	// candidates maps expansion keys performed by this query to their
	// (maximum observed) step cost; successful queries convert them to
	// finished jmp edges at the end.
	candidates map[share.Key]int
	// approxUsed records fields matched approximately (refinement
	// feedback), in first-use order.
	approxUsed  map[pag.FieldID]struct{}
	approxOrder []pag.FieldID
	// recording disables budget checks while candidates are being
	// re-expanded for recording (bookkeeping, not analysis work).
	recording bool
	// wit enables witness recording (see Explain).
	wit bool
	// kctxPool/slabPool/compPool are kernel-mode bump pools (see
	// allocKctx/newPlanes/newComp); nil and unused in map mode.
	kctxPool []kctx
	slabPool []uint64
	compPool []comp
	// prof accumulates budget attribution (nil unless Config.Profile);
	// every hook site guards on the pointer so the off path costs one
	// comparison.
	prof *queryProf
}

func newQuery(s *Solver) *query {
	q := &query{
		s:          s,
		g:          s.g,
		comps:      make(map[compKey]*comp),
		candidates: make(map[share.Key]int),
		approxUsed: make(map[pag.FieldID]struct{}),
	}
	if s.cfg.Profile {
		q.prof = newQueryProf()
	}
	if s.cfg.Kernel != nil {
		// New query generation: every slot assignment of the previous
		// query is invalidated by the stamp bump, no clearing needed.
		s.kq++
		s.knext = 0
	}
	return q
}

// resolve returns the computation for k, creating it if needed; created
// computations start evaluating immediately (state running while on the
// evaluation stack).
func (q *query) run(k compKey) *comp {
	if c, ok := q.comps[k]; ok {
		return c
	}
	// Consult the cross-query result cache: a hit materialises a final
	// computation without any traversal. Witness queries skip the cache
	// (cached results carry no provenance).
	if pc := q.s.cfg.Cache; pc != nil && !q.wit {
		ck := ptcache.Key{Dir: ptcache.Backward, Node: k.node, Ctx: k.ctx}
		if k.kind == kindFls {
			ck.Dir = ptcache.Forward
		}
		if set, ok := pc.Get(ck); ok {
			c := &comp{
				key:    k,
				state:  compDone,
				cached: true,
				order:  set,
			}
			q.comps[k] = c
			// A cache hit costs one traversal step. Attribute before
			// charging so the step is booked even if it trips the budget.
			if p := q.prof; p != nil && !q.recording {
				p.cache++
			}
			q.step()
			return c
		}
	}
	var c *comp
	if q.s.cfg.Kernel != nil {
		c = q.newComp()
		c.key = k
		c.state = compRunning
		c.kern = true
	} else {
		c = &comp{
			key:     k,
			state:   compRunning,
			set:     make(map[pag.NodeCtx]struct{}),
			visited: make(map[pag.NodeCtx]struct{}),
			stepped: make(map[pag.NodeCtx]struct{}),
		}
	}
	if q.wit {
		c.parent = make(map[pag.NodeCtx]parentInfo)
		c.objSrc = make(map[pag.NodeCtx]pag.NodeCtx)
	}
	q.comps[k] = c
	q.pushItem(c, pag.NodeCtx{Node: k.node, Ctx: k.ctx})
	q.eval(c)
	c.state = compDone
	return c
}

// publishCache shares every fixpointed computation of a successfully
// completed query with the cross-query result cache. Result slices are no
// longer mutated once the query ends, so they are shared without copying.
func (q *query) publishCache() {
	pc := q.s.cfg.Cache
	if pc == nil || q.wit {
		return
	}
	for k, c := range q.comps {
		if c.cached || c.state != compDone {
			continue
		}
		ck := ptcache.Key{Dir: ptcache.Backward, Node: k.node, Ctx: k.ctx}
		if k.kind == kindFls {
			ck.Dir = ptcache.Forward
		}
		pc.Put(ck, c.order)
	}
}

// depend records that consumer consulted dep and must be re-evaluated when
// dep's result grows. Self-dependencies are real and must be kept: a
// computation like pts(p) for `p = p.next` consults its own partial result,
// and growing it later must trigger a rescan of the consulting expansion.
func (q *query) depend(dep, consumer *comp) {
	if dep.dependents == nil {
		dep.dependents = make(map[*comp]struct{})
	}
	dep.dependents[consumer] = struct{}{}
}

// grow adds nc to c's result set, dirtying dependents on growth.
func (q *query) grow(c *comp, nc pag.NodeCtx) {
	if !q.addResult(c, nc) {
		return
	}
	for d := range c.dependents {
		q.markDirty(d)
	}
}

// pushEdge enqueues a traversal item reached from `from` over the edge
// described by label, recording provenance when witnesses are enabled.
func (q *query) pushEdge(c *comp, nc, from pag.NodeCtx, label string) {
	if q.wit {
		if !q.seenItem(c, nc) {
			c.parent[nc] = parentInfo{from: from, label: label}
		}
	}
	q.pushItem(c, nc)
}

// pushEdgeK is pushEdgeHE for a push that stays on an already-resolved
// kernel plane k (the pushed item's context equals the plane's context):
// the membership test hits k's bitsets directly instead of re-resolving the
// plane through bits. Callers in map mode pass k == nil and fall through to
// the generic path.
func (q *query) pushEdgeK(c *comp, k *kctx, nc, from pag.NodeCtx, he pag.HalfEdge) {
	if k == nil {
		q.pushEdgeHE(c, nc, from, he)
		return
	}
	i := q.kidx(nc.Node)
	if q.wit && !k.visited.Has(i) {
		c.parent[nc] = parentInfo{from: from, label: edgeLabel(he.Kind, he.Label)}
	}
	if k.visited.Set(i) {
		c.vlist = append(c.vlist, nc)
	}
}

// growK is grow for a result that stays on an already-resolved kernel
// plane k; see pushEdgeK.
func (q *query) growK(c *comp, k *kctx, nc pag.NodeCtx) {
	if k == nil {
		q.grow(c, nc)
		return
	}
	if !k.set.Set(q.kidx(nc.Node)) {
		return
	}
	c.order = append(c.order, nc)
	for d := range c.dependents {
		q.markDirty(d)
	}
}

// pushEdgeHE is pushEdge for a PAG half-edge: the label string is rendered
// only on the witness path — formatting it eagerly for every edge push was
// a double-digit share of solver CPU on witness-less batch runs.
func (q *query) pushEdgeHE(c *comp, nc, from pag.NodeCtx, he pag.HalfEdge) {
	if q.wit {
		if !q.seenItem(c, nc) {
			c.parent[nc] = parentInfo{from: from, label: edgeLabel(he.Kind, he.Label)}
		}
	}
	q.pushItem(c, nc)
}

// markDirty queues c for re-evaluation. A computation that is still running
// is queued too: its in-progress scan may already have passed the items
// affected by the growth, so a post-completion rescan is required.
func (q *query) markDirty(c *comp) {
	if !c.dirty {
		c.dirty = true
		q.dirtyQ = append(q.dirtyQ, c)
	}
}

// drainDirty re-evaluates computations until the query-local fixpoint.
func (q *query) drainDirty() {
	for len(q.dirtyQ) > 0 {
		c := q.dirtyQ[0]
		q.dirtyQ = q.dirtyQ[1:]
		if !c.dirty {
			continue
		}
		c.dirty = false
		q.eval(c)
	}
}

// step charges one budget step for a node traversal. Every scan of a
// (node, context) item counts — including rescans during fixpoint
// iteration — matching the paper's "each node traversal being counted as
// one step" and ensuring the budget bounds total traversal work.
func (q *query) step() {
	q.steps++
	if q.recording {
		return
	}
	if b := q.s.cfg.Budget; b > 0 && q.steps > b {
		q.outOfBudget(0, false)
	}
}

// outOfBudget implements OUTOFBUDGET(BDG) of Algorithm 2: record an
// unfinished jmp edge for every open expansion frame, then abort the query.
// bdg is 0 for plain budget exhaustion, or the unfinished-jmp cost s when an
// early termination fires (Algorithm 2 line 3).
func (q *query) outOfBudget(bdg int, earlyTermination bool) {
	// Snapshot the partial frontier — every expansion still open — for the
	// autopsy before unwinding; fill reads it from the prof in the abort
	// recovery path.
	if p := q.prof; p != nil {
		p.frontier = make([]FrameRecord, len(q.frames))
		for i, f := range q.frames {
			p.frontier[i] = FrameRecord{Key: f.key, Steps: q.steps - f.s0}
		}
	}
	if st := q.s.cfg.Share; st != nil {
		b := q.s.cfg.Budget
		for _, f := range q.frames {
			s := bdg + q.steps - f.s0
			if b > 0 && s > b {
				s = b
			}
			st.PutUnfinished(f.key, s)
		}
	}
	panic(budgetAbort{earlyTermination: earlyTermination})
}

// eval (re)scans computation c's frontier. Items are processed in discovery
// order; first scans charge a budget step and expand the direct (non-heap)
// edges, and every scan re-runs the heap expansion (reachable) so results
// that grew since the last scan are picked up.
//
// With span tracing on, every scan becomes one span (SpCompPts/SpCompFls:
// node, context depth, steps consumed) on the solver's worker track. The
// close is deferred so a budget abort unwinding through the scan still
// records the span with the steps consumed up to the abort.
func (q *query) eval(c *comp) {
	if sink := q.s.cfg.Obs; sink.SpanTracing() && !q.recording {
		t0 := sink.SpanStart()
		s0 := q.steps
		kind := obs.SpCompPts
		if c.key.kind == kindFls {
			kind = obs.SpCompFls
		}
		defer func() {
			sink.Span(kind, q.s.cfg.Worker, t0, int64(c.key.node), int64(q.steps-s0), int64(c.key.ctx.Depth()))
		}()
	}
	for i := 0; i < len(c.vlist); i++ {
		it := c.vlist[i]
		if p := q.prof; p != nil && !q.recording {
			p.nodes[it.Node]++
		}
		q.step()
		if c.kern {
			// Resolve the plane for it.Ctx once: expandDirect's pushes that
			// keep the item's context reuse it, skipping the context compare
			// in bits (the dominant cost of the kernel hot loop otherwise).
			k := q.bits(c, it.Ctx)
			if k.stepped.Set(q.kidx(it.Node)) {
				q.expandDirect(c, k, it)
			}
		} else if q.firstScan(c, it) {
			q.expandDirect(c, nil, it)
		}
		for _, r := range q.reachable(c, it) {
			q.pushEdge(c, r, it, "heap")
		}
	}
}

// Edge-slice selection: in kernel mode the loops below walk the Prep's
// filtered CSR rows instead of the graph's mixed-kind adjacency lists. The
// kernel rows preserve per-node edge order and only drop edges the loop
// bodies skip anyway (their kind filters stay in place, passing trivially),
// so both modes traverse identically.

func (q *query) dirIn(n pag.NodeID) []pag.HalfEdge {
	if k := q.s.cfg.Kernel; k != nil {
		return k.DirIn(n)
	}
	return q.g.In(n)
}

func (q *query) dirOut(n pag.NodeID) []pag.HalfEdge {
	if k := q.s.cfg.Kernel; k != nil {
		return k.DirOut(n)
	}
	return q.g.Out(n)
}

func (q *query) loadsIn(n pag.NodeID) []pag.HalfEdge {
	if k := q.s.cfg.Kernel; k != nil {
		return k.LoadIn(n)
	}
	return q.g.In(n)
}

func (q *query) storesOut(n pag.NodeID) []pag.HalfEdge {
	if k := q.s.cfg.Kernel; k != nil {
		return k.StoreOut(n)
	}
	return q.g.Out(n)
}

func (q *query) storesIn(n pag.NodeID) []pag.HalfEdge {
	if k := q.s.cfg.Kernel; k != nil {
		return k.StoreIn(n)
	}
	return q.g.In(n)
}

func (q *query) loadsOut(n pag.NodeID) []pag.HalfEdge {
	if k := q.s.cfg.Kernel; k != nil {
		return k.LoadOut(n)
	}
	return q.g.Out(n)
}

// expandDirect traverses the new/assign/param/ret edges at item it,
// implementing lines 7–15 of Algorithm 1 (backward) and their mirror image
// (forward). In kernel mode the caller passes it.Ctx's resolved plane k
// (nil in map mode): pushes that keep the item's context use it directly.
func (q *query) expandDirect(c *comp, k *kctx, it pag.NodeCtx) {
	switch c.key.kind {
	case kindPts:
		for _, he := range q.dirIn(it.Node) {
			switch he.Kind {
			case pag.EdgeNew:
				// x <-new- o: o (under the current context) is in
				// the points-to set.
				fact := pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}
				if q.wit {
					if _, dup := c.objSrc[fact]; !dup {
						c.objSrc[fact] = it
					}
				}
				q.growK(c, k, fact)
			case pag.EdgeAssignLocal:
				q.pushEdgeK(c, k, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}, it, he)
			case pag.EdgeAssignGlobal:
				// Globals are context-insensitive: clear the context.
				q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, he)
			case pag.EdgeParam:
				// Moving formal -> actual exits the callee at site i:
				// pop a matching site, or continue unbalanced on an
				// empty context.
				i := pag.CallSiteID(he.Label)
				if it.Ctx.Empty() {
					q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, he)
				} else if it.Ctx.Top() == i {
					q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.Pop()}, it, he)
				}
			case pag.EdgeRet:
				// Moving receiver -> callee return enters the callee
				// at site i: push (k-limited when configured).
				q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.PushK(pag.CallSiteID(he.Label), q.s.cfg.ContextK)}, it, he)
			}
		}
	case kindFls:
		if q.g.Node(it.Node).Kind.IsVariable() {
			// Every variable reached forward is an element of the
			// flowsTo set.
			q.growK(c, k, it)
		}
		// All forward pushes go through pushEdge so parent provenance is
		// recorded for witness queries, exactly as in the backward branch
		// (Explain/ExplainFlows reconstruct paths from it).
		for _, he := range q.dirOut(it.Node) {
			switch he.Kind {
			case pag.EdgeNew:
				// o -new-> l: the object starts flowing at l.
				q.pushEdgeK(c, k, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}, it, he)
			case pag.EdgeAssignLocal:
				q.pushEdgeK(c, k, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx}, it, he)
			case pag.EdgeAssignGlobal:
				q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, he)
			case pag.EdgeParam:
				// Moving actual -> formal enters the callee: push
				// (k-limited when configured).
				q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.PushK(pag.CallSiteID(he.Label), q.s.cfg.ContextK)}, it, he)
			case pag.EdgeRet:
				// Moving callee return -> receiver exits the callee:
				// pop a matching site, or continue on empty.
				i := pag.CallSiteID(he.Label)
				if it.Ctx.Empty() {
					q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: pag.EmptyContext}, it, he)
				} else if it.Ctx.Top() == i {
					q.pushEdgeHE(c, pag.NodeCtx{Node: he.Other, Ctx: it.Ctx.Pop()}, it, he)
				}
			}
		}
	}
}
