package cfl

import (
	"sort"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/share"
)

func fig2(t *testing.T) *frontend.Fig2 {
	t.Helper()
	f, err := frontend.BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func objsOf(r Result) []pag.NodeID {
	o := r.Objects()
	sort.Slice(o, func(i, j int) bool { return o[i] < o[j] })
	return o
}

func wantObjs(t *testing.T, name string, r Result, want ...pag.NodeID) {
	t.Helper()
	if r.Aborted {
		t.Fatalf("%s: query aborted", name)
	}
	got := objsOf(r)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%s: points-to = %v, want %v", name, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: points-to = %v, want %v", name, got, want)
		}
	}
}

// TestFig2PointsTo checks the exact facts the paper derives from Fig. 2:
// s1main points to o16 (via matched param17/param17 then param18/ret18) but
// NOT to o20, and symmetrically for s2main.
func TestFig2PointsTo(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})

	wantObjs(t, "s1", s.PointsTo(f.S1, pag.EmptyContext), f.O16)
	wantObjs(t, "s2", s.PointsTo(f.S2, pag.EmptyContext), f.O20)
	wantObjs(t, "v1", s.PointsTo(f.V1, pag.EmptyContext), f.O15)
	wantObjs(t, "v2", s.PointsTo(f.V2, pag.EmptyContext), f.O19)
	wantObjs(t, "n1", s.PointsTo(f.N1, pag.EmptyContext), f.O16)
	wantObjs(t, "n2", s.PointsTo(f.N2, pag.EmptyContext), f.O20)
	// tget holds the Object[] array o6 regardless of receiver.
	wantObjs(t, "tget", s.PointsTo(f.TGet, pag.EmptyContext), f.O6)
	wantObjs(t, "tadd", s.PointsTo(f.TAdd, pag.EmptyContext), f.O6)
	// thisVector is the ctor receiver for both vectors.
	wantObjs(t, "thisVector", s.PointsTo(f.ThisVector, pag.EmptyContext), f.O15, f.O19)
	// eadd receives both n1 and n2 across call sites (empty query context
	// allows partially balanced paths).
	wantObjs(t, "eadd", s.PointsTo(f.EAdd, pag.EmptyContext), f.O16, f.O20)
	// retget reads both elements out of the shared backing array, but the
	// ret18/ret22 matching separates them at s1/s2.
	wantObjs(t, "retget", s.PointsTo(f.RetGet, pag.EmptyContext), f.O16, f.O20)
}

// TestFig2ContextSensitivity pins the headline precision claim: the
// context-insensitive answer would conflate s1/s2, the CFL answer does not.
func TestFig2ContextSensitivity(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	r1 := s.PointsTo(f.S1, pag.EmptyContext)
	for _, o := range r1.Objects() {
		if o == f.O20 {
			t.Fatal("s1 spuriously points to o20 (context-sensitivity broken)")
		}
	}
	r2 := s.PointsTo(f.S2, pag.EmptyContext)
	for _, o := range r2.Objects() {
		if o == f.O16 {
			t.Fatal("s2 spuriously points to o16 (context-sensitivity broken)")
		}
	}
}

// TestFig2FlowsTo checks the forward direction, including the paper's
// example fact "o6 flows to tget" and "o15 flows to thisVector".
func TestFig2FlowsTo(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})

	vars := func(r Result) map[pag.NodeID]bool {
		m := map[pag.NodeID]bool{}
		for _, nc := range r.PointsTo {
			m[nc.Node] = true
		}
		return m
	}

	r6 := s.FlowsTo(f.O6, pag.EmptyContext)
	v6 := vars(r6)
	for _, want := range []pag.NodeID{f.TVector, f.TAdd, f.TGet} {
		if !v6[want] {
			t.Errorf("o6 should flow to %s", s.Graph().Node(want).Name)
		}
	}
	if v6[f.S1] || v6[f.S2] || v6[f.ThisVector] {
		t.Error("o6 flows to spurious variables")
	}

	r15 := s.FlowsTo(f.O15, pag.EmptyContext)
	v15 := vars(r15)
	for _, want := range []pag.NodeID{f.V1, f.ThisVector, f.ThisAdd, f.ThisGet} {
		if !v15[want] {
			t.Errorf("o15 should flow to %s", s.Graph().Node(want).Name)
		}
	}
	if v15[f.V2] {
		t.Error("o15 flows to v2")
	}

	r16 := s.FlowsTo(f.O16, pag.EmptyContext)
	v16 := vars(r16)
	for _, want := range []pag.NodeID{f.N1, f.EAdd, f.S1} {
		if !v16[want] {
			t.Errorf("o16 should flow to %s", s.Graph().Node(want).Name)
		}
	}
	if v16[f.S2] || v16[f.N2] {
		t.Error("o16 flows to s2/n2 (context-sensitivity broken)")
	}
}

// TestFig2Alias checks the paper's alias example: thisVector alias thisget.
func TestFig2Alias(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	if a, ok := s.Alias(f.ThisVector, f.ThisGet, pag.EmptyContext); !a || !ok {
		t.Fatalf("thisVector alias thisget = %v (ok=%v), want true", a, ok)
	}
	if a, _ := s.Alias(f.N1, f.N2, pag.EmptyContext); a {
		t.Fatal("n1 alias n2, want false")
	}
	if a, _ := s.Alias(f.S1, f.S2, pag.EmptyContext); a {
		t.Fatal("s1 alias s2, want false")
	}
	if a, _ := s.Alias(f.TAdd, f.TGet, pag.EmptyContext); !a {
		t.Fatal("tadd alias tget, want true (shared backing array)")
	}
}

// TestQueryInCallingContext exercises a non-empty initial context: querying
// eadd in the context of call site 17 must see only n1's object.
func TestQueryInCallingContext(t *testing.T) {
	f := fig2(t)
	g := f.Lowered.Graph
	s := New(g, Config{})
	// Find the call sites used for add(v1, n1) and add(v2, n2) from
	// eadd's incoming param edges; n1's edge carries the first.
	var site17, site21 pag.CallSiteID
	for _, he := range g.In(f.EAdd) {
		if he.Kind == pag.EdgeParam {
			if he.Other == f.N1 {
				site17 = pag.CallSiteID(he.Label)
			}
			if he.Other == f.N2 {
				site21 = pag.CallSiteID(he.Label)
			}
		}
	}
	if site17 == 0 || site21 == 0 {
		t.Fatal("could not locate add call sites")
	}
	wantObjs(t, "eadd@17", s.PointsTo(f.EAdd, pag.EmptyContext.Push(site17)), f.O16)
	wantObjs(t, "eadd@21", s.PointsTo(f.EAdd, pag.EmptyContext.Push(site21)), f.O20)
}

func TestBudgetAbort(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{Budget: 3})
	r := s.PointsTo(f.S1, pag.EmptyContext)
	if !r.Aborted {
		t.Fatal("budget 3 did not abort the s1 query")
	}
	if r.EarlyTerminated {
		t.Fatal("abort misreported as early termination")
	}
	if r.Steps < 3 {
		t.Fatalf("Steps = %d, want >= 3", r.Steps)
	}
	// A generous budget must not abort and must match the unbudgeted run.
	s2 := New(f.Lowered.Graph, Config{Budget: 100000})
	r2 := s2.PointsTo(f.S1, pag.EmptyContext)
	if r2.Aborted {
		t.Fatal("generous budget aborted")
	}
	wantObjs(t, "s1@budget", r2, f.O16)
}

// TestSharingSameResults runs every Fig. 2 query twice against a shared
// store: the second run must take shortcuts (on the expensive queries) and
// return identical results.
func TestSharingSameResults(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	plain := New(f.Lowered.Graph, Config{})
	shared := New(f.Lowered.Graph, Config{Share: st})

	queryVars := f.Lowered.AppQueryVars
	// First pass populates the store.
	for _, v := range queryVars {
		shared.PointsTo(v, pag.EmptyContext)
	}
	if st.NumJumps() == 0 {
		t.Fatal("no jmp edges recorded")
	}
	// Second pass must agree with the unshared solver on every query.
	totalTaken := 0
	for _, v := range queryVars {
		a := plain.PointsTo(v, pag.EmptyContext)
		b := shared.PointsTo(v, pag.EmptyContext)
		ga, gb := objsOf(a), objsOf(b)
		if len(ga) != len(gb) {
			t.Fatalf("var %s: %v vs %v", f.Lowered.Graph.Node(v).Name, ga, gb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("var %s: %v vs %v", f.Lowered.Graph.Node(v).Name, ga, gb)
			}
		}
		totalTaken += b.JumpsTaken
	}
	if totalTaken == 0 {
		t.Fatal("second pass took no shortcuts")
	}
}

// TestSharingChargesSteps: a query that takes a shortcut must charge the
// recorded cost to its budget, so budget accounting stays comparable to an
// unshared run.
func TestSharingChargesSteps(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	shared := New(f.Lowered.Graph, Config{Share: st})
	shared.PointsTo(f.S1, pag.EmptyContext)
	r := shared.PointsTo(f.S1, pag.EmptyContext)
	if r.JumpsTaken == 0 {
		t.Fatal("repeat query took no shortcut")
	}
	if r.StepsSaved == 0 {
		t.Fatal("StepsSaved not accounted")
	}
	if r.Steps < r.StepsSaved {
		t.Fatalf("Steps (%d) must include charged shortcut cost (%d)", r.Steps, r.StepsSaved)
	}
}

// TestEarlyTermination: an unfinished jmp recorded by an aborted query must
// early-terminate a later query with insufficient budget.
func TestEarlyTermination(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})

	// First query aborts with a mid-sized budget, recording unfinished
	// markers for its open expansions.
	tight := New(f.Lowered.Graph, Config{Budget: 12, Share: st})
	r1 := tight.PointsTo(f.S1, pag.EmptyContext)
	if !r1.Aborted {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}
	snap := st.Snapshot()
	if snap.UnfinishedAdded == 0 {
		t.Fatal("aborted query recorded no unfinished jmp edges")
	}

	// A second query with an even smaller budget must hit the unfinished
	// marker and early-terminate.
	tighter := New(f.Lowered.Graph, Config{Budget: 11, Share: st})
	r2 := tighter.PointsTo(f.S1, pag.EmptyContext)
	if !r2.Aborted {
		t.Fatal("second query completed unexpectedly")
	}
	if !r2.EarlyTerminated {
		t.Fatal("second query aborted without early termination")
	}
	// The early termination must not consume the full budget in steps
	// actually walked: it stopped at the marker.
	if r2.Steps > r1.Steps {
		t.Fatalf("ET query walked %d steps, recording query walked %d", r2.Steps, r1.Steps)
	}
}

// TestAbortedQueryRecordsNoFinishedJumps: finished jmp edges must only come
// from queries that completed (their targets are exact).
func TestAbortedQueryRecordsNoFinishedJumps(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	tight := New(f.Lowered.Graph, Config{Budget: 5, Share: st})
	tight.PointsTo(f.S1, pag.EmptyContext)
	snap := st.Snapshot()
	if snap.FinishedAdded != 0 {
		t.Fatalf("aborted query recorded %d finished jumps", snap.FinishedAdded)
	}
}

func TestFlowsToOnVariableAndPointsToOnObject(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	// PointsTo on an object is vacuous (objects have no incoming value
	// flow) and must return empty rather than crash.
	r := s.PointsTo(f.O15, pag.EmptyContext)
	if len(r.PointsTo) != 0 || r.Aborted {
		t.Fatalf("PointsTo(object) = %+v", r)
	}
}

func TestUnfrozenGraphPanics(t *testing.T) {
	g := pag.NewGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("New on unfrozen graph did not panic")
		}
	}()
	New(g, Config{})
}

func TestResultObjectsDedup(t *testing.T) {
	r := Result{PointsTo: []pag.NodeCtx{
		{Node: 5, Ctx: pag.EmptyContext},
		{Node: 5, Ctx: pag.EmptyContext.Push(1)},
		{Node: 7, Ctx: pag.EmptyContext},
	}}
	o := r.Objects()
	if len(o) != 2 || o[0] != 5 || o[1] != 7 {
		t.Fatalf("Objects = %v", o)
	}
}

// TestDeterminism: repeated runs must produce identical step counts and
// result orders (insertion-ordered sets, sorted indexes).
func TestDeterminism(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	base := s.PointsTo(f.S1, pag.EmptyContext)
	for i := 0; i < 5; i++ {
		r := s.PointsTo(f.S1, pag.EmptyContext)
		if r.Steps != base.Steps {
			t.Fatalf("run %d: steps %d vs %d", i, r.Steps, base.Steps)
		}
		if len(r.PointsTo) != len(base.PointsTo) {
			t.Fatalf("run %d: result size changed", i)
		}
		for j := range r.PointsTo {
			if r.PointsTo[j] != base.PointsTo[j] {
				t.Fatalf("run %d: result order changed", i)
			}
		}
	}
}
