package cfl

import (
	"fmt"

	"parcfl/internal/pag"
)

// WitnessStep is one hop of a points-to explanation: the (node, context)
// visited and the edge that led there from the previous step.
type WitnessStep struct {
	Node pag.NodeID
	Ctx  pag.Context
	// Edge describes how this step was reached from the previous one:
	// "query" for the root, an edge-kind name ("assignl", "param(3)",
	// "ret(7)", "assigng"), "heap" for an alias-expansion hop, or "new"
	// for the final allocation edge.
	Edge string
}

// String renders a step like "main.s1[] <-ret(18)-".
func (w WitnessStep) String() string {
	return fmt.Sprintf("%d%s <-%s-", w.Node, w.Ctx, w.Edge)
}

// parentInfo records the first discovered predecessor of a traversal item.
type parentInfo struct {
	from  pag.NodeCtx
	label string
}

// Explain answers "why does variable v (under ctx) point to obj?" with a
// chain of traversal steps from the query variable to the allocation site.
// Heap hops (matching a load against an aliased store) are summarised as a
// single "heap" step; the sub-derivation of the alias itself can be explored
// by further Explain calls on the base variables. Returns ok=false if v does
// not point to obj (or the query ran out of budget first).
//
// Explanations are a standard demand-analysis client need (the paper's
// debugging use case): a points-to fact without a path is hard to act on.
func (s *Solver) Explain(v pag.NodeID, ctx pag.Context, obj pag.NodeID) ([]WitnessStep, bool) {
	q := newQuery(s)
	q.wit = true

	aborted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(budgetAbort); !isAbort {
					panic(r)
				}
				aborted = true
			}
		}()
		q.run(compKey{kind: kindPts, node: v, ctx: ctx})
		q.drainDirty()
	}()
	// An aborted witness query (plain exhaustion or early termination)
	// yields no explanation: its traversal stopped mid-derivation, so any
	// parent chain found below could be a fragment of an invalid path.
	if aborted {
		return nil, false
	}
	root, ok := q.comps[compKey{kind: kindPts, node: v, ctx: ctx}]
	if !ok {
		return nil, false
	}

	// Find a fact for obj and the item that produced it.
	var factItem pag.NodeCtx
	found := false
	for fact, item := range root.objSrc {
		if fact.Node == obj {
			factItem = item
			found = true
			break
		}
	}
	if !found {
		return nil, false
	}

	// Walk parents from the producing item back to the query root.
	var rev []WitnessStep
	cur := factItem
	for {
		info, has := root.parent[cur]
		if !has {
			rev = append(rev, WitnessStep{Node: cur.Node, Ctx: cur.Ctx, Edge: "query"})
			break
		}
		rev = append(rev, WitnessStep{Node: cur.Node, Ctx: cur.Ctx, Edge: info.label})
		cur = info.from
	}
	// Reverse into query-to-object order and append the allocation hop.
	steps := make([]WitnessStep, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	steps = append(steps, WitnessStep{Node: obj, Ctx: ctx, Edge: "new"})
	return steps, true
}

// ExplainFlows answers the forward question "why does object o (under ctx)
// flow to variable v?" with a chain of traversal steps from the allocation
// site to the variable. It is the mirror of Explain: the flows-to fact for a
// variable is the traversal item itself, so its parent chain leads straight
// back to the object root. Heap hops (a store matched against a load on an
// aliased base) are summarised as single "heap" steps. Returns ok=false if
// o does not flow to v (or the query ran out of budget first).
func (s *Solver) ExplainFlows(o pag.NodeID, ctx pag.Context, v pag.NodeID) ([]WitnessStep, bool) {
	q := newQuery(s)
	q.wit = true

	root := compKey{kind: kindFls, node: o, ctx: ctx}
	aborted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(budgetAbort); !isAbort {
					panic(r)
				}
				aborted = true
			}
		}()
		q.run(root)
		q.drainDirty()
	}()
	// Same contract as Explain: an aborted traversal never yields a
	// (possibly partial) witness path.
	if aborted {
		return nil, false
	}
	c, ok := q.comps[root]
	if !ok {
		return nil, false
	}

	// Find a fact for v, deterministically (insertion order).
	var fact pag.NodeCtx
	found := false
	for _, nc := range c.order {
		if nc.Node == v {
			fact = nc
			found = true
			break
		}
	}
	if !found {
		return nil, false
	}

	// Walk parents from the fact back to the object root.
	var rev []WitnessStep
	cur := fact
	for {
		info, has := c.parent[cur]
		if !has {
			rev = append(rev, WitnessStep{Node: cur.Node, Ctx: cur.Ctx, Edge: "query"})
			break
		}
		rev = append(rev, WitnessStep{Node: cur.Node, Ctx: cur.Ctx, Edge: info.label})
		cur = info.from
	}
	steps := make([]WitnessStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	return steps, true
}

// edgeLabel renders an edge kind with its call-site for param/ret.
func edgeLabel(k pag.EdgeKind, label pag.Label) string {
	switch k {
	case pag.EdgeParam:
		return fmt.Sprintf("param(%d)", label)
	case pag.EdgeRet:
		return fmt.Sprintf("ret(%d)", label)
	default:
		return k.String()
	}
}
