package cfl

import (
	"sort"

	"parcfl/internal/pag"
	"parcfl/internal/share"
)

// Budget attribution: when Config.Profile is set, every step the budget
// machinery charges is also booked against the analysis-semantic event that
// consumed it — the traversal scan of a (node, context) item, the alias
// matching performed under a ld(f)/st(f) site, an approximate field match,
// a finished jmp shortcut's recorded cost, or a result-cache hit. The sum
// of a query's attribution equals its Result.Steps exactly (the
// conservation invariant); internal/autopsy aggregates attributions across
// a batch into the PAG heat profile.

// SiteKey identifies one heap-access matching site: the node whose ld(f)
// (backward) or st(f) (forward) edges were being matched, and the field.
type SiteKey struct {
	Node  pag.NodeID
	Field pag.FieldID
}

// NodeSteps is the traversal cost booked at one PAG node: one step per scan
// of a (node, context) item in the eval loop, summed over contexts and
// rescans.
type NodeSteps struct {
	Node  pag.NodeID
	Steps int64
}

// SiteSteps is the alias-matching cost booked at one (site, field) pair:
// steps charged while examining alias-set and flows-to elements under that
// field (Approx true when the field was matched regularly instead).
type SiteSteps struct {
	Site   SiteKey
	Steps  int64
	Approx bool
}

// JmpCharge is one finished jmp shortcut taken, with the recorded cost
// charged to the budget. The same store entry may appear once per consulting
// computation (the charge is deduplicated per computation, not per query).
type JmpCharge struct {
	Key share.Key
	S   int
}

// Expansion is one full alias expansion this query performed at a
// shareable site — a jmp "miss": either no store entry existed or the entry
// was unfinished but affordable. Cost is the maximum observed step cost.
type Expansion struct {
	Key  share.Key
	Cost int
}

// ETRecord names the unfinished jmp edge that fired an early termination:
// its recorded cost s, and the budget remaining when the edge was met
// (the shortfall is S - Remaining).
type ETRecord struct {
	Key       share.Key
	S         int
	Remaining int
}

// FrameRecord is one alias expansion still open when the query aborted —
// the partial frontier. Steps counts the steps spent since the expansion
// started.
type FrameRecord struct {
	Key   share.Key
	Steps int
}

// Attribution is the per-query budget breakdown, attached to Result.Prof
// when Config.Profile is set. Nodes and Sites are sorted by descending
// steps (ties by node, then field) so the dominant consumers lead.
type Attribution struct {
	Nodes      []NodeSteps
	Sites      []SiteSteps
	Jumps      []JmpCharge
	CacheSteps int64
	Expansions []Expansion
	// ET is non-nil iff the query early-terminated.
	ET *ETRecord
	// Frontier holds the expansions open at abort time (empty for
	// completed queries).
	Frontier []FrameRecord
}

// Sum returns the total attributed steps. The conservation invariant is
// Sum() == int64(Result.Steps) for every query, completed or aborted.
func (a *Attribution) Sum() int64 {
	if a == nil {
		return 0
	}
	total := a.CacheSteps
	for _, n := range a.Nodes {
		total += n.Steps
	}
	for _, s := range a.Sites {
		total += s.Steps
	}
	for _, j := range a.Jumps {
		total += int64(j.S)
	}
	return total
}

// TraversalSteps returns the steps booked to eval-loop item scans.
func (a *Attribution) TraversalSteps() int64 {
	if a == nil {
		return 0
	}
	var total int64
	for _, n := range a.Nodes {
		total += n.Steps
	}
	return total
}

// MatchSteps returns the steps booked to alias matching (precise sites
// only; approx=false entries).
func (a *Attribution) MatchSteps() int64 {
	if a == nil {
		return 0
	}
	var total int64
	for _, s := range a.Sites {
		if !s.Approx {
			total += s.Steps
		}
	}
	return total
}

// ApproxSteps returns the steps booked to regular (approximate) field
// matching.
func (a *Attribution) ApproxSteps() int64 {
	if a == nil {
		return 0
	}
	var total int64
	for _, s := range a.Sites {
		if s.Approx {
			total += s.Steps
		}
	}
	return total
}

// JmpSteps returns the steps charged for finished jmp shortcuts taken.
func (a *Attribution) JmpSteps() int64 {
	if a == nil {
		return 0
	}
	var total int64
	for _, j := range a.Jumps {
		total += int64(j.S)
	}
	return total
}

// queryProf accumulates attribution during a query. It exists only when
// profiling is on; every hook site guards on the nil pointer so the off
// path costs a single comparison and no allocation.
type queryProf struct {
	nodes    map[pag.NodeID]int64
	sites    map[SiteKey]int64
	approx   map[SiteKey]int64
	jumps    []JmpCharge
	cache    int64
	et       *ETRecord
	frontier []FrameRecord
}

func newQueryProf() *queryProf {
	return &queryProf{
		nodes: make(map[pag.NodeID]int64),
		sites: make(map[SiteKey]int64),
	}
}

// site books one alias-matching step under (n, f).
func (p *queryProf) site(n pag.NodeID, f pag.FieldID) {
	p.sites[SiteKey{Node: n, Field: f}]++
}

// approxSite books one approximate-matching step under (n, f).
func (p *queryProf) approxSite(n pag.NodeID, f pag.FieldID) {
	if p.approx == nil {
		p.approx = make(map[SiteKey]int64)
	}
	p.approx[SiteKey{Node: n, Field: f}]++
}

// snapshot materialises the accumulated attribution as a sorted, immutable
// Attribution. Called once per query from fill — before recordCandidates,
// so recording-mode bookkeeping never appears.
func (p *queryProf) snapshot(q *query) *Attribution {
	a := &Attribution{
		CacheSteps: p.cache,
		Jumps:      p.jumps,
		ET:         p.et,
		Frontier:   p.frontier,
	}
	a.Nodes = make([]NodeSteps, 0, len(p.nodes))
	for n, s := range p.nodes {
		a.Nodes = append(a.Nodes, NodeSteps{Node: n, Steps: s})
	}
	sort.Slice(a.Nodes, func(i, j int) bool {
		if a.Nodes[i].Steps != a.Nodes[j].Steps {
			return a.Nodes[i].Steps > a.Nodes[j].Steps
		}
		return a.Nodes[i].Node < a.Nodes[j].Node
	})
	a.Sites = make([]SiteSteps, 0, len(p.sites)+len(p.approx))
	for k, s := range p.sites {
		a.Sites = append(a.Sites, SiteSteps{Site: k, Steps: s})
	}
	for k, s := range p.approx {
		a.Sites = append(a.Sites, SiteSteps{Site: k, Steps: s, Approx: true})
	}
	sort.Slice(a.Sites, func(i, j int) bool {
		si, sj := a.Sites[i], a.Sites[j]
		if si.Steps != sj.Steps {
			return si.Steps > sj.Steps
		}
		if si.Site.Node != sj.Site.Node {
			return si.Site.Node < sj.Site.Node
		}
		return si.Site.Field < sj.Site.Field
	})
	a.Expansions = make([]Expansion, 0, len(q.candidates))
	for k, cost := range q.candidates {
		a.Expansions = append(a.Expansions, Expansion{Key: k, Cost: cost})
	}
	sort.Slice(a.Expansions, func(i, j int) bool {
		ei, ej := a.Expansions[i], a.Expansions[j]
		if ei.Cost != ej.Cost {
			return ei.Cost > ej.Cost
		}
		if ei.Key.Node != ej.Key.Node {
			return ei.Key.Node < ej.Key.Node
		}
		if ei.Key.Dir != ej.Key.Dir {
			return ei.Key.Dir < ej.Key.Dir
		}
		return ei.Key.Ctx.Key() < ej.Key.Ctx.Key()
	})
	return a
}
