package cfl

import (
	"strings"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
	"parcfl/internal/share"
)

func TestExplainFig2(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})

	steps, ok := s.Explain(f.S1, pag.EmptyContext, f.O16)
	if !ok {
		t.Fatal("no witness for s1 -> o16")
	}
	if steps[0].Node != f.S1 || steps[0].Edge != "query" {
		t.Fatalf("witness must start at the query: %v", steps)
	}
	last := steps[len(steps)-1]
	if last.Node != f.O16 || last.Edge != "new" {
		t.Fatalf("witness must end at the allocation: %v", steps)
	}
	// The s1 derivation goes through ret(18)-style and heap hops.
	var sawRet, sawHeap bool
	for _, st := range steps {
		if strings.HasPrefix(st.Edge, "ret(") {
			sawRet = true
		}
		if st.Edge == "heap" {
			sawHeap = true
		}
	}
	if !sawRet || !sawHeap {
		t.Fatalf("expected ret and heap hops in %v", steps)
	}
	// Consecutive steps must be connected (each node is the parent's
	// discovered successor — spot check: no duplicate consecutive nodes
	// with the same context).
	for i := 1; i < len(steps); i++ {
		if steps[i].Node == steps[i-1].Node && steps[i].Ctx == steps[i-1].Ctx {
			t.Fatalf("witness stutters at %d: %v", i, steps)
		}
	}
}

func TestExplainNegative(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	// s1 does not point to o20: no witness.
	if _, ok := s.Explain(f.S1, pag.EmptyContext, f.O20); ok {
		t.Fatal("witness produced for a non-fact")
	}
	// Unknown object.
	if _, ok := s.Explain(f.S1, pag.EmptyContext, f.V2); ok {
		t.Fatal("witness produced for a variable target")
	}
}

func TestExplainDirectAllocation(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	steps, ok := s.Explain(f.V1, pag.EmptyContext, f.O15)
	if !ok {
		t.Fatal("no witness for v1 -> o15")
	}
	// v1 = new Vector: two steps (query, new).
	if len(steps) != 2 {
		t.Fatalf("witness = %v, want [query, new]", steps)
	}
}

// TestExplainMatchesQuery: on random programs, every object in the query
// answer has a witness, and no witness exists for objects outside it.
func TestExplainMatchesQuery(t *testing.T) {
	for seed := int64(500); seed < 520; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		s := New(lo.Graph, Config{})
		for _, v := range lo.AppQueryVars {
			r := s.PointsTo(v, pag.EmptyContext)
			in := map[pag.NodeID]bool{}
			for _, o := range r.Objects() {
				in[o] = true
				steps, ok := s.Explain(v, pag.EmptyContext, o)
				if !ok {
					t.Fatalf("seed %d: no witness for %s -> %s",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
				}
				if steps[0].Node != v || steps[len(steps)-1].Node != o {
					t.Fatalf("seed %d: malformed witness %v", seed, steps)
				}
			}
			for _, o := range lo.Graph.Objects() {
				if in[o] {
					continue
				}
				if _, ok := s.Explain(v, pag.EmptyContext, o); ok {
					t.Fatalf("seed %d: spurious witness for %s -> %s",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
				}
			}
		}
	}
}

// TestExplainFlowsFig2: flows-to witnesses for the forward direction. The
// paper's example fact "o6 flows to tget" must come with a reconstructable
// path from the allocation site to the variable (regression: forward
// traversal used to bypass pushEdge, recording no parent provenance).
func TestExplainFlowsFig2(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})

	steps, ok := s.ExplainFlows(f.O6, pag.EmptyContext, f.TGet)
	if !ok {
		t.Fatal("no witness for o6 ~> tget")
	}
	if steps[0].Node != f.O6 || steps[0].Edge != "query" {
		t.Fatalf("witness must start at the object query: %v", steps)
	}
	last := steps[len(steps)-1]
	if last.Node != f.TGet {
		t.Fatalf("witness must end at the variable: %v", steps)
	}
	// The object enters the graph over its allocation edge.
	if len(steps) < 2 || steps[1].Edge != "new" {
		t.Fatalf("expected a new hop right after the query: %v", steps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Node == steps[i-1].Node && steps[i].Ctx == steps[i-1].Ctx {
			t.Fatalf("witness stutters at %d: %v", i, steps)
		}
	}
}

func TestExplainFlowsNegative(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	// o6 does not flow to s1 (it never leaves the Vector internals).
	if _, ok := s.ExplainFlows(f.O6, pag.EmptyContext, f.S1); ok {
		t.Fatal("witness produced for a non-fact")
	}
	// o16 flows to s1 but not to s2 (context-sensitivity).
	if _, ok := s.ExplainFlows(f.O16, pag.EmptyContext, f.S2); ok {
		t.Fatal("witness produced for context-filtered non-fact")
	}
}

// TestExplainFlowsMatchesQuery: on random programs, every variable in a
// flows-to answer has a witness anchored at the object and the variable.
func TestExplainFlowsMatchesQuery(t *testing.T) {
	for seed := int64(700); seed < 710; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		s := New(lo.Graph, Config{})
		for _, o := range lo.Graph.Objects() {
			r := s.FlowsTo(o, pag.EmptyContext)
			seen := map[pag.NodeID]bool{}
			for _, nc := range r.PointsTo {
				if seen[nc.Node] {
					continue
				}
				seen[nc.Node] = true
				steps, ok := s.ExplainFlows(o, pag.EmptyContext, nc.Node)
				if !ok {
					t.Fatalf("seed %d: no witness for %s ~> %s",
						seed, lo.Graph.Node(o).Name, lo.Graph.Node(nc.Node).Name)
				}
				if steps[0].Node != o || steps[len(steps)-1].Node != nc.Node {
					t.Fatalf("seed %d: malformed witness %v", seed, steps)
				}
			}
		}
	}
}

func TestWitnessStepString(t *testing.T) {
	w := WitnessStep{Node: 7, Ctx: pag.EmptyContext.Push(3), Edge: "assignl"}
	if got := w.String(); !strings.Contains(got, "assignl") || !strings.Contains(got, "7") {
		t.Fatalf("String = %q", got)
	}
}

// TestExplainAbortedQuery: a witness query that runs out of budget must
// return ok=false — never a partial path — even for a fact the full
// analysis would derive.
func TestExplainAbortedQuery(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{Budget: 3})
	// Sanity: the underlying query really does abort at this budget.
	if r := s.PointsTo(f.S1, pag.EmptyContext); !r.Aborted {
		t.Skip("budget 3 unexpectedly sufficient; adjust test budget")
	}
	if steps, ok := s.Explain(f.S1, pag.EmptyContext, f.O16); ok {
		t.Fatalf("aborted Explain returned a witness: %v", steps)
	}
	if steps, ok := s.ExplainFlows(f.O16, pag.EmptyContext, f.S1); ok {
		t.Fatalf("aborted ExplainFlows returned a witness: %v", steps)
	}
}

// TestExplainEarlyTerminatedQuery: an early-terminated witness query (budget
// insufficient for an unfinished jmp marker) must also return ok=false.
func TestExplainEarlyTerminatedQuery(t *testing.T) {
	f := fig2(t)
	st := share.NewStore(share.Config{TauF: 1, TauU: 1, Shards: 8})
	// Populate unfinished markers exactly as in TestEarlyTermination.
	tight := New(f.Lowered.Graph, Config{Budget: 12, Share: st})
	if r := tight.PointsTo(f.S1, pag.EmptyContext); !r.Aborted {
		t.Skip("budget 12 unexpectedly sufficient; adjust test budget")
	}
	tighter := New(f.Lowered.Graph, Config{Budget: 11, Share: st})
	if r := tighter.PointsTo(f.S1, pag.EmptyContext); !r.EarlyTerminated {
		t.Skip("budget 11 did not early-terminate; adjust test budget")
	}
	if steps, ok := tighter.Explain(f.S1, pag.EmptyContext, f.O16); ok {
		t.Fatalf("early-terminated Explain returned a witness: %v", steps)
	}
}

// TestExplainSucceedsWithGenerousBudget: the aborted-query guard must not
// suppress witnesses when the budget suffices.
func TestExplainSucceedsWithGenerousBudget(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{Budget: 100000})
	if _, ok := s.Explain(f.S1, pag.EmptyContext, f.O16); !ok {
		t.Fatal("budgeted Explain found no witness for a real fact")
	}
	if _, ok := s.ExplainFlows(f.O16, pag.EmptyContext, f.S1); !ok {
		t.Fatal("budgeted ExplainFlows found no witness for a real fact")
	}
}
