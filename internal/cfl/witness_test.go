package cfl

import (
	"strings"
	"testing"

	"parcfl/internal/frontend"
	"parcfl/internal/pag"
	"parcfl/internal/randprog"
)

func TestExplainFig2(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})

	steps, ok := s.Explain(f.S1, pag.EmptyContext, f.O16)
	if !ok {
		t.Fatal("no witness for s1 -> o16")
	}
	if steps[0].Node != f.S1 || steps[0].Edge != "query" {
		t.Fatalf("witness must start at the query: %v", steps)
	}
	last := steps[len(steps)-1]
	if last.Node != f.O16 || last.Edge != "new" {
		t.Fatalf("witness must end at the allocation: %v", steps)
	}
	// The s1 derivation goes through ret(18)-style and heap hops.
	var sawRet, sawHeap bool
	for _, st := range steps {
		if strings.HasPrefix(st.Edge, "ret(") {
			sawRet = true
		}
		if st.Edge == "heap" {
			sawHeap = true
		}
	}
	if !sawRet || !sawHeap {
		t.Fatalf("expected ret and heap hops in %v", steps)
	}
	// Consecutive steps must be connected (each node is the parent's
	// discovered successor — spot check: no duplicate consecutive nodes
	// with the same context).
	for i := 1; i < len(steps); i++ {
		if steps[i].Node == steps[i-1].Node && steps[i].Ctx == steps[i-1].Ctx {
			t.Fatalf("witness stutters at %d: %v", i, steps)
		}
	}
}

func TestExplainNegative(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	// s1 does not point to o20: no witness.
	if _, ok := s.Explain(f.S1, pag.EmptyContext, f.O20); ok {
		t.Fatal("witness produced for a non-fact")
	}
	// Unknown object.
	if _, ok := s.Explain(f.S1, pag.EmptyContext, f.V2); ok {
		t.Fatal("witness produced for a variable target")
	}
}

func TestExplainDirectAllocation(t *testing.T) {
	f := fig2(t)
	s := New(f.Lowered.Graph, Config{})
	steps, ok := s.Explain(f.V1, pag.EmptyContext, f.O15)
	if !ok {
		t.Fatal("no witness for v1 -> o15")
	}
	// v1 = new Vector: two steps (query, new).
	if len(steps) != 2 {
		t.Fatalf("witness = %v, want [query, new]", steps)
	}
}

// TestExplainMatchesQuery: on random programs, every object in the query
// answer has a witness, and no witness exists for objects outside it.
func TestExplainMatchesQuery(t *testing.T) {
	for seed := int64(500); seed < 520; seed++ {
		p := randprog.Generate(seed, randprog.DefaultLimits())
		lo, err := frontend.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		s := New(lo.Graph, Config{})
		for _, v := range lo.AppQueryVars {
			r := s.PointsTo(v, pag.EmptyContext)
			in := map[pag.NodeID]bool{}
			for _, o := range r.Objects() {
				in[o] = true
				steps, ok := s.Explain(v, pag.EmptyContext, o)
				if !ok {
					t.Fatalf("seed %d: no witness for %s -> %s",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
				}
				if steps[0].Node != v || steps[len(steps)-1].Node != o {
					t.Fatalf("seed %d: malformed witness %v", seed, steps)
				}
			}
			for _, o := range lo.Graph.Objects() {
				if in[o] {
					continue
				}
				if _, ok := s.Explain(v, pag.EmptyContext, o); ok {
					t.Fatalf("seed %d: spurious witness for %s -> %s",
						seed, lo.Graph.Node(v).Name, lo.Graph.Node(o).Name)
				}
			}
		}
	}
}

func TestWitnessStepString(t *testing.T) {
	w := WitnessStep{Node: 7, Ctx: pag.EmptyContext.Push(3), Edge: "assignl"}
	if got := w.String(); !strings.Contains(got, "assignl") || !strings.Contains(got, "7") {
		t.Fatalf("String = %q", got)
	}
}
