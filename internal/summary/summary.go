// Package summary implements a method-summarisation pre-analysis in the
// spirit of the summary-based schemes the paper surveys ([17] Shang/Xie/Xue
// CGO'12, [26] Yan/Xu/Rountev ISSTA'11): "Summary-based schemes avoid
// redundant graph traversals by reusing the method-local points-to
// relations", reported to achieve up to 3X sequential speedups.
//
// The implemented summary is the simplest profitable one: *trivial
// forwarders* — methods whose body is exactly one call passing their own
// parameters through (wrapper chains, delegation layers) — are summarised
// by retargeting their call sites at the forwarded-to method. Every
// collapsed forwarder removes a param/ret parenthesis pair from all
// traversals through it, shortening flowsTo paths without changing the
// flowsTo relation itself (the matched parentheses were semantically
// transparent).
package summary

import (
	"parcfl/internal/frontend"
)

// Stats reports what the transform did.
type Stats struct {
	// Forwarders is the number of trivial forwarding methods detected.
	Forwarders int
	// CallsRetargeted is the number of call statements redirected past a
	// forwarder (counting each hop of a collapsed chain).
	CallsRetargeted int
}

// forwarder describes method m's body: a single call to target with m's
// parameters permuted by argMap (target arg i receives m's param argMap[i]),
// forwarding the return value iff retFwd.
type forwarder struct {
	target int
	argMap []int
	retFwd bool
}

// detect returns m's forwarder description, if m is a trivial forwarder.
func detect(p *frontend.Program, mi int) (forwarder, bool) {
	m := &p.Methods[mi]
	if len(m.Body) != 1 || m.Body[0].Kind != frontend.StCall {
		return forwarder{}, false
	}
	call := m.Body[0]
	if call.Callee == mi {
		return forwarder{}, false // self-loop
	}
	// Param slot -> position in m.Params.
	paramPos := make(map[int]int, len(m.Params))
	for i, slot := range m.Params {
		paramPos[slot] = i
	}
	fw := forwarder{target: call.Callee}
	for _, a := range call.Args {
		if a.Global || a.IsNoVar() {
			return forwarder{}, false
		}
		pos, isParam := paramPos[a.Index]
		if !isParam {
			return forwarder{}, false // forwards a non-parameter local
		}
		fw.argMap = append(fw.argMap, pos)
	}
	switch {
	case call.Dst.IsNoVar() && m.Ret == -1:
		fw.retFwd = false
	case !call.Dst.IsNoVar() && !call.Dst.Global && m.Ret == call.Dst.Index:
		fw.retFwd = true
	default:
		return forwarder{}, false
	}
	return fw, true
}

// Transform rewrites every call to a trivial forwarder so it targets the
// forwarded-to method directly, collapsing forwarder chains. The input
// program is modified in place and also returned. Forwarder bodies are left
// intact (they become dead unless still referenced); analysis results on
// queried variables outside the forwarders are unchanged, only cheaper to
// compute.
func Transform(p *frontend.Program) (*frontend.Program, Stats) {
	var st Stats
	fws := make(map[int]forwarder)
	for mi := range p.Methods {
		if fw, ok := detect(p, mi); ok {
			fws[mi] = fw
			st.Forwarders++
		}
	}
	if len(fws) == 0 {
		return p, st
	}

	// resolve follows forwarder chains, composing argument permutations,
	// with cycle protection.
	type resolved struct {
		target int
		argMap []int
		retFwd bool
		hops   int
	}
	resolve := func(start int) resolved {
		cur := resolved{target: start, retFwd: true}
		// Identity argMap sized to the start method's param count.
		cur.argMap = make([]int, len(p.Methods[start].Params))
		for i := range cur.argMap {
			cur.argMap[i] = i
		}
		seen := map[int]bool{start: true}
		for {
			fw, isFw := fws[cur.target]
			if !isFw || seen[fw.target] {
				return cur
			}
			seen[fw.target] = true
			// Compose: new arg i comes from fw.argMap[i], which indexes
			// cur's args.
			next := make([]int, len(fw.argMap))
			for i, j := range fw.argMap {
				next[i] = cur.argMap[j]
			}
			cur = resolved{
				target: fw.target,
				argMap: next,
				retFwd: cur.retFwd && fw.retFwd,
				hops:   cur.hops + 1,
			}
		}
	}

	for mi := range p.Methods {
		m := &p.Methods[mi]
		for si := range m.Body {
			s := &m.Body[si]
			if s.Kind != frontend.StCall {
				continue
			}
			if _, isFw := fws[s.Callee]; !isFw {
				continue
			}
			r := resolve(s.Callee)
			if r.target == s.Callee {
				continue
			}
			// A call expecting a result can only skip past forwarders
			// that all forward the return value.
			if !s.Dst.IsNoVar() && !r.retFwd {
				continue
			}
			newArgs := make([]frontend.VarRef, len(r.argMap))
			for i, j := range r.argMap {
				newArgs[i] = s.Args[j]
			}
			s.Callee = r.target
			s.Args = newArgs
			st.CallsRetargeted += r.hops
		}
	}
	return p, st
}
