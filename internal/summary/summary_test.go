package summary

import (
	"sort"
	"testing"

	"parcfl/internal/cfl"
	"parcfl/internal/frontend"
	"parcfl/internal/javagen"
	"parcfl/internal/pag"
)

// chainProgram builds: base(x) { return x }, w1(x) { return base(x) },
// w2(x) { return w1(x) }, main { a = new; r = w2(a) }.
func chainProgram() *frontend.Program {
	obj := pag.TypeID(0)
	mk := func(name string, callee int) frontend.Method {
		return frontend.Method{
			Name:   name,
			Locals: []frontend.LocalVar{{Name: "x", Type: obj}, {Name: "r", Type: obj}},
			Params: []int{0}, Ret: 1,
			Body: []frontend.Stmt{
				{Kind: frontend.StCall, Callee: callee, Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(1)},
			},
		}
	}
	return &frontend.Program{
		Types: []frontend.Type{{Name: "Object", Ref: true}},
		Methods: []frontend.Method{
			{ // 0: base(x) { return x } — not a forwarder (no call)
				Name:   "base",
				Locals: []frontend.LocalVar{{Name: "x", Type: obj}},
				Params: []int{0}, Ret: 0,
				Body: nil,
			},
			mk("w1", 0), // 1
			mk("w2", 1), // 2
			{ // 3: main
				Name:   "main",
				Locals: []frontend.LocalVar{{Name: "a", Type: obj}, {Name: "r", Type: obj}},
				Ret:    -1, Application: true,
				Body: []frontend.Stmt{
					{Kind: frontend.StAlloc, Dst: frontend.Local(0), Type: obj},
					{Kind: frontend.StCall, Callee: 2, Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.Local(1)},
				},
			},
		},
	}
}

func TestForwarderChainCollapse(t *testing.T) {
	p := chainProgram()
	_, st := Transform(p)
	if st.Forwarders != 2 {
		t.Fatalf("forwarders = %d, want 2 (w1, w2)", st.Forwarders)
	}
	// main's call hops past both wrappers straight to base.
	if got := p.Methods[3].Body[1].Callee; got != 0 {
		t.Fatalf("main's call targets method %d, want base (0)", got)
	}
	if st.CallsRetargeted < 2 {
		t.Fatalf("CallsRetargeted = %d", st.CallsRetargeted)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResultsPreservedAndCheaper(t *testing.T) {
	orig := chainProgram()
	loOrig, err := frontend.Lower(orig)
	if err != nil {
		t.Fatal(err)
	}
	r := loOrig.LocalNode[3][1]
	sOrig := cfl.New(loOrig.Graph, cfl.Config{})
	resOrig := sOrig.PointsTo(r, pag.EmptyContext)

	xform := chainProgram()
	Transform(xform)
	loX, err := frontend.Lower(xform)
	if err != nil {
		t.Fatal(err)
	}
	sX := cfl.New(loX.Graph, cfl.Config{})
	resX := sX.PointsTo(loX.LocalNode[3][1], pag.EmptyContext)

	if len(resOrig.Objects()) != 1 || len(resX.Objects()) != 1 {
		t.Fatalf("objects: %v vs %v", resOrig.Objects(), resX.Objects())
	}
	if resX.Steps >= resOrig.Steps {
		t.Fatalf("summarised query not cheaper: %d vs %d steps", resX.Steps, resOrig.Steps)
	}
}

// TestJavagenEquivalence: summarising a generated benchmark preserves every
// queried answer (projected to objects identified by name, since lowering
// the transformed program renumbers nothing — methods and locals are
// unchanged) while reducing total steps.
func TestJavagenEquivalence(t *testing.T) {
	params := javagen.Params{
		Name: "sumtest", Seed: 5, Containers: 3, CallDepth: 4,
		PayloadClasses: 3, PayloadFieldDepth: 3, AppMethods: 8, OpsPerApp: 10,
		Globals: 2, AppCallFanout: 1, HubFields: 1,
	}
	build := func(transform bool) (*frontend.Lowered, int64) {
		prg, err := javagen.Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		if transform {
			_, st := Transform(prg)
			if st.Forwarders == 0 {
				t.Fatal("no forwarders found in wrapper-chain benchmark")
			}
		}
		lo, err := frontend.Lower(prg)
		if err != nil {
			t.Fatal(err)
		}
		s := cfl.New(lo.Graph, cfl.Config{})
		var steps int64
		for _, v := range lo.AppQueryVars {
			r := s.PointsTo(v, pag.EmptyContext)
			steps += int64(r.Steps)
		}
		return lo, steps
	}
	loA, stepsA := build(false)
	loB, stepsB := build(true)

	// Same local slots exist in both lowerings; compare per-variable
	// object-name sets.
	sA := cfl.New(loA.Graph, cfl.Config{})
	sB := cfl.New(loB.Graph, cfl.Config{})
	names := func(lo *frontend.Lowered, s *cfl.Solver, v pag.NodeID) []string {
		var out []string
		for _, o := range s.PointsTo(v, pag.EmptyContext).Objects() {
			out = append(out, lo.Graph.Node(o).Name)
		}
		sort.Strings(out)
		return out
	}
	if len(loA.AppQueryVars) != len(loB.AppQueryVars) {
		t.Fatal("query census changed")
	}
	for i := range loA.AppQueryVars {
		a := names(loA, sA, loA.AppQueryVars[i])
		b := names(loB, sB, loB.AppQueryVars[i])
		if len(a) != len(b) {
			t.Fatalf("var %d: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("var %d: %v vs %v", i, a, b)
			}
		}
	}
	if stepsB >= stepsA {
		t.Fatalf("summarisation did not reduce steps: %d vs %d", stepsB, stepsA)
	}
	t.Logf("steps: %d -> %d (%.1f%% saved)", stepsA, stepsB, 100*float64(stepsA-stepsB)/float64(stepsA))
}

func TestNonForwardersUntouched(t *testing.T) {
	obj := pag.TypeID(0)
	p := &frontend.Program{
		Types: []frontend.Type{{Name: "Object", Ref: true}},
		Methods: []frontend.Method{
			{ // 0: two statements — not a forwarder
				Name:   "notfw",
				Locals: []frontend.LocalVar{{Name: "x", Type: obj}, {Name: "y", Type: obj}},
				Params: []int{0}, Ret: 1,
				Body: []frontend.Stmt{
					{Kind: frontend.StAssign, Dst: frontend.Local(1), Src: frontend.Local(0)},
					{Kind: frontend.StAssign, Dst: frontend.Local(1), Src: frontend.Local(0)},
				},
			},
			{ // 1: forwards a non-param local — not a forwarder
				Name:   "notfw2",
				Locals: []frontend.LocalVar{{Name: "x", Type: obj}, {Name: "t", Type: obj}},
				Params: []int{0}, Ret: -1,
				Body: []frontend.Stmt{
					{Kind: frontend.StCall, Callee: 0, Args: []frontend.VarRef{frontend.Local(1)}, Dst: frontend.NoVar},
				},
			},
		},
	}
	_, st := Transform(p)
	if st.Forwarders != 0 || st.CallsRetargeted != 0 {
		t.Fatalf("stats = %+v, want zero", st)
	}
}

func TestSelfRecursiveForwarderSkipped(t *testing.T) {
	obj := pag.TypeID(0)
	p := &frontend.Program{
		Types: []frontend.Type{{Name: "Object", Ref: true}},
		Methods: []frontend.Method{
			{
				Name:   "rec",
				Locals: []frontend.LocalVar{{Name: "x", Type: obj}},
				Params: []int{0}, Ret: -1,
				Body: []frontend.Stmt{
					{Kind: frontend.StCall, Callee: 0, Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.NoVar},
				},
			},
		},
	}
	_, st := Transform(p)
	if st.Forwarders != 0 {
		t.Fatalf("self-recursive method detected as forwarder")
	}
}

func TestMutualForwarderCycle(t *testing.T) {
	obj := pag.TypeID(0)
	mk := func(name string, callee int) frontend.Method {
		return frontend.Method{
			Name:   name,
			Locals: []frontend.LocalVar{{Name: "x", Type: obj}},
			Params: []int{0}, Ret: -1,
			Body: []frontend.Stmt{
				{Kind: frontend.StCall, Callee: callee, Args: []frontend.VarRef{frontend.Local(0)}, Dst: frontend.NoVar},
			},
		}
	}
	p := &frontend.Program{
		Types:   []frontend.Type{{Name: "Object", Ref: true}},
		Methods: []frontend.Method{mk("a", 1), mk("b", 0)},
	}
	// Both are forwarders in a cycle; resolution must terminate and
	// produce a valid program.
	_, st := Transform(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Forwarders != 2 {
		t.Fatalf("forwarders = %d", st.Forwarders)
	}
}
